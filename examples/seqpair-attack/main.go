// Sequential-pairing attack walkthrough (paper §VI-A, experiment E8):
// shows the attack's internals step by step — the hypothesis
// manipulation, the common error offset, the calibration, and the final
// complement decision — rather than just calling the packaged attack.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/device"
	"repro/internal/ecc"
	"repro/internal/pairing"
	"repro/internal/rng"
)

func main() {
	dev, err := device.EnrollSeqPair(device.SeqPairParams{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.8,
		Policy:       pairing.RandomizedStorage,
		Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3, Expurgate: true}),
		EnrollReps:   20,
	}, rng.New(7), rng.New(8))
	if err != nil {
		log.Fatal(err)
	}
	helper := dev.ReadHelper()
	tcap := dev.Code().T()
	fmt.Printf("device: %d pairs, ECC corrects t=%d errors per %d-bit block\n",
		dev.NumPairs(), tcap, dev.Code().N())

	// --- Step 1: demonstrate the hypothesis manipulation in isolation.
	// Swapping the POSITIONS of pairs 0 and j injects 2 bit errors into
	// the regenerated response exactly when r_0 != r_j. Alone (2 <= t),
	// the ECC absorbs them — the observable stays quiet:
	manip := dev.ReadHelper()
	manip.Pairs.Pairs[0], manip.Pairs.Pairs[1] = manip.Pairs.Pairs[1], manip.Pairs.Pairs[0]
	if err := dev.WriteHelper(manip); err != nil {
		log.Fatal(err)
	}
	rate := attack.EstimateFailureRate(func() bool { return !dev.App() }, 20)
	fmt.Printf("swap alone: failure rate %.2f (invisible — within the ECC radius)\n", rate)

	// --- Step 2: add the common offset of Fig. 5 — t deterministic
	// errors via within-pair order swaps — so one more error tips the
	// decoder over the radius.
	manip = dev.ReadHelper()
	for pos := 2; pos < 2+tcap; pos++ {
		manip.Pairs.Pairs[pos] = manip.Pairs.Pairs[pos].Swapped()
	}
	manip.Pairs.Pairs[0], manip.Pairs.Pairs[1] = manip.Pairs.Pairs[1], manip.Pairs.Pairs[0]
	if err := dev.WriteHelper(manip); err != nil {
		log.Fatal(err)
	}
	rate = attack.EstimateFailureRate(func() bool { return !dev.App() }, 20)
	truth := dev.TrueKey()
	fmt.Printf("swap + offset: failure rate %.2f (bits actually %s)\n",
		rate, map[bool]string{true: "differ", false: "equal"}[truth.Get(0) != truth.Get(1)])

	// Restore the device before the full attack.
	if err := dev.WriteHelper(helper); err != nil {
		log.Fatal(err)
	}

	// --- Step 3: the packaged attack does this for every pair, then
	// resolves the final complement via the two candidate sets of ECC
	// helper data.
	res, err := attack.Run(context.Background(), "seqpair", attack.NewSeqPairTarget(dev),
		attack.Options{Dist: attack.DefaultDistinguisher()})
	if err != nil {
		log.Fatal(err)
	}
	det := res.Details.(attack.SeqPairDetails)
	fmt.Printf("calibrated rates: offset %.2f vs offset+1 %.2f\n",
		det.Calibration.PNominal, det.Calibration.PElevated)
	agree := 0
	for j := 1; j < truth.Len(); j++ {
		if det.Relations[j] == (truth.Get(j) != truth.Get(0)) {
			agree++
		}
	}
	fmt.Printf("relations correct: %d/%d\n", agree, truth.Len()-1)
	fmt.Printf("full key recovered=%v (ambiguous=%v) in %d queries\n",
		res.Key.Equal(truth), res.Ambiguous, res.Queries)
}
