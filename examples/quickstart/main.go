// Quickstart: manufacture a simulated RO array, enroll a sequential-
// pairing (LISA) key generator on it, reconstruct the key honestly, and
// then mount the paper's §VI-A helper-data manipulation attack — all in
// one file.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/device"
	"repro/internal/ecc"
	"repro/internal/pairing"
	"repro/internal/rng"
)

func main() {
	// 1. Manufacture and enroll. Two RNG streams keep manufacturing
	//    variability and runtime noise independently reproducible.
	params := device.SeqPairParams{
		Rows: 8, Cols: 16, // 128 ring oscillators
		ThresholdMHz: 0.8, // LISA's ∆fth
		Policy:       pairing.RandomizedStorage,
		Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3, Expurgate: true}),
		EnrollReps:   20,
	}
	dev, err := device.EnrollSeqPair(params, rng.New(42), rng.New(43))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolled a LISA device: %d pairs, ECC %s\n", dev.NumPairs(), dev.Code())

	// 2. Honest use: the application reconstructs the key from fresh
	//    noisy measurements, corrected via the public helper data.
	ok := 0
	for i := 0; i < 10; i++ {
		if dev.App() {
			ok++
		}
	}
	fmt.Printf("honest reconstructions: %d/10 succeeded\n", ok)

	// 3. The attack: manipulate public helper data, watch failure rates,
	//    recover the key bit relations and finally the key itself.
	res, err := attack.Run(context.Background(), "seqpair", attack.NewSeqPairTarget(dev),
		attack.Options{Dist: attack.DefaultDistinguisher()})
	if err != nil {
		log.Fatal(err)
	}
	truth := dev.TrueKey()
	fmt.Printf("attack recovered: %s\n", res.Key)
	fmt.Printf("true key        : %s\n", truth)
	fmt.Printf("exact recovery=%v with %d oracle queries (%.1f per key bit)\n",
		res.Key.Equal(truth), res.Queries, float64(res.Queries)/float64(truth.Len()))
}
