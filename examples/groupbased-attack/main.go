// Group-based RO PUF attack (paper §VI-C / Fig. 6a, experiments E5 and
// E10): enrolls the full Fig. 4 pipeline — entropy distiller, grouping
// algorithm, Kendall coding, ECC, entropy packing — on the paper's 4x10
// array and mounts the full key recovery by injecting steep polynomials
// and repartitioning the groups.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/device"
	"repro/internal/ecc"
	"repro/internal/groupbased"
	"repro/internal/rng"
)

func main() {
	params := groupbased.Params{
		Rows: 4, Cols: 10, // the Fig. 6a array
		Degree:       2,   // distiller polynomial degree (DAC 2013: p = 2)
		ThresholdMHz: 0.5, // grouping threshold ∆fth
		MaxGroupSize: 6,
		Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
		EnrollReps:   25,
	}
	dev, err := device.EnrollGroupBased(params, rng.New(70), rng.New(71))
	if err != nil {
		log.Fatal(err)
	}

	h := dev.ReadHelper()
	fmt.Printf("enrolled group-based RO PUF (Fig. 4 pipeline) on a 4x10 array\n")
	fmt.Printf("groups: %d, response entropy sum log2(|Gj|!) = %.1f bits\n",
		h.Grouping.NumGroups(), groupbased.Entropy(&h.Grouping))
	for id, members := range h.Grouping.Members() {
		fmt.Printf("  G%-2d: %v\n", id+1, members)
	}
	truth := dev.TrueKey()
	fmt.Printf("enrolled key: %s (%d bits)\n\n", truth, truth.Len())

	// The attack iterates over every pair of oscillators sharing an
	// original group: a steep plane through both ties their pattern
	// values (the Fig. 6a quadratic generalized), the repartitioned
	// groups pin every other bit, and two candidate sets of ECC helper
	// data decide the remaining one.
	res, err := attack.Run(context.Background(), "groupbased", attack.NewGroupBasedTarget(dev),
		attack.Options{Dist: attack.DefaultDistinguisher()})
	if err != nil {
		log.Fatal(err)
	}
	det := res.Details.(attack.GroupBasedDetails)
	fmt.Printf("attack resolved %d/%d group orders:\n", det.Resolved, len(det.Orders))
	for g, order := range det.Orders {
		if len(order) > 1 {
			fmt.Printf("  G%-2d frequency order (labels): %v\n", g+1, order)
		}
	}
	fmt.Printf("recovered key: %s\n", res.Key)
	fmt.Printf("true key     : %s\n", truth)
	fmt.Printf("FULL KEY RECOVERY: %v, using %d oracle queries\n",
		res.Key.Equal(truth), res.Queries)
}
