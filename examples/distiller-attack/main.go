// Entropy-distiller attacks (paper §VI-D / Figs. 6b and 6c, experiments
// E6 and E7): attacks the DAC 2013 regression-based distiller composed
// with the two classic pairing schemes on the 4x10 array — 1-out-of-5
// masking (two hypotheses per isolated bit) and the overlapping neighbor
// chain (2^4 hypotheses per column boundary, as in the paper).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/device"
	"repro/internal/ecc"
	"repro/internal/rng"
)

func main() {
	code := ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3})

	// --- Fig. 6b: distiller + 1-out-of-k masking -----------------------
	masked, err := device.EnrollDistillerPair(device.DistillerPairParams{
		Rows: 4, Cols: 10,
		Degree: 2,
		Mode:   device.MaskedChain,
		K:      5, // the paper's k = 5
		Code:   code, EnrollReps: 25,
	}, rng.New(80), rng.New(81))
	if err != nil {
		log.Fatal(err)
	}
	truthM := masked.TrueKey()
	fmt.Printf("Fig. 6b device: distiller + 1-out-of-5 masking, key %d bits\n", truthM.Len())
	resM, err := attack.Run(context.Background(), "masking", attack.NewDistillerTarget(masked),
		attack.Options{Dist: attack.DefaultDistinguisher()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  recovered all %d base-pair bits; key %s (true %s)\n",
		len(resM.Details.(attack.MaskingDetails).BaseBits), resM.Key, truthM)
	fmt.Printf("  exact=%v in %d oracle queries\n\n", resM.Key.Equal(truthM), resM.Queries)

	// --- Fig. 6c: distiller + overlapping neighbor chain ---------------
	chain, err := device.EnrollDistillerPair(device.DistillerPairParams{
		Rows: 4, Cols: 10,
		Degree: 2,
		Mode:   device.OverlappingChain,
		Code:   code, EnrollReps: 25,
	}, rng.New(90), rng.New(91))
	if err != nil {
		log.Fatal(err)
	}
	truthC := chain.TrueKey()
	fmt.Printf("Fig. 6c device: distiller + overlapping chain, key %d bits\n", truthC.Len())
	resC, err := attack.Run(context.Background(), "chain", attack.NewDistillerTarget(chain),
		attack.Options{Dist: attack.DefaultDistinguisher()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  hypothesis sets grew to 2^b = %d (the paper's four random bits per valley)\n",
		resC.Details.(attack.ChainDetails).MaxHypotheses)
	fmt.Printf("  recovered key %s\n  true key      %s\n", resC.Key, truthC)
	fmt.Printf("  exact=%v in %d oracle queries\n", resC.Key.Equal(truthC), resC.Queries)
}
