// Fuzzy extractor (paper §VII / Fig. 7, experiment E12): the reference
// construction the paper recommends. Demonstrates key generation, that
// helper manipulation produces only a key-independent failure (no
// side channel), and the robust variant that detects manipulation
// outright.
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/device"
	"repro/internal/ecc"
	"repro/internal/experiments"
	"repro/internal/fuzzy"
	"repro/internal/rng"
)

func main() {
	code := ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3})

	// Plain fuzzy extractor: code-offset sketch + SHA-256.
	dev, err := device.EnrollFuzzy(device.FuzzyParams{
		Rows: 8, Cols: 16,
		Extractor:  fuzzy.Params{Code: code},
		EnrollReps: 20,
	}, rng.New(1), rng.New(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fuzzy extractor enrolled; 256-bit key derived via SHA-256\n")
	ok := 0
	for i := 0; i < 10; i++ {
		if dev.App() {
			ok++
		}
	}
	fmt.Printf("honest reconstructions: %d/10\n", ok)

	// Manipulate the helper: the derived key shifts DETERMINISTICALLY,
	// independent of any secret bit — the failure rate carries no
	// information (contrast with every construction of §IV-V).
	h := dev.ReadHelper()
	h.W.Flip(0)
	if err := dev.WriteHelper(h); err != nil {
		log.Fatal(err)
	}
	rate := attack.EstimateFailureRate(func() bool { return !dev.App() }, 20)
	fmt.Printf("after a 1-bit helper manipulation: failure rate %.2f regardless of the response\n", rate)

	// The E12 statistic: the attacker's distinguishing advantage.
	fmt.Println("\nmeasuring the single-manipulation distinguishing advantage (E12)...")
	// (enrolls several devices of both constructions; see
	// internal/experiments for the definition)
	demoAdvantage()

	// Robust variant: manipulation is DETECTED, not silently absorbed.
	robust, err := device.EnrollFuzzy(device.FuzzyParams{
		Rows: 8, Cols: 16,
		Extractor:  fuzzy.Params{Code: code, Robust: true},
		EnrollReps: 20,
	}, rng.New(3), rng.New(4))
	if err != nil {
		log.Fatal(err)
	}
	rh := robust.ReadHelper()
	rh.W.Flip(5)
	if err := robust.WriteHelper(rh); err != nil {
		log.Fatal(err)
	}
	if robust.App() {
		log.Fatal("robust variant failed to detect manipulation")
	}
	fmt.Println("robust variant (Boyen et al.): manipulation detected and rejected")
}

func demoAdvantage() {
	// Use the shared experiment code for the headline numbers.
	r, err := experiments.FuzzyResistance(17, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  LISA construction : advantage %.2f  <- key-recovery signal\n", r.SeqPairAdvantage)
	fmt.Printf("  fuzzy extractor   : advantage %.2f  <- nothing to exploit\n", r.FuzzyAdvantage)
}
