// Temperature-aware cooperative RO PUF attack (paper §VI-B, experiment
// E9): enrolls a device over the industrial temperature range, shows the
// good/bad/cooperating classification of Fig. 3, and recovers the
// cooperating-pair bit relations plus the absolute values of the good
// pairs used as masks.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/device"
	"repro/internal/ecc"
	"repro/internal/rng"
	"repro/internal/tempco"
)

func main() {
	params := tempco.Params{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.6,
		TminC:        -20, TmaxC: 80, // the user-defined operating range
		Policy:     tempco.RandomSelection,
		Code:       ecc.MustBCH(ecc.BCHConfig{M: 6, T: 3}),
		EnrollReps: 25,
	}
	dev, err := device.EnrollTempCo(params, rng.New(50), rng.New(51))
	if err != nil {
		log.Fatal(err)
	}
	h := dev.ReadHelper()
	good, bad, coop := tempco.CountClasses(h)
	fmt.Printf("Fig. 3 classification over [%v, %v] C at ∆fth = %v MHz:\n",
		params.TminC, params.TmaxC, params.ThresholdMHz)
	fmt.Printf("  %d good pairs (one reliable bit each)\n", good)
	fmt.Printf("  %d bad pairs (discarded)\n", bad)
	fmt.Printf("  %d cooperating pairs (helper-assisted inside their crossover interval)\n\n", coop)

	for i, info := range h.Pairs {
		if info.Class == tempco.Cooperating {
			fmt.Printf("  pair %3d cooperates: unstable in [%5.1f, %5.1f] C, helped by pair %d masked by pair %d\n",
				i, info.Tl, info.Th, info.HelpIdx, info.MaskIdx)
		}
	}

	res, err := attack.Run(context.Background(), "tempco", attack.NewTempCoTarget(dev),
		attack.Options{Dist: attack.DefaultDistinguisher()})
	if err != nil {
		log.Fatal(err)
	}
	det := res.Details.(attack.TempCoDetails)
	fmt.Printf("\nattack at ambient %.0f C:\n", dev.Environment().TempC)
	fmt.Printf("  calibrated failure rates: %.2f (offset) vs %.2f (offset+1)\n",
		det.Calibration.PNominal, det.Calibration.PElevated)
	fmt.Printf("  recovered %d cooperating-pair relations relative to pair %d\n",
		len(det.XorWithRef), det.RefIdx)
	for x, differs := range det.XorWithRef {
		rel := "equals"
		if differs {
			rel = "differs from"
		}
		fmt.Printf("    bit of pair %3d %s bit of pair %d\n", x, rel, det.RefIdx)
	}
	fmt.Printf("  ABSOLUTELY recovered good-pair (mask) bits: %d\n", len(det.MaskBits))
	for g, bit := range det.MaskBits {
		fmt.Printf("    good pair %3d carries bit %d\n", g, b2i(bit))
	}
	fmt.Printf("  total oracle queries: %d (skipped %d pairs unstable at ambient)\n",
		res.Queries, len(det.Skipped))
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
