// Command puf-analyze computes the standard PUF quality metrics of the
// paper's Sections II-III over a population of simulated devices:
// reliability (intra-distance), uniqueness (inter-distance), bias and
// entropy accounting.
//
// Usage:
//
//	puf-analyze [-devices N] [-regens M] [-seed S] [-rows R] [-cols C]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bitvec"
	"repro/internal/metrics"
	"repro/internal/pairing"
	"repro/internal/rng"
	"repro/internal/silicon"
)

func main() {
	devices := flag.Int("devices", 20, "population size")
	regens := flag.Int("regens", 20, "regenerations per device for reliability")
	seed := flag.Uint64("seed", 1, "master seed")
	rows := flag.Int("rows", 8, "array rows")
	cols := flag.Int("cols", 16, "array columns")
	flag.Parse()

	if *devices < 2 || *regens < 1 {
		fmt.Fprintln(os.Stderr, "need at least 2 devices and 1 regeneration")
		os.Exit(2)
	}

	pairs := pairing.ChainPairs(*rows, *cols, false)
	var references []bitvec.Vector
	var intraSum float64
	for dev := 0; dev < *devices; dev++ {
		s := *seed + uint64(dev)*13
		arr := silicon.NewArray(silicon.DefaultConfig(*rows, *cols), rng.New(s))
		src := rng.New(s + 1)
		env := arr.Config().NominalEnv()
		ref := pairing.Responses(arr.MeasureAveraged(env, src, 15), pairs)
		references = append(references, ref)
		var regenerations []bitvec.Vector
		for r := 0; r < *regens; r++ {
			regenerations = append(regenerations, pairing.Responses(arr.MeasureAll(env, src), pairs))
		}
		intra, err := metrics.IntraDistance(ref, regenerations)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		intraSum += intra
	}
	inter, err := metrics.InterDistance(references)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bias := metrics.Bias(references)

	n := *rows * *cols
	fmt.Printf("population          : %d devices, %dx%d arrays, %d chain-pair bits\n", *devices, *rows, *cols, len(pairs))
	fmt.Printf("reliability (intra) : %.4f mean fractional HD (0 = ideal)\n", intraSum/float64(*devices))
	fmt.Printf("uniqueness  (inter) : %.4f mean fractional HD (0.5 = ideal)\n", inter)
	fmt.Printf("bias                : %.4f fraction of ones (0.5 = ideal)\n", bias)
	fmt.Printf("Shannon entropy/bit : %.4f\n", metrics.ShannonEntropyPerBit(bias))
	fmt.Printf("min-entropy/bit     : %.4f\n", metrics.MinEntropyPerBit(bias))
	fmt.Printf("total order entropy : log2(%d!) = %.1f bits (paper §II)\n", n, metrics.TotalOrderEntropyBits(n))
}
