// Command puf-enroll manufactures a simulated RO array, enrolls the
// selected key-generation construction on it, and dumps the public
// helper NVM content (the attack surface) together with key statistics.
//
// Usage:
//
//	puf-enroll -construction seqpair|tempco|groupbased [-seed N] [-hex]
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"repro/internal/ecc"
	"repro/internal/groupbased"
	"repro/internal/pairing"
	"repro/internal/perm"
	"repro/internal/rng"
	"repro/internal/silicon"
	"repro/internal/tempco"
)

func main() {
	construction := flag.String("construction", "groupbased", "construction: seqpair, tempco, groupbased")
	seed := flag.Uint64("seed", 1, "manufacturing seed")
	dumpHex := flag.Bool("hex", false, "dump helper NVM bytes as hex")
	flag.Parse()

	var err error
	switch *construction {
	case "seqpair":
		err = enrollSeqPair(*seed, *dumpHex)
	case "tempco":
		err = enrollTempCo(*seed, *dumpHex)
	case "groupbased":
		err = enrollGroupBased(*seed, *dumpHex)
	default:
		err = fmt.Errorf("unknown construction %q", *construction)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func enrollSeqPair(seed uint64, dumpHex bool) error {
	arr := silicon.NewArray(silicon.DefaultConfig(8, 16), rng.New(seed))
	src := rng.New(seed + 1)
	f := arr.MeasureAveraged(arr.Config().NominalEnv(), src, 20)
	h := pairing.EnrollSeqPair(f, 0.8, pairing.RandomizedStorage, src)
	resp := pairing.Responses(f, h.Pairs)
	fmt.Printf("sequential pairing (LISA) on 8x16 array\n")
	fmt.Printf("pairs selected : %d (max %d)\n", len(h.Pairs), arr.N()/2)
	fmt.Printf("response       : %s\n", resp)
	blob := h.Marshal()
	fmt.Printf("helper NVM     : %d bytes (pair list)\n", len(blob))
	if dumpHex {
		fmt.Println(hex.EncodeToString(blob))
	}
	return nil
}

func enrollTempCo(seed uint64, dumpHex bool) error {
	p := tempco.Params{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.6,
		TminC:        -20, TmaxC: 80,
		Policy:     tempco.RandomSelection,
		Code:       ecc.MustBCH(ecc.BCHConfig{M: 6, T: 3}),
		EnrollReps: 25,
	}
	cfg := silicon.DefaultConfig(p.Rows, p.Cols)
	cfg.TempCoefSigmaMHzPerC = 0.03
	arr := silicon.NewArray(cfg, rng.New(seed))
	h, key, err := tempco.Enroll(arr, p, rng.New(seed+1))
	if err != nil {
		return err
	}
	good, bad, coop := tempco.CountClasses(h)
	fmt.Printf("temperature-aware cooperative RO PUF on 8x16 array, range [%v, %v] C\n", p.TminC, p.TmaxC)
	fmt.Printf("pairs          : %d good / %d bad / %d cooperating\n", good, bad, coop)
	fmt.Printf("key            : %s (%d bits)\n", key, key.Len())
	for i, info := range h.Pairs {
		if info.Class == tempco.Cooperating {
			fmt.Printf("  coop pair %3d: interval [%6.1f, %6.1f] C, help=%d mask=%d\n",
				i, info.Tl, info.Th, info.HelpIdx, info.MaskIdx)
		}
	}
	blob := h.Marshal()
	fmt.Printf("helper NVM     : %d bytes\n", len(blob))
	if dumpHex {
		fmt.Println(hex.EncodeToString(blob))
	}
	return nil
}

func enrollGroupBased(seed uint64, dumpHex bool) error {
	p := groupbased.Params{
		Rows: 8, Cols: 16,
		Degree:       2,
		ThresholdMHz: 0.5,
		Code:         ecc.MustBCH(ecc.BCHConfig{M: 6, T: 3}),
		EnrollReps:   15,
	}
	arr := silicon.NewArray(silicon.DefaultConfig(p.Rows, p.Cols), rng.New(seed))
	h, key, err := groupbased.Enroll(arr, p, rng.New(seed+1))
	if err != nil {
		return err
	}
	fmt.Printf("group-based RO PUF on 8x16 array (Fig. 4 pipeline)\n")
	fmt.Printf("groups         : %d, entropy %.1f bits (of log2(128!) = %.1f)\n",
		h.Grouping.NumGroups(), groupbased.Entropy(&h.Grouping), perm.Log2Factorial(arr.N()))
	fmt.Printf("Kendall stream : %d bits; packed key: %d bits\n",
		groupbased.StreamLen(&h.Grouping), key.Len())
	fmt.Printf("key            : %s\n", key)
	fmt.Printf("helper NVM     : poly %d B + groups %d B + offset %d bits\n",
		len(h.Poly.Marshal()), len(h.Grouping.Marshal()), h.Offset.Len())
	if dumpHex {
		fmt.Println("poly   :", hex.EncodeToString(h.Poly.Marshal()))
		fmt.Println("groups :", hex.EncodeToString(h.Grouping.Marshal()))
		fmt.Println("offset :", hex.EncodeToString(h.Offset.Bytes()))
	}
	return nil
}
