// Command puf-attack runs one of the paper's four helper-data
// manipulation attacks end to end against a freshly enrolled simulated
// device and reports the recovery outcome and oracle cost.
//
// Usage:
//
//	puf-attack -construction seqpair|tempco|groupbased|masking|chain [-seed N] [-strategy sequential|fixed]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/ecc"
	"repro/internal/groupbased"
	"repro/internal/pairing"
	"repro/internal/rng"
	"repro/internal/tempco"
)

func main() {
	construction := flag.String("construction", "seqpair", "target: seqpair, tempco, groupbased, masking, chain")
	seed := flag.Uint64("seed", 1, "device manufacturing seed")
	strategy := flag.String("strategy", "sequential", "distinguisher: sequential or fixed")
	flag.Parse()

	dist := core.DefaultDistinguisher()
	if *strategy == "fixed" {
		dist = core.Distinguisher{Strategy: core.FixedSample, Queries: 10}
	}

	var err error
	switch *construction {
	case "seqpair":
		err = attackSeqPair(*seed, dist)
	case "tempco":
		err = attackTempCo(*seed, dist)
	case "groupbased":
		err = attackGroupBased(*seed, dist)
	case "masking":
		err = attackMasking(*seed, dist)
	case "chain":
		err = attackChain(*seed, dist)
	default:
		err = fmt.Errorf("unknown construction %q", *construction)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func attackSeqPair(seed uint64, dist core.Distinguisher) error {
	d, err := device.EnrollSeqPair(device.SeqPairParams{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.8,
		Policy:       pairing.RandomizedStorage,
		Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3, Expurgate: true}),
		EnrollReps:   20,
	}, rng.New(seed), rng.New(seed+1))
	if err != nil {
		return err
	}
	fmt.Printf("enrolled LISA device: %d pairs, code %s\n", d.NumPairs(), d.Code())
	res, err := core.AttackSeqPair(d, core.SeqPairConfig{Dist: dist})
	if err != nil {
		return err
	}
	truth := d.TrueKey()
	fmt.Printf("calibration: p(offset)=%.3f p(offset+1)=%.3f over %d queries\n",
		res.Calibration.PNominal, res.Calibration.PElevated, res.Calibration.Queries)
	fmt.Printf("recovered key : %s\n", res.Key)
	fmt.Printf("true key      : %s\n", truth)
	fmt.Printf("exact=%v ambiguous=%v, total %d oracle queries (%.1f per bit)\n",
		res.Key.Equal(truth), res.Ambiguous, res.Queries, float64(res.Queries)/float64(truth.Len()))
	return nil
}

func attackTempCo(seed uint64, dist core.Distinguisher) error {
	d, err := device.EnrollTempCo(tempco.Params{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.6,
		TminC:        -20, TmaxC: 80,
		Policy:     tempco.RandomSelection,
		Code:       ecc.MustBCH(ecc.BCHConfig{M: 6, T: 3}),
		EnrollReps: 25,
	}, rng.New(seed), rng.New(seed+1))
	if err != nil {
		return err
	}
	h := d.ReadHelper()
	good, bad, coop := tempco.CountClasses(h)
	fmt.Printf("enrolled temperature-aware device: %d good / %d bad / %d cooperating pairs\n", good, bad, coop)
	res, err := core.AttackTempCo(d, core.TempCoConfig{Dist: dist})
	if err != nil {
		return err
	}
	fmt.Printf("reference pair       : %d\n", res.RefIdx)
	fmt.Printf("relations recovered  : %d (skipped %d unstable at ambient)\n", len(res.XorWithRef), len(res.Skipped))
	fmt.Printf("absolute mask bits   : %d\n", len(res.MaskBits))
	fmt.Printf("oracle queries       : %d\n", res.Queries)
	return nil
}

func attackGroupBased(seed uint64, dist core.Distinguisher) error {
	d, err := device.EnrollGroupBased(groupbased.Params{
		Rows: 4, Cols: 10,
		Degree:       2,
		ThresholdMHz: 0.5,
		MaxGroupSize: 6,
		Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
		EnrollReps:   25,
	}, rng.New(seed), rng.New(seed+1))
	if err != nil {
		return err
	}
	truth := d.TrueKey()
	fmt.Printf("enrolled group-based device (Fig. 6a array): key %d bits\n", truth.Len())
	res, err := core.AttackGroupBased(d, core.GroupBasedConfig{Dist: dist})
	if err != nil {
		return err
	}
	fmt.Printf("groups resolved : %d/%d\n", res.Resolved, len(res.Orders))
	fmt.Printf("recovered key   : %s\n", res.Key)
	fmt.Printf("true key        : %s\n", truth)
	fmt.Printf("exact=%v, %d oracle queries\n", res.Key.Equal(truth), res.Queries)
	return nil
}

func attackMasking(seed uint64, dist core.Distinguisher) error {
	d, err := device.EnrollDistillerPair(device.DistillerPairParams{
		Rows: 4, Cols: 10,
		Degree: 2, Mode: device.MaskedChain, K: 5,
		Code:       ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
		EnrollReps: 25,
	}, rng.New(seed), rng.New(seed+1))
	if err != nil {
		return err
	}
	truth := d.TrueKey()
	fmt.Printf("enrolled distiller + 1-out-of-5 masking device: key %d bits\n", truth.Len())
	res, err := core.AttackDistillerMasking(d, core.DistillerConfig{Dist: dist})
	if err != nil {
		return err
	}
	fmt.Printf("base-pair bits recovered: %d\n", len(res.BaseBits))
	fmt.Printf("recovered key: %s (true %s), exact=%v, %d queries\n",
		res.Key, truth, res.Key.Equal(truth), res.Queries)
	return nil
}

func attackChain(seed uint64, dist core.Distinguisher) error {
	d, err := device.EnrollDistillerPair(device.DistillerPairParams{
		Rows: 4, Cols: 10,
		Degree: 2, Mode: device.OverlappingChain,
		Code:       ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
		EnrollReps: 25,
	}, rng.New(seed), rng.New(seed+1))
	if err != nil {
		return err
	}
	truth := d.TrueKey()
	fmt.Printf("enrolled distiller + overlapping chain device: key %d bits\n", truth.Len())
	res, err := core.AttackDistillerChain(d, core.DistillerConfig{Dist: dist})
	if err != nil {
		return err
	}
	fmt.Printf("max simultaneous hypotheses: %d (Fig. 6c: 2^4)\n", res.MaxHypotheses)
	fmt.Printf("recovered key: %s\n", res.Key)
	fmt.Printf("true key     : %s\n", truth)
	fmt.Printf("exact=%v, %d oracle queries\n", res.Key.Equal(truth), res.Queries)
	return nil
}
