// Command puf-attack runs any registered helper-data manipulation
// attack end to end against a freshly enrolled simulated device and
// reports the unified attack.Report: recovery outcome, oracle cost,
// and per-phase breakdown.
//
// The attack is resolved through the attack registry, so a newly
// registered fifth attack shows up here with no CLI changes. With
// -workers > 1 the oracle is wrapped in the batched backend
// (attack.BatchTarget), which evaluates the arms of each hypothesis
// test concurrently on forked oracles — bit-identical results for any
// worker count.
//
// Usage:
//
//	puf-attack -list
//	puf-attack -attack seqpair [-seed N] [-strategy sequential|fixed]
//	puf-attack -attack groupbased -workers 8 -budget 200000 -timeout 2m
//	puf-attack -attack seqpair -noise counter
//
// -noise selects the silicon noise model the simulated device draws
// its measurement noise from: the legacy sequential stream (default,
// matching the historical transcript goldens) or the counter-mode
// model, whose sparse oracle queries draw only the helper-referenced
// oscillators' noise (O(k)).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/attack"
	"repro/internal/bitvec"
	"repro/internal/device"
	"repro/internal/ecc"
	"repro/internal/groupbased"
	"repro/internal/pairing"
	"repro/internal/rng"
	"repro/internal/silicon"
	"repro/internal/tempco"
)

func main() {
	name := flag.String("attack", "seqpair", "registered attack name (see -list)")
	construction := flag.String("construction", "", "alias for -attack (deprecated)")
	list := flag.Bool("list", false, "list registered attacks and exit")
	seed := flag.Uint64("seed", 1, "device manufacturing seed")
	strategy := flag.String("strategy", "sequential", "distinguisher: sequential or fixed")
	workers := flag.Int("workers", 1, "batched oracle workers (> 1 wraps the target in attack.BatchTarget)")
	noiseName := flag.String("noise", "stream", "silicon noise model: stream or counter")
	budget := flag.Int("budget", 0, "oracle query budget (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "attack wall-time limit (0 = none)")
	verbose := flag.Bool("v", false, "print per-phase progress lines")
	flag.Parse()

	if *list {
		fmt.Printf("%-12s %s\n", "ATTACK", "DESCRIPTION")
		for _, a := range attack.Attacks() {
			fmt.Printf("%-12s %s\n", a.Name(), a.Description())
		}
		return
	}
	if *construction != "" {
		attackSet := false
		flag.Visit(func(f *flag.Flag) { attackSet = attackSet || f.Name == "attack" })
		if attackSet && *construction != *name {
			fmt.Fprintln(os.Stderr, "puf-attack: -attack and -construction disagree; pass one")
			os.Exit(2)
		}
		*name = *construction
	}

	noise, err := silicon.ParseNoiseModel(*noiseName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "puf-attack:", err)
		os.Exit(2)
	}

	dist := attack.DefaultDistinguisher()
	if *strategy == "fixed" {
		dist = attack.Distinguisher{Strategy: attack.FixedSample, Queries: 10}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if err := run(ctx, *name, *seed, noise, attack.Options{
		Dist:        dist,
		QueryBudget: *budget,
	}, *workers, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "puf-attack:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, name string, seed uint64, noise silicon.NoiseModelKind, opts attack.Options, workers int, verbose bool) error {
	target, truth, desc, err := enroll(name, seed, noise)
	if err != nil {
		return err
	}
	fmt.Printf("%s (noise model: %s)\n", desc, target.Spec().Noise)

	if workers > 1 {
		bt, err := attack.NewBatchTarget(target, workers, seed^0xba7c4)
		if err != nil {
			return err
		}
		target = bt
		fmt.Printf("oracle backend: batched, %d workers\n", workers)
	}
	if verbose {
		last := ""
		opts.Progress = func(p attack.Progress) {
			if p.Phase != last {
				fmt.Printf("  phase %s...\n", p.Phase)
				last = p.Phase
			}
		}
	}

	rep, err := attack.Run(ctx, name, target, opts)
	if err != nil {
		return err
	}
	printReport(rep, truth)
	return nil
}

// enroll builds the standard device population entry for one attack and
// returns its oracle, the enrolled key when the attack recovers one
// (empty for relation-only attacks), and a banner line.
func enroll(name string, seed uint64, noise silicon.NoiseModelKind) (attack.Target, bitvec.Vector, string, error) {
	srcMfg, srcRun := rng.New(seed), rng.New(seed+1)
	switch name {
	case "seqpair":
		d, err := device.EnrollSeqPair(device.SeqPairParams{
			Rows: 8, Cols: 16,
			ThresholdMHz: 0.8,
			Policy:       pairing.RandomizedStorage,
			Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3, Expurgate: true}),
			EnrollReps:   20,
			Noise:        noise,
		}, srcMfg, srcRun)
		if err != nil {
			return nil, bitvec.Vector{}, "", err
		}
		desc := fmt.Sprintf("enrolled LISA device: %d pairs, code %s", d.NumPairs(), d.Code())
		return attack.NewSeqPairTarget(d), d.TrueKey(), desc, nil
	case "tempco":
		d, err := device.EnrollTempCo(tempco.Params{
			Rows: 8, Cols: 16,
			ThresholdMHz: 0.6,
			TminC:        -20, TmaxC: 80,
			Policy:     tempco.RandomSelection,
			Code:       ecc.MustBCH(ecc.BCHConfig{M: 6, T: 3}),
			EnrollReps: 25,
			Noise:      noise,
		}, srcMfg, srcRun)
		if err != nil {
			return nil, bitvec.Vector{}, "", err
		}
		good, bad, coop := tempco.CountClasses(d.ReadHelper())
		desc := fmt.Sprintf("enrolled temperature-aware device: %d good / %d bad / %d cooperating pairs", good, bad, coop)
		// Relation-only attack: no single recovered key to score.
		return attack.NewTempCoTarget(d), bitvec.Vector{}, desc, nil
	case "groupbased":
		d, err := device.EnrollGroupBased(groupbased.Params{
			Rows: 4, Cols: 10,
			Degree:       2,
			ThresholdMHz: 0.5,
			MaxGroupSize: 6,
			Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
			EnrollReps:   25,
			Noise:        noise,
		}, srcMfg, srcRun)
		if err != nil {
			return nil, bitvec.Vector{}, "", err
		}
		desc := fmt.Sprintf("enrolled group-based device (Fig. 6a array): key %d bits", d.TrueKey().Len())
		return attack.NewGroupBasedTarget(d), d.TrueKey(), desc, nil
	case "masking", "chain":
		mode := device.MaskedChain
		if name == "chain" {
			mode = device.OverlappingChain
		}
		d, err := device.EnrollDistillerPair(device.DistillerPairParams{
			Rows: 4, Cols: 10,
			Degree: 2, Mode: mode, K: 5,
			Code:       ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
			EnrollReps: 25,
			Noise:      noise,
		}, srcMfg, srcRun)
		if err != nil {
			return nil, bitvec.Vector{}, "", err
		}
		desc := fmt.Sprintf("enrolled distiller device (%v): key %d bits", mode, d.TrueKey().Len())
		return attack.NewDistillerTarget(d), d.TrueKey(), desc, nil
	}
	return nil, bitvec.Vector{}, "", fmt.Errorf("no standard device for attack %q (registry has %v)", name, attack.Names())
}

func printReport(rep attack.Report, truth bitvec.Vector) {
	if rep.Key.Len() > 0 {
		fmt.Printf("recovered key : %s\n", rep.Key)
	}
	if truth.Len() > 0 {
		fmt.Printf("true key      : %s\n", truth)
		fmt.Printf("exact=%v ambiguous=%v\n", rep.Key.Equal(truth), rep.Ambiguous)
	}
	switch det := rep.Details.(type) {
	case attack.SeqPairDetails:
		fmt.Printf("calibration   : p(offset)=%.3f p(offset+1)=%.3f over %d queries\n",
			det.Calibration.PNominal, det.Calibration.PElevated, det.Calibration.Queries)
	case attack.TempCoDetails:
		fmt.Printf("reference pair: %d\n", det.RefIdx)
		fmt.Printf("relations     : %d recovered (skipped %d unstable at ambient)\n", len(det.XorWithRef), len(det.Skipped))
		fmt.Printf("mask bits     : %d absolute\n", len(det.MaskBits))
	case attack.GroupBasedDetails:
		fmt.Printf("groups        : %d/%d resolved\n", det.Resolved, len(det.Orders))
	case attack.MaskingDetails:
		fmt.Printf("base bits     : %d recovered\n", len(det.BaseBits))
	case attack.ChainDetails:
		fmt.Printf("hypotheses    : max %d simultaneous\n", det.MaxHypotheses)
	}
	fmt.Printf("oracle queries: %d in %s\n", rep.Queries, rep.Elapsed.Round(time.Millisecond))
	for _, ph := range rep.Phases {
		fmt.Printf("  %-12s %6d queries  %s\n", ph.Name, ph.Queries, ph.Elapsed.Round(time.Millisecond))
	}
}
