// Command puf-bench regenerates every table and figure of the paper as
// human-readable text (the numeric counterpart of the bench targets in
// bench_test.go; see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	puf-bench [-seed N] [-experiment all|E1..E12|A1|A2|A4|R1] [-noise counter|stream]
//	puf-bench -json [-count N] [-json-out BENCH_attacks.json]
//	         [-baseline BENCH_attacks.json] [-ns-gate-pct 15]
//	puf-bench [...] -cpuprofile cpu.out -memprofile mem.out
//
// The attack-backed experiments (E5-E9, R1) and the -json benchmarks
// enroll their devices under the silicon noise model named by -noise;
// the default is the counter-mode model (O(k) sparse oracle queries),
// -noise stream selects the legacy sequential-stream model whose
// transcripts match the historical goldens.
//
// With -json the tool instead benchmarks the five end-to-end attacks
// (the oracle-query hot path) plus three fleet-scale throughput
// workloads — FleetSweep (batched SoA measurement kernel, reported as
// fleet_devices_per_sec), PerDeviceSweep (the per-device loop it
// replaces, devices_per_sec) and CampaignAttacks (a pooled attack
// campaign, attacks_per_sec_per_core) — via testing.Benchmark and
// writes a machine-readable perf artifact — benchmark name → ns/op,
// allocs/op, B/op and oracle-queries — so the repository accumulates a
// perf trajectory across PRs instead of anecdotes. Each benchmark runs
// -count times (default 5) and the artifact records per-field medians,
// so a noisy neighbor on the measurement host cannot contaminate the
// committed numbers. With -baseline the run additionally compares
// against a committed artifact and exits nonzero when any attack's
// allocs/op — deterministic — regresses by more than 2%, or when its
// median ns/op regresses by more than -ns-gate-pct percent (default
// 15; 0 disables the wall-clock gate for hosts that cannot hold a
// stable clock).
//
// The -cpuprofile/-memprofile flags wrap either mode in a pprof capture
// (`go tool pprof` reads the output), the profiling workflow the README
// documents.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"testing"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/rng"
	"repro/internal/silicon"
	"repro/internal/transcript"
)

// benchConfig carries one invocation's settings through run().
type benchConfig struct {
	seed       uint64
	which      string
	jsonMode   bool
	jsonOut    string
	baseline   string
	count      int
	nsGatePct  float64
	noise      silicon.NoiseModelKind
	goldenDir  string
	cpuProfile string
	memProfile string
}

func main() {
	seed := flag.Uint64("seed", 1, "master seed for all experiments")
	which := flag.String("experiment", "all", "experiment id (E1..E12, A1, A2, A4, R1) or 'all'")
	jsonMode := flag.Bool("json", false, "benchmark the attack hot paths and write a JSON perf artifact")
	jsonOut := flag.String("json-out", "BENCH_attacks.json", "output path of the -json artifact")
	count := flag.Int("count", 5, "benchmark repetitions per attack; the artifact records medians")
	baseline := flag.String("baseline", "", "committed artifact to compare against; >2% allocs/op or >ns-gate-pct ns/op regression fails")
	nsGatePct := flag.Float64("ns-gate-pct", 15, "median ns/op regression percentage that fails -baseline (0 disables)")
	noiseName := flag.String("noise", "counter", "silicon noise model for attack-backed runs: counter or stream")
	goldenDir := flag.String("golden", "", "regenerate the transcript golden matrix into this directory (typically testdata/transcripts) and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	noise, err := silicon.ParseNoiseModel(*noiseName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(2)
	}

	// All work runs inside run() so its deferred profile writers flush
	// on EVERY exit path — a failing run is exactly when a profile is
	// wanted; os.Exit happens only after run returns.
	os.Exit(run(benchConfig{
		seed:       *seed,
		which:      *which,
		jsonMode:   *jsonMode,
		jsonOut:    *jsonOut,
		baseline:   *baseline,
		count:      *count,
		nsGatePct:  *nsGatePct,
		noise:      noise,
		goldenDir:  *goldenDir,
		cpuProfile: *cpuProfile,
		memProfile: *memProfile,
	}))
}

// runGolden regenerates every transcript golden file into dir — the
// same bytes `go test -run TestGoldenTranscripts -update` writes, so CI
// can regenerate and `git diff` for staleness without invoking the test
// binary.
func runGolden(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := transcript.GoldenFiles()
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		trs, err := transcript.RunAll(context.Background(), files[name])
		if err != nil {
			return err
		}
		data, err := transcript.Marshal(trs)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d transcripts)\n", path, len(trs))
	}
	return nil
}

// run executes one puf-bench invocation and returns the process status.
func run(cfg benchConfig) int {
	if cfg.cpuProfile != "" {
		f, err := os.Create(cfg.cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if cfg.memProfile == "" {
			return
		}
		f, err := os.Create(cfg.memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		}
	}()

	if cfg.goldenDir != "" {
		if err := runGolden(cfg.goldenDir); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return 1
		}
		return 0
	}

	if cfg.jsonMode {
		if err := runJSONBench(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return 1
		}
		return 0
	}

	runners := []struct {
		id  string
		fn  func(benchConfig) error
		doc string
	}{
		{"E1", runE1, "Table I: compact and Kendall coding"},
		{"E2", runE2, "Fig. 2: frequency topology variance decomposition"},
		{"E3", runE3, "Fig. 3: pair classification vs threshold"},
		{"E4", runE4, "Fig. 5: failure-rate PDFs and distinguishability"},
		{"E5", runE5, "Fig. 6a / §VI-C: group-based full key recovery"},
		{"E6", runE6, "Fig. 6b / §VI-D: distiller + 1-out-of-k masking"},
		{"E7", runE7, "Fig. 6c / §VI-D: distiller + overlapping chain"},
		{"E8", runE8, "§VI-A: sequential pairing key recovery"},
		{"E9", runE9, "§VI-B: temperature-aware cooperative relations"},
		{"E11", runE11, "§II/§V-B: entropy accounting"},
		{"E12", runE12, "§VII: fuzzy extractor resistance"},
		{"A1", runA1, "ablation: storage-policy leakage (§VII-C)"},
		{"A2", runA2, "ablation: sequential vs fixed-sample distinguisher"},
		{"A4", runA4, "ablation: common-offset size vs separation and cost"},
		{"R1", runR1, "robustness: attack success rates across devices"},
	}
	ran := false
	for _, r := range runners {
		if cfg.which != "all" && cfg.which != r.id {
			continue
		}
		ran = true
		fmt.Printf("==== %s — %s ====\n", r.id, r.doc)
		if err := r.fn(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.id, err)
			return 1
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", cfg.which)
		return 2
	}
	return 0
}

func runE1(benchConfig) error {
	rows := experiments.TableI()
	fmt.Printf("%-6s %-8s %-8s\n", "Order", "Compact", "Kendall")
	for _, r := range rows {
		fmt.Printf("%-6s %-8s %-8s\n", r.Order, r.Compact, r.Kendall)
	}
	return nil
}

func runE2(cfg benchConfig) error {
	r, err := experiments.Fig2(cfg.seed)
	if err != nil {
		return err
	}
	fmt.Printf("array %dx%d\n", r.Rows, r.Cols)
	fmt.Printf("raw frequency variance        : %8.3f MHz^2\n", r.RawVariance)
	fmt.Printf("true systematic variance      : %8.3f MHz^2\n", r.SystVariance)
	fmt.Printf("true random variance          : %8.3f MHz^2\n", r.RandVariance)
	fmt.Printf("residual variance after p=2 fit: %7.3f MHz^2\n", r.ResidualVar)
	fmt.Printf("distillation gain             : %8.2fx\n", r.RawVariance/r.ResidualVar)
	return nil
}

func runE3(cfg benchConfig) error {
	rows, err := experiments.Fig3(cfg.seed, []float64{0.2, 0.4, 0.6, 0.8, 1.2, 1.6, 2.4})
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %-6s %-6s %-6s %-8s\n", "threshold MHz", "good", "bad", "coop", "key bits")
	for _, r := range rows {
		fmt.Printf("%-14.2f %-6d %-6d %-6d %-8d\n", r.ThresholdMHz, r.Good, r.Bad, r.Coop, r.KeyBits)
	}
	return nil
}

func runE4(cfg benchConfig) error {
	r, err := experiments.Fig5(cfg.seed, 2000)
	if err != nil {
		return err
	}
	fmt.Printf("ECC radius t = %d\n", r.T)
	fmt.Printf("%-8s %-10s %-10s %-10s\n", "#errors", "nominal", "H0", "H1")
	max := 0
	for _, h := range []interface{ Support() []int }{r.Nominal, r.H0, r.H1} {
		if s := h.Support(); len(s) > 0 && s[len(s)-1] > max {
			max = s[len(s)-1]
		}
	}
	for e := 0; e <= max; e++ {
		fmt.Printf("%-8d %-10.4f %-10.4f %-10.4f\n", e, r.Nominal.P(e), r.H0.P(e), r.H1.P(e))
	}
	fmt.Printf("P(fail) nominal=%.4f H0=%.4f H1=%.4f\n", r.FailNominal, r.FailH0, r.FailH1)
	fmt.Printf("TV distance(H0,H1)=%.4f; fixed-sample queries @1%% error: %d\n", r.TVDistance, r.FixedSamples)
	return nil
}

// attackSpec builds the transcript Spec for one attack-backed
// experiment under the invocation's noise model.
func attackSpec(cfg benchConfig, name string, expurgate bool) transcript.Spec {
	return transcript.Spec{
		Attack:    name,
		Seed:      cfg.seed,
		Noise:     cfg.noise.String(),
		Expurgate: expurgate,
	}
}

func runE5(cfg benchConfig) error {
	r, err := experiments.RunAttack(context.Background(), attackSpec(cfg, "groupbased", false))
	if err != nil {
		return err
	}
	fmt.Printf("4x10 array, %d groups, key %d bits\n", r.Groups, r.EnrolledKeyBits)
	fmt.Printf("groups resolved : %d/%d\n", r.Resolved, r.Groups)
	fmt.Printf("full key        : recovered=%v in %d oracle queries\n", r.Recovered, r.Queries)
	return nil
}

func runE6(cfg benchConfig) error {
	r, err := experiments.RunAttack(context.Background(), attackSpec(cfg, "masking", false))
	if err != nil {
		return err
	}
	fmt.Printf("base pair bits recovered: %d; key bits: %d\n", r.BaseBits, r.EnrolledKeyBits)
	fmt.Printf("key recovered=%v in %d oracle queries\n", r.Recovered, r.Queries)
	return nil
}

func runE7(cfg benchConfig) error {
	r, err := experiments.RunAttack(context.Background(), attackSpec(cfg, "chain", false))
	if err != nil {
		return err
	}
	fmt.Printf("overlapping chain: %d bits; max hypothesis set: 2^b = %d\n", r.EnrolledKeyBits, r.MaxHypotheses)
	fmt.Printf("key recovered=%v in %d oracle queries\n", r.Recovered, r.Queries)
	return nil
}

func runE8(cfg benchConfig) error {
	for _, exp := range []bool{false, true} {
		r, err := experiments.RunAttack(context.Background(), attackSpec(cfg, "seqpair", exp))
		if err != nil {
			return err
		}
		code := "plain BCH"
		if exp {
			code = "expurgated BCH"
		}
		fmt.Printf("%-15s: %d bits, exact=%v up-to-complement=%v ambiguous=%v, %d queries\n",
			code, r.EnrolledKeyBits, r.Recovered, r.UpToComplement, r.Ambiguous, r.Queries)
	}
	return nil
}

func runE9(cfg benchConfig) error {
	r, err := experiments.RunAttack(context.Background(), attackSpec(cfg, "tempco", false))
	if err != nil {
		return err
	}
	fmt.Printf("cooperating pairs      : %d (skipped %d in-interval at ambient)\n", r.CoopPairs, r.Skipped)
	fmt.Printf("relations recovered    : %d (%d correct)\n", r.RelationsFound, r.RelationsRight)
	fmt.Printf("absolute mask-good bits: %d (%d correct)\n", r.MaskBitsFound, r.MaskBitsRight)
	fmt.Printf("oracle queries         : %d\n", r.Queries)
	return nil
}

func runE11(cfg benchConfig) error {
	rows := experiments.EntropyAccounting(cfg.seed, []float64{0.2, 0.4, 0.6, 1.0, 1.5, 2.0})
	if rows == nil {
		return fmt.Errorf("entropy accounting failed")
	}
	fmt.Printf("total entropy upper bound log2(128!) = %.1f bits\n", rows[0].TotalBits)
	fmt.Printf("%-14s %-8s %-14s %-10s\n", "threshold MHz", "groups", "entropy bits", "key bits")
	for _, r := range rows {
		fmt.Printf("%-14.2f %-8d %-14.2f %-10d\n", r.ThresholdMHz, r.Groups, r.EntropyBits, r.KeyBits)
	}
	return nil
}

func runE12(cfg benchConfig) error {
	r, err := experiments.FuzzyResistance(cfg.seed, 60)
	if err != nil {
		return err
	}
	fmt.Printf("single-manipulation distinguishing advantage:\n")
	fmt.Printf("  LISA (sequential pairing): %.3f   <- the attack's signal\n", r.SeqPairAdvantage)
	fmt.Printf("  fuzzy extractor          : %.3f   <- no side channel\n", r.FuzzyAdvantage)
	fmt.Printf("(%d oracle queries total)\n", r.Queries)
	return nil
}

func runA1(cfg benchConfig) error {
	r, err := experiments.AblationStoragePolicy(cfg.seed, 20)
	if err != nil {
		return err
	}
	fmt.Printf("sorted storage     : %.3f of enrolled bits are 1 (full direct leakage)\n", r.SortedOnesFraction)
	fmt.Printf("randomized storage : %.3f of enrolled bits are 1 (no leakage)\n", r.RandomizedOnesFraction)
	return nil
}

func runA2(cfg benchConfig) error {
	r, err := experiments.AblationStrategy(cfg.seed)
	if err != nil {
		return err
	}
	fmt.Printf("sequential (SPRT) distinguisher: %d oracle queries\n", r.SequentialQueries)
	fmt.Printf("fixed-sample distinguisher     : %d oracle queries\n", r.FixedSampleQueries)
	fmt.Printf("both recovered the key         : %v\n", r.BothRecovered)
	return nil
}

func runA4(cfg benchConfig) error {
	rows, err := experiments.AblationOffsetSize(cfg.seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-12s %-12s %-10s %-10s\n", "offset", "p(correct)", "p(wrong)", "queries", "recovered")
	for _, r := range rows {
		fmt.Printf("%-8d %-12.3f %-12.3f %-10d %-10v\n", r.InjectErrors, r.PNominal, r.PElevated, r.Queries, r.Recovered)
	}
	return nil
}

func runR1(cfg benchConfig) error {
	r, err := experiments.MeasureAttackSuccessNoise(context.Background(), cfg.seed*1000, 5, 0, cfg.noise)
	if err != nil {
		return err
	}
	fmt.Printf("exact-recovery rates over %d devices per attack:\n", r.Seeds)
	fmt.Printf("  §VI-A sequential pairing : %.2f\n", r.SeqPair)
	fmt.Printf("  §VI-C group-based        : %.2f\n", r.GroupBased)
	fmt.Printf("  §VI-D distiller+masking  : %.2f\n", r.Masking)
	fmt.Printf("  §VI-D distiller+chain    : %.2f\n", r.Chain)
	fmt.Printf("  §VI-B relation accuracy  : %.2f\n", r.TempCoRel)
	return nil
}

// BenchRecord is one entry of the BENCH_attacks.json artifact. The
// throughput fields are derived from the median ns/op after reduction,
// so they carry no extra noise; each is populated only on the record it
// describes (omitempty keeps the attack records unchanged).
type BenchRecord struct {
	NsPerOp       int64   `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	OracleQueries float64 `json:"oracle_queries"`
	Iterations    int     `json:"iterations"`
	// FleetDevicesPerSec: devices measured per second by the batched
	// SoA fleet kernel (FleetSweep record).
	FleetDevicesPerSec float64 `json:"fleet_devices_per_sec,omitempty"`
	// DevicesPerSec: the same workload through the single-device
	// enroll-and-measure path (PerDeviceSweep record) — the denominator
	// of the fleet speedup.
	DevicesPerSec float64 `json:"devices_per_sec,omitempty"`
	// AttacksPerSecPerCore: end-to-end pooled attack campaign
	// throughput, normalized by core count (CampaignAttacks record).
	AttacksPerSecPerCore float64 `json:"attacks_per_sec_per_core,omitempty"`
}

// medianInt64 returns the median of xs (lower-middle for even counts),
// sorting a copy.
func medianInt64(xs []int64) int64 {
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}

// medianRecord reduces repeated measurements of one benchmark to their
// per-field medians. The deterministic fields (allocs/op, oracle
// queries) are identical across repetitions; the median protects the
// timing-derived ones from scheduler noise on the measurement host.
func medianRecord(recs []BenchRecord) BenchRecord {
	ns := make([]int64, len(recs))
	allocs := make([]int64, len(recs))
	bytes := make([]int64, len(recs))
	iters := make([]int64, len(recs))
	for i, r := range recs {
		ns[i], allocs[i], bytes[i], iters[i] = r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, int64(r.Iterations)
	}
	return BenchRecord{
		NsPerOp:       medianInt64(ns),
		AllocsPerOp:   medianInt64(allocs),
		BytesPerOp:    medianInt64(bytes),
		OracleQueries: recs[len(recs)-1].OracleQueries,
		Iterations:    int(medianInt64(iters)),
	}
}

// checkBaseline compares a fresh artifact against a committed one.
// Two gates fail the run: allocs/op beyond 2% of the baseline
// (deterministic, so the tolerance only absorbs rounding from
// iteration-count changes), and median ns/op beyond nsGatePct percent
// — the -count medians on both sides are what make a wall-clock gate
// tenable at all; nsGatePct <= 0 turns the wall-clock gate back into a
// report-only column for hosts that cannot hold a stable clock.
func checkBaseline(artifact map[string]BenchRecord, path string, nsGatePct float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base map[string]BenchRecord
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		b := base[name]
		cur, ok := artifact[name]
		if !ok {
			fmt.Printf("%-18s MISSING from this run (baseline %d allocs/op)\n", name, b.AllocsPerOp)
			failures = append(failures, name+" missing")
			continue
		}
		allocLimit := float64(b.AllocsPerOp) * 1.02
		status := "ok"
		if float64(cur.AllocsPerOp) > allocLimit {
			status = "ALLOC REGRESSION"
			failures = append(failures, fmt.Sprintf("%s allocs/op %d -> %d", name, b.AllocsPerOp, cur.AllocsPerOp))
		}
		nsDelta := 100 * float64(cur.NsPerOp-b.NsPerOp) / float64(b.NsPerOp)
		nsStatus := "gated"
		if nsGatePct <= 0 {
			nsStatus = "informational"
		} else if nsDelta > nsGatePct {
			status = "NS REGRESSION"
			failures = append(failures, fmt.Sprintf("%s ns/op %d -> %d (%+.1f%%)", name, b.NsPerOp, cur.NsPerOp, nsDelta))
		}
		fmt.Printf("%-18s allocs/op %d -> %d (limit %.0f) %-16s ns/op %d -> %d (%+.1f%%, %s)\n",
			name, b.AllocsPerOp, cur.AllocsPerOp, allocLimit, status,
			b.NsPerOp, cur.NsPerOp, nsDelta, nsStatus)
	}
	// Forward compatibility: a benchmark present in this run but absent
	// from the committed baseline is informational, never a failure —
	// new benchmarks land in the same PR that adds them, before any
	// baseline that knows their names exists.
	fresh := make([]string, 0)
	for name := range artifact {
		if _, ok := base[name]; !ok {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		cur := artifact[name]
		fmt.Printf("%-18s NEW (no baseline) %d ns/op %d allocs/op\n", name, cur.NsPerOp, cur.AllocsPerOp)
	}
	if len(failures) > 0 {
		return fmt.Errorf("regressed beyond the baseline %s: %v", path, failures)
	}
	return nil
}

// runJSONBench measures the five end-to-end attacks with testing.Benchmark
// under cfg.noise and writes the artifact. Each closure reports the
// oracle-query count of its last run as a custom metric, mirroring
// bench_test.go.
func runJSONBench(cfg benchConfig) error {
	count := cfg.count
	if count < 1 {
		count = 1
	}
	seed, noise := cfg.seed, cfg.noise
	ctx := context.Background()
	// benchAttack measures one attack end to end via RunAttack; only the
	// seqpair bench runs the expurgated subcode, matching the historical
	// artifact.
	benchAttack := func(name string, seedOff uint64) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := experiments.RunAttack(ctx, transcript.Spec{
					Attack:    name,
					Seed:      seed + uint64(i)*3 + seedOff,
					Noise:     noise.String(),
					Expurgate: name == "seqpair",
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.Queries), "oracle-queries")
			}
		}
	}
	// Fleet throughput pair: the batched SoA kernel vs the per-device
	// loop it replaces, on identical 256-device × 8x16 workloads with a
	// 50 µs counter window. Both run counter noise regardless of -noise:
	// the fleet kernel exists only for that model.
	const fleetDevices = 256
	fleetCfg := silicon.DefaultConfig(8, 16)
	fleetCfg.Noise = silicon.NoiseCounter
	fleetCfg.CounterWindowUS = 50
	fleetSeeds := make([]uint64, fleetDevices)
	for d := range fleetSeeds {
		fleetSeeds[d] = rng.StreamSeed(seed, uint64(d))
	}
	benchFleetSweep := func(b *testing.B) {
		fleet := silicon.NewFleet(fleetCfg, fleetSeeds)
		dst := make([]float64, fleet.Devices()*fleet.NumOsc())
		env := fleetCfg.NominalEnv()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fleet.MeasureFleetInto(dst, env)
		}
	}
	benchPerDeviceSweep := func(b *testing.B) {
		env := fleetCfg.NominalEnv()
		dst := make([]float64, fleetCfg.Rows*fleetCfg.Cols)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for d := 0; d < fleetDevices; d++ {
				src := rng.New(fleetSeeds[d])
				arr := silicon.NewArray(fleetCfg, src)
				nm := arr.NewNoise(src)
				arr.MeasureIntoWith(dst, env, nm)
			}
		}
	}
	// CampaignAttacks: one op = a pooled seqpair-attack campaign over
	// campaignSeeds device populations on every core — the fleet-scale
	// end-to-end number the per-core throughput field derives from.
	const campaignSeeds = 16
	benchCampaign := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := campaign.Run(ctx, campaign.Spec{
				Task: "seqpair-attack", BaseSeed: seed, Seeds: campaignSeeds,
				Options: campaign.Options{Noise: noise.String()},
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"AttackSeqPair", benchAttack("seqpair", 5)},
		{"AttackTempCo", benchAttack("tempco", 7)},
		{"AttackGroupBased", benchAttack("groupbased", 9)},
		{"AttackMasking", benchAttack("masking", 11)},
		{"AttackChain", benchAttack("chain", 13)},
		{"FleetSweep", benchFleetSweep},
		{"PerDeviceSweep", benchPerDeviceSweep},
		{"CampaignAttacks", benchCampaign},
	}
	fmt.Printf("noise model: %s\n", noise)
	artifact := make(map[string]BenchRecord, len(benches))
	for _, bench := range benches {
		recs := make([]BenchRecord, 0, count)
		for c := 0; c < count; c++ {
			res := testing.Benchmark(bench.fn)
			if res.N == 0 {
				// testing.Benchmark swallows b.Fatal; a zero-iteration
				// result means the attack under measurement failed.
				return fmt.Errorf("%s failed to complete a single iteration", bench.name)
			}
			recs = append(recs, BenchRecord{
				NsPerOp:       res.NsPerOp(),
				AllocsPerOp:   res.AllocsPerOp(),
				BytesPerOp:    res.AllocedBytesPerOp(),
				OracleQueries: res.Extra["oracle-queries"],
				Iterations:    res.N,
			})
		}
		rec := medianRecord(recs)
		// Throughput fields derive from the median ns/op so they inherit
		// its noise rejection instead of adding a second noisy estimate.
		if rec.NsPerOp > 0 {
			switch bench.name {
			case "FleetSweep":
				rec.FleetDevicesPerSec = fleetDevices * 1e9 / float64(rec.NsPerOp)
			case "PerDeviceSweep":
				rec.DevicesPerSec = fleetDevices * 1e9 / float64(rec.NsPerOp)
			case "CampaignAttacks":
				rec.AttacksPerSecPerCore = campaignSeeds * 1e9 / float64(rec.NsPerOp) / float64(runtime.NumCPU())
			}
		}
		artifact[bench.name] = rec
		fmt.Printf("%-18s %12d ns/op %10d allocs/op %10d B/op %8.0f oracle-queries (median of %d)\n",
			bench.name, rec.NsPerOp, rec.AllocsPerOp, rec.BytesPerOp, rec.OracleQueries, count)
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(cfg.jsonOut, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", cfg.jsonOut)
	if cfg.baseline != "" {
		return checkBaseline(artifact, cfg.baseline, cfg.nsGatePct)
	}
	return nil
}
