package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/campaignd"
)

// httpError is a non-2xx daemon answer, carrying the status code so the
// retry policy can classify it.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

// transient reports whether an error is worth retrying: connection-level
// failures (daemon restarting, listener not up yet) and the 5xx family —
// notably 503 from a draining daemon — are; 4xx answers and our own
// context cancellation are not.
func transient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var he *httpError
	if errors.As(err, &he) {
		return he.code >= 500 || he.code == http.StatusTooManyRequests
	}
	return true
}

// withRetry runs op, retrying transient failures with capped exponential
// backoff (250ms doubling to 4s, 8 attempts ≈ 16s of patience — enough
// to ride out a daemon restart). Permanent errors and context
// cancellation return immediately.
func withRetry(ctx context.Context, verbose bool, what string, op func() error) error {
	const (
		attempts   = 8
		maxBackoff = 4 * time.Second
	)
	backoff := 250 * time.Millisecond
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil || !transient(err) || attempt == attempts {
			return err
		}
		if verbose {
			fmt.Printf("%s failed (%v); retry %d/%d in %s\n", what, err, attempt, attempts-1, backoff)
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
		backoff = min(backoff*2, maxBackoff)
	}
}

// runRemote submits the spec to a puf-campaignd daemon, follows the
// job's SSE progress stream (reconnecting if the daemon restarts
// mid-sweep — the job resumes from its checkpoints), and returns the
// daemon's final result. On context cancellation the remote job is
// cancelled too, so Ctrl-C behaves like local mode.
func runRemote(ctx context.Context, addr string, spec campaignd.Spec, verbose bool) (*campaign.Result, error) {
	base := strings.TrimRight(addr, "/")
	client := &http.Client{}

	st, err := submit(ctx, client, base, spec, verbose)
	if err != nil {
		return nil, err
	}
	if verbose {
		fmt.Printf("submitted job %s: %d shards of <=%d seeds\n", st.ID, st.ShardsTotal, st.Spec.ShardSize)
	}

	final, err := await(ctx, client, base, st.ID, verbose)
	if err != nil {
		if ctx.Err() != nil {
			// Best-effort remote cancel with a fresh context: ours is dead.
			cancelCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			cancelJob(cancelCtx, client, base, st.ID)
		}
		return nil, err
	}
	if final.State != campaignd.StateDone {
		msg := final.Error
		if msg == "" {
			msg = string(final.State)
		}
		return nil, fmt.Errorf("job %s: %s", st.ID, msg)
	}
	if final.Result == nil {
		return nil, fmt.Errorf("job %s: done but the daemon returned no result", st.ID)
	}
	return final.Result, nil
}

// submit POSTs the spec, riding out transient failures — a connection
// refused during a daemon restart, a 503 from a draining instance —
// with capped backoff. Invalid specs (4xx) fail immediately.
func submit(ctx context.Context, client *http.Client, base string, spec campaignd.Spec, verbose bool) (*campaignd.JobStatus, error) {
	var st *campaignd.JobStatus
	err := withRetry(ctx, verbose, "submit", func() error {
		var err error
		st, err = submitOnce(ctx, client, base, spec)
		return err
	})
	return st, err
}

func submitOnce(ctx context.Context, client *http.Client, base string, spec campaignd.Spec) (*campaignd.JobStatus, error) {
	blob, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/campaigns", bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("submit to %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, &httpError{code: resp.StatusCode,
			msg: fmt.Sprintf("submit to %s: %s: %s", base, resp.Status, apiError(resp.Body))}
	}
	var st campaignd.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("submit to %s: decode: %w", base, err)
	}
	return &st, nil
}

// await follows the job until a terminal state, preferring the SSE
// stream and falling back to status polls when the connection drops.
// Poll failures retry with the same capped backoff as submit; a
// permanent answer (e.g. 404 after a wiped state dir) aborts rather
// than polling forever.
func await(ctx context.Context, client *http.Client, base, id string, verbose bool) (*campaignd.JobStatus, error) {
	for {
		streamErr := follow(ctx, client, base, id, verbose)
		var st *campaignd.JobStatus
		err := withRetry(ctx, verbose, "poll", func() error {
			var err error
			st, err = getJob(ctx, client, base, id)
			return err
		})
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, err
		}
		if st.State != campaignd.StateRunning {
			return st, nil
		}
		if verbose && streamErr != nil {
			fmt.Printf("stream interrupted (%v), reconnecting...\n", streamErr)
		}
		select {
		case <-time.After(500 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// follow consumes one SSE connection until it ends. A clean "done"
// event and a dropped connection both just return; the caller re-checks
// job state either way.
func follow(ctx context.Context, client *http.Client, base, id string, verbose bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/campaigns/"+id+"/stream", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stream: %s: %s", resp.Status, apiError(resp.Body))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<24)
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		case line == "":
			if data.Len() == 0 {
				continue
			}
			var ev campaignd.Event
			if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
				return fmt.Errorf("stream: decode event: %w", err)
			}
			data.Reset()
			if verbose {
				fmt.Printf("  shards %d/%d, seeds %d/%d (%s)\n",
					ev.ShardsDone, ev.ShardsTotal, ev.SeedsDone, ev.SeedsTotal, ev.State)
			}
		}
	}
	return sc.Err()
}

// getJob fetches the detail view (final result included when done).
func getJob(ctx context.Context, client *http.Client, base, id string) (*campaignd.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/campaigns/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &httpError{code: resp.StatusCode,
			msg: fmt.Sprintf("get job %s: %s: %s", id, resp.Status, apiError(resp.Body))}
	}
	var st campaignd.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// cancelJob is the best-effort remote cancel behind Ctrl-C.
func cancelJob(ctx context.Context, client *http.Client, base, id string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/campaigns/"+id+"/cancel", nil)
	if err != nil {
		return
	}
	if resp, err := client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// apiError extracts the {"error": ...} payload from a failed response.
func apiError(r io.Reader) string {
	blob, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(blob, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(blob))
}
