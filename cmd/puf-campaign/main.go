// Command puf-campaign runs a registered experiment across a range of
// derived device seeds on a bounded worker pool and prints aggregated
// campaign statistics (mean, stddev, min/max, and Wilson 95% intervals
// for binary outcomes such as key recovery).
//
// The aggregates are bit-identical for any -workers value: every task
// instance draws its randomness from a seed derived purely from the
// campaign base seed and the task index.
//
// Usage:
//
//	puf-campaign -list
//	puf-campaign -task attack-success -seeds 64 -workers 8
//	puf-campaign -task seqpair-attack -seeds 100 -base 42 -json
//	puf-campaign -task groupbased-attack -noise stream
//
// Attack-backed tasks enroll their devices under the silicon noise
// model named by -noise. The default is the counter-mode model (O(k)
// sparse oracle queries); -noise stream selects the legacy
// sequential-stream model whose transcripts match the historical
// goldens.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/attack"
	"repro/internal/campaign"
	_ "repro/internal/experiments" // registers every experiment task
	"repro/internal/silicon"
)

func main() {
	task := flag.String("task", "", "registered task name (see -list)")
	list := flag.Bool("list", false, "list registered tasks and exit")
	seeds := flag.Int("seeds", 16, "number of derived seeds (task instances)")
	base := flag.Uint64("base", 1, "campaign base seed")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	noise := flag.String("noise", "counter", "silicon noise model for attack-backed tasks: counter or stream")
	jsonOut := flag.Bool("json", false, "emit the full result as JSON")
	verbose := flag.Bool("v", false, "also print per-seed outcomes")
	flag.Parse()

	if *list {
		fmt.Printf("%-20s %-10s %s\n", "TASK", "FIGURE", "DESCRIPTION")
		for _, t := range campaign.Tasks() {
			fig := t.Figure
			if fig == "" {
				fig = "-"
			}
			fmt.Printf("%-20s %-10s %s\n", t.Name, fig, t.Desc)
		}
		fmt.Printf("\nattack-backed tasks dispatch through the attack registry: %v\n", attack.Names())
		return
	}
	if *task == "" {
		fmt.Fprintln(os.Stderr, "puf-campaign: -task is required (use -list to see tasks)")
		os.Exit(2)
	}

	// Validate the noise-model name up front (the same early exit the
	// sibling CLIs give), rather than failing inside the first task —
	// or, for tasks that ignore the option, not at all.
	if _, err := silicon.ParseNoiseModel(*noise); err != nil {
		fmt.Fprintln(os.Stderr, "puf-campaign:", err)
		os.Exit(2)
	}

	// Ctrl-C cancels the campaign cleanly mid-run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	res, err := campaign.Run(ctx, campaign.Spec{
		Task:     *task,
		BaseSeed: *base,
		Seeds:    *seeds,
		Workers:  *workers,
		Options:  campaign.Options{Noise: *noise},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "puf-campaign:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "puf-campaign:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("campaign %s: %d seeds (base %d), %d workers, noise=%s, %s\n",
		res.Task, res.Seeds, res.BaseSeed, res.Workers, *noise, elapsed.Round(time.Millisecond))
	if *verbose {
		for _, o := range res.Outcomes {
			fmt.Printf("  seed[%3d] = %#016x: %v\n", o.Index, o.Seed, o.Metrics)
		}
	}
	fmt.Printf("%-26s %6s %12s %12s %12s %12s %s\n",
		"METRIC", "N", "MEAN", "STDDEV", "MIN", "MAX", "WILSON-95%")
	for _, a := range res.Aggregates {
		wilson := ""
		if a.Binary {
			wilson = fmt.Sprintf("[%.3f, %.3f] (%d/%d)", a.WilsonLo, a.WilsonHi, a.Successes, a.N)
		}
		fmt.Printf("%-26s %6d %12.4f %12.4f %12.4f %12.4f %s\n",
			a.Metric, a.N, a.Mean, a.Stddev, a.Min, a.Max, wilson)
	}
}
