// Command puf-campaign runs a registered experiment across a range of
// derived device seeds and prints aggregated campaign statistics (mean,
// stddev, min/max, and Wilson 95% intervals for binary outcomes such as
// key recovery).
//
// It has two execution modes sharing one report format:
//
//   - Local (default): the campaign runs in-process on a bounded worker
//     pool, exactly as before.
//   - Client (-addr): the spec is submitted to a running puf-campaignd
//     daemon, progress is streamed over server-sent events, and the
//     daemon's final result is printed. Because every task instance
//     derives its randomness purely from (base seed, task index), the
//     two modes print bit-identical aggregates for the same spec — even
//     when the daemon was killed and resumed mid-sweep.
//
// Usage:
//
//	puf-campaign -list
//	puf-campaign -task attack-success -seeds 64 -workers 8
//	puf-campaign -task seqpair-attack -seeds 100 -base 42 -json
//	puf-campaign -task groupbased-attack -noise stream -timeout 10m
//	puf-campaign -addr http://localhost:8787 -task fig5 -seeds 256 -v
//
// Attack-backed tasks enroll their devices under the silicon noise
// model named by -noise. The default is the counter-mode model (O(k)
// sparse oracle queries); -noise stream selects the legacy
// sequential-stream model whose transcripts match the historical
// goldens.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/attack"
	"repro/internal/campaign"
	"repro/internal/campaignd"
	_ "repro/internal/experiments" // registers every experiment task
	"repro/internal/silicon"
)

func main() {
	task := flag.String("task", "", "registered task name (see -list)")
	list := flag.Bool("list", false, "list registered tasks and exit")
	seeds := flag.Int("seeds", 16, "number of derived seeds (task instances)")
	base := flag.Uint64("base", 1, "campaign base seed")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	noise := flag.String("noise", "counter", "silicon noise model for attack-backed tasks: counter or stream")
	timeout := flag.Duration("timeout", 0, "campaign wall-time limit (0 = none)")
	addr := flag.String("addr", "", "campaignd base URL (e.g. http://localhost:8787); empty = run locally")
	shardSize := flag.Int("shard-size", 0, "seeds per checkpointed shard in client mode (0 = daemon default)")
	jsonOut := flag.Bool("json", false, "emit the full result as JSON")
	verbose := flag.Bool("v", false, "print per-seed outcomes (local) or shard progress (client) as they complete")
	flag.Parse()

	if *list {
		fmt.Printf("%-20s %-10s %s\n", "TASK", "FIGURE", "DESCRIPTION")
		for _, t := range campaign.Tasks() {
			fig := t.Figure
			if fig == "" {
				fig = "-"
			}
			fmt.Printf("%-20s %-10s %s\n", t.Name, fig, t.Desc)
		}
		fmt.Printf("\nattack-backed tasks dispatch through the attack registry: %v\n", attack.Names())
		return
	}

	// Validate the whole spec up front — unknown task, non-positive
	// seed count, bad noise model — before spinning up a pool or
	// touching the network, with the same exit code the sibling CLIs
	// use for usage errors.
	if *task == "" {
		fmt.Fprintln(os.Stderr, "puf-campaign: -task is required (use -list to see tasks)")
		os.Exit(2)
	}
	if _, ok := campaign.Lookup(*task); !ok {
		fmt.Fprintf(os.Stderr, "puf-campaign: unknown task %q (use -list to see tasks)\n", *task)
		os.Exit(2)
	}
	if *seeds <= 0 {
		fmt.Fprintf(os.Stderr, "puf-campaign: -seeds must be > 0 (got %d)\n", *seeds)
		os.Exit(2)
	}
	if _, err := silicon.ParseNoiseModel(*noise); err != nil {
		fmt.Fprintln(os.Stderr, "puf-campaign:", err)
		os.Exit(2)
	}

	// Ctrl-C cancels the campaign cleanly mid-run; -timeout adds the
	// same deadline control puf-attack exposes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	spec := campaignd.Spec{
		Task:      *task,
		BaseSeed:  *base,
		Seeds:     *seeds,
		Workers:   *workers,
		Noise:     *noise,
		ShardSize: *shardSize,
	}

	var (
		res     *campaign.Result
		err     error
		start   = time.Now()
		backend = "local"
	)
	if *addr != "" {
		backend = *addr
		res, err = runRemote(ctx, *addr, spec, *verbose)
	} else {
		res, err = runLocal(ctx, spec, *verbose)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "puf-campaign:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "puf-campaign:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("campaign %s: %d seeds (base %d), %d workers, noise=%s, backend=%s, %s\n",
		res.Task, res.Seeds, res.BaseSeed, res.Workers, *noise, backend, elapsed.Round(time.Millisecond))
	printAggregates(res.Aggregates)
}

// runLocal executes the campaign in-process. With verbose set, per-seed
// outcomes stream through the engine's Progress callback as they
// complete — the same mechanism the daemon's SSE stream uses — instead
// of being re-derived from the final result.
func runLocal(ctx context.Context, spec campaignd.Spec, verbose bool) (*campaign.Result, error) {
	cspec := campaign.Spec{
		Task:     spec.Task,
		BaseSeed: spec.BaseSeed,
		Seeds:    spec.Seeds,
		Workers:  spec.Workers,
		Options:  campaign.Options{Noise: spec.Noise},
	}
	if verbose {
		cspec.Progress = func(ev campaign.ProgressEvent) {
			fmt.Printf("  [%3d/%3d] seed[%3d] = %#016x: %v\n",
				ev.Done, ev.Total, ev.Outcome.Index, ev.Outcome.Seed, ev.Outcome.Metrics)
		}
	}
	return campaign.Run(ctx, cspec)
}

// printAggregates renders the aggregate table both modes share.
func printAggregates(aggs []campaign.Aggregate) {
	fmt.Printf("%-26s %6s %12s %12s %12s %12s %s\n",
		"METRIC", "N", "MEAN", "STDDEV", "MIN", "MAX", "WILSON-95%")
	for _, a := range aggs {
		wilson := ""
		if a.Binary {
			wilson = fmt.Sprintf("[%.3f, %.3f] (%d/%d)", a.WilsonLo, a.WilsonHi, a.Successes, a.N)
		}
		fmt.Printf("%-26s %6d %12.4f %12.4f %12.4f %12.4f %s\n",
			a.Metric, a.N, a.Mean, a.Stddev, a.Min, a.Max, wilson)
	}
}
