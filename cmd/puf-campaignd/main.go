// Command puf-campaignd hosts the campaign service: a long-running
// daemon that accepts campaign specs over HTTP/JSON, shards their seed
// ranges over a bounded worker pool, checkpoints one JSONL record per
// completed shard under -state, and streams partial aggregates over
// server-sent events.
//
// On startup the daemon scans the state directory, reloads every
// checkpointed job, and resumes the unfinished ones mid-sweep —
// skipping already-checkpointed shards. Because every task instance
// derives its randomness purely from (base seed, task index), a
// resumed campaign's final aggregates are bit-identical to an
// uninterrupted run at any worker count.
//
// Usage:
//
//	puf-campaignd -state /var/lib/campaignd
//	puf-campaignd -addr :8787 -state ./state -shard-size 16
//
// API (see the README for schemas):
//
//	POST /v1/campaigns            submit {"task", "base_seed", "seeds", ...}
//	GET  /v1/campaigns            list jobs
//	GET  /v1/campaigns/{id}       job detail (final result when done)
//	POST /v1/campaigns/{id}/cancel
//	GET  /v1/campaigns/{id}/stream   SSE partial aggregates
//	GET  /healthz                 liveness
//	GET  /metrics                 Prometheus text format, per-job counters
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campaignd"
	_ "repro/internal/experiments" // registers every experiment task
)

func main() {
	addr := flag.String("addr", ":8787", "listen address")
	state := flag.String("state", "campaignd-state", "checkpoint state directory (created if missing)")
	shardSize := flag.Int("shard-size", campaignd.DefaultShardSize, "default seeds per checkpointed shard for specs that omit shard_size")
	throttle := flag.Duration("throttle", 0, "pause after each completed shard (rate limiting / testing; does not change results)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline on SIGTERM/SIGINT: in-flight shards get this long to finish and checkpoint before a hard stop")
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
	mgr, err := campaignd.New(campaignd.Options{
		StateDir:  *state,
		ShardSize: *shardSize,
		Throttle:  *throttle,
		Logf:      logger.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "puf-campaignd:", err)
		os.Exit(1)
	}
	if err := mgr.Recover(); err != nil {
		fmt.Fprintln(os.Stderr, "puf-campaignd:", err)
		os.Exit(1)
	}

	// Bind explicitly so "listening" is only logged once submissions
	// can actually arrive (the e2e harness keys off this line).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "puf-campaignd:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: campaignd.NewServer(mgr)}
	logger.Printf("puf-campaignd: listening on %s (state %s)", ln.Addr(), *state)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "puf-campaignd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		// Graceful drain: stop intake (Submit answers 503), let in-flight
		// shards finish and checkpoint under the deadline, then stop the
		// listener. Terminal states are NOT recorded for unfinished jobs:
		// they resume from their checkpoints on the next start. A second
		// signal (stop() restores default handling) kills immediately —
		// that is the crash path the resume machinery already covers.
		logger.Printf("puf-campaignd: draining (deadline %s; signal again to force)", *drainTimeout)
		stop()
		if mgr.Drain(*drainTimeout) {
			logger.Printf("puf-campaignd: drain complete; all in-flight shards checkpointed")
		} else {
			logger.Printf("puf-campaignd: drain deadline exceeded; in-flight shards will re-run on restart")
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}
}
