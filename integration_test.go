package repro

// Cross-module integration tests: attacks under non-nominal operating
// conditions, alternative ECC choices, and full helper-NVM image round
// trips through the serialization layer — the flows a downstream user
// would exercise first.

import (
	"context"
	"testing"

	"repro/internal/attack"
	"repro/internal/bitvec"
	"repro/internal/device"
	"repro/internal/ecc"
	"repro/internal/groupbased"
	"repro/internal/helperdata"
	"repro/internal/pairing"
	"repro/internal/rng"
	"repro/internal/silicon"
	"repro/internal/tempco"
)

func TestSeqPairAttackAtElevatedTemperature(t *testing.T) {
	// The §VI-A attack makes no assumption about the environment; it
	// must work unchanged on a device sitting at 45 °C and 1.25 V.
	d, err := device.EnrollSeqPair(device.SeqPairParams{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.8,
		Policy:       pairing.RandomizedStorage,
		Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3, Expurgate: true}),
		EnrollReps:   20,
	}, rng.New(301), rng.New(302))
	if err != nil {
		t.Fatal(err)
	}
	d.SetEnvironment(silicon.Environment{TempC: 45, VoltageV: 1.25})
	truth := d.TrueKey()
	res, err := attack.Run(context.Background(), "seqpair", attack.NewSeqPairTarget(d),
		attack.Options{Dist: attack.DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Key.Equal(truth) {
		t.Fatalf("attack at 45C failed:\n got %s\nwant %s", res.Key, truth)
	}
}

func TestSeqPairAttackWithRepetitionCode(t *testing.T) {
	// The attack framework is code-agnostic: a device deploying the
	// humble (7,1) repetition sketch falls the same way. The repetition
	// code contains all-ones, but the padded final block breaks the
	// complement pattern, so recovery resolves exactly here too.
	d, err := device.EnrollSeqPair(device.SeqPairParams{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.8,
		Policy:       pairing.RandomizedStorage,
		Code:         ecc.NewRepetition(3),
		EnrollReps:   20,
	}, rng.New(311), rng.New(312))
	if err != nil {
		t.Fatal(err)
	}
	truth := d.TrueKey()
	res, err := attack.Run(context.Background(), "seqpair", attack.NewSeqPairTarget(d),
		attack.Options{Dist: attack.DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Key.Equal(truth) && !(res.Ambiguous && res.Key.Equal(truth.Not())) {
		t.Fatalf("repetition-code attack failed (ambiguous=%v)", res.Ambiguous)
	}
}

func TestTempCoHelperSurvivesNVMImage(t *testing.T) {
	// Enroll, serialize the full helper through the NVM image format,
	// parse it back, write it into the device, and verify the device
	// still reconstructs its key — the full storage round trip the
	// paper's §VII-C asks implementations to specify.
	p := tempco.Params{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.6,
		TminC:        -20, TmaxC: 80,
		Policy:     tempco.RandomSelection,
		Code:       ecc.MustBCH(ecc.BCHConfig{M: 6, T: 3}),
		EnrollReps: 25,
	}
	d, err := device.EnrollTempCo(p, rng.New(321), rng.New(322))
	if err != nil {
		t.Fatal(err)
	}
	h := d.ReadHelper()

	im := helperdata.NewImage()
	im.Set(helperdata.SectionTempCo, h.Marshal())
	raw, err := im.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := helperdata.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	blob, ok := back.Section(helperdata.SectionTempCo)
	if !ok {
		t.Fatal("section missing after round trip")
	}
	h2, err := tempco.UnmarshalHelper(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteHelper(h2); err != nil {
		t.Fatalf("round-tripped helper rejected: %v", err)
	}
	ok10 := 0
	for i := 0; i < 10; i++ {
		if d.App() {
			ok10++
		}
	}
	if ok10 < 8 {
		t.Fatalf("device broken after NVM round trip: %d/10", ok10)
	}
}

func TestAttackSurvivesHelperImageManipulationPath(t *testing.T) {
	// The attacker's manipulations expressed through the byte-level NVM
	// path: read image, parse, mutate one pair order, re-serialize,
	// parse again, write. Equivalent to the in-memory manipulation and
	// the checksum recomputes trivially (it guards corruption, not
	// attackers).
	d, err := device.EnrollSeqPair(device.SeqPairParams{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.8,
		Policy:       pairing.RandomizedStorage,
		Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
		EnrollReps:   20,
	}, rng.New(331), rng.New(332))
	if err != nil {
		t.Fatal(err)
	}
	h := d.ReadHelper()

	im := helperdata.NewImage()
	im.Set(helperdata.SectionSeqPairs, h.Pairs.Marshal())
	im.Set(helperdata.SectionOffset, h.Offset.Bytes())
	raw, err := im.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	// Attacker side: parse, mutate, re-serialize.
	parsed, err := helperdata.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := parsed.Section(helperdata.SectionSeqPairs)
	pairsHelper, err := pairing.UnmarshalSeqPair(blob)
	if err != nil {
		t.Fatal(err)
	}
	tcap := d.Code().T()
	for i := 0; i <= tcap; i++ {
		pairsHelper.Pairs[i] = pairsHelper.Pairs[i].Swapped()
	}
	parsed.Set(helperdata.SectionSeqPairs, pairsHelper.Marshal())
	raw2, err := parsed.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	// Device side: parse the manipulated image and install it.
	final, err := helperdata.Unmarshal(raw2)
	if err != nil {
		t.Fatal(err)
	}
	blob2, _ := final.Section(helperdata.SectionSeqPairs)
	manipPairs, err := pairing.UnmarshalSeqPair(blob2)
	if err != nil {
		t.Fatal(err)
	}
	offBytes, _ := final.Section(helperdata.SectionOffset)
	offset, err := bitvec.FromBytes(offBytes, h.Offset.Len())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteHelper(device.SeqPairHelperNVM{Pairs: manipPairs, Offset: offset}); err != nil {
		t.Fatal(err)
	}
	// t+1 deterministic inversions: the app must fail nearly always.
	fails := 0
	for i := 0; i < 10; i++ {
		if !d.App() {
			fails++
		}
	}
	if fails < 8 {
		t.Fatalf("byte-level manipulation invisible: only %d/10 failures", fails)
	}
}

func TestGroupBasedAttackLargerArray(t *testing.T) {
	// The §VI-C recovery scales beyond the illustrative 4x10 array.
	if testing.Short() {
		t.Skip("larger-array attack")
	}
	sum, err := attackGroupArray(t, 6, 12, 401)
	if err != nil {
		t.Fatal(err)
	}
	if !sum {
		t.Fatal("6x12 group-based attack failed")
	}
}

func attackGroupArray(t *testing.T, rows, cols int, seed uint64) (bool, error) {
	t.Helper()
	d, err := device.EnrollGroupBased(groupParams(rows, cols), rng.New(seed), rng.New(seed+1))
	if err != nil {
		return false, err
	}
	truth := d.TrueKey()
	res, err := attack.Run(context.Background(), "groupbased", attack.NewGroupBasedTarget(d),
		attack.Options{Dist: attack.DefaultDistinguisher()})
	if err != nil {
		return false, err
	}
	t.Logf("%dx%d: %d-bit key, %d queries, exact=%v", rows, cols, truth.Len(), res.Queries, res.Key.Equal(truth))
	return res.Key.Equal(truth), nil
}

func groupParams(rows, cols int) groupbased.Params {
	return groupbased.Params{
		Rows: rows, Cols: cols,
		Degree:       2,
		ThresholdMHz: 0.5,
		MaxGroupSize: 6,
		Code:         ecc.MustBCH(ecc.BCHConfig{M: 6, T: 3}),
		EnrollReps:   25,
	}
}

func TestSeqPairAttackWithGolayCode(t *testing.T) {
	// Third code family: a device deploying the perfect Golay(23,12,3)
	// code. Perfect codes never signal decode failure — the observable
	// is purely the key mismatch after miscorrection — and the attack
	// framework handles that regime unchanged.
	d, err := device.EnrollSeqPair(device.SeqPairParams{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.8,
		Policy:       pairing.RandomizedStorage,
		Code:         ecc.NewGolay(),
		EnrollReps:   20,
	}, rng.New(341), rng.New(342))
	if err != nil {
		t.Fatal(err)
	}
	truth := d.TrueKey()
	res, err := attack.Run(context.Background(), "seqpair", attack.NewSeqPairTarget(d),
		attack.Options{Dist: attack.DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Key.Equal(truth) && !(res.Ambiguous && res.Key.Equal(truth.Not())) {
		t.Fatalf("Golay-code attack failed (ambiguous=%v)", res.Ambiguous)
	}
	t.Logf("Golay device: %d-bit key, %d queries, ambiguous=%v", truth.Len(), res.Queries, res.Ambiguous)
}
