package repro

// Counter-mode seed-behavior goldens, the companion of
// golden_seed_test.go. The counter noise model keys every measurement
// variate by (noise seed, sweep counter, oscillator index) instead of a
// sequential stream position, so its transcripts are a NEW determinism
// contract — legitimately different from the stream goldens — and these
// values pin it: captured from the first counter-mode implementation,
// they must reproduce bit-for-bit on any host, at any parallelism, for
// as long as the contract holds. A drift here means the counter
// derivation (rng.BlockNorm keying, sweep accounting, sparse index
// sets) changed observable behavior, not just speed.

import (
	"context"
	"testing"

	"repro/internal/experiments"
	"repro/internal/silicon"
)

func TestGoldenCounterSeqPairAttackTranscripts(t *testing.T) {
	want := []struct {
		seed      uint64
		queries   int
		recovered bool
		keyBits   int
	}{
		{5, 248, true, 64},
		{8, 230, true, 64},
		{11, 240, true, 64},
	}
	for _, w := range want {
		r, err := experiments.RunSeqPairAttackNoise(context.Background(), w.seed, true, silicon.NoiseCounter)
		if err != nil {
			t.Fatalf("seed %d: %v", w.seed, err)
		}
		if r.Queries != w.queries || r.Recovered != w.recovered || r.KeyBits != w.keyBits {
			t.Errorf("seed %d: got (queries=%d recovered=%v bits=%d), want (%d %v %d)",
				w.seed, r.Queries, r.Recovered, r.KeyBits, w.queries, w.recovered, w.keyBits)
		}
	}
}

func TestGoldenCounterGroupBasedAttackTranscripts(t *testing.T) {
	want := []struct {
		seed      uint64
		queries   int
		recovered bool
		keyBits   int
	}{
		{9, 246, true, 57},
		{12, 268, true, 61},
		{15, 242, true, 55},
	}
	for _, w := range want {
		r, err := experiments.RunGroupBasedAttackNoise(context.Background(), w.seed, silicon.NoiseCounter)
		if err != nil {
			t.Fatalf("seed %d: %v", w.seed, err)
		}
		if r.Queries != w.queries || r.Recovered != w.recovered || r.KeyBits != w.keyBits {
			t.Errorf("seed %d: got (queries=%d recovered=%v bits=%d), want (%d %v %d)",
				w.seed, r.Queries, r.Recovered, r.KeyBits, w.queries, w.recovered, w.keyBits)
		}
	}
}

func TestGoldenCounterMaskingAndChainAttackTranscripts(t *testing.T) {
	masking := []struct {
		seed    uint64
		queries int
	}{{11, 72}, {14, 58}, {17, 62}}
	for _, w := range masking {
		r, err := experiments.RunMaskingAttackNoise(context.Background(), w.seed, silicon.NoiseCounter)
		if err != nil {
			t.Fatalf("masking seed %d: %v", w.seed, err)
		}
		if r.Queries != w.queries || !r.Recovered {
			t.Errorf("masking seed %d: got (queries=%d recovered=%v), want (%d true)",
				w.seed, r.Queries, r.Recovered, w.queries)
		}
	}
	chain := []struct {
		seed    uint64
		queries int
	}{{13, 122}, {16, 176}, {19, 144}}
	for _, w := range chain {
		r, err := experiments.RunChainAttackNoise(context.Background(), w.seed, silicon.NoiseCounter)
		if err != nil {
			t.Fatalf("chain seed %d: %v", w.seed, err)
		}
		if r.Queries != w.queries || !r.Recovered {
			t.Errorf("chain seed %d: got (queries=%d recovered=%v), want (%d true)",
				w.seed, r.Queries, r.Recovered, w.queries)
		}
	}
}

func TestGoldenCounterTempCoAttackTranscripts(t *testing.T) {
	want := []struct {
		seed              uint64
		queries           int
		relFound, relOkay int
	}{
		{7, 88, 12, 12},
		{10, 72, 9, 9},
		{13, 82, 12, 12},
	}
	for _, w := range want {
		r, err := experiments.RunTempCoAttackNoise(context.Background(), w.seed, silicon.NoiseCounter)
		if err != nil {
			t.Fatalf("seed %d: %v", w.seed, err)
		}
		if r.Queries != w.queries || r.RelationsFound != w.relFound || r.RelationsRight != w.relOkay {
			t.Errorf("seed %d: got (queries=%d found=%d right=%d), want (%d %d %d)",
				w.seed, r.Queries, r.RelationsFound, r.RelationsRight, w.queries, w.relFound, w.relOkay)
		}
	}
}
