// Package tempco implements the temperature-aware cooperative RO PUF of
// Yin & Qu (HOST 2009), attacked in Section VI-B of the paper.
//
// Disjoint neighbor pairs are classified over a user-defined operating
// range [Tmin, Tmax] using a linear per-pair frequency-difference model
// ∆f(T) (Fig. 3 of the paper):
//
//   - good pairs keep |∆f(T)| above the threshold everywhere and yield
//     one reliable bit each;
//   - bad pairs never exceed the threshold and are discarded;
//   - cooperating pairs are reliable except inside a crossover interval
//     [Tl, Th]; there they borrow the bit of another cooperating pair
//     (with a non-intersecting interval), masked by a good pair's bit so
//     the helper reveals nothing — provided the helping pair is chosen
//     at random among the candidates satisfying the masking constraint,
//     which is exactly the leakage subtlety the paper points out.
//
// Helper NVM stores, per cooperating pair: Tl, Th, the mask (good) pair
// index and the helping (cooperating) pair index. Outside the interval
// the device compensates the crossover itself by inverting the measured
// bit when T > Th. All of it is attacker-writable.
package tempco

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/bitvec"
	"repro/internal/ecc"
	"repro/internal/pairing"
	"repro/internal/rng"
	"repro/internal/silicon"
)

// PairClass is the Fig. 3 classification of a pair.
type PairClass int

// Pair classes.
const (
	Good PairClass = iota
	Bad
	Cooperating
)

// String implements fmt.Stringer.
func (c PairClass) String() string {
	switch c {
	case Good:
		return "good"
	case Bad:
		return "bad"
	case Cooperating:
		return "cooperating"
	}
	return fmt.Sprintf("PairClass(%d)", int(c))
}

// PairInfo is the public helper record of one pair.
type PairInfo struct {
	Pair  pairing.Pair
	Class PairClass
	// Tl, Th bound the crossover interval; meaningful for Cooperating.
	Tl, Th float64
	// MaskIdx is the index (into the pair list) of the good pair whose
	// bit masks the cooperation; -1 when unused.
	MaskIdx int
	// HelpIdx is the index of the cooperating pair providing the bit
	// inside the interval; -1 when unused.
	HelpIdx int
}

// SelectionPolicy controls how the helping pair is chosen among the
// candidates satisfying the masking constraint rc1 XOR rg1 = rci.
type SelectionPolicy int

const (
	// RandomSelection draws uniformly among satisfying candidates — the
	// paper's requirement for leakage freedom.
	RandomSelection SelectionPolicy = iota
	// DeterministicSelection takes the first satisfying candidate in
	// index order. The paper: this "exposes the following information
	// for all non-selected candidates: rcj != rci". Included for the
	// leakage ablation.
	DeterministicSelection
)

// Params configures a temperature-aware cooperative PUF.
type Params struct {
	Rows, Cols   int
	ThresholdMHz float64
	// TminC, TmaxC bound the user-defined operating range.
	TminC, TmaxC float64
	// Policy selects the helping-pair selection strategy.
	Policy SelectionPolicy
	// Code is the final ECC over the response bits (paper §VI assumes
	// one for all constructions); the bit stream is padded to blocks.
	Code ecc.Code
	// EnrollReps is the per-extreme measurement averaging factor.
	EnrollReps int
	// Noise selects the silicon measurement-noise model; the zero value
	// is the legacy sequential-stream model.
	Noise silicon.NoiseModelKind
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.Rows < 1 || p.Cols < 1 {
		return fmt.Errorf("tempco: invalid layout %dx%d", p.Rows, p.Cols)
	}
	if p.ThresholdMHz <= 0 {
		return fmt.Errorf("tempco: threshold %v <= 0", p.ThresholdMHz)
	}
	if p.TminC >= p.TmaxC {
		return fmt.Errorf("tempco: empty operating range [%v,%v]", p.TminC, p.TmaxC)
	}
	if p.Code == nil {
		return errors.New("tempco: nil ECC")
	}
	if p.EnrollReps < 1 {
		return fmt.Errorf("tempco: enrollment reps %d < 1", p.EnrollReps)
	}
	return nil
}

// Helper is the construction's complete public helper data.
type Helper struct {
	Pairs  []PairInfo
	Offset bitvec.Vector
}

// ErrReconstructFailed is the observable reconstruction failure.
var ErrReconstructFailed = errors.New("tempco: key reconstruction failed")

// classify fits the two-point linear model ∆f(T) of one pair and returns
// its class and crossover interval within the operating range.
func classify(d0, d1, t0, t1, th, tmin, tmax float64) (PairClass, float64, float64) {
	slope := (d1 - d0) / (t1 - t0)
	at := func(t float64) float64 { return d0 + slope*(t-t0) }
	// |∆f(T)| <= th on the interval where the line is inside [-th, th].
	var lo, hi float64
	if math.Abs(slope) < 1e-12 {
		if math.Abs(d0) > th {
			return Good, 0, 0
		}
		return Bad, 0, 0
	}
	tAtMinus := t0 + (-th-d0)/slope
	tAtPlus := t0 + (th-d0)/slope
	lo, hi = math.Min(tAtMinus, tAtPlus), math.Max(tAtMinus, tAtPlus)
	if hi < tmin || lo > tmax {
		return Good, 0, 0
	}
	if lo <= tmin && hi >= tmax {
		return Bad, 0, 0
	}
	if lo <= tmin || hi >= tmax {
		// Unreliable region touches a range boundary: no stable
		// reference on one side. Discard.
		return Bad, 0, 0
	}
	// Sanity: a genuine crossover flips the sign across the interval.
	if at(tmin)*at(tmax) >= 0 {
		return Bad, 0, 0
	}
	return Cooperating, lo, hi
}

// Enroll measures the array at both operating extremes (the original
// proposal's procedure), classifies every disjoint neighbor pair, wires
// up the cooperation helper records, and computes the ECC offset over
// the reference response. Measurement noise comes from the legacy
// sequential-stream model over src; devices that run another noise
// model enroll through EnrollWith.
func Enroll(a *silicon.Array, p Params, src *rng.Source) (Helper, bitvec.Vector, error) {
	return EnrollWith(a, p, src, silicon.StreamNoise(src))
}

// EnrollWith is Enroll with the measurement noise drawn from an
// explicit noise model; src still drives the non-measurement enrollment
// randomness (mask-order permutation, helping-pair selection, ECC
// offset draw). Under silicon.StreamNoise(src) it is bit-identical to
// Enroll.
func EnrollWith(a *silicon.Array, p Params, src *rng.Source, nm silicon.NoiseModel) (Helper, bitvec.Vector, error) {
	if err := p.Validate(); err != nil {
		return Helper{}, bitvec.Vector{}, err
	}
	v := a.Config().NominalVoltageV
	fMin := a.MeasureAveragedWith(silicon.Environment{TempC: p.TminC, VoltageV: v}, nm, p.EnrollReps)
	fMax := a.MeasureAveragedWith(silicon.Environment{TempC: p.TmaxC, VoltageV: v}, nm, p.EnrollReps)

	pairs := pairing.ChainPairs(p.Rows, p.Cols, true)
	infos := make([]PairInfo, len(pairs))
	refBits := make([]bool, len(pairs)) // low-temperature-side reference
	var goodIdx, coopIdx []int
	for i, pr := range pairs {
		d0 := fMin[pr.A] - fMin[pr.B]
		d1 := fMax[pr.A] - fMax[pr.B]
		class, tl, th := classify(d0, d1, p.TminC, p.TmaxC, p.ThresholdMHz, p.TminC, p.TmaxC)
		infos[i] = PairInfo{Pair: pr, Class: class, Tl: tl, Th: th, MaskIdx: -1, HelpIdx: -1}
		refBits[i] = d0 > 0
		switch class {
		case Good:
			goodIdx = append(goodIdx, i)
		case Cooperating:
			coopIdx = append(coopIdx, i)
		}
	}

	// Wire cooperation: each cooperating pair needs a good mask pair and
	// a helping cooperating pair with a non-intersecting interval whose
	// reference bit satisfies rc XOR rg = rci.
	if len(goodIdx) == 0 && len(coopIdx) > 0 {
		return Helper{}, bitvec.Vector{}, errors.New("tempco: no good pairs available for masking")
	}
	for _, c := range coopIdx {
		assigned := false
		// Try masks in random order so failures do not bias selection.
		maskOrder := src.Perm(len(goodIdx))
		for _, mi := range maskOrder {
			g := goodIdx[mi]
			want := refBits[c] != refBits[g] // rc XOR rg
			var candidates []int
			for _, j := range coopIdx {
				if j == c {
					continue
				}
				if intervalsIntersect(infos[c].Tl, infos[c].Th, infos[j].Tl, infos[j].Th) {
					continue
				}
				if refBits[j] == want {
					candidates = append(candidates, j)
				}
			}
			if len(candidates) == 0 {
				continue
			}
			pick := candidates[0]
			if p.Policy == RandomSelection {
				pick = candidates[src.Intn(len(candidates))]
			}
			infos[c].MaskIdx = g
			infos[c].HelpIdx = pick
			assigned = true
			break
		}
		if !assigned {
			// No viable cooperation: demote to bad.
			infos[c].Class = Bad
		}
	}

	resp := responseFromBits(infos, refBits)
	padded, blocks := padToBlocks(resp, p.Code)
	block := ecc.NewBlock(p.Code, blocks)
	offset := ecc.EnrollOffset(block, padded, src)
	key := keyBits(infos, padded)
	return Helper{Pairs: infos, Offset: offset.W}, key, nil
}

func intervalsIntersect(al, ah, bl, bh float64) bool {
	return al <= bh && bl <= ah
}

// responseFromBits lays the reference bits of all pairs (bad pairs
// included as placeholder zeros, keeping indices aligned) into the ECC
// input stream.
func responseFromBits(infos []PairInfo, bits []bool) bitvec.Vector {
	out := bitvec.New(len(infos))
	for i, info := range infos {
		if info.Class == Bad {
			continue
		}
		out.Set(i, bits[i])
	}
	return out
}

// keyBits extracts the key from the (corrected) stream: the bits of good
// and cooperating pairs in pair order.
func keyBits(infos []PairInfo, stream bitvec.Vector) bitvec.Vector {
	key := bitvec.New(0)
	for i, info := range infos {
		if info.Class == Bad {
			continue
		}
		b := bitvec.New(1)
		b.Set(0, stream.Get(i))
		key = key.Concat(b)
	}
	return key
}

func padToBlocks(stream bitvec.Vector, code ecc.Code) (bitvec.Vector, int) {
	n := code.N()
	blocks := (stream.Len() + n - 1) / n
	if blocks == 0 {
		blocks = 1
	}
	return stream.Concat(bitvec.New(blocks*n - stream.Len())), blocks
}

// resolveBit reconstructs the bit of pair i at temperature T from a
// fresh frequency snapshot, without cooperation (crossover compensation
// only): measured sign, inverted above Th.
func resolveBit(info PairInfo, f []float64, tempC float64) bool {
	b := pairing.ResponseBit(f, info.Pair)
	if info.Class == Cooperating && tempC > info.Th {
		b = !b
	}
	return b
}

// Reconstruct regenerates the key at the given environment temperature
// from (possibly manipulated) helper data. Structural validation mirrors
// an honest device: index ranges and class tags are checked; the helping
// pair must be outside its own declared interval at the current
// temperature. Values of Tl/Th themselves are trusted — they are helper
// data, and that trust is what the paper's acceleration trick abuses.
func Reconstruct(a *silicon.Array, p Params, h Helper, env silicon.Environment, src *rng.Source) (bitvec.Vector, error) {
	var sc Scratch
	key, err := ReconstructInto(a, p, &h, env, src, &sc)
	if err != nil {
		return bitvec.Vector{}, err
	}
	return key, nil
}

// Scratch carries the reusable buffers of ReconstructInto. A zero value
// is ready; a device keeps one per oracle and calls Invalidate when its
// helper NVM changes. Not safe for concurrent use — forks get their own
// zero Scratch.
type Scratch struct {
	freq []float64
	want []bool
	// idxs is the ascending index list equivalent of want — the sparse
	// measurement order MeasureSparse consumes, O(k) under the counter
	// noise model.
	idxs []int
	// bases caches the noise-free frequency vector per environment; the
	// §VI-B attack sweeps temperature, so the cache keys on env.
	bases silicon.BaseCache
	// helper-derived caches, valid while helperValid is set.
	helperValid bool
	keyLen      int
	blocks      int
	block       *ecc.Block
	// per-measurement buffers.
	padded    bitvec.Vector
	corrected bitvec.Vector
	key       bitvec.Vector
	ws        ecc.Workspace
}

// Invalidate drops the helper-derived caches.
func (sc *Scratch) Invalidate() { sc.helperValid = false }

// InvalidateSilicon additionally drops the caches derived from the
// silicon array's contents (the noise-free frequency vectors). Required
// on the device-pool path, where Array.Remanufactured changes the
// array's contents under the same pointer; buffer capacity is kept.
func (sc *Scratch) InvalidateSilicon() {
	sc.helperValid = false
	sc.bases.Invalidate()
}

// refresh (re)builds the helper-derived caches: validation, the subset
// of oscillators the helper actually references (bad pairs contribute no
// bits, so their oscillators are never measured — only their noise draws
// are consumed, see silicon.MeasureSubset), and the ECC geometry.
func (sc *Scratch) refresh(a *silicon.Array, p Params, h *Helper) error {
	if err := ValidateHelper(*h, a.N()); err != nil {
		return err
	}
	if cap(sc.want) < a.N() {
		sc.want = make([]bool, a.N())
	}
	sc.want = sc.want[:a.N()]
	for i := range sc.want {
		sc.want[i] = false
	}
	sc.keyLen = 0
	for _, info := range h.Pairs {
		if info.Class == Bad {
			continue
		}
		sc.keyLen++
		sc.want[info.Pair.A] = true
		sc.want[info.Pair.B] = true
		if info.Class == Cooperating {
			for _, ref := range []PairInfo{h.Pairs[info.MaskIdx], h.Pairs[info.HelpIdx]} {
				sc.want[ref.Pair.A] = true
				sc.want[ref.Pair.B] = true
			}
		}
	}
	sc.idxs = sc.idxs[:0]
	for i, wanted := range sc.want {
		if wanted {
			sc.idxs = append(sc.idxs, i)
		}
	}
	n := p.Code.N()
	blocks := (len(h.Pairs) + n - 1) / n
	if blocks == 0 {
		blocks = 1
	}
	if sc.block == nil || sc.blocks != blocks {
		sc.block = ecc.NewBlock(p.Code, blocks)
		sc.blocks = blocks
	}
	if padLen := blocks * n; sc.padded.Len() != padLen {
		sc.padded = bitvec.New(padLen)
		sc.corrected = bitvec.New(padLen)
	}
	if sc.key.Len() != sc.keyLen {
		sc.key = bitvec.New(sc.keyLen)
	}
	sc.helperValid = true
	return nil
}

// ReconstructInto is Reconstruct against caller-owned scratch state, the
// devices' per-query hot path. The returned key is scratch-owned and
// valid until the next call. Keys, failure outcomes and the noise-stream
// consumption are bit-identical to Reconstruct.
func ReconstructInto(a *silicon.Array, p Params, h *Helper, env silicon.Environment, src *rng.Source, sc *Scratch) (bitvec.Vector, error) {
	return ReconstructWith(a, p, h, env, silicon.StreamNoise(src), sc)
}

// ReconstructWith is ReconstructInto with the measurement noise drawn
// from an explicit noise model: only the helper-referenced oscillators
// are measured (MeasureSparse), which is O(k) draws under the counter
// model and a bit-identical draw-and-discard full sweep under the
// stream model.
func ReconstructWith(a *silicon.Array, p Params, h *Helper, env silicon.Environment, nm silicon.NoiseModel, sc *Scratch) (bitvec.Vector, error) {
	if !sc.helperValid {
		if err := sc.refresh(a, p, h); err != nil {
			return bitvec.Vector{}, err
		}
	}
	if cap(sc.freq) < a.N() {
		sc.freq = make([]float64, a.N())
	}
	f := a.MeasureSparseBase(sc.freq[:a.N()], sc.idxs, sc.bases.For(a, env), nm)
	t := env.TempC
	sc.padded.Zero()
	bits := sc.padded
	for i, info := range h.Pairs {
		switch info.Class {
		case Bad:
			continue
		case Good:
			bits.Set(i, pairing.ResponseBit(f, info.Pair))
		case Cooperating:
			if t < info.Tl || t > info.Th {
				bits.Set(i, resolveBit(info, f, t))
				continue
			}
			// Inside the crossover interval: borrow the helping pair's
			// bit, unmasked by the good pair's bit.
			help := h.Pairs[info.HelpIdx]
			if t >= help.Tl && t <= help.Th {
				return bitvec.Vector{}, fmt.Errorf("tempco: helping pair %d unreliable at %v C: %w",
					info.HelpIdx, t, ErrReconstructFailed)
			}
			mask := h.Pairs[info.MaskIdx]
			bits.Set(i, resolveBit(help, f, t) != pairing.ResponseBit(f, mask.Pair))
		}
	}
	if sc.padded.Len() != h.Offset.Len() {
		return bitvec.Vector{}, fmt.Errorf("tempco: offset length %d, stream %d", h.Offset.Len(), sc.padded.Len())
	}
	if _, ok := ecc.ReproduceInto(sc.block, ecc.Offset{W: h.Offset}, sc.padded, &sc.ws, sc.corrected); !ok {
		return bitvec.Vector{}, ErrReconstructFailed
	}
	keyAt := 0
	for i, info := range h.Pairs {
		if info.Class == Bad {
			continue
		}
		sc.key.Set(keyAt, sc.corrected.Get(i))
		keyAt++
	}
	return sc.key, nil
}

// ValidateHelper applies the honest device's structural checks.
func ValidateHelper(h Helper, n int) error {
	for i, info := range h.Pairs {
		for _, v := range []int{info.Pair.A, info.Pair.B} {
			if v < 0 || v >= n {
				return fmt.Errorf("tempco: pair %d references oscillator %d of %d", i, v, n)
			}
		}
		if info.Class == Cooperating {
			if info.Tl > info.Th {
				return fmt.Errorf("tempco: pair %d has inverted interval", i)
			}
			if info.MaskIdx < 0 || info.MaskIdx >= len(h.Pairs) || h.Pairs[info.MaskIdx].Class != Good {
				return fmt.Errorf("tempco: pair %d mask index invalid", i)
			}
			if info.HelpIdx < 0 || info.HelpIdx >= len(h.Pairs) || h.Pairs[info.HelpIdx].Class != Cooperating || info.HelpIdx == i {
				return fmt.Errorf("tempco: pair %d help index invalid", i)
			}
		}
	}
	return nil
}

// CountClasses tallies the classification for reporting (Fig. 3 / E3).
func CountClasses(h Helper) (good, bad, coop int) {
	for _, info := range h.Pairs {
		switch info.Class {
		case Good:
			good++
		case Bad:
			bad++
		case Cooperating:
			coop++
		}
	}
	return
}

// --- NVM serialization ---

// Marshal serializes the helper for NVM.
func (h Helper) Marshal() []byte {
	buf := binary.LittleEndian.AppendUint16(nil, uint16(len(h.Pairs)))
	for _, info := range h.Pairs {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(info.Pair.A))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(info.Pair.B))
		buf = append(buf, byte(info.Class))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(info.Tl))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(info.Th))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(int16(info.MaskIdx)))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(int16(info.HelpIdx)))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.Offset.Len()))
	buf = append(buf, h.Offset.Bytes()...)
	return buf
}

// UnmarshalHelper parses NVM bytes into a helper.
func UnmarshalHelper(data []byte) (Helper, error) {
	const rec = 2 + 2 + 1 + 8 + 8 + 2 + 2
	if len(data) < 2 {
		return Helper{}, errors.New("tempco: helper truncated")
	}
	n := int(binary.LittleEndian.Uint16(data))
	at := 2
	if len(data) < at+n*rec+4 {
		return Helper{}, errors.New("tempco: helper truncated")
	}
	h := Helper{Pairs: make([]PairInfo, n)}
	for i := range h.Pairs {
		p := &h.Pairs[i]
		p.Pair.A = int(binary.LittleEndian.Uint16(data[at:]))
		p.Pair.B = int(binary.LittleEndian.Uint16(data[at+2:]))
		p.Class = PairClass(data[at+4])
		p.Tl = math.Float64frombits(binary.LittleEndian.Uint64(data[at+5:]))
		p.Th = math.Float64frombits(binary.LittleEndian.Uint64(data[at+13:]))
		p.MaskIdx = int(int16(binary.LittleEndian.Uint16(data[at+21:])))
		p.HelpIdx = int(int16(binary.LittleEndian.Uint16(data[at+23:])))
		at += rec
	}
	obits := int(binary.LittleEndian.Uint32(data[at:]))
	at += 4
	v, err := bitvec.FromBytes(data[at:], obits)
	if err != nil {
		return Helper{}, fmt.Errorf("tempco: offset: %w", err)
	}
	h.Offset = v
	return h, nil
}
