package tempco

import (
	"math"
	"testing"

	"repro/internal/ecc"
	"repro/internal/rng"
	"repro/internal/silicon"
)

func testParams() Params {
	return Params{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.6,
		TminC:        -20,
		TmaxC:        80,
		Policy:       RandomSelection,
		Code:         ecc.MustBCH(ecc.BCHConfig{M: 6, T: 3}),
		EnrollReps:   25,
	}
}

func testArray(seed uint64, p Params) *silicon.Array {
	cfg := silicon.DefaultConfig(p.Rows, p.Cols)
	// A wider slope spread produces a healthy cooperating population.
	cfg.TempCoefSigmaMHzPerC = 0.03
	return silicon.NewArray(cfg, rng.New(seed))
}

func TestClassifyDirect(t *testing.T) {
	// Constant large delta: good.
	if c, _, _ := classify(5, 5, -20, 80, 1, -20, 80); c != Good {
		t.Fatalf("constant large delta classified %v", c)
	}
	// Constant small delta: bad.
	if c, _, _ := classify(0.5, 0.5, -20, 80, 1, -20, 80); c != Bad {
		t.Fatalf("constant small delta classified %v", c)
	}
	// Sign change inside the range with stable extremes: cooperating.
	c, tl, th := classify(5, -5, -20, 80, 1, -20, 80)
	if c != Cooperating {
		t.Fatalf("crossover classified %v", c)
	}
	if !(tl > -20 && th < 80 && tl < th) {
		t.Fatalf("interval [%v,%v] invalid", tl, th)
	}
	// The crossover midpoint (delta zero at T=30) must be inside.
	if !(tl < 30 && 30 < th) {
		t.Fatalf("interval [%v,%v] misses the zero at 30", tl, th)
	}
	// Crossover interval touching the boundary: bad (no stable side).
	if c, _, _ := classify(1.2, -50, -20, 80, 1, -20, 80); c != Cooperating {
		// Just ensure this specific shape stays consistent: the
		// interval is [~-19.6, ~-15.8] with threshold 1... recompute:
		// slope = -51.2/100 = -0.512; zero at T = -20 + 1.2/0.512 ≈ -17.7.
		// |d| <= 1 for T in [-17.7-1.95, -17.7+1.95] ≈ [-19.6, -15.7],
		// inside the range, so Cooperating is correct.
		t.Fatalf("boundary-adjacent crossover classified %v", c)
	}
	// Interval extending past Tmin: bad.
	if c, _, _ := classify(0.5, -60, -20, 80, 1, -20, 80); c != Bad {
		t.Fatalf("boundary-crossing interval classified %v", c)
	}
}

func TestEnrollClassifiesAllThreeKinds(t *testing.T) {
	p := testParams()
	a := testArray(1, p)
	h, _, err := Enroll(a, p, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	good, bad, coop := CountClasses(h)
	if good == 0 || coop == 0 {
		t.Fatalf("classes good=%d bad=%d coop=%d: need good and cooperating pairs", good, bad, coop)
	}
	if good+bad+coop != len(h.Pairs) {
		t.Fatal("classes do not partition the pairs")
	}
}

func TestCooperationWiringInvariants(t *testing.T) {
	p := testParams()
	a := testArray(3, p)
	h, _, err := Enroll(a, p, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateHelper(h, a.N()); err != nil {
		t.Fatal(err)
	}
	for i, info := range h.Pairs {
		if info.Class != Cooperating {
			continue
		}
		help := h.Pairs[info.HelpIdx]
		if intervalsIntersect(info.Tl, info.Th, help.Tl, help.Th) {
			t.Fatalf("pair %d: intersecting crossover intervals", i)
		}
		if h.Pairs[info.MaskIdx].Class != Good {
			t.Fatalf("pair %d: mask is not a good pair", i)
		}
	}
}

func TestMaskingConstraintHolds(t *testing.T) {
	// rc XOR rg must equal rci at enrollment reference conditions.
	p := testParams()
	a := testArray(5, p)
	h, _, err := Enroll(a, p, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	// Recover reference bits from noise-free low-temperature deltas.
	v := a.Config().NominalVoltageV
	envMin := silicon.Environment{TempC: p.TminC, VoltageV: v}
	bitAt := func(i int) bool {
		return a.PairDeltaF(h.Pairs[i].Pair.A, h.Pairs[i].Pair.B, envMin) > 0
	}
	for i, info := range h.Pairs {
		if info.Class != Cooperating {
			continue
		}
		rc := bitAt(i)
		rg := bitAt(info.MaskIdx)
		rci := bitAt(info.HelpIdx)
		if (rc != rg) != rci {
			t.Fatalf("pair %d: masking constraint violated", i)
		}
	}
}

func TestReconstructStableAcrossRange(t *testing.T) {
	p := testParams()
	a := testArray(7, p)
	h, key, err := Enroll(a, p, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(9)
	v := a.Config().NominalVoltageV
	for _, temp := range []float64{-20, -5, 10, 25, 40, 55, 70, 80} {
		ok := 0
		const trials = 10
		for trial := 0; trial < trials; trial++ {
			got, err := Reconstruct(a, p, h, silicon.Environment{TempC: temp, VoltageV: v}, src)
			if err == nil && got.Equal(key) {
				ok++
			}
		}
		if ok < trials-2 {
			t.Fatalf("T=%v: only %d of %d reconstructions matched", temp, ok, trials)
		}
	}
}

func TestHelperSubstitutionFlipsBitWhenBitsDiffer(t *testing.T) {
	// The §VI-B attack primitive, verified mechanically: substituting a
	// helping pair with a DIFFERENT reference bit makes the cooperating
	// pair reconstruct wrongly at an in-interval temperature.
	p := testParams()
	a := testArray(11, p)
	h, key, err := Enroll(a, p, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	v := a.Config().NominalVoltageV
	envMin := silicon.Environment{TempC: p.TminC, VoltageV: v}
	refBit := func(i int) bool {
		return a.PairDeltaF(h.Pairs[i].Pair.A, h.Pairs[i].Pair.B, envMin) > 0
	}
	// Find a cooperating pair and a substitute with the opposite bit and
	// a disjoint interval.
	target, substitute := -1, -1
	var midT float64
	for i, info := range h.Pairs {
		if info.Class != Cooperating {
			continue
		}
		mid := (info.Tl + info.Th) / 2
		for j, other := range h.Pairs {
			if j == i || other.Class != Cooperating {
				continue
			}
			if intervalsIntersect(info.Tl, info.Th, other.Tl, other.Th) {
				continue
			}
			if refBit(j) != refBit(h.Pairs[i].HelpIdx) {
				target, substitute, midT = i, j, mid
				break
			}
		}
		if target >= 0 {
			break
		}
	}
	if target < 0 {
		t.Skip("no opposite-bit substitute available on this instance")
	}

	manip := Helper{Pairs: append([]PairInfo(nil), h.Pairs...), Offset: h.Offset}
	manip.Pairs[target].HelpIdx = substitute

	env := silicon.Environment{TempC: midT, VoltageV: v}
	src := rng.New(13)
	failures := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		got, err := Reconstruct(a, p, manip, env, src)
		if err != nil || !got.Equal(key) {
			failures++
		}
	}
	// One injected error is within t=3, so reconstruction usually still
	// SUCCEEDS — the distinguishing needs the common offset. What must
	// hold mechanically: the manipulated helper with a SAME-bit
	// substitute behaves like the original. Here we only require the
	// corrected key to stay equal (ECC absorbs the single error).
	if failures > trials/2 {
		t.Fatalf("single-bit substitution overwhelmed the ECC: %d/%d failures", failures, trials)
	}
}

func TestThManipulationInjectsDeterministicError(t *testing.T) {
	// The acceleration trick: setting Th below the current temperature
	// for a good... no — for a COOPERATING pair whose true crossover is
	// above, forces a wrong inversion. With t+1 such manipulations,
	// reconstruction must fail almost always.
	p := testParams()
	a := testArray(21, p)
	h, key, err := Enroll(a, p, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	v := a.Config().NominalVoltageV
	const temp = 25.0
	manip := Helper{Pairs: append([]PairInfo(nil), h.Pairs...), Offset: h.Offset}
	injected := 0
	for i, info := range manip.Pairs {
		if injected > p.Code.T() {
			break
		}
		// Pick cooperating pairs whose interval lies entirely above
		// temp: honest behaviour at temp is "no inversion" (T < Tl).
		// Shift the interval below temp: the device now inverts.
		if info.Class == Cooperating && info.Tl > temp+5 {
			manip.Pairs[i].Tl = temp - 10
			manip.Pairs[i].Th = temp - 5
			injected++
		}
	}
	if injected <= p.Code.T() {
		t.Skipf("only %d injectable pairs on this instance", injected)
	}
	src := rng.New(23)
	failures := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		got, err := Reconstruct(a, p, manip, silicon.Environment{TempC: temp, VoltageV: v}, src)
		if err != nil || !got.Equal(key) {
			failures++
		}
	}
	if failures < trials-2 {
		t.Fatalf("t+1 injected inversions: only %d of %d failed", failures, trials)
	}
}

func TestValidateHelperRejects(t *testing.T) {
	p := testParams()
	a := testArray(31, p)
	h, _, err := Enroll(a, p, rng.New(32))
	if err != nil {
		t.Fatal(err)
	}
	find := func(class PairClass) int {
		for i, info := range h.Pairs {
			if info.Class == class {
				return i
			}
		}
		return -1
	}
	ci := find(Cooperating)
	if ci < 0 {
		t.Skip("no cooperating pair")
	}
	clone := func() Helper {
		return Helper{Pairs: append([]PairInfo(nil), h.Pairs...), Offset: h.Offset}
	}
	bad1 := clone()
	bad1.Pairs[ci].MaskIdx = ci // mask must be Good
	if ValidateHelper(bad1, a.N()) == nil {
		t.Error("mask pointing at non-good pair must fail")
	}
	bad2 := clone()
	bad2.Pairs[ci].HelpIdx = ci // self-help
	if ValidateHelper(bad2, a.N()) == nil {
		t.Error("self-referential help must fail")
	}
	bad3 := clone()
	bad3.Pairs[0].Pair.A = a.N()
	if ValidateHelper(bad3, a.N()) == nil {
		t.Error("out-of-range oscillator must fail")
	}
	bad4 := clone()
	bad4.Pairs[ci].Tl, bad4.Pairs[ci].Th = 10, -10
	if ValidateHelper(bad4, a.N()) == nil {
		t.Error("inverted interval must fail")
	}
}

func TestHelperMarshalRoundTrip(t *testing.T) {
	p := testParams()
	a := testArray(41, p)
	h, _, err := Enroll(a, p, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalHelper(h.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Pairs) != len(h.Pairs) {
		t.Fatalf("pair count %d vs %d", len(back.Pairs), len(h.Pairs))
	}
	for i := range h.Pairs {
		a, b := h.Pairs[i], back.Pairs[i]
		if a.Pair != b.Pair || a.Class != b.Class || a.MaskIdx != b.MaskIdx || a.HelpIdx != b.HelpIdx {
			t.Fatalf("pair %d mismatch: %+v vs %+v", i, a, b)
		}
		if math.Abs(a.Tl-b.Tl) > 0 || math.Abs(a.Th-b.Th) > 0 {
			t.Fatalf("pair %d interval mismatch", i)
		}
	}
	if !back.Offset.Equal(h.Offset) {
		t.Fatal("offset mismatch")
	}
	if _, err := UnmarshalHelper(h.Marshal()[:10]); err == nil {
		t.Fatal("truncated helper must fail")
	}
}

func TestDeterministicSelectionIsFirstCandidate(t *testing.T) {
	// With DeterministicSelection the chosen helper must be the lowest-
	// index satisfying candidate — the leakage source the paper flags.
	p := testParams()
	p.Policy = DeterministicSelection
	a := testArray(51, p)
	h, _, err := Enroll(a, p, rng.New(52))
	if err != nil {
		t.Fatal(err)
	}
	v := a.Config().NominalVoltageV
	envMin := silicon.Environment{TempC: p.TminC, VoltageV: v}
	refBit := func(i int) bool {
		return a.PairDeltaF(h.Pairs[i].Pair.A, h.Pairs[i].Pair.B, envMin) > 0
	}
	for i, info := range h.Pairs {
		if info.Class != Cooperating {
			continue
		}
		want := refBit(i) != refBit(info.MaskIdx)
		for j := 0; j < info.HelpIdx; j++ {
			cand := h.Pairs[j]
			if j == i || cand.Class != Cooperating {
				continue
			}
			if intervalsIntersect(info.Tl, info.Th, cand.Tl, cand.Th) {
				continue
			}
			if refBit(j) == want {
				t.Fatalf("pair %d: candidate %d precedes chosen %d", i, j, info.HelpIdx)
			}
		}
	}
}

func TestClassStrings(t *testing.T) {
	if Good.String() != "good" || Bad.String() != "bad" || Cooperating.String() != "cooperating" {
		t.Fatal("class strings wrong")
	}
}

func BenchmarkEnroll8x16(b *testing.B) {
	p := testParams()
	a := testArray(1, p)
	src := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Enroll(a, p, src); err != nil {
			b.Fatal(err)
		}
	}
}
