package helperdata

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// withChecksum appends a valid trailing CRC to a hand-built body, so
// fuzz seeds exercise the structural validation behind the checksum
// gate (the paper's §VII-C point: unspecified parsing hides security
// bugs, so every malformed shape must be rejected deliberately).
func withChecksum(body []byte) []byte {
	return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
}

// seedBody builds a header + sections body without checksum.
func seedBody(sections int, mangle func([]byte) []byte) []byte {
	body := append([]byte(nil), magic...)
	body = append(body, version)
	body = binary.LittleEndian.AppendUint16(body, uint16(sections))
	for i := 0; i < sections; i++ {
		name := []byte{byte('a' + i)}
		body = append(body, byte(len(name)))
		body = append(body, name...)
		body = binary.LittleEndian.AppendUint32(body, 3)
		body = append(body, 1, 2, 3)
	}
	if mangle != nil {
		body = mangle(body)
	}
	return body
}

func FuzzUnmarshal(f *testing.F) {
	// Valid images of varying shapes.
	for _, n := range []int{0, 1, 3} {
		f.Add(withChecksum(seedBody(n, nil)))
	}
	im := NewImage()
	im.Set("ecc-offset", bytes.Repeat([]byte{0x5a}, 40))
	im.Set("seq-pairs", []byte{1, 0, 2, 0, 3, 0})
	if raw, err := im.Marshal(); err == nil {
		f.Add(raw)
	}
	// Malformed shapes with VALID checksums, so parsing gets past the
	// CRC gate: truncated section data, oversized declared length,
	// trailing bytes, duplicate names, zero-length name, count lies.
	f.Add(withChecksum(seedBody(1, func(b []byte) []byte { return b[:len(b)-2] })))
	f.Add(withChecksum(seedBody(1, func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[len(b)-7:], 0xffffff)
		return b
	})))
	f.Add(withChecksum(append(seedBody(1, nil), 9, 9, 9)))
	f.Add(withChecksum(func() []byte {
		b := seedBody(2, nil)
		b[17] = b[8] // give section 2 the first section's name
		return b
	}()))
	f.Add(withChecksum(seedBody(1, func(b []byte) []byte {
		b[7] = 0 // zero-length section name
		return b
	})))
	f.Add(withChecksum(seedBody(0, func(b []byte) []byte {
		binary.LittleEndian.PutUint16(b[5:], 40) // claims 40 sections, has 0
		return b
	})))
	// Corrupt checksum and short inputs.
	f.Add(seedBody(1, nil))
	f.Add([]byte("ROPF"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		im, err := Unmarshal(raw)
		if err != nil {
			return // rejected inputs just must not panic
		}
		// Accepted inputs must survive a canonical round trip.
		out, err := im.Marshal()
		if err != nil {
			t.Fatalf("accepted image fails to marshal: %v", err)
		}
		im2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("canonical form rejected: %v", err)
		}
		if !im.Equal(im2) {
			t.Fatal("round trip changed the image")
		}
	})
}
