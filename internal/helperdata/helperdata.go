// Package helperdata models the public helper NVM image of a deployed
// PUF device: a sectioned, byte-serializable container holding each
// construction's helper blobs (pair lists, polynomial coefficients,
// group assignments, ECC redundancy).
//
// The paper's §VII-C criticizes attacked proposals for leaving "the
// precise storage format, parsing procedure and/or sanity checks"
// unspecified, since "subtle differences might impact security
// tremendously". This package pins one precise format so that the
// parsing layer itself cannot hide ambiguity:
//
//	image := magic(4) version(1) sectionCount(2)
//	         { nameLen(1) name nameLen bytes  dataLen(4) data }*
//	         checksum(4)
//
// The checksum is CRC-32 (IEEE) over everything before it. NOTE the
// threat model: the checksum protects against NVM corruption, NOT
// against the attacker — anyone who can write helper data can recompute
// it, exactly as the paper assumes. Integrity against manipulation needs
// the robust fuzzy extractor (internal/fuzzy), not a checksum.
package helperdata

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// Format constants.
const (
	magic   = "ROPF"
	version = 1
	// MaxSectionBytes bounds a single section; parsing rejects images
	// that claim more, preventing length-field abuse.
	MaxSectionBytes = 1 << 24
)

// Common section names used by the constructions in this repository.
const (
	SectionSeqPairs   = "seq-pairs"
	SectionMasking    = "masking"
	SectionPolynomial = "distiller-poly"
	SectionGrouping   = "grouping"
	SectionOffset     = "ecc-offset"
	SectionTempCo     = "tempco-pairs"
	SectionTag        = "robust-tag"
)

// Image is an in-memory helper NVM image: named byte sections.
type Image struct {
	sections map[string][]byte
}

// NewImage returns an empty image.
func NewImage() *Image {
	return &Image{sections: make(map[string][]byte)}
}

// Set stores a section, copying the data. Empty names are rejected at
// Marshal time; overwriting an existing section is allowed (that is what
// the attacker does).
func (im *Image) Set(name string, data []byte) {
	im.sections[name] = append([]byte(nil), data...)
}

// SetOwned stores a section WITHOUT copying: the image takes ownership
// of data and the caller must not mutate it afterwards. Attack arm
// builders use it to share one marshaled blob (e.g. an unchanged ECC
// offset) across the many images of a hypothesis sweep.
func (im *Image) SetOwned(name string, data []byte) {
	im.sections[name] = data
}

// Section returns a copy of a section's content and whether it exists.
func (im *Image) Section(name string) ([]byte, bool) {
	d, ok := im.sections[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d...), true
}

// SectionRO returns a section's content WITHOUT copying, for read-only
// parsing on hot paths. The caller must not mutate or retain the slice
// beyond the parse.
func (im *Image) SectionRO(name string) ([]byte, bool) {
	d, ok := im.sections[name]
	return d, ok
}

// Names returns the section names in sorted order.
func (im *Image) Names() []string {
	out := make([]string, 0, len(im.sections))
	for n := range im.sections {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Delete removes a section if present.
func (im *Image) Delete(name string) {
	delete(im.sections, name)
}

// Len returns the number of sections.
func (im *Image) Len() int { return len(im.sections) }

// Marshal serializes the image with its trailing CRC. Sections are
// emitted in sorted name order so equal images produce equal bytes.
func (im *Image) Marshal() ([]byte, error) {
	buf := make([]byte, 0, 64)
	buf = append(buf, magic...)
	buf = append(buf, version)
	names := im.Names()
	if len(names) > 0xffff {
		return nil, fmt.Errorf("helperdata: %d sections exceed the format limit", len(names))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(names)))
	for _, name := range names {
		if name == "" {
			return nil, errors.New("helperdata: empty section name")
		}
		if len(name) > 0xff {
			return nil, fmt.Errorf("helperdata: section name %q too long", name)
		}
		data := im.sections[name]
		if len(data) > MaxSectionBytes {
			return nil, fmt.Errorf("helperdata: section %q exceeds %d bytes", name, MaxSectionBytes)
		}
		buf = append(buf, byte(len(name)))
		buf = append(buf, name...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(data)))
		buf = append(buf, data...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// Unmarshal parses and validates an NVM image. Errors are deliberately
// specific — the paper asks for precise parsing procedures.
func Unmarshal(raw []byte) (*Image, error) {
	if len(raw) < len(magic)+1+2+4 {
		return nil, errors.New("helperdata: image truncated")
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, errors.New("helperdata: checksum mismatch (NVM corruption)")
	}
	if string(body[:4]) != magic {
		return nil, fmt.Errorf("helperdata: bad magic %q", body[:4])
	}
	if body[4] != version {
		return nil, fmt.Errorf("helperdata: unsupported version %d", body[4])
	}
	count := int(binary.LittleEndian.Uint16(body[5:]))
	at := 7
	im := NewImage()
	for i := 0; i < count; i++ {
		if at >= len(body) {
			return nil, fmt.Errorf("helperdata: section %d header past end", i)
		}
		nameLen := int(body[at])
		at++
		if nameLen == 0 || at+nameLen+4 > len(body) {
			return nil, fmt.Errorf("helperdata: section %d name malformed", i)
		}
		name := string(body[at : at+nameLen])
		at += nameLen
		dataLen := int(binary.LittleEndian.Uint32(body[at:]))
		at += 4
		if dataLen > MaxSectionBytes || at+dataLen > len(body) {
			return nil, fmt.Errorf("helperdata: section %q length %d malformed", name, dataLen)
		}
		if _, dup := im.sections[name]; dup {
			return nil, fmt.Errorf("helperdata: duplicate section %q", name)
		}
		im.Set(name, body[at:at+dataLen])
		at += dataLen
	}
	if at != len(body) {
		return nil, fmt.Errorf("helperdata: %d trailing bytes", len(body)-at)
	}
	return im, nil
}

// Equal reports whether two images have identical sections.
func (im *Image) Equal(other *Image) bool {
	if im.Len() != other.Len() {
		return false
	}
	for name, data := range im.sections {
		od, ok := other.sections[name]
		if !ok || len(od) != len(data) {
			return false
		}
		for i := range data {
			if data[i] != od[i] {
				return false
			}
		}
	}
	return true
}
