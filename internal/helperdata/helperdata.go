// Package helperdata models the public helper NVM image of a deployed
// PUF device: a sectioned, byte-serializable container holding each
// construction's helper blobs (pair lists, polynomial coefficients,
// group assignments, ECC redundancy).
//
// The paper's §VII-C criticizes attacked proposals for leaving "the
// precise storage format, parsing procedure and/or sanity checks"
// unspecified, since "subtle differences might impact security
// tremendously". This package pins one precise format so that the
// parsing layer itself cannot hide ambiguity:
//
//	image := magic(4) version(1) sectionCount(2)
//	         { nameLen(1) name nameLen bytes  dataLen(4) data }*
//	         checksum(4)
//
// The checksum is CRC-32 (IEEE) over everything before it. NOTE the
// threat model: the checksum protects against NVM corruption, NOT
// against the attacker — anyone who can write helper data can recompute
// it, exactly as the paper assumes. Integrity against manipulation needs
// the robust fuzzy extractor (internal/fuzzy), not a checksum.
package helperdata

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Format constants.
const (
	magic   = "ROPF"
	version = 1
	// MaxSectionBytes bounds a single section; parsing rejects images
	// that claim more, preventing length-field abuse.
	MaxSectionBytes = 1 << 24
)

// Common section names used by the constructions in this repository.
const (
	SectionSeqPairs   = "seq-pairs"
	SectionMasking    = "masking"
	SectionPolynomial = "distiller-poly"
	SectionGrouping   = "grouping"
	SectionOffset     = "ecc-offset"
	SectionTempCo     = "tempco-pairs"
	SectionTag        = "robust-tag"
)

// Image is an in-memory helper NVM image: named byte sections. The
// backing store is a small name-sorted slice rather than a map — real
// images hold a handful of sections, attacks build one image per
// hypothesis arm, and the sorted slice makes an image two allocations
// with cheaper lookups than map hashing at these sizes.
type Image struct {
	sections []section
}

// section is one named blob.
type section struct {
	name string
	data []byte
}

// NewImage returns an empty image.
func NewImage() *Image {
	return &Image{sections: make([]section, 0, 4)}
}

// find returns the index of name in the sorted section list, or the
// insertion point with found=false.
func (im *Image) find(name string) (int, bool) {
	for i := range im.sections {
		if im.sections[i].name == name {
			return i, true
		}
		if im.sections[i].name > name {
			return i, false
		}
	}
	return len(im.sections), false
}

// put stores data under name, keeping the list sorted.
func (im *Image) put(name string, data []byte) {
	i, found := im.find(name)
	if found {
		im.sections[i].data = data
		return
	}
	im.sections = append(im.sections, section{})
	copy(im.sections[i+1:], im.sections[i:])
	im.sections[i] = section{name: name, data: data}
}

// Set stores a section, copying the data. Empty names are rejected at
// Marshal time; overwriting an existing section is allowed (that is what
// the attacker does).
func (im *Image) Set(name string, data []byte) {
	im.put(name, append([]byte(nil), data...))
}

// SetOwned stores a section WITHOUT copying: the image takes ownership
// of data and the caller must not mutate it afterwards. Attack arm
// builders use it to share one marshaled blob (e.g. an unchanged ECC
// offset) across the many images of a hypothesis sweep.
func (im *Image) SetOwned(name string, data []byte) {
	im.put(name, data)
}

// Section returns a copy of a section's content and whether it exists.
func (im *Image) Section(name string) ([]byte, bool) {
	i, ok := im.find(name)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), im.sections[i].data...), true
}

// SectionRO returns a section's content WITHOUT copying, for read-only
// parsing on hot paths. The caller must not mutate or retain the slice
// beyond the parse.
func (im *Image) SectionRO(name string) ([]byte, bool) {
	i, ok := im.find(name)
	if !ok {
		return nil, false
	}
	return im.sections[i].data, true
}

// Names returns the section names in sorted order.
func (im *Image) Names() []string {
	out := make([]string, 0, len(im.sections))
	for i := range im.sections {
		out = append(out, im.sections[i].name)
	}
	return out
}

// Delete removes a section if present.
func (im *Image) Delete(name string) {
	if i, ok := im.find(name); ok {
		im.sections = append(im.sections[:i], im.sections[i+1:]...)
	}
}

// Len returns the number of sections.
func (im *Image) Len() int { return len(im.sections) }

// Marshal serializes the image with its trailing CRC. Sections are
// emitted in sorted name order so equal images produce equal bytes.
func (im *Image) Marshal() ([]byte, error) {
	buf := make([]byte, 0, 64)
	buf = append(buf, magic...)
	buf = append(buf, version)
	if len(im.sections) > 0xffff {
		return nil, fmt.Errorf("helperdata: %d sections exceed the format limit", len(im.sections))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(im.sections)))
	for _, s := range im.sections {
		if s.name == "" {
			return nil, errors.New("helperdata: empty section name")
		}
		if len(s.name) > 0xff {
			return nil, fmt.Errorf("helperdata: section name %q too long", s.name)
		}
		if len(s.data) > MaxSectionBytes {
			return nil, fmt.Errorf("helperdata: section %q exceeds %d bytes", s.name, MaxSectionBytes)
		}
		buf = append(buf, byte(len(s.name)))
		buf = append(buf, s.name...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.data)))
		buf = append(buf, s.data...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// Unmarshal parses and validates an NVM image. Errors are deliberately
// specific — the paper asks for precise parsing procedures.
func Unmarshal(raw []byte) (*Image, error) {
	if len(raw) < len(magic)+1+2+4 {
		return nil, errors.New("helperdata: image truncated")
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, errors.New("helperdata: checksum mismatch (NVM corruption)")
	}
	if string(body[:4]) != magic {
		return nil, fmt.Errorf("helperdata: bad magic %q", body[:4])
	}
	if body[4] != version {
		return nil, fmt.Errorf("helperdata: unsupported version %d", body[4])
	}
	count := int(binary.LittleEndian.Uint16(body[5:]))
	at := 7
	im := NewImage()
	for i := 0; i < count; i++ {
		if at >= len(body) {
			return nil, fmt.Errorf("helperdata: section %d header past end", i)
		}
		nameLen := int(body[at])
		at++
		if nameLen == 0 || at+nameLen+4 > len(body) {
			return nil, fmt.Errorf("helperdata: section %d name malformed", i)
		}
		name := string(body[at : at+nameLen])
		at += nameLen
		dataLen := int(binary.LittleEndian.Uint32(body[at:]))
		at += 4
		if dataLen > MaxSectionBytes || at+dataLen > len(body) {
			return nil, fmt.Errorf("helperdata: section %q length %d malformed", name, dataLen)
		}
		if _, dup := im.find(name); dup {
			return nil, fmt.Errorf("helperdata: duplicate section %q", name)
		}
		im.Set(name, body[at:at+dataLen])
		at += dataLen
	}
	if at != len(body) {
		return nil, fmt.Errorf("helperdata: %d trailing bytes", len(body)-at)
	}
	return im, nil
}

// Equal reports whether two images have identical sections. Both
// section lists are name-sorted, so the comparison is a single pairwise
// walk.
func (im *Image) Equal(other *Image) bool {
	if im.Len() != other.Len() {
		return false
	}
	for i := range im.sections {
		a, b := &im.sections[i], &other.sections[i]
		if a.name != b.name || len(a.data) != len(b.data) {
			return false
		}
		for j := range a.data {
			if a.data[j] != b.data[j] {
				return false
			}
		}
	}
	return true
}
