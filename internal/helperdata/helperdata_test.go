package helperdata

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/distiller"
	"repro/internal/groupbased"
	"repro/internal/pairing"
	"repro/internal/rng"
)

func TestRoundTrip(t *testing.T) {
	im := NewImage()
	im.Set(SectionGrouping, []byte{1, 2, 3})
	im.Set(SectionOffset, []byte{0xff})
	im.Set(SectionPolynomial, nil) // empty section is legal
	raw, err := im.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !im.Equal(back) {
		t.Fatal("round trip mismatch")
	}
	if back.Len() != 3 {
		t.Fatalf("%d sections", back.Len())
	}
}

func TestDeterministicEncoding(t *testing.T) {
	a := NewImage()
	a.Set("zeta", []byte{1})
	a.Set("alpha", []byte{2})
	b := NewImage()
	b.Set("alpha", []byte{2})
	b.Set("zeta", []byte{1})
	ra, _ := a.Marshal()
	rb, _ := b.Marshal()
	if string(ra) != string(rb) {
		t.Fatal("insertion order leaked into the encoding")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	im := NewImage()
	im.Set("x", []byte{1, 2, 3, 4})
	raw, _ := im.Marshal()
	for i := 0; i < len(raw); i++ {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x40
		if _, err := Unmarshal(bad); err == nil {
			t.Fatalf("corruption at byte %d undetected", i)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("ROPF"),
		[]byte("XXXX\x01\x00\x00\x00\x00\x00\x00"),
	}
	for i, raw := range cases {
		if _, err := Unmarshal(raw); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMarshalRejectsBadSections(t *testing.T) {
	im := NewImage()
	im.Set("", []byte{1})
	if _, err := im.Marshal(); err == nil {
		t.Fatal("empty name must be rejected")
	}
	im2 := NewImage()
	im2.Set(strings.Repeat("n", 300), nil)
	if _, err := im2.Marshal(); err == nil {
		t.Fatal("overlong name must be rejected")
	}
}

func TestSectionAccessors(t *testing.T) {
	im := NewImage()
	im.Set("a", []byte{9})
	if _, ok := im.Section("missing"); ok {
		t.Fatal("missing section reported present")
	}
	d, ok := im.Section("a")
	if !ok || len(d) != 1 || d[0] != 9 {
		t.Fatal("section content wrong")
	}
	// The returned slice is a copy.
	d[0] = 0
	d2, _ := im.Section("a")
	if d2[0] != 9 {
		t.Fatal("Section leaked internal storage")
	}
	im.Delete("a")
	if im.Len() != 0 {
		t.Fatal("delete failed")
	}
}

// TestBundlesConstructionHelpers exercises the intended use: packing a
// full group-based helper set into one NVM image and back.
func TestBundlesConstructionHelpers(t *testing.T) {
	poly := distiller.QuadraticValleyX(4.5, 2)
	g := groupbased.Group([]float64{9, 7, 5, 3, 1}, 1)
	pairsHelper := pairing.SeqPairHelper{Pairs: []pairing.Pair{{A: 0, B: 3}, {A: 1, B: 4}}}

	im := NewImage()
	im.Set(SectionPolynomial, poly.Marshal())
	im.Set(SectionGrouping, g.Marshal())
	im.Set(SectionSeqPairs, pairsHelper.Marshal())
	raw, err := im.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}

	pb, _ := back.Section(SectionPolynomial)
	poly2, err := distiller.Unmarshal(pb)
	if err != nil {
		t.Fatal(err)
	}
	if poly2.Eval(3, 1) != poly.Eval(3, 1) {
		t.Fatal("polynomial did not survive the image")
	}
	gb, _ := back.Section(SectionGrouping)
	g2, err := groupbased.UnmarshalGrouping(gb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Assign {
		if g2.Assign[i] != g.Assign[i] {
			t.Fatal("grouping did not survive the image")
		}
	}
	sb, _ := back.Section(SectionSeqPairs)
	p2, err := pairing.UnmarshalSeqPair(sb)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Pairs[1] != pairsHelper.Pairs[1] {
		t.Fatal("pair list did not survive the image")
	}
}

// Property: any set of random sections round-trips.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		im := NewImage()
		count := int(n)%8 + 1
		for i := 0; i < count; i++ {
			name := string(rune('a'+i)) + "sec"
			data := make([]byte, r.Intn(64))
			for j := range data {
				data[j] = byte(r.Uint64())
			}
			im.Set(name, data)
		}
		raw, err := im.Marshal()
		if err != nil {
			return false
		}
		back, err := Unmarshal(raw)
		return err == nil && im.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEqualSemantics(t *testing.T) {
	a := NewImage()
	a.Set("x", []byte{1})
	b := NewImage()
	b.Set("x", []byte{2})
	if a.Equal(b) {
		t.Fatal("different content compared equal")
	}
	c := NewImage()
	c.Set("y", []byte{1})
	if a.Equal(c) {
		t.Fatal("different names compared equal")
	}
}
