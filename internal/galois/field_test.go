package galois

import (
	"testing"
	"testing/quick"
)

func TestFieldConstruction(t *testing.T) {
	for m := 2; m <= 16; m++ {
		f := NewField(m)
		if f.Order() != 1<<m-1 {
			t.Fatalf("m=%d: order = %d", m, f.Order())
		}
		// alpha must generate the full multiplicative group: exp table
		// must contain every nonzero element exactly once.
		seen := make(map[Elem]bool)
		for i := 0; i < f.Order(); i++ {
			e := f.Exp(i)
			if e == 0 || seen[e] {
				t.Fatalf("m=%d: alpha is not primitive (repeat at %d)", m, i)
			}
			seen[e] = true
		}
	}
}

func TestUnsupportedDegreePanics(t *testing.T) {
	for _, m := range []int{0, 1, 17, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("m=%d: expected panic", m)
				}
			}()
			NewField(m)
		}()
	}
}

func TestExpLogInverse(t *testing.T) {
	f := NewField(8)
	for i := 0; i < f.Order(); i++ {
		if f.Log(f.Exp(i)) != i {
			t.Fatalf("Log(Exp(%d)) != %d", i, i)
		}
	}
	if f.Exp(-1) != f.Exp(f.Order()-1) {
		t.Fatal("negative exponent wrap failed")
	}
	if f.Exp(f.Order()) != 1 {
		t.Fatal("Exp(order) != 1")
	}
}

func TestMulProperties(t *testing.T) {
	f := NewField(6)
	n := Elem(1 << 6)
	for a := Elem(0); a < n; a++ {
		if f.Mul(a, 0) != 0 || f.Mul(0, a) != 0 {
			t.Fatal("multiplication by zero")
		}
		if f.Mul(a, 1) != a {
			t.Fatalf("a*1 != a for a=%d", a)
		}
	}
	// Commutativity and associativity on a sample.
	for a := Elem(1); a < n; a += 3 {
		for b := Elem(1); b < n; b += 5 {
			if f.Mul(a, b) != f.Mul(b, a) {
				t.Fatalf("commutativity fails at %d,%d", a, b)
			}
			for c := Elem(1); c < n; c += 11 {
				if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
					t.Fatalf("associativity fails at %d,%d,%d", a, b, c)
				}
			}
		}
	}
}

func TestDistributivity(t *testing.T) {
	f := NewField(5)
	n := Elem(1 << 5)
	for a := Elem(0); a < n; a++ {
		for b := Elem(0); b < n; b++ {
			for c := Elem(0); c < n; c += 7 {
				if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
					t.Fatalf("distributivity fails at %d,%d,%d", a, b, c)
				}
			}
		}
	}
}

func TestInvDiv(t *testing.T) {
	f := NewField(8)
	for a := Elem(1); a < 256; a++ {
		inv := f.Inv(a)
		if f.Mul(a, inv) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
		if f.Div(a, a) != 1 {
			t.Fatalf("a/a != 1 for a=%d", a)
		}
	}
	if f.Div(0, 5) != 0 {
		t.Fatal("0/b != 0")
	}
}

func TestZeroDivisionPanics(t *testing.T) {
	f := NewField(4)
	for i, fn := range []func(){
		func() { f.Inv(0) },
		func() { f.Div(3, 0) },
		func() { f.Log(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPow(t *testing.T) {
	f := NewField(8)
	if f.Pow(0, 0) != 1 {
		t.Fatal("0^0 != 1")
	}
	if f.Pow(0, 5) != 0 {
		t.Fatal("0^5 != 0")
	}
	for a := Elem(1); a < 256; a += 17 {
		acc := Elem(1)
		for k := 0; k < 10; k++ {
			if f.Pow(a, k) != acc {
				t.Fatalf("Pow(%d,%d) mismatch", a, k)
			}
			acc = f.Mul(acc, a)
		}
	}
	// Fermat: a^(2^m - 1) = 1 for nonzero a.
	for a := Elem(1); a < 256; a++ {
		if f.Pow(a, f.Order()) != 1 {
			t.Fatalf("a^order != 1 for a=%d", a)
		}
	}
}

func TestCyclotomicCoset(t *testing.T) {
	f := NewField(4) // n = 15
	c1 := f.CyclotomicCoset(1)
	want := []int{1, 2, 4, 8}
	if len(c1) != len(want) {
		t.Fatalf("coset(1) = %v", c1)
	}
	for i := range want {
		if c1[i] != want[i] {
			t.Fatalf("coset(1) = %v, want %v", c1, want)
		}
	}
	c5 := f.CyclotomicCoset(5) // {5, 10}
	if len(c5) != 2 || c5[0] != 5 || c5[1] != 10 {
		t.Fatalf("coset(5) = %v", c5)
	}
	c0 := f.CyclotomicCoset(0)
	if len(c0) != 1 || c0[0] != 0 {
		t.Fatalf("coset(0) = %v", c0)
	}
}

func TestMinimalPolynomialGF16(t *testing.T) {
	// Classic table for GF(2^4) with primitive poly x^4 + x + 1.
	f := NewField(4)
	cases := map[int]uint64{
		0: 0x3,  // x + 1 (minimal polynomial of alpha^0 = 1)
		1: 0x13, // x^4 + x + 1
		3: 0x1f, // x^4 + x^3 + x^2 + x + 1
		5: 0x7,  // x^2 + x + 1
		7: 0x19, // x^4 + x^3 + 1
	}
	for i, want := range cases {
		if got := f.MinimalPolynomial(i); got != want {
			t.Errorf("minpoly(alpha^%d) = %#x, want %#x", i, got, want)
		}
	}
}

func TestMinimalPolynomialHasRoot(t *testing.T) {
	// Every minimal polynomial must vanish on its defining element, for
	// several field sizes.
	for _, m := range []int{3, 5, 8, 10} {
		f := NewField(m)
		for i := 1; i < 20; i++ {
			mp := f.MinimalPolynomial(i)
			// Evaluate the GF(2) polynomial at alpha^i in GF(2^m).
			var acc Elem
			a := f.Exp(i)
			for k := 63; k >= 0; k-- {
				acc = f.Mul(acc, a)
				if mp>>uint(k)&1 == 1 {
					acc = f.Add(acc, 1)
				}
			}
			if acc != 0 {
				t.Fatalf("m=%d: minpoly(alpha^%d) does not vanish", m, i)
			}
		}
	}
}

func TestPolyArithmetic(t *testing.T) {
	f := NewField(8)
	p := Poly{1, 2, 3} // 3x^2 + 2x + 1
	q := Poly{5, 1}    // x + 5
	pq := f.PolyMul(p, q)
	if pq.Degree() != 3 {
		t.Fatalf("deg(pq) = %d", pq.Degree())
	}
	quot, rem := f.PolyDivMod(pq, q)
	if !polyEqual(quot, p) || !rem.IsZero() {
		t.Fatalf("divmod failed: quot=%v rem=%v", quot, rem)
	}
	// p = quot*q + rem for a non-divisible case
	quot2, rem2 := f.PolyDivMod(p, q)
	recon := PolyAdd(f.PolyMul(quot2, q), rem2)
	if !polyEqual(recon, p.trim()) {
		t.Fatalf("p != q*quot + rem: %v", recon)
	}
	if rem2.Degree() >= q.Degree() {
		t.Fatal("remainder degree not reduced")
	}
}

func polyEqual(a, b Poly) bool {
	a, b = a.trim(), b.trim()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPolyDivByZeroPanics(t *testing.T) {
	f := NewField(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.PolyDivMod(Poly{1, 1}, Poly{0})
}

func TestEvalHorner(t *testing.T) {
	f := NewField(8)
	p := Poly{7, 0, 1} // x^2 + 7
	for x := Elem(0); x < 256; x += 13 {
		want := f.Add(f.Mul(x, x), 7)
		if got := f.Eval(p, x); got != want {
			t.Fatalf("Eval at %d = %d, want %d", x, got, want)
		}
	}
	if f.Eval(nil, 5) != 0 {
		t.Fatal("Eval of zero poly != 0")
	}
}

func TestFormalDerivative(t *testing.T) {
	// d/dx (x^3 + x^2 + x + 1) = 3x^2 + 2x + 1 = x^2 + 1 in char 2.
	p := Poly{1, 1, 1, 1}
	d := FormalDerivative(p)
	want := Poly{1, 0, 1}
	if !polyEqual(d, want) {
		t.Fatalf("derivative = %v, want %v", d, want)
	}
	if FormalDerivative(Poly{5}) != nil {
		t.Fatal("derivative of constant != 0")
	}
}

// Property: (a*b)/b == a for random nonzero b.
func TestMulDivProperty(t *testing.T) {
	f := NewField(12)
	fn := func(x, y uint16) bool {
		a := Elem(x) % Elem(f.Order()+1)
		b := Elem(y)%Elem(f.Order()) + 1 // nonzero
		return f.Div(f.Mul(a, b), b) == a
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

// Property: polynomial evaluation is a ring homomorphism:
// (p*q)(x) == p(x)*q(x), (p+q)(x) == p(x)+q(x).
func TestEvalHomomorphism(t *testing.T) {
	f := NewField(8)
	fn := func(c1, c2, c3, c4, xv uint8) bool {
		p := Poly{Elem(c1), Elem(c2)}
		q := Poly{Elem(c3), Elem(c4)}
		x := Elem(xv)
		mulOK := f.Eval(f.PolyMul(p, q), x) == f.Mul(f.Eval(p, x), f.Eval(q, x))
		addOK := f.Eval(PolyAdd(p, q), x) == f.Add(f.Eval(p, x), f.Eval(q, x))
		return mulOK && addOK
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMulGF13(b *testing.B) {
	f := NewField(13)
	for i := 0; i < b.N; i++ {
		_ = f.Mul(Elem(i&0xfff|1), 0x5a5)
	}
}
