// Package galois implements arithmetic in binary extension fields GF(2^m)
// and polynomials over them.
//
// It exists to support the binary BCH error-correcting codes in
// internal/ecc: the generator polynomial of a BCH code is built from
// minimal polynomials of powers of a primitive element alpha, and decoding
// evaluates syndromes, runs Berlekamp-Massey over GF(2^m) and locates
// error positions with a Chien search. No ready-made Go library provides
// this, so the repository carries its own implementation.
//
// Fields are represented with log/antilog tables over a fixed primitive
// polynomial per extension degree m in [2, 16].
package galois

import (
	"fmt"
	"sync"
)

// primitivePolys[m] is a primitive polynomial of degree m over GF(2),
// encoded with bit i representing x^i. These are the standard minimal-
// weight primitive polynomials used throughout the coding literature.
var primitivePolys = map[int]uint32{
	2:  0x7,     // x^2 + x + 1
	3:  0xb,     // x^3 + x + 1
	4:  0x13,    // x^4 + x + 1
	5:  0x25,    // x^5 + x^2 + 1
	6:  0x43,    // x^6 + x + 1
	7:  0x89,    // x^7 + x^3 + 1
	8:  0x11d,   // x^8 + x^4 + x^3 + x^2 + 1
	9:  0x211,   // x^9 + x^4 + 1
	10: 0x409,   // x^10 + x^3 + 1
	11: 0x805,   // x^11 + x^2 + 1
	12: 0x1053,  // x^12 + x^6 + x^4 + x + 1
	13: 0x201b,  // x^13 + x^4 + x^3 + x + 1
	14: 0x4443,  // x^14 + x^10 + x^6 + x + 1
	15: 0x8003,  // x^15 + x + 1
	16: 0x1100b, // x^16 + x^12 + x^3 + x + 1
}

// Elem is an element of GF(2^m), stored as its polynomial representation.
type Elem uint32

// Field is GF(2^m) with precomputed log and antilog tables.
type Field struct {
	m    int
	n    int // 2^m - 1, the multiplicative group order
	poly uint32
	exp  []Elem // exp[i] = alpha^i, for i in [0, 2n); doubled to skip mod
	log  []int  // log[x] = i such that alpha^i = x, for x in [1, 2^m)
}

// fieldCache interns one Field per extension degree. A Field is
// immutable after construction (its tables are only ever read), and
// experiment populations construct the same BCH codes once per device,
// so rebuilding the log/antilog tables each time is pure waste.
var fieldCache sync.Map // m -> *Field

// NewField returns GF(2^m), constructing it on first use and returning
// the shared immutable instance afterwards. It panics if m is outside
// [2, 16], which is a programming error rather than a runtime condition:
// field sizes are fixed at code-construction time.
func NewField(m int) *Field {
	if f, ok := fieldCache.Load(m); ok {
		return f.(*Field)
	}
	f := newField(m)
	actual, _ := fieldCache.LoadOrStore(m, f)
	return actual.(*Field)
}

// newField builds the tables for GF(2^m).
func newField(m int) *Field {
	poly, ok := primitivePolys[m]
	if !ok {
		panic(fmt.Sprintf("galois: unsupported extension degree m=%d", m))
	}
	f := &Field{
		m:    m,
		n:    1<<m - 1,
		poly: poly,
		exp:  make([]Elem, 2*(1<<m-1)),
		log:  make([]int, 1<<m),
	}
	x := uint32(1)
	for i := 0; i < f.n; i++ {
		f.exp[i] = Elem(x)
		f.exp[i+f.n] = Elem(x)
		f.log[x] = i
		x <<= 1
		if x&(1<<m) != 0 {
			x ^= poly
		}
	}
	return f
}

// M returns the extension degree m.
func (f *Field) M() int { return f.m }

// Order returns the multiplicative group order 2^m - 1.
func (f *Field) Order() int { return f.n }

// Alpha returns the primitive element alpha (the class of x).
func (f *Field) Alpha() Elem { return f.exp[1] }

// Exp returns alpha^i for any integer i (negative allowed).
func (f *Field) Exp(i int) Elem {
	i %= f.n
	if i < 0 {
		i += f.n
	}
	return f.exp[i]
}

// Log returns the discrete logarithm of a nonzero element. It panics on
// zero, for which the logarithm is undefined.
func (f *Field) Log(a Elem) int {
	if a == 0 {
		panic("galois: log of zero")
	}
	return f.log[a]
}

// Add returns a + b (XOR in characteristic 2).
func (f *Field) Add(a, b Elem) Elem { return a ^ b }

// Mul returns a * b.
func (f *Field) Mul(a, b Elem) Elem {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Inv returns the multiplicative inverse of a. It panics on zero.
func (f *Field) Inv(a Elem) Elem {
	if a == 0 {
		panic("galois: inverse of zero")
	}
	return f.exp[f.n-f.log[a]]
}

// Div returns a / b. It panics if b is zero.
func (f *Field) Div(a, b Elem) Elem {
	if b == 0 {
		panic("galois: division by zero")
	}
	if a == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.n-f.log[b]]
}

// Pow returns a^k for k >= 0, with a^0 = 1 (including 0^0 = 1 by
// convention, which is what polynomial evaluation needs).
func (f *Field) Pow(a Elem, k int) Elem {
	if k == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	e := (f.log[a] * k) % f.n
	if e < 0 {
		e += f.n
	}
	return f.exp[e]
}

// MinimalPolynomial returns the minimal polynomial over GF(2) of alpha^i,
// encoded as a uint64 with bit j representing x^j. Minimal polynomials are
// the building blocks of BCH generator polynomials: the generator is the
// LCM of the minimal polynomials of alpha^1 .. alpha^(d-1).
func (f *Field) MinimalPolynomial(i int) uint64 {
	// Collect the cyclotomic coset {i, 2i, 4i, ...} mod (2^m - 1).
	coset := f.CyclotomicCoset(i)
	// minpoly(x) = prod over coset of (x - alpha^j), computed with
	// coefficients in GF(2^m); the result must land in GF(2).
	coeffs := []Elem{1} // constant polynomial 1
	for _, j := range coset {
		root := f.Exp(j)
		next := make([]Elem, len(coeffs)+1)
		// multiply by (x + root): next = coeffs*x + coeffs*root
		for k, c := range coeffs {
			next[k+1] ^= c
			next[k] ^= f.Mul(c, root)
		}
		coeffs = next
	}
	var out uint64
	for k, c := range coeffs {
		switch c {
		case 0:
		case 1:
			out |= 1 << uint(k)
		default:
			panic(fmt.Sprintf("galois: minimal polynomial coefficient %v not in GF(2)", c))
		}
	}
	return out
}

// CyclotomicCoset returns the 2-cyclotomic coset of i modulo 2^m - 1 in
// increasing order of generation: {i, 2i, 4i, ...}.
func (f *Field) CyclotomicCoset(i int) []int {
	i %= f.n
	if i < 0 {
		i += f.n
	}
	var coset []int
	j := i
	for {
		coset = append(coset, j)
		j = (2 * j) % f.n
		if j == i {
			break
		}
	}
	return coset
}
