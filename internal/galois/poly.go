package galois

// Poly is a polynomial over GF(2^m), coefficient i belonging to x^i.
// The zero polynomial is the empty (or all-zero) coefficient slice.
// Polys are value types: operations return fresh slices.
type Poly []Elem

// Degree returns the degree of p, or -1 for the zero polynomial.
func (p Poly) Degree() int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return p.Degree() == -1 }

// trim drops trailing zero coefficients.
func (p Poly) trim() Poly {
	d := p.Degree()
	return p[:d+1]
}

// Clone returns an independent copy of p.
func (p Poly) Clone() Poly {
	q := make(Poly, len(p))
	copy(q, p)
	return q
}

// PolyAdd returns p + q (characteristic 2, so also p - q).
func PolyAdd(p, q Poly) Poly {
	if len(q) > len(p) {
		p, q = q, p
	}
	out := p.Clone()
	for i, c := range q {
		out[i] ^= c
	}
	return out.trim()
}

// PolyMul returns p * q over the field f.
func (f *Field) PolyMul(p, q Poly) Poly {
	if p.IsZero() || q.IsZero() {
		return nil
	}
	out := make(Poly, p.Degree()+q.Degree()+1)
	for i, a := range p {
		if a == 0 {
			continue
		}
		for j, b := range q {
			if b == 0 {
				continue
			}
			out[i+j] ^= f.Mul(a, b)
		}
	}
	return out.trim()
}

// PolyDivMod returns quotient and remainder of p divided by q.
// It panics if q is zero.
func (f *Field) PolyDivMod(p, q Poly) (quot, rem Poly) {
	dq := q.Degree()
	if dq == -1 {
		panic("galois: polynomial division by zero")
	}
	rem = p.Clone().trim()
	if rem.Degree() < dq {
		return nil, rem
	}
	quot = make(Poly, rem.Degree()-dq+1)
	lead := q[dq]
	for rem.Degree() >= dq {
		d := rem.Degree()
		c := f.Div(rem[d], lead)
		quot[d-dq] = c
		for i := 0; i <= dq; i++ {
			rem[d-dq+i] ^= f.Mul(c, q[i])
		}
		rem = rem.trim()
	}
	return quot, rem
}

// CopyInto copies p into the caller-owned buffer dst, growing it only
// when its capacity is insufficient, and returns the (possibly regrown)
// slice. The scratch-buffer counterpart of Clone for decoder workspaces
// that run the Berlekamp-Massey recursion without per-step allocation.
func (p Poly) CopyInto(dst Poly) Poly {
	if cap(dst) < len(p) {
		dst = make(Poly, len(p))
	}
	dst = dst[:len(p)]
	copy(dst, p)
	return dst
}

// SubScaledShiftInto writes c - coef * x^shift * q (characteristic 2, so
// also c + coef * x^shift * q) into dst and returns it trimmed of
// trailing zeros. dst must not alias c or q; it is regrown only when too
// small, so a workspace that rotates three buffers through the
// Berlekamp-Massey recursion settles into zero allocations.
func (f *Field) SubScaledShiftInto(dst, c, q Poly, coef Elem, shift int) Poly {
	n := len(c)
	if m := len(q) + shift; m > n {
		n = m
	}
	if cap(dst) < n {
		dst = make(Poly, n)
	}
	dst = dst[:n]
	copy(dst, c)
	for i := len(c); i < n; i++ {
		dst[i] = 0
	}
	for i, qc := range q {
		if qc != 0 {
			dst[i+shift] = f.Add(dst[i+shift], f.Mul(coef, qc))
		}
	}
	return dst.trim()
}

// Eval evaluates p at x using Horner's rule.
func (f *Field) Eval(p Poly, x Elem) Elem {
	var acc Elem
	for i := len(p) - 1; i >= 0; i-- {
		acc = f.Add(f.Mul(acc, x), p[i])
	}
	return acc
}

// FormalDerivative returns p'(x). In characteristic 2 the even-power terms
// vanish and odd powers keep their coefficient shifted down.
func FormalDerivative(p Poly) Poly {
	if len(p) <= 1 {
		return nil
	}
	out := make(Poly, len(p)-1)
	for i := 1; i < len(p); i += 2 {
		out[i-1] = p[i]
	}
	return out.trim()
}
