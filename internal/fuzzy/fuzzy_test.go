package fuzzy

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/ecc"
	"repro/internal/rng"
)

func randResp(seed uint64, n int) bitvec.Vector {
	r := rng.New(seed)
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		v.Set(i, r.Bool())
	}
	return v
}

func params() Params {
	return Params{Code: ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3})}
}

func TestRoundTripNoiseless(t *testing.T) {
	p := params()
	resp := randResp(1, 70)
	h, key, err := Enroll(resp, p, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(key) != 32 {
		t.Fatalf("key length %d", len(key))
	}
	got, err := Reconstruct(resp, p, h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, key) {
		t.Fatal("noiseless reconstruction mismatch")
	}
}

func TestRoundTripWithNoise(t *testing.T) {
	p := params()
	resp := randResp(3, 62) // two 31-bit blocks
	h, key, err := Enroll(resp, p, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	noisy := resp.Clone()
	noisy.Flip(0)
	noisy.Flip(40)
	noisy.Flip(41)
	got, err := Reconstruct(noisy, p, h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, key) {
		t.Fatal("noisy reconstruction mismatch")
	}
}

func TestFailureBeyondRadius(t *testing.T) {
	p := params()
	resp := randResp(5, 31)
	h, key, err := Enroll(resp, p, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	noisy := resp.Clone()
	for i := 0; i < p.Code.T()+1; i++ {
		noisy.Flip(i)
	}
	got, err := Reconstruct(noisy, p, h)
	if err == nil && bytes.Equal(got, key) {
		t.Fatal("beyond-radius noise reconstructed the key")
	}
}

// TestManipulationIndependence is experiment E12 in miniature: shifting
// the helper by a fixed low-weight delta changes the derived key with
// probability independent of the secret response bits. Concretely, the
// reconstruction SUCCEEDS (decoding-wise) for every response when the
// delta is within the correction radius, and the derived key is always
// wrong — no failure-rate side channel remains.
func TestManipulationIndependence(t *testing.T) {
	p := params()
	for seed := uint64(0); seed < 20; seed++ {
		resp := randResp(seed, 31)
		h, key, err := Enroll(resp, p, rng.New(seed+100))
		if err != nil {
			t.Fatal(err)
		}
		manip := Helper{W: h.W.Clone()}
		manip.W.Flip(3) // weight-1 delta, always within radius
		got, err := Reconstruct(resp, p, manip)
		if err != nil {
			t.Fatalf("seed %d: in-radius manipulation failed decode: %v", seed, err)
		}
		if bytes.Equal(got, key) {
			t.Fatalf("seed %d: manipulated helper still derived the key", seed)
		}
	}
}

func TestRobustVariantDetectsManipulation(t *testing.T) {
	p := Params{Code: ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}), Robust: true}
	resp := randResp(7, 31)
	h, key, err := Enroll(resp, p, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Tag) == 0 {
		t.Fatal("robust variant must store a tag")
	}
	// Honest reconstruction works.
	got, err := Reconstruct(resp, p, h)
	if err != nil || !bytes.Equal(got, key) {
		t.Fatalf("honest robust reconstruction failed: %v", err)
	}
	// Any helper manipulation is detected.
	manip := Helper{W: h.W.Clone(), Tag: h.Tag}
	manip.W.Flip(0)
	if _, err := Reconstruct(resp, p, manip); !errors.Is(err, ErrManipulationDetected) {
		t.Fatalf("err = %v, want ErrManipulationDetected", err)
	}
	// Tag manipulation likewise.
	manip2 := Helper{W: h.W, Tag: append([]byte(nil), h.Tag...)}
	manip2.Tag[0] ^= 1
	if _, err := Reconstruct(resp, p, manip2); !errors.Is(err, ErrManipulationDetected) {
		t.Fatalf("err = %v, want ErrManipulationDetected", err)
	}
}

func TestHelperLengthMismatch(t *testing.T) {
	p := params()
	resp := randResp(9, 31)
	h, _, err := Enroll(resp, p, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reconstruct(randResp(11, 93), p, h); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestNilCode(t *testing.T) {
	if _, _, err := Enroll(bitvec.New(8), Params{}, rng.New(1)); err == nil {
		t.Fatal("nil code must fail enroll")
	}
	if _, err := Reconstruct(bitvec.New(8), Params{}, Helper{}); err == nil {
		t.Fatal("nil code must fail reconstruct")
	}
}

func TestKeysDifferAcrossResponses(t *testing.T) {
	p := params()
	_, k1, err := Enroll(randResp(20, 31), p, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	_, k2, err := Enroll(randResp(22, 31), p, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(k1, k2) {
		t.Fatal("different responses produced the same key")
	}
}
