// Package fuzzy implements the fuzzy extractor of Dodis et al. (the
// paper's reference [2]), the "well-established standard solution" the
// paper recommends over the attacked ad-hoc constructions (Fig. 7): a
// code-offset secure sketch for reliability chained with a cryptographic
// hash for entropy compression.
//
// The package also provides the robust variant in the spirit of Boyen et
// al. (the paper's reference [1]): the device additionally stores a
// commitment hash over the enrolled response and the helper data, letting
// reconstruction DETECT helper-data manipulation instead of silently
// producing a shifted key.
//
// The security property the repository's experiment E12 demonstrates: for
// the plain fuzzy extractor, offsetting the helper word w by any fixed
// delta shifts the recovered response by exactly delta (when decoding
// succeeds), so the failure event is independent of the secret response —
// helper manipulation gains the attacker nothing, in contrast with every
// construction of Sections IV-V.
package fuzzy

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/ecc"
	"repro/internal/rng"
)

// Params configures a fuzzy extractor.
type Params struct {
	// Code is the per-block ECC of the secure sketch.
	Code ecc.Code
	// Robust enables the manipulation-detection commitment.
	Robust bool
}

// Helper is the public helper data.
type Helper struct {
	// W is the code-offset word, length = padded response length.
	W bitvec.Vector
	// Tag is the robust-variant commitment (sha256 over response and
	// helper); empty in the plain variant.
	Tag []byte
}

// ErrReconstructFailed is returned when decoding fails.
var ErrReconstructFailed = errors.New("fuzzy: key reconstruction failed")

// ErrManipulationDetected is returned by the robust variant when the
// commitment check fails.
var ErrManipulationDetected = errors.New("fuzzy: helper-data manipulation detected")

func padToBlocks(resp bitvec.Vector, code ecc.Code) (bitvec.Vector, int) {
	n := code.N()
	blocks := (resp.Len() + n - 1) / n
	if blocks == 0 {
		blocks = 1
	}
	return resp.Concat(bitvec.New(blocks*n - resp.Len())), blocks
}

// Enroll builds helper data and derives the key from an enrollment
// response of arbitrary length (padded internally to ECC blocks).
func Enroll(response bitvec.Vector, p Params, src *rng.Source) (Helper, []byte, error) {
	if p.Code == nil {
		return Helper{}, nil, errors.New("fuzzy: nil ECC")
	}
	padded, blocks := padToBlocks(response, p.Code)
	block := ecc.NewBlock(p.Code, blocks)
	off := ecc.EnrollOffset(block, padded, src)
	key := deriveKey(padded, off.W, p.Robust)
	h := Helper{W: off.W}
	if p.Robust {
		h.Tag = commitment(padded, off.W)
	}
	return h, key, nil
}

// Reconstruct recovers the key from a fresh noisy response reading.
func Reconstruct(response bitvec.Vector, p Params, h Helper) ([]byte, error) {
	if p.Code == nil {
		return nil, errors.New("fuzzy: nil ECC")
	}
	padded, blocks := padToBlocks(response, p.Code)
	if padded.Len() != h.W.Len() {
		return nil, fmt.Errorf("fuzzy: helper length %d, response padded %d", h.W.Len(), padded.Len())
	}
	block := ecc.NewBlock(p.Code, blocks)
	recovered, _, ok := ecc.Reproduce(block, ecc.Offset{W: h.W}, padded)
	if !ok {
		return nil, ErrReconstructFailed
	}
	if p.Robust {
		tag := commitment(recovered, h.W)
		if len(h.Tag) != len(tag) {
			return nil, ErrManipulationDetected
		}
		for i := range tag {
			if tag[i] != h.Tag[i] {
				return nil, ErrManipulationDetected
			}
		}
	}
	return deriveKey(recovered, h.W, p.Robust), nil
}

// deriveKey hashes the recovered enrollment response into the key. The
// robust variant binds the helper word into the derivation as well.
func deriveKey(response, w bitvec.Vector, robust bool) []byte {
	h := sha256.New()
	h.Write([]byte("fuzzy-extractor-key/v1"))
	h.Write(response.Bytes())
	if robust {
		h.Write(w.Bytes())
	}
	return h.Sum(nil)
}

// commitment is the robust variant's manipulation-detection tag.
func commitment(response, w bitvec.Vector) []byte {
	h := sha256.New()
	h.Write([]byte("fuzzy-extractor-tag/v1"))
	h.Write(response.Bytes())
	h.Write(w.Bytes())
	return h.Sum(nil)
}
