// Package campaignd is the fleet-scale campaign service: a long-running
// job manager that executes campaign specs by sharding their seed range
// into fixed-size chunks over a bounded worker pool, checkpointing one
// JSONL record per completed shard, and streaming partial aggregates to
// subscribers.
//
// The whole design leans on one property of the engine underneath:
// every task instance derives its randomness purely from (base seed,
// task index) via rng.StreamSeed, so a shard's outcomes are identical
// no matter which worker runs it, when, or how many times. That makes
// sharding, retry, and crash-resume trivially safe — a daemon killed
// mid-sweep and restarted from its state directory finishes with final
// aggregates bit-identical to an uninterrupted one-shot campaign.Run of
// the same spec, at any worker count. The final Result is deliberately
// NOT assembled from the streaming partials: once every shard is
// checkpointed, the full outcome list is reassembled in task-index
// order and handed to campaign.Finalize, the same batch aggregation an
// uninterrupted run uses.
//
// Layout: this file defines the wire types (Spec, State, JobStatus,
// Event); manager.go runs jobs; checkpoint.go owns the JSONL state
// files; http.go serves the /v1 API plus /healthz and /metrics.
package campaignd

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/campaign"
	"repro/internal/silicon"
)

// ErrDraining is returned by Submit while the daemon is draining for
// shutdown: intake is closed, in-flight shards are finishing. The HTTP
// layer maps it to 503 so clients with retry backoff ride through a
// rolling restart.
var ErrDraining = errors.New("campaignd: draining; not accepting new campaigns")

// InternalError marks a Submit failure that is the daemon's fault, not
// the spec's — job-ID entropy exhaustion, checkpoint-file creation —
// so the HTTP layer answers 500 instead of blaming the client with 400.
type InternalError struct{ Err error }

func (e *InternalError) Error() string { return e.Err.Error() }
func (e *InternalError) Unwrap() error { return e.Err }

// Spec is the wire form of a campaign request (POST /v1/campaigns).
type Spec struct {
	// Task is the registered campaign task name.
	Task string `json:"task"`
	// BaseSeed is the campaign base seed; task i runs with
	// rng.StreamSeed(BaseSeed, i).
	BaseSeed uint64 `json:"base_seed"`
	// Seeds is the number of task instances (must be > 0).
	Seeds int `json:"seeds"`
	// Workers bounds the job's worker pool (0 = GOMAXPROCS). Workers
	// run whole shards, so effective parallelism is min(Workers,
	// remaining shards).
	Workers int `json:"workers,omitempty"`
	// Noise names the silicon noise model for attack-backed tasks
	// ("stream" or "counter"; empty = task default).
	Noise string `json:"noise,omitempty"`
	// ShardSize is the number of seeds per checkpointed shard
	// (0 = the daemon default). Smaller shards checkpoint more often;
	// the final numbers are identical for any value.
	ShardSize int `json:"shard_size,omitempty"`
}

// Validate rejects specs the daemon could not execute. It is the
// single gate between the HTTP layer and the job manager, so malformed
// submissions fail with a 4xx before any state is created.
func (s Spec) Validate() error {
	if s.Task == "" {
		return fmt.Errorf("campaignd: spec has no task")
	}
	if _, ok := campaign.Lookup(s.Task); !ok {
		return fmt.Errorf("campaignd: unknown task %q", s.Task)
	}
	if s.Seeds <= 0 {
		return fmt.Errorf("campaignd: seeds must be > 0 (got %d)", s.Seeds)
	}
	if s.Workers < 0 {
		return fmt.Errorf("campaignd: workers must be >= 0 (got %d)", s.Workers)
	}
	if s.ShardSize < 0 {
		return fmt.Errorf("campaignd: shard_size must be >= 0 (got %d)", s.ShardSize)
	}
	if s.Noise != "" {
		if _, err := silicon.ParseNoiseModel(s.Noise); err != nil {
			return fmt.Errorf("campaignd: %w", err)
		}
	}
	return nil
}

// campaignSpec maps the wire spec onto the engine's Spec.
func (s Spec) campaignSpec() campaign.Spec {
	return campaign.Spec{
		Task:     s.Task,
		BaseSeed: s.BaseSeed,
		Seeds:    s.Seeds,
		Workers:  s.Workers,
		Options:  campaign.Options{Noise: s.Noise},
	}
}

// State is a job's lifecycle state.
type State string

const (
	// StateRunning covers both fresh and resumed execution.
	StateRunning State = "running"
	// StateDone means every shard completed and the final Result is
	// available.
	StateDone State = "done"
	// StateFailed means the job hit an internal error (finalization,
	// closed checkpoint); the checkpointed shards remain on disk but the
	// job is terminal.
	StateFailed State = "failed"
	// StateCancelled means the job was cancelled via the API. Terminal.
	StateCancelled State = "cancelled"
	// StateQuarantined means every schedulable shard ran but one or more
	// poison shards exhausted their retry budget (task error or panic on
	// every attempt) and were quarantined. The job is terminal, the
	// healthy shards' partial aggregates are available, and the
	// quarantined shard indices are enumerated in the status — never a
	// silent hang, never a silently wrong result.
	StateQuarantined State = "quarantined"
)

// terminal reports whether a state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled || s == StateQuarantined
}

// JobStatus is the API view of a job.
type JobStatus struct {
	ID       string     `json:"id"`
	State    State      `json:"state"`
	Spec     Spec       `json:"spec"`
	Created  time.Time  `json:"created"`
	Finished *time.Time `json:"finished,omitempty"`
	// Shard/seed progress. SeedsDone counts seeds in completed shards.
	ShardsDone  int `json:"shards_done"`
	ShardsTotal int `json:"shards_total"`
	SeedsDone   int `json:"seeds_done"`
	SeedsTotal  int `json:"seeds_total"`
	// Error is set for failed and quarantined jobs.
	Error string `json:"error,omitempty"`
	// Quarantined enumerates the shard indices that exhausted their
	// retry budget (quarantined jobs only), sorted ascending.
	Quarantined []int `json:"quarantined,omitempty"`
	// Aggregates are the streaming partial aggregates over completed
	// shards (Wilson intervals computed at read time). For done jobs
	// they are superseded by Result.Aggregates.
	Aggregates []campaign.Aggregate `json:"aggregates,omitempty"`
	// Result is the final campaign result, present on detail views of
	// done jobs — bit-identical to a one-shot campaign.Run of Spec.
	Result *campaign.Result `json:"result,omitempty"`
}

// Health is the daemon's liveness/readiness snapshot behind /healthz.
type Health struct {
	// Draining is set between the drain signal and process exit.
	Draining bool
	// Degraded is set once a shard's checkpoint write has persistently
	// failed: the affected jobs keep running (and completing) in memory,
	// but a crash before they finish would re-run the lost shards.
	Degraded bool
	// CheckpointErrors counts individual checkpoint write/sync failures
	// (including ones a retry later recovered).
	CheckpointErrors int64
	// LostDurabilityShards counts shards whose checkpoint record was
	// abandoned after the retry budget — completed in memory only.
	LostDurabilityShards int64
}

// Event is one server-sent progress notification for a job. A terminal
// event carries the terminal State and closes the stream.
type Event struct {
	JobID       string               `json:"job_id"`
	State       State                `json:"state"`
	ShardsDone  int                  `json:"shards_done"`
	ShardsTotal int                  `json:"shards_total"`
	SeedsDone   int                  `json:"seeds_done"`
	SeedsTotal  int                  `json:"seeds_total"`
	Aggregates  []campaign.Aggregate `json:"aggregates,omitempty"`
	Error       string               `json:"error,omitempty"`
	Quarantined []int                `json:"quarantined,omitempty"`
}
