package campaignd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
)

func newTestServer(t *testing.T, opts Options) (*httptest.Server, *Manager) {
	t.Helper()
	m := newTestManager(t, opts)
	ts := httptest.NewServer(NewServer(m))
	t.Cleanup(ts.Close)
	return ts, m
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeStatus(t *testing.T, resp *http.Response) JobStatus {
	t.Helper()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestHTTPSubmitStatusResult(t *testing.T) {
	ts, _ := newTestServer(t, Options{ShardSize: 4})
	resp := postJSON(t, ts.URL+"/v1/campaigns",
		`{"task": "campaignd-test-walk", "base_seed": 21, "seeds": 10, "workers": 2}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %s", resp.Status)
	}
	st := decodeStatus(t, resp)
	if st.ID == "" || st.SeedsTotal != 10 || st.ShardsTotal != 3 {
		t.Fatalf("bad created status: %+v", st)
	}

	// Poll the detail endpoint until done; the result must match a
	// local one-shot run byte for byte.
	var final JobStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		final = decodeStatus(t, r)
		r.Body.Close()
		if final.State != StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("final: %+v", final)
	}
	oneShot, err := campaign.Run(t.Context(), campaign.Spec{
		Task: "campaignd-test-walk", BaseSeed: 21, Seeds: 10, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, final.Result) != resultJSON(t, oneShot) {
		t.Fatal("HTTP result differs from local one-shot run")
	}

	// The list endpoint shows the job (summary: no result payload).
	r, err := http.Get(ts.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID || list.Jobs[0].Result != nil {
		t.Fatalf("list: %+v", list.Jobs)
	}
}

func TestHTTPRejectsMalformedSpecs(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	cases := []string{
		``,                             // empty body
		`{`,                            // truncated JSON
		`{"task": 42}`,                 // wrong type
		`{"task": "nope", "seeds": 4}`, // unknown task
		`{"task": "campaignd-test-walk", "seeds": 0}`,                   // zero seeds
		`{"task": "campaignd-test-walk", "seeds": -1}`,                  // negative seeds
		`{"task": "campaignd-test-walk", "seeds": 4, "noise": "wat"}`,   // bad noise model
		`{"task": "campaignd-test-walk", "seeds": 4, "frobnicate": 1}`,  // unknown field
		`{"task": "campaignd-test-walk", "seeds": 4, "shard_size": -1}`, // bad shard size
	}
	for _, body := range cases {
		resp := postJSON(t, ts.URL+"/v1/campaigns", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %q: status %s, want 400", body, resp.Status)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
			t.Fatalf("spec %q: no error payload (%v)", body, err)
		}
	}
	// Nothing was created.
	r, err := http.Get(ts.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 0 {
		t.Fatalf("malformed specs created jobs: %+v", list.Jobs)
	}
}

func TestHTTPUnknownJob(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/campaigns/cdeadbeef0000"},
		{http.MethodPost, "/v1/campaigns/cdeadbeef0000/cancel"},
		{http.MethodGet, "/v1/campaigns/cdeadbeef0000/stream"},
	} {
		req, err := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s: %s, want 404", probe.method, probe.path, resp.Status)
		}
	}
}

func TestHTTPCancel(t *testing.T) {
	ts, _ := newTestServer(t, Options{ShardSize: 1, Throttle: 20 * time.Millisecond})
	resp := postJSON(t, ts.URL+"/v1/campaigns",
		`{"task": "campaignd-test-walk", "base_seed": 3, "seeds": 50, "workers": 1}`)
	st := decodeStatus(t, resp)

	r := postJSON(t, ts.URL+"/v1/campaigns/"+st.ID+"/cancel", "")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %s", r.Status)
	}
	if got := decodeStatus(t, r); got.State != StateCancelled {
		t.Fatalf("cancel status: %+v", got)
	}
	// A second cancel conflicts.
	r2 := postJSON(t, ts.URL+"/v1/campaigns/"+st.ID+"/cancel", "")
	if r2.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel: %s, want 409", r2.Status)
	}
}

// The SSE stream must deliver progress events ending with a terminal
// "done" event whose aggregates match the job's final state.
func TestHTTPStream(t *testing.T) {
	ts, _ := newTestServer(t, Options{ShardSize: 2, Throttle: 5 * time.Millisecond})
	resp := postJSON(t, ts.URL+"/v1/campaigns",
		`{"task": "campaignd-test-walk", "base_seed": 8, "seeds": 12, "workers": 2}`)
	st := decodeStatus(t, resp)

	r, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("stream: %s", r.Status)
	}
	if ct := r.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}

	var (
		kinds  []string
		events []Event
	)
	sc := bufio.NewScanner(r.Body)
	kind, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if data == "" {
				continue
			}
			var ev Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad event %q: %v", data, err)
			}
			kinds = append(kinds, kind)
			events = append(events, ev)
			kind, data = "", ""
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}
	last, lastKind := events[len(events)-1], kinds[len(kinds)-1]
	if lastKind != "done" || last.State != StateDone {
		t.Fatalf("last event %s %+v", lastKind, last)
	}
	for _, k := range kinds[:len(kinds)-1] {
		if k != "progress" {
			t.Fatalf("non-progress event before terminal: %v", kinds)
		}
	}
	if last.SeedsDone != 12 || last.ShardsDone != 6 {
		t.Fatalf("terminal event progress: %+v", last)
	}
	if len(last.Aggregates) == 0 {
		t.Fatal("terminal event carries no aggregates")
	}
	// Done must be monotonic along the stream.
	for i := 1; i < len(events); i++ {
		if events[i].SeedsDone < events[i-1].SeedsDone {
			t.Fatalf("seeds-done regressed: %+v", events)
		}
	}
}

func TestHTTPHealthzAndMetrics(t *testing.T) {
	ts, _ := newTestServer(t, Options{ShardSize: 4})
	resp := postJSON(t, ts.URL+"/v1/campaigns",
		`{"task": "campaignd-test-walk", "base_seed": 2, "seeds": 8, "workers": 2}`)
	st := decodeStatus(t, resp)
	// Wait for completion so the counters are settled.
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		cur := decodeStatus(t, r)
		r.Body.Close()
		if cur.State == StateDone {
			break
		}
		if cur.State != StateRunning || time.Now().After(deadline) {
			t.Fatalf("job state %s", cur.State)
		}
		time.Sleep(2 * time.Millisecond)
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", hr.Status)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	buf := new(bytes.Buffer)
	buf.ReadFrom(mr.Body)
	body := buf.String()
	for _, want := range []string{
		"campaignd_jobs_submitted_total 1",
		"campaignd_shards_completed_total 2",
		"campaignd_seeds_completed_total 8",
		`campaignd_jobs{state="done"} 1`,
		fmt.Sprintf("campaignd_job_shards_done{job=%q,task=%q} 2", st.ID, "campaignd-test-walk"),
		fmt.Sprintf("campaignd_job_shards_total{job=%q,task=%q} 2", st.ID, "campaignd-test-walk"),
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}
