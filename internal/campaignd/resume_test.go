package campaignd

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
)

func resultJSON(t *testing.T, res *campaign.Result) string {
	t.Helper()
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// The acceptance criterion of the subsystem: run a campaign, hard-stop
// the job manager mid-sweep after at least one checkpointed shard,
// restart a fresh manager over the same state directory, and the
// resumed job's final Result must be byte-identical (JSON) to an
// uninterrupted one-shot campaign.Run of the same spec — at two
// different worker counts.
func TestCrashResumeBitIdentical(t *testing.T) {
	for _, workers := range []int{2, 5} {
		spec := Spec{Task: "campaignd-test-walk", BaseSeed: 40, Seeds: 30, Workers: workers}
		oneShot, err := campaign.Run(context.Background(), spec.campaignSpec())
		if err != nil {
			t.Fatal(err)
		}
		want := resultJSON(t, oneShot)

		dir := t.TempDir()
		m1 := newTestManager(t, Options{StateDir: dir, ShardSize: 2, Throttle: 10 * time.Millisecond})
		st, err := m1.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		// Hard-stop after >= 2 checkpointed shards but before the end.
		deadline := time.Now().Add(20 * time.Second)
		for {
			cur, _ := m1.Get(st.ID, false)
			if cur.ShardsDone >= 2 {
				break
			}
			if cur.State != StateRunning || time.Now().After(deadline) {
				t.Fatalf("workers=%d: job reached %s with %d shards before the kill", workers, cur.State, cur.ShardsDone)
			}
			time.Sleep(time.Millisecond)
		}
		m1.Close()
		interrupted, _ := m1.Get(st.ID, false)
		if interrupted.ShardsDone >= interrupted.ShardsTotal {
			t.Fatalf("workers=%d: job finished before the kill; nothing to resume", workers)
		}
		t.Logf("workers=%d: killed with %d/%d shards checkpointed", workers, interrupted.ShardsDone, interrupted.ShardsTotal)

		// Restart: the job must be picked up and resumed automatically.
		m2 := newTestManager(t, Options{StateDir: dir, ShardSize: 2})
		if err := m2.Recover(); err != nil {
			t.Fatal(err)
		}
		final := waitTerminal(t, m2, st.ID)
		if final.State != StateDone {
			t.Fatalf("workers=%d: resumed job ended %s (%s)", workers, final.State, final.Error)
		}
		if got := resultJSON(t, final.Result); got != want {
			t.Fatalf("workers=%d: resumed result differs from uninterrupted run:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// A second kill/restart cycle must also converge — resume is not a
// one-shot affair.
func TestDoubleCrashResume(t *testing.T) {
	spec := Spec{Task: "campaignd-test-walk", BaseSeed: 123, Seeds: 24, Workers: 2}
	oneShot, err := campaign.Run(context.Background(), spec.campaignSpec())
	if err != nil {
		t.Fatal(err)
	}
	want := resultJSON(t, oneShot)

	dir := t.TempDir()
	m := newTestManager(t, Options{StateDir: dir, ShardSize: 1, Throttle: 10 * time.Millisecond})
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	id := st.ID
	for cycle := 0; cycle < 2; cycle++ {
		target := 3 * (cycle + 1)
		for {
			cur, _ := m.Get(id, false)
			if cur.ShardsDone >= target || cur.State != StateRunning {
				break
			}
			time.Sleep(time.Millisecond)
		}
		m.Close()
		m = newTestManager(t, Options{StateDir: dir, ShardSize: 1, Throttle: 10 * time.Millisecond})
		if err := m.Recover(); err != nil {
			t.Fatal(err)
		}
		if _, ok := m.Get(id, false); !ok {
			t.Fatalf("cycle %d: job lost across restart", cycle)
		}
	}
	// Let the final incarnation run to completion at full speed.
	final := waitTerminal(t, m, id)
	if final.State != StateDone {
		t.Fatalf("state %s (%s)", final.State, final.Error)
	}
	if got := resultJSON(t, final.Result); got != want {
		t.Fatalf("double-resumed result differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
}

// A checkpoint file with a truncated final line (the signature of a
// hard kill mid-append) must load: intact shards are trusted, the torn
// record is re-run.
func TestRecoverToleratesTruncatedTail(t *testing.T) {
	spec := Spec{Task: "campaignd-test-walk", BaseSeed: 314, Seeds: 12, Workers: 2}
	oneShot, err := campaign.Run(context.Background(), spec.campaignSpec())
	if err != nil {
		t.Fatal(err)
	}
	want := resultJSON(t, oneShot)

	// Produce a complete state dir, then mutilate the file: drop the
	// done record and tear the last shard record in half.
	dir := t.TempDir()
	m1 := newTestManager(t, Options{StateDir: dir, ShardSize: 3})
	st, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m1, st.ID)
	m1.Close()

	path := filepath.Join(dir, st.ID+checkpointExt)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(blob), "\n"), "\n")
	if len(lines) != 1+4+1 { // spec + 4 shards + status
		t.Fatalf("unexpected checkpoint shape: %d lines", len(lines))
	}
	torn := strings.Join(lines[:4], "\n") + "\n" + lines[4][:len(lines[4])/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Options{StateDir: dir})
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m2, st.ID)
	if final.State != StateDone {
		t.Fatalf("state %s (%s)", final.State, final.Error)
	}
	if got := resultJSON(t, final.Result); got != want {
		t.Fatalf("result after torn-tail recovery differs:\n%s\nvs\n%s", got, want)
	}
}

// A tampered shard record (digest mismatch) is discarded and re-run
// rather than trusted.
func TestRecoverRejectsDigestMismatch(t *testing.T) {
	spec := Spec{Task: "campaignd-test-walk", BaseSeed: 99, Seeds: 8, Workers: 1}
	dir := t.TempDir()
	m1 := newTestManager(t, Options{StateDir: dir, ShardSize: 2})
	st, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m1, st.ID)
	m1.Close()

	path := filepath.Join(dir, st.ID+checkpointExt)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a metric digit inside the first shard record and drop the
	// status record so the job resumes.
	lines := strings.Split(strings.TrimRight(string(blob), "\n"), "\n")
	tampered := strings.Replace(lines[1], `"walk-sum":`, `"walk-sum":1`, 1)
	if tampered == lines[1] {
		t.Fatal("tamper target not found in shard record")
	}
	out := strings.Join(append([]string{lines[0], tampered}, lines[2:len(lines)-1]...), "\n") + "\n"
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}

	lj, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if lj.dropped == 0 {
		t.Fatal("tampered record was not dropped")
	}
	if _, ok := lj.shards[0]; ok {
		t.Fatal("tampered shard 0 was trusted")
	}

	// Full recovery still converges to the uninterrupted result.
	oneShot, err := campaign.Run(context.Background(), spec.campaignSpec())
	if err != nil {
		t.Fatal(err)
	}
	m2 := newTestManager(t, Options{StateDir: dir})
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m2, st.ID)
	if final.State != StateDone {
		t.Fatalf("state %s (%s)", final.State, final.Error)
	}
	if got, want := resultJSON(t, final.Result), resultJSON(t, oneShot); got != want {
		t.Fatalf("result after digest-mismatch recovery differs:\n%s\nvs\n%s", got, want)
	}
}

// countShardRecords replays a checkpoint file the dumb way — raw JSONL
// lines — and returns how many times each shard index was recorded,
// plus whether a terminal status record is present. Tests use it to
// prove "zero re-runs" at the file level rather than trusting counters.
func countShardRecords(t *testing.T, path string) (shards map[int]int, hasStatus bool) {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	shards = make(map[int]int)
	for _, line := range strings.Split(strings.TrimRight(string(blob), "\n"), "\n") {
		var rec struct {
			Type  string `json:"type"`
			Shard int    `json:"shard"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable checkpoint line %q: %v", line, err)
		}
		switch rec.Type {
		case "shard":
			shards[rec.Shard]++
		case "status":
			hasStatus = true
		}
	}
	return shards, hasStatus
}

// Graceful drain then restart: Drain lets the in-flight shards finish
// and checkpoint, the restarted daemon resumes from exactly that
// frontier, and — unlike the hard-kill path, where an uncheckpointed
// in-flight shard is legitimately re-run — not a single shard is ever
// executed twice. The final result is byte-identical to an
// uninterrupted run.
func TestDrainThenRestartZeroRerun(t *testing.T) {
	spec := Spec{Task: "campaignd-test-walk", BaseSeed: 808, Seeds: 24, Workers: 2}
	oneShot, err := campaign.Run(context.Background(), spec.campaignSpec())
	if err != nil {
		t.Fatal(err)
	}
	want := resultJSON(t, oneShot)

	dir := t.TempDir()
	m1 := newTestManager(t, Options{StateDir: dir, ShardSize: 2, Throttle: 10 * time.Millisecond})
	st, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let a few shards land, then drain mid-sweep.
	deadline := time.Now().Add(20 * time.Second)
	for {
		cur, _ := m1.Get(st.ID, false)
		if cur.ShardsDone >= 2 {
			break
		}
		if cur.State != StateRunning || time.Now().After(deadline) {
			t.Fatalf("job reached %s with %d shards before the drain", cur.State, cur.ShardsDone)
		}
		time.Sleep(time.Millisecond)
	}
	if !m1.Drain(20 * time.Second) {
		t.Fatal("drain did not complete cleanly within its deadline")
	}
	drained, _ := m1.Get(st.ID, false)
	if drained.ShardsDone >= drained.ShardsTotal {
		t.Fatal("job finished before the drain; nothing to resume")
	}
	t.Logf("drained with %d/%d shards checkpointed", drained.ShardsDone, drained.ShardsTotal)

	// The file must hold exactly the checkpointed shards, once each, and
	// no terminal status record (the job is resumable, not failed).
	path := filepath.Join(dir, st.ID+checkpointExt)
	before, hasStatus := countShardRecords(t, path)
	if hasStatus {
		t.Fatal("drained job wrote a terminal status record")
	}
	if len(before) != drained.ShardsDone {
		t.Fatalf("checkpoint holds %d shards, status says %d", len(before), drained.ShardsDone)
	}
	for s, n := range before {
		if n != 1 {
			t.Fatalf("shard %d recorded %d times before restart", s, n)
		}
	}

	// Restart and resume to completion.
	m2 := newTestManager(t, Options{StateDir: dir, ShardSize: 2})
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m2, st.ID)
	if final.State != StateDone {
		t.Fatalf("resumed job ended %s (%s)", final.State, final.Error)
	}
	if got := resultJSON(t, final.Result); got != want {
		t.Fatalf("drain-resumed result differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}

	// Zero re-runs: every shard index appears exactly once, and the
	// pre-drain records were not rewritten.
	after, _ := countShardRecords(t, path)
	if len(after) != final.ShardsTotal {
		t.Fatalf("final checkpoint holds %d shards, want %d", len(after), final.ShardsTotal)
	}
	for s, n := range after {
		if n != 1 {
			t.Fatalf("shard %d recorded %d times — a shard was re-run", s, n)
		}
	}
}

// Recover must rebuild completed jobs (result included) without
// re-running anything, and ignore files that are not checkpoints.
func TestRecoverCompletedJob(t *testing.T) {
	spec := Spec{Task: "campaignd-test-walk", BaseSeed: 7, Seeds: 10, Workers: 2}
	dir := t.TempDir()
	m1 := newTestManager(t, Options{StateDir: dir, ShardSize: 4})
	st, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := resultJSON(t, waitTerminal(t, m1, st.ID).Result)
	m1.Close()

	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.jsonl"), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Options{StateDir: dir})
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	got, ok := m2.Get(st.ID, true)
	if !ok || got.State != StateDone {
		t.Fatalf("completed job not recovered: ok=%v %+v", ok, got)
	}
	if resultJSON(t, got.Result) != want {
		t.Fatal("recovered result differs from original")
	}
	if jobs := m2.List(); len(jobs) != 1 {
		t.Fatalf("junk files became jobs: %+v", jobs)
	}
}
