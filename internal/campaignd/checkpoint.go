package campaignd

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/faultinject"
)

// The checkpoint store is one append-only JSONL file per job under the
// daemon's state directory, named <job-id>.jsonl. Line one is a spec
// record; each completed shard appends a shard record carrying the
// shard's per-seed outcomes and a SHA-256 digest of their canonical
// JSON; a terminal status record marks done/failed/cancelled jobs.
//
// Crash tolerance is structural, not transactional: records are written
// as single lines and fsynced, so the only possible damage from a hard
// kill is a truncated final line — which the loader treats as "this
// shard never completed" and the scheduler simply re-runs. Determinism
// (same (base seed, index) → same outcome) is what makes that re-run
// safe: the rewritten record is byte-identical to the one that was
// lost.

const (
	checkpointVersion = 1
	checkpointExt     = ".jsonl"
)

// specRecord is the first line of every job file.
type specRecord struct {
	Type    string    `json:"type"` // "spec"
	V       int       `json:"v"`
	ID      string    `json:"id"`
	Created time.Time `json:"created"`
	Spec    Spec      `json:"spec"`
}

// shardRecord is one completed shard: outcomes for task indices
// [From, To), plus their digest.
type shardRecord struct {
	Type     string             `json:"type"` // "shard"
	Shard    int                `json:"shard"`
	From     int                `json:"from"`
	To       int                `json:"to"`
	Outcomes []campaign.Outcome `json:"outcomes"`
	Digest   string             `json:"digest"`
}

// statusRecord marks a terminal state. Quarantined carries the poison
// shard indices for StateQuarantined jobs, so a restart reports the
// same verdict without re-running them.
type statusRecord struct {
	Type        string    `json:"type"` // "status"
	State       State     `json:"state"`
	Error       string    `json:"error,omitempty"`
	Quarantined []int     `json:"quarantined,omitempty"`
	Finished    time.Time `json:"finished"`
}

// outcomesDigest is the integrity digest stored in (and checked
// against) shard records: hex SHA-256 of the outcomes' JSON encoding.
func outcomesDigest(outs []campaign.Outcome) (string, error) {
	blob, err := json.Marshal(outs)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// checkpointFile is the append side of one job's JSONL state.
type checkpointFile struct {
	f *os.File
}

// createCheckpoint starts a new job file with its spec record.
func createCheckpoint(dir, id string, created time.Time, spec Spec) (*checkpointFile, error) {
	f, err := os.OpenFile(filepath.Join(dir, id+checkpointExt),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaignd: create checkpoint: %w", err)
	}
	ck := &checkpointFile{f: f}
	if err := ck.append(specRecord{Type: "spec", V: checkpointVersion, ID: id, Created: created, Spec: spec}); err != nil {
		f.Close()
		return nil, err
	}
	return ck, nil
}

// openCheckpoint reopens an existing job file for appending (resume).
func openCheckpoint(dir, id string) (*checkpointFile, error) {
	f, err := os.OpenFile(filepath.Join(dir, id+checkpointExt),
		os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaignd: open checkpoint: %w", err)
	}
	return &checkpointFile{f: f}, nil
}

// append writes one record as a single line and syncs it to disk.
// Callers serialize (the job mutex); records therefore never interleave.
// The "checkpoint.append" and "checkpoint.fsync" injection points model
// a write error and an fsync error respectively; both leave the file in
// a state the loader already tolerates (a missing or torn record is a
// shard that never completed).
func (c *checkpointFile) append(rec any) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("campaignd: marshal checkpoint record: %w", err)
	}
	line = append(line, '\n')
	if err := faultinject.Fire("checkpoint.append"); err != nil {
		return fmt.Errorf("campaignd: append checkpoint record: %w", err)
	}
	if _, err := c.f.Write(line); err != nil {
		return fmt.Errorf("campaignd: append checkpoint record: %w", err)
	}
	if err := faultinject.Fire("checkpoint.fsync"); err != nil {
		return fmt.Errorf("campaignd: sync checkpoint: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("campaignd: sync checkpoint: %w", err)
	}
	return nil
}

// appendShard writes a shard record, computing the digest.
func (c *checkpointFile) appendShard(shard, from, to int, outs []campaign.Outcome) (int, error) {
	digest, err := outcomesDigest(outs)
	if err != nil {
		return 0, err
	}
	rec := shardRecord{Type: "shard", Shard: shard, From: from, To: to, Outcomes: outs, Digest: digest}
	line, err := json.Marshal(rec)
	if err != nil {
		return 0, err
	}
	line = append(line, '\n')
	if err := faultinject.Fire("checkpoint.append"); err != nil {
		return 0, fmt.Errorf("campaignd: append shard record: %w", err)
	}
	if _, err := c.f.Write(line); err != nil {
		return 0, fmt.Errorf("campaignd: append shard record: %w", err)
	}
	if err := faultinject.Fire("checkpoint.fsync"); err != nil {
		return 0, fmt.Errorf("campaignd: sync checkpoint: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return 0, fmt.Errorf("campaignd: sync checkpoint: %w", err)
	}
	return len(line), nil
}

func (c *checkpointFile) Close() error { return c.f.Close() }

// loadedJob is the replayed state of one job file.
type loadedJob struct {
	id      string
	created time.Time
	spec    Spec
	// shards maps shard index → its checkpointed outcomes. Only records
	// with a matching digest land here.
	shards map[int][]campaign.Outcome
	// state is the recorded terminal state, or "" when the job was
	// interrupted (no status record) and must resume.
	state       State
	errMsg      string
	quarantined []int
	finished    *time.Time
	// dropped counts malformed or digest-mismatched records that were
	// ignored (their shards re-run).
	dropped int
}

// loadCheckpoint replays one job file. A truncated or corrupt line
// stops the replay at that point: everything before it is trusted
// (digest-checked), everything after is treated as never-happened.
func loadCheckpoint(path string) (*loadedJob, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	lj := &loadedJob{shards: make(map[int][]campaign.Outcome)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &head); err != nil {
			// Truncated tail from a hard kill: stop trusting the file here.
			lj.dropped++
			break
		}
		switch head.Type {
		case "spec":
			var rec specRecord
			if err := json.Unmarshal(line, &rec); err != nil || !first {
				return nil, fmt.Errorf("campaignd: %s: bad spec record", path)
			}
			if rec.V != checkpointVersion {
				return nil, fmt.Errorf("campaignd: %s: checkpoint version %d (want %d)", path, rec.V, checkpointVersion)
			}
			lj.id, lj.created, lj.spec = rec.ID, rec.Created, rec.Spec
		case "shard":
			var rec shardRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				lj.dropped++
				continue
			}
			digest, err := outcomesDigest(rec.Outcomes)
			if err != nil || digest != rec.Digest || len(rec.Outcomes) != rec.To-rec.From {
				lj.dropped++
				continue
			}
			lj.shards[rec.Shard] = rec.Outcomes
		case "status":
			var rec statusRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				lj.dropped++
				continue
			}
			lj.state, lj.errMsg, lj.quarantined = rec.State, rec.Error, rec.Quarantined
			fin := rec.Finished
			lj.finished = &fin
		default:
			lj.dropped++
		}
		first = false
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaignd: %s: %w", path, err)
	}
	if lj.id == "" {
		return nil, fmt.Errorf("campaignd: %s: no spec record", path)
	}
	if want := strings.TrimSuffix(filepath.Base(path), checkpointExt); want != lj.id {
		return nil, fmt.Errorf("campaignd: %s: spec record names job %q", path, lj.id)
	}
	return lj, nil
}
