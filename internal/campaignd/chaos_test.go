package campaignd

// The chaos suite drives the daemon through seeded fault schedules —
// injected task panics, shard errors, delays, checkpoint write/fsync
// failures — and holds it to the robustness contract: under ANY
// schedule the job either completes with final aggregates byte-identical
// to a fault-free campaign.Run, or terminates in a distinct
// failed/quarantined state naming the offending shards. Never a daemon
// crash, never a silent hang, never a silently wrong result. Faults are
// pure functions of (fault seed, injection point, invocation index), so
// a failing schedule reproduces from its seed; CI runs the suite under
// -race with extra seeds (CHAOS_SEEDS).

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/faultinject"
)

// chaosSeeds is how many fault schedules the mixed suite sweeps;
// CHAOS_SEEDS raises it in CI.
func chaosSeeds(t *testing.T) int {
	t.Helper()
	if v := os.Getenv("CHAOS_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad CHAOS_SEEDS %q", v)
		}
		return n
	}
	return 6
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// fastRetries keeps the chaos sweeps quick without changing semantics.
func fastRetries(opts Options) Options {
	opts.RetryBackoff = time.Millisecond
	opts.RetryMaxBackoff = 4 * time.Millisecond
	opts.CheckpointBackoff = time.Millisecond
	return opts
}

func TestChaosSeededFaultSchedules(t *testing.T) {
	defer faultinject.Disable()
	spec := Spec{Task: "campaignd-test-walk", BaseSeed: 2024, Seeds: 24, Workers: 3}
	oneShot, err := campaign.Run(context.Background(), spec.campaignSpec())
	if err != nil {
		t.Fatal(err)
	}
	want := resultJSON(t, oneShot)

	seeds := chaosSeeds(t)
	var dones, quarantines int
	for fs := uint64(1); fs <= uint64(seeds); fs++ {
		// After: 1 on the checkpoint points spares the spec record so
		// Submit itself succeeds; everything after it is fair game.
		plan := faultinject.Plan{Seed: fs, Rules: []faultinject.Rule{
			{Point: "shard.run", PErr: 0.2, PPanic: 0.1, PDelay: 0.1, Delay: 2 * time.Millisecond},
			{Point: "checkpoint.append", PErr: 0.15, After: 1},
			{Point: "checkpoint.fsync", PErr: 0.15, After: 1},
		}}
		if err := faultinject.Enable(plan); err != nil {
			t.Fatal(err)
		}
		m := newTestManager(t, fastRetries(Options{ShardSize: 2}))
		st, err := m.Submit(spec)
		if err != nil {
			t.Fatalf("fault seed %d: submit: %v", fs, err)
		}
		final := waitTerminal(t, m, st.ID)
		stats := faultinject.Stats()
		faultinject.Disable()
		m.Close()

		switch final.State {
		case StateDone:
			dones++
			if got := resultJSON(t, final.Result); got != want {
				t.Fatalf("fault seed %d: surviving run differs from fault-free run:\n%s\nvs\n%s", fs, got, want)
			}
		case StateQuarantined:
			quarantines++
			if len(final.Quarantined) == 0 {
				t.Fatalf("fault seed %d: quarantined without shard list", fs)
			}
			for _, s := range final.Quarantined {
				if s < 0 || s >= final.ShardsTotal {
					t.Fatalf("fault seed %d: quarantined shard %d out of range", fs, s)
				}
				if !strings.Contains(final.Error, "shard "+strconv.Itoa(s)+":") {
					t.Fatalf("fault seed %d: error does not name shard %d: %q", fs, s, final.Error)
				}
			}
			if final.Result != nil {
				t.Fatalf("fault seed %d: quarantined job published a result", fs)
			}
		default:
			t.Fatalf("fault seed %d: terminal state %s (%s) — the contract allows only done or quarantined here",
				fs, final.State, final.Error)
		}
		t.Logf("fault seed %d: %s (shard.run %+v)", fs, final.State, stats["shard.run"])
	}
	t.Logf("chaos sweep: %d done (byte-identical), %d quarantined over %d schedules", dones, quarantines, seeds)
}

// A task panic on every attempt must quarantine every shard — and,
// foremost, must not kill the process. Before this harness existed a
// single panicking task tore down the daemon; this test is the
// regression fence.
func TestChaosPanicIsolation(t *testing.T) {
	defer faultinject.Disable()
	if err := faultinject.Enable(faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Point: "shard.run", PPanic: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, fastRetries(Options{ShardSize: 4}))
	st, err := m.Submit(Spec{Task: "campaignd-test-walk", BaseSeed: 3, Seeds: 16, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID)
	faultinject.Disable()
	if final.State != StateQuarantined {
		t.Fatalf("state %s (%s)", final.State, final.Error)
	}
	if len(final.Quarantined) != final.ShardsTotal {
		t.Fatalf("quarantined %d of %d shards", len(final.Quarantined), final.ShardsTotal)
	}
	if !strings.Contains(final.Error, "panic") {
		t.Fatalf("quarantine error does not surface the panic: %q", final.Error)
	}
	if m.counters.panicsRecovered.Load() == 0 {
		t.Fatal("panic recovery counter untouched")
	}
	// The daemon survived (we are still here) and still takes work.
	st2, err := m.Submit(Spec{Task: "campaignd-test-walk", BaseSeed: 4, Seeds: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if after := waitTerminal(t, m, st2.ID); after.State != StateDone {
		t.Fatalf("post-panic job: %s (%s)", after.State, after.Error)
	}
}

// Persistent checkpoint failure degrades durability, not correctness:
// the job completes with a byte-identical result held in memory,
// /healthz flips to degraded (503), and the loss is visible on
// /metrics. A restart would re-run the lost shards deterministically.
func TestChaosCheckpointDegradation(t *testing.T) {
	defer faultinject.Disable()
	spec := Spec{Task: "campaignd-test-walk", BaseSeed: 77, Seeds: 12, Workers: 2}
	oneShot, err := campaign.Run(context.Background(), spec.campaignSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Spare the spec record (append+fsync once each), fail everything after.
	if err := faultinject.Enable(faultinject.Plan{Seed: 9, Rules: []faultinject.Rule{
		{Point: "checkpoint.fsync", PErr: 1, After: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, fastRetries(Options{ShardSize: 3}))
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID)
	faultinject.Disable()
	if final.State != StateDone {
		t.Fatalf("state %s (%s)", final.State, final.Error)
	}
	if got, want := resultJSON(t, final.Result), resultJSON(t, oneShot); got != want {
		t.Fatalf("degraded run altered the result:\n%s\nvs\n%s", got, want)
	}
	h := m.Health()
	if !h.Degraded || h.LostDurabilityShards != 4 || h.CheckpointErrors == 0 {
		t.Fatalf("health %+v", h)
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "degraded") {
		t.Fatalf("healthz %s: %q", resp.Status, body)
	}
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := readBody(t, mresp)
	for _, want := range []string{
		"campaignd_checkpoint_errors_total",
		"campaignd_lost_durability_shards 4",
		"campaignd_degraded 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, metrics)
		}
	}
}

// The http.accept injection point fails requests at the front door with
// 503 — the shape a client's retry backoff must absorb.
func TestChaosHTTPAcceptFault(t *testing.T) {
	defer faultinject.Disable()
	m := newTestManager(t, Options{})
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()
	if err := faultinject.Enable(faultinject.Plan{Seed: 2, Rules: []faultinject.Rule{
		{Point: "http.accept", PErr: 1, Limit: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if readBody(t, resp); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("injected accept fault answered %s", resp.Status)
	}
	// Limit spent: the next request sails through.
	resp2, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if readBody(t, resp2); resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-limit request answered %s", resp2.Status)
	}
}

// Transient shard faults (bounded by Limit) must be absorbed by retry
// alone: the job completes byte-identically with zero quarantines.
func TestChaosTransientFaultsRetryToIdentical(t *testing.T) {
	defer faultinject.Disable()
	spec := Spec{Task: "campaignd-test-walk", BaseSeed: 555, Seeds: 20, Workers: 2}
	oneShot, err := campaign.Run(context.Background(), spec.campaignSpec())
	if err != nil {
		t.Fatal(err)
	}
	// One error and one panic, then clean: every shard recovers within
	// the 3-attempt budget.
	if err := faultinject.Enable(faultinject.Plan{Seed: 31, Rules: []faultinject.Rule{
		{Point: "shard.run", PErr: 0.5, PPanic: 0.5, Limit: 2},
	}}); err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, fastRetries(Options{ShardSize: 2}))
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID)
	faultinject.Disable()
	if final.State != StateDone {
		t.Fatalf("state %s (%s)", final.State, final.Error)
	}
	if got, want := resultJSON(t, final.Result), resultJSON(t, oneShot); got != want {
		t.Fatalf("retried run differs from fault-free run:\n%s\nvs\n%s", got, want)
	}
	if m.counters.shardRetries.Load() == 0 {
		t.Fatal("no retries recorded — the plan never fired")
	}
	if m.counters.shardsQuarantined.Load() != 0 {
		t.Fatal("transient faults escalated to quarantine")
	}
}
