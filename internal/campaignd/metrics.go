package campaignd

import (
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
)

// counters are the daemon-lifetime monotonic counters surfaced on
// /metrics. Per-job gauges are derived from the job table at scrape
// time rather than stored.
type counters struct {
	jobsSubmitted        atomic.Int64
	jobsRecovered        atomic.Int64
	jobsResumed          atomic.Int64
	shardsCompleted      atomic.Int64
	seedsCompleted       atomic.Int64
	checkpointBytes      atomic.Int64
	httpRequests         atomic.Int64
	shardRetries         atomic.Int64
	shardsQuarantined    atomic.Int64
	panicsRecovered      atomic.Int64
	checkpointErrors     atomic.Int64
	lostDurabilityShards atomic.Int64
}

// handleMetrics renders the Prometheus text exposition format by hand —
// the repository takes no dependencies, and the format is one line per
// sample.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	c := &s.m.counters
	fmt.Fprintf(w, "# TYPE campaignd_jobs_submitted_total counter\n")
	fmt.Fprintf(w, "campaignd_jobs_submitted_total %d\n", c.jobsSubmitted.Load())
	fmt.Fprintf(w, "# TYPE campaignd_jobs_recovered_total counter\n")
	fmt.Fprintf(w, "campaignd_jobs_recovered_total %d\n", c.jobsRecovered.Load())
	fmt.Fprintf(w, "# TYPE campaignd_jobs_resumed_total counter\n")
	fmt.Fprintf(w, "campaignd_jobs_resumed_total %d\n", c.jobsResumed.Load())
	fmt.Fprintf(w, "# TYPE campaignd_shards_completed_total counter\n")
	fmt.Fprintf(w, "campaignd_shards_completed_total %d\n", c.shardsCompleted.Load())
	fmt.Fprintf(w, "# TYPE campaignd_seeds_completed_total counter\n")
	fmt.Fprintf(w, "campaignd_seeds_completed_total %d\n", c.seedsCompleted.Load())
	fmt.Fprintf(w, "# TYPE campaignd_checkpoint_bytes_total counter\n")
	fmt.Fprintf(w, "campaignd_checkpoint_bytes_total %d\n", c.checkpointBytes.Load())
	fmt.Fprintf(w, "# TYPE campaignd_http_requests_total counter\n")
	fmt.Fprintf(w, "campaignd_http_requests_total %d\n", c.httpRequests.Load())
	fmt.Fprintf(w, "# TYPE campaignd_shard_retries_total counter\n")
	fmt.Fprintf(w, "campaignd_shard_retries_total %d\n", c.shardRetries.Load())
	fmt.Fprintf(w, "# TYPE campaignd_shards_quarantined counter\n")
	fmt.Fprintf(w, "campaignd_shards_quarantined %d\n", c.shardsQuarantined.Load())
	fmt.Fprintf(w, "# TYPE campaignd_panics_recovered_total counter\n")
	fmt.Fprintf(w, "campaignd_panics_recovered_total %d\n", c.panicsRecovered.Load())
	fmt.Fprintf(w, "# TYPE campaignd_checkpoint_errors_total counter\n")
	fmt.Fprintf(w, "campaignd_checkpoint_errors_total %d\n", c.checkpointErrors.Load())
	fmt.Fprintf(w, "# TYPE campaignd_lost_durability_shards counter\n")
	fmt.Fprintf(w, "campaignd_lost_durability_shards %d\n", c.lostDurabilityShards.Load())

	h := s.m.Health()
	fmt.Fprintf(w, "# TYPE campaignd_degraded gauge\n")
	fmt.Fprintf(w, "campaignd_degraded %d\n", b2i(h.Degraded))
	fmt.Fprintf(w, "# TYPE campaignd_draining gauge\n")
	fmt.Fprintf(w, "campaignd_draining %d\n", b2i(h.Draining))

	jobs := s.m.List()
	byState := make(map[State]int)
	for _, j := range jobs {
		byState[j.State]++
	}
	fmt.Fprintf(w, "# TYPE campaignd_jobs gauge\n")
	for _, st := range []State{StateRunning, StateDone, StateFailed, StateCancelled, StateQuarantined} {
		fmt.Fprintf(w, "campaignd_jobs{state=%q} %d\n", st, byState[st])
	}

	// Per-job progress gauges, sorted by id for a stable scrape.
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	fmt.Fprintf(w, "# TYPE campaignd_job_shards_done gauge\n")
	for _, j := range jobs {
		fmt.Fprintf(w, "campaignd_job_shards_done{job=%q,task=%q} %d\n", j.ID, j.Spec.Task, j.ShardsDone)
	}
	fmt.Fprintf(w, "# TYPE campaignd_job_shards_total gauge\n")
	for _, j := range jobs {
		fmt.Fprintf(w, "campaignd_job_shards_total{job=%q,task=%q} %d\n", j.ID, j.Spec.Task, j.ShardsTotal)
	}
	fmt.Fprintf(w, "# TYPE campaignd_job_seeds_done gauge\n")
	for _, j := range jobs {
		fmt.Fprintf(w, "campaignd_job_seeds_done{job=%q,task=%q} %d\n", j.ID, j.Spec.Task, j.SeedsDone)
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
