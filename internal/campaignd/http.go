package campaignd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/faultinject"
)

// Server exposes a Manager over HTTP/JSON:
//
//	POST /v1/campaigns           submit a Spec               → 201 JobStatus
//	GET  /v1/campaigns           list jobs                   → {"jobs": [JobStatus]}
//	GET  /v1/campaigns/{id}      job detail (Result if done) → JobStatus
//	POST /v1/campaigns/{id}/cancel                           → JobStatus
//	GET  /v1/campaigns/{id}/stream   server-sent events, one Event per
//	                                 completed shard, terminal event last
//	GET  /healthz                liveness                    → "ok"
//	GET  /metrics                Prometheus text exposition
//
// Errors are {"error": "..."} with a 4xx/5xx status.
type Server struct {
	m   *Manager
	mux *http.ServeMux
}

// NewServer wraps a Manager in the HTTP API.
func NewServer(m *Manager) *Server {
	s := &Server{m: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/campaigns", s.handleList)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.handleGet)
	s.mux.HandleFunc("POST /v1/campaigns/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler. The "http.accept" injection point
// models front-door failures: an injected error answers 503 before the
// mux dispatches (clients with retry backoff ride through).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.m.counters.httpRequests.Add(1)
	if err := faultinject.Fire("http.accept"); err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// handleHealthz reports liveness plus the degradation ladder: "ok"
// (200), "draining" (503, shutdown in progress — stop routing here),
// or "degraded" (503, checkpoint durability lost; the daemon still
// serves and jobs still complete, but a crash would re-run the lost
// shards).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	h := s.m.Health()
	switch {
	case h.Draining:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case h.Degraded:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "degraded")
		fmt.Fprintf(w, "checkpoint_errors %d\n", h.CheckpointErrors)
		fmt.Fprintf(w, "lost_durability_shards %d\n", h.LostDurabilityShards)
	default:
		fmt.Fprintln(w, "ok")
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleSubmit accepts a campaign Spec. Malformed JSON, unknown fields,
// and invalid specs are all 400s: the daemon never creates state for a
// request it cannot execute.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("campaignd: bad spec: %w", err))
		return
	}
	st, err := s.m.Submit(spec)
	if err != nil {
		var internal *InternalError
		switch {
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.As(err, &internal):
			writeError(w, http.StatusInternalServerError, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]JobStatus{"jobs": s.m.List()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.m.Get(id, true)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("campaignd: no job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.m.Get(id, false); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("campaignd: no job %q", id))
		return
	}
	st, err := s.m.Cancel(id)
	if err != nil {
		// The job exists but is already terminal.
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleStream serves server-sent events: an immediate snapshot, one
// event per completed shard while the job runs, and a final event
// carrying the terminal state. Event payloads are Event JSON in the SSE
// data field with event type "progress" or "done".
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	events, release, err := s.m.Subscribe(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	defer release()

	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("campaignd: response writer cannot stream"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-events:
			if !open {
				return
			}
			kind := "progress"
			if ev.State.terminal() {
				kind = "done"
			}
			blob, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", kind, blob)
			flusher.Flush()
		}
	}
}
