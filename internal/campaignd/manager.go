package campaignd

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/faultinject"
	"repro/internal/rng"
)

// Options configures a Manager.
type Options struct {
	// StateDir is the checkpoint directory (required). It is created if
	// missing.
	StateDir string
	// ShardSize is the default seeds-per-shard for specs that omit it
	// (0 = 8).
	ShardSize int
	// Throttle, when > 0, sleeps after each completed shard. It exists
	// for operational rate-limiting and for tests that must observe a
	// job mid-sweep; it has no effect on results.
	Throttle time.Duration
	// MaxShardAttempts bounds how many times a failing shard (task
	// error or recovered panic) is executed before it is quarantined
	// (0 = DefaultShardAttempts). Because outcomes are pure functions of
	// (base seed, task index), a retry that succeeds is byte-identical
	// to a first-try success.
	MaxShardAttempts int
	// RetryBackoff is the base of the exponential shard-retry backoff
	// (0 = DefaultRetryBackoff); successive attempts double it, capped
	// at RetryMaxBackoff (0 = DefaultRetryMaxBackoff), with
	// deterministic per-(shard, attempt) jitter in [0.5x, 1.5x).
	RetryBackoff    time.Duration
	RetryMaxBackoff time.Duration
	// CheckpointAttempts bounds the write+fsync attempts per checkpoint
	// record (0 = DefaultCheckpointAttempts). When the budget is
	// exhausted the shard's durability is abandoned — the job keeps
	// running in memory, /healthz turns degraded, and the shard re-runs
	// after a restart.
	CheckpointAttempts int
	// CheckpointBackoff is the pause between checkpoint write attempts
	// (0 = DefaultCheckpointBackoff).
	CheckpointBackoff time.Duration
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

// Defaults for the knobs Options leaves zero.
const (
	// DefaultShardSize is the seeds-per-shard used when neither the spec
	// nor the daemon names one.
	DefaultShardSize = 8
	// DefaultShardAttempts is the per-shard execution budget.
	DefaultShardAttempts = 3
	// DefaultRetryBackoff / DefaultRetryMaxBackoff shape the shard-retry
	// exponential backoff.
	DefaultRetryBackoff    = 25 * time.Millisecond
	DefaultRetryMaxBackoff = time.Second
	// DefaultCheckpointAttempts / DefaultCheckpointBackoff shape the
	// checkpoint-write retry.
	DefaultCheckpointAttempts = 3
	DefaultCheckpointBackoff  = 10 * time.Millisecond
)

// Manager owns the job table, the per-job shard schedulers, and the
// checkpoint store. All exported methods are safe for concurrent use.
type Manager struct {
	opts   Options
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// draining flips when Drain is called: Submit rejects, schedulers
	// stop feeding new shards (drainCh closes), in-flight shards finish
	// and checkpoint.
	draining  atomic.Bool
	drainCh   chan struct{}
	drainOnce sync.Once

	mu   sync.Mutex
	jobs map[string]*job

	counters counters
}

// job is one campaign under management. Fields past mu are guarded by
// it; the scheduler holds it only for bookkeeping, never while running
// task instances.
type job struct {
	id      string
	created time.Time
	spec    Spec // normalized: ShardSize > 0
	task    campaign.Task

	mu         sync.Mutex
	state      State
	errMsg     string
	finished   *time.Time
	shards     int
	done       []bool
	doneShards int
	seedsDone  int
	outcomes   []campaign.Outcome
	partial    *campaign.Partial
	result     *campaign.Result
	cancelled  bool
	cancel     context.CancelFunc
	ckpt       *checkpointFile
	// quarantined maps poison shard index → one-line failure summary
	// (retry budget exhausted; job ends StateQuarantined).
	quarantined map[int]string
	// lostShards counts shards whose checkpoint record was abandoned
	// after the write-retry budget (completed in memory only).
	lostShards int
	subs       map[int]chan Event
	nextSub    int
}

// New builds a Manager over a state directory. Call Recover to reload
// and resume checkpointed jobs, and Close to stop.
func New(opts Options) (*Manager, error) {
	if opts.StateDir == "" {
		return nil, fmt.Errorf("campaignd: Options.StateDir is required")
	}
	if opts.ShardSize <= 0 {
		opts.ShardSize = DefaultShardSize
	}
	if opts.MaxShardAttempts <= 0 {
		opts.MaxShardAttempts = DefaultShardAttempts
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = DefaultRetryBackoff
	}
	if opts.RetryMaxBackoff <= 0 {
		opts.RetryMaxBackoff = DefaultRetryMaxBackoff
	}
	if opts.CheckpointAttempts <= 0 {
		opts.CheckpointAttempts = DefaultCheckpointAttempts
	}
	if opts.CheckpointBackoff <= 0 {
		opts.CheckpointBackoff = DefaultCheckpointBackoff
	}
	if err := os.MkdirAll(opts.StateDir, 0o755); err != nil {
		return nil, fmt.Errorf("campaignd: state dir: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		opts:    opts,
		ctx:     ctx,
		cancel:  cancel,
		drainCh: make(chan struct{}),
		jobs:    make(map[string]*job),
	}, nil
}

// Close stops every running job (without recording a terminal state, so
// they resume on the next Recover) and waits for the schedulers to
// drain.
func (m *Manager) Close() {
	m.cancel()
	m.wg.Wait()
	m.closeCheckpoints()
}

// Drain is the graceful half of shutdown: it stops intake (Submit
// returns ErrDraining), stops feeding new shards to every scheduler,
// lets the in-flight shards finish and checkpoint, and returns once the
// schedulers have exited — or, past the timeout, cancels the stragglers
// hard (they stay resumable, exactly like Close). The return value
// reports whether the drain completed cleanly within the deadline.
// Either way, no completed-and-checkpointed shard is ever re-run by the
// next Recover.
func (m *Manager) Drain(timeout time.Duration) bool {
	m.draining.Store(true)
	m.drainOnce.Do(func() { close(m.drainCh) })
	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	clean := true
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		clean = false
		m.logf("campaignd: drain deadline (%s) exceeded; cancelling in-flight shards", timeout)
		m.cancel()
		<-done
	}
	m.cancel()
	m.closeCheckpoints()
	return clean
}

// closeCheckpoints releases any checkpoint file a resumable job still
// holds (finish closes them on every path, so this is a backstop).
func (m *Manager) closeCheckpoints() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.ckpt != nil {
			j.ckpt.Close()
			j.ckpt = nil
		}
		j.mu.Unlock()
	}
}

// Health snapshots the daemon's operational state for /healthz.
func (m *Manager) Health() Health {
	lost := m.counters.lostDurabilityShards.Load()
	return Health{
		Draining:             m.draining.Load(),
		Degraded:             lost > 0,
		CheckpointErrors:     m.counters.checkpointErrors.Load(),
		LostDurabilityShards: lost,
	}
}

func (m *Manager) logf(format string, args ...any) {
	if m.opts.Logf != nil {
		m.opts.Logf(format, args...)
	}
}

// newJobID returns a fresh random job identifier. Entropy exhaustion is
// reported as an error (surfacing as HTTP 500 through Submit), not a
// panic: a degraded entropy pool must not take the daemon down.
func newJobID() (string, error) {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("campaignd: job id: %w", err)
	}
	return "c" + hex.EncodeToString(b[:]), nil
}

// numShards is the shard count for a normalized spec.
func numShards(seeds, shardSize int) int {
	return (seeds + shardSize - 1) / shardSize
}

// shardBounds returns the task-index range [from, to) of shard s.
func shardBounds(s, seeds, shardSize int) (from, to int) {
	from = s * shardSize
	to = min(from+shardSize, seeds)
	return from, to
}

// Submit validates a spec, creates its checkpoint file, and starts the
// job. The returned status is the job's initial snapshot.
func (m *Manager) Submit(spec Spec) (JobStatus, error) {
	if err := spec.Validate(); err != nil {
		return JobStatus{}, err
	}
	if spec.ShardSize == 0 {
		spec.ShardSize = m.opts.ShardSize
	}
	task, _ := campaign.Lookup(spec.Task)

	if m.draining.Load() {
		return JobStatus{}, ErrDraining
	}
	if m.ctx.Err() != nil {
		return JobStatus{}, fmt.Errorf("campaignd: manager is shut down")
	}
	id, err := newJobID()
	if err != nil {
		return JobStatus{}, &InternalError{Err: err}
	}
	created := time.Now().UTC().Truncate(time.Millisecond)
	ckpt, err := createCheckpoint(m.opts.StateDir, id, created, spec)
	if err != nil {
		return JobStatus{}, &InternalError{Err: err}
	}
	j := m.newJob(id, created, spec, task)
	j.ckpt = ckpt

	m.mu.Lock()
	m.jobs[id] = j
	m.mu.Unlock()
	m.counters.jobsSubmitted.Add(1)
	m.logf("campaignd: job %s submitted: task=%s seeds=%d shard=%d workers=%d",
		id, spec.Task, spec.Seeds, spec.ShardSize, spec.Workers)

	m.start(j)
	return j.status(false), nil
}

// newJob builds the in-memory job shell (no scheduler yet).
func (m *Manager) newJob(id string, created time.Time, spec Spec, task campaign.Task) *job {
	shards := numShards(spec.Seeds, spec.ShardSize)
	return &job{
		id:       id,
		created:  created,
		spec:     spec,
		task:     task,
		state:    StateRunning,
		shards:   shards,
		done:     make([]bool, shards),
		outcomes: make([]campaign.Outcome, spec.Seeds),
		partial:  campaign.NewPartial(task.Binary),
		subs:     make(map[int]chan Event),
	}
}

// Recover scans the state directory, reloads every checkpointed job,
// and resumes the unfinished ones — skipping checkpointed shards, so a
// daemon killed mid-sweep picks up exactly where the last fsynced
// record left off.
func (m *Manager) Recover() error {
	entries, err := os.ReadDir(m.opts.StateDir)
	if err != nil {
		return fmt.Errorf("campaignd: scan state dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), checkpointExt) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(m.opts.StateDir, name)
		lj, err := loadCheckpoint(path)
		if err != nil {
			m.logf("campaignd: skipping %s: %v", name, err)
			continue
		}
		if err := m.adopt(lj); err != nil {
			m.logf("campaignd: skipping %s: %v", name, err)
		}
	}
	return nil
}

// adopt installs one replayed job and resumes it if unfinished.
func (m *Manager) adopt(lj *loadedJob) error {
	if err := lj.spec.Validate(); err != nil {
		return err
	}
	if lj.spec.ShardSize == 0 {
		// Pre-normalization record; shard layout must match what the
		// original run used, so refuse rather than guess.
		return fmt.Errorf("campaignd: job %s has no shard size", lj.id)
	}
	task, _ := campaign.Lookup(lj.spec.Task)
	j := m.newJob(lj.id, lj.created, lj.spec, task)
	if lj.dropped > 0 {
		m.logf("campaignd: job %s: ignored %d corrupt checkpoint record(s)", lj.id, lj.dropped)
	}

	// Replay checkpointed shards in shard order.
	for s := 0; s < j.shards; s++ {
		outs, ok := lj.shards[s]
		if !ok {
			continue
		}
		from, to := shardBounds(s, j.spec.Seeds, j.spec.ShardSize)
		if len(outs) != to-from || outs[0].Index != from {
			m.logf("campaignd: job %s: shard %d bounds mismatch, re-running", lj.id, s)
			continue
		}
		j.done[s] = true
		j.doneShards++
		j.seedsDone += len(outs)
		copy(j.outcomes[from:to], outs)
		for _, o := range outs {
			j.partial.Observe(o)
		}
	}

	switch {
	case lj.state == StateDone || (lj.state == "" && j.doneShards == j.shards):
		// Completed (or crashed after the last shard record): rebuild
		// the final result; no scheduler needed.
		res, err := campaign.Finalize(j.spec.campaignSpec(), j.outcomes)
		if err != nil {
			return fmt.Errorf("campaignd: job %s: finalize: %w", lj.id, err)
		}
		j.state, j.result, j.finished = StateDone, res, lj.finished
		m.install(j)
		m.counters.jobsRecovered.Add(1)
		m.logf("campaignd: job %s recovered complete (%d shards)", j.id, j.shards)
	case lj.state.terminal():
		j.state, j.errMsg, j.finished = lj.state, lj.errMsg, lj.finished
		if len(lj.quarantined) > 0 {
			j.quarantined = make(map[int]string, len(lj.quarantined))
			for _, s := range lj.quarantined {
				// Per-shard failure text lives in the error message; the
				// record pins only the indices.
				j.quarantined[s] = "quarantined (see error)"
			}
		}
		m.install(j)
		m.counters.jobsRecovered.Add(1)
		m.logf("campaignd: job %s recovered %s", j.id, j.state)
	default:
		// Interrupted mid-sweep: reopen the file and resume.
		ckpt, err := openCheckpoint(m.opts.StateDir, j.id)
		if err != nil {
			return err
		}
		j.ckpt = ckpt
		m.install(j)
		m.counters.jobsRecovered.Add(1)
		m.counters.jobsResumed.Add(1)
		m.logf("campaignd: job %s resuming: %d/%d shards checkpointed", j.id, j.doneShards, j.shards)
		m.start(j)
	}
	return nil
}

func (m *Manager) install(j *job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs[j.id] = j
}

// start launches the shard scheduler for a job.
func (m *Manager) start(j *job) {
	ctx, cancel := context.WithCancel(m.ctx)
	j.mu.Lock()
	j.cancel = cancel
	pending := make([]int, 0, j.shards-j.doneShards)
	for s, d := range j.done {
		if !d {
			pending = append(pending, s)
		}
	}
	j.mu.Unlock()

	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer cancel()
		err := campaign.ForEachDrain(ctx, m.drainCh, len(pending), j.spec.Workers, func(shardCtx context.Context, k int) error {
			s := pending[k]
			if err := m.runShardResilient(shardCtx, j, s); err != nil {
				return err
			}
			if m.opts.Throttle > 0 {
				select {
				case <-time.After(m.opts.Throttle):
				case <-shardCtx.Done():
				case <-m.drainCh:
				}
			}
			return nil
		})
		m.finish(j, err)
	}()
}

// runShardResilient is one shard's full fault envelope: each execution
// attempt runs under a panic-recovery scope (a panicking task becomes a
// *campaign.PanicError carrying the stack, never a dead daemon), task
// errors and panics retry with exponential backoff plus deterministic
// jitter, and a shard that fails every attempt is quarantined — the job
// carries on with its remaining shards instead of hanging or failing
// silently. Cancellation and shutdown are never retried or quarantined:
// they propagate so the scheduler can stop.
func (m *Manager) runShardResilient(ctx context.Context, j *job, s int) error {
	attempts := m.opts.MaxShardAttempts
	var last error
	for attempt := 1; attempt <= attempts; attempt++ {
		var outs []campaign.Outcome
		err := campaign.Call(func() error {
			var rerr error
			outs, rerr = m.runShard(ctx, j, s)
			return rerr
		})
		if err == nil {
			return m.completeShard(j, s, outs)
		}
		if ctx.Err() != nil {
			// Cancellation (job cancel or daemon shutdown) mid-shard —
			// not a shard fault.
			return ctx.Err()
		}
		last = err
		var pe *campaign.PanicError
		if errors.As(err, &pe) {
			m.counters.panicsRecovered.Add(1)
			m.logf("campaignd: job %s shard %d attempt %d/%d panicked: %v\n%s",
				j.id, s, attempt, attempts, pe.Value, pe.Stack)
		} else {
			m.logf("campaignd: job %s shard %d attempt %d/%d failed: %v", j.id, s, attempt, attempts, err)
		}
		if attempt < attempts {
			m.counters.shardRetries.Add(1)
			if !sleepCtx(ctx, retryBackoff(m.opts.RetryBackoff, m.opts.RetryMaxBackoff, j.spec.BaseSeed, s, attempt)) {
				return ctx.Err()
			}
		}
	}
	m.quarantineShard(j, s, last)
	return nil
}

// retryBackoff is the attempt'th shard-retry delay: exponential from
// base, capped at max, jittered deterministically by (campaign base
// seed, shard, attempt) so chaos runs replay their timing envelope.
func retryBackoff(base, max time.Duration, baseSeed uint64, shard, attempt int) time.Duration {
	d := base << (attempt - 1)
	if d <= 0 || d > max {
		d = max
	}
	h := rng.StreamSeed(baseSeed^(uint64(shard)*0x9e3779b97f4a7c15), uint64(attempt))
	u := float64(h>>11) / (1 << 53)
	return time.Duration(float64(d) * (0.5 + u))
}

// sleepCtx sleeps for d unless ctx ends first; it reports whether the
// full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// quarantineShard records a poison shard: the retry budget is spent,
// the shard's outcomes are abandoned, and the job will terminate
// StateQuarantined (with the shard enumerated) once the remaining
// shards finish.
func (m *Manager) quarantineShard(j *job, s int, err error) {
	summary := firstLine(err.Error())
	j.mu.Lock()
	if j.quarantined == nil {
		j.quarantined = make(map[int]string)
	}
	j.quarantined[s] = summary
	j.mu.Unlock()
	m.counters.shardsQuarantined.Add(1)
	m.logf("campaignd: job %s shard %d quarantined after %d attempts: %s", j.id, s, m.opts.MaxShardAttempts, summary)
}

// firstLine trims an error message to its first line — panic errors
// carry whole goroutine stacks, which belong in the log, not in a
// status field enumerating shards.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// runShard executes one shard's task instances sequentially. Each
// instance's seed depends only on (base seed, task index), so the
// result is independent of scheduling — and of how many attempts it
// took to get here. The "shard.run" injection point models a fault at
// the top of the attempt.
func (m *Manager) runShard(ctx context.Context, j *job, s int) ([]campaign.Outcome, error) {
	if err := faultinject.Fire("shard.run"); err != nil {
		return nil, err
	}
	from, to := shardBounds(s, j.spec.Seeds, j.spec.ShardSize)
	outs := make([]campaign.Outcome, 0, to-from)
	// A fresh device pool per shard attempt: seeds within the shard run
	// sequentially on this goroutine and reuse enrolled-device state,
	// while a retried attempt starts clean — pooled state never leaks
	// across a panic or error into the retry (task outputs are
	// pool-independent by contract, so results stay byte-identical to a
	// one-shot campaign.Run).
	opts := campaign.Options{Noise: j.spec.Noise, Pool: campaign.NewPool()}
	for i := from; i < to; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		seed := rng.StreamSeed(j.spec.BaseSeed, uint64(i))
		metrics, err := j.task.Run(ctx, seed, opts)
		if err != nil {
			return nil, fmt.Errorf("%s seed %#x: %w", j.task.Name, seed, err)
		}
		outs = append(outs, campaign.Outcome{Index: i, Seed: seed, Metrics: metrics})
	}
	return outs, nil
}

// completeShard checkpoints a finished shard, folds it into the
// streaming partial, and notifies subscribers. A checkpoint write that
// keeps failing past the retry budget degrades durability instead of
// failing the job: the shard's outcomes stay in memory (the final
// result is unaffected), the daemon turns degraded on /healthz, and the
// shard would re-run after a restart — deterministically, to the same
// bytes.
func (m *Manager) completeShard(j *job, s int, outs []campaign.Outcome) error {
	from, to := shardBounds(s, j.spec.Seeds, j.spec.ShardSize)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.ckpt == nil {
		return fmt.Errorf("campaignd: job %s checkpoint closed", j.id)
	}
	durable := false
	for attempt := 1; attempt <= m.opts.CheckpointAttempts; attempt++ {
		n, err := j.ckpt.appendShard(s, from, to, outs)
		if err == nil {
			m.counters.checkpointBytes.Add(int64(n))
			durable = true
			break
		}
		m.counters.checkpointErrors.Add(1)
		m.logf("campaignd: job %s shard %d checkpoint attempt %d/%d: %v",
			j.id, s, attempt, m.opts.CheckpointAttempts, err)
		if attempt < m.opts.CheckpointAttempts {
			sleepCtx(m.ctx, time.Duration(attempt)*m.opts.CheckpointBackoff)
		}
	}
	if !durable {
		j.lostShards++
		m.counters.lostDurabilityShards.Add(1)
		m.logf("campaignd: job %s shard %d: durability lost, continuing in memory", j.id, s)
	}
	j.done[s] = true
	j.doneShards++
	j.seedsDone += len(outs)
	copy(j.outcomes[from:to], outs)
	for _, o := range outs {
		j.partial.Observe(o)
	}
	m.counters.shardsCompleted.Add(1)
	m.counters.seedsCompleted.Add(int64(len(outs)))
	j.broadcastLocked()
	return nil
}

// finish records a job's terminal state — or, when the manager itself
// is shutting down or draining, leaves the job resumable and records
// nothing beyond the shards already checkpointed.
func (m *Manager) finish(j *job, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()

	switch {
	case err == nil && len(j.quarantined) > 0:
		// Every schedulable shard ran; the poison ones are enumerated.
		j.state, j.errMsg = StateQuarantined, quarantineMessage(j.quarantined, m.opts.MaxShardAttempts)
	case err == nil:
		res, ferr := campaign.Finalize(j.spec.campaignSpec(), j.outcomes)
		if ferr != nil {
			j.state, j.errMsg = StateFailed, ferr.Error()
		} else {
			j.state, j.result = StateDone, res
		}
	case j.cancelled:
		j.state = StateCancelled
	case errors.Is(err, campaign.ErrDrained) || m.ctx.Err() != nil:
		// Graceful drain or daemon shutdown: no terminal record; Recover
		// resumes this job from the shards already checkpointed.
		if j.ckpt != nil {
			j.ckpt.Close()
			j.ckpt = nil
		}
		j.closeSubsLocked()
		return
	default:
		j.state, j.errMsg = StateFailed, err.Error()
	}

	now := time.Now().UTC().Truncate(time.Millisecond)
	j.finished = &now
	if j.ckpt != nil {
		rec := statusRecord{Type: "status", State: j.state, Error: j.errMsg,
			Quarantined: sortedShardList(j.quarantined), Finished: now}
		if werr := j.ckpt.append(rec); werr != nil {
			m.counters.checkpointErrors.Add(1)
			m.logf("campaignd: job %s: status record: %v", j.id, werr)
		}
		j.ckpt.Close()
		j.ckpt = nil
	}
	m.logf("campaignd: job %s %s (%d/%d shards)", j.id, j.state, j.doneShards, j.shards)
	j.broadcastLocked()
	j.closeSubsLocked()
}

// quarantineMessage renders the terminal error for a quarantined job:
// every poison shard with its last failure, in shard order.
func quarantineMessage(q map[int]string, attempts int) string {
	shards := make([]int, 0, len(q))
	for s := range q {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	var b strings.Builder
	fmt.Fprintf(&b, "%d shard(s) quarantined after %d attempts each: ", len(shards), attempts)
	for i, s := range shards {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "shard %d: %s", s, q[s])
	}
	return b.String()
}

// sortedShardList flattens a quarantine map to its sorted shard indices
// (nil for none, keeping JSON omitempty clean).
func sortedShardList(q map[int]string) []int {
	if len(q) == 0 {
		return nil
	}
	out := make([]int, 0, len(q))
	for s := range q {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Get returns one job's status; detail includes the final Result for
// done jobs.
func (m *Manager) Get(id string, detail bool) (JobStatus, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.status(detail), true
}

// List returns every job's summary status, newest first.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status(false))
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].Created.Equal(out[k].Created) {
			return out[i].Created.After(out[k].Created)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Cancel stops a running job. The already-checkpointed shards stay on
// disk, but the job is terminal and will not be resumed.
func (m *Manager) Cancel(id string) (JobStatus, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("campaignd: no job %q", id)
	}
	j.mu.Lock()
	if j.state.terminal() {
		st := j.state
		j.mu.Unlock()
		return JobStatus{}, fmt.Errorf("campaignd: job %s is already %s", id, st)
	}
	j.cancelled = true
	j.state = StateCancelled
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	st, _ := m.Get(id, false)
	return st, nil
}

// Subscribe returns a channel of progress events for a job, starting
// with an immediate snapshot. The channel closes after the terminal
// event (immediately, for already-terminal jobs). The returned cancel
// func releases the subscription.
func (m *Manager) Subscribe(id string) (<-chan Event, func(), error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("campaignd: no job %q", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan Event, 16)
	ch <- j.eventLocked()
	if j.state.terminal() || j.subs == nil {
		close(ch)
		return ch, func() {}, nil
	}
	idx := j.nextSub
	j.nextSub++
	j.subs[idx] = ch
	cancel := func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, live := j.subs[idx]; live {
			delete(j.subs, idx)
			close(ch)
		}
	}
	return ch, cancel, nil
}

// eventLocked snapshots the job as an Event. Callers hold j.mu.
func (j *job) eventLocked() Event {
	return Event{
		JobID:       j.id,
		State:       j.state,
		ShardsDone:  j.doneShards,
		ShardsTotal: j.shards,
		SeedsDone:   j.seedsDone,
		SeedsTotal:  j.spec.Seeds,
		Aggregates:  j.partial.Aggregates(),
		Error:       j.errMsg,
		Quarantined: sortedShardList(j.quarantined),
	}
}

// broadcastLocked pushes the current snapshot to every subscriber,
// dropping the oldest queued event when a subscriber lags — progress
// events are cumulative snapshots, so the latest always supersedes.
func (j *job) broadcastLocked() {
	ev := j.eventLocked()
	for _, ch := range j.subs {
		for {
			select {
			case ch <- ev:
			default:
				select {
				case <-ch:
				default:
				}
				continue
			}
			break
		}
	}
}

// closeSubsLocked closes every subscription after a terminal event.
func (j *job) closeSubsLocked() {
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
}

// status snapshots the job for the API.
func (j *job) status(detail bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Spec:        j.spec,
		Created:     j.created,
		Finished:    j.finished,
		ShardsDone:  j.doneShards,
		ShardsTotal: j.shards,
		SeedsDone:   j.seedsDone,
		SeedsTotal:  j.spec.Seeds,
		Error:       j.errMsg,
		Quarantined: sortedShardList(j.quarantined),
	}
	if j.state == StateDone {
		if detail {
			st.Result = j.result
		}
	} else {
		st.Aggregates = j.partial.Aggregates()
	}
	return st
}
