package campaignd

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/rng"
)

// Options configures a Manager.
type Options struct {
	// StateDir is the checkpoint directory (required). It is created if
	// missing.
	StateDir string
	// ShardSize is the default seeds-per-shard for specs that omit it
	// (0 = 8).
	ShardSize int
	// Throttle, when > 0, sleeps after each completed shard. It exists
	// for operational rate-limiting and for tests that must observe a
	// job mid-sweep; it has no effect on results.
	Throttle time.Duration
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

// DefaultShardSize is the seeds-per-shard used when neither the spec
// nor the daemon names one.
const DefaultShardSize = 8

// Manager owns the job table, the per-job shard schedulers, and the
// checkpoint store. All exported methods are safe for concurrent use.
type Manager struct {
	opts   Options
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu   sync.Mutex
	jobs map[string]*job

	counters counters
}

// job is one campaign under management. Fields past mu are guarded by
// it; the scheduler holds it only for bookkeeping, never while running
// task instances.
type job struct {
	id      string
	created time.Time
	spec    Spec // normalized: ShardSize > 0
	task    campaign.Task

	mu         sync.Mutex
	state      State
	errMsg     string
	finished   *time.Time
	shards     int
	done       []bool
	doneShards int
	seedsDone  int
	outcomes   []campaign.Outcome
	partial    *campaign.Partial
	result     *campaign.Result
	cancelled  bool
	cancel     context.CancelFunc
	ckpt       *checkpointFile
	subs       map[int]chan Event
	nextSub    int
}

// New builds a Manager over a state directory. Call Recover to reload
// and resume checkpointed jobs, and Close to stop.
func New(opts Options) (*Manager, error) {
	if opts.StateDir == "" {
		return nil, fmt.Errorf("campaignd: Options.StateDir is required")
	}
	if opts.ShardSize <= 0 {
		opts.ShardSize = DefaultShardSize
	}
	if err := os.MkdirAll(opts.StateDir, 0o755); err != nil {
		return nil, fmt.Errorf("campaignd: state dir: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		opts:   opts,
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(map[string]*job),
	}, nil
}

// Close stops every running job (without recording a terminal state, so
// they resume on the next Recover) and waits for the schedulers to
// drain.
func (m *Manager) Close() {
	m.cancel()
	m.wg.Wait()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.ckpt != nil {
			j.ckpt.Close()
			j.ckpt = nil
		}
		j.mu.Unlock()
	}
}

func (m *Manager) logf(format string, args ...any) {
	if m.opts.Logf != nil {
		m.opts.Logf(format, args...)
	}
}

// newJobID returns a fresh random job identifier.
func newJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("campaignd: rand: %v", err))
	}
	return "c" + hex.EncodeToString(b[:])
}

// numShards is the shard count for a normalized spec.
func numShards(seeds, shardSize int) int {
	return (seeds + shardSize - 1) / shardSize
}

// shardBounds returns the task-index range [from, to) of shard s.
func shardBounds(s, seeds, shardSize int) (from, to int) {
	from = s * shardSize
	to = min(from+shardSize, seeds)
	return from, to
}

// Submit validates a spec, creates its checkpoint file, and starts the
// job. The returned status is the job's initial snapshot.
func (m *Manager) Submit(spec Spec) (JobStatus, error) {
	if err := spec.Validate(); err != nil {
		return JobStatus{}, err
	}
	if spec.ShardSize == 0 {
		spec.ShardSize = m.opts.ShardSize
	}
	task, _ := campaign.Lookup(spec.Task)

	if m.ctx.Err() != nil {
		return JobStatus{}, fmt.Errorf("campaignd: manager is shut down")
	}
	id := newJobID()
	created := time.Now().UTC().Truncate(time.Millisecond)
	ckpt, err := createCheckpoint(m.opts.StateDir, id, created, spec)
	if err != nil {
		return JobStatus{}, err
	}
	j := m.newJob(id, created, spec, task)
	j.ckpt = ckpt

	m.mu.Lock()
	m.jobs[id] = j
	m.mu.Unlock()
	m.counters.jobsSubmitted.Add(1)
	m.logf("campaignd: job %s submitted: task=%s seeds=%d shard=%d workers=%d",
		id, spec.Task, spec.Seeds, spec.ShardSize, spec.Workers)

	m.start(j)
	return j.status(false), nil
}

// newJob builds the in-memory job shell (no scheduler yet).
func (m *Manager) newJob(id string, created time.Time, spec Spec, task campaign.Task) *job {
	shards := numShards(spec.Seeds, spec.ShardSize)
	return &job{
		id:       id,
		created:  created,
		spec:     spec,
		task:     task,
		state:    StateRunning,
		shards:   shards,
		done:     make([]bool, shards),
		outcomes: make([]campaign.Outcome, spec.Seeds),
		partial:  campaign.NewPartial(task.Binary),
		subs:     make(map[int]chan Event),
	}
}

// Recover scans the state directory, reloads every checkpointed job,
// and resumes the unfinished ones — skipping checkpointed shards, so a
// daemon killed mid-sweep picks up exactly where the last fsynced
// record left off.
func (m *Manager) Recover() error {
	entries, err := os.ReadDir(m.opts.StateDir)
	if err != nil {
		return fmt.Errorf("campaignd: scan state dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), checkpointExt) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(m.opts.StateDir, name)
		lj, err := loadCheckpoint(path)
		if err != nil {
			m.logf("campaignd: skipping %s: %v", name, err)
			continue
		}
		if err := m.adopt(lj); err != nil {
			m.logf("campaignd: skipping %s: %v", name, err)
		}
	}
	return nil
}

// adopt installs one replayed job and resumes it if unfinished.
func (m *Manager) adopt(lj *loadedJob) error {
	if err := lj.spec.Validate(); err != nil {
		return err
	}
	if lj.spec.ShardSize == 0 {
		// Pre-normalization record; shard layout must match what the
		// original run used, so refuse rather than guess.
		return fmt.Errorf("campaignd: job %s has no shard size", lj.id)
	}
	task, _ := campaign.Lookup(lj.spec.Task)
	j := m.newJob(lj.id, lj.created, lj.spec, task)
	if lj.dropped > 0 {
		m.logf("campaignd: job %s: ignored %d corrupt checkpoint record(s)", lj.id, lj.dropped)
	}

	// Replay checkpointed shards in shard order.
	for s := 0; s < j.shards; s++ {
		outs, ok := lj.shards[s]
		if !ok {
			continue
		}
		from, to := shardBounds(s, j.spec.Seeds, j.spec.ShardSize)
		if len(outs) != to-from || outs[0].Index != from {
			m.logf("campaignd: job %s: shard %d bounds mismatch, re-running", lj.id, s)
			continue
		}
		j.done[s] = true
		j.doneShards++
		j.seedsDone += len(outs)
		copy(j.outcomes[from:to], outs)
		for _, o := range outs {
			j.partial.Observe(o)
		}
	}

	switch {
	case lj.state == StateDone || (lj.state == "" && j.doneShards == j.shards):
		// Completed (or crashed after the last shard record): rebuild
		// the final result; no scheduler needed.
		res, err := campaign.Finalize(j.spec.campaignSpec(), j.outcomes)
		if err != nil {
			return fmt.Errorf("campaignd: job %s: finalize: %w", lj.id, err)
		}
		j.state, j.result, j.finished = StateDone, res, lj.finished
		m.install(j)
		m.counters.jobsRecovered.Add(1)
		m.logf("campaignd: job %s recovered complete (%d shards)", j.id, j.shards)
	case lj.state.terminal():
		j.state, j.errMsg, j.finished = lj.state, lj.errMsg, lj.finished
		m.install(j)
		m.counters.jobsRecovered.Add(1)
		m.logf("campaignd: job %s recovered %s", j.id, j.state)
	default:
		// Interrupted mid-sweep: reopen the file and resume.
		ckpt, err := openCheckpoint(m.opts.StateDir, j.id)
		if err != nil {
			return err
		}
		j.ckpt = ckpt
		m.install(j)
		m.counters.jobsRecovered.Add(1)
		m.counters.jobsResumed.Add(1)
		m.logf("campaignd: job %s resuming: %d/%d shards checkpointed", j.id, j.doneShards, j.shards)
		m.start(j)
	}
	return nil
}

func (m *Manager) install(j *job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs[j.id] = j
}

// start launches the shard scheduler for a job.
func (m *Manager) start(j *job) {
	ctx, cancel := context.WithCancel(m.ctx)
	j.mu.Lock()
	j.cancel = cancel
	pending := make([]int, 0, j.shards-j.doneShards)
	for s, d := range j.done {
		if !d {
			pending = append(pending, s)
		}
	}
	j.mu.Unlock()

	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer cancel()
		err := campaign.ForEach(ctx, len(pending), j.spec.Workers, func(shardCtx context.Context, k int) error {
			s := pending[k]
			outs, err := m.runShard(shardCtx, j, s)
			if err != nil {
				return err
			}
			if err := m.completeShard(j, s, outs); err != nil {
				return err
			}
			if m.opts.Throttle > 0 {
				select {
				case <-time.After(m.opts.Throttle):
				case <-shardCtx.Done():
				}
			}
			return nil
		})
		m.finish(j, err)
	}()
}

// runShard executes one shard's task instances sequentially. Each
// instance's seed depends only on (base seed, task index), so the
// result is independent of scheduling.
func (m *Manager) runShard(ctx context.Context, j *job, s int) ([]campaign.Outcome, error) {
	from, to := shardBounds(s, j.spec.Seeds, j.spec.ShardSize)
	outs := make([]campaign.Outcome, 0, to-from)
	opts := campaign.Options{Noise: j.spec.Noise}
	for i := from; i < to; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		seed := rng.StreamSeed(j.spec.BaseSeed, uint64(i))
		metrics, err := j.task.Run(ctx, seed, opts)
		if err != nil {
			return nil, fmt.Errorf("%s seed %#x: %w", j.task.Name, seed, err)
		}
		outs = append(outs, campaign.Outcome{Index: i, Seed: seed, Metrics: metrics})
	}
	return outs, nil
}

// completeShard checkpoints a finished shard, folds it into the
// streaming partial, and notifies subscribers.
func (m *Manager) completeShard(j *job, s int, outs []campaign.Outcome) error {
	from, to := shardBounds(s, j.spec.Seeds, j.spec.ShardSize)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.ckpt == nil {
		return fmt.Errorf("campaignd: job %s checkpoint closed", j.id)
	}
	n, err := j.ckpt.appendShard(s, from, to, outs)
	if err != nil {
		return err
	}
	j.done[s] = true
	j.doneShards++
	j.seedsDone += len(outs)
	copy(j.outcomes[from:to], outs)
	for _, o := range outs {
		j.partial.Observe(o)
	}
	m.counters.shardsCompleted.Add(1)
	m.counters.seedsCompleted.Add(int64(len(outs)))
	m.counters.checkpointBytes.Add(int64(n))
	j.broadcastLocked()
	return nil
}

// finish records a job's terminal state — or, when the manager itself
// is shutting down, leaves the job resumable and records nothing.
func (m *Manager) finish(j *job, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()

	switch {
	case err == nil:
		res, ferr := campaign.Finalize(j.spec.campaignSpec(), j.outcomes)
		if ferr != nil {
			j.state, j.errMsg = StateFailed, ferr.Error()
		} else {
			j.state, j.result = StateDone, res
		}
	case j.cancelled:
		j.state = StateCancelled
	case m.ctx.Err() != nil:
		// Daemon shutdown: no terminal record; Recover resumes this job.
		if j.ckpt != nil {
			j.ckpt.Close()
			j.ckpt = nil
		}
		j.closeSubsLocked()
		return
	default:
		j.state, j.errMsg = StateFailed, err.Error()
	}

	now := time.Now().UTC().Truncate(time.Millisecond)
	j.finished = &now
	if j.ckpt != nil {
		rec := statusRecord{Type: "status", State: j.state, Error: j.errMsg, Finished: now}
		if werr := j.ckpt.append(rec); werr != nil {
			m.logf("campaignd: job %s: status record: %v", j.id, werr)
		}
		j.ckpt.Close()
		j.ckpt = nil
	}
	m.logf("campaignd: job %s %s (%d/%d shards)", j.id, j.state, j.doneShards, j.shards)
	j.broadcastLocked()
	j.closeSubsLocked()
}

// Get returns one job's status; detail includes the final Result for
// done jobs.
func (m *Manager) Get(id string, detail bool) (JobStatus, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.status(detail), true
}

// List returns every job's summary status, newest first.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status(false))
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].Created.Equal(out[k].Created) {
			return out[i].Created.After(out[k].Created)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Cancel stops a running job. The already-checkpointed shards stay on
// disk, but the job is terminal and will not be resumed.
func (m *Manager) Cancel(id string) (JobStatus, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("campaignd: no job %q", id)
	}
	j.mu.Lock()
	if j.state.terminal() {
		st := j.state
		j.mu.Unlock()
		return JobStatus{}, fmt.Errorf("campaignd: job %s is already %s", id, st)
	}
	j.cancelled = true
	j.state = StateCancelled
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	st, _ := m.Get(id, false)
	return st, nil
}

// Subscribe returns a channel of progress events for a job, starting
// with an immediate snapshot. The channel closes after the terminal
// event (immediately, for already-terminal jobs). The returned cancel
// func releases the subscription.
func (m *Manager) Subscribe(id string) (<-chan Event, func(), error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("campaignd: no job %q", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan Event, 16)
	ch <- j.eventLocked()
	if j.state.terminal() || j.subs == nil {
		close(ch)
		return ch, func() {}, nil
	}
	idx := j.nextSub
	j.nextSub++
	j.subs[idx] = ch
	cancel := func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, live := j.subs[idx]; live {
			delete(j.subs, idx)
			close(ch)
		}
	}
	return ch, cancel, nil
}

// eventLocked snapshots the job as an Event. Callers hold j.mu.
func (j *job) eventLocked() Event {
	return Event{
		JobID:       j.id,
		State:       j.state,
		ShardsDone:  j.doneShards,
		ShardsTotal: j.shards,
		SeedsDone:   j.seedsDone,
		SeedsTotal:  j.spec.Seeds,
		Aggregates:  j.partial.Aggregates(),
		Error:       j.errMsg,
	}
}

// broadcastLocked pushes the current snapshot to every subscriber,
// dropping the oldest queued event when a subscriber lags — progress
// events are cumulative snapshots, so the latest always supersedes.
func (j *job) broadcastLocked() {
	ev := j.eventLocked()
	for _, ch := range j.subs {
		for {
			select {
			case ch <- ev:
			default:
				select {
				case <-ch:
				default:
				}
				continue
			}
			break
		}
	}
}

// closeSubsLocked closes every subscription after a terminal event.
func (j *job) closeSubsLocked() {
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
}

// status snapshots the job for the API.
func (j *job) status(detail bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Spec:        j.spec,
		Created:     j.created,
		Finished:    j.finished,
		ShardsDone:  j.doneShards,
		ShardsTotal: j.shards,
		SeedsDone:   j.seedsDone,
		SeedsTotal:  j.spec.Seeds,
		Error:       j.errMsg,
	}
	if j.state == StateDone {
		if detail {
			st.Result = j.result
		}
	} else {
		st.Aggregates = j.partial.Aggregates()
	}
	return st
}
