package campaignd

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/rng"
)

func init() {
	// A deterministic CPU-ish task mirroring the campaign package's
	// test fixture: a random walk whose outcome depends on every draw.
	campaign.Register(campaign.Task{
		Name:   "campaignd-test-walk",
		Desc:   "deterministic random walk (campaignd test fixture)",
		Binary: []string{"recovered"},
		Run: func(_ context.Context, seed uint64, _ campaign.Options) (campaign.Metrics, error) {
			src := rng.New(seed)
			var sum float64
			for i := 0; i < 500; i++ {
				sum += src.Norm()
			}
			return campaign.Metrics{
				"walk-sum":  sum,
				"recovered": campaign.Bool(sum > 0),
			}, nil
		},
	})
	campaign.Register(campaign.Task{
		Name: "campaignd-test-fail",
		Desc: "fails on seeds divisible by 3 (campaignd test fixture)",
		Run: func(_ context.Context, seed uint64, _ campaign.Options) (campaign.Metrics, error) {
			if seed%3 == 0 {
				return nil, fmt.Errorf("unlucky seed %#x", seed)
			}
			return campaign.Metrics{"ok": 1}, nil
		},
	})
}

// newTestManager builds a manager over a temp state dir and tears it
// down with the test.
func newTestManager(t *testing.T, opts Options) *Manager {
	t.Helper()
	if opts.StateDir == "" {
		opts.StateDir = t.TempDir()
	}
	opts.Logf = t.Logf
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// waitTerminal polls a job until it leaves StateRunning.
func waitTerminal(t *testing.T, m *Manager, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := m.Get(id, true)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if st.State != StateRunning {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	panic("unreachable")
}

func TestSubmitRunsToCompletion(t *testing.T) {
	m := newTestManager(t, Options{ShardSize: 4})
	st, err := m.Submit(Spec{Task: "campaignd-test-walk", BaseSeed: 11, Seeds: 18, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardsTotal != 5 || st.SeedsTotal != 18 {
		t.Fatalf("bad initial status: %+v", st)
	}
	final := waitTerminal(t, m, st.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (error %q)", final.State, final.Error)
	}
	if final.ShardsDone != 5 || final.SeedsDone != 18 {
		t.Fatalf("progress incomplete at done: %+v", final)
	}
	if final.Result == nil || len(final.Result.Outcomes) != 18 {
		t.Fatalf("missing result: %+v", final.Result)
	}
}

// The sharded daemon execution must produce a Result byte-identical to
// a one-shot campaign.Run of the same spec, for any shard size and
// worker count.
func TestShardedMatchesOneShot(t *testing.T) {
	spec := Spec{Task: "campaignd-test-walk", BaseSeed: 77, Seeds: 26, Workers: 3}
	oneShot, err := campaign.Run(context.Background(), spec.campaignSpec())
	if err != nil {
		t.Fatal(err)
	}
	want := resultJSON(t, oneShot)

	for _, shard := range []int{1, 4, 7, 26, 100} {
		m := newTestManager(t, Options{ShardSize: shard})
		st, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		final := waitTerminal(t, m, st.ID)
		if final.State != StateDone {
			t.Fatalf("shard=%d: state %s (%s)", shard, final.State, final.Error)
		}
		if got := resultJSON(t, final.Result); got != want {
			t.Fatalf("shard=%d: sharded result differs from one-shot run:\n%s\nvs\n%s", shard, got, want)
		}
	}
}

// A deterministically failing task no longer fail-fasts the whole job:
// each poison shard is retried to its attempt budget, quarantined, and
// the job terminates in the distinct quarantined state with the
// offending shards enumerated — while the healthy shards' outcomes
// survive in the partial aggregates.
func TestTaskFailureQuarantinesPoisonShards(t *testing.T) {
	m := newTestManager(t, Options{ShardSize: 2,
		RetryBackoff: time.Millisecond, RetryMaxBackoff: 2 * time.Millisecond})
	st, err := m.Submit(Spec{Task: "campaignd-test-fail", BaseSeed: 1, Seeds: 12, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID)
	if final.State != StateQuarantined || final.Error == "" {
		t.Fatalf("state = %s, error = %q", final.State, final.Error)
	}
	if len(final.Quarantined) == 0 || final.Quarantined[0] < 0 {
		t.Fatalf("no quarantined shards enumerated: %+v", final)
	}
	for _, s := range final.Quarantined {
		if !strings.Contains(final.Error, fmt.Sprintf("shard %d:", s)) {
			t.Fatalf("error does not name shard %d: %q", s, final.Error)
		}
	}
	// Healthy shards completed: done + quarantined must cover the job.
	if final.ShardsDone+len(final.Quarantined) != final.ShardsTotal {
		t.Fatalf("shards unaccounted for: done=%d quarantined=%d total=%d",
			final.ShardsDone, len(final.Quarantined), final.ShardsTotal)
	}
	if final.ShardsDone == 0 || len(final.Aggregates) == 0 {
		t.Fatalf("healthy shards lost: %+v", final)
	}
	if got := m.counters.shardsQuarantined.Load(); got != int64(len(final.Quarantined)) {
		t.Fatalf("quarantine counter %d vs %d shards", got, len(final.Quarantined))
	}
	if m.counters.shardRetries.Load() == 0 {
		t.Fatal("no retries recorded before quarantine")
	}

	// The quarantined verdict (state, error, shard list) survives a
	// restart without re-running anything.
	dir := m.opts.StateDir
	m.Close()
	m2 := newTestManager(t, Options{StateDir: dir})
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	got, ok := m2.Get(st.ID, true)
	if !ok || got.State != StateQuarantined {
		t.Fatalf("after restart: ok=%v state=%s", ok, got.State)
	}
	if fmt.Sprint(got.Quarantined) != fmt.Sprint(final.Quarantined) {
		t.Fatalf("quarantined shards lost across restart: %v vs %v", got.Quarantined, final.Quarantined)
	}
	if got.Error != final.Error {
		t.Fatalf("error lost across restart: %q vs %q", got.Error, final.Error)
	}
}

func TestCancelStopsJob(t *testing.T) {
	m := newTestManager(t, Options{ShardSize: 1, Throttle: 20 * time.Millisecond})
	st, err := m.Submit(Spec{Task: "campaignd-test-walk", BaseSeed: 5, Seeds: 64, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for at least one checkpointed shard so cancel lands mid-run.
	for {
		cur, _ := m.Get(st.ID, false)
		if cur.ShardsDone >= 1 || cur.State != StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID)
	if final.State != StateCancelled {
		t.Fatalf("state = %s", final.State)
	}
	if final.ShardsDone >= final.ShardsTotal {
		t.Fatalf("cancel landed after completion: %+v", final)
	}
	// Cancelling a terminal job errors.
	if _, err := m.Cancel(st.ID); err == nil {
		t.Fatal("expected error cancelling a terminal job")
	}
	// A cancelled job stays cancelled across a restart.
	dir := m.opts.StateDir
	m.Close()
	m2 := newTestManager(t, Options{StateDir: dir})
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	got, ok := m2.Get(st.ID, true)
	if !ok || got.State != StateCancelled {
		t.Fatalf("after restart: ok=%v state=%s", ok, got.State)
	}
}

func TestSubmitRejectsInvalidSpecs(t *testing.T) {
	m := newTestManager(t, Options{})
	bad := []Spec{
		{},
		{Task: "no-such-task", Seeds: 4},
		{Task: "campaignd-test-walk", Seeds: 0},
		{Task: "campaignd-test-walk", Seeds: -3},
		{Task: "campaignd-test-walk", Seeds: 4, Workers: -1},
		{Task: "campaignd-test-walk", Seeds: 4, ShardSize: -2},
		{Task: "campaignd-test-walk", Seeds: 4, Noise: "quantum"},
	}
	for i, spec := range bad {
		if _, err := m.Submit(spec); err == nil {
			t.Fatalf("spec %d (%+v) was accepted", i, spec)
		}
	}
	if got := m.List(); len(got) != 0 {
		t.Fatalf("rejected specs created jobs: %+v", got)
	}
}

func TestSubscribeStreamsProgressAndTerminal(t *testing.T) {
	m := newTestManager(t, Options{ShardSize: 3})
	st, err := m.Submit(Spec{Task: "campaignd-test-walk", BaseSeed: 9, Seeds: 12, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	events, release, err := m.Subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	var last Event
	sawAny := false
	for ev := range events {
		sawAny = true
		last = ev
	}
	if !sawAny {
		t.Fatal("no events before close")
	}
	if last.State != StateDone {
		t.Fatalf("last event state = %s", last.State)
	}
	if last.ShardsDone != 4 || last.SeedsDone != 12 {
		t.Fatalf("terminal event progress: %+v", last)
	}
	if len(last.Aggregates) == 0 {
		t.Fatal("terminal event has no aggregates")
	}
	// Subscribing to a terminal job yields a snapshot then a close.
	events2, release2, err := m.Subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer release2()
	ev, open := <-events2
	if !open || ev.State != StateDone {
		t.Fatalf("terminal subscribe: open=%v state=%s", open, ev.State)
	}
	if _, open := <-events2; open {
		t.Fatal("terminal subscription not closed")
	}
}

func TestGetAndListUnknown(t *testing.T) {
	m := newTestManager(t, Options{})
	if _, ok := m.Get("nope", false); ok {
		t.Fatal("Get of unknown job succeeded")
	}
	if _, err := m.Cancel("nope"); err == nil {
		t.Fatal("Cancel of unknown job succeeded")
	}
	if _, _, err := m.Subscribe("nope"); err == nil {
		t.Fatal("Subscribe to unknown job succeeded")
	}
}
