// Package distiller implements the regression-based entropy distiller of
// Yin & Qu (DAC 2013), the building block the paper attacks in Sections
// V-A and VI-C/D. The distiller models systematic (spatially correlated)
// manufacturing variation of the RO frequency map f(x, y) as a bivariate
// polynomial of degree p, fitted least-squares at enrollment; the
// coefficients are public helper data, and every key regeneration
// subtracts the polynomial to keep only the random residuals.
//
// Because the coefficients live in attacker-writable NVM, an attacker can
// superimpose an arbitrary steep pattern onto the fitted surface and
// overshadow the random variation — the core of the paper's entropy-
// distiller attacks. The pattern constructors used by those attacks
// (tilted planes, quadratic valleys) live here too.
package distiller

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Poly2D is a bivariate polynomial sum_{i=0..P} sum_{j=0..i}
// beta[i,j] * x^(i-j) * y^j, exactly the expression in paper §V-A. The
// coefficient for (i, j) is stored at Beta[i*(i+1)/2 + j].
type Poly2D struct {
	P    int
	Beta []float64
}

// NumTerms returns the coefficient count of a degree-p polynomial,
// (p+1)(p+2)/2.
func NumTerms(p int) int { return (p + 1) * (p + 2) / 2 }

// NewPoly2D returns the zero polynomial of degree p.
func NewPoly2D(p int) Poly2D {
	if p < 0 {
		panic("distiller: negative degree")
	}
	return Poly2D{P: p, Beta: make([]float64, NumTerms(p))}
}

// term returns the flat index of coefficient (i, j).
func term(i, j int) int { return i*(i+1)/2 + j }

// Coeff returns beta[i,j]. It panics outside the triangle j <= i <= P.
func (q Poly2D) Coeff(i, j int) float64 {
	q.checkIJ(i, j)
	return q.Beta[term(i, j)]
}

// SetCoeff assigns beta[i,j].
func (q *Poly2D) SetCoeff(i, j int, v float64) {
	q.checkIJ(i, j)
	q.Beta[term(i, j)] = v
}

func (q Poly2D) checkIJ(i, j int) {
	if i < 0 || i > q.P || j < 0 || j > i {
		panic(fmt.Sprintf("distiller: coefficient (%d,%d) outside degree-%d triangle", i, j, q.P))
	}
}

// Eval evaluates the polynomial at (x, y).
func (q Poly2D) Eval(x, y float64) float64 {
	var s float64
	for i := 0; i <= q.P; i++ {
		for j := 0; j <= i; j++ {
			s += q.Beta[term(i, j)] * math.Pow(x, float64(i-j)) * math.Pow(y, float64(j))
		}
	}
	return s
}

// Add returns the superposition q + r, promoted to the larger degree.
// This is the attacker's primitive: "the attacker's intended pattern can
// be superimposed onto the original spatial correlation map".
func (q Poly2D) Add(r Poly2D) Poly2D {
	p := q.P
	if r.P > p {
		p = r.P
	}
	out := NewPoly2D(p)
	for i := 0; i <= q.P; i++ {
		for j := 0; j <= i; j++ {
			out.Beta[term(i, j)] += q.Beta[term(i, j)]
		}
	}
	for i := 0; i <= r.P; i++ {
		for j := 0; j <= i; j++ {
			out.Beta[term(i, j)] += r.Beta[term(i, j)]
		}
	}
	return out
}

// AddInto is Add with caller-owned coefficient storage: the result's
// Beta lives in buf (regrown only when too small), so an attack loop
// superimposing a fresh pattern per hypothesis test reuses one buffer.
// Coefficients are bit-identical to Add.
func (q Poly2D) AddInto(r Poly2D, buf []float64) Poly2D {
	p := q.P
	if r.P > p {
		p = r.P
	}
	n := NumTerms(p)
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	out := Poly2D{P: p, Beta: buf}
	for i := 0; i <= q.P; i++ {
		for j := 0; j <= i; j++ {
			out.Beta[term(i, j)] += q.Beta[term(i, j)]
		}
	}
	for i := 0; i <= r.P; i++ {
		for j := 0; j <= i; j++ {
			out.Beta[term(i, j)] += r.Beta[term(i, j)]
		}
	}
	return out
}

// Fit least-squares fits a degree-p polynomial to the frequency map of a
// rows x cols array, f indexed row-major (x = column, y = row), matching
// the paper's "coefficients beta_{i,j} may be determined in a least mean
// squares manner". The paper reports p = 2 and p = 3 as good values for a
// 16x32 array.
func Fit(rows, cols int, f []float64, degree int) (Poly2D, error) {
	if len(f) != rows*cols {
		return Poly2D{}, fmt.Errorf("distiller: %d samples for %dx%d array", len(f), rows, cols)
	}
	if degree < 0 {
		return Poly2D{}, fmt.Errorf("distiller: negative degree %d", degree)
	}
	terms := NumTerms(degree)
	if len(f) < terms {
		return Poly2D{}, fmt.Errorf("distiller: %d samples cannot determine %d coefficients", len(f), terms)
	}
	a := linalg.NewMatrix(len(f), terms)
	for idx := range f {
		x := float64(idx % cols)
		y := float64(idx / cols)
		for i := 0; i <= degree; i++ {
			for j := 0; j <= i; j++ {
				a.Set(idx, term(i, j), math.Pow(x, float64(i-j))*math.Pow(y, float64(j)))
			}
		}
	}
	beta, err := linalg.LeastSquares(a, f)
	if err != nil {
		return Poly2D{}, fmt.Errorf("distiller: fit failed: %w", err)
	}
	return Poly2D{P: degree, Beta: beta}, nil
}

// Distill subtracts the polynomial surface from a frequency map and
// returns the residuals — the "desired random variations" that feed the
// downstream grouping or pairing logic.
func Distill(rows, cols int, f []float64, q Poly2D) []float64 {
	if len(f) != rows*cols {
		panic(fmt.Sprintf("distiller: %d samples for %dx%d array", len(f), rows, cols))
	}
	return DistillWithGrid(make([]float64, len(f)), f, q.EvalGrid(rows, cols, nil))
}

// EvalGrid evaluates the polynomial at every cell of a rows x cols array
// (row-major, x = column, y = row) into dst, allocating only when dst is
// too small. The surface depends solely on the helper coefficients, so
// reconstruction hot loops evaluate it once per helper write and reuse
// the grid across measurements.
func (q Poly2D) EvalGrid(rows, cols int, dst []float64) []float64 {
	n := rows * cols
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for idx := range dst {
		dst[idx] = q.Eval(float64(idx%cols), float64(idx/cols))
	}
	return dst
}

// DistillWithGrid subtracts a precomputed EvalGrid surface from a
// frequency map into dst and returns it; output is bit-identical to
// Distill with the grid's polynomial.
func DistillWithGrid(dst, f, grid []float64) []float64 {
	if len(f) != len(grid) {
		panic(fmt.Sprintf("distiller: %d samples for %d-cell grid", len(f), len(grid)))
	}
	if cap(dst) < len(f) {
		dst = make([]float64, len(f))
	}
	dst = dst[:len(f)]
	for idx, v := range f {
		dst[idx] = v - grid[idx]
	}
	return dst
}

// DistillSparse subtracts the surface only at the listed cells — the
// companion of silicon.MeasureSparse for reconstructions whose helper
// references a subset of the array. Entries of dst outside idxs are
// scratch garbage the caller must not read.
func DistillSparse(dst, f, grid []float64, idxs []int) []float64 {
	if len(f) != len(grid) {
		panic(fmt.Sprintf("distiller: %d samples for %d-cell grid", len(f), len(grid)))
	}
	if cap(dst) < len(f) {
		dst = make([]float64, len(f))
	}
	dst = dst[:len(f)]
	for _, idx := range idxs {
		dst[idx] = f[idx] - grid[idx]
	}
	return dst
}

// Variance returns the population variance of a sample set; used to
// report the systematic/random decomposition of experiment E2 (Fig. 2).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var mean float64
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	var s float64
	for _, v := range xs {
		s += (v - mean) * (v - mean)
	}
	return s / float64(len(xs))
}

// --- attack pattern constructors (paper Fig. 6) ---

// Plane returns the tilted plane c0 + cx*x + cy*y, the pattern the paper
// suggests "if G1 would cover a single column only".
func Plane(c0, cx, cy float64) Poly2D {
	q := NewPoly2D(1)
	q.SetCoeff(0, 0, c0)
	q.SetCoeff(1, 0, cx)
	q.SetCoeff(1, 1, cy)
	return q
}

// QuadraticValleyX returns amp * (x - x0)^2: a quadratic surface constant
// in y whose extremum sits at column x0 (the triangle marker of Fig. 6).
// Oscillators equidistant from x0 receive identical pattern values, so
// their mutual order stays decided by the true random variation — the
// mechanism isolating the target bit in the Fig. 6 attacks.
func QuadraticValleyX(x0, amp float64) Poly2D {
	q := NewPoly2D(2)
	q.SetCoeff(0, 0, amp*x0*x0)
	q.SetCoeff(1, 0, -2*amp*x0)
	q.SetCoeff(2, 0, amp)
	return q
}

// QuadraticValleyY is QuadraticValleyX with the roles of x and y swapped.
func QuadraticValleyY(y0, amp float64) Poly2D {
	q := NewPoly2D(2)
	q.SetCoeff(0, 0, amp*y0*y0)
	q.SetCoeff(1, 1, -2*amp*y0)
	q.SetCoeff(2, 2, amp)
	return q
}

// PerpendicularPlane returns a steep plane whose level lines pass through
// both (x1, y1) and (x2, y2): the two targets receive the same pattern
// value while the gradient (of magnitude amp in the normal direction)
// separates everyone off the line. The general-position generalization of
// the valley patterns.
func PerpendicularPlane(x1, y1, x2, y2 int, amp float64) Poly2D {
	// Direction of the segment; the plane gradient is its normal.
	dx := float64(x2 - x1)
	dy := float64(y2 - y1)
	norm := math.Hypot(dx, dy)
	if norm == 0 {
		panic("distiller: coincident targets have no separating plane")
	}
	nx, ny := -dy/norm, dx/norm
	// Plane value: amp * ((x-x1)*nx + (y-y1)*ny).
	return Plane(-amp*(float64(x1)*nx+float64(y1)*ny), amp*nx, amp*ny)
}

// --- NVM serialization ---

// Marshal serializes the polynomial for helper NVM: degree then
// little-endian float64 coefficients.
func (q Poly2D) Marshal() []byte {
	buf := make([]byte, 0, 2+8*len(q.Beta))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(q.P))
	for _, b := range q.Beta {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(b))
	}
	return buf
}

// Unmarshal parses NVM bytes into a polynomial.
func Unmarshal(data []byte) (Poly2D, error) {
	if len(data) < 2 {
		return Poly2D{}, fmt.Errorf("distiller: helper truncated")
	}
	p := int(binary.LittleEndian.Uint16(data))
	want := 2 + 8*NumTerms(p)
	if len(data) != want {
		return Poly2D{}, fmt.Errorf("distiller: helper length %d, want %d for degree %d", len(data), want, p)
	}
	q := NewPoly2D(p)
	for i := range q.Beta {
		q.Beta[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[2+8*i:]))
	}
	return q, nil
}
