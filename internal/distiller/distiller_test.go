package distiller

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/silicon"
)

func TestNumTerms(t *testing.T) {
	for p, want := range map[int]int{0: 1, 1: 3, 2: 6, 3: 10} {
		if NumTerms(p) != want {
			t.Errorf("NumTerms(%d) = %d, want %d", p, NumTerms(p), want)
		}
	}
}

func TestCoeffIndexing(t *testing.T) {
	q := NewPoly2D(3)
	v := 1.0
	for i := 0; i <= 3; i++ {
		for j := 0; j <= i; j++ {
			q.SetCoeff(i, j, v)
			if q.Coeff(i, j) != v {
				t.Fatalf("coeff (%d,%d) round trip", i, j)
			}
			v++
		}
	}
	// All 10 slots distinct.
	seen := make(map[float64]bool)
	for _, b := range q.Beta {
		if seen[b] {
			t.Fatal("coefficient slots collide")
		}
		seen[b] = true
	}
}

func TestCoeffPanicsOutsideTriangle(t *testing.T) {
	q := NewPoly2D(2)
	for _, ij := range [][2]int{{3, 0}, {1, 2}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("(%d,%d): expected panic", ij[0], ij[1])
				}
			}()
			q.Coeff(ij[0], ij[1])
		}()
	}
}

func TestEvalKnownPolynomial(t *testing.T) {
	// f(x,y) = 2 + 3x + 4y + 5x^2 + 6xy + 7y^2
	q := NewPoly2D(2)
	q.SetCoeff(0, 0, 2)
	q.SetCoeff(1, 0, 3)
	q.SetCoeff(1, 1, 4)
	q.SetCoeff(2, 0, 5)
	q.SetCoeff(2, 1, 6)
	q.SetCoeff(2, 2, 7)
	got := q.Eval(2, 3)
	want := 2 + 3*2 + 4*3 + 5*4 + 6*2*3 + 7*9
	if math.Abs(got-float64(want)) > 1e-12 {
		t.Fatalf("Eval = %v, want %v", got, want)
	}
}

func TestFitRecoversExactPolynomial(t *testing.T) {
	// Generate a frequency map from a known degree-2 polynomial with no
	// noise; the fit must recover the coefficients exactly.
	rows, cols := 8, 12
	truth := NewPoly2D(2)
	truth.SetCoeff(0, 0, 100)
	truth.SetCoeff(1, 0, 0.5)
	truth.SetCoeff(1, 1, -0.3)
	truth.SetCoeff(2, 0, 0.02)
	truth.SetCoeff(2, 1, 0.01)
	truth.SetCoeff(2, 2, -0.015)
	f := make([]float64, rows*cols)
	for idx := range f {
		f[idx] = truth.Eval(float64(idx%cols), float64(idx/cols))
	}
	fit, err := Fit(rows, cols, f, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth.Beta {
		if math.Abs(fit.Beta[i]-truth.Beta[i]) > 1e-6 {
			t.Fatalf("coefficient %d: %v, want %v", i, fit.Beta[i], truth.Beta[i])
		}
	}
	// Residuals must vanish.
	for _, r := range Distill(rows, cols, f, fit) {
		if math.Abs(r) > 1e-6 {
			t.Fatalf("nonzero residual %v", r)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(2, 2, make([]float64, 5), 1); err == nil {
		t.Fatal("sample-count mismatch must fail")
	}
	if _, err := Fit(1, 2, make([]float64, 2), 2); err == nil {
		t.Fatal("underdetermined fit must fail")
	}
	if _, err := Fit(2, 2, make([]float64, 4), -1); err == nil {
		t.Fatal("negative degree must fail")
	}
}

func TestDistillerRemovesSystematicVariation(t *testing.T) {
	// Experiment E2 in miniature: on a simulated array with a strong
	// systematic trend, the residual variance after distillation must be
	// close to the true random-component variance and far below the raw
	// variance.
	cfg := silicon.DefaultConfig(16, 32) // the paper's array size
	cfg.GradientXMHz = 8
	cfg.GradientYMHz = 4
	cfg.BowlMHz = 3
	a := silicon.NewArray(cfg, rng.New(7))
	f := a.MeasureAveraged(cfg.NominalEnv(), rng.New(8), 9)

	fit, err := Fit(cfg.Rows, cfg.Cols, f, 2)
	if err != nil {
		t.Fatal(err)
	}
	resid := Distill(cfg.Rows, cfg.Cols, f, fit)

	truthRandom := make([]float64, a.N())
	for i := range truthRandom {
		truthRandom[i] = a.RandomComponent(i)
	}
	rawVar := Variance(f)
	residVar := Variance(resid)
	randVar := Variance(truthRandom)

	if residVar >= rawVar*0.8 {
		t.Fatalf("distiller removed too little: raw %v, residual %v", rawVar, residVar)
	}
	if residVar > randVar*1.3 || residVar < randVar*0.7 {
		t.Fatalf("residual variance %v far from random-component variance %v", residVar, randVar)
	}
	// Residuals correlate with the true random component.
	var dot, na, nb float64
	for i := range resid {
		dot += resid[i] * truthRandom[i]
		na += resid[i] * resid[i]
		nb += truthRandom[i] * truthRandom[i]
	}
	if corr := dot / math.Sqrt(na*nb); corr < 0.9 {
		t.Fatalf("residual correlation with truth %v < 0.9", corr)
	}
}

func TestAddSuperimposes(t *testing.T) {
	fit := Plane(1, 2, 3)
	attack := QuadraticValleyX(4, 10)
	sum := fit.Add(attack)
	if sum.P != 2 {
		t.Fatalf("promoted degree %d", sum.P)
	}
	for _, pt := range [][2]float64{{0, 0}, {3, 1}, {9, 2}} {
		want := fit.Eval(pt[0], pt[1]) + attack.Eval(pt[0], pt[1])
		if got := sum.Eval(pt[0], pt[1]); math.Abs(got-want) > 1e-9 {
			t.Fatalf("Add at %v: %v, want %v", pt, got, want)
		}
	}
}

func TestQuadraticValleyProperties(t *testing.T) {
	q := QuadraticValleyX(4.5, 100)
	// Equidistant columns get equal values: the isolation mechanism.
	if math.Abs(q.Eval(4, 0)-q.Eval(5, 3)) > 1e-9 {
		t.Fatal("columns 4 and 5 (equidistant from 4.5) must tie")
	}
	if math.Abs(q.Eval(2, 1)-q.Eval(7, 2)) > 1e-9 {
		t.Fatal("columns 2 and 7 must tie")
	}
	// Strictly increasing away from the extremum.
	if !(q.Eval(6, 0) > q.Eval(5, 0)) || !(q.Eval(3, 0) > q.Eval(4, 0)) {
		t.Fatal("valley not increasing away from extremum")
	}
	// Constant in y.
	if q.Eval(3, 0) != q.Eval(3, 3) {
		t.Fatal("valley must not depend on y")
	}
	qy := QuadraticValleyY(1.5, 100)
	if math.Abs(qy.Eval(0, 1)-qy.Eval(5, 2)) > 1e-9 {
		t.Fatal("Y valley rows 1 and 2 must tie")
	}
}

func TestPerpendicularPlaneTies(t *testing.T) {
	f := func(x1, y1, x2, y2 uint8) bool {
		a := [2]int{int(x1 % 10), int(y1 % 10)}
		b := [2]int{int(x2 % 10), int(y2 % 10)}
		if a == b {
			return true // skip coincident
		}
		q := PerpendicularPlane(a[0], a[1], b[0], b[1], 50)
		return math.Abs(q.Eval(float64(a[0]), float64(a[1]))-q.Eval(float64(b[0]), float64(b[1]))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerpendicularPlanePanicsOnCoincident(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PerpendicularPlane(2, 2, 2, 2, 1)
}

func TestMarshalRoundTrip(t *testing.T) {
	q := QuadraticValleyX(3.25, -7.5)
	back, err := Unmarshal(q.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.P != q.P {
		t.Fatalf("degree %d", back.P)
	}
	for i := range q.Beta {
		if back.Beta[i] != q.Beta[i] {
			t.Fatalf("coefficient %d mismatch", i)
		}
	}
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil must fail")
	}
	if _, err := Unmarshal(q.Marshal()[:10]); err == nil {
		t.Fatal("truncated must fail")
	}
}

func TestVariance(t *testing.T) {
	if Variance(nil) != 0 {
		t.Fatal("empty variance")
	}
	if v := Variance([]float64{2, 2, 2}); v != 0 {
		t.Fatalf("constant variance %v", v)
	}
	if v := Variance([]float64{1, -1, 1, -1}); math.Abs(v-1) > 1e-12 {
		t.Fatalf("variance %v, want 1", v)
	}
}

func BenchmarkFit16x32Degree3(b *testing.B) {
	cfg := silicon.DefaultConfig(16, 32)
	a := silicon.NewArray(cfg, rng.New(1))
	f := a.MeasureAll(cfg.NominalEnv(), rng.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(16, 32, f, 3); err != nil {
			b.Fatal(err)
		}
	}
}
