package campaign

import (
	"sort"

	"repro/internal/stats"
)

// Partial is a mergeable streaming aggregate over a subset of a
// campaign's outcomes. It is the campaign-layer counterpart of
// stats.Welford: each metric gets a Welford accumulator plus the
// min/max and binary-success bookkeeping the batch aggregate tracks,
// and Wilson intervals are computed at read time (Aggregates), never
// stored — so partials combine associatively.
//
// Partials exist for streaming: the daemon folds each completed shard
// into one and serves the running aggregates over SSE, and the CLI's
// progress output reads the same numbers. They are deliberately NOT the
// source of a campaign's final aggregates — those are recomputed by
// Finalize over the full outcome list in task-index order, which is
// what makes sharded, resumed, and one-shot runs bit-identical.
//
// Partial is not safe for concurrent use; callers serialize access.
type Partial struct {
	done    int
	binary  map[string]bool
	metrics map[string]*metricPartial
}

// metricPartial accumulates one metric.
type metricPartial struct {
	W         stats.Welford `json:"w"`
	Min       float64       `json:"min"`
	Max       float64       `json:"max"`
	Successes int           `json:"successes"`
	// Binary starts as the task's declaration and is demoted for good
	// the first time a value outside {0, 1} is observed — mirroring the
	// batch aggregate's rule.
	Binary bool `json:"binary"`
}

// NewPartial returns an empty partial for a task whose declared binary
// metrics are `binary` (the Task.Binary list).
func NewPartial(binary []string) *Partial {
	p := &Partial{
		binary:  make(map[string]bool, len(binary)),
		metrics: make(map[string]*metricPartial),
	}
	for _, name := range binary {
		p.binary[name] = true
	}
	return p
}

// Done returns the number of outcomes observed (directly or via Merge).
func (p *Partial) Done() int { return p.done }

// Observe folds one completed outcome into the partial.
func (p *Partial) Observe(o Outcome) {
	p.done++
	for name, v := range o.Metrics {
		mp, ok := p.metrics[name]
		if !ok {
			mp = &metricPartial{Min: v, Max: v, Binary: p.binary[name]}
			p.metrics[name] = mp
		}
		mp.W.Add(v)
		if v < mp.Min {
			mp.Min = v
		}
		if v > mp.Max {
			mp.Max = v
		}
		switch v {
		case 0:
		case 1:
			mp.Successes++
		default:
			mp.Binary = false
		}
	}
}

// Merge folds another partial into p, as if every outcome observed by q
// had been observed by p. The two must come from the same task (same
// binary declarations); merging is associative and commutative up to
// floating-point rounding in the per-metric moments.
func (p *Partial) Merge(q *Partial) {
	if q == nil {
		return
	}
	p.done += q.done
	for name, qm := range q.metrics {
		mp, ok := p.metrics[name]
		if !ok {
			cp := *qm
			p.metrics[name] = &cp
			continue
		}
		mp.W.Merge(qm.W)
		if qm.Min < mp.Min {
			mp.Min = qm.Min
		}
		if qm.Max > mp.Max {
			mp.Max = qm.Max
		}
		mp.Successes += qm.Successes
		mp.Binary = mp.Binary && qm.Binary
	}
}

// Aggregates summarizes the observed outcomes in the same shape the
// batch aggregate produces, computing Wilson intervals at read time.
// Metric names are sorted, so the slice is a pure function of the
// observed multiset.
func (p *Partial) Aggregates() []Aggregate {
	names := make([]string, 0, len(p.metrics))
	for name := range p.metrics {
		names = append(names, name)
	}
	sort.Strings(names)

	aggs := make([]Aggregate, 0, len(names))
	for _, name := range names {
		mp := p.metrics[name]
		a := Aggregate{
			Metric: name,
			N:      mp.W.N(),
			Mean:   mp.W.Mean(),
			Stddev: mp.W.Stddev(),
			Min:    mp.Min,
			Max:    mp.Max,
			Binary: mp.Binary,
		}
		if a.Binary {
			a.Successes = mp.Successes
			a.WilsonLo, a.WilsonHi = stats.WilsonInterval(a.Successes, a.N, 0.95)
		}
		aggs = append(aggs, a)
	}
	return aggs
}
