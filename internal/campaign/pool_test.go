package campaign

import (
	"context"
	"sync"
	"testing"
)

func TestPoolGetCachesPerKey(t *testing.T) {
	p := NewPool()
	builds := 0
	build := func() any { builds++; return &builds }
	if p.Get("a", build) != p.Get("a", build) {
		t.Fatal("same key returned distinct values")
	}
	if builds != 1 {
		t.Fatalf("build ran %d times for one key", builds)
	}
	p.Get("b", build)
	if builds != 2 || p.Len() != 2 {
		t.Fatalf("distinct keys share a slot: builds=%d len=%d", builds, p.Len())
	}
	p.Drop("a")
	if p.Len() != 1 {
		t.Fatalf("Drop left %d entries", p.Len())
	}
	p.Get("a", build)
	if builds != 3 {
		t.Fatal("Drop did not force a rebuild")
	}
}

func TestNilPoolAlwaysBuilds(t *testing.T) {
	var p *Pool
	builds := 0
	build := func() any { builds++; return builds }
	p.Get("a", build)
	p.Get("a", build)
	if builds != 2 {
		t.Fatalf("nil pool cached: %d builds", builds)
	}
	p.Drop("a") // must not panic
	if p.Len() != 0 {
		t.Fatal("nil pool reports entries")
	}
}

func TestRunInstallsPerWorkerPools(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[*Pool]int)
	Register(Task{
		Name: "test-pool-observer",
		Desc: "records the pool each task instance receives",
		Run: func(_ context.Context, seed uint64, opt Options) (Metrics, error) {
			mu.Lock()
			seen[opt.Pool]++
			mu.Unlock()
			return Metrics{"ok": 1}, nil
		},
	})
	const workers, seeds = 3, 24
	if _, err := Run(context.Background(), Spec{Task: "test-pool-observer", Seeds: seeds, Workers: workers}); err != nil {
		t.Fatal(err)
	}
	if seen[nil] != 0 {
		t.Fatalf("%d task instances ran without a pool", seen[nil])
	}
	if len(seen) > workers {
		t.Fatalf("%d distinct pools for %d workers", len(seen), workers)
	}
	total := 0
	for _, n := range seen {
		total += n
	}
	if total != seeds {
		t.Fatalf("observed %d instances, want %d", total, seeds)
	}

	// A caller-supplied pool wins over the per-worker ones.
	seen = make(map[*Pool]int)
	own := NewPool()
	if _, err := Run(context.Background(), Spec{
		Task: "test-pool-observer", Seeds: 8, Workers: workers,
		Options: Options{Pool: own},
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[own] != 8 {
		t.Fatalf("caller-supplied pool not delivered to every instance: %v", seen)
	}
}
