// Package campaign is the repository's parallel experiment engine: it
// runs any registered experiment across a range of device seeds on a
// bounded pool of worker goroutines and aggregates the per-seed metrics
// into campaign statistics (mean, stddev, Wilson confidence intervals
// for binary outcomes).
//
// Determinism is the design constraint. Every task instance draws its
// randomness from a seed derived purely from (campaign base seed, task
// index) via rng.StreamSeed, and aggregation walks outcomes in task-index
// order — so a campaign's numbers are bit-identical whether it runs on
// one worker or sixty-four. That property is what lets the test suite
// assert -workers=1 and -workers=8 agree exactly, and what makes
// regenerated paper figures trustworthy regardless of the host.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"

	"repro/internal/rng"
	"repro/internal/stats"
)

// Metrics is one task execution's output: named scalar results (a
// recovery indicator, an oracle-query count, a variance, ...).
type Metrics map[string]float64

// Options carries cross-cutting execution options delivered to every
// task instance of a campaign. Tasks read the fields that apply to
// them and ignore the rest; the zero value always means the task's
// legacy default. The engine itself never interprets these — keeping
// it free of experiment-domain dependencies.
type Options struct {
	// Noise names the silicon measurement-noise model attack-backed
	// tasks should enroll their devices under ("stream" or "counter";
	// empty = the task default, stream).
	Noise string
	// Pool is the worker-confined reuse cache for expensive task state
	// (enrolled devices, attack scratch). Run installs one per worker
	// automatically; direct task.Run callers that execute tasks
	// sequentially (campaignd's shard loop) install their own. Nil is
	// always valid and means "build everything fresh". Never serialized:
	// it is engine plumbing, not campaign configuration.
	Pool *Pool `json:"-"`
}

// Task is one registered experiment entry point behind the uniform
// Spec → Result interface.
type Task struct {
	// Name is the campaign-unique task identifier (kebab-case).
	Name string
	// Desc is a one-line human description.
	Desc string
	// Figure names the paper table/figure the task reproduces ("" for
	// ablations and robustness checks).
	Figure string
	// Binary names the metrics that are success indicators (0/1 by
	// construction); only these get Wilson intervals. Value-sniffing is
	// deliberately not done: a count metric that happens to be all 0s
	// and 1s over a small campaign must not masquerade as a proportion.
	Binary []string
	// Run executes the experiment for one derived seed under the
	// campaign's options. The context is the campaign's: long tasks
	// that fan out internally should pass it down so cancellation
	// reaches them mid-task. Run must be safe to call concurrently from
	// multiple goroutines (all repository experiments are: their state
	// is rooted in per-call rng.Sources).
	Run func(ctx context.Context, seed uint64, opt Options) (Metrics, error)
}

// Spec selects a task and shapes one campaign over it.
type Spec struct {
	// Task is the registered task name.
	Task string
	// BaseSeed is the campaign base; task i runs with
	// rng.StreamSeed(BaseSeed, i).
	BaseSeed uint64
	// Seeds is the number of task instances (0 = 1).
	Seeds int
	// Workers bounds the goroutine pool (0 = GOMAXPROCS).
	Workers int
	// Options is handed to every task instance verbatim.
	Options Options
	// Progress, when non-nil, is invoked once per completed task
	// instance with the running totals and streaming partial
	// aggregates. Calls are serialized (never concurrent) but arrive in
	// completion order, not index order — the engine does not stall the
	// pool to sort them. Both the daemon's SSE stream and puf-campaign's
	// -v output hang off this one mechanism. The callback must not
	// block for long: it executes on a worker goroutine.
	Progress func(ProgressEvent) `json:"-"`
}

// ProgressEvent is one Spec.Progress notification.
type ProgressEvent struct {
	// Done and Total count completed vs requested task instances.
	Done, Total int
	// Outcome is the instance that just completed.
	Outcome Outcome
	// Aggregates are the streaming partial aggregates over every
	// outcome completed so far (Wilson intervals computed at read
	// time). They converge to — but mid-run need not bit-match — the
	// final index-ordered aggregates.
	Aggregates []Aggregate
}

// Outcome is one completed task instance.
type Outcome struct {
	Index   int     `json:"index"`
	Seed    uint64  `json:"seed"`
	Metrics Metrics `json:"metrics"`
}

// Aggregate is the campaign-level summary of one metric.
type Aggregate struct {
	Metric string  `json:"metric"`
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	// Binary marks 0/1-valued metrics (recovery indicators); for those
	// the Wilson 95% score interval of the success fraction is reported.
	Binary    bool    `json:"binary"`
	Successes int     `json:"successes,omitempty"`
	WilsonLo  float64 `json:"wilson_lo,omitempty"`
	WilsonHi  float64 `json:"wilson_hi,omitempty"`
}

// Result is a completed campaign.
type Result struct {
	Task       string      `json:"task"`
	BaseSeed   uint64      `json:"base_seed"`
	Seeds      int         `json:"seeds"`
	Workers    int         `json:"workers"`
	Outcomes   []Outcome   `json:"outcomes"`
	Aggregates []Aggregate `json:"aggregates"`
}

// ---------------------------------------------------------- registry --

var (
	regMu    sync.RWMutex
	registry = make(map[string]Task)
)

// Register adds a task to the global registry. It panics on an empty or
// duplicate name — both are programming errors caught at init time.
func Register(t Task) {
	if t.Name == "" || t.Run == nil {
		panic("campaign: Register with empty name or nil Run")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[t.Name]; dup {
		panic(fmt.Sprintf("campaign: duplicate task %q", t.Name))
	}
	registry[t.Name] = t
}

// Lookup resolves a registered task by name.
func Lookup(name string) (Task, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	t, ok := registry[name]
	return t, ok
}

// Tasks returns all registered tasks sorted by name.
func Tasks() []Task {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Task, 0, len(registry))
	for _, t := range registry {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// -------------------------------------------------------------- pool --

// PanicError is a panic recovered from a task or pool function,
// converted into an ordinary error so one berserk task instance fails
// its campaign cleanly instead of killing the process. The original
// panic value and the goroutine stack at recovery time ride along for
// diagnosis.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack (debug.Stack form).
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// Call invokes f, converting a panic into a *PanicError. It is the one
// recovery point of the engine: ForEach wraps every pool function with
// it, and campaignd wraps each shard attempt so a retried shard gets a
// fresh recovery scope per attempt.
func Call(f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return f()
}

// ErrDrained is returned by ForEachDrain when the drain signal stopped
// the feed before every index ran: the indices that were in flight
// completed normally, the rest were never started.
var ErrDrained = errors.New("campaign: drained before completion")

// ForEach runs fn(i) for every i in [0, n) on a pool of `workers`
// goroutines (0 or negative = GOMAXPROCS, capped at n). The first error
// cancels all pending work (fail-fast); in-flight tasks finish. A
// panicking fn is recovered into a *PanicError and treated as that
// index's failure — a berserk task cannot take down the pool. The
// returned error is the failure with the lowest index — deterministic
// even when several workers fail concurrently — or the parent context's
// error when the campaign was cancelled from outside.
//
// This is the primitive under Run; the experiments package also uses it
// directly to fan out multi-seed sweeps whose aggregation does not fit
// the Metrics shape.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	return ForEachDrain(ctx, nil, n, workers, fn)
}

// ForEachDrain is ForEach with a graceful-drain signal: when drain is
// closed, the feed loop stops handing out new indices while the
// in-flight fn calls run to completion under a live context — the
// behavior a SIGTERM'd daemon wants, finish what you started but take
// nothing new. If the drain left indices unstarted, the pool returns
// ErrDrained (after any real fn error, which still wins); if every
// index had already been fed, the run completes as if never drained. A
// nil drain channel makes ForEachDrain exactly ForEach.
func ForEachDrain(ctx context.Context, drain <-chan struct{}, n, workers int, fn func(ctx context.Context, i int) error) error {
	return forEachWorkers(ctx, drain, n, workers, func(ctx context.Context, _, i int) error {
		return fn(ctx, i)
	})
}

// forEachWorkers is the pool primitive under ForEachDrain: identical
// semantics, but fn additionally receives the stable index of the
// worker goroutine running it — the hook Run uses to hand each worker
// its own reuse Pool without sharing state across goroutines.
func forEachWorkers(ctx context.Context, drain <-chan struct{}, n, workers int, fn func(ctx context.Context, worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	poolCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan int)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				if poolCtx.Err() != nil {
					return
				}
				if err := Call(func() error { return fn(poolCtx, w, i) }); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}(w)
	}
	fed := 0
feed:
	for i := 0; i < n; i++ {
		// An already-closed drain must feed nothing more, even when a
		// worker is simultaneously ready to receive.
		select {
		case <-drain:
			break feed
		default:
		}
		select {
		case jobs <- i:
			fed++
		case <-poolCtx.Done():
			break feed
		case <-drain:
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("campaign: task %d: %w", i, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if fed < n {
		return ErrDrained
	}
	return nil
}

// --------------------------------------------------------------- run --

// Run executes one campaign: Seeds instances of the named task fan out
// over the worker pool, each on its order-independent derived seed, and
// the per-metric aggregates are computed in index order. The aggregate
// numbers are identical for any Workers value.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	task, ok := Lookup(spec.Task)
	if !ok {
		return nil, fmt.Errorf("campaign: unknown task %q (have %s)", spec.Task, taskNames())
	}
	normalize(&spec)

	var (
		progressMu sync.Mutex
		partial    *Partial
	)
	if spec.Progress != nil {
		partial = NewPartial(task.Binary)
	}

	// One reuse pool per worker goroutine (lazily built: the slice is
	// sized for the normalized worker count, forEachWorkers never runs
	// more). A caller-supplied Options.Pool wins — campaigns embedded in
	// a larger pooled context (a daemon shard loop) keep their own.
	pools := make([]*Pool, spec.Workers)
	outcomes := make([]Outcome, spec.Seeds)
	err := forEachWorkers(ctx, nil, spec.Seeds, spec.Workers, func(taskCtx context.Context, w, i int) error {
		opt := spec.Options
		if opt.Pool == nil {
			if pools[w] == nil {
				pools[w] = NewPool()
			}
			opt.Pool = pools[w]
		}
		seed := rng.StreamSeed(spec.BaseSeed, uint64(i))
		m, err := task.Run(taskCtx, seed, opt)
		if err != nil {
			return fmt.Errorf("%s seed %#x: %w", task.Name, seed, err)
		}
		o := Outcome{Index: i, Seed: seed, Metrics: m}
		outcomes[i] = o
		if spec.Progress != nil {
			progressMu.Lock()
			partial.Observe(o)
			ev := ProgressEvent{
				Done:       partial.Done(),
				Total:      spec.Seeds,
				Outcome:    o,
				Aggregates: partial.Aggregates(),
			}
			spec.Progress(ev)
			progressMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return Finalize(spec, outcomes)
}

// normalize applies the Spec defaults Run and Finalize share.
func normalize(spec *Spec) {
	if spec.Seeds <= 0 {
		spec.Seeds = 1
	}
	if spec.Workers <= 0 {
		spec.Workers = runtime.GOMAXPROCS(0)
	}
}

// Finalize assembles a completed campaign's Result from its full
// outcome list, exactly as Run would have: the per-metric aggregates
// are computed in task-index order with the batch aggregate, so a
// result finalized from sharded or checkpoint-restored outcomes is
// bit-identical to an uninterrupted Run of the same spec. Outcomes must
// be the complete list, indexed 0..len-1 (one per task instance, in
// index order); len(outcomes) must match the normalized spec.Seeds.
func Finalize(spec Spec, outcomes []Outcome) (*Result, error) {
	task, ok := Lookup(spec.Task)
	if !ok {
		return nil, fmt.Errorf("campaign: unknown task %q (have %s)", spec.Task, taskNames())
	}
	normalize(&spec)
	if len(outcomes) != spec.Seeds {
		return nil, fmt.Errorf("campaign: finalize %q with %d outcomes for %d seeds", spec.Task, len(outcomes), spec.Seeds)
	}
	for i, o := range outcomes {
		if o.Index != i {
			return nil, fmt.Errorf("campaign: finalize %q outcome %d carries index %d", spec.Task, i, o.Index)
		}
	}

	binary := make(map[string]bool, len(task.Binary))
	for _, name := range task.Binary {
		binary[name] = true
	}
	return &Result{
		Task:       task.Name,
		BaseSeed:   spec.BaseSeed,
		Seeds:      spec.Seeds,
		Workers:    spec.Workers,
		Outcomes:   outcomes,
		Aggregates: aggregate(outcomes, binary),
	}, nil
}

func taskNames() []string {
	ts := Tasks()
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name
	}
	return names
}

// aggregate summarizes each metric across outcomes. Metric names are
// sorted and values are visited in task-index order, so the result is a
// pure function of the outcome set. Metrics in the binary set get Wilson
// intervals — unless a value outside {0, 1} shows up, which demotes the
// metric rather than report a nonsensical proportion.
func aggregate(outcomes []Outcome, binary map[string]bool) []Aggregate {
	names := make(map[string]bool)
	for _, o := range outcomes {
		for k := range o.Metrics {
			names[k] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for k := range names {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	aggs := make([]Aggregate, 0, len(sorted))
	for _, name := range sorted {
		var vals []float64
		for _, o := range outcomes {
			if v, ok := o.Metrics[name]; ok {
				vals = append(vals, v)
			}
		}
		a := Aggregate{
			Metric: name,
			N:      len(vals),
			Mean:   stats.Mean(vals),
			Stddev: stats.Stddev(vals),
			Binary: binary[name],
		}
		a.Min, a.Max = vals[0], vals[0]
		for _, v := range vals {
			if v < a.Min {
				a.Min = v
			}
			if v > a.Max {
				a.Max = v
			}
			switch v {
			case 0:
			case 1:
				a.Successes++
			default:
				a.Binary = false
			}
		}
		if a.Binary {
			a.WilsonLo, a.WilsonHi = stats.WilsonInterval(a.Successes, a.N, 0.95)
		} else {
			a.Successes = 0
		}
		aggs = append(aggs, a)
	}
	return aggs
}

// Bool converts a success indicator to the 0/1 metric convention that
// triggers Wilson aggregation.
func Bool(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
