package campaign

// Pool is a per-worker reuse cache for expensive task state — enrolled
// devices, attack scratch — keyed by a task/config fingerprint chosen
// by the task. The engine gives every worker goroutine its own Pool for
// the duration of a campaign, so a 10^6-seed sweep re-derives
// manufacturing state once per worker instead of once per seed.
//
// Contract for pooled state: a task must produce bit-identical results
// whether its build function ran fresh or a previous task instance's
// state was adopted (the device layer's Enroll*Reuse functions are the
// canonical implementations), and the fingerprint key must cover every
// config axis the state depends on — a config change must change the
// key. Under that contract campaign results are byte-identical at any
// worker count, pooled or not, which the worker-invariance tests and
// transcript goldens enforce.
//
// A Pool is confined to one worker goroutine; it is not concurrency-
// safe and never shared.
type Pool struct {
	slots map[string]any
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{slots: make(map[string]any)} }

// Get returns the value cached under key, calling build and caching its
// result on a miss. Typical pooled values are pointers to holder
// structs the caller mutates in place across reuses. A nil receiver
// always builds and caches nothing — the unpooled path needs no
// branching at call sites.
func (p *Pool) Get(key string, build func() any) any {
	if p == nil {
		return build()
	}
	if v, ok := p.slots[key]; ok {
		return v
	}
	v := build()
	p.slots[key] = v
	return v
}

// Drop removes the value cached under key — for state that failed
// mid-reuse and must not be adopted again (a device left
// mid-remanufacture by an enrollment error).
func (p *Pool) Drop(key string) {
	if p != nil {
		delete(p.slots, key)
	}
}

// Len reports the number of cached entries (diagnostics and tests).
func (p *Pool) Len() int {
	if p == nil {
		return 0
	}
	return len(p.slots)
}
