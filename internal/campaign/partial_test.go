package campaign

import (
	"context"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func runWalk(t *testing.T, spec Spec) *Result {
	t.Helper()
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// aggregatesAlmostEqual compares streaming aggregates against batch
// ones: everything integer-exact must match exactly; the floating-point
// moments must agree to within rounding noise.
func aggregatesAlmostEqual(t *testing.T, streaming, batch []Aggregate) {
	t.Helper()
	if len(streaming) != len(batch) {
		t.Fatalf("aggregate count %d != %d", len(streaming), len(batch))
	}
	for i, s := range streaming {
		b := batch[i]
		if s.Metric != b.Metric || s.N != b.N || s.Binary != b.Binary ||
			s.Min != b.Min || s.Max != b.Max || s.Successes != b.Successes ||
			s.WilsonLo != b.WilsonLo || s.WilsonHi != b.WilsonHi {
			t.Fatalf("aggregate %q: streaming %+v != batch %+v", s.Metric, s, b)
		}
		if math.Abs(s.Mean-b.Mean) > 1e-9*math.Max(1, math.Abs(b.Mean)) {
			t.Fatalf("aggregate %q: mean %v != %v", s.Metric, s.Mean, b.Mean)
		}
		if math.Abs(s.Stddev-b.Stddev) > 1e-9*math.Max(1, b.Stddev) {
			t.Fatalf("aggregate %q: stddev %v != %v", s.Metric, s.Stddev, b.Stddev)
		}
	}
}

// A partial fed every outcome sequentially in index order must
// reproduce the batch aggregate exactly for everything except the
// second moment (Welford vs two-pass), which agrees to rounding noise.
// In particular Mean is bit-identical: both are sum/n over the same
// addition order.
func TestPartialSequentialMatchesBatchAggregate(t *testing.T) {
	res := runWalk(t, Spec{Task: "test-walk", BaseSeed: 99, Seeds: 48, Workers: 4})
	task, _ := Lookup("test-walk")

	p := NewPartial(task.Binary)
	for _, o := range res.Outcomes {
		p.Observe(o)
	}
	if p.Done() != len(res.Outcomes) {
		t.Fatalf("Done() = %d, want %d", p.Done(), len(res.Outcomes))
	}
	streaming := p.Aggregates()
	aggregatesAlmostEqual(t, streaming, res.Aggregates)
	for i, s := range streaming {
		if s.Mean != res.Aggregates[i].Mean {
			t.Fatalf("aggregate %q: sequential streaming mean %v not bit-identical to batch %v",
				s.Metric, s.Mean, res.Aggregates[i].Mean)
		}
	}
}

// Merging per-shard partials — at several shard sizes, including the
// daemon's out-of-order completion (simulated by merging shards in
// reverse) — must agree with the batch aggregate.
func TestPartialMergeMatchesBatchAggregate(t *testing.T) {
	res := runWalk(t, Spec{Task: "test-walk", BaseSeed: 4711, Seeds: 50, Workers: 4})
	task, _ := Lookup("test-walk")

	for _, shard := range []int{1, 3, 16, 50} {
		var parts []*Partial
		for lo := 0; lo < len(res.Outcomes); lo += shard {
			p := NewPartial(task.Binary)
			for _, o := range res.Outcomes[lo:min(lo+shard, len(res.Outcomes))] {
				p.Observe(o)
			}
			parts = append(parts, p)
		}
		// Merge in reverse completion order to model a racy pool.
		merged := NewPartial(task.Binary)
		for i := len(parts) - 1; i >= 0; i-- {
			merged.Merge(parts[i])
		}
		if merged.Done() != len(res.Outcomes) {
			t.Fatalf("shard=%d: Done() = %d", shard, merged.Done())
		}
		aggregatesAlmostEqual(t, merged.Aggregates(), res.Aggregates)
	}
}

// The binary demotion rule must survive merging: a metric declared
// binary but observed outside {0,1} in ONE shard is non-binary in the
// merged whole, even when other shards saw only {0,1}.
func TestPartialMergeDemotesBinary(t *testing.T) {
	clean := NewPartial([]string{"m"})
	clean.Observe(Outcome{Index: 0, Metrics: Metrics{"m": 1}})
	dirty := NewPartial([]string{"m"})
	dirty.Observe(Outcome{Index: 1, Metrics: Metrics{"m": 0.5}})

	for _, order := range [][]*Partial{{clean, dirty}, {dirty, clean}} {
		merged := NewPartial([]string{"m"})
		merged.Merge(order[0])
		merged.Merge(order[1])
		aggs := merged.Aggregates()
		if len(aggs) != 1 || aggs[0].Binary {
			t.Fatalf("demotion lost in merge: %+v", aggs)
		}
		if aggs[0].Successes != 0 {
			t.Fatalf("demoted metric kept successes: %+v", aggs[0])
		}
	}
}

// Spec.Progress must fire once per task instance, serialized, with
// monotonically increasing Done and partial aggregates that end exactly
// at the final streaming aggregate — at any worker count.
func TestRunProgressCallback(t *testing.T) {
	for _, workers := range []int{1, 8} {
		var (
			mu     sync.Mutex
			events []ProgressEvent
		)
		res := runWalk(t, Spec{
			Task: "test-walk", BaseSeed: 5, Seeds: 32, Workers: workers,
			Progress: func(ev ProgressEvent) {
				mu.Lock()
				events = append(events, ev)
				mu.Unlock()
			},
		})
		if len(events) != 32 {
			t.Fatalf("workers=%d: %d progress events, want 32", workers, len(events))
		}
		seen := make(map[int]bool)
		for i, ev := range events {
			if ev.Done != i+1 || ev.Total != 32 {
				t.Fatalf("workers=%d: event %d has Done=%d Total=%d", workers, i, ev.Done, ev.Total)
			}
			if seen[ev.Outcome.Index] {
				t.Fatalf("workers=%d: outcome %d delivered twice", workers, ev.Outcome.Index)
			}
			seen[ev.Outcome.Index] = true
		}
		// The last event's streaming aggregates cover every outcome.
		aggregatesAlmostEqual(t, events[len(events)-1].Aggregates, res.Aggregates)
	}
}

// Finalize over the outcome list of a Run must reproduce the Run's
// Result byte for byte — the identity that lets the daemon rebuild a
// one-shot-identical result from checkpointed shards.
func TestFinalizeReproducesRun(t *testing.T) {
	spec := Spec{Task: "test-walk", BaseSeed: 2024, Seeds: 40, Workers: 4}
	res := runWalk(t, spec)
	re, err := Finalize(spec, res.Outcomes)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(res)
	got, _ := json.Marshal(re)
	if string(got) != string(want) {
		t.Fatalf("Finalize result differs from Run:\n%s\nvs\n%s", got, want)
	}
}

func TestFinalizeRejectsBadOutcomeLists(t *testing.T) {
	spec := Spec{Task: "test-walk", BaseSeed: 1, Seeds: 4}
	res := runWalk(t, Spec{Task: "test-walk", BaseSeed: 1, Seeds: 4})

	if _, err := Finalize(spec, res.Outcomes[:3]); err == nil {
		t.Fatal("expected error for truncated outcome list")
	}
	swapped := make([]Outcome, len(res.Outcomes))
	copy(swapped, res.Outcomes)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if _, err := Finalize(spec, swapped); err == nil {
		t.Fatal("expected error for out-of-order outcome list")
	}
	if _, err := Finalize(Spec{Task: "no-such-task"}, nil); err == nil {
		t.Fatal("expected unknown-task error")
	}
}
