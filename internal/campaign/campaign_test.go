package campaign

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rng"
)

func init() {
	// A deterministic CPU-ish task: a short random walk whose outcome
	// depends on every draw, so any seed or ordering slip shows up.
	Register(Task{
		Name:   "test-walk",
		Desc:   "deterministic random walk (test fixture)",
		Binary: []string{"recovered"},
		Run: func(_ context.Context, seed uint64, _ Options) (Metrics, error) {
			src := rng.New(seed)
			var sum float64
			for i := 0; i < 1000; i++ {
				sum += src.Norm()
			}
			return Metrics{
				"walk-sum":  sum,
				"recovered": Bool(sum > 0),
				// All-zero count metric: must NOT be aggregated as a
				// proportion despite every value being in {0, 1},
				// because it is not declared in Binary.
				"zero-count": 0,
			}, nil
		},
	})
	Register(Task{
		Name: "test-fail-on-odd-seed",
		Desc: "fails for odd derived seeds (test fixture)",
		Run: func(_ context.Context, seed uint64, _ Options) (Metrics, error) {
			if seed%2 == 1 {
				return nil, fmt.Errorf("odd seed %#x", seed)
			}
			return Metrics{"ok": 1}, nil
		},
	})
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) *Result {
		res, err := Run(context.Background(), Spec{
			Task: "test-walk", BaseSeed: 1234, Seeds: 32, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial.Outcomes, parallel.Outcomes) {
		t.Fatal("per-seed outcomes differ between 1 and 8 workers")
	}
	if !reflect.DeepEqual(serial.Aggregates, parallel.Aggregates) {
		t.Fatalf("aggregates differ:\n1 worker: %+v\n8 workers: %+v",
			serial.Aggregates, parallel.Aggregates)
	}
	// The declared binary metric must carry a Wilson interval; the
	// real-valued metric and the undeclared 0-valued count must not.
	for _, a := range serial.Aggregates {
		switch a.Metric {
		case "recovered":
			if !a.Binary || a.WilsonLo >= a.WilsonHi {
				t.Fatalf("recovered aggregate not Wilson-summarized: %+v", a)
			}
		case "walk-sum", "zero-count":
			if a.Binary {
				t.Fatalf("%s misclassified as binary: %+v", a.Metric, a)
			}
		}
	}
}

func TestRunErrorPropagatesAndFailsFast(t *testing.T) {
	_, err := Run(context.Background(), Spec{
		Task: "test-fail-on-odd-seed", BaseSeed: 7, Seeds: 64, Workers: 4,
	})
	if err == nil {
		t.Fatal("expected an error from the failing task")
	}
	if !strings.Contains(err.Error(), "odd seed") {
		t.Fatalf("error lost the task's cause: %v", err)
	}
	if !strings.Contains(err.Error(), "test-fail-on-odd-seed") {
		t.Fatalf("error lost the task name: %v", err)
	}
}

func TestRunUnknownTask(t *testing.T) {
	if _, err := Run(context.Background(), Spec{Task: "no-such-task"}); err == nil {
		t.Fatal("expected unknown-task error")
	}
}

func TestForEachCancellationMidCampaign(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- ForEach(ctx, 1000, 2, func(ctx context.Context, i int) error {
			started.Add(1)
			select {
			case <-release:
			case <-ctx.Done():
			}
			return nil
		})
	}()
	// Let a couple of tasks start, then cancel the campaign.
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ForEach did not return after cancellation")
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop the feed: %d tasks started", n)
	}
}

func TestForEachFailFastSkipsPendingWork(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(context.Background(), 10000, 2, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 3 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "task 3") {
		t.Fatalf("error does not name the failing index: %v", err)
	}
	if n := ran.Load(); n >= 10000 {
		t.Fatalf("fail-fast did not cancel pending work: %d tasks ran", n)
	}
}

func TestForEachCompletesAllWithoutError(t *testing.T) {
	var ran atomic.Int64
	if err := ForEach(context.Background(), 257, 8, func(_ context.Context, i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 257 {
		t.Fatalf("ran %d of 257 tasks", ran.Load())
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	Register(Task{Name: "test-walk", Run: func(context.Context, uint64, Options) (Metrics, error) { return nil, nil }})
}

// A panicking task must fail its campaign as an ordinary error carrying
// the panic value and stack — never crash the process. This is the
// proof behind the daemon's panic-isolation guarantee: campaignd's
// worker pool and campaign.Run both funnel through the same recovery
// scope (Call).
func TestPanickingTaskFailsCampaignCleanly(t *testing.T) {
	Register(Task{
		Name: "test-panic-on-third",
		Desc: "panics on every third index (test fixture)",
		Run: func(_ context.Context, seed uint64, _ Options) (Metrics, error) {
			if seed%3 == 0 {
				panic(fmt.Sprintf("berserk task, seed %#x", seed))
			}
			return Metrics{"ok": 1}, nil
		},
	})
	_, err := Run(context.Background(), Spec{Task: "test-panic-on-third", BaseSeed: 5, Seeds: 40, Workers: 4})
	if err == nil {
		t.Fatal("campaign with panicking task reported success")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a PanicError: %v", err)
	}
	if !strings.Contains(fmt.Sprint(pe.Value), "berserk task") {
		t.Fatalf("panic value lost: %v", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(err.Error(), "goroutine") {
		t.Fatal("panic stack not captured")
	}
}

// Call converts panics to errors and passes ordinary returns through.
func TestCallRecoversPanics(t *testing.T) {
	if err := Call(func() error { return nil }); err != nil {
		t.Fatalf("clean call returned %v", err)
	}
	sentinel := errors.New("boom")
	if err := Call(func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("error not passed through: %v", err)
	}
	err := Call(func() error { panic("kaboom") })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "kaboom" {
		t.Fatalf("panic not converted: %v", err)
	}
}

// ForEachDrain: a drain signal stops the feed, lets in-flight indices
// finish, and reports ErrDrained when indices never started; a drain
// that arrives after the last index was fed changes nothing.
func TestForEachDrainStopsFeedingButFinishesInFlight(t *testing.T) {
	drain := make(chan struct{})
	started := make(chan int)
	release := make(chan struct{})
	var completed atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- ForEachDrain(context.Background(), drain, 16, 2, func(ctx context.Context, i int) error {
			started <- i
			<-release
			completed.Add(1)
			return nil
		})
	}()
	// Two indices in flight; drain, then let them finish.
	<-started
	<-started
	close(drain)
	close(release)
	err := <-done
	if !errors.Is(err, ErrDrained) {
		t.Fatalf("err = %v, want ErrDrained", err)
	}
	if got := completed.Load(); got != 2 {
		t.Fatalf("completed %d in-flight indices, want 2", got)
	}

	// Already-closed drain: nothing runs at all.
	var ran atomic.Int64
	err = ForEachDrain(context.Background(), drain, 8, 4, func(ctx context.Context, i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, ErrDrained) || ran.Load() != 0 {
		t.Fatalf("pre-drained pool: err=%v ran=%d", err, ran.Load())
	}

	// Nil drain is plain ForEach: everything runs, no error.
	var all atomic.Int64
	if err := ForEachDrain(context.Background(), nil, 8, 4, func(ctx context.Context, i int) error {
		all.Add(1)
		return nil
	}); err != nil || all.Load() != 8 {
		t.Fatalf("nil drain: err=%v ran=%d", err, all.Load())
	}
}
