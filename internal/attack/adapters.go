package attack

import (
	"repro/internal/bitvec"
	"repro/internal/device"
	"repro/internal/helperdata"
)

// In-process adapters presenting the simulated devices of
// internal/device as Targets. Each adapter translates between the
// device's typed helper structs and the sectioned NVM image, inverts
// App() into the failure convention (Query true = failure), and forks
// by cloning the device onto an independent noise stream.

// NewSeqPairTarget adapts a deployed LISA device.
func NewSeqPairTarget(d *device.SeqPairDevice) Target { return &seqPairTarget{d} }

type seqPairTarget struct{ d *device.SeqPairDevice }

func (t *seqPairTarget) Spec() Spec {
	return Spec{
		Construction: "seqpair",
		Code:         t.d.Code(),
		AmbientC:     t.d.Environment().TempC,
	}
}

func (t *seqPairTarget) ReadImage() (*helperdata.Image, error) {
	h := t.d.ReadHelper()
	return SeqPairImage(h.Pairs, h.Offset)
}

func (t *seqPairTarget) WriteImage(im *helperdata.Image) error {
	pairs, offset, err := SeqPairFromImage(im)
	if err != nil {
		return err
	}
	return t.d.WriteHelper(device.SeqPairHelperNVM{Pairs: pairs, Offset: offset})
}

func (t *seqPairTarget) Query() bool  { return !t.d.App() }
func (t *seqPairTarget) Queries() int { return t.d.Queries() }

func (t *seqPairTarget) Fork(seed uint64) (Target, error) {
	return NewSeqPairTarget(t.d.Fork(seed)), nil
}

// NewTempCoTarget adapts a deployed temperature-aware cooperative device.
func NewTempCoTarget(d *device.TempCoDevice) Target { return &tempCoTarget{d} }

type tempCoTarget struct{ d *device.TempCoDevice }

func (t *tempCoTarget) Spec() Spec {
	return Spec{
		Construction: "tempco",
		Code:         t.d.Params().Code,
		AmbientC:     t.d.Environment().TempC,
	}
}

func (t *tempCoTarget) ReadImage() (*helperdata.Image, error) {
	return TempCoImage(t.d.ReadHelper())
}

func (t *tempCoTarget) WriteImage(im *helperdata.Image) error {
	h, err := TempCoFromImage(im)
	if err != nil {
		return err
	}
	return t.d.WriteHelper(h)
}

func (t *tempCoTarget) Query() bool  { return !t.d.App() }
func (t *tempCoTarget) Queries() int { return t.d.Queries() }

func (t *tempCoTarget) Fork(seed uint64) (Target, error) {
	return NewTempCoTarget(t.d.Fork(seed)), nil
}

// NewGroupBasedTarget adapts a deployed group-based device (the
// reprogrammed-key observable: it also implements KeyBinder).
func NewGroupBasedTarget(d *device.GroupBasedDevice) Target { return &groupBasedTarget{d} }

type groupBasedTarget struct{ d *device.GroupBasedDevice }

func (t *groupBasedTarget) Spec() Spec {
	p := t.d.Params()
	return Spec{
		Construction: "groupbased",
		Rows:         p.Rows,
		Cols:         p.Cols,
		Code:         p.Code,
		AmbientC:     t.d.Environment().TempC,
	}
}

func (t *groupBasedTarget) ReadImage() (*helperdata.Image, error) {
	return GroupBasedImage(t.d.ReadHelper())
}

func (t *groupBasedTarget) WriteImage(im *helperdata.Image) error {
	h, err := GroupBasedFromImage(im)
	if err != nil {
		return err
	}
	return t.d.WriteHelper(h)
}

func (t *groupBasedTarget) Query() bool               { return !t.d.App() }
func (t *groupBasedTarget) Queries() int              { return t.d.Queries() }
func (t *groupBasedTarget) BindKey(key bitvec.Vector) { t.d.BindKey(key) }

func (t *groupBasedTarget) Fork(seed uint64) (Target, error) {
	return NewGroupBasedTarget(t.d.Fork(seed)), nil
}

// NewDistillerTarget adapts a deployed distiller + pairing device
// (reprogrammed-key observable; the Spec construction is "masking" or
// "chain" according to the device's pairing mode).
func NewDistillerTarget(d *device.DistillerPairDevice) Target { return &distillerTarget{d} }

type distillerTarget struct{ d *device.DistillerPairDevice }

func (t *distillerTarget) Spec() Spec {
	p := t.d.Params()
	construction := "masking"
	if p.Mode == device.OverlappingChain {
		construction = "chain"
	}
	return Spec{
		Construction: construction,
		Rows:         p.Rows,
		Cols:         p.Cols,
		Code:         p.Code,
		AmbientC:     t.d.Environment().TempC,
	}
}

func (t *distillerTarget) ReadImage() (*helperdata.Image, error) {
	h := t.d.ReadHelper()
	if t.d.Params().Mode == device.MaskedChain {
		return DistillerImage(h.Poly, &h.Masking, h.Offset)
	}
	return DistillerImage(h.Poly, nil, h.Offset)
}

func (t *distillerTarget) WriteImage(im *helperdata.Image) error {
	poly, mask, offset, err := DistillerFromImage(im)
	if err != nil {
		return err
	}
	nvm := device.DistillerPairHelperNVM{Poly: poly, Offset: offset}
	if mask != nil {
		nvm.Masking = *mask
	}
	return t.d.WriteHelper(nvm)
}

func (t *distillerTarget) Query() bool               { return !t.d.App() }
func (t *distillerTarget) Queries() int              { return t.d.Queries() }
func (t *distillerTarget) BindKey(key bitvec.Vector) { t.d.BindKey(key) }

func (t *distillerTarget) Fork(seed uint64) (Target, error) {
	return NewDistillerTarget(t.d.Fork(seed)), nil
}
