package attack

import (
	"repro/internal/bitvec"
	"repro/internal/device"
	"repro/internal/groupbased"
	"repro/internal/helperdata"
	"repro/internal/tempco"
)

// In-process adapters presenting the simulated devices of
// internal/device as Targets. Each adapter translates between the
// device's typed helper structs and the sectioned NVM image, inverts
// App() into the failure convention (Query true = failure), and forks
// by cloning the device onto an independent noise stream.
//
// Two fast paths keep the adapters off the oracle-query hot loop's
// allocation profile:
//
//   - ReadImage marshals straight from the device's read-only helper
//     view (HelperView) instead of deep-copying the whole NVM first and
//     discarding the copy after serialization.
//
//   - WriteImage remembers the identity of the last image it installed
//     together with the device's NVM generation. Re-installing the SAME
//     image onto unchanged NVM — what the distinguisher does before
//     every query of an arm's run — skips the parse/validate/clone
//     pipeline. The skip is observable-equivalent: devices with a
//     re-provision side effect (reprogrammed-key observables) still run
//     it via ReprovisionKey, so key bindings and the measurement-noise
//     stream are consumed bit-identically to a full write.

// writeCache is the shared memoization state of an adapter's WriteImage.
type writeCache struct {
	im  *helperdata.Image
	gen uint64
}

// parseCache memoizes image → parsed-helper translations by image
// identity, bounded to the handful of arm images a hypothesis test
// alternates between. Images must be treated as immutable once written
// (the contract all attacks in this package follow).
type parseCache[T any] struct {
	m map[*helperdata.Image]T
}

func (c *parseCache[T]) get(im *helperdata.Image) (T, bool) {
	v, ok := c.m[im]
	return v, ok
}

func (c *parseCache[T]) put(im *helperdata.Image, v T) {
	if c.m == nil {
		c.m = make(map[*helperdata.Image]T, 8)
	} else if len(c.m) >= 16 {
		clear(c.m)
	}
	c.m[im] = v
}

// installImage is the one write-cache protocol all four adapters share:
// an identical re-install is skipped (running only the device's
// re-provision side effect, when it has one), otherwise the image is
// parsed (through the bounded parse cache), written to the device, and
// recorded. The func parameters are only invoked, never stored, so the
// closures stay off the heap on the per-query hit path.
func installImage[T any](cache *writeCache, parsed *parseCache[T], im *helperdata.Image,
	gen func() uint64, parse func(*helperdata.Image) (T, error), write func(T) error,
	reprovision func()) error {
	if cache.hit(im, gen()) {
		if reprovision != nil {
			reprovision()
		}
		return nil
	}
	cache.clear()
	nvm, ok := parsed.get(im)
	if !ok {
		var err error
		if nvm, err = parse(im); err != nil {
			return err
		}
		parsed.put(im, nvm)
	}
	if err := write(nvm); err != nil {
		return err
	}
	cache.store(im, gen())
	return nil
}

// hit reports whether installing im would re-write identical helper
// content: same image identity, and the device NVM untouched since.
func (c *writeCache) hit(im *helperdata.Image, gen uint64) bool {
	return c.im != nil && c.im == im && c.gen == gen
}

// store records a successful install.
func (c *writeCache) store(im *helperdata.Image, gen uint64) {
	c.im, c.gen = im, gen
}

func (c *writeCache) clear() { c.im = nil }

// NewSeqPairTarget adapts a deployed LISA device.
func NewSeqPairTarget(d *device.SeqPairDevice) Target { return &seqPairTarget{d: d} }

type seqPairTarget struct {
	d      *device.SeqPairDevice
	cache  writeCache
	parsed parseCache[device.SeqPairHelperNVM]
}

func (t *seqPairTarget) Spec() Spec {
	return Spec{
		Construction: "seqpair",
		Code:         t.d.Code(),
		AmbientC:     t.d.Environment().TempC,
		Noise:        t.d.NoiseModel().String(),
	}
}

func (t *seqPairTarget) ReadImage() (*helperdata.Image, error) {
	h := t.d.HelperView()
	return SeqPairImage(h.Pairs, h.Offset)
}

func (t *seqPairTarget) WriteImage(im *helperdata.Image) error {
	return installImage(&t.cache, &t.parsed, im, t.d.NVMGeneration,
		func(im *helperdata.Image) (device.SeqPairHelperNVM, error) {
			pairs, offset, err := SeqPairFromImage(im)
			return device.SeqPairHelperNVM{Pairs: pairs, Offset: offset}, err
		},
		t.d.WriteHelper, nil)
}

func (t *seqPairTarget) Query() bool  { return !t.d.App() }
func (t *seqPairTarget) Queries() int { return t.d.Queries() }

func (t *seqPairTarget) Fork(seed uint64) (Target, error) {
	return NewSeqPairTarget(t.d.Fork(seed)), nil
}

// NewTempCoTarget adapts a deployed temperature-aware cooperative device.
func NewTempCoTarget(d *device.TempCoDevice) Target { return &tempCoTarget{d: d} }

type tempCoTarget struct {
	d      *device.TempCoDevice
	cache  writeCache
	parsed parseCache[tempco.Helper]
}

func (t *tempCoTarget) Spec() Spec {
	return Spec{
		Construction: "tempco",
		Code:         t.d.Params().Code,
		AmbientC:     t.d.Environment().TempC,
		Noise:        t.d.NoiseModel().String(),
	}
}

func (t *tempCoTarget) ReadImage() (*helperdata.Image, error) {
	return TempCoImage(t.d.HelperView())
}

func (t *tempCoTarget) WriteImage(im *helperdata.Image) error {
	return installImage(&t.cache, &t.parsed, im, t.d.NVMGeneration,
		TempCoFromImage, t.d.WriteHelper, nil)
}

func (t *tempCoTarget) Query() bool  { return !t.d.App() }
func (t *tempCoTarget) Queries() int { return t.d.Queries() }

func (t *tempCoTarget) Fork(seed uint64) (Target, error) {
	return NewTempCoTarget(t.d.Fork(seed)), nil
}

// NewGroupBasedTarget adapts a deployed group-based device (the
// reprogrammed-key observable: it also implements KeyBinder).
func NewGroupBasedTarget(d *device.GroupBasedDevice) Target { return &groupBasedTarget{d: d} }

type groupBasedTarget struct {
	d      *device.GroupBasedDevice
	cache  writeCache
	parsed parseCache[groupbased.Helper]
}

func (t *groupBasedTarget) Spec() Spec {
	p := t.d.Params()
	return Spec{
		Construction: "groupbased",
		Rows:         p.Rows,
		Cols:         p.Cols,
		Code:         p.Code,
		AmbientC:     t.d.Environment().TempC,
		Noise:        t.d.NoiseModel().String(),
	}
}

func (t *groupBasedTarget) ReadImage() (*helperdata.Image, error) {
	return GroupBasedImage(t.d.HelperView())
}

func (t *groupBasedTarget) WriteImage(im *helperdata.Image) error {
	// The re-provision hook keeps a skipped identical write's observable
	// side effects: key re-binding plus one reconstruction's noise draws.
	return installImage(&t.cache, &t.parsed, im, t.d.NVMGeneration,
		GroupBasedFromImage, t.d.WriteHelper, t.d.ReprovisionKey)
}

func (t *groupBasedTarget) Query() bool               { return !t.d.App() }
func (t *groupBasedTarget) Queries() int              { return t.d.Queries() }
func (t *groupBasedTarget) BindKey(key bitvec.Vector) { t.d.BindKey(key) }

func (t *groupBasedTarget) Fork(seed uint64) (Target, error) {
	return NewGroupBasedTarget(t.d.Fork(seed)), nil
}

// NewDistillerTarget adapts a deployed distiller + pairing device
// (reprogrammed-key observable; the Spec construction is "masking" or
// "chain" according to the device's pairing mode).
func NewDistillerTarget(d *device.DistillerPairDevice) Target { return &distillerTarget{d: d} }

type distillerTarget struct {
	d      *device.DistillerPairDevice
	cache  writeCache
	parsed parseCache[device.DistillerPairHelperNVM]
}

func (t *distillerTarget) Spec() Spec {
	p := t.d.Params()
	construction := "masking"
	if p.Mode == device.OverlappingChain {
		construction = "chain"
	}
	return Spec{
		Construction: construction,
		Rows:         p.Rows,
		Cols:         p.Cols,
		Code:         p.Code,
		AmbientC:     t.d.Environment().TempC,
		Noise:        t.d.NoiseModel().String(),
	}
}

func (t *distillerTarget) ReadImage() (*helperdata.Image, error) {
	h := t.d.HelperView()
	if t.d.Params().Mode == device.MaskedChain {
		return DistillerImage(h.Poly, &h.Masking, h.Offset)
	}
	return DistillerImage(h.Poly, nil, h.Offset)
}

func (t *distillerTarget) WriteImage(im *helperdata.Image) error {
	return installImage(&t.cache, &t.parsed, im, t.d.NVMGeneration,
		func(im *helperdata.Image) (device.DistillerPairHelperNVM, error) {
			poly, mask, offset, err := DistillerFromImage(im)
			nvm := device.DistillerPairHelperNVM{Poly: poly, Offset: offset}
			if mask != nil {
				nvm.Masking = *mask
			}
			return nvm, err
		},
		t.d.WriteHelper, t.d.ReprovisionKey)
}

func (t *distillerTarget) Query() bool               { return !t.d.App() }
func (t *distillerTarget) Queries() int              { return t.d.Queries() }
func (t *distillerTarget) BindKey(key bitvec.Vector) { t.d.BindKey(key) }

func (t *distillerTarget) Fork(seed uint64) (Target, error) {
	return NewDistillerTarget(t.d.Fork(seed)), nil
}
