package attack

import (
	"context"
	"fmt"
	"math"
	"slices"

	"repro/internal/bitvec"
	"repro/internal/distiller"
	"repro/internal/ecc"
	"repro/internal/helperdata"
	"repro/internal/pairing"
	"repro/internal/rng"
)

// dsScratch carries the reusable buffers of one masking or chain Run:
// hypothesis streams, padded/injected codewords, the crafted offset, a
// cached block code + ECC workspace, and pooled per-arm offset blobs and
// predicted keys (arms of one decision are alive simultaneously, so the
// pools are indexed by arm). As in gbScratch, images are always fresh —
// the adapters' caches key on image identity — while blobs may be pooled
// because an arm's image is never re-installed after its decision.
type dsScratch struct {
	stream    bitvec.Vector
	injected  bitvec.Vector
	padded    bitvec.Vector
	msg       bitvec.Vector
	offsetW   bitvec.Vector
	needBlk   []bool
	selected  []int
	predicted []bool
	polyBeta  []float64
	offBlob   [][]byte
	predKey   []bitvec.Vector
	blocks    int
	block     *ecc.Block
	ws        ecc.Workspace
	// chain-only buffers.
	unknownIdx []int
	determined []bool
	arms       []Hypothesis
}

// armSlot grows the per-arm pools to cover arm index i.
func (sc *dsScratch) armSlot(i int) {
	for len(sc.offBlob) <= i {
		sc.offBlob = append(sc.offBlob, nil)
		sc.predKey = append(sc.predKey, bitvec.Vector{})
	}
}

func init() {
	Register(maskingAttack{})
	Register(chainAttack{})
}

// distillerDefaults fills the §VI-D tuning defaults.
func distillerDefaults(opts Options, t int) Options {
	if opts.PatternAmpMHz <= 0 {
		opts.PatternAmpMHz = 500
	}
	if opts.TiltMHz <= 0 {
		opts.TiltMHz = 80
	}
	if opts.InjectErrors <= 0 || opts.InjectErrors > t {
		opts.InjectErrors = t
	}
	return opts
}

// MaskingDetails is the masking attack's Report payload.
type MaskingDetails struct {
	// BaseBits[i] is the recovered residual-sign bit of base pair i
	// (true = pair.A's distilled residual exceeds pair.B's... i.e. the
	// response bit the pair would produce).
	BaseBits []bool
}

// maskingAttack is the paper's Fig. 6b attack against an entropy
// distiller composed with 1-out-of-k masking over a disjoint neighbor
// chain. Every base pair is isolated in turn: a quadratic valley
// centered between the pair's two oscillators ties their pattern values
// while a small orthogonal tilt pins every other selected pair; the
// attacker rewrites the masking helper to select pattern-determined
// pairs elsewhere, recomputes the ECC offset for both hypotheses about
// the target bit, and compares failure rates. Recovering all base-pair
// bits reveals the original key through the public masking selections.
type maskingAttack struct{}

func (maskingAttack) Name() string { return "masking" }
func (maskingAttack) Description() string {
	return "Fig. 6b distiller + 1-out-of-k masking full key recovery"
}

func (a maskingAttack) Run(ctx context.Context, t Target, opts Options) (Report, error) {
	spec := t.Spec()
	if spec.Construction != a.Name() {
		return Report{}, fmt.Errorf("attack: target construction %q, want masked chain", spec.Construction)
	}
	if spec.Rows <= 0 || spec.Cols <= 0 {
		return Report{}, fmt.Errorf("attack: masking needs array geometry in the spec, got %dx%d", spec.Rows, spec.Cols)
	}
	if !binderFor(t) {
		return Report{}, fmt.Errorf("attack: masking needs a reprogrammed-key target (KeyBinder)")
	}
	originalImage, err := t.ReadImage()
	if err != nil {
		return Report{}, err
	}
	origPoly, origMask, origOffset, err := DistillerFromImage(originalImage)
	if err != nil {
		return Report{}, err
	}
	if origMask == nil {
		return Report{}, fmt.Errorf("attack: helper image carries no masking section")
	}
	defer func() { _ = t.WriteImage(originalImage) }()

	opts = distillerDefaults(opts, spec.Code.T())
	src := opts.source(0xd15711)
	budget := NewBudget(opts.QueryBudget)
	startQueries := t.Queries()
	tr := newTracer(a.Name(), t, opts)

	tr.phase("bits")
	base := pairing.ChainPairs(spec.Rows, spec.Cols, true)
	groups := len(origMask.Selected)
	usable := groups * origMask.K
	// The image is untrusted input: its masking shape must agree with
	// the spec's architecture-derived chain or indexing below would be
	// out of bounds.
	if origMask.K < 1 || usable > len(base) {
		return Report{}, fmt.Errorf("attack: masking helper covers %d base pairs (k=%d), chain has %d",
			usable, origMask.K, len(base))
	}
	bits := make([]bool, len(base))
	var sc dsScratch
	for target := 0; target < usable; target++ {
		bit, err := decideMaskedPairBit(ctx, t, spec, origPoly, origMask.K, base, opts, src, budget, &sc, target)
		if err != nil {
			return Report{}, fmt.Errorf("attack: base pair %d: %w", target, err)
		}
		bits[target] = bit
		tr.step("bits", target+1, usable)
	}

	// The original key: bits of the originally selected pairs, polished
	// offline against the original ECC offset (which binds the enrolled
	// key) to repair noise-marginal decisions.
	tr.phase("assemble")
	key := bitvec.New(groups)
	for g, sel := range origMask.Selected {
		key.Set(g, bits[g*origMask.K+sel])
	}
	key = polishWithOriginalOffset(key, origOffset, spec.Code)

	rep := tr.report(startQueries)
	rep.Key = key
	rep.Details = MaskingDetails{BaseBits: bits}
	return rep, nil
}

// decideMaskedPairBit isolates one base pair and recovers its residual
// sign bit. The pattern superimposes onto the ORIGINAL enrollment
// polynomial (not whatever a previous arm left in NVM).
func decideMaskedPairBit(ctx context.Context, t Target, spec Spec, origPoly distiller.Poly2D, k int, base []pairing.Pair, opts Options, src *rng.Source, budget *Budget, sc *dsScratch, target int) (bool, error) {
	pos := func(ro int) (int, int) { return ro % spec.Cols, ro / spec.Cols }
	tp := base[target]
	pattern := valleyForPair(pos, tp, opts)

	pval := func(ro int) float64 {
		x, y := pos(ro)
		return pattern.Eval(float64(x), float64(y))
	}

	// Rewrite the masking selections: the target's group selects the
	// target; every other group selects its pair with the largest
	// pattern separation (a fully determined bit).
	groups := len(base) / k
	targetGroup := target / k
	selected := resizeInts(&sc.selected, groups)
	predicted := resizeBools(&sc.predicted, groups)
	for g := 0; g < groups; g++ {
		if g == targetGroup {
			selected[g] = target % k
			continue
		}
		bestIdx, bestSep := -1, 0.0
		for i := 0; i < k; i++ {
			pr := base[g*k+i]
			if sep := math.Abs(pval(pr.A) - pval(pr.B)); sep > bestSep {
				bestIdx, bestSep = i, sep
			}
		}
		if bestIdx < 0 || bestSep < 1 {
			return false, fmt.Errorf("attack: group %d has no pattern-determined pair", g)
		}
		selected[g] = bestIdx
		pr := base[g*k+bestIdx]
		// Response bit = [residual'(A) > residual'(B)] and residual' =
		// residual - P, so the pair with the smaller pattern value wins.
		predicted[g] = pval(pr.A) < pval(pr.B)
	}

	// The superposition reuses the scratch coefficient buffer; its blob
	// and the masking blob are shared by both arm images.
	poly := origPoly.AddInto(pattern, sc.polyBeta)
	sc.polyBeta = poly.Beta
	mask := pairing.MaskingHelper{K: k, Selected: selected}
	polyBlob := poly.Marshal()
	maskBlob := mask.Marshal()

	makeArm := func(hyp int, hypBit bool) (Hypothesis, error) {
		stream := scratchVec(&sc.stream, groups)
		for g := 0; g < groups; g++ {
			if g == targetGroup {
				stream.Set(g, hypBit)
			} else {
				stream.Set(g, predicted[g])
			}
		}
		offBlob, predKey, err := sc.offsetWithInjection(hyp, stream, targetGroup, spec.Code, opts, src, nil)
		if err != nil {
			return nil, err
		}
		im := helperdata.NewImage()
		im.SetOwned(helperdata.SectionPolynomial, polyBlob)
		im.SetOwned(helperdata.SectionMasking, maskBlob)
		im.SetOwned(helperdata.SectionOffset, offBlob)
		return bindingHypothesis(im, predKey), nil
	}
	arm0, err := makeArm(0, false)
	if err != nil {
		return false, err
	}
	arm1, err := makeArm(1, true)
	if err != nil {
		return false, err
	}
	best, _, err := opts.Dist.BestHypotheses(ctx, t, []Hypothesis{arm0, arm1}, budget)
	if err != nil {
		return false, err
	}
	if best < 0 {
		return false, ErrNoArms
	}
	return best == 1, nil
}

// bindingHypothesis writes an image and binds the predicted key — the
// reprogrammed-key arm shared by the distiller-facing attacks.
func bindingHypothesis(im *helperdata.Image, predKey bitvec.Vector) Hypothesis {
	return func(t Target) error {
		if err := t.WriteImage(im); err != nil {
			return err
		}
		if kb, ok := t.(KeyBinder); ok {
			kb.BindKey(predKey)
			return nil
		}
		return fmt.Errorf("attack: target %T cannot bind keys", t)
	}
}

// ChainDetails is the chain attack's Report payload.
type ChainDetails struct {
	// MaxHypotheses is the largest simultaneous hypothesis set used
	// (2^b for b bits undetermined by one pattern — the paper
	// illustrates b = 4).
	MaxHypotheses int
}

// chainAttack is the paper's Fig. 6c attack against an entropy distiller
// composed with an overlapping neighbor chain. A quadratic valley
// centered between two adjacent columns leaves exactly the chain pairs
// straddling that boundary undetermined (one per row — four on the
// paper's 4x10 array), so the attacker enumerates all 2^b hypotheses
// about those bits at once; sliding the valley across every column and
// row boundary recovers the whole key.
type chainAttack struct{}

func (chainAttack) Name() string { return "chain" }
func (chainAttack) Description() string {
	return "Fig. 6c distiller + overlapping chain full key recovery"
}

func (a chainAttack) Run(ctx context.Context, t Target, opts Options) (Report, error) {
	spec := t.Spec()
	if spec.Construction != a.Name() {
		return Report{}, fmt.Errorf("attack: target construction %q, want overlapping chain", spec.Construction)
	}
	if spec.Rows <= 0 || spec.Cols <= 0 {
		return Report{}, fmt.Errorf("attack: chain needs array geometry in the spec, got %dx%d", spec.Rows, spec.Cols)
	}
	if !binderFor(t) {
		return Report{}, fmt.Errorf("attack: chain needs a reprogrammed-key target (KeyBinder)")
	}
	originalImage, err := t.ReadImage()
	if err != nil {
		return Report{}, err
	}
	origPoly, _, origOffset, err := DistillerFromImage(originalImage)
	if err != nil {
		return Report{}, err
	}
	defer func() { _ = t.WriteImage(originalImage) }()

	opts = distillerDefaults(opts, spec.Code.T())
	src := opts.source(0xd15711)
	budget := NewBudget(opts.QueryBudget)
	startQueries := t.Queries()
	tr := newTracer(a.Name(), t, opts)

	pos := func(ro int) (int, int) { return ro % spec.Cols, ro / spec.Cols }
	base := pairing.ChainPairs(spec.Rows, spec.Cols, false)
	known := make(map[int]bool, len(base)) // chain index -> bit
	maxHyp := 0

	// Column boundaries, then row boundaries.
	type boundary struct {
		vertical bool // vertical line between columns (valley in x)
		at       float64
	}
	var bounds []boundary
	for c := 0; c+1 < spec.Cols; c++ {
		bounds = append(bounds, boundary{vertical: true, at: float64(c) + 0.5})
	}
	for r := 0; r+1 < spec.Rows; r++ {
		bounds = append(bounds, boundary{vertical: false, at: float64(r) + 0.5})
	}

	tr.phase("boundaries")
	var sc dsScratch
	for bi, bd := range bounds {
		var pattern distiller.Poly2D
		if bd.vertical {
			pattern = distiller.QuadraticValleyX(bd.at, opts.PatternAmpMHz).Add(distiller.Plane(0, 0, opts.TiltMHz))
		} else {
			pattern = distiller.QuadraticValleyY(bd.at, opts.PatternAmpMHz).Add(distiller.Plane(0, opts.TiltMHz, 0))
		}
		pval := func(ro int) float64 {
			x, y := pos(ro)
			return pattern.Eval(float64(x), float64(y))
		}
		// Classify chain pairs: determined (predicted) vs undetermined.
		unknownIdx := sc.unknownIdx[:0]
		predicted := resizeBools(&sc.predicted, len(base))
		determined := resizeBools(&sc.determined, len(base))
		for i := range determined {
			determined[i] = false
		}
		for i, pr := range base {
			sep := pval(pr.A) - pval(pr.B)
			if math.Abs(sep) > 1 {
				determined[i] = true
				predicted[i] = sep < 0 // smaller pattern value wins
			} else if _, ok := known[i]; !ok {
				unknownIdx = append(unknownIdx, i)
			}
		}
		sc.unknownIdx = unknownIdx
		if len(unknownIdx) == 0 {
			continue
		}
		if len(unknownIdx) > 12 {
			return Report{}, fmt.Errorf("attack: %d undetermined bits under one pattern", len(unknownIdx))
		}
		if h := 1 << len(unknownIdx); h > maxHyp {
			maxHyp = h
		}

		// The superposition reuses the scratch coefficient buffer; its
		// blob is shared by every arm image of this boundary.
		poly := origPoly.AddInto(pattern, sc.polyBeta)
		sc.polyBeta = poly.Beta
		polyBlob := poly.Marshal()
		arms := sc.arms[:0]
		for hyp := 0; hyp < 1<<len(unknownIdx); hyp++ {
			stream := scratchVec(&sc.stream, len(base))
			for i := range base {
				switch {
				case determined[i]:
					stream.Set(i, predicted[i])
				case slices.Contains(unknownIdx, i):
					p := slices.Index(unknownIdx, i)
					stream.Set(i, hyp>>uint(p)&1 == 1)
				default:
					// Already recovered on an earlier boundary but tied
					// under this pattern: use the known bit.
					stream.Set(i, known[i])
				}
			}
			offBlob, predKey, err := sc.offsetWithInjection(hyp, stream, unknownIdx[0], spec.Code, opts, src, unknownIdx)
			if err != nil {
				return Report{}, err
			}
			im := helperdata.NewImage()
			im.SetOwned(helperdata.SectionPolynomial, polyBlob)
			im.SetOwned(helperdata.SectionOffset, offBlob)
			arms = append(arms, bindingHypothesis(im, predKey))
		}
		sc.arms = arms
		best, _, err := opts.Dist.BestHypotheses(ctx, t, arms, budget)
		if err != nil {
			return Report{}, err
		}
		if best < 0 {
			return Report{}, ErrNoArms
		}
		for p, idx := range unknownIdx {
			known[idx] = best>>uint(p)&1 == 1
		}
		tr.step("boundaries", bi+1, len(bounds))
	}

	tr.phase("assemble")
	key := bitvec.New(len(base))
	for i := range base {
		if b, ok := known[i]; ok {
			key.Set(i, b)
		} else {
			return Report{}, fmt.Errorf("attack: chain bit %d never isolated", i)
		}
	}
	key = polishWithOriginalOffset(key, origOffset, spec.Code)

	rep := tr.report(startQueries)
	rep.Key = key
	rep.Details = ChainDetails{MaxHypotheses: maxHyp}
	return rep, nil
}

// offsetWithInjection builds the code-offset helper binding the predicted
// stream with the common error offset folded into every ECC block that
// contains a hypothesis bit (or block 0 when hypBits is nil, meaning the
// single hypothesis bit sits at position targetPos). It returns the
// marshaled offset blob (pooled per arm, ready for SetOwned) and the key
// the attacker predicts the device will regenerate (pooled per arm;
// targets copy at BindKey). The legacy version iterated the needed
// blocks in map order — per-block injections are disjoint, so the
// ascending order here is observably identical.
func (sc *dsScratch) offsetWithInjection(arm int, stream bitvec.Vector, targetPos int, code ecc.Code, opts Options, src *rng.Source, hypBits []int) ([]byte, bitvec.Vector, error) {
	n := code.N()
	blocks := (stream.Len() + n - 1) / n
	if blocks == 0 {
		blocks = 1
	}
	padded := scratchVec(&sc.padded, blocks*n)
	padded.Zero()
	padded.PutAt(0, stream)

	// Blocks needing the offset.
	needBlk := resizeBools(&sc.needBlk, blocks)
	for i := range needBlk {
		needBlk[i] = false
	}
	needBlk[targetPos/n] = true
	for _, hb := range hypBits {
		needBlk[hb/n] = true
	}
	avoid := func(pos int) bool { return pos == targetPos || slices.Contains(hypBits, pos) }
	injected := scratchVec(&sc.injected, padded.Len())
	padded.CopyInto(injected)
	for blk := 0; blk < blocks; blk++ {
		if !needBlk[blk] {
			continue
		}
		count := 0
		for pos := blk * n; pos < (blk+1)*n && pos < stream.Len() && count < opts.InjectErrors; pos++ {
			if avoid(pos) {
				continue
			}
			injected.Flip(pos)
			count++
		}
		if count < opts.InjectErrors {
			return nil, bitvec.Vector{}, fmt.Errorf("attack: block %d lacks injectable bits", blk)
		}
	}
	if sc.block == nil || sc.blocks != blocks {
		sc.block = ecc.NewBlock(code, blocks)
		sc.blocks = blocks
	}
	msg := scratchVec(&sc.msg, sc.block.K())
	for i := 0; i < msg.Len(); i++ {
		msg.Set(i, src.Bool())
	}
	offsetW := scratchVec(&sc.offsetW, padded.Len())
	ecc.OffsetForInto(sc.block, injected, msg, &sc.ws, offsetW)
	sc.armSlot(arm)
	blob, err := offsetW.AppendBinary(sc.offBlob[arm][:0])
	if err != nil {
		return nil, bitvec.Vector{}, err
	}
	sc.offBlob[arm] = blob
	// The device's recovered response is the stream the offset binds —
	// the INJECTED one — so that is the key the attacker predicts.
	if sc.predKey[arm].Len() != stream.Len() {
		sc.predKey[arm] = bitvec.New(stream.Len())
	}
	injected.SliceInto(0, stream.Len(), sc.predKey[arm])
	return blob, sc.predKey[arm], nil
}

// valleyForPair builds the Fig. 6b pattern for one target pair: a
// quadratic valley centered between the pair's oscillators along their
// separation axis plus an orthogonal tilt.
func valleyForPair(pos func(int) (int, int), tp pairing.Pair, opts Options) distiller.Poly2D {
	xa, ya := pos(tp.A)
	xb, yb := pos(tp.B)
	if ya == yb {
		// Horizontal pair: valley in x centered between them, tilt in y.
		return distiller.QuadraticValleyX((float64(xa)+float64(xb))/2, opts.PatternAmpMHz).
			Add(distiller.Plane(0, 0, opts.TiltMHz))
	}
	if xa == xb {
		return distiller.QuadraticValleyY((float64(ya)+float64(yb))/2, opts.PatternAmpMHz).
			Add(distiller.Plane(0, opts.TiltMHz, 0))
	}
	// Diagonal pairs do not occur on neighbor chains; fall back to the
	// perpendicular plane (levels tie along the perpendicular axis).
	return distiller.PerpendicularPlane(xa, ya, xb, yb, opts.PatternAmpMHz)
}
