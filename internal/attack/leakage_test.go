package attack

import (
	"testing"

	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/silicon"
	"repro/internal/tempco"
)

// refBits extracts ground-truth reference bits (low-temperature side)
// from the silicon.
func refBits(d *device.TempCoDevice) func(int) bool {
	arr := d.Array()
	p := d.Params()
	h := d.ReadHelper()
	env := silicon.Environment{TempC: p.TminC, VoltageV: arr.Config().NominalVoltageV}
	return func(i int) bool {
		return arr.PairDeltaF(h.Pairs[i].Pair.A, h.Pairs[i].Pair.B, env) > 0
	}
}

func TestDeterministicSelectionLeaksForFree(t *testing.T) {
	// Devices enrolled with first-fit selection leak correct inequality
	// constraints through their helper data alone — zero queries.
	p := tempcoParams()
	p.Policy = tempco.DeterministicSelection
	totalConstraints, correct := 0, 0
	for seed := uint64(0); seed < 8; seed++ {
		d, err := device.EnrollTempCo(p, rng.New(seed*100+1), rng.New(seed*100+2))
		if err != nil {
			t.Fatal(err)
		}
		bit := refBits(d)
		cons := AnalyzeDeterministicSelectionLeakage(d.ReadHelper())
		for _, c := range cons {
			totalConstraints++
			if (bit(c.PairA) != bit(c.PairB)) == c.Differ {
				correct++
			}
		}
		if d.Queries() != 0 {
			t.Fatal("leakage analysis consumed oracle queries")
		}
	}
	if totalConstraints == 0 {
		t.Skip("no constraints extractable on these instances")
	}
	if correct != totalConstraints {
		t.Fatalf("deterministic selection: %d/%d constraints correct, want all",
			correct, totalConstraints)
	}
	t.Logf("extracted %d correct bit relations from helper data alone", totalConstraints)
}

func TestRandomSelectionDefeatsTheLeakage(t *testing.T) {
	// With randomized selection the same scan yields constraints that
	// are substantially wrong — the paper's recommended fix works.
	p := tempcoParams()
	p.Policy = tempco.RandomSelection
	totalConstraints, correct := 0, 0
	for seed := uint64(0); seed < 12; seed++ {
		d, err := device.EnrollTempCo(p, rng.New(seed*100+1), rng.New(seed*100+2))
		if err != nil {
			t.Fatal(err)
		}
		bit := refBits(d)
		for _, c := range AnalyzeDeterministicSelectionLeakage(d.ReadHelper()) {
			totalConstraints++
			if (bit(c.PairA) != bit(c.PairB)) == c.Differ {
				correct++
			}
		}
	}
	if totalConstraints < 10 {
		t.Skip("too few pseudo-constraints to judge")
	}
	frac := float64(correct) / float64(totalConstraints)
	if frac > 0.85 {
		t.Fatalf("random selection still leaks: %.2f of pseudo-constraints hold", frac)
	}
	t.Logf("random selection: only %.2f of pseudo-constraints hold (%d/%d)", frac, correct, totalConstraints)
}
