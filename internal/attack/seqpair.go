package attack

import (
	"context"
	"encoding/binary"
	"fmt"
	"slices"

	"repro/internal/bitvec"
	"repro/internal/ecc"
	"repro/internal/helperdata"
)

func init() { Register(seqPairAttack{}) }

// SeqPairDetails is the seqpair attack's Report payload.
type SeqPairDetails struct {
	// Relations[j] reports r_j != r_0 for pair j (index 0 is the
	// reference and always false).
	Relations []bool
	// Calibration echoes the measured reference rates.
	Calibration Calibration
}

// seqPairAttack is the paper's §VI-A key recovery against a deployed
// sequential-pairing (LISA) device.
//
// Hypotheses H0: r_0 = r_j, H1: r_0 != r_j are distinguished by swapping
// the POSITIONS of pairs 0 and j in the helper list, which injects two
// bit errors exactly when the bits differ. The common offset uses
// within-pair order swaps — each inverts one response bit
// deterministically and value-independently ("one can select these pairs
// which will introduce a pair of erroneous bits for sure" generalizes to
// this cheaper injector once the storage format compares stored order).
// The final complement decision compares the consistency of the two
// candidate keys with crafted sets of ECC helper data.
type seqPairAttack struct{}

func (seqPairAttack) Name() string { return "seqpair" }
func (seqPairAttack) Description() string {
	return "§VI-A sequential-pairing (LISA) full key recovery"
}

func (a seqPairAttack) Run(ctx context.Context, t Target, opts Options) (Report, error) {
	spec := t.Spec()
	originalImage, err := t.ReadImage()
	if err != nil {
		return Report{}, err
	}
	original, origOffset, err := SeqPairFromImage(originalImage)
	if err != nil {
		return Report{}, err
	}
	defer func() { _ = t.WriteImage(originalImage) }() // leave the device as found

	m := len(original.Pairs)
	code := spec.Code
	radius := code.T()
	if opts.InjectErrors <= 0 || opts.InjectErrors > radius {
		opts.InjectErrors = radius
	}
	if opts.CalibrationQueries <= 0 {
		opts.CalibrationQueries = 24
	}
	blockLen := code.N()
	// Every test focuses on ECC block 0: the reference pair 0 lives
	// there, and injections must share its block to add up.
	inBlock0 := min(blockLen, m)
	if inBlock0 < opts.InjectErrors+2 {
		return Report{}, fmt.Errorf("attack: block 0 holds %d pairs, need %d for injection",
			inBlock0, opts.InjectErrors+2)
	}

	budget := NewBudget(opts.QueryBudget)
	startQueries := t.Queries()
	tr := newTracer(a.Name(), t, opts)

	// imageWith derives a helper image from the original by swapping the
	// within-pair order at positions `invert` and swapping the list
	// positions of pairs a and b (a == b means no position swap). Every
	// arm of the sweep shares the untouched offset blob, marshaled once;
	// the pair list is marshaled into buf (appended from its start), so
	// the relation sweep can pool one buffer for its transient swap arms.
	offsetBytes, err := origOffset.MarshalBinary()
	if err != nil {
		return Report{}, err
	}
	imageWith := func(buf []byte, invert []int, a, b int) (*helperdata.Image, []byte) {
		// Marshal the manipulated pair list directly (same wire format
		// as SeqPairHelper.Marshal), applying the swaps on the fly
		// instead of cloning the list first.
		buf = binary.LittleEndian.AppendUint16(buf, uint16(m))
		for idx := 0; idx < m; idx++ {
			src := idx
			if a != b {
				if idx == a {
					src = b
				} else if idx == b {
					src = a
				}
			}
			p := original.Pairs[src]
			if slices.Contains(invert, src) {
				p = p.Swapped()
			}
			buf = binary.LittleEndian.AppendUint16(buf, uint16(p.A))
			buf = binary.LittleEndian.AppendUint16(buf, uint16(p.B))
		}
		im := helperdata.NewImage()
		im.SetOwned(helperdata.SectionSeqPairs, buf)
		im.SetOwned(helperdata.SectionOffset, offsetBytes)
		return im, buf
	}
	// The image is built once per arm, outside the install closure, so
	// re-installs across an arm's query run hit the adapters' identical-
	// image write cache instead of re-marshaling and re-parsing the NVM.
	install := func(invert []int, a, b int) Hypothesis {
		im, _ := imageWith(make([]byte, 0, 2+4*m), invert, a, b)
		return func(t Target) error {
			return t.WriteImage(im)
		}
	}
	// The reference arm's injection set — and so its image — repeats
	// across most relation decisions; memoize it per distinct set so the
	// adapters' parse cache sees a stable image identity.
	refArms := make(map[int]Hypothesis)
	refInstall := func(inj []int, j int) Hypothesis {
		key := j
		if j > opts.InjectErrors {
			key = -1
		}
		if h, ok := refArms[key]; ok {
			return h
		}
		h := install(inj, 0, 0)
		refArms[key] = h
		return h
	}

	// injectionSet fills dst (from its start) with opts.InjectErrors
	// positions inside block 0 avoiding the two pairs under test (-1 =
	// avoid nothing); the relation sweep reuses one buffer across its
	// m-1 decisions.
	injectionSet := func(dst []int, avoidA, avoidB int) []int {
		dst = dst[:0]
		for p := 0; p < inBlock0 && len(dst) < opts.InjectErrors; p++ {
			if p != avoidA && p != avoidB {
				dst = append(dst, p)
			}
		}
		return dst
	}

	// Calibration: rates at offset and offset+1 errors, all via
	// value-independent within-pair swaps.
	tr.phase("calibrate")
	calNom := injectionSet(make([]int, 0, opts.InjectErrors+1), -1, -1)
	calElev := injectionSet(make([]int, 0, opts.InjectErrors+1), -1, -1)
	for p := 0; p < inBlock0; p++ {
		if !slices.Contains(calElev, p) {
			calElev = append(calElev, p)
			break
		}
	}
	queryArm := Arm(t.Query)
	if err := install(calNom, 0, 0)(t); err != nil {
		return Report{}, err
	}
	pNom, err := estimateRate(ctx, queryArm, opts.CalibrationQueries, budget)
	if err != nil {
		return Report{}, err
	}
	if err := install(calElev, 0, 0)(t); err != nil {
		return Report{}, err
	}
	pElev, err := estimateRate(ctx, queryArm, opts.CalibrationQueries, budget)
	if err != nil {
		return Report{}, err
	}
	cal := Calibration{PNominal: pNom, PElevated: pElev, Queries: 2 * opts.CalibrationQueries}
	dist := cal.Apply(opts.Dist)

	// Relation recovery: for each j, arm A = injections + position swap
	// of pairs 0 and j, arm B = injections only (H0-like reference).
	// The swap arm of decision j is never re-installed after the
	// decision, so its pair-list blob comes from a pooled buffer; the
	// memoized reference arms keep their own blobs.
	tr.phase("relations")
	relations := make([]bool, m)
	var inj []int
	var swapBuf []byte
	for j := 1; j < m; j++ {
		inj = injectionSet(inj, 0, j)
		swapIm, buf := imageWith(swapBuf[:0], inj, 0, j)
		swapBuf = buf
		swapArm := Hypothesis(func(t Target) error { return t.WriteImage(swapIm) })
		// Arms ordered so index 0 = "bits equal" (swap is a no-op on
		// the key, failure stays nominal) — for the swap arm. The
		// reference arm identifies the nominal level; Best picks the
		// arm behaving nominally. If the swap arm is nominal, bits are
		// equal.
		best, _, err := dist.BestHypotheses(ctx, t, []Hypothesis{
			swapArm,            // swap arm
			refInstall(inj, j), // reference arm
		}, budget)
		if err != nil {
			return Report{}, fmt.Errorf("attack: pair %d: %w", j, err)
		}
		if best < 0 {
			return Report{}, fmt.Errorf("attack: pair %d: %w", j, ErrNoArms)
		}
		relations[j] = best != 0 // swap arm elevated => bits differ
		tr.step("relations", j, m-1)
	}

	// Assemble the two key candidates.
	tr.phase("complement")
	cand0 := bitvec.New(m)
	for j := 1; j < m; j++ {
		cand0.Set(j, relations[j]) // assumes r_0 = 0
	}
	cand1 := cand0.Not()

	// Complement decision. Offline first: check code-offset consistency
	// of both candidates against the original ECC helper.
	key, ambiguous := resolveComplement(code, origOffset, cand0, cand1)

	rep := tr.report(startQueries)
	rep.Key = key
	rep.Ambiguous = ambiguous
	rep.Details = SeqPairDetails{Relations: relations, Calibration: cal}
	return rep, nil
}

// resolveComplement implements the paper's final decision: "the
// performance of two corresponding sets of ECC helper data can be
// compared". The offline consistency check against the original offset
// decides whenever the deployed code excludes the relevant all-ones
// pattern; otherwise the two candidates are information-theoretically
// indistinguishable through this oracle and the result stays ambiguous.
func resolveComplement(code ecc.Code, offset bitvec.Vector, cand0, cand1 bitvec.Vector) (bitvec.Vector, bool) {
	blocks := offset.Len() / code.N()
	block := ecc.NewBlock(code, blocks)
	pad := func(v bitvec.Vector) bitvec.Vector {
		return v.Concat(bitvec.New(offset.Len() - v.Len()))
	}
	off := ecc.Offset{W: offset}
	ok0 := ecc.ConsistentWith(block, off, pad(cand0))
	ok1 := ecc.ConsistentWith(block, off, pad(cand1))
	switch {
	case ok0 && !ok1:
		return cand0, false
	case ok1 && !ok0:
		return cand1, false
	default:
		// Both consistent (all-ones pattern is a codeword) or neither
		// (some relation decided wrongly): query-based comparison of
		// crafted helper sets cannot separate the former case either;
		// return the r_0=0 candidate and flag it.
		return cand0, true
	}
}
