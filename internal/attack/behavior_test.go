package attack

// Behavioral coverage of the five registered attacks against silicon
// ground truth — relation correctness, helper restoration, strategy
// variants, wrong-construction rejection. These tests are phrased onto
// Run + Details; the bit-exact determinism contracts live in
// testdata/transcripts/ at the repository root.

import (
	"context"
	"testing"

	"repro/internal/device"
	"repro/internal/ecc"
	"repro/internal/pairing"
	"repro/internal/rng"
	"repro/internal/tempco"
)

// tempcoParams is the shared test configuration for tempco devices.
func tempcoParams() tempco.Params {
	return tempco.Params{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.6,
		TminC:        -20, TmaxC: 80,
		Policy:     tempco.RandomSelection,
		Code:       ecc.MustBCH(ecc.BCHConfig{M: 6, T: 3}),
		EnrollReps: 25,
	}
}

// plainSeqPairDevice enrolls the non-expurgated variant of
// seqPairDevice (plain narrow-sense BCH, complement ambiguity possible).
func plainSeqPairDevice(t testing.TB, seed uint64) *device.SeqPairDevice {
	t.Helper()
	d, err := device.EnrollSeqPair(device.SeqPairParams{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.8,
		Policy:       pairing.RandomizedStorage,
		Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
		EnrollReps:   20,
	}, rng.New(seed), rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAttackSeqPairRecoversRelations(t *testing.T) {
	d := plainSeqPairDevice(t, 10)
	truth := d.TrueKey()
	res, err := Run(context.Background(), "seqpair", NewSeqPairTarget(d),
		Options{Dist: DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	det := res.Details.(SeqPairDetails)
	// Relations must match ground truth exactly.
	for j := 1; j < truth.Len(); j++ {
		want := truth.Get(j) != truth.Get(0)
		if det.Relations[j] != want {
			t.Fatalf("relation %d: got %v want %v", j, det.Relations[j], want)
		}
	}
	// Plain narrow-sense BCH contains the all-ones word, but the
	// complement ambiguity only materializes when the response exactly
	// fills the ECC blocks: zero padding breaks the all-ones pattern in
	// the last block, so the offline consistency check resolves it
	// here (64 response bits over 31-bit blocks). Either way the
	// recovered key must be exact when resolved, and the truth or its
	// complement when not.
	if res.Ambiguous {
		if !res.Key.Equal(truth) && !res.Key.Equal(truth.Not()) {
			t.Fatal("ambiguous result is neither the truth nor its complement")
		}
	} else if !res.Key.Equal(truth) {
		t.Fatalf("resolved key differs from the truth:\n got %s\nwant %s", res.Key, truth)
	}
	if res.Queries <= 0 {
		t.Fatal("no queries recorded")
	}
	t.Logf("seqpair (plain BCH): %d pairs, %d queries, ambiguous=%v", truth.Len(), res.Queries, res.Ambiguous)
}

func TestAttackSeqPairExpurgatedResolvesFully(t *testing.T) {
	d := seqPairDevice(t, 20)
	truth := d.TrueKey()
	res, err := Run(context.Background(), "seqpair", NewSeqPairTarget(d),
		Options{Dist: DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ambiguous {
		t.Fatal("expurgated BCH excludes all-ones; the complement must resolve")
	}
	if !res.Key.Equal(truth) {
		t.Fatalf("full key recovery failed:\n got %s\nwant %s", res.Key, truth)
	}
	t.Logf("seqpair (expurgated BCH): full key of %d bits in %d queries", truth.Len(), res.Queries)
}

func TestAttackSeqPairLeavesDeviceWorking(t *testing.T) {
	d := seqPairDevice(t, 30)
	if _, err := Run(context.Background(), "seqpair", NewSeqPairTarget(d),
		Options{Dist: DefaultDistinguisher()}); err != nil {
		t.Fatal(err)
	}
	// The attack restores the original helper: the device must still
	// reconstruct its key.
	ok := 0
	for i := 0; i < 10; i++ {
		if d.App() {
			ok++
		}
	}
	if ok < 8 {
		t.Fatalf("device broken after attack: %d/10", ok)
	}
}

func TestAttackSeqPairFixedSampleStrategy(t *testing.T) {
	d := seqPairDevice(t, 40)
	truth := d.TrueKey()
	res, err := Run(context.Background(), "seqpair", NewSeqPairTarget(d),
		Options{Dist: Distinguisher{Strategy: FixedSample, Queries: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Key.Equal(truth) {
		t.Fatal("fixed-sample attack failed")
	}
}

func tempcoDevice(t *testing.T, seed uint64) *device.TempCoDevice {
	t.Helper()
	d, err := device.EnrollTempCo(tempcoParams(), rng.New(seed), rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAttackTempCoRecoversRelations(t *testing.T) {
	d := tempcoDevice(t, 50)
	rep, err := Run(context.Background(), "tempco", NewTempCoTarget(d),
		Options{Dist: DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Details.(TempCoDetails)
	// Ground truth: reference bits from noise-free low-temperature
	// deltas.
	arr := d.Array()
	p := d.Params()
	h := d.ReadHelper()
	envMin := arr.Config().NominalEnv()
	envMin.TempC = p.TminC
	refBit := func(i int) bool {
		return arr.PairDeltaF(h.Pairs[i].Pair.A, h.Pairs[i].Pair.B, envMin) > 0
	}
	checked := 0
	for x, got := range res.XorWithRef {
		want := refBit(x) != refBit(res.RefIdx)
		if got != want {
			t.Fatalf("relation for pair %d: got %v want %v", x, got, want)
		}
		checked++
	}
	if checked < 3 {
		t.Fatalf("only %d relations recovered", checked)
	}
	// Mask bits are absolute recoveries: verify against ground truth.
	for g, got := range res.MaskBits {
		if want := refBit(g); got != want {
			t.Fatalf("mask bit %d: got %v want %v", g, got, want)
		}
	}
	if len(res.MaskBits) == 0 {
		t.Fatal("no mask bits recovered")
	}
	t.Logf("tempco: %d coop relations, %d absolute mask bits, %d skipped, %d queries",
		checked, len(res.MaskBits), len(res.Skipped), rep.Queries)
}

func TestAttackTempCoRestoresHelper(t *testing.T) {
	d := tempcoDevice(t, 60)
	if _, err := Run(context.Background(), "tempco", NewTempCoTarget(d),
		Options{Dist: DefaultDistinguisher()}); err != nil {
		t.Fatal(err)
	}
	ok := 0
	for i := 0; i < 10; i++ {
		if d.App() {
			ok++
		}
	}
	if ok < 8 {
		t.Fatalf("device broken after attack: %d/10", ok)
	}
}

func TestAttackGroupBasedRecoversFullKey(t *testing.T) {
	d := groupBasedDevice(t, 70)
	truth := d.TrueKey()
	rep, err := Run(context.Background(), "groupbased", NewGroupBasedTarget(d),
		Options{Dist: DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	det := rep.Details.(GroupBasedDetails)
	if rep.Key.Len() == 0 {
		t.Fatalf("key not assembled; resolved %d groups", det.Resolved)
	}
	if !rep.Key.Equal(truth) {
		t.Fatalf("full key recovery failed:\n got %s\nwant %s", rep.Key, truth)
	}
	t.Logf("groupbased: %d-bit key, %d groups resolved, %d queries",
		truth.Len(), det.Resolved, rep.Queries)
}

func distillerDevice(t *testing.T, seed uint64, mode device.PairingMode) *device.DistillerPairDevice {
	t.Helper()
	d, err := device.EnrollDistillerPair(device.DistillerPairParams{
		Rows: 4, Cols: 10,
		Degree:     2,
		Mode:       mode,
		K:          5,
		Code:       ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
		EnrollReps: 25,
	}, rng.New(seed), rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAttackDistillerMaskingRecoversKey(t *testing.T) {
	d := distillerDevice(t, 80, device.MaskedChain)
	truth := d.TrueKey()
	rep, err := Run(context.Background(), "masking", NewDistillerTarget(d),
		Options{Dist: DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	det := rep.Details.(MaskingDetails)
	if !rep.Key.Equal(truth) {
		t.Fatalf("masking attack failed:\n got %s\nwant %s", rep.Key, truth)
	}
	t.Logf("distiller+masking: %d-bit key, %d base bits, %d queries",
		truth.Len(), len(det.BaseBits), rep.Queries)
}

func TestAttackDistillerMaskingRejectsWrongMode(t *testing.T) {
	d := distillerDevice(t, 90, device.OverlappingChain)
	if _, err := Run(context.Background(), "masking", NewDistillerTarget(d), Options{}); err == nil {
		t.Fatal("expected mode error")
	}
}

func TestAttackDistillerChainRecoversKey(t *testing.T) {
	d := distillerDevice(t, 100, device.OverlappingChain)
	truth := d.TrueKey()
	rep, err := Run(context.Background(), "chain", NewDistillerTarget(d),
		Options{Dist: DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	det := rep.Details.(ChainDetails)
	if !rep.Key.Equal(truth) {
		t.Fatalf("chain attack failed:\n got %s\nwant %s", rep.Key, truth)
	}
	// Fig. 6c: the 4x10 array yields 2^4 hypotheses at column
	// boundaries.
	if det.MaxHypotheses != 16 {
		t.Fatalf("max hypotheses %d, want 16", det.MaxHypotheses)
	}
	t.Logf("distiller+chain: %d-bit key, max %d hypotheses, %d queries",
		truth.Len(), det.MaxHypotheses, rep.Queries)
}

func TestAttackDistillerChainRejectsWrongMode(t *testing.T) {
	d := distillerDevice(t, 110, device.MaskedChain)
	if _, err := Run(context.Background(), "chain", NewDistillerTarget(d), Options{}); err == nil {
		t.Fatal("expected mode error")
	}
}
