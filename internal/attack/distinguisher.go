package attack

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/stats"
)

// This file is the statistical heart the four attacks share (the paper's
// Fig. 5): hypotheses about response bits map to helper manipulations; a
// common offset of deterministic errors pushes the ECC to the edge of
// its correction radius; the hypothesis whose failure rate stays nominal
// wins. Attacks and distinguisher live together behind the same
// oracle-agnostic Target surface.

// ErrNoArms reports a hypothesis test over an empty arm set — a malformed
// attack configuration rather than a statistical outcome. Attacks return
// it (wrapped) instead of crashing a long-running campaign.
var ErrNoArms = errors.New("attack: no hypothesis arms to distinguish")

// Arm is one hypothesis under test: a closure that installs the
// hypothesis's helper manipulation, then performs one oracle query and
// reports FAILURE (true = the key-dependent application misbehaved).
type Arm func() bool

// Hypothesis is one arm of a test expressed target-generically: Install
// writes the arm's manipulated helper (and, for reprogrammed-key
// targets, binds the predicted key) into whatever oracle it is given.
// One Query on that oracle then yields one observation. Expressing arms
// this way — rather than as closures over a fixed oracle — is what lets
// BatchTarget evaluate them concurrently against independent forks.
type Hypothesis func(t Target) error

// Strategy selects how the distinguisher spends queries.
type Strategy int

const (
	// FixedSample queries every arm the same number of times and takes
	// the arm with the fewest failures.
	FixedSample Strategy = iota
	// Sequential runs Wald's SPRT per arm against calibrated nominal
	// and elevated failure rates, returning the first arm accepted at
	// the nominal rate. Falls back to FixedSample when no arm is
	// accepted. Substantially cheaper at equal error probability — one
	// of the repository's ablations.
	Sequential
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case FixedSample:
		return "fixed-sample"
	case Sequential:
		return "sequential"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Distinguisher decides which of several helper-data hypotheses is
// correct by comparing observable failure rates.
type Distinguisher struct {
	Strategy Strategy
	// Queries is the per-arm budget of the fixed-sample strategy (and
	// of the sequential fallback).
	Queries int
	// P0 and P1 are the calibrated failure rates under the correct
	// hypothesis (nominal + injected offset) and under a wrong
	// hypothesis (one extra error beyond the offset). Sequential only.
	P0, P1 float64
	// Alpha and Beta are the designed SPRT error probabilities.
	Alpha, Beta float64
	// MaxQueries caps a single SPRT run; 0 means 64 * Queries.
	MaxQueries int
}

// DefaultDistinguisher returns a sequential distinguisher with
// conservative defaults suitable for well-separated rates.
func DefaultDistinguisher() Distinguisher {
	return Distinguisher{
		Strategy: Sequential,
		Queries:  12,
		P0:       0.05, P1: 0.95,
		Alpha: 0.01, Beta: 0.01,
	}
}

// normalized returns the distinguisher with defaults filled in and rates
// clamped away from the degenerate endpoints.
func (d Distinguisher) normalized() Distinguisher {
	if d.Queries <= 0 {
		d.Queries = 12
	}
	if d.Alpha <= 0 || d.Alpha >= 1 {
		d.Alpha = 0.01
	}
	if d.Beta <= 0 || d.Beta >= 1 {
		d.Beta = 0.01
	}
	const eps = 0.02
	if d.P0 < eps {
		d.P0 = eps
	}
	if d.P1 > 1-eps {
		d.P1 = 1 - eps
	}
	if d.P0 >= d.P1 {
		// Degenerate calibration; fall back to something sane.
		d.P0, d.P1 = 0.05, 0.95
	}
	if d.MaxQueries <= 0 {
		d.MaxQueries = 64 * d.Queries
	}
	return d
}

// Best returns the index of the arm with the lowest failure rate and the
// total number of queries spent. An empty arm set returns (-1, 0);
// callers treat that as ErrNoArms.
func (d Distinguisher) Best(arms []Arm) (best, queries int) {
	best, queries, _ = d.BestContext(context.Background(), arms, nil)
	return best, queries
}

// BestContext is Best with cooperative cancellation and query metering:
// ctx is checked and the budget is charged before every oracle query.
// On cancellation or exhaustion it returns (-1, queries so far, err).
func (d Distinguisher) BestContext(ctx context.Context, arms []Arm, b *Budget) (best, queries int, err error) {
	if len(arms) == 0 {
		return -1, 0, nil
	}
	d = d.normalized()
	if len(arms) == 1 {
		return 0, 0, nil
	}
	if d.Strategy == Sequential {
		total := 0
		for i, arm := range arms {
			r := d.sprtArm(ctx, arm, b)
			total += r.n
			if r.err != nil {
				return -1, total, r.err
			}
			if r.accepted {
				return i, total, nil
			}
		}
		// No arm accepted at the nominal rate: fall back.
		best, extra, err := d.fixedBest(ctx, arms, b)
		return best, total + extra, err
	}
	return d.fixedBest(ctx, arms, b)
}

// fixedBest is the serial fixed-sample pass; the per-arm loop is the
// same fixedArm the batched backend runs on forks, so serial and
// batched paths cannot drift apart semantically.
func (d Distinguisher) fixedBest(ctx context.Context, arms []Arm, b *Budget) (int, int, error) {
	best, bestFails := 0, int(^uint(0)>>1)
	total := 0
	for i, arm := range arms {
		r := d.fixedArm(ctx, arm, b)
		total += r.n
		if r.err != nil {
			return -1, total, r.err
		}
		if r.fails < bestFails {
			best, bestFails = i, r.fails
		}
	}
	return best, total, nil
}

// BestHypotheses evaluates target-generic arms. Against a BatchTarget it
// pipelines the arms concurrently over forked oracles (bit-identical at
// any worker count); against any other target it runs the exact serial
// transcript of BestContext, installing each hypothesis before every
// query, so in-process results match the legacy closure-based path. The
// serial path evaluates hypotheses directly rather than binding them
// into Arm closures: attacks run one call per recovered key bit, so the
// per-decision closure churn matters.
func (d Distinguisher) BestHypotheses(ctx context.Context, t Target, hyps []Hypothesis, b *Budget) (best, queries int, err error) {
	if bt, ok := t.(*BatchTarget); ok && len(hyps) > 1 {
		return d.bestBatched(ctx, bt, hyps, b)
	}
	if len(hyps) == 0 {
		return -1, 0, nil
	}
	d = d.normalized()
	if len(hyps) == 1 {
		return 0, 0, nil
	}
	if d.Strategy == Sequential {
		total := 0
		for i := range hyps {
			r := d.sprtHyp(ctx, t, hyps[i], b)
			total += r.n
			if r.err != nil {
				return -1, total, r.err
			}
			if r.accepted {
				return i, total, nil
			}
		}
		// No arm accepted at the nominal rate: fall back.
		best, extra, err := d.fixedBestHyp(ctx, t, hyps, b)
		return best, total + extra, err
	}
	return d.fixedBestHyp(ctx, t, hyps, b)
}

// observe installs a hypothesis and performs one oracle query. An
// install failure counts as an observed failure, matching bindArm (a
// helper the device rejects can never look nominal).
func observe(t Target, h Hypothesis) bool {
	if err := h(t); err != nil {
		return true
	}
	return t.Query()
}

// sprtHyp is sprtArm evaluating a hypothesis in place, without an Arm
// closure.
func (d Distinguisher) sprtHyp(ctx context.Context, t Target, h Hypothesis, b *Budget) armResult {
	s := stats.MakeSPRT(d.P0, d.P1, d.Alpha, d.Beta)
	decision := stats.SPRTContinue
	for decision == stats.SPRTContinue && s.N() < d.MaxQueries {
		if err := queryGate(ctx, b); err != nil {
			return armResult{n: s.N(), err: err}
		}
		decision = s.Observe(observe(t, h))
	}
	return armResult{accepted: decision == stats.SPRTAcceptH0, n: s.N()}
}

// fixedBestHyp is fixedBest evaluating hypotheses in place.
func (d Distinguisher) fixedBestHyp(ctx context.Context, t Target, hyps []Hypothesis, b *Budget) (int, int, error) {
	best, bestFails := 0, int(^uint(0)>>1)
	total := 0
	for i := range hyps {
		fails := 0
		for q := 0; q < d.Queries; q++ {
			if err := queryGate(ctx, b); err != nil {
				return -1, total + q, err
			}
			if observe(t, hyps[i]) {
				fails++
			}
		}
		total += d.Queries
		if fails < bestFails {
			best, bestFails = i, fails
		}
	}
	return best, total, nil
}

// bindArm fixes a hypothesis to a concrete oracle. An install failure
// counts as an observed failure, matching the legacy attacks' behavior
// (a helper the device rejects can never look nominal).
func bindArm(t Target, h Hypothesis) Arm {
	return func() bool {
		if err := h(t); err != nil {
			return true
		}
		return t.Query()
	}
}

// queryGate enforces cancellation and budget before one oracle query.
func queryGate(ctx context.Context, b *Budget) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return b.Spend(1)
}

// EstimateFailureRate queries an arm n times and returns the empirical
// failure rate.
func EstimateFailureRate(arm Arm, n int) float64 {
	p, _ := estimateRate(context.Background(), arm, n, nil)
	return p
}

// estimateRate is EstimateFailureRate with cancellation and metering.
func estimateRate(ctx context.Context, arm Arm, n int, b *Budget) (float64, error) {
	if n <= 0 {
		return 0, nil
	}
	fails := 0
	for i := 0; i < n; i++ {
		if err := queryGate(ctx, b); err != nil {
			return 0, err
		}
		if arm() {
			fails++
		}
	}
	return float64(fails) / float64(n), nil
}

// Calibration holds the failure rates measured for reference injection
// levels; attacks use it to parameterize the sequential distinguisher.
type Calibration struct {
	// PNominal is the failure rate with the common offset only (the
	// correct-hypothesis rate, Fig. 5's H-correct PDF tail).
	PNominal float64
	// PElevated is the failure rate with one extra injected error (a
	// wrong hypothesis's rate).
	PElevated float64
	// Queries spent measuring.
	Queries int
}

// Calibrate measures the two reference rates. nominal and elevated are
// arms with the attack's common offset and offset+1 deterministic errors
// respectively, built with value-independent manipulations.
func Calibrate(nominal, elevated Arm, queriesEach int) Calibration {
	return Calibration{
		PNominal:  EstimateFailureRate(nominal, queriesEach),
		PElevated: EstimateFailureRate(elevated, queriesEach),
		Queries:   2 * queriesEach,
	}
}

// Apply transfers calibrated rates onto a distinguisher.
func (c Calibration) Apply(d Distinguisher) Distinguisher {
	d.P0 = c.PNominal
	d.P1 = c.PElevated
	return d.normalized()
}

// Separation returns the rate gap; attacks abort when it collapses.
func (c Calibration) Separation() float64 { return c.PElevated - c.PNominal }
