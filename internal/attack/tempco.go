package attack

import (
	"context"
	"fmt"

	"repro/internal/tempco"
)

func init() { Register(tempCoAttack{}) }

// TempCoDetails is the tempco attack's Report payload: bit relations
// over the cooperating pairs (absolute XOR values) plus the absolutely
// recovered bits of every good pair used as a mask — the paper's partial
// key recovery.
type TempCoDetails struct {
	// CoopIdx lists the cooperating pairs (indices into the helper's
	// pair list).
	CoopIdx []int
	// XorWithRef[i] = r_i XOR r_ref for cooperating pair i, where ref is
	// the reference cooperating pair RefIdx (the requester's original
	// helping pair).
	XorWithRef map[int]bool
	RefIdx     int
	// MaskBits holds absolutely recovered good-pair bits: for every
	// cooperating pair c with mask g and helper ci, r_g = r_c XOR r_ci
	// follows from the masking constraint once the cooperating-pair
	// relations are known.
	MaskBits map[int]bool
	// Skipped lists cooperating pairs that could not be tested (their
	// own crossover interval contains the operating temperature, so
	// their measured bit is unstable).
	Skipped     []int
	Calibration Calibration
}

// tempCoAttack is the paper's §VI-B relation recovery against a deployed
// temperature-aware cooperative RO PUF at its current ambient
// temperature.
//
// A "requesting" cooperating pair c is forced into cooperation by
// rewriting its crossover interval to contain the ambient temperature;
// its reconstructed bit then equals r_x XOR r_g for whatever helping
// pair x the attacker designates, and substituting x while watching the
// failure rate decides r_x versus r_ci (the originally designated
// helper). The common error offset uses the interval-boundary
// manipulation the paper suggests — shifting Tl/Th so the device applies
// crossover compensation wrongly — extended to GOOD pairs by relabeling
// their class tag (the tag is helper data too), which makes the
// injection pool essentially the whole block.
type tempCoAttack struct{}

func (tempCoAttack) Name() string { return "tempco" }
func (tempCoAttack) Description() string {
	return "§VI-B temperature-aware cooperative relation recovery"
}

func (a tempCoAttack) Run(ctx context.Context, t Target, opts Options) (Report, error) {
	spec := t.Spec()
	originalImage, err := t.ReadImage()
	if err != nil {
		return Report{}, err
	}
	original, err := TempCoFromImage(originalImage)
	if err != nil {
		return Report{}, err
	}
	defer func() { _ = t.WriteImage(originalImage) }()

	tcap := spec.Code.T()
	if opts.InjectErrors <= 0 || opts.InjectErrors > tcap {
		opts.InjectErrors = tcap
	}
	if opts.CalibrationQueries <= 0 {
		opts.CalibrationQueries = 24
	}
	ambient := spec.AmbientC
	blockLen := spec.Code.N()
	budget := NewBudget(opts.QueryBudget)
	startQueries := t.Queries()
	tr := newTracer(a.Name(), t, opts)

	// Census of the helper.
	var coop, good []int
	inInterval := make(map[int]bool) // cooperating pair unstable at ambient
	protected := make(map[int]bool)  // records other pairs rely on at ambient
	for i, info := range original.Pairs {
		switch info.Class {
		case tempco.Cooperating:
			coop = append(coop, i)
			if ambient >= info.Tl && ambient <= info.Th {
				inInterval[i] = true
				protected[info.HelpIdx] = true
				protected[info.MaskIdx] = true
			}
			// A good pair referenced as a mask must KEEP its Good class
			// tag or the device's structural validation rejects the
			// helper — it cannot be relabeled for injection.
			protected[info.MaskIdx] = true
		case tempco.Good:
			good = append(good, i)
		}
	}
	if len(coop) < 3 {
		return Report{}, fmt.Errorf("attack: only %d cooperating pairs, need >= 3", len(coop))
	}
	if len(good) < 2 {
		return Report{}, fmt.Errorf("attack: need at least 2 good pairs")
	}

	// Reserve one good pair per block as a mask anchor that is never
	// relabeled (relabeled pairs need a valid Good MaskIdx).
	maskAnchor := good[0]

	// Pick a requesting pair not relied on by others whose ORIGINAL
	// helping pair is stable at ambient — the device refuses to
	// cooperate through a helper inside its own declared interval, so
	// an unstable reference would break the baseline arm. The
	// requester's ECC block must also hold enough injectable pairs for
	// the common offset (a requester alone in the final short block is
	// useless), so viability is checked against the injection pool; the
	// pool itself is defined below and only depends on the census.
	usableRequester := func(c int) bool {
		if protected[c] {
			return false
		}
		hi := original.Pairs[c].HelpIdx
		return !inInterval[hi]
	}
	requester := -1
	var refHelper int

	// injectionPool lists value-independent deterministic error
	// injectors in the given ECC block: stable cooperating pairs get
	// their interval shifted to force a wrong compensation; good pairs
	// get relabeled as cooperating with a below-ambient interval.
	injectionPool := func(blk int, avoid map[int]bool) []int {
		var out []int
		for _, k := range coop {
			if k/blockLen != blk || avoid[k] || protected[k] || inInterval[k] {
				continue
			}
			out = append(out, k)
		}
		for _, k := range good {
			if k/blockLen != blk || avoid[k] || protected[k] || k == maskAnchor {
				continue
			}
			out = append(out, k)
		}
		return out
	}

	// applyInjection mutates one helper record so that pair k's
	// reconstructed bit inverts deterministically at ambient.
	applyInjection := func(h *tempco.Helper, k int) {
		info := &h.Pairs[k]
		switch original.Pairs[k].Class {
		case tempco.Cooperating:
			if ambient < original.Pairs[k].Tl {
				// Not crossed yet; a declared interval below ambient
				// makes the device invert wrongly.
				info.Tl, info.Th = ambient-10, ambient-5
			} else {
				// Already crossed; a declared interval above ambient
				// suppresses the needed inversion.
				info.Tl, info.Th = ambient+5, ambient+10
			}
		case tempco.Good:
			// Relabel as cooperating with a below-ambient interval: the
			// device inverts the (stable) measured bit.
			info.Class = tempco.Cooperating
			info.Tl, info.Th = ambient-10, ambient-5
			info.MaskIdx = maskAnchor
			info.HelpIdx = requester // any cooperating pair; never used
		}
	}

	// install returns the hypothesis writing a helper with the requester
	// forced into cooperation via helping pair x plus the listed
	// injections. The image is built once per arm, outside the closure,
	// so re-installs across an arm's query run hit the adapters'
	// identical-image write cache. The manipulated pair list lives in a
	// pooled buffer: TempCoImage marshals it into the image's own blob
	// before install returns, so the buffer is free for the next arm.
	var pairsBuf []tempco.PairInfo
	install := func(req, x int, inject []int) Hypothesis {
		pairsBuf = append(pairsBuf[:0], original.Pairs...)
		h := tempco.Helper{Pairs: pairsBuf, Offset: original.Offset}
		h.Pairs[req].Tl = ambient - 1
		h.Pairs[req].Th = ambient + 1
		h.Pairs[req].HelpIdx = x
		for _, k := range inject {
			applyInjection(&h, k)
		}
		im, err := TempCoImage(h)
		return func(t Target) error {
			if err != nil {
				return err
			}
			return t.WriteImage(im)
		}
	}

	// Requester selection, now that pool viability can be evaluated:
	// two passes, preferring requesters stable at ambient.
	for _, stableOnly := range []bool{true, false} {
		for _, c := range coop {
			if !usableRequester(c) || (stableOnly && inInterval[c]) {
				continue
			}
			hi := original.Pairs[c].HelpIdx
			pool := injectionPool(c/blockLen, map[int]bool{c: true, hi: true})
			if len(pool) >= opts.InjectErrors+1 {
				requester, refHelper = c, hi
				break
			}
		}
		if requester != -1 {
			break
		}
	}
	if requester == -1 {
		return Report{}, fmt.Errorf("attack: no requesting pair with a stable reference and a viable injection pool at %v C", ambient)
	}

	blk := requester / blockLen
	basePool := injectionPool(blk, map[int]bool{requester: true, refHelper: true})

	// Calibration: offset and offset+1 rates.
	tr.phase("calibrate")
	queryArm := Arm(t.Query)
	if err := install(requester, refHelper, basePool[:opts.InjectErrors])(t); err != nil {
		return Report{}, err
	}
	pNom, err := estimateRate(ctx, queryArm, opts.CalibrationQueries, budget)
	if err != nil {
		return Report{}, err
	}
	if err := install(requester, refHelper, basePool[:opts.InjectErrors+1])(t); err != nil {
		return Report{}, err
	}
	pElev, err := estimateRate(ctx, queryArm, opts.CalibrationQueries, budget)
	if err != nil {
		return Report{}, err
	}
	cal := Calibration{PNominal: pNom, PElevated: pElev, Queries: 2 * opts.CalibrationQueries}
	dist := cal.Apply(opts.Dist)

	// Relation recovery: rel(x) = [r_x != r_refHelper] for every other
	// cooperating pair x stable at ambient.
	tr.phase("relations")
	xorWithRef := map[int]bool{refHelper: false}
	var skipped []int
	for n, x := range coop {
		if x == requester || x == refHelper {
			continue
		}
		if inInterval[x] {
			skipped = append(skipped, x)
			continue
		}
		pool := injectionPool(blk, map[int]bool{requester: true, refHelper: true, x: true})
		if len(pool) < opts.InjectErrors {
			skipped = append(skipped, x)
			continue
		}
		inj := pool[:opts.InjectErrors]
		best, _, err := dist.BestHypotheses(ctx, t, []Hypothesis{
			install(requester, x, inj),         // substitution arm
			install(requester, refHelper, inj), // reference arm
		}, budget)
		if err != nil {
			return Report{}, fmt.Errorf("attack: pair %d: %w", x, err)
		}
		if best < 0 {
			return Report{}, fmt.Errorf("attack: pair %d: %w", x, ErrNoArms)
		}
		xorWithRef[x] = best != 0
		tr.step("relations", n+1, len(coop))
	}

	// The requester itself gets its relation through a second requester.
	if rel, ok, err := a.secondRequester(ctx, t, original, dist, budget, opts, install, injectionPool, xorWithRef,
		coop, inInterval, protected, requester, refHelper, blockLen); err != nil {
		return Report{}, err
	} else if ok {
		xorWithRef[requester] = rel
	}

	// Absolute mask-bit recovery: r_g = r_c XOR r_ci for every
	// cooperating pair whose two relations are known.
	maskBits := make(map[int]bool)
	for _, c := range coop {
		relC, okC := xorWithRef[c]
		info := original.Pairs[c]
		relCi, okCi := xorWithRef[info.HelpIdx]
		if okC && okCi && info.MaskIdx >= 0 {
			maskBits[info.MaskIdx] = relC != relCi
		}
	}

	rep := tr.report(startQueries)
	rep.Details = TempCoDetails{
		CoopIdx:     coop,
		XorWithRef:  xorWithRef,
		RefIdx:      refHelper,
		MaskBits:    maskBits,
		Skipped:     skipped,
		Calibration: cal,
	}
	return rep, nil
}

// secondRequester recovers the first requester's own relation by forcing
// a different cooperating pair into cooperation and designating the
// first requester as its helper.
func (tempCoAttack) secondRequester(
	ctx context.Context,
	t Target,
	original tempco.Helper,
	dist Distinguisher,
	budget *Budget,
	opts Options,
	install func(req, x int, inject []int) Hypothesis,
	injectionPool func(blk int, avoid map[int]bool) []int,
	xorWithRef map[int]bool,
	coop []int,
	inInterval, protected map[int]bool,
	requester, refHelper, blockLen int,
) (bool, bool, error) {
	for _, second := range coop {
		if second == requester || second == refHelper || inInterval[second] || protected[second] {
			continue
		}
		ref2 := original.Pairs[second].HelpIdx
		rel2, known := xorWithRef[ref2]
		if !known || ref2 == requester || inInterval[ref2] {
			continue
		}
		blk2 := second / blockLen
		pool := injectionPool(blk2, map[int]bool{second: true, ref2: true, requester: true, refHelper: true})
		if len(pool) < opts.InjectErrors {
			continue
		}
		inj := pool[:opts.InjectErrors]
		best, _, err := dist.BestHypotheses(ctx, t, []Hypothesis{
			install(second, requester, inj), // substitution arm
			install(second, ref2, inj),      // reference arm
		}, budget)
		if err != nil {
			return false, false, err
		}
		if best < 0 {
			// Degenerate arm set: leave the requester's relation unknown.
			return false, false, nil
		}
		// best!=0 => r_requester != r_ref2; translate into the
		// refHelper frame via rel2 = r_ref2 XOR r_refHelper.
		return (best != 0) != rel2, true, nil
	}
	return false, false, nil
}
