package attack

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"repro/internal/device"
	"repro/internal/ecc"
	"repro/internal/groupbased"
	"repro/internal/pairing"
	"repro/internal/rng"
	"repro/internal/silicon"
)

func seqPairDevice(t testing.TB, seed uint64) *device.SeqPairDevice {
	t.Helper()
	d, err := device.EnrollSeqPair(device.SeqPairParams{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.8,
		Policy:       pairing.RandomizedStorage,
		Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3, Expurgate: true}),
		EnrollReps:   20,
	}, rng.New(seed), rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func groupBasedDevice(t testing.TB, seed uint64) *device.GroupBasedDevice {
	t.Helper()
	d, err := device.EnrollGroupBased(groupbased.Params{
		Rows: 4, Cols: 10,
		Degree:       2,
		ThresholdMHz: 0.5,
		MaxGroupSize: 6,
		Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
		EnrollReps:   25,
	}, rng.New(seed), rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func chainDevice(t testing.TB, seed uint64) *device.DistillerPairDevice {
	t.Helper()
	d, err := device.EnrollDistillerPair(device.DistillerPairParams{
		Rows: 4, Cols: 10,
		Degree: 2, Mode: device.OverlappingChain,
		Code:       ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
		EnrollReps: 25,
	}, rng.New(seed), rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRegistryHasAllFiveAttacks(t *testing.T) {
	want := []string{"chain", "groupbased", "masking", "seqpair", "tempco"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry names %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry names %v, want %v", got, want)
		}
	}
	if _, ok := Lookup("seqpair"); !ok {
		t.Fatal("seqpair not found")
	}
	if _, ok := Lookup("nonexistent"); ok {
		t.Fatal("phantom attack found")
	}
	if _, err := Run(context.Background(), "nonexistent", nil, Options{}); err == nil {
		t.Fatal("unknown attack must error")
	}
}

func TestImageRoundTrips(t *testing.T) {
	// seqpair
	sd := seqPairDevice(t, 3)
	st := NewSeqPairTarget(sd)
	im, err := st.ReadImage()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := im.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("seqpair NVM image: %d bytes, sections %v", len(raw), im.Names())
	if err := st.WriteImage(im); err != nil {
		t.Fatalf("round-trip write rejected: %v", err)
	}
	// groupbased
	gd := groupBasedDevice(t, 3)
	gt := NewGroupBasedTarget(gd)
	gim, err := gt.ReadImage()
	if err != nil {
		t.Fatal(err)
	}
	if err := gt.WriteImage(gim); err != nil {
		t.Fatalf("round-trip write rejected: %v", err)
	}
	// A seqpair image written to a groupbased device must fail parsing,
	// not get silently accepted.
	if err := gt.WriteImage(im); err == nil {
		t.Fatal("cross-construction image accepted")
	}
}

func TestRunReportsPhases(t *testing.T) {
	d := seqPairDevice(t, 7)
	var phases []string
	rep, err := Run(context.Background(), "seqpair", NewSeqPairTarget(d), Options{
		Dist: DefaultDistinguisher(),
		Progress: func(p Progress) {
			if len(phases) == 0 || phases[len(phases)-1] != p.Phase {
				phases = append(phases, p.Phase)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Key.Equal(d.TrueKey()) {
		t.Fatal("key not recovered")
	}
	if rep.Attack != "seqpair" || rep.Queries <= 0 || rep.Elapsed <= 0 {
		t.Fatalf("report header incomplete: %+v", rep)
	}
	if len(rep.Phases) != 3 {
		t.Fatalf("phases %v", rep.Phases)
	}
	sum := 0
	for _, ph := range rep.Phases {
		sum += ph.Queries
	}
	if sum != rep.Queries {
		t.Fatalf("phase queries sum %d != total %d", sum, rep.Queries)
	}
	if len(phases) == 0 || phases[0] != "calibrate" {
		t.Fatalf("progress phases %v", phases)
	}
}

func TestQueryBudgetEnforced(t *testing.T) {
	d := seqPairDevice(t, 9)
	rep, err := Run(context.Background(), "seqpair", NewSeqPairTarget(d), Options{
		Dist:        DefaultDistinguisher(),
		QueryBudget: 30, // enough for neither calibration round
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v (report %+v), want budget exhaustion", err, rep)
	}
	if q := d.Queries(); q > 30 {
		t.Fatalf("budget of 30 overshot: %d queries spent", q)
	}
}

func TestContextCancellationStopsAttack(t *testing.T) {
	d := seqPairDevice(t, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, "seqpair", NewSeqPairTarget(d), Options{Dist: DefaultDistinguisher()}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if q := d.Queries(); q > 0 {
		t.Fatalf("cancelled attack still spent %d queries", q)
	}
}

// TestBatchTargetRecovers confirms the forked-noise oracle still drives
// the attacks to full recovery (the statistics are unchanged even though
// the noise streams differ from the serial transcript).
func TestBatchTargetRecovers(t *testing.T) {
	d := seqPairDevice(t, 31)
	bt, err := NewBatchTarget(NewSeqPairTarget(d), 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), "seqpair", bt, Options{Dist: DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Key.Equal(d.TrueKey()) {
		t.Fatalf("batched attack failed:\n got %s\nwant %s", rep.Key, d.TrueKey())
	}
	if rep.Queries <= 0 {
		t.Fatal("no queries accounted")
	}
}

func TestBatchTargetRequiresForker(t *testing.T) {
	if _, err := NewBatchTarget(fakeTarget{}, 2, 1); err == nil {
		t.Fatal("non-forkable target accepted")
	}
}

type fakeTarget struct{ Target }

// BenchmarkBatchDistinguisher measures the distinguisher hot path
// through the batched backend at 1 worker versus all cores. The >1
// worker speedup materializes on multi-core hosts; the results are
// bit-identical either way (TestTranscriptWorkerInvariance at the
// repository root pins that contract per attack and noise model).
func BenchmarkBatchDistinguisher(b *testing.B) {
	counts := []int{1}
	if runtime.NumCPU() > 1 {
		counts = append(counts, runtime.NumCPU())
	}
	for _, workers := range counts {
		b.Run(benchName(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d := seqPairDevice(b, 41)
				bt, err := NewBatchTarget(NewSeqPairTarget(d), workers, 5)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := Run(context.Background(), "seqpair", bt, Options{
					Dist: Distinguisher{Strategy: FixedSample, Queries: 12},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(workers int) string {
	if workers == 1 {
		return "workers=1"
	}
	return "workers=numcpu"
}

// TestBatchTargetCounterSpec pins the counter-mode adapter surface the
// batched backend exposes: the forked-oracle target reports the
// device's noise model through Spec() and still drives the attack to
// recovery. (Worker-count invariance under both noise models is pinned
// per attack by TestTranscriptWorkerInvariance at the repository root.)
func TestBatchTargetCounterSpec(t *testing.T) {
	d, err := device.EnrollSeqPair(device.SeqPairParams{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.8,
		Policy:       pairing.RandomizedStorage,
		Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3, Expurgate: true}),
		EnrollReps:   20,
		Noise:        silicon.NoiseCounter,
	}, rng.New(21), rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	bt, err := NewBatchTarget(NewSeqPairTarget(d), 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := bt.Spec().Noise, "counter"; got != want {
		t.Fatalf("spec noise = %q, want %q", got, want)
	}
	rep, err := Run(context.Background(), "seqpair", bt, Options{Dist: DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Key.Equal(d.TrueKey()) {
		t.Fatal("counter-mode batched attack failed")
	}
}
