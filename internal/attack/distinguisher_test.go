package attack

import (
	"testing"

	"repro/internal/rng"
)

// bernoulliArm returns an Arm failing with probability p.
func bernoulliArm(r *rng.Source, p float64) Arm {
	return func() bool { return r.Float64() < p }
}

func TestBestFixedSample(t *testing.T) {
	r := rng.New(1)
	d := Distinguisher{Strategy: FixedSample, Queries: 60}
	correct := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		arms := []Arm{bernoulliArm(r, 0.9), bernoulliArm(r, 0.1), bernoulliArm(r, 0.9)}
		best, q := d.Best(arms)
		if q != 3*60 {
			t.Fatalf("queries %d", q)
		}
		if best == 1 {
			correct++
		}
	}
	if correct < 97 {
		t.Fatalf("fixed-sample picked the quiet arm %d/%d", correct, trials)
	}
}

func TestBestSequential(t *testing.T) {
	r := rng.New(2)
	d := Distinguisher{Strategy: Sequential, Queries: 40, P0: 0.1, P1: 0.9, Alpha: 0.01, Beta: 0.01}
	correct, totalQ := 0, 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		arms := []Arm{bernoulliArm(r, 0.9), bernoulliArm(r, 0.1)}
		best, q := d.Best(arms)
		totalQ += q
		if best == 1 {
			correct++
		}
	}
	if correct < 96 {
		t.Fatalf("sequential picked the quiet arm %d/%d", correct, trials)
	}
	// Sequential must be cheaper than fixed-sample at similar power.
	fixedCost := 2 * 40 * trials
	if totalQ >= fixedCost {
		t.Fatalf("sequential cost %d >= fixed cost %d", totalQ, fixedCost)
	}
}

func TestBestSequentialFallsBack(t *testing.T) {
	// Two arms both failing often: no arm accepted at the nominal rate,
	// the fallback must still return a decision.
	r := rng.New(3)
	d := Distinguisher{Strategy: Sequential, Queries: 10, P0: 0.02, P1: 0.5, Alpha: 0.01, Beta: 0.01, MaxQueries: 50}
	arms := []Arm{bernoulliArm(r, 0.95), bernoulliArm(r, 0.95)}
	best, q := d.Best(arms)
	if best != 0 && best != 1 {
		t.Fatalf("best = %d", best)
	}
	if q == 0 {
		t.Fatal("no queries spent")
	}
}

func TestBestSingleArm(t *testing.T) {
	d := DefaultDistinguisher()
	best, q := d.Best([]Arm{func() bool { return false }})
	if best != 0 || q != 0 {
		t.Fatalf("single arm: best=%d q=%d", best, q)
	}
}

func TestBestEmptyArmSet(t *testing.T) {
	best, q := DefaultDistinguisher().Best(nil)
	if best != -1 || q != 0 {
		t.Fatalf("empty arm set: best=%d q=%d, want (-1, 0)", best, q)
	}
}

func TestNormalizedClamps(t *testing.T) {
	d := Distinguisher{Strategy: Sequential, P0: 0, P1: 1}.normalized()
	if d.P0 <= 0 || d.P1 >= 1 || d.P0 >= d.P1 {
		t.Fatalf("normalized rates %v %v", d.P0, d.P1)
	}
	// Inverted calibration falls back to sane defaults.
	inv := Distinguisher{P0: 0.9, P1: 0.1}.normalized()
	if inv.P0 >= inv.P1 {
		t.Fatalf("inverted rates not repaired: %v %v", inv.P0, inv.P1)
	}
}

func TestCalibrate(t *testing.T) {
	r := rng.New(4)
	cal := Calibrate(bernoulliArm(r, 0.05), bernoulliArm(r, 0.8), 400)
	if cal.PNominal > 0.12 || cal.PElevated < 0.7 {
		t.Fatalf("calibration %+v", cal)
	}
	if cal.Queries != 800 {
		t.Fatalf("queries %d", cal.Queries)
	}
	if cal.Separation() < 0.5 {
		t.Fatalf("separation %v", cal.Separation())
	}
	d := cal.Apply(Distinguisher{Strategy: Sequential})
	if d.P0 >= d.P1 {
		t.Fatal("apply did not order the rates")
	}
}

func TestEstimateFailureRate(t *testing.T) {
	r := rng.New(5)
	if p := EstimateFailureRate(bernoulliArm(r, 0.3), 5000); p < 0.25 || p > 0.35 {
		t.Fatalf("estimate %v", p)
	}
	if EstimateFailureRate(nil, 0) != 0 {
		t.Fatal("zero-query estimate")
	}
}

func TestStrategyString(t *testing.T) {
	if FixedSample.String() != "fixed-sample" || Sequential.String() != "sequential" {
		t.Fatal("strings wrong")
	}
}
