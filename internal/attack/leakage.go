package attack

import (
	"repro/internal/tempco"
)

// The paper's §IV-D remark, implemented: "The second cooperating pair
// should be selected at random and hence not with a deterministic
// procedure that iterates over all candidates until the masking
// constraint is met. Otherwise, one exposes the following information
// for all non-selected candidates: rcj != rci."
//
// AnalyzeDeterministicSelectionLeakage turns that observation into a
// ZERO-QUERY attack step: reading the helper data of a device enrolled
// with tempco.DeterministicSelection yields hard XOR constraints between
// cooperating-pair bits before the first oracle query is spent.

// LeakageConstraint is one bit relation extracted from helper data alone.
type LeakageConstraint struct {
	// PairA, PairB index the helper's pair list.
	PairA, PairB int
	// Differ reports r_A != r_B.
	Differ bool
}

// AnalyzeDeterministicSelectionLeakage extracts the §IV-D constraints
// from a temperature-aware helper enrolled with first-fit selection.
//
// For every cooperating pair c whose helper record designates pair ci:
//   - the selected candidate satisfies the masking constraint, giving
//     r_c XOR r_g = r_ci — a three-way constraint the attack framework
//     uses elsewhere; and
//   - every LOWER-INDEXED cooperating pair j that was eligible (valid
//     class, non-intersecting crossover interval) but NOT selected must
//     have failed the constraint: r_j != r_ci. That inequality is the
//     free leakage this function returns.
//
// With RandomSelection the same scan produces constraints that are wrong
// about half the time — the test suite uses that contrast to demonstrate
// why the paper demands randomized selection.
func AnalyzeDeterministicSelectionLeakage(h tempco.Helper) []LeakageConstraint {
	var out []LeakageConstraint
	for _, info := range h.Pairs {
		if info.Class != tempco.Cooperating || info.HelpIdx < 0 {
			continue
		}
		ci := info.HelpIdx
		for j := 0; j < ci; j++ {
			cand := h.Pairs[j]
			if cand.Class != tempco.Cooperating {
				continue
			}
			if intervalsOverlap(info.Tl, info.Th, cand.Tl, cand.Th) {
				continue // ineligible, reveals nothing
			}
			// Eligible but skipped by the first-fit scan: its bit must
			// differ from the selected pair's bit.
			out = append(out, LeakageConstraint{PairA: j, PairB: ci, Differ: true})
		}
	}
	return out
}

func intervalsOverlap(al, ah, bl, bh float64) bool {
	return al <= bh && bl <= ah
}
