// Package attack defines the repository's oracle-agnostic attack
// surface. The paper's Fig. 5 insight is that all four key-recovery
// attacks share one statistical framework; this package completes the
// decoupling by pinning the minimal oracle every attack actually uses —
// read/write the public helper NVM image and observe key-reconstruction
// failures — behind the Target interface, and every attack behind one
// Attack interface with a unified Options/Report shape and a name-keyed
// registry.
//
// Layering:
//
//	Attack (seqpair, tempco, groupbased, masking, chain)
//	   │ Run(ctx, Target, Options) → Report
//	   ▼
//	Target — helperdata.Image read/write + failure oracle + query count
//	   │
//	   ├─ device adapters (in-process simulated devices)
//	   └─ BatchTarget    (bounded worker pool over forked oracles)
//
// Anything that can serve the Target interface — an in-process simulator,
// a lab bench over a serial link, a remote fleet — runs every registered
// attack unchanged.
package attack

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitvec"
	"repro/internal/ecc"
	"repro/internal/helperdata"
	"repro/internal/rng"
)

// Spec is the public datasheet of the device under attack: everything
// the attacker legitimately knows without touching the oracle. The
// helper NVM content itself is NOT part of the spec — attacks read it
// through Target.ReadImage.
type Spec struct {
	// Construction names the deployed scheme; it must match the Name of
	// the attack being run.
	Construction string
	// Rows, Cols give the RO array geometry (row-major index i sits at
	// x = i % Cols, y = i / Cols). Zero when an attack needs no
	// geometry (seqpair, tempco).
	Rows, Cols int
	// Code is the deployed ECC (paper §VI: a public design parameter).
	Code ecc.Code
	// AmbientC is the current operating temperature the oracle runs at.
	AmbientC float64
	// Noise names the silicon noise model the simulated oracle draws
	// its measurement noise from ("stream" or "counter"; empty for
	// non-simulated oracles). Informational — attacks never branch on
	// it; CLIs and reports surface it so transcript goldens are
	// attributable to a model.
	Noise string
}

// Target is the minimal failure oracle shared by all attacks: full
// read/write access to the public helper NVM image, one observable bit
// per reconstruction, and the running query count (the attack-cost
// metric every experiment reports).
type Target interface {
	// Spec returns the public device specification.
	Spec() Spec
	// ReadImage returns the current helper NVM content.
	ReadImage() (*helperdata.Image, error)
	// WriteImage replaces the helper NVM. The device applies its
	// structural sanity checks and rejects malformed images; the
	// paper's attacks pass these checks by design.
	WriteImage(*helperdata.Image) error
	// Query triggers one key reconstruction and reports FAILURE (true =
	// the key-dependent application misbehaved).
	Query() bool
	// Queries returns the number of oracle queries so far.
	Queries() int
}

// KeyBinder is implemented by targets whose observable follows the
// paper's reprogrammed-key scenario: the attacker binds the application
// to a predicted key (data encrypted under it) before querying.
type KeyBinder interface {
	BindKey(key bitvec.Vector)
}

// Forker is implemented by targets that can produce independent oracle
// clones whose measurement noise derives deterministically from seed.
// BatchTarget requires it to pipeline hypothesis arms concurrently.
type Forker interface {
	Fork(seed uint64) (Target, error)
}

// Options is the unified attack configuration.
type Options struct {
	// Dist selects and tunes the hypothesis distinguisher; the zero
	// value gets conservative defaults (see Distinguisher.normalized).
	Dist Distinguisher
	// CalibrationQueries sizes the up-front failure-rate calibration
	// for attacks that calibrate (0 = 24).
	CalibrationQueries int
	// InjectErrors is the common deterministic error offset; 0 means
	// the code's full radius t, the most aggressive choice.
	InjectErrors int
	// PatternAmpMHz is the injected-pattern steepness of the
	// distiller-facing attacks (0 = attack default).
	PatternAmpMHz float64
	// TiltMHz is the secondary gradient of the distiller attacks
	// (0 = attack default).
	TiltMHz float64
	// Src drives the attack's own randomness (codeword draws). Nil
	// means a deterministic per-attack default seed, so two runs with
	// equal Options consume identical attack-side randomness.
	Src *rng.Source
	// QueryBudget caps total oracle queries; 0 means unlimited. When
	// the budget runs out mid-attack, Run returns ErrBudgetExhausted.
	QueryBudget int
	// Progress, when non-nil, receives phase-granular notifications.
	// It is called from the attack's goroutine and must be cheap.
	Progress func(Progress)
}

// source returns the attack-side randomness, defaulting deterministically.
func (o Options) source(defaultSeed uint64) *rng.Source {
	if o.Src != nil {
		return o.Src
	}
	return rng.New(defaultSeed)
}

// Progress is one attack progress notification.
type Progress struct {
	Attack string
	Phase  string
	// Done/Total count phase-specific work items (pairs tested,
	// boundaries swept); Total is 0 when unknown up front.
	Done, Total int
	// Queries is the oracle cost so far.
	Queries int
}

// PhaseStat is the per-phase cost breakdown of a completed attack.
type PhaseStat struct {
	Name    string
	Queries int
	Elapsed time.Duration
}

// Report is the unified attack outcome.
type Report struct {
	// Attack is the registered name of the attack that produced this.
	Attack string
	// Key is the recovered key; empty when the attack recovers only
	// relations (tempco).
	Key bitvec.Vector
	// Ambiguous marks a key recovered only up to an unresolvable
	// complement (seqpair over a code containing the all-ones word).
	Ambiguous bool
	// Queries is the total oracle cost, calibration included.
	Queries int
	// Elapsed is the attack wall time.
	Elapsed time.Duration
	// Phases is the per-phase breakdown, in execution order.
	Phases []PhaseStat
	// Details holds the attack-specific payload: SeqPairDetails,
	// TempCoDetails, GroupBasedDetails, MaskingDetails, ChainDetails.
	Details any
}

// Attack is one registered key-recovery attack.
type Attack interface {
	// Name is the registry key (kebab-case).
	Name() string
	// Description is a one-line human summary.
	Description() string
	// Run executes the attack against the target. Implementations honor
	// ctx cancellation and opts.QueryBudget at query granularity, and
	// leave the target's helper NVM as they found it.
	Run(ctx context.Context, t Target, opts Options) (Report, error)
}

// ErrBudgetExhausted reports that opts.QueryBudget ran out mid-attack.
var ErrBudgetExhausted = errors.New("attack: query budget exhausted")

// Budget meters oracle queries. The zero value and the nil pointer are
// both unlimited. It is safe for concurrent use (batched arms share it).
type Budget struct {
	limited   bool
	remaining atomic.Int64
}

// NewBudget returns a budget of n queries; n <= 0 means unlimited.
func NewBudget(n int) *Budget {
	b := &Budget{}
	if n > 0 {
		b.limited = true
		b.remaining.Store(int64(n))
	}
	return b
}

// Spend reserves n queries, or returns ErrBudgetExhausted without
// spending when fewer remain.
func (b *Budget) Spend(n int) error {
	if b == nil || !b.limited {
		return nil
	}
	for {
		cur := b.remaining.Load()
		if cur < int64(n) {
			return ErrBudgetExhausted
		}
		if b.remaining.CompareAndSwap(cur, cur-int64(n)) {
			return nil
		}
	}
}

// ---------------------------------------------------------- registry --

var (
	regMu    sync.RWMutex
	registry = make(map[string]Attack)
)

// Register adds an attack to the global registry; it panics on an empty
// or duplicate name (programming errors caught at init time).
func Register(a Attack) {
	if a == nil || a.Name() == "" {
		panic("attack: Register with nil attack or empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[a.Name()]; dup {
		panic(fmt.Sprintf("attack: duplicate attack %q", a.Name()))
	}
	registry[a.Name()] = a
}

// Lookup resolves a registered attack by name.
func Lookup(name string) (Attack, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	a, ok := registry[name]
	return a, ok
}

// Names returns the registered attack names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Attacks returns all registered attacks sorted by name.
func Attacks() []Attack {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Attack, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Run dispatches one attack by registry name.
func Run(ctx context.Context, name string, t Target, opts Options) (Report, error) {
	a, ok := Lookup(name)
	if !ok {
		return Report{}, fmt.Errorf("attack: unknown attack %q (have %v)", name, Names())
	}
	return a.Run(ctx, t, opts)
}

// ------------------------------------------------------------ tracer --

// tracer accumulates the Report's phase breakdown and emits progress.
type tracer struct {
	attack  string
	t       Target
	opts    Options
	phases  []PhaseStat
	current string
	start   time.Time
	q0      int
	began   time.Time
}

func newTracer(attackName string, t Target, opts Options) *tracer {
	return &tracer{attack: attackName, t: t, opts: opts, began: time.Now()}
}

// phase closes the current phase (if any) and opens a new one.
func (tr *tracer) phase(name string) {
	tr.close()
	tr.current = name
	tr.start = time.Now()
	tr.q0 = tr.t.Queries()
	tr.step(name, 0, 0)
}

// step emits a progress notification for the current phase.
func (tr *tracer) step(phase string, done, total int) {
	if tr.opts.Progress != nil {
		tr.opts.Progress(Progress{Attack: tr.attack, Phase: phase, Done: done, Total: total, Queries: tr.t.Queries()})
	}
}

func (tr *tracer) close() {
	if tr.current == "" {
		return
	}
	tr.phases = append(tr.phases, PhaseStat{
		Name:    tr.current,
		Queries: tr.t.Queries() - tr.q0,
		Elapsed: time.Since(tr.start),
	})
	tr.current = ""
}

// report finalizes the common Report fields.
func (tr *tracer) report(startQueries int) Report {
	tr.close()
	return Report{
		Attack:  tr.attack,
		Queries: tr.t.Queries() - startQueries,
		Elapsed: time.Since(tr.began),
		Phases:  tr.phases,
	}
}

// binderFor unwraps batch targets and reports whether the underlying
// oracle supports the reprogrammed-key observable.
func binderFor(t Target) bool {
	if bt, ok := t.(*BatchTarget); ok {
		return binderFor(bt.inner)
	}
	_, ok := t.(KeyBinder)
	return ok
}
