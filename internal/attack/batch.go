package attack

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/helperdata"
	"repro/internal/rng"
	"repro/internal/stats"
)

// BatchTarget is the batched concurrent oracle backend: it wraps a
// forkable target and makes the distinguisher evaluate the arms of one
// hypothesis test concurrently, each against an independent oracle fork
// on a bounded worker pool.
//
// Determinism is the design constraint, mirroring internal/campaign:
// the fork evaluating arm a of test number k draws its measurement
// noise from rng.StreamSeed(rng.StreamSeed(seed, k), a) — a pure
// function of (backend seed, test index, arm index) — and every arm
// runs to its own decision with no cross-arm early exit. Results and
// query counts are therefore bit-identical for any Workers value; only
// the wall time changes.
//
// Serial uses of the target (calibration sweeps, single-arm tests,
// direct Query calls) pass through to the wrapped oracle unchanged.
type BatchTarget struct {
	inner   Target
	forker  Forker
	workers int
	seed    uint64
	test    atomic.Uint64
	extra   atomic.Int64 // queries spent on forks
}

// NewBatchTarget wraps a forkable target. workers bounds the arm pool
// (<= 1 still evaluates on forked streams, just serially — useful to
// check the invariance property). The seed pins the backend's noise
// derivation.
func NewBatchTarget(t Target, workers int, seed uint64) (*BatchTarget, error) {
	f, ok := t.(Forker)
	if !ok {
		return nil, fmt.Errorf("attack: %T cannot fork; BatchTarget needs a Forker", t)
	}
	if workers < 1 {
		workers = 1
	}
	return &BatchTarget{inner: t, forker: f, workers: workers, seed: seed}, nil
}

// Spec implements Target.
func (bt *BatchTarget) Spec() Spec { return bt.inner.Spec() }

// ReadImage implements Target.
func (bt *BatchTarget) ReadImage() (*helperdata.Image, error) { return bt.inner.ReadImage() }

// WriteImage implements Target.
func (bt *BatchTarget) WriteImage(im *helperdata.Image) error { return bt.inner.WriteImage(im) }

// Query implements Target (serial pass-through).
func (bt *BatchTarget) Query() bool { return bt.inner.Query() }

// Queries implements Target: the wrapped oracle's count plus everything
// spent on forks.
func (bt *BatchTarget) Queries() int { return bt.inner.Queries() + int(bt.extra.Load()) }

// BindKey forwards the reprogrammed-key binding to the wrapped oracle
// when it supports one (attacks check support via the unwrapped target
// before relying on it).
func (bt *BatchTarget) BindKey(key bitvec.Vector) {
	if kb, ok := bt.inner.(KeyBinder); ok {
		kb.BindKey(key)
	}
}

// armResult is one concurrently evaluated arm's outcome.
type armResult struct {
	accepted bool // Sequential: SPRT accepted H0
	fails    int  // FixedSample (and fallback): failure count
	n        int  // queries spent
	err      error
}

// bestBatched evaluates the arms of one test concurrently. See the
// BatchTarget doc comment for the determinism argument. A budget that
// runs out mid-test aborts the attack (ErrBudgetExhausted), so the
// nondeterministic interleaving of a *failing* run never leaks into a
// completed result.
func (d Distinguisher) bestBatched(ctx context.Context, bt *BatchTarget, hyps []Hypothesis, b *Budget) (int, int, error) {
	d = d.normalized()
	testSeed := rng.StreamSeed(bt.seed, bt.test.Add(1)-1)

	if d.Strategy == Sequential {
		res := bt.evalArms(ctx, testSeed, 0, hyps, b, d.sprtArm)
		total := 0
		best := -1
		for i, r := range res {
			total += r.n
			if r.err != nil {
				return -1, total, r.err
			}
			if r.accepted && best == -1 {
				best = i
			}
		}
		if best >= 0 {
			return best, total, nil
		}
		// No arm accepted at the nominal rate: fixed-sample fallback on
		// fresh forks (arm seeds offset past the SPRT round's).
		fb, extra, err := d.fixedBatched(ctx, bt, testSeed, len(hyps), hyps, b)
		return fb, total + extra, err
	}
	return d.fixedBatched(ctx, bt, testSeed, 0, hyps, b)
}

func (d Distinguisher) fixedBatched(ctx context.Context, bt *BatchTarget, testSeed uint64, armOffset int, hyps []Hypothesis, b *Budget) (int, int, error) {
	res := bt.evalArms(ctx, testSeed, armOffset, hyps, b, d.fixedArm)
	total := 0
	best, bestFails := 0, int(^uint(0)>>1)
	for i, r := range res {
		total += r.n
		if r.err != nil {
			return -1, total, r.err
		}
		if r.fails < bestFails {
			best, bestFails = i, r.fails
		}
	}
	return best, total, nil
}

// sprtArm runs one arm's SPRT to a decision on its private fork. The
// test state lives on the arm's own stack.
func (d Distinguisher) sprtArm(ctx context.Context, arm Arm, b *Budget) armResult {
	s := stats.MakeSPRT(d.P0, d.P1, d.Alpha, d.Beta)
	decision := stats.SPRTContinue
	for decision == stats.SPRTContinue && s.N() < d.MaxQueries {
		if err := queryGate(ctx, b); err != nil {
			return armResult{n: s.N(), err: err}
		}
		decision = s.Observe(arm())
	}
	return armResult{accepted: decision == stats.SPRTAcceptH0, n: s.N()}
}

// fixedArm counts one arm's failures over the fixed per-arm budget.
func (d Distinguisher) fixedArm(ctx context.Context, arm Arm, b *Budget) armResult {
	fails := 0
	for q := 0; q < d.Queries; q++ {
		if err := queryGate(ctx, b); err != nil {
			return armResult{fails: fails, n: q, err: err}
		}
		if arm() {
			fails++
		}
	}
	return armResult{fails: fails, n: d.Queries}
}

// evalArms forks one oracle per arm and evaluates all arms on the
// bounded worker pool. Arm i's fork is seeded by StreamSeed(testSeed,
// armOffset+i), so the full result slice is a pure function of the
// inputs regardless of pool size or scheduling.
func (bt *BatchTarget) evalArms(ctx context.Context, testSeed uint64, armOffset int, hyps []Hypothesis, b *Budget, eval func(context.Context, Arm, *Budget) armResult) []armResult {
	res := make([]armResult, len(hyps))
	sem := make(chan struct{}, bt.workers)
	var wg sync.WaitGroup
	for i, h := range hyps {
		wg.Add(1)
		go func(i int, h Hypothesis) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fork, err := bt.forker.Fork(rng.StreamSeed(testSeed, uint64(armOffset+i)))
			if err != nil {
				res[i] = armResult{err: err}
				return
			}
			res[i] = eval(ctx, bindArm(fork, h), b)
			bt.extra.Add(int64(res[i].n))
		}(i, h)
	}
	wg.Wait()
	return res
}
