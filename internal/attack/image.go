package attack

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/distiller"
	"repro/internal/groupbased"
	"repro/internal/helperdata"
	"repro/internal/pairing"
	"repro/internal/tempco"
)

// This file pins each construction's helper NVM image layout: which
// helperdata sections it uses and how each blob is encoded (via the
// construction packages' own codecs). Attacks and device adapters share
// these functions, so the bytes an attack writes are exactly the bytes
// an adapter parses — the paper's §VII-C demand for a precise storage
// format applies to the attacker's tooling too.

// section reads one named section or fails loudly. The read is zero-copy
// (SectionRO): every consumer below parses the bytes into typed helper
// structs without retaining the slice.
func section(im *helperdata.Image, name string) ([]byte, error) {
	data, ok := im.SectionRO(name)
	if !ok {
		return nil, fmt.Errorf("attack: image lacks section %q (have %v)", name, im.Names())
	}
	return data, nil
}

// offsetFromImage decodes the ECC code-offset section.
func offsetFromImage(im *helperdata.Image) (bitvec.Vector, error) {
	data, err := section(im, helperdata.SectionOffset)
	if err != nil {
		return bitvec.Vector{}, err
	}
	return bitvec.UnmarshalVector(data)
}

// setOffset marshals the offset into a fresh blob the image takes
// ownership of (every composer below feeds SetOwned only blobs it just
// allocated, so no copy is needed).
func setOffset(im *helperdata.Image, offset bitvec.Vector) error {
	data, err := offset.MarshalBinary()
	if err != nil {
		return err
	}
	im.SetOwned(helperdata.SectionOffset, data)
	return nil
}

// --- sequential pairing (LISA) ---

// SeqPairImage composes the LISA helper NVM image: the stored pair list
// and the code-offset redundancy.
func SeqPairImage(pairs pairing.SeqPairHelper, offset bitvec.Vector) (*helperdata.Image, error) {
	im := helperdata.NewImage()
	im.SetOwned(helperdata.SectionSeqPairs, pairs.Marshal())
	if err := setOffset(im, offset); err != nil {
		return nil, err
	}
	return im, nil
}

// SeqPairFromImage decomposes a LISA helper NVM image.
func SeqPairFromImage(im *helperdata.Image) (pairing.SeqPairHelper, bitvec.Vector, error) {
	data, err := section(im, helperdata.SectionSeqPairs)
	if err != nil {
		return pairing.SeqPairHelper{}, bitvec.Vector{}, err
	}
	pairs, err := pairing.UnmarshalSeqPair(data)
	if err != nil {
		return pairing.SeqPairHelper{}, bitvec.Vector{}, err
	}
	offset, err := offsetFromImage(im)
	if err != nil {
		return pairing.SeqPairHelper{}, bitvec.Vector{}, err
	}
	return pairs, offset, nil
}

// --- temperature-aware cooperative ---

// TempCoImage composes the temperature-aware helper NVM image. The
// tempco codec serializes pair records and offset as one blob.
func TempCoImage(h tempco.Helper) (*helperdata.Image, error) {
	im := helperdata.NewImage()
	im.SetOwned(helperdata.SectionTempCo, h.Marshal())
	return im, nil
}

// TempCoFromImage decomposes a temperature-aware helper NVM image.
func TempCoFromImage(im *helperdata.Image) (tempco.Helper, error) {
	data, err := section(im, helperdata.SectionTempCo)
	if err != nil {
		return tempco.Helper{}, err
	}
	return tempco.UnmarshalHelper(data)
}

// --- group-based ---

// GroupBasedImage composes the group-based helper NVM image: distiller
// polynomial, group assignment, and code-offset redundancy.
func GroupBasedImage(h groupbased.Helper) (*helperdata.Image, error) {
	im := helperdata.NewImage()
	im.SetOwned(helperdata.SectionPolynomial, h.Poly.Marshal())
	im.SetOwned(helperdata.SectionGrouping, h.Grouping.Marshal())
	if err := setOffset(im, h.Offset); err != nil {
		return nil, err
	}
	return im, nil
}

// GroupBasedFromImage decomposes a group-based helper NVM image.
func GroupBasedFromImage(im *helperdata.Image) (groupbased.Helper, error) {
	var h groupbased.Helper
	data, err := section(im, helperdata.SectionPolynomial)
	if err != nil {
		return h, err
	}
	if h.Poly, err = distiller.Unmarshal(data); err != nil {
		return h, err
	}
	if data, err = section(im, helperdata.SectionGrouping); err != nil {
		return h, err
	}
	if h.Grouping, err = groupbased.UnmarshalGrouping(data); err != nil {
		return h, err
	}
	h.Offset, err = offsetFromImage(im)
	return h, err
}

// --- distiller + pairing (masking / overlapping chain) ---

// DistillerImage composes the distiller + pairing helper NVM image.
// mask is nil in overlapping-chain mode (no masking section).
func DistillerImage(poly distiller.Poly2D, mask *pairing.MaskingHelper, offset bitvec.Vector) (*helperdata.Image, error) {
	im := helperdata.NewImage()
	im.SetOwned(helperdata.SectionPolynomial, poly.Marshal())
	if mask != nil {
		im.SetOwned(helperdata.SectionMasking, mask.Marshal())
	}
	if err := setOffset(im, offset); err != nil {
		return nil, err
	}
	return im, nil
}

// DistillerFromImage decomposes a distiller + pairing helper NVM image;
// the masking helper is nil when the image carries no masking section.
func DistillerFromImage(im *helperdata.Image) (distiller.Poly2D, *pairing.MaskingHelper, bitvec.Vector, error) {
	data, err := section(im, helperdata.SectionPolynomial)
	if err != nil {
		return distiller.Poly2D{}, nil, bitvec.Vector{}, err
	}
	poly, err := distiller.Unmarshal(data)
	if err != nil {
		return distiller.Poly2D{}, nil, bitvec.Vector{}, err
	}
	var mask *pairing.MaskingHelper
	if raw, ok := im.SectionRO(helperdata.SectionMasking); ok {
		m, err := pairing.UnmarshalMasking(raw)
		if err != nil {
			return distiller.Poly2D{}, nil, bitvec.Vector{}, err
		}
		mask = &m
	}
	offset, err := offsetFromImage(im)
	if err != nil {
		return distiller.Poly2D{}, nil, bitvec.Vector{}, err
	}
	return poly, mask, offset, nil
}
