package attack

import (
	"cmp"
	"context"
	"fmt"
	"slices"

	"repro/internal/bitvec"
	"repro/internal/distiller"
	"repro/internal/ecc"
	"repro/internal/groupbased"
	"repro/internal/helperdata"
	"repro/internal/perm"
	"repro/internal/rng"
)

func init() { Register(groupBasedAttack{}) }

// GroupBasedDetails is the groupbased attack's Report payload.
type GroupBasedDetails struct {
	// Orders[g] is the recovered descending-residual order of original
	// group g in label space (nil when the pairwise relations came out
	// non-transitive, i.e. at least one decision was wrong).
	Orders [][]int
	// Resolved counts groups whose order was recovered.
	Resolved int
}

// groupBasedAttack is the paper's §VI-C full key recovery against a
// deployed group-based RO PUF.
//
// For every pair of oscillators (a, b) sharing an ORIGINAL group, the
// attacker superimposes onto the enrolled distiller polynomial a steep
// plane whose level lines run through a and b (the generalization of the
// Fig. 6a quadratic: a and b receive identical pattern values, everyone
// else is dominated by the gradient), repartitions the array into
// attacker-chosen groups ({a, b} plus forced pairs across distinct level
// lines, leftovers as singletons), recomputes the code-offset redundancy
// for both hypotheses about the one undetermined bit — with the common
// error offset folded in — and compares failure rates. The recovered
// pairwise relations reassemble each original group's frequency order
// and hence the full key.
type groupBasedAttack struct{}

func (groupBasedAttack) Name() string { return "groupbased" }
func (groupBasedAttack) Description() string {
	return "§VI-C group-based full key recovery"
}

func (a groupBasedAttack) Run(ctx context.Context, t Target, opts Options) (Report, error) {
	spec := t.Spec()
	if spec.Rows <= 0 || spec.Cols <= 0 {
		return Report{}, fmt.Errorf("attack: groupbased needs array geometry in the spec, got %dx%d", spec.Rows, spec.Cols)
	}
	if !binderFor(t) {
		return Report{}, fmt.Errorf("attack: groupbased needs a reprogrammed-key target (KeyBinder)")
	}
	originalImage, err := t.ReadImage()
	if err != nil {
		return Report{}, err
	}
	original, err := GroupBasedFromImage(originalImage)
	if err != nil {
		return Report{}, err
	}
	// The image is untrusted input: its group assignment must cover the
	// spec's array exactly or the geometry indexing below would be out
	// of bounds.
	if got, want := len(original.Grouping.Assign), spec.Rows*spec.Cols; got != want {
		return Report{}, fmt.Errorf("attack: grouping covers %d oscillators, array has %d", got, want)
	}
	defer func() { _ = t.WriteImage(originalImage) }()

	if opts.PatternAmpMHz <= 0 {
		opts.PatternAmpMHz = 1000
	}
	src := opts.source(0xa77ac4)
	tcap := spec.Code.T()
	if opts.InjectErrors <= 0 || opts.InjectErrors > tcap {
		opts.InjectErrors = tcap
	}
	budget := NewBudget(opts.QueryBudget)
	startQueries := t.Queries()
	tr := newTracer(a.Name(), t, opts)

	tr.phase("pairwise")
	members := original.Grouping.Members()
	totalPairs := 0
	for _, group := range members {
		totalPairs += len(group) * (len(group) - 1) / 2
	}
	// rel[a][b] = true when residual(b) > residual(a); keyed a < b.
	rel := make(map[[2]int]bool)
	done := 0
	var sc gbScratch
	for _, group := range members {
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				a, b := group[i], group[j]
				bit, err := decidePairOrder(ctx, t, spec, original, opts, src, budget, &sc, a, b)
				if err != nil {
					return Report{}, fmt.Errorf("attack: pair (%d,%d): %w", a, b, err)
				}
				rel[[2]int{a, b}] = bit
				done++
				tr.step("pairwise", done, totalPairs)
			}
		}
	}

	// Reassemble each group's order from the pairwise tournament.
	tr.phase("assemble")
	det := GroupBasedDetails{Orders: make([][]int, len(members))}
	allResolved := true
	for g, group := range members {
		if len(group) < 2 {
			det.Orders[g] = []int{}
			if len(group) == 1 {
				det.Orders[g] = []int{0}
			}
			det.Resolved++
			continue
		}
		order, ok := orderFromRelations(group, rel)
		if !ok {
			allResolved = false
			continue
		}
		det.Orders[g] = order
		det.Resolved++
	}
	var key bitvec.Vector
	if allResolved {
		// Offline polish: the original offset binds the enrolled Kendall
		// stream; decoding our recovered stream against it repairs
		// noise-marginal order decisions (up to t per block) for free.
		stream := bitvec.New(0)
		for g, group := range members {
			if len(group) >= 2 {
				stream = stream.Concat(perm.KendallEncode(det.Orders[g]))
			}
		}
		stream = polishWithOriginalOffset(stream, original.Offset, spec.Code)
		if packed, err := groupbased.PackKey(&original.Grouping, stream); err == nil {
			key = packed
			// Re-derive the polished orders for reporting.
			at := 0
			for g, group := range members {
				n := len(group)
				if n < 2 {
					continue
				}
				bits := perm.KendallBits(n)
				if order, err := perm.KendallDecode(stream.Slice(at, at+bits), n); err == nil {
					det.Orders[g] = order
				}
				at += bits
			}
		} else {
			// Packing failed after polish (should not happen with valid
			// orders); fall back to the unpolished assembly.
			key = bitvec.New(0)
			for g, group := range members {
				if len(group) >= 2 {
					key = key.Concat(perm.CompactEncode(det.Orders[g]))
				}
			}
		}
	}

	rep := tr.report(startQueries)
	rep.Key = key
	rep.Details = det
	return rep, nil
}

// gbScratch carries the reusable buffers of one groupbased Run. Every
// pair decision rebuilds the same shapes of intermediate state —
// partition, hypothesis streams, padded codewords, crafted offsets,
// marshaled blobs — so the run allocates them once and the steady-state
// pair loop reuses them. Hypothesis images are the exception: the
// adapters' write/parse caches key on image identity, so every arm gets
// a fresh Image. Its blobs may still come from the pools below, because
// an arm's image is never re-installed after its pair's decision — the
// invariant that makes blob reuse safe.
type gbScratch struct {
	levels    []int
	ros       []int
	classes   []gbClass
	assign    []int
	predicted []bool
	polyBeta  []float64
	stream    bitvec.Vector
	injected  bitvec.Vector
	padded    bitvec.Vector
	msg       bitvec.Vector
	offsetW   bitvec.Vector
	predKey   [2]bitvec.Vector
	offBlob   [2][]byte
	blocks    int
	block     *ecc.Block
	ws        ecc.Workspace
	perm      perm.Scratch
}

// gbClass is one level class of the rainbow matching.
type gbClass struct {
	level int
	ros   []int
}

// vec returns *v resized to n bits, reallocating only on length change.
// Contents are unspecified; callers overwrite the buffer fully.
func scratchVec(v *bitvec.Vector, n int) bitvec.Vector {
	if v.Len() != n {
		*v = bitvec.New(n)
	}
	return *v
}

// resizeInts returns *buf resized to n elements, reallocating only on
// growth. Contents are unspecified.
func resizeInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// resizeBools is resizeInts for boolean flags.
func resizeBools(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// decidePairOrder recovers [residual(b) > residual(a)] for one target
// pair via the two-hypothesis helper manipulation.
func decidePairOrder(ctx context.Context, t Target, spec Spec, original groupbased.Helper, opts Options, src *rng.Source, budget *Budget, sc *gbScratch, a, b int) (bool, error) {
	cols, rows := spec.Cols, spec.Rows
	n := rows * cols
	xa, ya := a%cols, a/cols
	xb, yb := b%cols, b/cols

	pattern, levels := levelPlane(sc, cols, rows, xa, ya, xb, yb, opts.PatternAmpMHz)
	designPartition(sc, n, a, b, levels)

	// The partition covers every oscillator exactly once by
	// construction, so the legacy PairsToGrouping validation cannot
	// fire; the grouping borrows the scratch assignment directly.
	grouping := groupbased.Grouping{Assign: sc.assign}
	// The superposition reuses the scratch coefficient buffer; the
	// original enrollment polynomial is only read.
	poly := original.Poly.AddInto(pattern, sc.polyBeta)
	sc.polyBeta = poly.Beta

	// Build the predicted Kendall stream. Group 0 is the target pair,
	// its bit is the hypothesis; groups follow in id order, one bit per
	// two-member group, no bits for singletons. The polynomial and
	// grouping blobs are shared by both arm images (read-only once set).
	streamLen := groupbased.StreamLen(&grouping)
	members := grouping.Members()
	polyBlob := poly.Marshal()
	groupBlob := grouping.Marshal()
	makeArm := func(hyp int, hypBit bool) (Hypothesis, error) {
		stream := scratchVec(&sc.stream, streamLen)
		at := 0
		for id, g := range members {
			if len(g) < 2 {
				continue
			}
			if id == 0 {
				stream.Set(at, hypBit)
			} else {
				stream.Set(at, sc.predicted[id])
			}
			at++
		}
		// Common offset: flip InjectErrors forced bits inside the
		// target bit's ECC block (positions 1.. within block 0).
		injected := scratchVec(&sc.injected, streamLen)
		stream.CopyInto(injected)
		count := 0
		for pos := 1; pos < min(spec.Code.N(), streamLen) && count < opts.InjectErrors; pos++ {
			injected.Flip(pos)
			count++
		}
		if count < opts.InjectErrors {
			return nil, fmt.Errorf("attack: only %d injectable bits in block", count)
		}
		padLen := paddedLen(streamLen, spec.Code)
		padded := scratchVec(&sc.padded, padLen)
		padded.Zero()
		padded.PutAt(0, injected)
		blocks := padLen / spec.Code.N()
		if sc.block == nil || sc.blocks != blocks {
			sc.block = ecc.NewBlock(spec.Code, blocks)
			sc.blocks = blocks
		}
		msg := scratchVec(&sc.msg, sc.block.K())
		for i := 0; i < msg.Len(); i++ {
			msg.Set(i, src.Bool())
		}
		offsetW := scratchVec(&sc.offsetW, padLen)
		ecc.OffsetForInto(sc.block, padded, msg, &sc.ws, offsetW)

		// The application key the attacker predicts for this arm: the
		// code-offset recovers the stream the offset was GENERATED for,
		// i.e. the injected stream — the device's key is its packing.
		// (All attacker groups have at most two members, so any bit
		// pattern is a valid Kendall coding and packing cannot fail.)
		// Targets copy the key at BindKey, so the per-arm buffer can be
		// reused across pairs.
		keyLen := groupbased.KeyLen(&grouping)
		if sc.predKey[hyp].Len() != keyLen {
			sc.predKey[hyp] = bitvec.New(keyLen)
		}
		if err := groupbased.PackKeyInto(&grouping, padded, &sc.perm, sc.predKey[hyp]); err != nil {
			return nil, err
		}
		blob, err := offsetW.AppendBinary(sc.offBlob[hyp][:0])
		if err != nil {
			return nil, err
		}
		sc.offBlob[hyp] = blob
		im := helperdata.NewImage()
		im.SetOwned(helperdata.SectionPolynomial, polyBlob)
		im.SetOwned(helperdata.SectionGrouping, groupBlob)
		im.SetOwned(helperdata.SectionOffset, blob)
		return bindingHypothesis(im, sc.predKey[hyp]), nil
	}

	arm0, err := makeArm(0, false)
	if err != nil {
		return false, err
	}
	arm1, err := makeArm(1, true)
	if err != nil {
		return false, err
	}
	best, _, err := opts.Dist.BestHypotheses(ctx, t, []Hypothesis{arm0, arm1}, budget)
	if err != nil {
		return false, err
	}
	if best < 0 {
		return false, ErrNoArms
	}
	return best == 1, nil
}

// levelPlane returns the steep plane whose level lines pass through both
// targets, together with the integer level key of every oscillator
// (equal keys = equal pattern values, exactly). The level slice lives in
// the run scratch.
func levelPlane(sc *gbScratch, cols, rows, xa, ya, xb, yb int, amp float64) (distiller.Poly2D, []int) {
	pattern := distiller.PerpendicularPlane(xa, ya, xb, yb, amp)
	nx, ny := -(yb - ya), xb-xa
	levels := resizeInts(&sc.levels, rows*cols)
	for i := range levels {
		x, y := i%cols, i/cols
		levels[i] = nx*x + ny*y
	}
	return pattern, levels
}

// designPartition builds the attacker's partition straight into the run
// scratch: group 0 is the target pair; remaining oscillators are paired
// across DISTINCT level lines so every forced pair's order is dominated
// by the pattern; oscillators left over become singletons. The group ids
// land in sc.assign and sc.predicted[id] gives the forced Kendall bit of
// two-member group id: with labels ordered by ascending RO index, the
// bit is 1 when the higher-index member has the LOWER pattern level (its
// distilled residual is larger). Ids are issued in the same order as the
// legacy group-list construction, so the partition is bit-identical.
func designPartition(sc *gbScratch, n, a, b int, levels []int) {
	assign := resizeInts(&sc.assign, n)
	// predicted[id] is written for every two-member group id before it
	// is read, so stale entries from the previous pair are never seen.
	predicted := resizeBools(&sc.predicted, n)
	assign[a], assign[b] = 0, 0

	// Bucket the remaining oscillators by level: one stable sort over
	// (level, ascending index) yields the same per-level lists as a
	// map of appends, without the per-call map churn of this inner-loop
	// helper (one call per recovered key bit decision).
	ros := sc.ros[:0]
	for i := 0; i < n; i++ {
		if i != a && i != b {
			ros = append(ros, i)
		}
	}
	sc.ros = ros
	slices.SortStableFunc(ros, func(x, y int) int { return cmp.Compare(levels[x], levels[y]) })

	// Repeatedly pair one member from the two currently largest level
	// classes; this admits a perfect rainbow matching whenever no class
	// holds more than half the remainder, and gracefully leaves
	// singletons otherwise.
	classes := sc.classes[:0]
	for at := 0; at < len(ros); {
		lvl := levels[ros[at]]
		end := at
		for end < len(ros) && levels[ros[end]] == lvl {
			end++
		}
		classes = append(classes, gbClass{level: lvl, ros: ros[at:end:end]})
		at = end
	}
	sc.classes = classes
	largestTwo := func() (int, int) {
		i1, i2 := -1, -1
		for i := range classes {
			if len(classes[i].ros) == 0 {
				continue
			}
			if i1 == -1 || len(classes[i].ros) > len(classes[i1].ros) {
				i2 = i1
				i1 = i
			} else if i2 == -1 || len(classes[i].ros) > len(classes[i2].ros) {
				i2 = i
			}
		}
		return i1, i2
	}
	id := 1
	for {
		i1, i2 := largestTwo()
		if i1 == -1 || i2 == -1 {
			break
		}
		c1, c2 := &classes[i1], &classes[i2]
		ro1 := c1.ros[len(c1.ros)-1]
		ro2 := c2.ros[len(c2.ros)-1]
		c1.ros = c1.ros[:len(c1.ros)-1]
		c2.ros = c2.ros[:len(c2.ros)-1]
		assign[ro1], assign[ro2] = id, id
		// Canonical label order is ascending RO index; label B (the
		// higher index) precedes when its pattern value is lower.
		low, high := ro1, ro2
		if low > high {
			low, high = high, low
		}
		predicted[id] = levels[high] < levels[low]
		id++
	}
	// Leftovers become singleton groups.
	for ci := range classes {
		for _, ro := range classes[ci].ros {
			assign[ro] = id
			id++
		}
	}
}

// orderFromRelations reconstructs a group's descending order (in label
// space) from pairwise relations; ok=false when the tournament is not
// transitive.
func orderFromRelations(group []int, rel map[[2]int]bool) ([]int, bool) {
	n := len(group)
	wins := make([]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := group[i], group[j]
			// rel = residual(b) > residual(a)
			if rel[[2]int{a, b}] {
				wins[j]++
			} else {
				wins[i]++
			}
		}
	}
	order := make([]int, n)
	seen := make([]bool, n)
	for label, w := range wins {
		pos := n - 1 - w
		if pos < 0 || pos >= n || seen[pos] {
			return nil, false
		}
		seen[pos] = true
		order[pos] = label
	}
	return order, true
}

// polishWithOriginalOffset exploits the device's ORIGINAL code-offset
// helper as a free offline oracle: it binds the enrolled response, so
// decoding the recovered key against it corrects any residual
// majority-vs-enrollment discrepancies on noise-marginal bits (up to t
// per block) without a single extra device query.
func polishWithOriginalOffset(key, offset bitvec.Vector, code ecc.Code) bitvec.Vector {
	if offset.Len() == 0 || offset.Len()%code.N() != 0 || key.Len() > offset.Len() {
		return key
	}
	padded := key.Concat(bitvec.New(offset.Len() - key.Len()))
	block := ecc.NewBlock(code, offset.Len()/code.N())
	if corrected, _, ok := ecc.Reproduce(block, ecc.Offset{W: offset}, padded); ok {
		return corrected.Slice(0, key.Len())
	}
	return key
}

func paddedLen(streamLen int, code ecc.Code) int {
	n := code.N()
	blocks := (streamLen + n - 1) / n
	if blocks == 0 {
		blocks = 1
	}
	return blocks * n
}
