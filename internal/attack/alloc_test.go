package attack

import (
	"context"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/device"
	"repro/internal/ecc"
	"repro/internal/rng"
)

// Attack-level allocation fences, complementing the device-level ones in
// internal/device: PR 3 made a single App() allocation-free; this PR
// extends the scratch-buffer contract up through the attack layer, and
// these tests keep it from regressing silently.
//
// Two kinds of pins:
//
//   - Steady-state arm evaluation: once an arm's image has been
//     installed and parsed, every further (re-install, bind, query)
//     round of its SPRT run must stay allocation-free — the write cache
//     recognizes the identical image, the bound key is copied into a
//     device-owned buffer, and the reconstruction runs in device
//     scratch.
//
//   - Whole-run ceilings: enroll + Run on a fixed seed allocates a
//     deterministic amount; the budgets below sit ~40% above measured
//     values and far under the pre-scratch counts (5-15x higher), so a
//     scratch-path regression trips long before it shows up in
//     BENCH_attacks.json.

func maskingDevice(t testing.TB, seed uint64) *device.DistillerPairDevice {
	t.Helper()
	d, err := device.EnrollDistillerPair(device.DistillerPairParams{
		Rows: 4, Cols: 10,
		Degree: 2, Mode: device.MaskedChain, K: 5,
		Code:       ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
		EnrollReps: 25,
	}, rng.New(seed), rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// armRoundAllocBudget bounds one steady-state (install, bind, query)
// round. The paths are designed to allocate zero; the slack tolerates
// runtime bookkeeping noise, not real per-query work.
const armRoundAllocBudget = 2

// steadyArmAllocs measures the steady state of an arm's query loop:
// re-install the SAME image, re-bind a fixed predicted key (on
// KeyBinder targets), query once.
func steadyArmAllocs(t *testing.T, tgt Target) float64 {
	t.Helper()
	im, err := tgt.ReadImage()
	if err != nil {
		t.Fatal(err)
	}
	kb, _ := tgt.(KeyBinder)
	predKey := bitvec.Ones(16)
	round := func() {
		if err := tgt.WriteImage(im); err != nil {
			t.Fatal(err)
		}
		if kb != nil {
			// The value is irrelevant; the copy path is what's measured.
			kb.BindKey(predKey)
		}
		tgt.Query()
	}
	// Warm the adapter caches and grow every scratch buffer.
	for i := 0; i < 3; i++ {
		round()
	}
	return testing.AllocsPerRun(50, round)
}

func TestArmEvaluationAllocationsGroupBased(t *testing.T) {
	tgt := NewGroupBasedTarget(groupBasedDevice(t, 42))
	if got := steadyArmAllocs(t, tgt); got > armRoundAllocBudget {
		t.Fatalf("groupbased arm round allocates %.1f/op, budget %d", got, armRoundAllocBudget)
	}
}

func TestArmEvaluationAllocationsMasking(t *testing.T) {
	tgt := NewDistillerTarget(maskingDevice(t, 42))
	if got := steadyArmAllocs(t, tgt); got > armRoundAllocBudget {
		t.Fatalf("masking arm round allocates %.1f/op, budget %d", got, armRoundAllocBudget)
	}
}

func TestArmEvaluationAllocationsChain(t *testing.T) {
	tgt := NewDistillerTarget(chainDevice(t, 42))
	if got := steadyArmAllocs(t, tgt); got > armRoundAllocBudget {
		t.Fatalf("chain arm round allocates %.1f/op, budget %d", got, armRoundAllocBudget)
	}
}

// runAllocs measures one full enroll + Run cycle (both deterministic
// from the seed, so repetitions allocate identically).
func runAllocs(t *testing.T, f func() Target, name string) float64 {
	t.Helper()
	return testing.AllocsPerRun(3, func() {
		tgt := f()
		if _, err := Run(context.Background(), name, tgt, Options{Dist: DefaultDistinguisher()}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRunAllocationCeilingGroupBased(t *testing.T) {
	got := runAllocs(t, func() Target { return NewGroupBasedTarget(groupBasedDevice(t, 9)) }, "groupbased")
	// Pre-scratch: ~13,000 allocs per run. Measured now: ~2,300.
	if got > 3300 {
		t.Fatalf("groupbased enroll+run allocates %.0f, ceiling 3300", got)
	}
}

func TestRunAllocationCeilingMasking(t *testing.T) {
	got := runAllocs(t, func() Target { return NewDistillerTarget(maskingDevice(t, 11)) }, "masking")
	// Pre-scratch: ~1,850 allocs per run. Measured now: ~550.
	if got > 800 {
		t.Fatalf("masking enroll+run allocates %.0f, ceiling 800", got)
	}
}

func TestRunAllocationCeilingChain(t *testing.T) {
	got := runAllocs(t, func() Target { return NewDistillerTarget(chainDevice(t, 13)) }, "chain")
	// Pre-scratch: ~6,000 allocs per run. Measured now: ~950.
	if got > 1400 {
		t.Fatalf("chain enroll+run allocates %.0f, ceiling 1400", got)
	}
}
