// Package perm implements the permutation codings of the group-based RO
// PUF (Table I of the paper): the compact coding, which is the
// lexicographic rank of the frequency order in ceil(log2(n!)) bits, and
// the Kendall coding, which spends one bit per RO pair so that a single
// flip of neighboring frequencies changes exactly one bit.
//
// An "order" throughout this package is a permutation o of {0..n-1} where
// o[k] is the index of the RO holding position k when the group is sorted
// by descending frequency. For the paper's four-RO example the labels
// A, B, C, D map to indices 0..3; the order ABCD is [0 1 2 3].
package perm

import (
	"fmt"
	"math"

	"repro/internal/bitvec"
)

// Log2Factorial returns log2(n!), the entropy in bits of a uniformly
// random order of n elements (the paper's log2(N!) and sum log2(|Gj|!)).
func Log2Factorial(n int) float64 {
	var s float64
	for i := 2; i <= n; i++ {
		s += math.Log2(float64(i))
	}
	return s
}

// compactBitsTable memoizes CompactBits for small n: the group decoders
// call it once per group per reconstruction, and recomputing a log2
// summation there was a measurable slice of the group-based oracle
// query. Entries are produced by the exact formula below, so the table
// is an equivalence, not an approximation.
var compactBitsTable = func() [65]int {
	var t [65]int
	for n := range t {
		t[n] = int(math.Ceil(Log2Factorial(n) - 1e-9))
	}
	return t
}()

// CompactBits returns ceil(log2(n!)), the length of the compact coding.
func CompactBits(n int) int {
	if n >= 0 && n < len(compactBitsTable) {
		return compactBitsTable[n]
	}
	return int(math.Ceil(Log2Factorial(n) - 1e-9))
}

// KendallBits returns n(n-1)/2, the length of the Kendall coding.
func KendallBits(n int) int { return n * (n - 1) / 2 }

// validOrder panics unless o is a permutation of {0..n-1}; coding a
// malformed order is a programming error.
func validOrder(o []int) {
	seen := make([]bool, len(o))
	for _, v := range o {
		if v < 0 || v >= len(o) || seen[v] {
			panic(fmt.Sprintf("perm: %v is not a permutation", o))
		}
		seen[v] = true
	}
}

// Rank returns the lexicographic rank of order o among all permutations
// of its length, via the Lehmer code. Rank fits in uint64 for n <= 20.
func Rank(o []int) uint64 {
	validOrder(o)
	n := len(o)
	if n > 20 {
		panic("perm: rank overflow beyond n=20")
	}
	var rank uint64
	for i := 0; i < n; i++ {
		smaller := 0
		for j := i + 1; j < n; j++ {
			if o[j] < o[i] {
				smaller++
			}
		}
		rank = rank*uint64(n-i) + uint64(smaller)
	}
	// The loop above multiplies by falling factorials in the right
	// sequence: rank = sum lehmer[i] * (n-1-i)!.
	return rank
}

// Unrank is the inverse of Rank for permutations of length n.
func Unrank(rank uint64, n int) []int {
	if n > 20 {
		panic("perm: unrank overflow beyond n=20")
	}
	// Factorial number system digits.
	digits := make([]uint64, n)
	for i := n; i >= 1; i-- {
		digits[i-1] = rank % uint64(n-i+1)
		rank /= uint64(n - i + 1)
	}
	// digits[i] counts how many unused elements are smaller.
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		d := int(digits[i])
		out[i] = avail[d]
		avail = append(avail[:d], avail[d+1:]...)
	}
	return out
}

// CompactEncode returns the compact coding of order o: its lexicographic
// rank written big-endian in CompactBits(len(o)) bits, exactly as in the
// second column of the paper's Table I.
func CompactEncode(o []int) bitvec.Vector {
	r := Rank(o)
	bits := CompactBits(len(o))
	out := bitvec.New(bits)
	for i := 0; i < bits; i++ {
		if r>>uint(bits-1-i)&1 == 1 {
			out.Set(i, true)
		}
	}
	return out
}

// CompactDecode inverts CompactEncode for permutations of length n. It
// returns an error when the encoded rank is out of range (n! is not a
// power of two, so some bit patterns are invalid — the paper's "many bit
// vectors are never used" remark about coding non-uniformity).
func CompactDecode(v bitvec.Vector, n int) ([]int, error) {
	if v.Len() != CompactBits(n) {
		return nil, fmt.Errorf("perm: compact coding length %d, want %d", v.Len(), CompactBits(n))
	}
	var r uint64
	for i := 0; i < v.Len(); i++ {
		r <<= 1
		if v.Get(i) {
			r |= 1
		}
	}
	var fact uint64 = 1
	for i := 2; i <= n; i++ {
		fact *= uint64(i)
	}
	if r >= fact {
		return nil, fmt.Errorf("perm: rank %d out of range for n=%d", r, n)
	}
	return Unrank(r, n), nil
}

// KendallEncode returns the Kendall coding of order o: one bit per
// unordered pair (i, j) with i < j in label order, listed
// lexicographically ((0,1), (0,2), ..., (n-2,n-1)); the bit is 1 exactly
// when label j precedes label i in the order (the pair is discordant with
// label order). This reproduces the third column of Table I.
func KendallEncode(o []int) bitvec.Vector {
	validOrder(o)
	n := len(o)
	pos := make([]int, n)
	for p, label := range o {
		pos[label] = p
	}
	out := bitvec.New(KendallBits(n))
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pos[j] < pos[i] {
				out.Set(k, true)
			}
			k++
		}
	}
	return out
}

// KendallDecode reconstructs the order from a Kendall coding. Not every
// bit pattern is a valid coding (the pairwise "who precedes whom"
// tournament must be transitive); invalid patterns yield an error. This
// non-uniformity is why the group-based construction needs the entropy
// packing step.
func KendallDecode(v bitvec.Vector, n int) ([]int, error) {
	if v.Len() != KendallBits(n) {
		return nil, fmt.Errorf("perm: kendall coding length %d, want %d", v.Len(), KendallBits(n))
	}
	// wins[i] = number of labels that label i precedes. In a total
	// order these are distinct values n-1 .. 0.
	wins := make([]int, n)
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if v.Get(k) {
				wins[j]++
			} else {
				wins[i]++
			}
			k++
		}
	}
	order := make([]int, n)
	seen := make([]bool, n)
	for label, w := range wins {
		p := n - 1 - w
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("perm: kendall coding %s is not transitive", v)
		}
		seen[p] = true
		order[p] = label
	}
	// A consistent wins vector does not by itself guarantee every pair
	// bit agrees with the reconstructed order; verify.
	if !KendallEncode(order).Equal(v) {
		return nil, fmt.Errorf("perm: kendall coding %s is inconsistent", v)
	}
	return order, nil
}

// Scratch holds the reusable buffers of the allocation-free coding
// variants (OrderInto, KendallEncodeAt, KendallDecodeAt,
// CompactEncodeAt). A zero Scratch is ready; buffers grow to the largest
// group seen and are reused afterwards. Not safe for concurrent use.
type Scratch struct {
	order []int
	pos   []int
	wins  []int
	seen  []bool
}

// grow resizes every buffer to n elements, reallocating only on growth.
func (s *Scratch) grow(n int) {
	if cap(s.order) < n {
		s.order = make([]int, n)
		s.pos = make([]int, n)
		s.wins = make([]int, n)
		s.seen = make([]bool, n)
	}
	s.order = s.order[:n]
	s.pos = s.pos[:n]
	s.wins = s.wins[:n]
	s.seen = s.seen[:n]
}

// OrderInto is OrderOf into the scratch's order buffer; values is only
// read. The returned slice is valid until the next scratch-using call.
func (s *Scratch) OrderInto(values []float64) []int {
	s.grow(len(values))
	o := s.order
	for i := range o {
		o[i] = i
	}
	for i := 1; i < len(o); i++ {
		for j := i; j > 0; j-- {
			vi, vj := values[o[j]], values[o[j-1]]
			if vi > vj || (vi == vj && o[j] < o[j-1]) {
				o[j], o[j-1] = o[j-1], o[j]
			} else {
				break
			}
		}
	}
	return o
}

// KendallEncodeAt writes the Kendall coding of order o into dst starting
// at bit offset at, overwriting KendallBits(len(o)) bits. The caller
// guarantees o is a valid permutation (it skips OrderOf-style
// validation); output bits match KendallEncode exactly.
func (s *Scratch) KendallEncodeAt(dst bitvec.Vector, at int, o []int) {
	s.grow(len(o))
	pos := s.pos
	for p, label := range o {
		pos[label] = p
	}
	k := at
	for i := 0; i < len(o); i++ {
		for j := i + 1; j < len(o); j++ {
			dst.Set(k, pos[j] < pos[i])
			k++
		}
	}
}

// KendallDecodeAt reads KendallBits(n) bits of v starting at offset at
// and reconstructs the order, mirroring KendallDecode (including the
// transitivity and per-pair consistency checks). The returned slice is
// scratch-owned and valid until the next scratch-using call.
func (s *Scratch) KendallDecodeAt(v bitvec.Vector, at, n int) ([]int, error) {
	s.grow(n)
	wins, order, seen, pos := s.wins, s.order, s.seen, s.pos
	for i := range wins {
		wins[i] = 0
		seen[i] = false
	}
	k := at
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if v.Get(k) {
				wins[j]++
			} else {
				wins[i]++
			}
			k++
		}
	}
	for label, w := range wins {
		p := n - 1 - w
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("perm: kendall coding %s is not transitive", v.Slice(at, at+KendallBits(n)))
		}
		seen[p] = true
		order[p] = label
	}
	// Verify every pair bit against the reconstructed order, the inline
	// equivalent of KendallEncode(order).Equal(v-slice).
	for p, label := range order {
		pos[label] = p
	}
	k = at
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if v.Get(k) != (pos[j] < pos[i]) {
				return nil, fmt.Errorf("perm: kendall coding %s is inconsistent", v.Slice(at, at+KendallBits(n)))
			}
			k++
		}
	}
	return order, nil
}

// CompactEncodeAt writes the compact coding of order o into dst starting
// at bit offset at, overwriting CompactBits(len(o)) bits. The caller
// guarantees o is a valid permutation; output bits match CompactEncode.
func (s *Scratch) CompactEncodeAt(dst bitvec.Vector, at int, o []int) {
	n := len(o)
	if n > 20 {
		panic("perm: rank overflow beyond n=20")
	}
	var rank uint64
	for i := 0; i < n; i++ {
		smaller := 0
		for j := i + 1; j < n; j++ {
			if o[j] < o[i] {
				smaller++
			}
		}
		rank = rank*uint64(n-i) + uint64(smaller)
	}
	bits := CompactBits(n)
	for i := 0; i < bits; i++ {
		dst.Set(at+i, rank>>uint(bits-1-i)&1 == 1)
	}
}

// KendallDistance returns the Kendall tau distance between two orders:
// the number of pairwise disagreements, equal to the Hamming distance of
// their Kendall codings and to the minimum number of adjacent flips
// transforming one into the other. The paper's reliability argument rests
// on this metric: a single neighbor flip costs exactly one coding bit.
func KendallDistance(a, b []int) int {
	if len(a) != len(b) {
		panic("perm: kendall distance of different-length orders")
	}
	return KendallEncode(a).HammingDistance(KendallEncode(b))
}

// OrderOf returns the descending-frequency order of values: element 0 of
// the result is the index of the largest value. Ties break toward the
// lower index, mirroring a hardware comparator that must output
// something when counter values are equal (the paper's ∆f = 0 bias
// remark).
func OrderOf(values []float64) []int {
	n := len(values)
	o := make([]int, n)
	for i := range o {
		o[i] = i
	}
	// Insertion sort keeps the tie-break deterministic and is fine for
	// the small group sizes in play.
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			vi, vj := values[o[j]], values[o[j-1]]
			if vi > vj || (vi == vj && o[j] < o[j-1]) {
				o[j], o[j-1] = o[j-1], o[j]
			} else {
				break
			}
		}
	}
	return o
}

// AllOrders enumerates every permutation of {0..n-1} in lexicographic
// order. Intended for the small n of Table I; panics beyond n = 10.
func AllOrders(n int) [][]int {
	if n > 10 {
		panic("perm: AllOrders beyond n=10")
	}
	total := 1
	for i := 2; i <= n; i++ {
		total *= i
	}
	out := make([][]int, 0, total)
	for r := uint64(0); r < uint64(total); r++ {
		out = append(out, Unrank(r, n))
	}
	return out
}
