package perm

import (
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

// tableI is the paper's Table I verbatim: order, compact coding, Kendall
// coding for a group of four ROs labeled A..D.
var tableI = []struct {
	order   string
	compact string
	kendall string
}{
	{"ABCD", "00000", "000000"},
	{"ABDC", "00001", "000001"},
	{"ACBD", "00010", "000100"},
	{"ACDB", "00011", "000110"},
	{"ADBC", "00100", "000011"},
	{"ADCB", "00101", "000111"},
	{"BACD", "00110", "100000"},
	{"BADC", "00111", "100001"},
	{"BCAD", "01000", "110000"},
	{"BCDA", "01001", "111000"},
	{"BDAC", "01010", "101001"},
	{"BDCA", "01011", "111001"},
	{"CABD", "01100", "010100"},
	{"CADB", "01101", "010110"},
	{"CBAD", "01110", "110100"},
	{"CBDA", "01111", "111100"},
	{"CDAB", "10000", "011110"},
	{"CDBA", "10001", "111110"},
	{"DABC", "10010", "001011"},
	{"DACB", "10011", "001111"},
	{"DBAC", "10100", "101011"},
	{"DBCA", "10101", "111011"},
	{"DCAB", "10110", "011111"},
	{"DCBA", "10111", "111111"},
}

func orderFromLabels(s string) []int {
	o := make([]int, len(s))
	for i, r := range s {
		o[i] = int(r - 'A')
	}
	return o
}

// TestTableI verifies both codings bit-for-bit against the paper.
func TestTableI(t *testing.T) {
	for _, row := range tableI {
		o := orderFromLabels(row.order)
		if got := CompactEncode(o).String(); got != row.compact {
			t.Errorf("%s: compact = %s, want %s", row.order, got, row.compact)
		}
		if got := KendallEncode(o).String(); got != row.kendall {
			t.Errorf("%s: kendall = %s, want %s", row.order, got, row.kendall)
		}
	}
}

func TestTableIDecodesBack(t *testing.T) {
	for _, row := range tableI {
		want := orderFromLabels(row.order)
		co, err := CompactDecode(CompactEncode(want), 4)
		if err != nil {
			t.Fatalf("%s: compact decode: %v", row.order, err)
		}
		ko, err := KendallDecode(KendallEncode(want), 4)
		if err != nil {
			t.Fatalf("%s: kendall decode: %v", row.order, err)
		}
		for i := range want {
			if co[i] != want[i] || ko[i] != want[i] {
				t.Fatalf("%s: decode mismatch compact=%v kendall=%v", row.order, co, ko)
			}
		}
	}
}

func TestRankUnrankRoundTrip(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8) bool {
		n := int(sizeRaw)%8 + 1
		r := rng.New(seed)
		o := r.Perm(n)
		back := Unrank(Rank(o), n)
		for i := range o {
			if back[i] != o[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRankLexicographicOrder(t *testing.T) {
	// Ranks 0..n!-1 enumerate permutations in lexicographic order.
	orders := AllOrders(4)
	if len(orders) != 24 {
		t.Fatalf("AllOrders(4) has %d entries", len(orders))
	}
	for r, o := range orders {
		if Rank(o) != uint64(r) {
			t.Fatalf("rank of %v = %d, want %d", o, Rank(o), r)
		}
	}
	// Lexicographic: each successive order compares greater.
	for i := 1; i < len(orders); i++ {
		if !lexLess(orders[i-1], orders[i]) {
			t.Fatalf("orders %d and %d out of lexicographic order", i-1, i)
		}
	}
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestKendallAdjacentFlipChangesOneBit(t *testing.T) {
	// The design rationale: a flip of two neighboring positions changes
	// exactly one Kendall bit (but possibly many compact bits).
	f := func(seed uint64, sizeRaw, posRaw uint8) bool {
		n := int(sizeRaw)%6 + 2
		r := rng.New(seed)
		o := r.Perm(n)
		p := int(posRaw) % (n - 1)
		flipped := append([]int(nil), o...)
		flipped[p], flipped[p+1] = flipped[p+1], flipped[p]
		return KendallEncode(o).HammingDistance(KendallEncode(flipped)) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKendallDistanceProperties(t *testing.T) {
	a := []int{0, 1, 2, 3}
	d := []int{3, 2, 1, 0}
	if KendallDistance(a, a) != 0 {
		t.Fatal("self distance nonzero")
	}
	if KendallDistance(a, d) != 6 {
		t.Fatalf("reversal distance = %d, want 6", KendallDistance(a, d))
	}
}

func TestKendallDecodeRejectsNonTransitive(t *testing.T) {
	// A > B, B > C, C > A is a cycle: bits for pairs (0,1),(0,2),(1,2)
	// = 0 (A first), 1 (C before A), 0 (B before C). wins: A beats B,
	// C beats A, B beats C -> all wins equal 1, not a permutation.
	v := bitvec.MustFromString("010")
	if _, err := KendallDecode(v, 3); err == nil {
		t.Fatal("expected rejection of cyclic tournament")
	}
}

func TestCompactDecodeRejectsOutOfRange(t *testing.T) {
	// n=4: ranks 24..31 are invalid 5-bit patterns.
	v := bitvec.MustFromString("11000") // rank 24
	if _, err := CompactDecode(v, 4); err == nil {
		t.Fatal("expected out-of-range error")
	}
	short := bitvec.MustFromString("1100")
	if _, err := CompactDecode(short, 4); err == nil {
		t.Fatal("expected length error")
	}
}

func TestOrderOf(t *testing.T) {
	o := OrderOf([]float64{3.5, 9.9, 1.1, 7.7})
	want := []int{1, 3, 0, 2}
	for i := range want {
		if o[i] != want[i] {
			t.Fatalf("order = %v, want %v", o, want)
		}
	}
}

func TestOrderOfTieBreaksTowardLowerIndex(t *testing.T) {
	o := OrderOf([]float64{5, 5, 5})
	want := []int{0, 1, 2}
	for i := range want {
		if o[i] != want[i] {
			t.Fatalf("tied order = %v, want %v", o, want)
		}
	}
}

func TestOrderOfRandomIsSorted(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8) bool {
		n := int(sizeRaw)%20 + 1
		r := rng.New(seed)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Norm()
		}
		o := OrderOf(vals)
		for i := 1; i < n; i++ {
			if vals[o[i-1]] < vals[o[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLog2Factorial(t *testing.T) {
	if Log2Factorial(1) != 0 {
		t.Fatal("log2(1!) != 0")
	}
	// log2(4!) = log2(24) ~ 4.585
	if v := Log2Factorial(4); v < 4.58 || v > 4.59 {
		t.Fatalf("log2(4!) = %v", v)
	}
	if CompactBits(4) != 5 {
		t.Fatalf("CompactBits(4) = %d", CompactBits(4))
	}
	// Powers of two must not round up: 2! = 2 needs exactly 1 bit.
	if CompactBits(2) != 1 {
		t.Fatalf("CompactBits(2) = %d", CompactBits(2))
	}
}

func TestKendallBits(t *testing.T) {
	for n, want := range map[int]int{2: 1, 3: 3, 4: 6, 5: 10} {
		if KendallBits(n) != want {
			t.Errorf("KendallBits(%d) = %d, want %d", n, KendallBits(n), want)
		}
	}
}

func TestValidOrderPanics(t *testing.T) {
	for _, bad := range [][]int{{0, 0}, {1, 2}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v: expected panic", bad)
				}
			}()
			KendallEncode(bad)
		}()
	}
}

func TestCompactCodingNonUniformity(t *testing.T) {
	// The paper: "|Gj|! is not a power of two, given |Gj| > 2" — so the
	// compact coding cannot be uniform either. Quantify: 24 of 32
	// patterns used for n=4.
	used := make(map[string]bool)
	for _, o := range AllOrders(4) {
		used[CompactEncode(o).String()] = true
	}
	if len(used) != 24 {
		t.Fatalf("%d distinct compact codings, want 24", len(used))
	}
}

func TestKendallCodingSparsity(t *testing.T) {
	// Only n! of the 2^(n(n-1)/2) Kendall patterns are valid.
	valid := 0
	for pattern := 0; pattern < 64; pattern++ {
		v := bitvec.New(6)
		for i := 0; i < 6; i++ {
			if pattern>>uint(i)&1 == 1 {
				v.Set(i, true)
			}
		}
		if _, err := KendallDecode(v, 4); err == nil {
			valid++
		}
	}
	if valid != 24 {
		t.Fatalf("%d valid Kendall patterns, want 24", valid)
	}
}

func BenchmarkKendallEncode8(b *testing.B) {
	o := []int{7, 2, 5, 0, 3, 6, 1, 4}
	for i := 0; i < b.N; i++ {
		_ = KendallEncode(o)
	}
}

func BenchmarkRank10(b *testing.B) {
	o := []int{9, 2, 5, 0, 3, 6, 1, 4, 8, 7}
	for i := 0; i < b.N; i++ {
		_ = Rank(o)
	}
}
