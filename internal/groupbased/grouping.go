// Package groupbased implements the group-based RO PUF of Yin, Qu & Zhou
// (DATE 2013), the full pipeline of the paper's Fig. 4: entropy
// distillation, the grouping algorithm (Algorithm 2), Kendall coding, the
// error-correcting code, and entropy packing into the secret key.
//
// All three helper-data items — distiller coefficients, group
// assignments, ECC redundancy — live in public NVM, and the device
// performs only the sanity checks an honest implementation plausibly
// would (structural well-formedness). The paper's Section VI-C attack
// flows through exactly these interfaces.
package groupbased

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Grouping holds the partition of oscillators into groups: Assign[i] is
// the zero-based group id of oscillator i; every oscillator belongs to
// exactly one group.
type Grouping struct {
	Assign []int
	groups [][]int // lazily built member lists, ascending RO index
}

// Group runs Algorithm 2 of the paper on a frequency (or residual)
// snapshot: walk oscillators in descending order; place each into the
// first group whose most recent member is more than thresholdMHz faster.
// The result maximizes sum log2(|Gj|!) greedily ("having few large groups
// is more beneficial than having many small groups").
func Group(f []float64, thresholdMHz float64) Grouping {
	return GroupLimited(f, thresholdMHz, len(f))
}

// GroupLimited is Group with a cap on the group size. The paper notes the
// Kendall-coding workload "increases quadratically with the group size
// |Gj|", so practical implementations bound it; a full group behaves like
// a threshold miss and the oscillator falls through to the next group.
func GroupLimited(f []float64, thresholdMHz float64, maxSize int) Grouping {
	if maxSize < 1 {
		panic(fmt.Sprintf("groupbased: max group size %d < 1", maxSize))
	}
	n := len(f)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return f[idx[a]] > f[idx[b]] })

	assign := make([]int, n)
	var lastFreq []float64 // frequency of the last member placed per group
	var count []int
	for _, ro := range idx {
		placed := false
		for g := range lastFreq {
			if count[g] < maxSize && lastFreq[g]-f[ro] > thresholdMHz {
				assign[ro] = g
				lastFreq[g] = f[ro]
				count[g]++
				placed = true
				break
			}
		}
		if !placed {
			assign[ro] = len(lastFreq)
			lastFreq = append(lastFreq, f[ro])
			count = append(count, 1)
		}
	}
	return Grouping{Assign: assign}
}

// NumGroups returns the group count.
func (g *Grouping) NumGroups() int {
	max := -1
	for _, a := range g.Assign {
		if a > max {
			max = a
		}
	}
	return max + 1
}

// Members returns the member lists of all groups; within each group the
// oscillators appear in ascending index order, which is the canonical
// label order used by the Kendall and compact codings.
func (g *Grouping) Members() [][]int {
	if g.groups != nil {
		return g.groups
	}
	// Two passes over one shared backing array: count, carve slice
	// headers, fill in ascending RO order. Member lists come out
	// identical to per-group appends at two allocations total — this
	// runs on every helper re-parse of the attack loops.
	num := g.NumGroups()
	counts := make([]int, num+1)
	for _, a := range g.Assign {
		counts[a+1]++
	}
	for i := 1; i <= num; i++ {
		counts[i] += counts[i-1]
	}
	backing := make([]int, len(g.Assign))
	out := make([][]int, num)
	for id := 0; id < num; id++ {
		out[id] = backing[counts[id]:counts[id]:counts[id+1]]
	}
	for ro, a := range g.Assign {
		out[a] = append(out[a], ro)
	}
	g.groups = out
	return out
}

// Validate applies the structural sanity checks an honest device can
// perform without enrollment-time frequencies: ids must form a contiguous
// range starting at zero and cover every oscillator. (A device cannot
// re-verify the pairwise threshold at reconstruction time — frequencies
// have drifted — which is precisely the opening the attack uses to
// repartition groups at will.)
func (g *Grouping) Validate(n int) error {
	if len(g.Assign) != n {
		return fmt.Errorf("groupbased: %d assignments for %d oscillators", len(g.Assign), n)
	}
	num := g.NumGroups()
	if num == 0 {
		return fmt.Errorf("groupbased: empty grouping")
	}
	seen := make([]bool, num)
	for ro, a := range g.Assign {
		if a < 0 || a >= num {
			return fmt.Errorf("groupbased: oscillator %d in invalid group %d", ro, a)
		}
		seen[a] = true
	}
	for id, ok := range seen {
		if !ok {
			return fmt.Errorf("groupbased: group %d has no members", id)
		}
	}
	return nil
}

// CheckThreshold verifies the grouping invariant against a frequency
// snapshot: every pair within a group must exceed the threshold. Used by
// tests and by the enrollment self-check, not at reconstruction.
func (g *Grouping) CheckThreshold(f []float64, thresholdMHz float64) error {
	for id, members := range g.Members() {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				d := f[members[i]] - f[members[j]]
				if d < 0 {
					d = -d
				}
				if d <= thresholdMHz {
					return fmt.Errorf("groupbased: group %d pair (%d,%d) discrepancy %v <= %v",
						id, members[i], members[j], d, thresholdMHz)
				}
			}
		}
	}
	return nil
}

// Marshal serializes the grouping for NVM: oscillator count then one
// uint16 group id per oscillator.
func (g *Grouping) Marshal() []byte {
	buf := make([]byte, 0, 2+2*len(g.Assign))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(g.Assign)))
	for _, a := range g.Assign {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(a))
	}
	return buf
}

// UnmarshalGrouping parses NVM bytes into a grouping.
func UnmarshalGrouping(data []byte) (Grouping, error) {
	if len(data) < 2 {
		return Grouping{}, fmt.Errorf("groupbased: grouping helper truncated")
	}
	n := int(binary.LittleEndian.Uint16(data))
	if len(data) != 2+2*n {
		return Grouping{}, fmt.Errorf("groupbased: grouping helper length %d, want %d", len(data), 2+2*n)
	}
	g := Grouping{Assign: make([]int, n)}
	for i := range g.Assign {
		g.Assign[i] = int(binary.LittleEndian.Uint16(data[2+2*i:]))
	}
	return g, nil
}

// PairsToGrouping builds a grouping from an explicit list of groups given
// as member slices — the attacker's repartitioning primitive (Fig. 6a:
// "we repartition the groups so that they all contain two ROs").
func PairsToGrouping(n int, groups [][]int) (Grouping, error) {
	g := Grouping{Assign: make([]int, n)}
	for i := range g.Assign {
		g.Assign[i] = -1
	}
	for id, members := range groups {
		for _, ro := range members {
			if ro < 0 || ro >= n {
				return Grouping{}, fmt.Errorf("groupbased: oscillator %d outside array of %d", ro, n)
			}
			if g.Assign[ro] != -1 {
				return Grouping{}, fmt.Errorf("groupbased: oscillator %d in two groups", ro)
			}
			g.Assign[ro] = id
		}
	}
	for ro, a := range g.Assign {
		if a == -1 {
			return Grouping{}, fmt.Errorf("groupbased: oscillator %d unassigned", ro)
		}
	}
	return g, nil
}
