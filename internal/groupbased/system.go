package groupbased

import (
	"errors"
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/distiller"
	"repro/internal/ecc"
	"repro/internal/perm"
	"repro/internal/rng"
	"repro/internal/silicon"
)

// Params configures a group-based RO PUF instance (Fig. 4).
type Params struct {
	// Rows, Cols give the RO array layout.
	Rows, Cols int
	// Degree is the entropy-distiller polynomial degree (paper: 2 or 3).
	Degree int
	// ThresholdMHz is the grouping discrepancy threshold ∆fth.
	ThresholdMHz float64
	// MaxGroupSize caps the grouping algorithm's group size (0 means a
	// default of 12); the Kendall workload is quadratic in it.
	MaxGroupSize int
	// Code is the per-block ECC; the Kendall bitstream is padded with
	// zeros to a whole number of blocks.
	Code ecc.Code
	// EnrollReps is the measurement-averaging factor at enrollment.
	EnrollReps int
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.Rows < 1 || p.Cols < 1 {
		return fmt.Errorf("groupbased: invalid layout %dx%d", p.Rows, p.Cols)
	}
	if p.Degree < 0 {
		return fmt.Errorf("groupbased: negative distiller degree")
	}
	if p.ThresholdMHz < 0 {
		return fmt.Errorf("groupbased: negative threshold")
	}
	if p.Code == nil {
		return errors.New("groupbased: nil ECC")
	}
	if p.EnrollReps < 1 {
		return fmt.Errorf("groupbased: enrollment reps %d < 1", p.EnrollReps)
	}
	if p.MaxGroupSize < 0 || p.MaxGroupSize > 20 {
		return fmt.Errorf("groupbased: max group size %d outside [0,20]", p.MaxGroupSize)
	}
	return nil
}

// maxGroupSize resolves the configured cap, defaulting to 12.
func (p Params) maxGroupSize() int {
	if p.MaxGroupSize == 0 {
		return 12
	}
	return p.MaxGroupSize
}

// Helper is the complete public helper data of the construction,
// mirroring the NVM box of Fig. 4: polynomial coefficients, group
// information and ECC redundancy.
type Helper struct {
	Poly     distiller.Poly2D
	Grouping Grouping
	// Offset is the code-offset redundancy over the padded Kendall
	// bitstream; its length fixes the expected stream length.
	Offset bitvec.Vector
}

// ErrReconstructFailed is returned when the device cannot regenerate a
// key: the ECC reports an uncorrectable block or the corrected stream is
// not a valid Kendall coding. This is the observable event the paper's
// attacks count.
var ErrReconstructFailed = errors.New("groupbased: key reconstruction failed")

// KendallStream codes the per-group frequency orders of a residual
// snapshot into the concatenated Kendall bitstream (groups in id order;
// singleton groups contribute no bits).
func KendallStream(g *Grouping, residuals []float64) bitvec.Vector {
	out := bitvec.New(0)
	for _, members := range g.Members() {
		if len(members) < 2 {
			continue
		}
		out = out.Concat(perm.KendallEncode(groupOrder(members, residuals)))
	}
	return out
}

// groupOrder returns the descending-residual order of a group's members
// in label space: labels are positions in the ascending-index member
// list.
func groupOrder(members []int, residuals []float64) []int {
	vals := make([]float64, len(members))
	for l, ro := range members {
		vals[l] = residuals[ro]
	}
	return perm.OrderOf(vals)
}

// PackKey converts an error-corrected Kendall stream into the secret key:
// per group, decode the Kendall bits to an order and append its compact
// coding (the entropy-packing step of Fig. 4). An invalid (non-
// transitive) group coding fails the whole reconstruction.
func PackKey(g *Grouping, stream bitvec.Vector) (bitvec.Vector, error) {
	key := bitvec.New(0)
	at := 0
	for id, members := range g.Members() {
		n := len(members)
		if n < 2 {
			continue
		}
		bits := perm.KendallBits(n)
		if at+bits > stream.Len() {
			return bitvec.Vector{}, fmt.Errorf("groupbased: stream exhausted at group %d: %w", id, ErrReconstructFailed)
		}
		order, err := perm.KendallDecode(stream.Slice(at, at+bits), n)
		if err != nil {
			return bitvec.Vector{}, fmt.Errorf("groupbased: group %d: %v: %w", id, err, ErrReconstructFailed)
		}
		key = key.Concat(perm.CompactEncode(order))
		at += bits
	}
	return key, nil
}

// StreamLen returns the Kendall bitstream length of a grouping.
func StreamLen(g *Grouping) int {
	total := 0
	for _, members := range g.Members() {
		total += perm.KendallBits(len(members))
	}
	return total
}

// KeyLen returns the packed key length of a grouping.
func KeyLen(g *Grouping) int {
	total := 0
	for _, members := range g.Members() {
		if len(members) >= 2 {
			total += perm.CompactBits(len(members))
		}
	}
	return total
}

// Entropy returns sum log2(|Gj|!), the response entropy of the grouping
// (paper §V-B).
func Entropy(g *Grouping) float64 {
	var s float64
	for _, members := range g.Members() {
		s += perm.Log2Factorial(len(members))
	}
	return s
}

// padToBlocks zero-pads a stream to a whole number of code blocks and
// returns it with the block count.
func padToBlocks(stream bitvec.Vector, code ecc.Code) (bitvec.Vector, int) {
	n := code.N()
	blocks := (stream.Len() + n - 1) / n
	if blocks == 0 {
		blocks = 1
	}
	return stream.Concat(bitvec.New(blocks*n - stream.Len())), blocks
}

// Enroll manufactures the helper data and enrolled key of a device.
// Randomness for the code-offset draw comes from src.
func Enroll(a *silicon.Array, p Params, src *rng.Source) (Helper, bitvec.Vector, error) {
	if err := p.Validate(); err != nil {
		return Helper{}, bitvec.Vector{}, err
	}
	env := a.Config().NominalEnv()
	f := a.MeasureAveraged(env, src, p.EnrollReps)
	poly, err := distiller.Fit(p.Rows, p.Cols, f, p.Degree)
	if err != nil {
		return Helper{}, bitvec.Vector{}, err
	}
	residuals := distiller.Distill(p.Rows, p.Cols, f, poly)
	grouping := GroupLimited(residuals, p.ThresholdMHz, p.maxGroupSize())
	stream := KendallStream(&grouping, residuals)
	padded, blocks := padToBlocks(stream, p.Code)
	block := ecc.NewBlock(p.Code, blocks)
	offset := ecc.EnrollOffset(block, padded, src)
	key, err := PackKey(&grouping, padded)
	if err != nil {
		return Helper{}, bitvec.Vector{}, fmt.Errorf("groupbased: enrollment self-check: %w", err)
	}
	return Helper{Poly: poly, Grouping: grouping, Offset: offset.W}, key, nil
}

// Reconstruct regenerates the key from one fresh measurement in the given
// environment using (possibly attacker-controlled) helper data. It
// performs the honest device's structural validation, then follows the
// helper blindly — the paper's threat model.
func Reconstruct(a *silicon.Array, p Params, h Helper, env silicon.Environment, src *rng.Source) (bitvec.Vector, error) {
	if err := h.Grouping.Validate(a.N()); err != nil {
		return bitvec.Vector{}, err
	}
	if h.Offset.Len()%p.Code.N() != 0 || h.Offset.Len() == 0 {
		return bitvec.Vector{}, fmt.Errorf("groupbased: offset length %d not a block multiple", h.Offset.Len())
	}
	if StreamLen(&h.Grouping) > h.Offset.Len() {
		return bitvec.Vector{}, fmt.Errorf("groupbased: offset too short for grouping stream")
	}
	f := a.MeasureAll(env, src)
	residuals := distiller.Distill(p.Rows, p.Cols, f, h.Poly)
	stream := KendallStream(&h.Grouping, residuals)
	padded, blocks := padToBlocks(stream, p.Code)
	if padded.Len() != h.Offset.Len() {
		return bitvec.Vector{}, fmt.Errorf("groupbased: stream/offset length mismatch %d vs %d", padded.Len(), h.Offset.Len())
	}
	block := ecc.NewBlock(p.Code, blocks)
	corrected, _, ok := ecc.Reproduce(block, ecc.Offset{W: h.Offset}, padded)
	if !ok {
		return bitvec.Vector{}, ErrReconstructFailed
	}
	return PackKey(&h.Grouping, corrected)
}
