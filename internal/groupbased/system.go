package groupbased

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/bitvec"
	"repro/internal/distiller"
	"repro/internal/ecc"
	"repro/internal/perm"
	"repro/internal/rng"
	"repro/internal/silicon"
)

// Params configures a group-based RO PUF instance (Fig. 4).
type Params struct {
	// Rows, Cols give the RO array layout.
	Rows, Cols int
	// Degree is the entropy-distiller polynomial degree (paper: 2 or 3).
	Degree int
	// ThresholdMHz is the grouping discrepancy threshold ∆fth.
	ThresholdMHz float64
	// MaxGroupSize caps the grouping algorithm's group size (0 means a
	// default of 12); the Kendall workload is quadratic in it.
	MaxGroupSize int
	// Code is the per-block ECC; the Kendall bitstream is padded with
	// zeros to a whole number of blocks.
	Code ecc.Code
	// EnrollReps is the measurement-averaging factor at enrollment.
	EnrollReps int
	// Noise selects the silicon measurement-noise model; the zero value
	// is the legacy sequential-stream model.
	Noise silicon.NoiseModelKind
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.Rows < 1 || p.Cols < 1 {
		return fmt.Errorf("groupbased: invalid layout %dx%d", p.Rows, p.Cols)
	}
	if p.Degree < 0 {
		return fmt.Errorf("groupbased: negative distiller degree")
	}
	if p.ThresholdMHz < 0 {
		return fmt.Errorf("groupbased: negative threshold")
	}
	if p.Code == nil {
		return errors.New("groupbased: nil ECC")
	}
	if p.EnrollReps < 1 {
		return fmt.Errorf("groupbased: enrollment reps %d < 1", p.EnrollReps)
	}
	if p.MaxGroupSize < 0 || p.MaxGroupSize > 20 {
		return fmt.Errorf("groupbased: max group size %d outside [0,20]", p.MaxGroupSize)
	}
	return nil
}

// maxGroupSize resolves the configured cap, defaulting to 12.
func (p Params) maxGroupSize() int {
	if p.MaxGroupSize == 0 {
		return 12
	}
	return p.MaxGroupSize
}

// Helper is the complete public helper data of the construction,
// mirroring the NVM box of Fig. 4: polynomial coefficients, group
// information and ECC redundancy.
type Helper struct {
	Poly     distiller.Poly2D
	Grouping Grouping
	// Offset is the code-offset redundancy over the padded Kendall
	// bitstream; its length fixes the expected stream length.
	Offset bitvec.Vector
}

// ErrReconstructFailed is returned when the device cannot regenerate a
// key: the ECC reports an uncorrectable block or the corrected stream is
// not a valid Kendall coding. This is the observable event the paper's
// attacks count.
var ErrReconstructFailed = errors.New("groupbased: key reconstruction failed")

// KendallStream codes the per-group frequency orders of a residual
// snapshot into the concatenated Kendall bitstream (groups in id order;
// singleton groups contribute no bits).
func KendallStream(g *Grouping, residuals []float64) bitvec.Vector {
	out := bitvec.New(0)
	for _, members := range g.Members() {
		if len(members) < 2 {
			continue
		}
		out = out.Concat(perm.KendallEncode(groupOrder(members, residuals)))
	}
	return out
}

// groupOrder returns the descending-residual order of a group's members
// in label space: labels are positions in the ascending-index member
// list.
func groupOrder(members []int, residuals []float64) []int {
	vals := make([]float64, len(members))
	for l, ro := range members {
		vals[l] = residuals[ro]
	}
	return perm.OrderOf(vals)
}

// PackKey converts an error-corrected Kendall stream into the secret key:
// per group, decode the Kendall bits to an order and append its compact
// coding (the entropy-packing step of Fig. 4). An invalid (non-
// transitive) group coding fails the whole reconstruction. The key is
// assembled into one preallocated vector through scratch codecs — attack
// arms call this per hypothesis, so the per-group allocation churn of
// the naive decode/concat loop matters.
func PackKey(g *Grouping, stream bitvec.Vector) (bitvec.Vector, error) {
	var sc perm.Scratch
	key := bitvec.New(KeyLen(g))
	if err := PackKeyInto(g, stream, &sc, key); err != nil {
		return bitvec.Vector{}, err
	}
	return key, nil
}

// PackKeyInto is PackKey into a caller-owned key buffer of length
// KeyLen(g) through the caller's permutation scratch — the attack layer
// packs one predicted key per hypothesis arm, so the codec buffers and
// the key itself must be reusable.
func PackKeyInto(g *Grouping, stream bitvec.Vector, sc *perm.Scratch, dst bitvec.Vector) error {
	at, keyAt := 0, 0
	for id, members := range g.Members() {
		n := len(members)
		if n < 2 {
			continue
		}
		bits := perm.KendallBits(n)
		if at+bits > stream.Len() {
			return fmt.Errorf("groupbased: stream exhausted at group %d: %w", id, ErrReconstructFailed)
		}
		order, err := sc.KendallDecodeAt(stream, at, n)
		if err != nil {
			return fmt.Errorf("groupbased: group %d: %v: %w", id, err, ErrReconstructFailed)
		}
		sc.CompactEncodeAt(dst, keyAt, order)
		keyAt += perm.CompactBits(n)
		at += bits
	}
	return nil
}

// StreamLen returns the Kendall bitstream length of a grouping.
func StreamLen(g *Grouping) int {
	total := 0
	for _, members := range g.Members() {
		total += perm.KendallBits(len(members))
	}
	return total
}

// KeyLen returns the packed key length of a grouping.
func KeyLen(g *Grouping) int {
	total := 0
	for _, members := range g.Members() {
		if len(members) >= 2 {
			total += perm.CompactBits(len(members))
		}
	}
	return total
}

// Entropy returns sum log2(|Gj|!), the response entropy of the grouping
// (paper §V-B).
func Entropy(g *Grouping) float64 {
	var s float64
	for _, members := range g.Members() {
		s += perm.Log2Factorial(len(members))
	}
	return s
}

// padToBlocks zero-pads a stream to a whole number of code blocks and
// returns it with the block count.
func padToBlocks(stream bitvec.Vector, code ecc.Code) (bitvec.Vector, int) {
	n := code.N()
	blocks := (stream.Len() + n - 1) / n
	if blocks == 0 {
		blocks = 1
	}
	return stream.Concat(bitvec.New(blocks*n - stream.Len())), blocks
}

// Enroll manufactures the helper data and enrolled key of a device.
// Randomness for the code-offset draw comes from src; measurement noise
// follows the legacy sequential-stream model over the same source.
func Enroll(a *silicon.Array, p Params, src *rng.Source) (Helper, bitvec.Vector, error) {
	return EnrollWith(a, p, src, silicon.StreamNoise(src))
}

// EnrollWith is Enroll with the measurement noise drawn from an
// explicit noise model; src still drives the code-offset draw. Under
// silicon.StreamNoise(src) it is bit-identical to Enroll.
func EnrollWith(a *silicon.Array, p Params, src *rng.Source, nm silicon.NoiseModel) (Helper, bitvec.Vector, error) {
	if err := p.Validate(); err != nil {
		return Helper{}, bitvec.Vector{}, err
	}
	env := a.Config().NominalEnv()
	f := a.MeasureAveragedWith(env, nm, p.EnrollReps)
	poly, err := distiller.Fit(p.Rows, p.Cols, f, p.Degree)
	if err != nil {
		return Helper{}, bitvec.Vector{}, err
	}
	residuals := distiller.Distill(p.Rows, p.Cols, f, poly)
	grouping := GroupLimited(residuals, p.ThresholdMHz, p.maxGroupSize())
	stream := KendallStream(&grouping, residuals)
	padded, blocks := padToBlocks(stream, p.Code)
	block := ecc.NewBlock(p.Code, blocks)
	offset := ecc.EnrollOffset(block, padded, src)
	key, err := PackKey(&grouping, padded)
	if err != nil {
		return Helper{}, bitvec.Vector{}, fmt.Errorf("groupbased: enrollment self-check: %w", err)
	}
	return Helper{Poly: poly, Grouping: grouping, Offset: offset.W}, key, nil
}

// Reconstruct regenerates the key from one fresh measurement in the given
// environment using (possibly attacker-controlled) helper data. It
// performs the honest device's structural validation, then follows the
// helper blindly — the paper's threat model.
func Reconstruct(a *silicon.Array, p Params, h Helper, env silicon.Environment, src *rng.Source) (bitvec.Vector, error) {
	var sc Scratch
	key, err := ReconstructInto(a, p, &h, env, src, &sc)
	if err != nil {
		return bitvec.Vector{}, err
	}
	return key, nil
}

// Scratch carries the reusable buffers of ReconstructInto. A zero value
// is ready; a device keeps one per oracle and calls Invalidate whenever
// its helper NVM changes so the helper-derived caches (validation,
// member lists, distiller surface, stream geometry) are rebuilt. Not
// safe for concurrent use — forks get their own zero Scratch.
type Scratch struct {
	freq  []float64
	resid []float64
	grid  []float64
	// bases caches the noise-free frequency vector per environment.
	bases silicon.BaseCache
	// idxs lists, ascending, the oscillators belonging to groups of two
	// or more members — the only cells whose residuals the Kendall
	// coding reads, and therefore the sparse measurement set (O(k)
	// noise draws under the counter model).
	idxs []int
	// helper-derived caches, valid while helperValid is set.
	helperValid bool
	members     [][]int
	streamLen   int
	keyLen      int
	blocks      int
	block       *ecc.Block
	// per-measurement buffers.
	padded    bitvec.Vector
	corrected bitvec.Vector
	key       bitvec.Vector
	ws        ecc.Workspace
	perm      perm.Scratch
	groupVals []float64
	// content fingerprints: a helper write that repeats the previous
	// grouping or polynomial (an attack arm's hypothesis sweep varies
	// only the ECC offset) skips revalidation and cache rebuilds, whose
	// outcomes are pure functions of that content.
	groupsValid bool
	lastAssign  []int
	gridValid   bool
	lastP       int
	lastBeta    []float64
}

// Invalidate drops the helper-derived caches; the next ReconstructInto
// revalidates and rebuilds them.
func (sc *Scratch) Invalidate() { sc.helperValid = false }

// InvalidateSilicon additionally drops the caches derived from the
// silicon array's contents (the noise-free frequency vectors). Required
// on the device-pool path, where Array.Remanufactured changes the
// array's contents under the same pointer; buffer capacity and the
// helper-content fingerprints are kept (those are pure functions of
// helper content, not of the silicon).
func (sc *Scratch) InvalidateSilicon() {
	sc.helperValid = false
	sc.bases.Invalidate()
}

// refresh (re)builds the helper-derived caches, mirroring the structural
// validation order of the legacy Reconstruct so failure modes and their
// errors are unchanged.
func (sc *Scratch) refresh(a *silicon.Array, p Params, h *Helper) error {
	groupsSame := sc.groupsValid && slices.Equal(sc.lastAssign, h.Grouping.Assign)
	if !groupsSame {
		if err := h.Grouping.Validate(a.N()); err != nil {
			return err
		}
	}
	if h.Offset.Len()%p.Code.N() != 0 || h.Offset.Len() == 0 {
		return fmt.Errorf("groupbased: offset length %d not a block multiple", h.Offset.Len())
	}
	if !groupsSame {
		sc.members = h.Grouping.Members()
		sc.streamLen = StreamLen(&h.Grouping)
		sc.keyLen = KeyLen(&h.Grouping)
		sc.idxs = sc.idxs[:0]
		for _, members := range sc.members {
			if len(members) >= 2 {
				sc.idxs = append(sc.idxs, members...)
			}
		}
		slices.Sort(sc.idxs)
		sc.lastAssign = append(sc.lastAssign[:0], h.Grouping.Assign...)
		sc.groupsValid = true
	}
	if sc.streamLen > h.Offset.Len() {
		return fmt.Errorf("groupbased: offset too short for grouping stream")
	}
	if !sc.gridValid || h.Poly.P != sc.lastP || !slices.Equal(sc.lastBeta, h.Poly.Beta) {
		sc.grid = h.Poly.EvalGrid(p.Rows, p.Cols, sc.grid)
		sc.lastP = h.Poly.P
		sc.lastBeta = append(sc.lastBeta[:0], h.Poly.Beta...)
		sc.gridValid = true
	}
	blocks := (sc.streamLen + p.Code.N() - 1) / p.Code.N()
	if blocks == 0 {
		blocks = 1
	}
	if sc.block == nil || sc.blocks != blocks {
		sc.block = ecc.NewBlock(p.Code, blocks)
		sc.blocks = blocks
	}
	padLen := blocks * p.Code.N()
	if sc.padded.Len() != padLen {
		sc.padded = bitvec.New(padLen)
		sc.corrected = bitvec.New(padLen)
	}
	if sc.key.Len() != sc.keyLen {
		sc.key = bitvec.New(sc.keyLen)
	}
	sc.helperValid = true
	return nil
}

// ReconstructInto is Reconstruct against caller-owned scratch state: the
// reconstruction hot path the devices run per oracle query, free of
// steady-state allocations. The returned key is scratch-owned and valid
// until the next call; clone it to retain it. Keys, failure outcomes and
// the measurement-noise stream consumption are bit-identical to
// Reconstruct.
func ReconstructInto(a *silicon.Array, p Params, h *Helper, env silicon.Environment, src *rng.Source, sc *Scratch) (bitvec.Vector, error) {
	return ReconstructWith(a, p, h, env, silicon.StreamNoise(src), sc)
}

// ReconstructWith is ReconstructInto with the measurement noise drawn
// from an explicit noise model. Only the oscillators in groups of two
// or more members are measured and distilled (MeasureSparse +
// DistillSparse): O(k) noise draws under the counter model, a
// bit-identical draw-and-discard sweep under the stream model.
func ReconstructWith(a *silicon.Array, p Params, h *Helper, env silicon.Environment, nm silicon.NoiseModel, sc *Scratch) (bitvec.Vector, error) {
	if !sc.helperValid {
		if err := sc.refresh(a, p, h); err != nil {
			return bitvec.Vector{}, err
		}
	}
	if cap(sc.freq) < a.N() {
		sc.freq = make([]float64, a.N())
	}
	f := a.MeasureSparseBase(sc.freq[:a.N()], sc.idxs, sc.bases.For(a, env), nm)
	sc.resid = distiller.DistillSparse(sc.resid, f, sc.grid, sc.idxs)
	// Kendall-code the per-group orders straight into the zero-padded
	// block buffer (the fusion of KendallStream and padToBlocks).
	sc.padded.Zero()
	at := 0
	for _, members := range sc.members {
		if len(members) < 2 {
			continue
		}
		vals := sc.groupVals
		if cap(vals) < len(members) {
			vals = make([]float64, len(members))
		}
		vals = vals[:len(members)]
		sc.groupVals = vals
		for l, ro := range members {
			vals[l] = sc.resid[ro]
		}
		order := sc.perm.OrderInto(vals)
		sc.perm.KendallEncodeAt(sc.padded, at, order)
		at += perm.KendallBits(len(members))
	}
	if sc.padded.Len() != h.Offset.Len() {
		return bitvec.Vector{}, fmt.Errorf("groupbased: stream/offset length mismatch %d vs %d", sc.padded.Len(), h.Offset.Len())
	}
	if _, ok := ecc.ReproduceInto(sc.block, ecc.Offset{W: h.Offset}, sc.padded, &sc.ws, sc.corrected); !ok {
		return bitvec.Vector{}, ErrReconstructFailed
	}
	return sc.packKeyInto(h, sc.corrected)
}

// packKeyInto is PackKey into the scratch key buffer, using the cached
// member lists and stream offsets.
func (sc *Scratch) packKeyInto(h *Helper, stream bitvec.Vector) (bitvec.Vector, error) {
	at, keyAt := 0, 0
	for id, members := range sc.members {
		n := len(members)
		if n < 2 {
			continue
		}
		bits := perm.KendallBits(n)
		if at+bits > stream.Len() {
			return bitvec.Vector{}, fmt.Errorf("groupbased: stream exhausted at group %d: %w", id, ErrReconstructFailed)
		}
		order, err := sc.perm.KendallDecodeAt(stream, at, n)
		if err != nil {
			return bitvec.Vector{}, fmt.Errorf("groupbased: group %d: %v: %w", id, err, ErrReconstructFailed)
		}
		sc.perm.CompactEncodeAt(sc.key, keyAt, order)
		keyAt += perm.CompactBits(n)
		at += bits
	}
	return sc.key, nil
}
