package groupbased

import (
	"errors"

	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/distiller"
	"repro/internal/ecc"
	"repro/internal/perm"
	"repro/internal/rng"
	"repro/internal/silicon"
)

func TestGroupRespectsThreshold(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 20 + r.Intn(40)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.NormScaled(0, 2)
		}
		g := Group(vals, 0.5)
		return g.CheckThreshold(vals, 0.5) == nil && g.Validate(n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGroupKnownExample(t *testing.T) {
	// Frequencies 10, 8, 6, 4 with threshold 1: all fit in one group
	// (consecutive gaps of 2 > 1).
	g := Group([]float64{10, 8, 6, 4}, 1)
	if g.NumGroups() != 1 {
		t.Fatalf("%d groups, want 1", g.NumGroups())
	}
	// Threshold 3: 10 and 6 pair (gap 4), 8 and 4 pair (gap 4).
	g2 := Group([]float64{10, 8, 6, 4}, 3)
	if g2.NumGroups() != 2 {
		t.Fatalf("%d groups, want 2", g2.NumGroups())
	}
	if g2.Assign[0] != g2.Assign[2] || g2.Assign[1] != g2.Assign[3] {
		t.Fatalf("assignments %v", g2.Assign)
	}
}

func TestGroupGreedyPrefersFirstGroup(t *testing.T) {
	// Algorithm 2 walks groups in order and takes the first that fits,
	// keeping early groups large.
	vals := []float64{100, 90, 80, 70, 60, 50}
	g := Group(vals, 5)
	// Every consecutive gap is 10 > 5, so one big group.
	if g.NumGroups() != 1 {
		t.Fatalf("%d groups, want 1", g.NumGroups())
	}
}

func TestGroupingEntropyFavorsFewLargeGroups(t *testing.T) {
	// Paper §V-B: few large groups beat many small ones. One group of 4
	// (log2 4! = 4.58) vs two groups of 2 (2 * log2 2 = 2).
	one, _ := PairsToGrouping(4, [][]int{{0, 1, 2, 3}})
	two, _ := PairsToGrouping(4, [][]int{{0, 1}, {2, 3}})
	if Entropy(&one) <= Entropy(&two) {
		t.Fatalf("entropy %v <= %v", Entropy(&one), Entropy(&two))
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []Grouping{
		{Assign: []int{0, 2}},    // gap: group 1 missing
		{Assign: []int{-1, 0}},   // negative id
		{Assign: []int{0, 0, 0}}, // wrong length for n=2 below
	}
	if cases[0].Validate(2) == nil {
		t.Error("gap in group ids must fail")
	}
	if cases[1].Validate(2) == nil {
		t.Error("negative id must fail")
	}
	if cases[2].Validate(2) == nil {
		t.Error("length mismatch must fail")
	}
}

func TestPairsToGrouping(t *testing.T) {
	g, err := PairsToGrouping(4, [][]int{{0, 2}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Assign[0] != 0 || g.Assign[2] != 0 || g.Assign[1] != 1 || g.Assign[3] != 1 {
		t.Fatalf("assign %v", g.Assign)
	}
	if _, err := PairsToGrouping(4, [][]int{{0, 1}, {1, 2}}); err == nil {
		t.Error("overlap must fail")
	}
	if _, err := PairsToGrouping(4, [][]int{{0, 1}}); err == nil {
		t.Error("uncovered oscillator must fail")
	}
	if _, err := PairsToGrouping(4, [][]int{{0, 5}}); err == nil {
		t.Error("out-of-range must fail")
	}
}

func TestGroupingMarshalRoundTrip(t *testing.T) {
	g := Group([]float64{5, 3, 9, 1, 7}, 1)
	back, err := UnmarshalGrouping(g.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Assign {
		if back.Assign[i] != g.Assign[i] {
			t.Fatalf("round trip %v vs %v", back.Assign, g.Assign)
		}
	}
	if _, err := UnmarshalGrouping([]byte{9}); err == nil {
		t.Error("truncated must fail")
	}
}

func TestKendallStreamLength(t *testing.T) {
	g, _ := PairsToGrouping(7, [][]int{{0, 1, 2, 3}, {4, 5}, {6}})
	if StreamLen(&g) != 6+1+0 {
		t.Fatalf("stream length %d, want 7", StreamLen(&g))
	}
	if KeyLen(&g) != 5+1 {
		t.Fatalf("key length %d, want 6", KeyLen(&g))
	}
	res := []float64{4, 3, 2, 1, 10, 20, 0}
	s := KendallStream(&g, res)
	if s.Len() != 7 {
		t.Fatalf("stream %s", s)
	}
	// Group 0 residuals descend with index: order ABCD -> 000000.
	if !s.Slice(0, 6).IsZero() {
		t.Fatalf("group 0 bits %s, want zeros", s.Slice(0, 6))
	}
	// Group 1: RO5 > RO4, so label B precedes A -> bit 1.
	if !s.Get(6) {
		t.Fatal("group 1 bit should be 1")
	}
}

func TestPackKeyMatchesCompactCoding(t *testing.T) {
	g, _ := PairsToGrouping(4, [][]int{{0, 1, 2, 3}})
	res := []float64{1, 2, 4, 3} // order CDBA in labels: residuals desc = RO2,RO3,RO1,RO0 = labels 2,3,1,0
	stream := KendallStream(&g, res)
	key, err := PackKey(&g, stream)
	if err != nil {
		t.Fatal(err)
	}
	want := perm.CompactEncode([]int{2, 3, 1, 0})
	if !key.Equal(want) {
		t.Fatalf("key %s, want %s", key, want)
	}
}

func TestPackKeyRejectsInvalidStream(t *testing.T) {
	g, _ := PairsToGrouping(3, [][]int{{0, 1, 2}})
	// Cyclic tournament 010 is not a valid Kendall coding.
	if _, err := PackKey(&g, bitvec.MustFromString("010")); !errors.Is(err, ErrReconstructFailed) {
		t.Fatalf("err = %v, want ErrReconstructFailed", err)
	}
	// Truncated stream.
	if _, err := PackKey(&g, bitvec.New(2)); !errors.Is(err, ErrReconstructFailed) {
		t.Fatalf("err = %v, want ErrReconstructFailed", err)
	}
}

func testParams() Params {
	return Params{
		Rows: 8, Cols: 16,
		Degree:       2,
		ThresholdMHz: 0.4,
		Code:         ecc.MustBCH(ecc.BCHConfig{M: 6, T: 3}),
		EnrollReps:   15,
	}
}

func TestEnrollReconstructRoundTrip(t *testing.T) {
	p := testParams()
	a := silicon.NewArray(silicon.DefaultConfig(p.Rows, p.Cols), rng.New(100))
	h, key, err := Enroll(a, p, rng.New(101))
	if err != nil {
		t.Fatal(err)
	}
	if key.Len() == 0 {
		t.Fatal("empty key")
	}
	env := a.Config().NominalEnv()
	okCount := 0
	src := rng.New(102)
	for trial := 0; trial < 20; trial++ {
		got, err := Reconstruct(a, p, h, env, src)
		if err == nil && got.Equal(key) {
			okCount++
		}
	}
	if okCount < 18 {
		t.Fatalf("only %d of 20 reconstructions succeeded", okCount)
	}
}

func TestReconstructAcrossTemperature(t *testing.T) {
	// The distiller + grouping threshold should keep reconstruction
	// alive under moderate temperature excursions.
	p := testParams()
	a := silicon.NewArray(silicon.DefaultConfig(p.Rows, p.Cols), rng.New(200))
	h, key, err := Enroll(a, p, rng.New(201))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(202)
	ok := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		got, err := Reconstruct(a, p, h, silicon.Environment{TempC: 32, VoltageV: 1.2}, src)
		if err == nil && got.Equal(key) {
			ok++
		}
	}
	if ok < trials/2 {
		t.Fatalf("only %d of %d warm reconstructions succeeded", ok, trials)
	}
}

func TestReconstructRejectsMalformedHelper(t *testing.T) {
	p := testParams()
	a := silicon.NewArray(silicon.DefaultConfig(p.Rows, p.Cols), rng.New(300))
	h, _, err := Enroll(a, p, rng.New(301))
	if err != nil {
		t.Fatal(err)
	}
	env := a.Config().NominalEnv()
	src := rng.New(302)

	bad := h
	bad.Grouping = Grouping{Assign: make([]int, 5)}
	if _, err := Reconstruct(a, p, bad, env, src); err == nil {
		t.Error("wrong-size grouping must fail validation")
	}

	bad2 := h
	bad2.Offset = bitvec.New(7) // not a block multiple
	if _, err := Reconstruct(a, p, bad2, env, src); err == nil {
		t.Error("bad offset length must fail validation")
	}
}

func TestManipulatedOffsetCausesObservableFailure(t *testing.T) {
	// Flipping t+1 bits inside one ECC block of the offset makes
	// reconstruction fail (or yield a different key) — the attack's
	// basic observable.
	p := testParams()
	a := silicon.NewArray(silicon.DefaultConfig(p.Rows, p.Cols), rng.New(400))
	h, key, err := Enroll(a, p, rng.New(401))
	if err != nil {
		t.Fatal(err)
	}
	manip := h
	manip.Offset = h.Offset.Clone()
	for i := 0; i < p.Code.T()+1; i++ {
		manip.Offset.Flip(i)
	}
	src := rng.New(402)
	env := a.Config().NominalEnv()
	failures := 0
	for trial := 0; trial < 10; trial++ {
		got, err := Reconstruct(a, p, manip, env, src)
		if err != nil || !got.Equal(key) {
			failures++
		}
	}
	if failures < 8 {
		t.Fatalf("only %d of 10 manipulated reconstructions failed", failures)
	}
}

func TestAttackerRepartitionReprogramsKey(t *testing.T) {
	// The §VI-C primitive: overwrite poly with a steep valley, make all
	// groups attacker-chosen pairs, and recompute the offset for the
	// predicted stream. Reconstruction must then succeed and yield the
	// attacker's key.
	p := testParams()
	a := silicon.NewArray(silicon.DefaultConfig(p.Rows, p.Cols), rng.New(500))
	h, _, err := Enroll(a, p, rng.New(501))
	if err != nil {
		t.Fatal(err)
	}

	// Attacker: superimpose a huge x-gradient so that within every
	// horizontal pair the right RO is always slower after distillation.
	attack := h
	attack.Poly = h.Poly.Add(distiller.Plane(0, 1000, 0))

	var groups [][]int
	for y := 0; y < p.Rows; y++ {
		for x := 0; x+1 < p.Cols; x += 2 {
			groups = append(groups, []int{y*p.Cols + x, y*p.Cols + x + 1})
		}
	}
	g, err := PairsToGrouping(a.N(), groups)
	if err != nil {
		t.Fatal(err)
	}
	attack.Grouping = g

	// Predicted stream: residual = f - poly' = residual_orig - 1000x;
	// within each pair the left RO (smaller x) has the larger residual,
	// so label A precedes B -> Kendall bit 0 everywhere.
	stream := bitvec.New(StreamLen(&g))
	padded, blocks := padToBlocksForTest(stream, p.Code)
	block := ecc.NewBlock(p.Code, blocks)
	attack.Offset = ecc.EnrollOffset(block, padded, rng.New(502)).W

	got, err := Reconstruct(a, p, attack, a.Config().NominalEnv(), rng.New(503))
	if err != nil {
		t.Fatalf("attacker-programmed reconstruction failed: %v", err)
	}
	// All-zero Kendall stream = identity order per pair = compact bit 0.
	if got.Weight() != 0 {
		t.Fatalf("attacker key %s, want all zeros", got)
	}
}

func padToBlocksForTest(stream bitvec.Vector, code ecc.Code) (bitvec.Vector, int) {
	return padToBlocks(stream, code)
}

func BenchmarkGroup512(b *testing.B) {
	r := rng.New(1)
	vals := make([]float64, 512)
	for i := range vals {
		vals[i] = r.NormScaled(200, 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Group(vals, 0.3)
	}
}

func BenchmarkEnroll8x16(b *testing.B) {
	p := testParams()
	a := silicon.NewArray(silicon.DefaultConfig(p.Rows, p.Cols), rng.New(1))
	src := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Enroll(a, p, src); err != nil {
			b.Fatal(err)
		}
	}
}
