package device

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/distiller"
	"repro/internal/groupbased"
	"repro/internal/rng"
	"repro/internal/silicon"
)

// GroupBasedDevice is a deployed group-based RO PUF (Fig. 4).
//
// Its observable differs from the pair-based devices in one respect the
// paper makes explicit: the attack REPROGRAMS the key, and "their
// reconstruction failures [are assumed] to be observable" — think of a
// device that re-encrypts known data under whatever key it regenerates.
// App therefore reports reconstruction success against the key bound at
// the LAST successful helper write (the attacker's predicted key), not
// against the original enrollment. AppOriginal preserves the strict
// matches-enrollment observable for honest-use experiments.
type GroupBasedDevice struct {
	base
	arr    *silicon.Array
	params groupbased.Params
	nvm    groupbased.Helper
	// enrolled is the original key; bound is the key the application
	// currently operates with (re-provisioned after a key change, the
	// paper's "maliciously reprogrammed keys" scenario). boundBuf is the
	// reusable storage behind bound.
	enrolled bitvec.Vector
	bound    bitvec.Vector
	boundBuf bitvec.Vector
	src      *rng.Source
	// noise is the per-oracle measurement-noise state; Fork builds a
	// fresh one per clone.
	noise silicon.NoiseModel
	// scratch is the reusable reconstruction state (see
	// groupbased.Scratch); per-device, not concurrency-safe — Fork
	// clones the device so each concurrent arm owns its own.
	scratch groupbased.Scratch
}

// EnrollGroupBased manufactures and enrolls a device.
func EnrollGroupBased(p groupbased.Params, srcMfg, srcRun *rng.Source) (*GroupBasedDevice, error) {
	return EnrollGroupBasedReuse(nil, p, srcMfg, srcRun)
}

// EnrollGroupBasedReuse is EnrollGroupBased adopting a previously
// enrolled device's backing storage (see EnrollSeqPairReuse for the
// device-pool contract): bit-identical to a fresh enrollment, prev may
// be nil, and prev must be discarded by the caller — even on error.
func EnrollGroupBasedReuse(prev *GroupBasedDevice, p groupbased.Params, srcMfg, srcRun *rng.Source) (*GroupBasedDevice, error) {
	cfg := silicon.DefaultConfig(p.Rows, p.Cols)
	cfg.Noise = p.Noise
	var prevArr *silicon.Array
	if prev != nil {
		prevArr = prev.arr
	}
	arr := prevArr.Remanufactured(cfg, srcMfg)
	noise := arr.NewNoise(srcRun)
	h, key, err := groupbased.EnrollWith(arr, p, srcRun, noise)
	if err != nil {
		return nil, err
	}
	d := prev
	if d == nil {
		d = &GroupBasedDevice{}
	}
	d.base.reset(arr.Config().NominalEnv())
	d.arr = arr
	d.params = p
	d.nvm = h
	d.enrolled = key
	d.bound = key
	d.src = srcRun
	d.noise = noise
	d.scratch.InvalidateSilicon()
	return d, nil
}

// ReadHelper returns a deep copy of the helper NVM.
func (d *GroupBasedDevice) ReadHelper() groupbased.Helper {
	return groupbased.Helper{
		Poly:     clonePoly(d.nvm.Poly),
		Grouping: groupbased.Grouping{Assign: append([]int(nil), d.nvm.Grouping.Assign...)},
		Offset:   d.nvm.Offset.Clone(),
	}
}

// HelperView returns the helper NVM sharing the device's storage — the
// read-only fast path for marshaling consumers. Callers must not mutate
// it or retain it across a WriteHelper.
func (d *GroupBasedDevice) HelperView() groupbased.Helper { return d.nvm }

// WriteHelper overwrites the helper NVM after the honest device's
// structural validation, and re-binds the application key: the next
// successful reconstruction defines what the application data is
// encrypted under (the re-provisioning step of the reprogrammed-key
// scenario).
func (d *GroupBasedDevice) WriteHelper(h groupbased.Helper) error {
	if err := h.Grouping.Validate(d.arr.N()); err != nil {
		return err
	}
	if h.Offset.Len()%d.params.Code.N() != 0 || h.Offset.Len() == 0 {
		return fmt.Errorf("device: offset length %d not a block multiple", h.Offset.Len())
	}
	// Copy into the device-owned NVM buffers in place: helper writes are
	// the attack loops' second hot path, and HelperView callers must not
	// hold a view across a write (its documented contract). Safe under
	// aliasing — appending a slice's own contents onto itself from index
	// zero rewrites it with identical values.
	d.nvm = groupbased.Helper{
		Poly:     distiller.Poly2D{P: h.Poly.P, Beta: append(d.nvm.Poly.Beta[:0], h.Poly.Beta...)},
		Grouping: groupbased.Grouping{Assign: append(d.nvm.Grouping.Assign[:0], h.Grouping.Assign...)},
		Offset:   copyOffset(d.nvm.Offset, h.Offset),
	}
	d.scratch.Invalidate()
	d.bumpNVM()
	d.ReprovisionKey()
	return nil
}

// ReprovisionKey re-binds the application to whatever key the CURRENT
// helper reconstructs, exactly as a helper write does: one fresh
// reconstruction, consuming one measurement's noise from the device
// stream; a failure leaves the binding unusable (zero-length), so every
// App fails until a working helper is written — observable either way.
// Adapters re-installing an identical helper image call this directly to
// keep the write's observable side effects (binding and noise-stream
// consumption) without re-parsing the image.
func (d *GroupBasedDevice) ReprovisionKey() {
	if key, err := groupbased.ReconstructWith(d.arr, d.params, &d.nvm, d.env, d.noise, &d.scratch); err == nil {
		d.bound = setBound(&d.boundBuf, key)
	} else {
		d.bound = bitvec.Vector{}
	}
}

// BindKey lets the attacker bind the application to a predicted key
// directly (e.g. by presenting data encrypted under it), the cleanest
// reading of the paper's reprogrammed-key observable.
func (d *GroupBasedDevice) BindKey(key bitvec.Vector) { d.bound = setBound(&d.boundBuf, key) }

// App reconstructs with the current helper and compares against the
// currently bound application key, running in the device's scratch
// buffers (see SeqPairDevice.App for the determinism contract).
func (d *GroupBasedDevice) App() bool {
	d.addQuery()
	got, err := groupbased.ReconstructWith(d.arr, d.params, &d.nvm, d.env, d.noise, &d.scratch)
	return err == nil && d.bound.Len() > 0 && keysEqual(got, d.bound)
}

// AppOriginal is the honest observable: reconstruction must match the
// original enrollment key.
func (d *GroupBasedDevice) AppOriginal() bool {
	d.addQuery()
	got, err := groupbased.ReconstructWith(d.arr, d.params, &d.nvm, d.env, d.noise, &d.scratch)
	return err == nil && keysEqual(got, d.enrolled)
}

// TrueKey returns the original enrolled key (evaluation-only).
func (d *GroupBasedDevice) TrueKey() bitvec.Vector { return d.enrolled.Clone() }

// Fork returns an independent oracle clone with its own helper NVM copy,
// key binding, query counter, and noise stream seeded by seed (see
// SeqPairDevice.Fork).
func (d *GroupBasedDevice) Fork(seed uint64) *GroupBasedDevice {
	f := &GroupBasedDevice{
		arr:      d.arr,
		params:   d.params,
		nvm:      d.ReadHelper(),
		enrolled: d.enrolled.Clone(),
		bound:    d.bound.Clone(),
		src:      rng.New(seed),
	}
	f.noise = d.arr.NewNoise(f.src)
	f.env = d.env
	return f
}

// NoiseModel reports the silicon noise model the oracle runs under
// (public device specification).
func (d *GroupBasedDevice) NoiseModel() silicon.NoiseModelKind { return d.params.Noise }

// Params exposes the public device specification.
func (d *GroupBasedDevice) Params() groupbased.Params { return d.params }

// Array exposes the silicon for ground-truth evaluation only.
func (d *GroupBasedDevice) Array() *silicon.Array { return d.arr }

func clonePoly(p distiller.Poly2D) distiller.Poly2D {
	return distiller.Poly2D{P: p.P, Beta: append([]float64(nil), p.Beta...)}
}
