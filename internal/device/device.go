// Package device models deployed PUF key-generation devices from the
// attacker's point of view (the "IC" boxes of the paper's figures 4 and
// 7): public helper NVM with full read/write access, a trigger for key
// reconstruction, and the observable outcome of the key-dependent
// application.
//
// The observable follows the paper's assumption verbatim: "an inability
// to reconstruct the key should affect the observable behavior of any
// useful application". App() therefore returns false when reconstruction
// errors out OR when the reconstructed key differs from the enrolled
// reference key the application's data is bound to. Every App() call
// consumes fresh measurement noise and increments the query counter the
// attack-cost experiments report.
package device

import (
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/silicon"
)

// Device is the common attacker-visible surface. Construction-specific
// helper types are exposed by the concrete device types; this interface
// carries the query bookkeeping shared by all of them.
type Device interface {
	// App triggers one key reconstruction and reports whether the
	// key-dependent application behaves correctly.
	App() bool
	// Queries returns the number of App calls so far.
	Queries() int
	// Environment returns the current operating condition.
	Environment() silicon.Environment
	// SetEnvironment changes the operating condition (the attacker may
	// control ambient temperature in lab conditions; attacks that do
	// not assume this leave it untouched).
	SetEnvironment(env silicon.Environment)
}

// base carries the bookkeeping shared by every concrete device. The
// query counter is atomic so that readers (progress displays, batched
// oracle backends summing costs across forks) never race with an App
// call in flight on another goroutine.
type base struct {
	env     silicon.Environment
	queries atomic.Int64
	// nvmGen counts successful helper NVM writes. Adapters use it to
	// detect that the NVM still holds exactly what they last wrote and
	// skip re-parsing an identical image (see attack's write cache). It
	// is maintained by the owning goroutine only.
	nvmGen uint64
}

func (b *base) Queries() int { return int(b.queries.Load()) }

// reset returns the bookkeeping to freshly-enrolled state for the
// device-pool reuse path. Field-by-field: base embeds an atomic counter
// and must not be copied as a value.
func (b *base) reset(env silicon.Environment) {
	b.env = env
	b.queries.Store(0)
	b.nvmGen = 0
}

// addQuery records one oracle query.
func (b *base) addQuery() { b.queries.Add(1) }

// bumpNVM records one helper NVM write.
func (b *base) bumpNVM() { b.nvmGen++ }

// NVMGeneration returns the number of helper NVM writes so far. Two
// reads returning the same value bracket a span in which the NVM content
// did not change.
func (b *base) NVMGeneration() uint64 { return b.nvmGen }

func (b *base) Environment() silicon.Environment { return b.env }

func (b *base) SetEnvironment(env silicon.Environment) { b.env = env }

// keysEqual compares a reconstructed key against the enrolled reference.
func keysEqual(a, b bitvec.Vector) bool { return a.Equal(b) }

// copyOffset copies src into the device-owned offset buffer dst in place
// when the lengths match (the steady state of an attack's arm sweep) and
// clones otherwise. Safe under aliasing: copying a vector onto itself is
// a no-op.
func copyOffset(dst, src bitvec.Vector) bitvec.Vector {
	if dst.Len() != src.Len() {
		return src.Clone()
	}
	src.CopyInto(dst)
	return dst
}

// setBound copies key into the device-owned bound-key buffer behind buf,
// reallocating only on length change, and returns the buffer. Key
// (re)binding happens on every helper write and every BindKey — once per
// oracle query on the reprogrammed-key attack path — so it must not
// clone per call.
func setBound(buf *bitvec.Vector, key bitvec.Vector) bitvec.Vector {
	if buf.Len() != key.Len() {
		*buf = bitvec.New(key.Len())
	}
	key.CopyInto(*buf)
	return *buf
}
