package device

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/rng"
	"repro/internal/silicon"
	"repro/internal/tempco"
)

// TempCoDevice is a deployed temperature-aware cooperative RO PUF.
type TempCoDevice struct {
	base
	arr    *silicon.Array
	params tempco.Params
	nvm    tempco.Helper
	key    bitvec.Vector
	src    *rng.Source
	// noise is the per-oracle measurement-noise state; Fork builds a
	// fresh one per clone.
	noise silicon.NoiseModel
	// scratch is the reusable reconstruction state (see tempco.Scratch);
	// per-device, not concurrency-safe — Fork clones the device so each
	// concurrent arm owns its own.
	scratch tempco.Scratch
}

// EnrollTempCo manufactures and enrolls a device. The silicon config gets
// a widened temperature-slope spread so the cooperating population is
// non-trivial, mirroring the operating conditions the HOST 2009 proposal
// targets.
func EnrollTempCo(p tempco.Params, srcMfg, srcRun *rng.Source) (*TempCoDevice, error) {
	return EnrollTempCoReuse(nil, p, srcMfg, srcRun)
}

// EnrollTempCoReuse is EnrollTempCo adopting a previously enrolled
// device's backing storage (see EnrollSeqPairReuse for the device-pool
// contract): bit-identical to a fresh enrollment, prev may be nil, and
// prev must be discarded by the caller — even on error.
func EnrollTempCoReuse(prev *TempCoDevice, p tempco.Params, srcMfg, srcRun *rng.Source) (*TempCoDevice, error) {
	cfg := silicon.DefaultConfig(p.Rows, p.Cols)
	cfg.TempCoefSigmaMHzPerC = 0.03
	cfg.Noise = p.Noise
	var prevArr *silicon.Array
	if prev != nil {
		prevArr = prev.arr
	}
	arr := prevArr.Remanufactured(cfg, srcMfg)
	noise := arr.NewNoise(srcRun)
	h, key, err := tempco.EnrollWith(arr, p, srcRun, noise)
	if err != nil {
		return nil, err
	}
	d := prev
	if d == nil {
		d = &TempCoDevice{}
	}
	d.base.reset(cfg.NominalEnv())
	d.arr = arr
	d.params = p
	d.nvm = h
	d.key = key
	d.src = srcRun
	d.noise = noise
	d.scratch.InvalidateSilicon()
	return d, nil
}

// ReadHelper returns a deep copy of the helper NVM.
func (d *TempCoDevice) ReadHelper() tempco.Helper {
	return tempco.Helper{
		Pairs:  append([]tempco.PairInfo(nil), d.nvm.Pairs...),
		Offset: d.nvm.Offset.Clone(),
	}
}

// HelperView returns the helper NVM sharing the device's storage — the
// read-only fast path for marshaling consumers. Callers must not mutate
// it or retain it across a WriteHelper.
func (d *TempCoDevice) HelperView() tempco.Helper { return d.nvm }

// WriteHelper overwrites the helper NVM after structural validation.
func (d *TempCoDevice) WriteHelper(h tempco.Helper) error {
	if err := tempco.ValidateHelper(h, d.arr.N()); err != nil {
		return err
	}
	if h.Offset.Len() != d.nvm.Offset.Len() {
		return fmt.Errorf("device: offset length %d, want %d", h.Offset.Len(), d.nvm.Offset.Len())
	}
	// In-place copies into the device-owned NVM buffers; see
	// GroupBasedDevice.WriteHelper for the aliasing argument.
	d.nvm = tempco.Helper{
		Pairs:  append(d.nvm.Pairs[:0], h.Pairs...),
		Offset: copyOffset(d.nvm.Offset, h.Offset),
	}
	d.scratch.Invalidate()
	d.bumpNVM()
	return nil
}

// App reconstructs at the current ambient temperature and compares with
// the enrolled key, running in the device's scratch buffers (see
// SeqPairDevice.App for the determinism contract).
func (d *TempCoDevice) App() bool {
	d.addQuery()
	got, err := tempco.ReconstructWith(d.arr, d.params, &d.nvm, d.env, d.noise, &d.scratch)
	return err == nil && keysEqual(got, d.key)
}

// TrueKey returns the enrolled key (evaluation-only).
func (d *TempCoDevice) TrueKey() bitvec.Vector { return d.key.Clone() }

// Fork returns an independent oracle clone with its own helper NVM copy,
// query counter, and noise stream seeded by seed (see SeqPairDevice.Fork).
func (d *TempCoDevice) Fork(seed uint64) *TempCoDevice {
	f := &TempCoDevice{
		arr:    d.arr,
		params: d.params,
		nvm:    d.ReadHelper(),
		key:    d.key.Clone(),
		src:    rng.New(seed),
	}
	f.noise = d.arr.NewNoise(f.src)
	f.env = d.env
	return f
}

// NoiseModel reports the silicon noise model the oracle runs under
// (public device specification).
func (d *TempCoDevice) NoiseModel() silicon.NoiseModelKind { return d.params.Noise }

// Params exposes the public device specification.
func (d *TempCoDevice) Params() tempco.Params { return d.params }

// Array exposes the silicon instance for ground-truth evaluation only.
func (d *TempCoDevice) Array() *silicon.Array { return d.arr }
