package device

import (
	"bytes"
	"fmt"

	"repro/internal/ecc"
	"repro/internal/fuzzy"
	"repro/internal/pairing"
	"repro/internal/rng"
	"repro/internal/silicon"
)

// FuzzyDevice is the reference construction of the paper's Fig. 7: a
// plain RO response (overlapping neighbor chain) fed into a fuzzy
// extractor. It serves as the control group for experiment E12 — the
// same manipulation surface, but no usable failure-rate side channel.
type FuzzyDevice struct {
	base
	arr    *silicon.Array
	params FuzzyParams
	pairs  []pairing.Pair
	nvm    fuzzy.Helper
	key    []byte
	src    *rng.Source
	// noise is the per-oracle measurement-noise state.
	noise silicon.NoiseModel
}

// FuzzyParams configures a fuzzy-extractor device.
type FuzzyParams struct {
	Rows, Cols int
	Extractor  fuzzy.Params
	EnrollReps int
	// Noise selects the silicon measurement-noise model; the zero value
	// is the legacy sequential-stream model.
	Noise silicon.NoiseModelKind
}

// EnrollFuzzy manufactures and enrolls a device.
func EnrollFuzzy(p FuzzyParams, srcMfg, srcRun *rng.Source) (*FuzzyDevice, error) {
	if p.EnrollReps < 1 {
		return nil, fmt.Errorf("device: enrollment reps %d < 1", p.EnrollReps)
	}
	cfg := silicon.DefaultConfig(p.Rows, p.Cols)
	cfg.Noise = p.Noise
	arr := silicon.NewArray(cfg, srcMfg)
	env := arr.Config().NominalEnv()
	pairs := pairing.ChainPairs(p.Rows, p.Cols, false)
	noise := arr.NewNoise(srcRun)
	f := arr.MeasureAveragedWith(env, noise, p.EnrollReps)
	resp := pairing.Responses(f, pairs)
	h, key, err := fuzzy.Enroll(resp, p.Extractor, srcRun)
	if err != nil {
		return nil, err
	}
	return &FuzzyDevice{
		base:   base{env: env},
		arr:    arr,
		params: p,
		pairs:  pairs,
		nvm:    h,
		key:    key,
		src:    srcRun,
		noise:  noise,
	}, nil
}

// ReadHelper returns a deep copy of the helper NVM.
func (d *FuzzyDevice) ReadHelper() fuzzy.Helper {
	return fuzzy.Helper{W: d.nvm.W.Clone(), Tag: append([]byte(nil), d.nvm.Tag...)}
}

// WriteHelper overwrites the helper NVM.
func (d *FuzzyDevice) WriteHelper(h fuzzy.Helper) error {
	if h.W.Len() != d.nvm.W.Len() {
		return fmt.Errorf("device: helper length %d, want %d", h.W.Len(), d.nvm.W.Len())
	}
	d.nvm = fuzzy.Helper{W: h.W.Clone(), Tag: append([]byte(nil), h.Tag...)}
	return nil
}

// App reconstructs and compares against the enrolled key.
func (d *FuzzyDevice) App() bool {
	d.addQuery()
	f := d.arr.MeasureAllWith(d.env, d.noise)
	resp := pairing.Responses(f, d.pairs)
	got, err := fuzzy.Reconstruct(resp, d.params.Extractor, d.nvm)
	return err == nil && bytes.Equal(got, d.key)
}

// TrueKey returns the enrolled key (evaluation-only).
func (d *FuzzyDevice) TrueKey() []byte { return append([]byte(nil), d.key...) }

// Code exposes the ECC of the extractor (public specification).
func (d *FuzzyDevice) Code() ecc.Code { return d.params.Extractor.Code }
