package device

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/distiller"
	"repro/internal/ecc"
	"repro/internal/pairing"
	"repro/internal/rng"
	"repro/internal/silicon"
)

// PairingMode selects the pair-selection scheme combined with the
// entropy distiller (paper §VI-D considers both).
type PairingMode int

const (
	// MaskedChain is 1-out-of-k masking applied to a disjoint neighbor
	// chain (Fig. 6b).
	MaskedChain PairingMode = iota
	// OverlappingChain is the N-1-pair overlapping neighbor chain
	// (Fig. 6c).
	OverlappingChain
)

// String implements fmt.Stringer.
func (m PairingMode) String() string {
	switch m {
	case MaskedChain:
		return "masked-chain"
	case OverlappingChain:
		return "overlapping-chain"
	}
	return fmt.Sprintf("PairingMode(%d)", int(m))
}

// DistillerPairParams configures a distiller + pairing device.
type DistillerPairParams struct {
	Rows, Cols int
	Degree     int
	Mode       PairingMode
	// K is the masking group size (MaskedChain only).
	K          int
	Code       ecc.Code
	EnrollReps int
}

// DistillerPairHelperNVM is the complete helper NVM of the construction:
// distiller coefficients, the masking selections (MaskedChain mode), and
// the ECC offset.
type DistillerPairHelperNVM struct {
	Poly    distiller.Poly2D
	Masking pairing.MaskingHelper // zero value in OverlappingChain mode
	Offset  bitvec.Vector
}

// DistillerPairDevice runs an entropy distiller in front of a classic
// pairing scheme — the DAC 2013 distiller proposal composed per §VI-D.
// Like GroupBasedDevice it uses the reprogrammed-key observable.
type DistillerPairDevice struct {
	base
	arr      *silicon.Array
	params   DistillerPairParams
	basePair []pairing.Pair // fixed by the architecture, not helper data
	nvm      DistillerPairHelperNVM
	enrolled bitvec.Vector
	bound    bitvec.Vector
	src      *rng.Source
}

// EnrollDistillerPair manufactures and enrolls a device.
func EnrollDistillerPair(p DistillerPairParams, srcMfg, srcRun *rng.Source) (*DistillerPairDevice, error) {
	if p.Code == nil || p.EnrollReps < 1 {
		return nil, fmt.Errorf("device: invalid distiller-pair params")
	}
	arr := silicon.NewArray(silicon.DefaultConfig(p.Rows, p.Cols), srcMfg)
	env := arr.Config().NominalEnv()
	f := arr.MeasureAveraged(env, srcRun, p.EnrollReps)
	poly, err := distiller.Fit(p.Rows, p.Cols, f, p.Degree)
	if err != nil {
		return nil, err
	}
	resid := distiller.Distill(p.Rows, p.Cols, f, poly)

	d := &DistillerPairDevice{
		base:   base{env: env},
		arr:    arr,
		params: p,
		src:    srcRun,
	}
	var mask pairing.MaskingHelper
	switch p.Mode {
	case MaskedChain:
		d.basePair = pairing.ChainPairs(p.Rows, p.Cols, true)
		mask, err = pairing.EnrollMasking(resid, d.basePair, p.K)
		if err != nil {
			return nil, err
		}
	case OverlappingChain:
		d.basePair = pairing.ChainPairs(p.Rows, p.Cols, false)
	default:
		return nil, fmt.Errorf("device: unknown pairing mode %v", p.Mode)
	}
	resp, err := d.response(resid, mask)
	if err != nil {
		return nil, err
	}
	padded, blocks := padToBlocks(resp, p.Code)
	block := ecc.NewBlock(p.Code, blocks)
	off := ecc.EnrollOffset(block, padded, srcRun)
	d.nvm = DistillerPairHelperNVM{Poly: poly, Masking: mask, Offset: off.W}
	d.enrolled = resp
	d.bound = resp
	return d, nil
}

// response evaluates the construction's response bits for a residual
// snapshot under the given masking helper.
func (d *DistillerPairDevice) response(resid []float64, mask pairing.MaskingHelper) (bitvec.Vector, error) {
	switch d.params.Mode {
	case MaskedChain:
		sel, err := mask.SelectedPairs(d.basePair)
		if err != nil {
			return bitvec.Vector{}, err
		}
		return pairing.Responses(resid, sel), nil
	default:
		return pairing.Responses(resid, d.basePair), nil
	}
}

// BasePairs returns the architecture's fixed pair list (public).
func (d *DistillerPairDevice) BasePairs() []pairing.Pair {
	return append([]pairing.Pair(nil), d.basePair...)
}

// ReadHelper returns a deep copy of the helper NVM.
func (d *DistillerPairDevice) ReadHelper() DistillerPairHelperNVM {
	return DistillerPairHelperNVM{
		Poly:    clonePoly(d.nvm.Poly),
		Masking: pairing.MaskingHelper{K: d.nvm.Masking.K, Selected: append([]int(nil), d.nvm.Masking.Selected...)},
		Offset:  d.nvm.Offset.Clone(),
	}
}

// WriteHelper overwrites the helper NVM after structural validation and
// re-binds the application key as in GroupBasedDevice.
func (d *DistillerPairDevice) WriteHelper(h DistillerPairHelperNVM) error {
	if d.params.Mode == MaskedChain {
		if _, err := h.Masking.SelectedPairs(d.basePair); err != nil {
			return err
		}
	}
	if h.Offset.Len() != d.nvm.Offset.Len() {
		return fmt.Errorf("device: offset length %d, want %d", h.Offset.Len(), d.nvm.Offset.Len())
	}
	d.nvm = DistillerPairHelperNVM{
		Poly:    clonePoly(h.Poly),
		Masking: pairing.MaskingHelper{K: h.Masking.K, Selected: append([]int(nil), h.Masking.Selected...)},
		Offset:  h.Offset.Clone(),
	}
	if key, err := d.reconstruct(); err == nil {
		d.bound = key
	} else {
		d.bound = bitvec.Vector{}
	}
	return nil
}

// BindKey binds the application to a predicted key.
func (d *DistillerPairDevice) BindKey(key bitvec.Vector) { d.bound = key.Clone() }

func (d *DistillerPairDevice) reconstruct() (bitvec.Vector, error) {
	f := d.arr.MeasureAll(d.env, d.src)
	resid := distiller.Distill(d.params.Rows, d.params.Cols, f, d.nvm.Poly)
	resp, err := d.response(resid, d.nvm.Masking)
	if err != nil {
		return bitvec.Vector{}, err
	}
	padded, blocks := padToBlocks(resp, d.params.Code)
	if padded.Len() != d.nvm.Offset.Len() {
		return bitvec.Vector{}, fmt.Errorf("device: offset/stream mismatch")
	}
	block := ecc.NewBlock(d.params.Code, blocks)
	recovered, _, ok := ecc.Reproduce(block, ecc.Offset{W: d.nvm.Offset}, padded)
	if !ok {
		return bitvec.Vector{}, fmt.Errorf("device: ECC failure")
	}
	return recovered.Slice(0, resp.Len()), nil
}

// App reconstructs and compares against the bound key.
func (d *DistillerPairDevice) App() bool {
	d.addQuery()
	got, err := d.reconstruct()
	return err == nil && d.bound.Len() > 0 && keysEqual(got, d.bound)
}

// TrueKey returns the original enrolled key (evaluation-only).
func (d *DistillerPairDevice) TrueKey() bitvec.Vector { return d.enrolled.Clone() }

// Fork returns an independent oracle clone with its own helper NVM copy,
// key binding, query counter, and noise stream seeded by seed (see
// SeqPairDevice.Fork).
func (d *DistillerPairDevice) Fork(seed uint64) *DistillerPairDevice {
	f := &DistillerPairDevice{
		arr:      d.arr,
		params:   d.params,
		basePair: append([]pairing.Pair(nil), d.basePair...),
		nvm:      d.ReadHelper(),
		enrolled: d.enrolled.Clone(),
		bound:    d.bound.Clone(),
		src:      rng.New(seed),
	}
	f.env = d.env
	return f
}

// Params exposes the public device specification.
func (d *DistillerPairDevice) Params() DistillerPairParams { return d.params }

// Array exposes the silicon for ground-truth evaluation only.
func (d *DistillerPairDevice) Array() *silicon.Array { return d.arr }
