package device

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/bitvec"
	"repro/internal/distiller"
	"repro/internal/ecc"
	"repro/internal/pairing"
	"repro/internal/rng"
	"repro/internal/silicon"
)

// Reconstruction failures are per-query events on attack arms whose
// manipulated helpers push the ECC past its radius; sentinel errors keep
// that hot path allocation-free.
var (
	errECCFailure     = errors.New("device: ECC failure")
	errOffsetMismatch = errors.New("device: offset/stream mismatch")
)

// PairingMode selects the pair-selection scheme combined with the
// entropy distiller (paper §VI-D considers both).
type PairingMode int

const (
	// MaskedChain is 1-out-of-k masking applied to a disjoint neighbor
	// chain (Fig. 6b).
	MaskedChain PairingMode = iota
	// OverlappingChain is the N-1-pair overlapping neighbor chain
	// (Fig. 6c).
	OverlappingChain
)

// String implements fmt.Stringer.
func (m PairingMode) String() string {
	switch m {
	case MaskedChain:
		return "masked-chain"
	case OverlappingChain:
		return "overlapping-chain"
	}
	return fmt.Sprintf("PairingMode(%d)", int(m))
}

// DistillerPairParams configures a distiller + pairing device.
type DistillerPairParams struct {
	Rows, Cols int
	Degree     int
	Mode       PairingMode
	// K is the masking group size (MaskedChain only).
	K          int
	Code       ecc.Code
	EnrollReps int
	// Noise selects the silicon measurement-noise model; the zero value
	// is the legacy sequential-stream model.
	Noise silicon.NoiseModelKind
}

// DistillerPairHelperNVM is the complete helper NVM of the construction:
// distiller coefficients, the masking selections (MaskedChain mode), and
// the ECC offset.
type DistillerPairHelperNVM struct {
	Poly    distiller.Poly2D
	Masking pairing.MaskingHelper // zero value in OverlappingChain mode
	Offset  bitvec.Vector
}

// DistillerPairDevice runs an entropy distiller in front of a classic
// pairing scheme — the DAC 2013 distiller proposal composed per §VI-D.
// Like GroupBasedDevice it uses the reprogrammed-key observable.
type DistillerPairDevice struct {
	base
	arr      *silicon.Array
	params   DistillerPairParams
	basePair []pairing.Pair // fixed by the architecture, not helper data
	nvm      DistillerPairHelperNVM
	enrolled bitvec.Vector
	bound    bitvec.Vector
	boundBuf bitvec.Vector
	src      *rng.Source
	// noise is the per-oracle measurement-noise state; Fork builds a
	// fresh one per clone.
	noise   silicon.NoiseModel
	scratch distillerScratch
}

// distillerScratch is the device's reusable reconstruction state:
// the distiller surface evaluated on the grid, the resolved pair list,
// and the measurement/codeword buffers. Per-device, not concurrency-safe
// — Fork clones the device so each concurrent arm owns its own.
type distillerScratch struct {
	helperValid bool
	freq        []float64
	resid       []float64
	grid        []float64
	sel         []pairing.Pair
	selBuf      []pairing.Pair
	selErr      error
	// idxs lists, ascending, the oscillators the resolved pair list
	// references — the sparse measurement set (O(k) noise draws under
	// the counter model). Empty while the masking selection is invalid.
	idxs []int
	want []bool
	// bases caches the noise-free frequency vector per environment.
	bases     silicon.BaseCache
	blocks    int
	block     *ecc.Block
	padded    bitvec.Vector
	recovered bitvec.Vector
	ws        ecc.Workspace
	// content fingerprints of the helper-derived caches: a helper write
	// that changes only the ECC offset (an attack arm's hypothesis sweep)
	// skips the grid evaluation and masking resolution entirely.
	gridValid    bool
	lastP        int
	lastBeta     []float64
	selValid     bool
	lastK        int
	lastSelected []int
}

// refreshScratch rebuilds the helper-derived caches from the current NVM,
// skipping any cache whose helper content is unchanged since the last
// build (outcomes are pure functions of that content).
func (d *DistillerPairDevice) refreshScratch() {
	sc := &d.scratch
	n := d.arr.N()
	if cap(sc.freq) < n {
		sc.freq = make([]float64, n)
	}
	sc.freq = sc.freq[:n]
	if !sc.gridValid || d.nvm.Poly.P != sc.lastP || !slices.Equal(sc.lastBeta, d.nvm.Poly.Beta) {
		sc.grid = d.nvm.Poly.EvalGrid(d.params.Rows, d.params.Cols, sc.grid)
		sc.lastP = d.nvm.Poly.P
		sc.lastBeta = append(sc.lastBeta[:0], d.nvm.Poly.Beta...)
		sc.gridValid = true
	}
	switch d.params.Mode {
	case MaskedChain:
		if !sc.selValid || d.nvm.Masking.K != sc.lastK || !slices.Equal(sc.lastSelected, d.nvm.Masking.Selected) {
			sel, err := d.nvm.Masking.SelectedPairsInto(sc.selBuf, d.basePair)
			sc.sel, sc.selErr = sel, err
			if err == nil {
				sc.selBuf = sel
			}
			sc.lastK = d.nvm.Masking.K
			sc.lastSelected = append(sc.lastSelected[:0], d.nvm.Masking.Selected...)
			sc.selValid = true
		}
	default:
		sc.sel, sc.selErr = d.basePair, nil
	}
	if cap(sc.want) < n {
		sc.want = make([]bool, n)
	}
	sc.want = sc.want[:n]
	for i := range sc.want {
		sc.want[i] = false
	}
	sc.idxs = sc.idxs[:0]
	if sc.selErr == nil {
		for _, p := range sc.sel {
			sc.want[p.A] = true
			sc.want[p.B] = true
		}
		for i, wanted := range sc.want {
			if wanted {
				sc.idxs = append(sc.idxs, i)
			}
		}
	}
	cn := d.params.Code.N()
	blocks := (len(sc.sel) + cn - 1) / cn
	if blocks == 0 {
		blocks = 1
	}
	if sc.block == nil || sc.blocks != blocks {
		sc.block = ecc.NewBlock(d.params.Code, blocks)
		sc.blocks = blocks
	}
	if padLen := blocks * cn; sc.padded.Len() != padLen {
		sc.padded = bitvec.New(padLen)
		sc.recovered = bitvec.New(padLen)
	}
	sc.helperValid = true
}

// EnrollDistillerPair manufactures and enrolls a device.
func EnrollDistillerPair(p DistillerPairParams, srcMfg, srcRun *rng.Source) (*DistillerPairDevice, error) {
	return EnrollDistillerPairReuse(nil, p, srcMfg, srcRun)
}

// EnrollDistillerPairReuse is EnrollDistillerPair adopting a previously
// enrolled device's backing storage (see EnrollSeqPairReuse for the
// device-pool contract): bit-identical to a fresh enrollment, prev may
// be nil, and prev must be discarded by the caller — even on error.
func EnrollDistillerPairReuse(prev *DistillerPairDevice, p DistillerPairParams, srcMfg, srcRun *rng.Source) (*DistillerPairDevice, error) {
	if p.Code == nil || p.EnrollReps < 1 {
		return nil, fmt.Errorf("device: invalid distiller-pair params")
	}
	cfg := silicon.DefaultConfig(p.Rows, p.Cols)
	cfg.Noise = p.Noise
	var prevArr *silicon.Array
	if prev != nil {
		prevArr = prev.arr
	}
	arr := prevArr.Remanufactured(cfg, srcMfg)
	env := arr.Config().NominalEnv()
	noise := arr.NewNoise(srcRun)
	f := arr.MeasureAveragedWith(env, noise, p.EnrollReps)
	poly, err := distiller.Fit(p.Rows, p.Cols, f, p.Degree)
	if err != nil {
		return nil, err
	}
	resid := distiller.Distill(p.Rows, p.Cols, f, poly)

	d := prev
	if d == nil {
		d = &DistillerPairDevice{}
	}
	// basePair is fixed by the architecture (geometry and mode), not by
	// the silicon instance — keep prev's list when those match. The
	// comparison is field-wise: params holds an ecc.Code interface whose
	// dynamic type need not be comparable.
	sameBase := prev != nil && d.basePair != nil &&
		d.params.Rows == p.Rows && d.params.Cols == p.Cols && d.params.Mode == p.Mode
	d.base.reset(env)
	d.arr = arr
	d.params = p
	d.src = srcRun
	d.noise = noise
	var mask pairing.MaskingHelper
	switch p.Mode {
	case MaskedChain:
		if !sameBase {
			d.basePair = pairing.ChainPairs(p.Rows, p.Cols, true)
		}
		mask, err = pairing.EnrollMasking(resid, d.basePair, p.K)
		if err != nil {
			return nil, err
		}
	case OverlappingChain:
		if !sameBase {
			d.basePair = pairing.ChainPairs(p.Rows, p.Cols, false)
		}
	default:
		return nil, fmt.Errorf("device: unknown pairing mode %v", p.Mode)
	}
	resp, err := d.response(resid, mask)
	if err != nil {
		return nil, err
	}
	padded, blocks := padToBlocks(resp, p.Code)
	block := ecc.NewBlock(p.Code, blocks)
	off := ecc.EnrollOffset(block, padded, srcRun)
	d.nvm = DistillerPairHelperNVM{Poly: poly, Masking: mask, Offset: off.W}
	d.enrolled = resp
	d.bound = resp
	d.scratch.helperValid = false
	d.scratch.bases.Invalidate()
	return d, nil
}

// response evaluates the construction's response bits for a residual
// snapshot under the given masking helper.
func (d *DistillerPairDevice) response(resid []float64, mask pairing.MaskingHelper) (bitvec.Vector, error) {
	switch d.params.Mode {
	case MaskedChain:
		sel, err := mask.SelectedPairs(d.basePair)
		if err != nil {
			return bitvec.Vector{}, err
		}
		return pairing.Responses(resid, sel), nil
	default:
		return pairing.Responses(resid, d.basePair), nil
	}
}

// BasePairs returns the architecture's fixed pair list (public).
func (d *DistillerPairDevice) BasePairs() []pairing.Pair {
	return append([]pairing.Pair(nil), d.basePair...)
}

// ReadHelper returns a deep copy of the helper NVM.
func (d *DistillerPairDevice) ReadHelper() DistillerPairHelperNVM {
	return DistillerPairHelperNVM{
		Poly:    clonePoly(d.nvm.Poly),
		Masking: pairing.MaskingHelper{K: d.nvm.Masking.K, Selected: append([]int(nil), d.nvm.Masking.Selected...)},
		Offset:  d.nvm.Offset.Clone(),
	}
}

// HelperView returns the helper NVM sharing the device's storage — the
// read-only fast path for marshaling consumers. Callers must not mutate
// it or retain it across a WriteHelper.
func (d *DistillerPairDevice) HelperView() DistillerPairHelperNVM { return d.nvm }

// WriteHelper overwrites the helper NVM after structural validation and
// re-binds the application key as in GroupBasedDevice.
func (d *DistillerPairDevice) WriteHelper(h DistillerPairHelperNVM) error {
	if d.params.Mode == MaskedChain {
		if err := h.Masking.Validate(d.basePair); err != nil {
			return err
		}
	}
	if h.Offset.Len() != d.nvm.Offset.Len() {
		return fmt.Errorf("device: offset length %d, want %d", h.Offset.Len(), d.nvm.Offset.Len())
	}
	// In-place copies into the device-owned NVM buffers; see
	// GroupBasedDevice.WriteHelper for the aliasing argument.
	d.nvm = DistillerPairHelperNVM{
		Poly:    distiller.Poly2D{P: h.Poly.P, Beta: append(d.nvm.Poly.Beta[:0], h.Poly.Beta...)},
		Masking: pairing.MaskingHelper{K: h.Masking.K, Selected: append(d.nvm.Masking.Selected[:0], h.Masking.Selected...)},
		Offset:  copyOffset(d.nvm.Offset, h.Offset),
	}
	d.scratch.helperValid = false
	d.bumpNVM()
	d.ReprovisionKey()
	return nil
}

// ReprovisionKey re-binds the application to whatever key the CURRENT
// helper reconstructs, exactly as a helper write does (see
// GroupBasedDevice.ReprovisionKey for the contract).
func (d *DistillerPairDevice) ReprovisionKey() {
	if n, err := d.reconstructScratch(); err == nil {
		if d.boundBuf.Len() != n {
			d.boundBuf = bitvec.New(n)
		}
		d.scratch.recovered.SliceInto(0, n, d.boundBuf)
		d.bound = d.boundBuf
	} else {
		d.bound = bitvec.Vector{}
	}
}

// BindKey binds the application to a predicted key.
func (d *DistillerPairDevice) BindKey(key bitvec.Vector) { d.bound = setBound(&d.boundBuf, key) }

// reconstructScratch regenerates the key into the scratch buffers: on
// success the first respLen bits of d.scratch.recovered hold the key.
// Bit-identical — outcomes and noise-stream consumption — to the
// allocating reconstruction it replaced.
func (d *DistillerPairDevice) reconstructScratch() (respLen int, err error) {
	sc := &d.scratch
	if !sc.helperValid {
		d.refreshScratch()
	}
	f := d.arr.MeasureSparseBase(sc.freq, sc.idxs, sc.bases.For(d.arr, d.env), d.noise)
	sc.resid = distiller.DistillSparse(sc.resid, f, sc.grid, sc.idxs)
	if sc.selErr != nil {
		return 0, sc.selErr
	}
	if sc.padded.Len() != d.nvm.Offset.Len() {
		return 0, errOffsetMismatch
	}
	sc.padded.Zero()
	for i, p := range sc.sel {
		if pairing.ResponseBit(sc.resid, p) {
			sc.padded.Set(i, true)
		}
	}
	if _, ok := ecc.ReproduceInto(sc.block, ecc.Offset{W: d.nvm.Offset}, sc.padded, &sc.ws, sc.recovered); !ok {
		return 0, errECCFailure
	}
	return len(sc.sel), nil
}

// App reconstructs and compares against the bound key, running in the
// device's scratch buffers (see SeqPairDevice.App for the determinism
// contract).
func (d *DistillerPairDevice) App() bool {
	d.addQuery()
	n, err := d.reconstructScratch()
	return err == nil && n > 0 && d.bound.Len() == n && d.scratch.recovered.HasPrefix(d.bound)
}

// TrueKey returns the original enrolled key (evaluation-only).
func (d *DistillerPairDevice) TrueKey() bitvec.Vector { return d.enrolled.Clone() }

// Fork returns an independent oracle clone with its own helper NVM copy,
// key binding, query counter, and noise stream seeded by seed (see
// SeqPairDevice.Fork).
func (d *DistillerPairDevice) Fork(seed uint64) *DistillerPairDevice {
	f := &DistillerPairDevice{
		arr:      d.arr,
		params:   d.params,
		basePair: append([]pairing.Pair(nil), d.basePair...),
		nvm:      d.ReadHelper(),
		enrolled: d.enrolled.Clone(),
		bound:    d.bound.Clone(),
		src:      rng.New(seed),
	}
	f.noise = d.arr.NewNoise(f.src)
	f.env = d.env
	return f
}

// NoiseModel reports the silicon noise model the oracle runs under
// (public device specification).
func (d *DistillerPairDevice) NoiseModel() silicon.NoiseModelKind { return d.params.Noise }

// Params exposes the public device specification.
func (d *DistillerPairDevice) Params() DistillerPairParams { return d.params }

// Array exposes the silicon for ground-truth evaluation only.
func (d *DistillerPairDevice) Array() *silicon.Array { return d.arr }
