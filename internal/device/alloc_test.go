package device

import (
	"testing"

	"repro/internal/ecc"
	"repro/internal/groupbased"
	"repro/internal/pairing"
	"repro/internal/rng"
	"repro/internal/silicon"
	"repro/internal/tempco"
)

// The scratch-buffer rebuild of the reconstruction hot path promises an
// allocation-free steady state: after a warm-up call has grown every
// buffer, App() must stay under a small constant allocation count for
// all four device types. These tests are the regression fence for that
// contract — any decode-path or measurement-path change that starts
// allocating per query fails here long before it shows up in the attack
// benchmarks.

// appAllocBudget is the per-App() steady-state allocation ceiling. The
// paths are designed to allocate zero; the slack tolerates runtime
// bookkeeping noise, not real per-query work.
const appAllocBudget = 2

func measureAppAllocs(t *testing.T, app func() bool) float64 {
	t.Helper()
	// Warm up the scratch state (first call grows every buffer).
	for i := 0; i < 3; i++ {
		app()
	}
	return testing.AllocsPerRun(50, func() { app() })
}

func TestAppAllocationsSeqPair(t *testing.T) {
	// The steady-state zero-allocation contract holds under BOTH noise
	// models: stream (shared source) and counter (sweep-counter state).
	for _, noise := range []silicon.NoiseModelKind{silicon.NoiseStream, silicon.NoiseCounter} {
		d, err := EnrollSeqPair(SeqPairParams{
			Rows: 8, Cols: 16,
			ThresholdMHz: 0.8,
			Policy:       pairing.RandomizedStorage,
			Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3, Expurgate: true}),
			EnrollReps:   20,
			Noise:        noise,
		}, rng.New(42), rng.New(43))
		if err != nil {
			t.Fatal(err)
		}
		if got := measureAppAllocs(t, d.App); got > appAllocBudget {
			t.Fatalf("SeqPairDevice.App (%v) allocates %.1f/op, budget %d", noise, got, appAllocBudget)
		}
	}
}

func TestAppAllocationsTempCo(t *testing.T) {
	d, err := EnrollTempCo(tempco.Params{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.6,
		TminC:        -25, TmaxC: 85,
		Policy:     tempco.RandomSelection,
		Code:       ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
		EnrollReps: 15,
	}, rng.New(42), rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	if got := measureAppAllocs(t, d.App); got > appAllocBudget {
		t.Fatalf("TempCoDevice.App allocates %.1f/op, budget %d", got, appAllocBudget)
	}
}

func TestAppAllocationsGroupBased(t *testing.T) {
	for _, noise := range []silicon.NoiseModelKind{silicon.NoiseStream, silicon.NoiseCounter} {
		d, err := EnrollGroupBased(groupbased.Params{
			Rows: 4, Cols: 10,
			Degree:       2,
			ThresholdMHz: 0.5,
			MaxGroupSize: 6,
			Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
			EnrollReps:   25,
			Noise:        noise,
		}, rng.New(42), rng.New(43))
		if err != nil {
			t.Fatal(err)
		}
		if got := measureAppAllocs(t, d.App); got > appAllocBudget {
			t.Fatalf("GroupBasedDevice.App (%v) allocates %.1f/op, budget %d", noise, got, appAllocBudget)
		}
	}
}

func TestAppAllocationsDistillerPair(t *testing.T) {
	for _, mode := range []PairingMode{MaskedChain, OverlappingChain} {
		p := DistillerPairParams{
			Rows: 4, Cols: 10,
			Degree:     2,
			Mode:       mode,
			Code:       ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
			EnrollReps: 20,
		}
		if mode == MaskedChain {
			p.K = 5
		}
		d, err := EnrollDistillerPair(p, rng.New(42), rng.New(43))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if got := measureAppAllocs(t, d.App); got > appAllocBudget {
			t.Fatalf("DistillerPairDevice(%v).App allocates %.1f/op, budget %d", mode, got, appAllocBudget)
		}
	}
}
