package device

// Enrollment-path goldens captured from the repository before the
// scratch-buffer rebuild: the enrolled keys pin the manufacturing and
// enrollment RNG stream consumption (rng.NormFill must draw exactly as
// sequential Norm calls did), and the forked-oracle App stream pins
// Fork's fresh-scratch determinism.

import (
	"testing"

	"repro/internal/ecc"
	"repro/internal/groupbased"
	"repro/internal/pairing"
	"repro/internal/rng"
	"repro/internal/silicon"
	"repro/internal/tempco"
)

func TestGoldenEnrolledKeys(t *testing.T) {
	sp, err := EnrollSeqPair(SeqPairParams{
		Rows: 8, Cols: 16, ThresholdMHz: 0.8,
		Policy:     pairing.RandomizedStorage,
		Code:       ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3, Expurgate: true}),
		EnrollReps: 20,
	}, rng.New(42), rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sp.TrueKey().String(), "0110010011011111110100111000000101100010100111100011011101001000"; got != want {
		t.Errorf("seqpair key drifted:\n got %s\nwant %s", got, want)
	}

	gb, err := EnrollGroupBased(groupbased.Params{
		Rows: 4, Cols: 10, Degree: 2, ThresholdMHz: 0.5, MaxGroupSize: 6,
		Code: ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}), EnrollReps: 25,
	}, rng.New(42), rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := gb.TrueKey().String(), "100011100110011111010111110100001100101100101011110011111011011"; got != want {
		t.Errorf("groupbased key drifted:\n got %s\nwant %s", got, want)
	}

	tc, err := EnrollTempCo(tempco.Params{
		Rows: 8, Cols: 16, ThresholdMHz: 0.6, TminC: -25, TmaxC: 85,
		Policy: tempco.RandomSelection,
		Code:   ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}), EnrollReps: 15,
	}, rng.New(42), rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tc.TrueKey().String(), "0011011010001001000110011000000110011001010000010101"; got != want {
		t.Errorf("tempco key drifted:\n got %s\nwant %s", got, want)
	}

	mk, err := EnrollDistillerPair(DistillerPairParams{
		Rows: 4, Cols: 10, Degree: 2, Mode: MaskedChain, K: 5,
		Code: ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}), EnrollReps: 20,
	}, rng.New(42), rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mk.TrueKey().String(), "1011"; got != want {
		t.Errorf("masking key drifted: got %s want %s", got, want)
	}

	ch, err := EnrollDistillerPair(DistillerPairParams{
		Rows: 4, Cols: 10, Degree: 2, Mode: OverlappingChain,
		Code: ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}), EnrollReps: 20,
	}, rng.New(42), rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ch.TrueKey().String(), "000111101001110101101001110011110010100"; got != want {
		t.Errorf("chain key drifted:\n got %s\nwant %s", got, want)
	}
}

// TestGoldenCounterEnrolledKey pins the counter-mode enrollment
// contract (NewNoise key draw, rep-major averaged sweeps): a NEW
// contract with its own golden, alongside — not replacing — the stream
// goldens above.
func TestGoldenCounterEnrolledKey(t *testing.T) {
	sp, err := EnrollSeqPair(SeqPairParams{
		Rows: 8, Cols: 16, ThresholdMHz: 0.8,
		Policy:     pairing.RandomizedStorage,
		Code:       ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3, Expurgate: true}),
		EnrollReps: 20,
		Noise:      silicon.NoiseCounter,
	}, rng.New(42), rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sp.TrueKey().String(), "0001111001001111001100100010101010110100111101011110000010011000"; got != want {
		t.Errorf("counter-mode seqpair key drifted:\n got %s\nwant %s", got, want)
	}
	// Forked oracles derive their counter key from the fork seed alone;
	// an untouched helper must keep reconstructing the enrolled key.
	f := sp.Fork(777)
	for i := 0; i < 32; i++ {
		if !f.App() {
			t.Fatalf("counter fork777 App #%d failed; seed capture had an all-success stream", i)
		}
	}
	if f.Queries() != 32 || sp.Queries() != 0 {
		t.Fatalf("fork query isolation broken: fork=%d parent=%d", f.Queries(), sp.Queries())
	}
}

func TestGoldenForkAppStream(t *testing.T) {
	d, err := EnrollSeqPair(SeqPairParams{
		Rows: 8, Cols: 16, ThresholdMHz: 0.8,
		Policy:     pairing.RandomizedStorage,
		Code:       ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3, Expurgate: true}),
		EnrollReps: 20,
	}, rng.New(42), rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	f := d.Fork(777)
	for i := 0; i < 32; i++ {
		if !f.App() {
			t.Fatalf("fork777 App #%d failed; seed capture had an all-success stream", i)
		}
	}
	if f.Queries() != 32 || d.Queries() != 0 {
		t.Fatalf("fork query isolation broken: fork=%d parent=%d", f.Queries(), d.Queries())
	}
}
