package device

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/ecc"
	"repro/internal/fuzzy"
	"repro/internal/groupbased"
	"repro/internal/pairing"
	"repro/internal/rng"
	"repro/internal/silicon"
	"repro/internal/tempco"
)

func seqParams() SeqPairParams {
	return SeqPairParams{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.5,
		Policy:       pairing.RandomizedStorage,
		Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
		EnrollReps:   20,
	}
}

func TestSeqPairDeviceHonestApp(t *testing.T) {
	d, err := EnrollSeqPair(seqParams(), rng.New(1), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for i := 0; i < 20; i++ {
		if d.App() {
			ok++
		}
	}
	if ok < 18 {
		t.Fatalf("honest app succeeded only %d/20", ok)
	}
	if d.Queries() != 20 {
		t.Fatalf("queries %d", d.Queries())
	}
}

func TestSeqPairDeviceRejectsMalformedWrites(t *testing.T) {
	d, err := EnrollSeqPair(seqParams(), rng.New(3), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	h := d.ReadHelper()
	bad := h
	bad.Pairs = pairing.SeqPairHelper{Pairs: []pairing.Pair{{A: 0, B: 0}}}
	if err := d.WriteHelper(bad); err == nil {
		t.Error("reused oscillator must be rejected")
	}
	bad2 := h
	bad2.Offset = bitvec.New(3)
	if err := d.WriteHelper(bad2); err == nil {
		t.Error("wrong offset length must be rejected")
	}
}

func TestSeqPairSwapManipulationBehaviour(t *testing.T) {
	// Within-pair swap of exactly one pair: 1 error, within the radius,
	// app still works. Within-pair swaps of t+1 pairs: app fails.
	d, err := EnrollSeqPair(seqParams(), rng.New(5), rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	h := d.ReadHelper()
	tcap := d.Code().T()
	if d.NumPairs() < tcap+2 {
		t.Skip("not enough pairs")
	}

	one := d.ReadHelper()
	one.Pairs.Pairs[0] = one.Pairs.Pairs[0].Swapped()
	if err := d.WriteHelper(one); err != nil {
		t.Fatal(err)
	}
	okOne := 0
	for i := 0; i < 10; i++ {
		if d.App() {
			okOne++
		}
	}

	many := d.ReadHelper()
	copy(many.Pairs.Pairs, h.Pairs.Pairs)
	for i := 0; i <= tcap; i++ {
		many.Pairs.Pairs[i] = many.Pairs.Pairs[i].Swapped()
	}
	if err := d.WriteHelper(many); err != nil {
		t.Fatal(err)
	}
	okMany := 0
	for i := 0; i < 10; i++ {
		if d.App() {
			okMany++
		}
	}
	if okOne < 8 {
		t.Errorf("single swap: app worked only %d/10 (should be within radius)", okOne)
	}
	if okMany > 2 {
		t.Errorf("t+1 swaps: app worked %d/10 (should fail)", okMany)
	}
}

func TestTempCoDevice(t *testing.T) {
	p := tempco.Params{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.6,
		TminC:        -20, TmaxC: 80,
		Policy:     tempco.RandomSelection,
		Code:       ecc.MustBCH(ecc.BCHConfig{M: 6, T: 3}),
		EnrollReps: 25,
	}
	d, err := EnrollTempCo(p, rng.New(7), rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for i := 0; i < 10; i++ {
		if d.App() {
			ok++
		}
	}
	if ok < 8 {
		t.Fatalf("honest app %d/10", ok)
	}
	// Environment change within range keeps it alive.
	d.SetEnvironment(silicon.Environment{TempC: 60, VoltageV: 1.2})
	ok = 0
	for i := 0; i < 10; i++ {
		if d.App() {
			ok++
		}
	}
	if ok < 7 {
		t.Fatalf("warm app %d/10", ok)
	}
	h := d.ReadHelper()
	if err := d.WriteHelper(h); err != nil {
		t.Fatalf("writing back own helper failed: %v", err)
	}
}

func TestGroupBasedDeviceRebinding(t *testing.T) {
	p := groupbased.Params{
		Rows: 8, Cols: 16,
		Degree:       2,
		ThresholdMHz: 0.4,
		Code:         ecc.MustBCH(ecc.BCHConfig{M: 6, T: 3}),
		EnrollReps:   15,
	}
	d, err := EnrollGroupBased(p, rng.New(9), rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if !d.App() {
		t.Fatal("honest app failed")
	}
	// Write back the same helper: rebinding to the same key keeps the
	// app working.
	if err := d.WriteHelper(d.ReadHelper()); err != nil {
		t.Fatal(err)
	}
	ok := 0
	for i := 0; i < 10; i++ {
		if d.App() {
			ok++
		}
	}
	if ok < 8 {
		t.Fatalf("app after rewrite %d/10", ok)
	}
	if !d.TrueKey().Equal(d.TrueKey()) {
		t.Fatal("TrueKey not stable")
	}
}

func TestDistillerPairDeviceModes(t *testing.T) {
	for _, mode := range []PairingMode{MaskedChain, OverlappingChain} {
		p := DistillerPairParams{
			Rows: 4, Cols: 10, // the paper's Fig. 6 array
			Degree:     2,
			Mode:       mode,
			K:          5,
			Code:       ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
			EnrollReps: 15,
		}
		d, err := EnrollDistillerPair(p, rng.New(11), rng.New(12))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		ok := 0
		for i := 0; i < 10; i++ {
			if d.App() {
				ok++
			}
		}
		if ok < 8 {
			t.Fatalf("%v: honest app %d/10", mode, ok)
		}
		if mode == MaskedChain && len(d.ReadHelper().Masking.Selected) == 0 {
			t.Fatalf("%v: no masking selections", mode)
		}
		if mode == OverlappingChain && len(d.BasePairs()) != 39 {
			t.Fatalf("%v: %d base pairs, want 39", mode, len(d.BasePairs()))
		}
	}
}

func TestFuzzyDeviceResistsManipulationSideChannel(t *testing.T) {
	p := FuzzyParams{
		Rows: 4, Cols: 10,
		Extractor:  fuzzy.Params{Code: ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3})},
		EnrollReps: 20,
	}
	d, err := EnrollFuzzy(p, rng.New(13), rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	if ok := d.App(); !ok {
		t.Fatal("honest app failed")
	}
	// An in-radius helper manipulation makes the app fail ALWAYS,
	// independent of response bit values (key becomes hash of shifted
	// response).
	h := d.ReadHelper()
	h.W.Flip(0)
	if err := d.WriteHelper(h); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if d.App() {
			t.Fatal("manipulated fuzzy helper still derived the enrolled key")
		}
	}
}
