package device

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/ecc"
	"repro/internal/pairing"
	"repro/internal/rng"
	"repro/internal/silicon"
)

// SeqPairParams configures a sequential-pairing (LISA) device.
type SeqPairParams struct {
	Rows, Cols   int
	ThresholdMHz float64
	Policy       pairing.StoragePolicy
	Code         ecc.Code
	EnrollReps   int
}

// SeqPairHelperNVM is the construction's complete helper NVM content.
type SeqPairHelperNVM struct {
	Pairs  pairing.SeqPairHelper
	Offset bitvec.Vector
}

// SeqPairDevice is a deployed LISA device.
type SeqPairDevice struct {
	base
	arr    *silicon.Array
	params SeqPairParams
	nvm    SeqPairHelperNVM
	key    bitvec.Vector // enrolled key (secret, drives the observable)
	src    *rng.Source
}

// EnrollSeqPair manufactures and enrolls a device. srcMfg drives
// manufacturing variability, srcRun drives enrollment noise, helper
// randomization and all subsequent reconstruction noise.
func EnrollSeqPair(p SeqPairParams, srcMfg, srcRun *rng.Source) (*SeqPairDevice, error) {
	if p.Code == nil || p.EnrollReps < 1 {
		return nil, fmt.Errorf("device: invalid seqpair params %+v", p)
	}
	arr := silicon.NewArray(silicon.DefaultConfig(p.Rows, p.Cols), srcMfg)
	env := arr.Config().NominalEnv()
	f := arr.MeasureAveraged(env, srcRun, p.EnrollReps)
	helper := pairing.EnrollSeqPair(f, p.ThresholdMHz, p.Policy, srcRun)
	if len(helper.Pairs) == 0 {
		return nil, fmt.Errorf("device: enrollment selected no pairs (threshold %v too high)", p.ThresholdMHz)
	}
	resp := pairing.Responses(f, helper.Pairs)
	padded, blocks := padToBlocks(resp, p.Code)
	block := ecc.NewBlock(p.Code, blocks)
	off := ecc.EnrollOffset(block, padded, srcRun)
	d := &SeqPairDevice{
		base:   base{env: env},
		arr:    arr,
		params: p,
		nvm:    SeqPairHelperNVM{Pairs: helper, Offset: off.W},
		key:    resp,
		src:    srcRun,
	}
	return d, nil
}

// ReadHelper returns a deep copy of the helper NVM (attacker read access).
func (d *SeqPairDevice) ReadHelper() SeqPairHelperNVM {
	return SeqPairHelperNVM{
		Pairs:  pairing.SeqPairHelper{Pairs: append([]pairing.Pair(nil), d.nvm.Pairs.Pairs...)},
		Offset: d.nvm.Offset.Clone(),
	}
}

// WriteHelper overwrites the helper NVM (attacker write access). The
// device applies its structural sanity checks at write time and rejects
// malformed content; the paper's attacks pass these checks by design.
func (d *SeqPairDevice) WriteHelper(h SeqPairHelperNVM) error {
	if err := h.Pairs.Validate(d.arr.N()); err != nil {
		return err
	}
	if h.Offset.Len() != d.nvm.Offset.Len() {
		return fmt.Errorf("device: offset length %d, want %d", h.Offset.Len(), d.nvm.Offset.Len())
	}
	d.nvm = SeqPairHelperNVM{
		Pairs:  pairing.SeqPairHelper{Pairs: append([]pairing.Pair(nil), h.Pairs.Pairs...)},
		Offset: h.Offset.Clone(),
	}
	return nil
}

// NumPairs returns the enrolled pair count (public: it is the helper
// list's length).
func (d *SeqPairDevice) NumPairs() int { return len(d.nvm.Pairs.Pairs) }

// Code exposes the ECC parameters (public device specification).
func (d *SeqPairDevice) Code() ecc.Code { return d.params.Code }

// App reconstructs the key from current NVM and fresh measurements and
// compares it with the enrolled reference.
func (d *SeqPairDevice) App() bool {
	d.addQuery()
	f := d.arr.MeasureAll(d.env, d.src)
	resp := pairing.Responses(f, d.nvm.Pairs.Pairs)
	if resp.Len() != d.key.Len() {
		return false
	}
	padded, blocks := padToBlocks(resp, d.params.Code)
	if padded.Len() != d.nvm.Offset.Len() {
		return false
	}
	block := ecc.NewBlock(d.params.Code, blocks)
	recovered, _, ok := ecc.Reproduce(block, ecc.Offset{W: d.nvm.Offset}, padded)
	if !ok {
		return false
	}
	return keysEqual(recovered.Slice(0, d.key.Len()), d.key)
}

// TrueKey returns the enrolled key. Evaluation-only: attacks never call
// it; benches use it to score recovery.
func (d *SeqPairDevice) TrueKey() bitvec.Vector { return d.key.Clone() }

// Fork returns an independent oracle clone: same silicon and enrollment,
// its own helper NVM copy and query counter, and measurement noise drawn
// from a fresh stream seeded by seed. Batched attack backends fork one
// clone per hypothesis arm so concurrent queries neither race nor
// entangle their noise streams.
func (d *SeqPairDevice) Fork(seed uint64) *SeqPairDevice {
	f := &SeqPairDevice{
		arr:    d.arr,
		params: d.params,
		nvm:    d.ReadHelper(),
		key:    d.key.Clone(),
		src:    rng.New(seed),
	}
	f.env = d.env
	return f
}

func padToBlocks(resp bitvec.Vector, code ecc.Code) (bitvec.Vector, int) {
	n := code.N()
	blocks := (resp.Len() + n - 1) / n
	if blocks == 0 {
		blocks = 1
	}
	return resp.Concat(bitvec.New(blocks*n - resp.Len())), blocks
}
