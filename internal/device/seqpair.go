package device

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/ecc"
	"repro/internal/pairing"
	"repro/internal/rng"
	"repro/internal/silicon"
)

// SeqPairParams configures a sequential-pairing (LISA) device.
type SeqPairParams struct {
	Rows, Cols   int
	ThresholdMHz float64
	Policy       pairing.StoragePolicy
	Code         ecc.Code
	EnrollReps   int
	// Noise selects the silicon measurement-noise model; the zero value
	// is the legacy sequential-stream model.
	Noise silicon.NoiseModelKind
}

// SeqPairHelperNVM is the construction's complete helper NVM content.
type SeqPairHelperNVM struct {
	Pairs  pairing.SeqPairHelper
	Offset bitvec.Vector
}

// SeqPairDevice is a deployed LISA device.
type SeqPairDevice struct {
	base
	arr    *silicon.Array
	params SeqPairParams
	nvm    SeqPairHelperNVM
	key    bitvec.Vector // enrolled key (secret, drives the observable)
	src    *rng.Source
	// noise is the per-oracle measurement-noise state (stream source or
	// counter-mode sweep counter); Fork builds a fresh one per clone.
	noise   silicon.NoiseModel
	scratch seqPairScratch
}

// seqPairScratch is the device's reusable reconstruction state: the
// sparse-measurement mask derived from the stored pair list, the
// frequency and codeword buffers, and the ECC decode workspace. It makes
// a steady-state App call allocation-free; WriteHelper invalidates it.
// Scratch is per-device state, NOT concurrency-safe — Fork clones a
// device precisely so each concurrent arm owns its own scratch.
type seqPairScratch struct {
	helperValid bool
	freq        []float64
	want        []bool
	idxs        []int
	bases       silicon.BaseCache
	blocks      int
	block       *ecc.Block
	padded      bitvec.Vector
	recovered   bitvec.Vector
	ws          ecc.Workspace
}

// refresh rebuilds the helper-derived caches from the current NVM.
func (d *SeqPairDevice) refreshScratch() {
	sc := &d.scratch
	n := d.arr.N()
	if cap(sc.want) < n {
		sc.want = make([]bool, n)
		sc.freq = make([]float64, n)
	}
	sc.want = sc.want[:n]
	sc.freq = sc.freq[:n]
	for i := range sc.want {
		sc.want[i] = false
	}
	for _, p := range d.nvm.Pairs.Pairs {
		sc.want[p.A] = true
		sc.want[p.B] = true
	}
	sc.idxs = sc.idxs[:0]
	for i, wanted := range sc.want {
		if wanted {
			sc.idxs = append(sc.idxs, i)
		}
	}
	cn := d.params.Code.N()
	blocks := (len(d.nvm.Pairs.Pairs) + cn - 1) / cn
	if blocks == 0 {
		blocks = 1
	}
	if sc.block == nil || sc.blocks != blocks {
		sc.block = ecc.NewBlock(d.params.Code, blocks)
		sc.blocks = blocks
	}
	if padLen := blocks * cn; sc.padded.Len() != padLen {
		sc.padded = bitvec.New(padLen)
		sc.recovered = bitvec.New(padLen)
	}
	sc.helperValid = true
}

// EnrollSeqPair manufactures and enrolls a device. srcMfg drives
// manufacturing variability, srcRun drives enrollment noise, helper
// randomization and all subsequent reconstruction noise.
func EnrollSeqPair(p SeqPairParams, srcMfg, srcRun *rng.Source) (*SeqPairDevice, error) {
	return EnrollSeqPairReuse(nil, p, srcMfg, srcRun)
}

// EnrollSeqPairReuse is EnrollSeqPair adopting a previously enrolled
// device's backing storage: the device struct, its silicon component
// buffers (Array.Remanufactured), and the warm scratch capacity are
// reused in place of fresh allocations — the campaign device-pool path.
// The result is bit-identical to a fresh EnrollSeqPair on the same
// sources. prev may be nil (a fresh enrollment); prev must not be used
// again by the caller — on error it is left mid-remanufacture and must
// be discarded, not reused.
func EnrollSeqPairReuse(prev *SeqPairDevice, p SeqPairParams, srcMfg, srcRun *rng.Source) (*SeqPairDevice, error) {
	if p.Code == nil || p.EnrollReps < 1 {
		return nil, fmt.Errorf("device: invalid seqpair params %+v", p)
	}
	cfg := silicon.DefaultConfig(p.Rows, p.Cols)
	cfg.Noise = p.Noise
	var prevArr *silicon.Array
	if prev != nil {
		prevArr = prev.arr
	}
	arr := prevArr.Remanufactured(cfg, srcMfg)
	env := arr.Config().NominalEnv()
	noise := arr.NewNoise(srcRun)
	f := arr.MeasureAveragedWith(env, noise, p.EnrollReps)
	helper := pairing.EnrollSeqPair(f, p.ThresholdMHz, p.Policy, srcRun)
	if len(helper.Pairs) == 0 {
		return nil, fmt.Errorf("device: enrollment selected no pairs (threshold %v too high)", p.ThresholdMHz)
	}
	resp := pairing.Responses(f, helper.Pairs)
	padded, blocks := padToBlocks(resp, p.Code)
	block := ecc.NewBlock(p.Code, blocks)
	off := ecc.EnrollOffset(block, padded, srcRun)
	d := prev
	if d == nil {
		d = &SeqPairDevice{}
	}
	d.base.reset(env)
	d.arr = arr
	d.params = p
	d.nvm = SeqPairHelperNVM{Pairs: helper, Offset: off.W}
	d.key = resp
	d.src = srcRun
	d.noise = noise
	// The remanufactured array lives at the same pointer, so the
	// env+length check of the scratch's BaseCache cannot detect the
	// content change — invalidate explicitly along with the
	// helper-derived caches.
	d.scratch.helperValid = false
	d.scratch.bases.Invalidate()
	return d, nil
}

// ReadHelper returns a deep copy of the helper NVM (attacker read access).
func (d *SeqPairDevice) ReadHelper() SeqPairHelperNVM {
	return SeqPairHelperNVM{
		Pairs:  pairing.SeqPairHelper{Pairs: append([]pairing.Pair(nil), d.nvm.Pairs.Pairs...)},
		Offset: d.nvm.Offset.Clone(),
	}
}

// HelperView returns the helper NVM content sharing the device's own
// storage: a read-only fast path for serialization-style consumers
// (adapters marshaling the NVM into an image) that would otherwise
// deep-copy and immediately discard. Callers must not mutate it and must
// not retain it across a WriteHelper.
func (d *SeqPairDevice) HelperView() SeqPairHelperNVM { return d.nvm }

// WriteHelper overwrites the helper NVM (attacker write access). The
// device applies its structural sanity checks at write time and rejects
// malformed content; the paper's attacks pass these checks by design.
func (d *SeqPairDevice) WriteHelper(h SeqPairHelperNVM) error {
	if err := h.Pairs.Validate(d.arr.N()); err != nil {
		return err
	}
	if h.Offset.Len() != d.nvm.Offset.Len() {
		return fmt.Errorf("device: offset length %d, want %d", h.Offset.Len(), d.nvm.Offset.Len())
	}
	// Copy into the device-owned NVM buffers in place: helper writes are
	// the attack loops' second hot path, and the buffers' lifetimes are
	// the device's own (HelperView callers must not hold a view across a
	// write, which is its documented contract).
	d.nvm.Pairs.Pairs = append(d.nvm.Pairs.Pairs[:0], h.Pairs.Pairs...)
	h.Offset.CopyInto(d.nvm.Offset)
	d.scratch.helperValid = false
	d.bumpNVM()
	return nil
}

// NumPairs returns the enrolled pair count (public: it is the helper
// list's length).
func (d *SeqPairDevice) NumPairs() int { return len(d.nvm.Pairs.Pairs) }

// Code exposes the ECC parameters (public device specification).
func (d *SeqPairDevice) Code() ecc.Code { return d.params.Code }

// App reconstructs the key from current NVM and fresh measurements and
// compares it with the enrolled reference. The reconstruction runs
// entirely in the device's scratch buffers (sparse measurement of the
// helper-referenced oscillators, decode-into ECC), allocation-free in
// steady state and bit-identical — keys, outcomes and noise-stream
// consumption — to the allocating path it replaced.
func (d *SeqPairDevice) App() bool {
	d.addQuery()
	sc := &d.scratch
	if !sc.helperValid {
		d.refreshScratch()
	}
	f := d.arr.MeasureSparseBase(sc.freq, sc.idxs, sc.bases.For(d.arr, d.env), d.noise)
	pairs := d.nvm.Pairs.Pairs
	if len(pairs) != d.key.Len() {
		return false
	}
	if sc.padded.Len() != d.nvm.Offset.Len() {
		return false
	}
	sc.padded.Zero()
	for i, p := range pairs {
		if pairing.ResponseBit(f, p) {
			sc.padded.Set(i, true)
		}
	}
	if _, ok := ecc.ReproduceInto(sc.block, ecc.Offset{W: d.nvm.Offset}, sc.padded, &sc.ws, sc.recovered); !ok {
		return false
	}
	return sc.recovered.HasPrefix(d.key)
}

// TrueKey returns the enrolled key. Evaluation-only: attacks never call
// it; benches use it to score recovery.
func (d *SeqPairDevice) TrueKey() bitvec.Vector { return d.key.Clone() }

// Fork returns an independent oracle clone: same silicon and enrollment,
// its own helper NVM copy and query counter, and measurement noise drawn
// from a fresh stream seeded by seed. Batched attack backends fork one
// clone per hypothesis arm so concurrent queries neither race nor
// entangle their noise streams.
func (d *SeqPairDevice) Fork(seed uint64) *SeqPairDevice {
	f := &SeqPairDevice{
		arr:    d.arr,
		params: d.params,
		nvm:    d.ReadHelper(),
		key:    d.key.Clone(),
		src:    rng.New(seed),
	}
	f.noise = d.arr.NewNoise(f.src)
	f.env = d.env
	return f
}

// NoiseModel reports the silicon noise model the oracle runs under
// (public device specification).
func (d *SeqPairDevice) NoiseModel() silicon.NoiseModelKind { return d.params.Noise }

func padToBlocks(resp bitvec.Vector, code ecc.Code) (bitvec.Vector, int) {
	n := code.N()
	blocks := (resp.Len() + n - 1) / n
	if blocks == 0 {
		blocks = 1
	}
	return resp.Concat(bitvec.New(blocks*n - resp.Len())), blocks
}
