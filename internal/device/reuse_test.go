package device

import (
	"testing"

	"repro/internal/ecc"
	"repro/internal/groupbased"
	"repro/internal/rng"
	"repro/internal/silicon"
	"repro/internal/tempco"
)

// appTrace runs n App queries and returns the outcome sequence — the
// full observable of one device lifetime, compared bit-for-bit between
// the fresh and reuse enrollment paths.
func appTrace(d Device, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = d.App()
	}
	return out
}

func tracesEqual(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEnrollReuseMatchesFresh pins the device-pool contract for all
// four constructions: enrolling seed B into the carcass of seed A's
// device — after A's device has warmed its scratch caches with queries
// — is bit-identical to a fresh enrollment of seed B (same key, same
// App outcome sequence), preserves device and array pointer identity,
// and resets the query counter.
func TestEnrollReuseMatchesFresh(t *testing.T) {
	const queries = 12
	seedPairs := [][2]uint64{{101, 102}, {201, 202}, {301, 302}}

	for _, noise := range []silicon.NoiseModelKind{silicon.NoiseStream, silicon.NoiseCounter} {
		t.Run(noise.String(), func(t *testing.T) {
			t.Run("seqpair", func(t *testing.T) {
				p := seqParams()
				p.Noise = noise
				var pooled *SeqPairDevice
				for _, seeds := range seedPairs {
					fresh, err := EnrollSeqPair(p, rng.New(seeds[0]), rng.New(seeds[1]))
					if err != nil {
						t.Fatal(err)
					}
					prev := pooled
					pooled, err = EnrollSeqPairReuse(pooled, p, rng.New(seeds[0]), rng.New(seeds[1]))
					if err != nil {
						t.Fatal(err)
					}
					if prev != nil && (pooled != prev || pooled.arr != prev.arr) {
						t.Fatalf("seeds %v: reuse did not preserve device/array identity", seeds)
					}
					if pooled.Queries() != 0 {
						t.Fatalf("seeds %v: reuse left %d queries on the counter", seeds, pooled.Queries())
					}
					if !pooled.TrueKey().Equal(fresh.TrueKey()) {
						t.Fatalf("seeds %v: reuse enrolled a different key", seeds)
					}
					if !tracesEqual(appTrace(fresh, queries), appTrace(pooled, queries)) {
						t.Fatalf("seeds %v: reuse App outcomes diverge from fresh", seeds)
					}
				}
			})

			t.Run("tempco", func(t *testing.T) {
				p := tempco.Params{
					Rows: 8, Cols: 16,
					ThresholdMHz: 0.6,
					TminC:        -20, TmaxC: 80,
					Policy:     tempco.RandomSelection,
					Code:       ecc.MustBCH(ecc.BCHConfig{M: 6, T: 3}),
					EnrollReps: 25,
					Noise:      noise,
				}
				var pooled *TempCoDevice
				for _, seeds := range seedPairs {
					fresh, err := EnrollTempCo(p, rng.New(seeds[0]), rng.New(seeds[1]))
					if err != nil {
						t.Fatal(err)
					}
					pooled, err = EnrollTempCoReuse(pooled, p, rng.New(seeds[0]), rng.New(seeds[1]))
					if err != nil {
						t.Fatal(err)
					}
					if !pooled.TrueKey().Equal(fresh.TrueKey()) {
						t.Fatalf("seeds %v: reuse enrolled a different key", seeds)
					}
					// Warm the BaseCache at one environment, then move the
					// operating point: a stale noise-free frequency cache
					// from the previous silicon diverges immediately.
					fresh.SetEnvironment(silicon.Environment{TempC: 60, VoltageV: 1.2})
					pooled.SetEnvironment(silicon.Environment{TempC: 60, VoltageV: 1.2})
					if !tracesEqual(appTrace(fresh, queries), appTrace(pooled, queries)) {
						t.Fatalf("seeds %v: reuse App outcomes diverge from fresh", seeds)
					}
				}
			})

			t.Run("groupbased", func(t *testing.T) {
				p := groupbased.Params{
					Rows: 8, Cols: 16,
					Degree:       2,
					ThresholdMHz: 0.4,
					Code:         ecc.MustBCH(ecc.BCHConfig{M: 6, T: 3}),
					EnrollReps:   15,
					Noise:        noise,
				}
				var pooled *GroupBasedDevice
				for _, seeds := range seedPairs {
					fresh, err := EnrollGroupBased(p, rng.New(seeds[0]), rng.New(seeds[1]))
					if err != nil {
						t.Fatal(err)
					}
					pooled, err = EnrollGroupBasedReuse(pooled, p, rng.New(seeds[0]), rng.New(seeds[1]))
					if err != nil {
						t.Fatal(err)
					}
					if !pooled.TrueKey().Equal(fresh.TrueKey()) {
						t.Fatalf("seeds %v: reuse enrolled a different key", seeds)
					}
					// Exercise the rebind path too: helper rewrite consumes
					// one reconstruction's noise on both sides.
					if err := fresh.WriteHelper(fresh.ReadHelper()); err != nil {
						t.Fatal(err)
					}
					if err := pooled.WriteHelper(pooled.ReadHelper()); err != nil {
						t.Fatal(err)
					}
					if !tracesEqual(appTrace(fresh, queries), appTrace(pooled, queries)) {
						t.Fatalf("seeds %v: reuse App outcomes diverge from fresh", seeds)
					}
				}
			})

			t.Run("distillerpair", func(t *testing.T) {
				for _, mode := range []PairingMode{MaskedChain, OverlappingChain} {
					p := DistillerPairParams{
						Rows: 4, Cols: 10,
						Degree:     2,
						Mode:       mode,
						K:          5,
						Code:       ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
						EnrollReps: 15,
						Noise:      noise,
					}
					var pooled *DistillerPairDevice
					for _, seeds := range seedPairs {
						fresh, err := EnrollDistillerPair(p, rng.New(seeds[0]), rng.New(seeds[1]))
						if err != nil {
							t.Fatal(err)
						}
						prev := pooled
						pooled, err = EnrollDistillerPairReuse(pooled, p, rng.New(seeds[0]), rng.New(seeds[1]))
						if err != nil {
							t.Fatal(err)
						}
						if prev != nil && &prev.basePair[0] != &pooled.basePair[0] {
							t.Fatalf("%v seeds %v: reuse rebuilt the architecture-fixed pair list", mode, seeds)
						}
						if !pooled.TrueKey().Equal(fresh.TrueKey()) {
							t.Fatalf("%v seeds %v: reuse enrolled a different key", mode, seeds)
						}
						if !tracesEqual(appTrace(fresh, queries), appTrace(pooled, queries)) {
							t.Fatalf("%v seeds %v: reuse App outcomes diverge from fresh", mode, seeds)
						}
					}
				}
			})
		})
	}
}
