package device

import (
	"sync"
	"testing"

	"repro/internal/ecc"
	"repro/internal/pairing"
	"repro/internal/rng"
	"repro/internal/silicon"
)

// TestQueriesCounterConcurrency hammers the shared query counter from
// many goroutines. Run under -race (the CI default) it proves the
// counter the batched oracle backend aggregates across forks cannot
// race with readers.
func TestQueriesCounterConcurrency(t *testing.T) {
	var b base
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				b.addQuery()
				_ = b.Queries()
			}
		}()
	}
	wg.Wait()
	if got := b.Queries(); got != goroutines*perG {
		t.Fatalf("counter lost updates: %d, want %d", got, goroutines*perG)
	}
}

// TestForkedDevicesQueryConcurrently drives App on independent forks in
// parallel while the parent's counter is read — the exact access pattern
// of attack.BatchTarget evaluating hypothesis arms.
func TestForkedDevicesQueryConcurrently(t *testing.T) {
	d, err := EnrollSeqPair(SeqPairParams{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.8,
		Policy:       pairing.RandomizedStorage,
		Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
		EnrollReps:   20,
	}, rng.New(1), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	const forks, queries = 8, 25
	var wg sync.WaitGroup
	for f := 0; f < forks; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			fork := d.Fork(rng.StreamSeed(42, uint64(f)))
			for i := 0; i < queries; i++ {
				fork.App()
				_ = d.Queries() // concurrent parent reads must not race
			}
			if fork.Queries() != queries {
				t.Errorf("fork %d counted %d queries, want %d", f, fork.Queries(), queries)
			}
		}(f)
	}
	wg.Wait()
	if d.Queries() != 0 {
		t.Fatalf("parent counter moved: %d", d.Queries())
	}
	// The parent must still reconstruct after all forks are done.
	ok := 0
	for i := 0; i < 10; i++ {
		if d.App() {
			ok++
		}
	}
	if ok < 8 {
		t.Fatalf("parent broken after forked queries: %d/10", ok)
	}
}

// TestForkDeterminism pins the fork contract the batched backend's
// worker-invariance proof rests on: equal seeds yield identical query
// transcripts.
func TestForkDeterminism(t *testing.T) {
	d, err := EnrollSeqPair(SeqPairParams{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.8,
		Policy:       pairing.RandomizedStorage,
		Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
		EnrollReps:   20,
	}, rng.New(3), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	a, b := d.Fork(777), d.Fork(777)
	for i := 0; i < 50; i++ {
		if a.App() != b.App() {
			t.Fatalf("equal-seed forks diverged at query %d", i)
		}
	}
}

// TestForkQueryIsolationBothNoiseModels pins the fork contract under
// each silicon noise model: a fork's queries succeed at a healthy
// enrollment, accrue on the fork's own counter, and never leak into the
// parent's — the invariant attack.BatchTarget's accounting relies on.
func TestForkQueryIsolationBothNoiseModels(t *testing.T) {
	for _, noise := range []silicon.NoiseModelKind{silicon.NoiseStream, silicon.NoiseCounter} {
		t.Run(noise.String(), func(t *testing.T) {
			d, err := EnrollSeqPair(SeqPairParams{
				Rows: 8, Cols: 16,
				ThresholdMHz: 0.8,
				Policy:       pairing.RandomizedStorage,
				Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
				EnrollReps:   20,
				Noise:        noise,
			}, rng.New(42), rng.New(43))
			if err != nil {
				t.Fatal(err)
			}
			f := d.Fork(777)
			ok := 0
			for i := 0; i < 32; i++ {
				if f.App() {
					ok++
				}
			}
			if ok < 30 {
				t.Fatalf("forked device unhealthy: %d/32 reconstructions", ok)
			}
			if f.Queries() != 32 {
				t.Fatalf("fork counted %d queries, want 32", f.Queries())
			}
			if d.Queries() != 0 {
				t.Fatalf("fork queries leaked into parent: %d", d.Queries())
			}
		})
	}
}
