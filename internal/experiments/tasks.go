package experiments

// This file exposes every experiment entry point as a registered
// campaign.Task behind the uniform Spec → Result interface, so
// cmd/puf-campaign (and any future sharding/batching layer) can fan any
// of them out over seed ranges without bespoke glue. Registration
// happens at init time; the campaign package itself stays free of
// experiment dependencies.

import (
	"context"
	"fmt"
	"math"

	"repro/internal/campaign"
	"repro/internal/rng"
	"repro/internal/silicon"
	"repro/internal/transcript"
)

// taskNoise resolves the campaign-wide noise-model option for the
// attack-backed tasks; empty means the legacy stream model.
func taskNoise(opt campaign.Options) (silicon.NoiseModelKind, error) {
	if opt.Noise == "" {
		return silicon.NoiseStream, nil
	}
	return silicon.ParseNoiseModel(opt.Noise)
}

func init() {
	campaign.Register(campaign.Task{
		Name: "table-i", Desc: "Table I: compact and Kendall codings of all 24 orders", Figure: "Table I",
		Run: func(_ context.Context, seed uint64, _ campaign.Options) (campaign.Metrics, error) {
			rows := TableI()
			if len(rows) != 24 {
				return nil, fmt.Errorf("experiments: Table I has %d rows", len(rows))
			}
			return campaign.Metrics{
				"rows":         float64(len(rows)),
				"compact-bits": float64(len(rows[0].Compact)),
				"kendall-bits": float64(len(rows[0].Kendall)),
			}, nil
		},
	})

	campaign.Register(campaign.Task{
		Name: "fig2", Desc: "frequency-topology variance decomposition", Figure: "Fig. 2",
		Run: func(_ context.Context, seed uint64, _ campaign.Options) (campaign.Metrics, error) {
			r, err := Fig2(seed)
			if err != nil {
				return nil, err
			}
			return campaign.Metrics{
				"raw-var-MHz2":    r.RawVariance,
				"syst-var-MHz2":   r.SystVariance,
				"random-var-MHz2": r.RandVariance,
				"resid-var-MHz2":  r.ResidualVar,
				"distill-gain":    r.RawVariance / r.ResidualVar,
			}, nil
		},
	})

	campaign.Register(campaign.Task{
		Name: "fig3", Desc: "good/bad/cooperating pair classification at dfth = 0.6 MHz", Figure: "Fig. 3",
		Run: func(_ context.Context, seed uint64, _ campaign.Options) (campaign.Metrics, error) {
			rows, err := Fig3(seed, []float64{0.6})
			if err != nil {
				return nil, err
			}
			return campaign.Metrics{
				"good-pairs": float64(rows[0].Good),
				"bad-pairs":  float64(rows[0].Bad),
				"coop-pairs": float64(rows[0].Coop),
				"key-bits":   float64(rows[0].KeyBits),
			}, nil
		},
	})

	campaign.Register(campaign.Task{
		Name: "fig5", Desc: "error-count PDFs and hypothesis distinguishability", Figure: "Fig. 5",
		Run: func(_ context.Context, seed uint64, _ campaign.Options) (campaign.Metrics, error) {
			r, err := Fig5(seed, 300)
			if err != nil {
				return nil, err
			}
			return campaign.Metrics{
				"p-fail-nominal": r.FailNominal,
				"p-fail-H0":      r.FailH0,
				"p-fail-H1":      r.FailH1,
				"tv-distance":    r.TVDistance,
				"fixed-samples":  float64(r.FixedSamples),
			}, nil
		},
	})

	campaign.Register(campaign.Task{
		Name: "groupbased-attack", Desc: "§VI-C group-based key recovery", Figure: "Fig. 6a",
		Binary: []string{"recovered"},
		Run: func(ctx context.Context, seed uint64, opt campaign.Options) (campaign.Metrics, error) {
			r, err := RunAttackPooled(ctx, transcript.Spec{Attack: "groupbased", Seed: seed, Noise: opt.Noise}, opt.Pool)
			if err != nil {
				return nil, err
			}
			return campaign.Metrics{
				"recovered":      campaign.Bool(r.Recovered),
				"key-bits":       float64(r.EnrolledKeyBits),
				"groups":         float64(r.Groups),
				"resolved":       float64(r.Resolved),
				"oracle-queries": float64(r.Queries),
			}, nil
		},
	})

	campaign.Register(campaign.Task{
		Name: "masking-attack", Desc: "§VI-D distiller + 1-out-of-5 masking key recovery", Figure: "Fig. 6b",
		Binary: []string{"recovered"},
		Run: func(ctx context.Context, seed uint64, opt campaign.Options) (campaign.Metrics, error) {
			r, err := RunAttackPooled(ctx, transcript.Spec{Attack: "masking", Seed: seed, Noise: opt.Noise}, opt.Pool)
			if err != nil {
				return nil, err
			}
			return campaign.Metrics{
				"recovered":      campaign.Bool(r.Recovered),
				"key-bits":       float64(r.EnrolledKeyBits),
				"base-bits":      float64(r.BaseBits),
				"oracle-queries": float64(r.Queries),
			}, nil
		},
	})

	campaign.Register(campaign.Task{
		Name: "chain-attack", Desc: "§VI-D distiller + overlapping chain key recovery", Figure: "Fig. 6c",
		Binary: []string{"recovered"},
		Run: func(ctx context.Context, seed uint64, opt campaign.Options) (campaign.Metrics, error) {
			r, err := RunAttackPooled(ctx, transcript.Spec{Attack: "chain", Seed: seed, Noise: opt.Noise}, opt.Pool)
			if err != nil {
				return nil, err
			}
			return campaign.Metrics{
				"recovered":      campaign.Bool(r.Recovered),
				"key-bits":       float64(r.EnrolledKeyBits),
				"max-hypotheses": float64(r.MaxHypotheses),
				"oracle-queries": float64(r.Queries),
			}, nil
		},
	})

	campaign.Register(campaign.Task{
		Name: "seqpair-attack", Desc: "§VI-A sequential-pairing (LISA) key recovery, expurgated code", Figure: "§VI-A",
		Binary: []string{"recovered", "up-to-complement", "ambiguous"},
		Run: func(ctx context.Context, seed uint64, opt campaign.Options) (campaign.Metrics, error) {
			r, err := RunAttackPooled(ctx, transcript.Spec{
				Attack: "seqpair", Seed: seed, Noise: opt.Noise, Expurgate: true,
			}, opt.Pool)
			if err != nil {
				return nil, err
			}
			return campaign.Metrics{
				"recovered":        campaign.Bool(r.Recovered),
				"up-to-complement": campaign.Bool(r.UpToComplement),
				"ambiguous":        campaign.Bool(r.Ambiguous),
				"key-bits":         float64(r.EnrolledKeyBits),
				"oracle-queries":   float64(r.Queries),
			}, nil
		},
	})

	campaign.Register(campaign.Task{
		Name: "tempco-attack", Desc: "§VI-B temperature-aware relation recovery", Figure: "§VI-B",
		Run: func(ctx context.Context, seed uint64, opt campaign.Options) (campaign.Metrics, error) {
			r, err := RunAttackPooled(ctx, transcript.Spec{Attack: "tempco", Seed: seed, Noise: opt.Noise}, opt.Pool)
			if err != nil {
				return nil, err
			}
			m := campaign.Metrics{
				"coop-pairs":      float64(r.CoopPairs),
				"relations-found": float64(r.RelationsFound),
				"mask-bits-found": float64(r.MaskBitsFound),
				"skipped":         float64(r.Skipped),
				"oracle-queries":  float64(r.Queries),
			}
			if r.RelationsFound > 0 {
				m["relation-accuracy"] = float64(r.RelationsRight) / float64(r.RelationsFound)
			}
			return m, nil
		},
	})

	campaign.Register(campaign.Task{
		Name: "entropy", Desc: "entropy accounting at threshold 0.5 MHz", Figure: "§II/§V-B",
		Run: func(_ context.Context, seed uint64, _ campaign.Options) (campaign.Metrics, error) {
			rows := EntropyAccounting(seed, []float64{0.5})
			if len(rows) == 0 {
				return nil, fmt.Errorf("experiments: entropy accounting produced no rows")
			}
			return campaign.Metrics{
				"groups":       float64(rows[0].Groups),
				"entropy-bits": rows[0].EntropyBits,
				"key-bits":     float64(rows[0].KeyBits),
				"total-bits":   rows[0].TotalBits,
			}, nil
		},
	})

	campaign.Register(campaign.Task{
		Name: "fuzzy-resistance", Desc: "manipulation advantage: fuzzy extractor vs LISA", Figure: "§VII",
		Run: func(_ context.Context, seed uint64, _ campaign.Options) (campaign.Metrics, error) {
			r, err := FuzzyResistance(seed, 40)
			if err != nil {
				return nil, err
			}
			return campaign.Metrics{
				"fuzzy-advantage": r.FuzzyAdvantage,
				"lisa-advantage":  r.SeqPairAdvantage,
				"oracle-queries":  float64(r.Queries),
			}, nil
		},
	})

	campaign.Register(campaign.Task{
		Name: "ablation-storage", Desc: "direct helper leakage of sorted vs randomized storage", Figure: "§VII-C",
		Run: func(ctx context.Context, seed uint64, _ campaign.Options) (campaign.Metrics, error) {
			// workers = 1: the campaign pool already parallelizes across
			// seeds; a nested pool would oversubscribe the host.
			r, err := AblationStoragePolicyWorkers(ctx, seed, 5, 1)
			if err != nil {
				return nil, err
			}
			return campaign.Metrics{
				"sorted-ones-fraction":     r.SortedOnesFraction,
				"randomized-ones-fraction": r.RandomizedOnesFraction,
			}, nil
		},
	})

	campaign.Register(campaign.Task{
		Name: "ablation-strategy", Desc: "sequential vs fixed-sample distinguisher oracle cost",
		Binary: []string{"both-recovered"},
		Run: func(_ context.Context, seed uint64, _ campaign.Options) (campaign.Metrics, error) {
			r, err := AblationStrategy(seed)
			if err != nil {
				return nil, err
			}
			return campaign.Metrics{
				"sequential-queries": float64(r.SequentialQueries),
				"fixed-queries":      float64(r.FixedSampleQueries),
				"both-recovered":     campaign.Bool(r.BothRecovered),
			}, nil
		},
	})

	campaign.Register(campaign.Task{
		Name: "ablation-offset", Desc: "common-offset sweep from 1 to the code radius",
		Binary: []string{"recovered-at-t"},
		Run: func(ctx context.Context, seed uint64, _ campaign.Options) (campaign.Metrics, error) {
			rows, err := AblationOffsetSizeWorkers(ctx, seed, 1)
			if err != nil {
				return nil, err
			}
			first, last := rows[0], rows[len(rows)-1]
			return campaign.Metrics{
				"separation-at-1": first.PElevated - first.PNominal,
				"separation-at-t": last.PElevated - last.PNominal,
				"queries-at-t":    float64(last.Queries),
				"recovered-at-t":  campaign.Bool(last.Recovered),
				"offset-levels":   float64(len(rows)),
			}, nil
		},
	})

	campaign.Register(campaign.Task{
		Name: "attack-success", Desc: "all five attacks on one device population per seed",
		Binary: []string{
			"seqpair-recovered", "groupbased-recovered",
			"masking-recovered", "chain-recovered",
		},
		Run: func(ctx context.Context, seed uint64, opt campaign.Options) (campaign.Metrics, error) {
			noise, err := taskNoise(opt)
			if err != nil {
				return nil, err
			}
			o, err := attackAllOnSeed(ctx, seed, noise, opt.Pool)
			if err != nil {
				return nil, err
			}
			m := campaign.Metrics{
				"seqpair-recovered":    campaign.Bool(o.seqPair),
				"groupbased-recovered": campaign.Bool(o.groupBased),
				"masking-recovered":    campaign.Bool(o.masking),
				"chain-recovered":      campaign.Bool(o.chain),
			}
			if o.relFound > 0 {
				m["tempco-relation-accuracy"] = float64(o.relRight) / float64(o.relFound)
			}
			return m, nil
		},
	})

	campaign.Register(campaign.Task{
		Name: "fleet-sweep", Desc: "SoA fleet measurement: 64 counter-noise devices, interleaved env sweeps",
		Run: func(_ context.Context, seed uint64, opt campaign.Options) (campaign.Metrics, error) {
			const devices, sweeps = 64, 8
			cfg := silicon.DefaultConfig(8, 16)
			cfg.Noise = silicon.NoiseCounter
			seeds := make([]uint64, devices)
			for d := range seeds {
				seeds[d] = rng.StreamSeed(seed, uint64(d))
			}
			fleet := silicon.NewFleet(cfg, seeds)
			// The measurement matrix is seed-independent scratch; reuse it
			// across the worker's task instances when a pool is installed.
			rows := devices * fleet.NumOsc()
			dst, _ := opt.Pool.Get("fleet-sweep:scratch", func() any {
				return make([]float64, rows)
			}).([]float64)
			if len(dst) != rows {
				dst = make([]float64, rows)
			}
			envs := [2]silicon.Environment{cfg.NominalEnv(), {TempC: 80, VoltageV: 1.1}}
			var sum [2]float64
			for s := 0; s < sweeps; s++ {
				fleet.MeasureFleetInto(dst, envs[s%2])
				for _, f := range dst {
					sum[s%2] += f
				}
			}
			perEnv := float64(sweeps / 2 * rows)
			meanNom := sum[0] / perEnv
			meanHot := sum[1] / perEnv
			// Device-to-device spread of per-device means on one final
			// nominal sweep — the fleet-level process-variation figure.
			fleet.MeasureFleetInto(dst, envs[0])
			n := fleet.NumOsc()
			var acc, acc2 float64
			for d := 0; d < devices; d++ {
				var dm float64
				for _, f := range dst[d*n : (d+1)*n] {
					dm += f
				}
				dm /= float64(n)
				acc += dm
				acc2 += dm * dm
			}
			mean := acc / devices
			return campaign.Metrics{
				"devices":           devices,
				"sweeps":            float64(fleet.Sweep()),
				"mean-MHz":          meanNom,
				"hot-shift-MHz":     meanHot - meanNom,
				"device-spread-MHz": math.Sqrt(acc2/devices - mean*mean),
			}, nil
		},
	})
}
