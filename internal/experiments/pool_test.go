package experiments

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/rng"
	"repro/internal/transcript"
)

// TestPooledCampaignMatchesFreshAttacks pins the end-to-end device-pool
// determinism contract at the experiments layer: a campaign run (which
// installs per-worker device pools, so every seed after a worker's
// first reuses a warm device carcass) reports exactly the metrics of a
// fresh, unpooled RunAttack per seed.
func TestPooledCampaignMatchesFreshAttacks(t *testing.T) {
	ctx := context.Background()
	const base, seeds = 5, 4
	res, err := campaign.Run(ctx, campaign.Spec{
		Task: "masking-attack", BaseSeed: base, Seeds: seeds, Workers: 3,
		Options: campaign.Options{Noise: "counter"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range res.Outcomes {
		seed := rng.StreamSeed(base, uint64(i))
		fresh, err := RunAttack(ctx, transcript.Spec{Attack: "masking", Seed: seed, Noise: "counter"})
		if err != nil {
			t.Fatalf("seed %d fresh: %v", seed, err)
		}
		if got, want := out.Metrics["recovered"], campaign.Bool(fresh.Recovered); got != want {
			t.Fatalf("seed %d: pooled recovered=%v fresh=%v", seed, got, want)
		}
		if got, want := out.Metrics["oracle-queries"], float64(fresh.Queries); got != want {
			t.Fatalf("seed %d: pooled queries=%v fresh=%v", seed, got, want)
		}
		if got, want := out.Metrics["key-bits"], float64(fresh.EnrolledKeyBits); got != want {
			t.Fatalf("seed %d: pooled key-bits=%v fresh=%v", seed, got, want)
		}
	}
}

// TestFleetSweepTaskWorkerInvariance runs the fleet-sweep task across
// worker counts: per-seed fleets are pure functions of the seed, and the
// pooled scratch matrix must not leak state between instances.
func TestFleetSweepTaskWorkerInvariance(t *testing.T) {
	run := func(workers int) []campaign.Outcome {
		res, err := campaign.Run(context.Background(), campaign.Spec{
			Task: "fleet-sweep", BaseSeed: 11, Seeds: 6, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Outcomes
	}
	serial := run(1)
	if !reflect.DeepEqual(serial, run(4)) {
		t.Fatal("fleet-sweep outcomes diverge across worker counts")
	}
	m := serial[0].Metrics
	if m["devices"] != 64 || m["sweeps"] != 9 {
		t.Fatalf("fleet-sweep shape metrics off: %+v", m)
	}
	if m["device-spread-MHz"] <= 0 {
		t.Fatalf("fleet-sweep reports no process variation: %+v", m)
	}
}
