package experiments

import (
	"context"
	"testing"

	"repro/internal/transcript"
)

// paperTableI is the ground truth from the paper for spot checks (full
// verification lives in internal/perm).
var paperTableI = map[string][2]string{
	"ABCD": {"00000", "000000"},
	"BDAC": {"01010", "101001"},
	"CDAB": {"10000", "011110"},
	"DCBA": {"10111", "111111"},
}

func TestTableIMatchesPaper(t *testing.T) {
	rows := TableI()
	if len(rows) != 24 {
		t.Fatalf("%d rows, want 24", len(rows))
	}
	for _, row := range rows {
		if want, ok := paperTableI[row.Order]; ok {
			if row.Compact != want[0] || row.Kendall != want[1] {
				t.Errorf("%s: got (%s,%s), want (%s,%s)", row.Order, row.Compact, row.Kendall, want[0], want[1])
			}
		}
	}
}

func TestFig2DecompositionShape(t *testing.T) {
	r, err := Fig2(1)
	if err != nil {
		t.Fatal(err)
	}
	// The distiller must remove most of the systematic variance: the
	// residual variance approaches the random-component variance and
	// sits well below the raw variance.
	if r.ResidualVar >= r.RawVariance*0.8 {
		t.Fatalf("residual %v vs raw %v", r.ResidualVar, r.RawVariance)
	}
	if r.ResidualVar > r.RandVariance*1.4 || r.ResidualVar < r.RandVariance*0.6 {
		t.Fatalf("residual %v vs random %v", r.ResidualVar, r.RandVariance)
	}
}

func TestFig3Monotonicity(t *testing.T) {
	rows, err := Fig3(2, []float64{0.2, 0.6, 1.2, 2.4})
	if err != nil {
		t.Fatal(err)
	}
	// Higher thresholds must not increase the number of good pairs.
	for i := 1; i < len(rows); i++ {
		if rows[i].Good > rows[i-1].Good {
			t.Fatalf("good pairs increased with threshold: %+v", rows)
		}
	}
	// All classes partition the floor(N/2) = 64 pairs.
	for _, r := range rows {
		if r.Good+r.Bad+r.Coop != 64 {
			t.Fatalf("classes sum to %d", r.Good+r.Bad+r.Coop)
		}
	}
}

func TestFig5Separation(t *testing.T) {
	r, err := Fig5(3, 400)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 5 shape: nominal almost never fails; H1 fails
	// more often than H0; the two hypothesis PDFs are distinguishable.
	if r.FailNominal > 0.2 {
		t.Fatalf("nominal failure rate %v", r.FailNominal)
	}
	if r.FailH1 <= r.FailH0 {
		t.Fatalf("H1 rate %v <= H0 rate %v", r.FailH1, r.FailH0)
	}
	if r.TVDistance < 0.3 {
		t.Fatalf("TV distance %v too small", r.TVDistance)
	}
	// The common offset shifts both hypothesis PDFs right of nominal.
	if r.H0.Mean() <= r.Nominal.Mean() {
		t.Fatalf("H0 mean %v <= nominal mean %v", r.H0.Mean(), r.Nominal.Mean())
	}
	if r.H1.Mean() <= r.H0.Mean() {
		t.Fatalf("H1 mean %v <= H0 mean %v", r.H1.Mean(), r.H0.Mean())
	}
}

func TestRunSeqPairAttackE8(t *testing.T) {
	tr, err := RunAttack(context.Background(), transcript.Spec{Attack: "seqpair", Seed: 5, Expurgate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Recovered {
		t.Fatalf("expurgated attack did not recover the key: %+v", tr)
	}
	if tr.Queries <= 0 || tr.EnrolledKeyBits <= 0 {
		t.Fatalf("degenerate transcript %+v", tr)
	}
}

func TestRunTempCoAttackE9(t *testing.T) {
	tr, err := RunAttack(context.Background(), transcript.Spec{Attack: "tempco", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if tr.RelationsFound == 0 || tr.RelationsRight != tr.RelationsFound {
		t.Fatalf("relations %d/%d", tr.RelationsRight, tr.RelationsFound)
	}
	if tr.MaskBitsFound == 0 || tr.MaskBitsRight != tr.MaskBitsFound {
		t.Fatalf("mask bits %d/%d", tr.MaskBitsRight, tr.MaskBitsFound)
	}
}

func TestRunGroupBasedAttackE5(t *testing.T) {
	tr, err := RunAttack(context.Background(), transcript.Spec{Attack: "groupbased", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Recovered {
		t.Fatalf("group-based attack failed: %+v", tr)
	}
}

func TestRunMaskingAttackE6(t *testing.T) {
	tr, err := RunAttack(context.Background(), transcript.Spec{Attack: "masking", Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Recovered {
		t.Fatalf("masking attack failed: %+v", tr)
	}
}

func TestRunChainAttackE7(t *testing.T) {
	tr, err := RunAttack(context.Background(), transcript.Spec{Attack: "chain", Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Recovered {
		t.Fatalf("chain attack failed: %+v", tr)
	}
	if tr.MaxHypotheses != 16 {
		t.Fatalf("max hypotheses %d, want 16 (Fig. 6c)", tr.MaxHypotheses)
	}
}

func TestEntropyAccountingE11(t *testing.T) {
	rows := EntropyAccounting(15, []float64{0.2, 0.5, 1.0, 2.0})
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		if r.EntropyBits <= 0 || r.EntropyBits > r.TotalBits {
			t.Fatalf("row %d: entropy %v outside (0, %v]", i, r.EntropyBits, r.TotalBits)
		}
		// Packed key length is within one bit per group of the entropy.
		if float64(r.KeyBits) < r.EntropyBits-float64(r.Groups) {
			t.Fatalf("row %d: key bits %d below entropy %v - groups", i, r.KeyBits, r.EntropyBits)
		}
	}
	// Larger thresholds force more, smaller groups and lose entropy.
	if rows[len(rows)-1].EntropyBits >= rows[0].EntropyBits {
		t.Fatalf("entropy did not decrease with threshold: %+v", rows)
	}
}

func TestFuzzyResistanceE12(t *testing.T) {
	r, err := FuzzyResistance(17, 40)
	if err != nil {
		t.Fatal(err)
	}
	// The LISA side channel is wide open; the fuzzy extractor's is shut.
	if r.SeqPairAdvantage < 0.5 {
		t.Fatalf("seqpair advantage %v, want large", r.SeqPairAdvantage)
	}
	if r.FuzzyAdvantage > 0.1 {
		t.Fatalf("fuzzy advantage %v, want ~0", r.FuzzyAdvantage)
	}
}

func TestAblationStoragePolicyA1(t *testing.T) {
	r, err := AblationStoragePolicy(19, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.SortedOnesFraction != 1.0 {
		t.Fatalf("sorted storage ones fraction %v, want 1", r.SortedOnesFraction)
	}
	if r.RandomizedOnesFraction < 0.35 || r.RandomizedOnesFraction > 0.65 {
		t.Fatalf("randomized ones fraction %v, want ~0.5", r.RandomizedOnesFraction)
	}
}

func TestAblationStrategyA2(t *testing.T) {
	r, err := AblationStrategy(21)
	if err != nil {
		t.Fatal(err)
	}
	if !r.BothRecovered {
		t.Fatal("one strategy failed to recover the key")
	}
	if r.SequentialQueries >= r.FixedSampleQueries {
		t.Fatalf("sequential %d >= fixed %d queries", r.SequentialQueries, r.FixedSampleQueries)
	}
}

func TestAblationOffsetSizeA4(t *testing.T) {
	rows, err := AblationOffsetSize(23)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// At the full radius the rates must be well separated and the
	// attack must succeed.
	last := rows[len(rows)-1]
	if last.PElevated-last.PNominal < 0.5 {
		t.Fatalf("full-offset separation %v too small", last.PElevated-last.PNominal)
	}
	if !last.Recovered {
		t.Fatal("full-offset attack failed")
	}
	// Below the radius the calibration separation collapses (both
	// injected patterns stay correctable).
	first := rows[0]
	if first.PElevated-first.PNominal > 0.2 {
		t.Fatalf("offset=1 separation %v unexpectedly large", first.PElevated-first.PNominal)
	}
}

func TestMeasureAttackSuccessMultiSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	r, err := MeasureAttackSuccess(1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.SeqPair < 0.99 {
		t.Errorf("seqpair success %v", r.SeqPair)
	}
	if r.GroupBased < 0.99 {
		t.Errorf("groupbased success %v", r.GroupBased)
	}
	if r.Masking < 0.99 {
		t.Errorf("masking success %v", r.Masking)
	}
	if r.Chain < 0.99 {
		t.Errorf("chain success %v", r.Chain)
	}
	if r.TempCoRel < 0.99 {
		t.Errorf("tempco relation accuracy %v", r.TempCoRel)
	}
	t.Logf("success over %d seeds: seqpair=%.2f groupbased=%.2f masking=%.2f chain=%.2f tempco-rel=%.2f",
		r.Seeds, r.SeqPair, r.GroupBased, r.Masking, r.Chain, r.TempCoRel)
}
