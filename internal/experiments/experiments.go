// Package experiments implements the reproduction of every table and
// figure of the paper's evaluation (see DESIGN.md §4 for the experiment
// index E1-E12). Each experiment is a pure function from a seed (and a
// few shape parameters) to a structured result, so the bench harness in
// bench_test.go, the cmd/puf-bench generator and EXPERIMENTS.md all draw
// from the same code.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/attack"
	"repro/internal/campaign"
	"repro/internal/device"
	"repro/internal/distiller"
	"repro/internal/ecc"
	"repro/internal/fuzzy"
	"repro/internal/groupbased"
	"repro/internal/pairing"
	"repro/internal/perm"
	"repro/internal/rng"
	"repro/internal/silicon"
	"repro/internal/stats"
	"repro/internal/tempco"
	"repro/internal/transcript"
)

// ---------------------------------------------------------------- E1 --

// TableIRow is one row of the paper's Table I.
type TableIRow struct {
	Order   string // e.g. "ABCD"
	Compact string
	Kendall string
}

// TableI regenerates the paper's Table I from the coding primitives: all
// 24 orders of four ROs with their compact and Kendall codings.
func TableI() []TableIRow {
	rows := make([]TableIRow, 0, 24)
	for _, o := range perm.AllOrders(4) {
		labels := make([]byte, 4)
		for pos, l := range o {
			labels[pos] = byte('A' + l)
		}
		rows = append(rows, TableIRow{
			Order:   string(labels),
			Compact: perm.CompactEncode(o).String(),
			Kendall: perm.KendallEncode(o).String(),
		})
	}
	return rows
}

// ---------------------------------------------------------------- E2 --

// Fig2Result is the variance decomposition of the frequency topology.
type Fig2Result struct {
	Rows, Cols   int
	RawVariance  float64 // variance of the measured f(x,y)
	SystVariance float64 // variance of the true systematic component
	RandVariance float64 // variance of the true random component
	ResidualVar  float64 // variance after degree-2 distillation
}

// Fig2 reproduces the frequency-topology decomposition of the paper's
// Fig. 2: a 16x32 array (the size of the DAC 2013 experiments) with a
// strong systematic trend, fitted and distilled.
func Fig2(seed uint64) (Fig2Result, error) {
	cfg := silicon.DefaultConfig(16, 32)
	cfg.GradientXMHz = 8
	cfg.GradientYMHz = 4
	cfg.BowlMHz = 3
	arr := silicon.NewArray(cfg, rng.New(seed))
	src := rng.New(seed + 1)
	f := arr.MeasureAveraged(cfg.NominalEnv(), src, 9)
	fit, err := distiller.Fit(cfg.Rows, cfg.Cols, f, 2)
	if err != nil {
		return Fig2Result{}, err
	}
	resid := distiller.Distill(cfg.Rows, cfg.Cols, f, fit)
	syst := make([]float64, arr.N())
	rand := make([]float64, arr.N())
	for i := range syst {
		syst[i] = arr.SystematicComponent(i)
		rand[i] = arr.RandomComponent(i)
	}
	return Fig2Result{
		Rows: cfg.Rows, Cols: cfg.Cols,
		RawVariance:  distiller.Variance(f),
		SystVariance: distiller.Variance(syst),
		RandVariance: distiller.Variance(rand),
		ResidualVar:  distiller.Variance(resid),
	}, nil
}

// ---------------------------------------------------------------- E3 --

// Fig3Row is the pair classification at one threshold.
type Fig3Row struct {
	ThresholdMHz    float64
	Good, Bad, Coop int
	KeyBits         int // good + cooperating
}

// Fig3 reproduces the good/bad/cooperating classification of the paper's
// Fig. 3 as a function of the discrepancy threshold ∆fth.
func Fig3(seed uint64, thresholds []float64) ([]Fig3Row, error) {
	out := make([]Fig3Row, 0, len(thresholds))
	for _, th := range thresholds {
		p := tempco.Params{
			Rows: 8, Cols: 16,
			ThresholdMHz: th,
			TminC:        -20, TmaxC: 80,
			Policy:     tempco.RandomSelection,
			Code:       ecc.MustBCH(ecc.BCHConfig{M: 6, T: 3}),
			EnrollReps: 25,
		}
		cfg := silicon.DefaultConfig(p.Rows, p.Cols)
		cfg.TempCoefSigmaMHzPerC = 0.03
		arr := silicon.NewArray(cfg, rng.New(seed))
		h, _, err := tempco.Enroll(arr, p, rng.New(seed+1))
		if err != nil {
			return nil, err
		}
		good, bad, coop := tempco.CountClasses(h)
		out = append(out, Fig3Row{
			ThresholdMHz: th,
			Good:         good, Bad: bad, Coop: coop,
			KeyBits: good + coop,
		})
	}
	return out, nil
}

// ---------------------------------------------------------------- E4 --

// Fig5Result reproduces the distinguishing PDFs of the paper's Fig. 5:
// the distribution of the error count at the ECC input under the nominal
// helper, under the correct hypothesis (common offset only) and under the
// wrong hypothesis (offset plus the manipulation-induced error pair).
type Fig5Result struct {
	T            int
	Nominal      *stats.Histogram
	H0           *stats.Histogram // correct hypothesis: offset only
	H1           *stats.Histogram // wrong hypothesis: offset + 2 errors
	FailNominal  float64          // P(#errors > t) per histogram
	FailH0       float64
	FailH1       float64
	TVDistance   float64 // distinguishability of H0 vs H1 in one query
	FixedSamples int     // fixed-sample queries to separate at 1% error
}

// Fig5 builds the three PDFs empirically on a sequential-pairing device:
// the nominal arm uses the honest helper; H0 injects t-1 within-pair
// swaps (the common offset, leaving one error of headroom so failures
// stay probabilistic); H1 additionally swaps the positions of two pairs
// with differing response bits.
func Fig5(seed uint64, samples int) (Fig5Result, error) {
	code := ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3})
	p := device.SeqPairParams{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.3, // deliberately tight: some marginal bits
		Policy:       pairing.RandomizedStorage,
		Code:         code,
		EnrollReps:   20,
	}
	srcMfg, srcRun := rng.New(seed), rng.New(seed+1)
	// Raise the measurement noise so the error-count PDFs have visible
	// spread, as in the figure (three overlapping bell-like shapes
	// rather than three spikes).
	cfg := silicon.DefaultConfig(p.Rows, p.Cols)
	cfg.NoiseSigmaMHz = 1.2
	arr := silicon.NewArray(cfg, srcMfg)
	env := cfg.NominalEnv()
	f := arr.MeasureAveraged(env, srcRun, p.EnrollReps)
	helper := pairing.EnrollSeqPair(f, p.ThresholdMHz, p.Policy, srcRun)
	enrolled := pairing.Responses(f, helper.Pairs)
	m := len(helper.Pairs)
	if m < code.T()+3 {
		return Fig5Result{}, fmt.Errorf("experiments: too few pairs (%d)", m)
	}
	t := code.T()

	// Find two pairs with differing bits for the H1 manipulation.
	swapA, swapB := -1, -1
	for j := 1; j < m && j < code.N(); j++ {
		if enrolled.Get(j) != enrolled.Get(0) {
			swapA, swapB = 0, j
			break
		}
	}
	if swapA == -1 {
		return Fig5Result{}, fmt.Errorf("experiments: all response bits equal")
	}

	// Offset injections: t-1 within-pair swaps avoiding the swap pair.
	var injected []int
	for pos := 0; pos < m && len(injected) < t-1; pos++ {
		if pos != swapA && pos != swapB {
			injected = append(injected, pos)
		}
	}

	noisier := rng.New(seed + 2)
	countErrors := func(pairsList []pairing.Pair, inverted []int) int {
		fNow := arr.MeasureAll(env, noisier)
		resp := pairing.Responses(fNow, pairsList)
		for _, pos := range inverted {
			resp.Flip(pos)
		}
		return resp.HammingDistance(enrolled)
	}

	res := Fig5Result{
		T:       t,
		Nominal: stats.NewHistogram(),
		H0:      stats.NewHistogram(),
		H1:      stats.NewHistogram(),
	}
	swapped := append([]pairing.Pair(nil), helper.Pairs...)
	swapped[swapA], swapped[swapB] = swapped[swapB], swapped[swapA]
	for i := 0; i < samples; i++ {
		res.Nominal.Add(countErrors(helper.Pairs, nil))
		res.H0.Add(countErrors(helper.Pairs, injected))
		res.H1.Add(countErrors(swapped, injected))
	}
	res.FailNominal = res.Nominal.TailP(t)
	res.FailH0 = res.H0.TailP(t)
	res.FailH1 = res.H1.TailP(t)
	res.TVDistance = stats.TotalVariationDistance(res.H0, res.H1)
	p0, p1 := res.FailH0, res.FailH1
	if p0 > p1 {
		p0, p1 = p1, p0
	}
	if p1-p0 > 1e-6 && p1 < 1 {
		res.FixedSamples = stats.RequiredSamplesTwoProportions(p0, p1, 0.01, 0.01)
	}
	return res, nil
}

// ----------------------------------------------------------- E5–E10 --

// RunAttack is the single attack entry point of the experiments layer:
// it executes one transcript Spec (attack × seed × noise model ×
// options) through the attack registry against a freshly enrolled
// reference device and returns its canonical Transcript. Every
// attack-backed experiment — campaign tasks, benchmarks, goldens,
// cmd/puf-bench — goes through this one function; the per-attack
// Run*Attack/Run*AttackNoise wrappers it replaces are gone.
func RunAttack(ctx context.Context, spec transcript.Spec) (transcript.Transcript, error) {
	return transcript.Run(ctx, spec)
}

// RunAttackPooled is RunAttack with a campaign device pool: enrollment
// scratch (device carcass, ECC code tables) is adopted from the pool
// slot keyed by the spec's enrollment fingerprint and returned to it
// afterwards. A nil pool degrades to RunAttack. Transcripts are
// bit-identical either way — the pool only recycles allocations.
func RunAttackPooled(ctx context.Context, spec transcript.Spec, pool *campaign.Pool) (transcript.Transcript, error) {
	// A typed-nil *campaign.Pool must not become a non-nil Cache
	// interface, or transcript.RunWith would call methods on it.
	var cache transcript.Cache
	if pool != nil {
		cache = pool
	}
	return transcript.RunWith(ctx, spec, cache)
}

// --------------------------------------------------------------- E11 --

// EntropyRow is the entropy accounting at one grouping threshold.
type EntropyRow struct {
	ThresholdMHz float64
	Groups       int
	EntropyBits  float64 // sum log2(|Gj|!)
	KeyBits      int
	TotalBits    float64 // log2(N!) upper bound for the array
}

// EntropyAccounting reproduces the paper's §II and §V-B entropy figures
// as a function of the grouping threshold.
func EntropyAccounting(seed uint64, thresholds []float64) []EntropyRow {
	cfg := silicon.DefaultConfig(8, 16)
	arr := silicon.NewArray(cfg, rng.New(seed))
	src := rng.New(seed + 1)
	f := arr.MeasureAveraged(cfg.NominalEnv(), src, 9)
	poly, err := distiller.Fit(cfg.Rows, cfg.Cols, f, 2)
	if err != nil {
		return nil
	}
	resid := distiller.Distill(cfg.Rows, cfg.Cols, f, poly)
	total := perm.Log2Factorial(arr.N())
	out := make([]EntropyRow, 0, len(thresholds))
	for _, th := range thresholds {
		g := groupbased.GroupLimited(resid, th, 16)
		out = append(out, EntropyRow{
			ThresholdMHz: th,
			Groups:       g.NumGroups(),
			EntropyBits:  groupbased.Entropy(&g),
			KeyBits:      groupbased.KeyLen(&g),
			TotalBits:    total,
		})
	}
	return out
}

// --------------------------------------------------------------- E12 --

// FuzzyResistanceResult quantifies the absence of a manipulation side
// channel in the fuzzy extractor versus its presence in the LISA
// construction: the attacker's single-manipulation advantage is the
// failure-rate difference between devices whose targeted response bits
// are equal versus different.
type FuzzyResistanceResult struct {
	// FuzzyAdvantage: |P(fail | bits differ) - P(fail | bits equal)| for
	// the fuzzy extractor under a fixed helper-delta manipulation.
	FuzzyAdvantage float64
	// SeqPairAdvantage: the same statistic for the pair-position swap
	// on the LISA device (the attack's signal).
	SeqPairAdvantage float64
	Queries          int
}

// FuzzyResistance runs experiment E12.
func FuzzyResistance(seed uint64, queries int) (FuzzyResistanceResult, error) {
	// --- LISA arm: swap two pairs, group devices by whether the bits
	// differ, measure rates.
	var sameRates, diffRates []float64
	var fuzzySame, fuzzyDiff []float64
	srcSeed := seed
	for len(sameRates) == 0 || len(diffRates) == 0 || len(fuzzySame) == 0 || len(fuzzyDiff) == 0 {
		srcSeed += 2
		if srcSeed > seed+100 {
			return FuzzyResistanceResult{}, fmt.Errorf("experiments: could not populate both bit classes")
		}
		d, err := device.EnrollSeqPair(device.SeqPairParams{
			Rows: 8, Cols: 16,
			ThresholdMHz: 0.8,
			Policy:       pairing.RandomizedStorage,
			Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
			EnrollReps:   20,
		}, rng.New(srcSeed), rng.New(srcSeed+1))
		if err != nil {
			return FuzzyResistanceResult{}, err
		}
		truth := d.TrueKey()
		h := d.ReadHelper()
		// Common offset t, then swap pairs 0 and 1.
		tcap := d.Code().T()
		manip := device.SeqPairHelperNVM{
			Pairs:  pairing.SeqPairHelper{Pairs: append([]pairing.Pair(nil), h.Pairs.Pairs...)},
			Offset: h.Offset,
		}
		inj := 0
		for pos := 2; pos < len(manip.Pairs.Pairs) && inj < tcap; pos++ {
			manip.Pairs.Pairs[pos] = manip.Pairs.Pairs[pos].Swapped()
			inj++
		}
		manip.Pairs.Pairs[0], manip.Pairs.Pairs[1] = manip.Pairs.Pairs[1], manip.Pairs.Pairs[0]
		if err := d.WriteHelper(manip); err != nil {
			return FuzzyResistanceResult{}, err
		}
		rate := attack.EstimateFailureRate(func() bool { return !d.App() }, queries)
		if truth.Get(0) != truth.Get(1) {
			diffRates = append(diffRates, rate)
		} else {
			sameRates = append(sameRates, rate)
		}

		// --- Fuzzy arm: flip one helper bit; the targeted "hypothesis"
		// is the device's response bit 0 — rates must not depend on it.
		fd, err := device.EnrollFuzzy(device.FuzzyParams{
			Rows: 8, Cols: 16,
			Extractor:  fuzzyParamsForE12(),
			EnrollReps: 20,
		}, rng.New(srcSeed+500), rng.New(srcSeed+501))
		if err != nil {
			return FuzzyResistanceResult{}, err
		}
		fh := fd.ReadHelper()
		fh.W.Flip(0)
		if err := fd.WriteHelper(fh); err != nil {
			return FuzzyResistanceResult{}, err
		}
		frate := attack.EstimateFailureRate(func() bool { return !fd.App() }, queries)
		// Class by a response bit the attacker would target (bit 0 of
		// the underlying chain response, read from ground truth).
		if fuzzyBitZero(srcSeed + 500) {
			fuzzyDiff = append(fuzzyDiff, frate)
		} else {
			fuzzySame = append(fuzzySame, frate)
		}
	}
	avg := func(xs []float64) float64 {
		var s float64
		for _, v := range xs {
			s += v
		}
		return s / float64(len(xs))
	}
	adv := avg(diffRates) - avg(sameRates)
	if adv < 0 {
		adv = -adv
	}
	fadv := avg(fuzzyDiff) - avg(fuzzySame)
	if fadv < 0 {
		fadv = -fadv
	}
	return FuzzyResistanceResult{
		FuzzyAdvantage:   fadv,
		SeqPairAdvantage: adv,
		Queries:          queries * (len(sameRates) + len(diffRates) + len(fuzzySame) + len(fuzzyDiff)),
	}, nil
}

// fuzzyBitZero reproduces the first response bit of the fuzzy device
// manufactured from the given seed (ground truth for classing).
func fuzzyBitZero(seed uint64) bool {
	arr := silicon.NewArray(silicon.DefaultConfig(8, 16), rng.New(seed))
	pairs := pairing.ChainPairs(8, 16, false)
	env := arr.Config().NominalEnv()
	return arr.TrueFreq(pairs[0].A, env) > arr.TrueFreq(pairs[0].B, env)
}

func fuzzyParamsForE12() fuzzy.Params {
	return fuzzy.Params{Code: ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3})}
}

// ------------------------------------------------------- ablation A1 --

// StorageLeakage quantifies the §VII-C remark: with sorted storage every
// enrolled bit is 1 (full direct leakage); randomized storage carries no
// information.
type StorageLeakage struct {
	SortedOnesFraction     float64
	RandomizedOnesFraction float64
}

// AblationStoragePolicy measures the direct helper leakage of the two
// storage policies over many devices, one device per pool worker.
func AblationStoragePolicy(seed uint64, devices int) (StorageLeakage, error) {
	return AblationStoragePolicyWorkers(context.Background(), seed, devices, 0)
}

// AblationStoragePolicyWorkers is AblationStoragePolicy with an explicit
// worker bound and cancellation. Callers already running inside a
// campaign pool should pass workers = 1 to avoid oversubscribing the
// host with nested pools.
func AblationStoragePolicyWorkers(ctx context.Context, seed uint64, devices, workers int) (StorageLeakage, error) {
	var res StorageLeakage
	type deviceCounts struct {
		sortedOnes, sortedTotal, randOnes, randTotal int
	}
	counts := make([]deviceCounts, devices)
	err := campaign.ForEach(ctx, devices, workers, func(_ context.Context, i int) error {
		s := seed + uint64(i)*7
		arr := silicon.NewArray(silicon.DefaultConfig(8, 16), rng.New(s))
		src := rng.New(s + 1)
		f := arr.MeasureAveraged(arr.Config().NominalEnv(), src, 9)
		hs := pairing.EnrollSeqPair(f, 0.8, pairing.SortedStorage, src)
		hr := pairing.EnrollSeqPair(f, 0.8, pairing.RandomizedStorage, src)
		rs := pairing.Responses(f, hs.Pairs)
		rr := pairing.Responses(f, hr.Pairs)
		counts[i] = deviceCounts{rs.Weight(), rs.Len(), rr.Weight(), rr.Len()}
		return nil
	})
	if err != nil {
		return res, err
	}
	var sortedOnes, sortedTotal, randOnes, randTotal int
	for _, c := range counts {
		sortedOnes += c.sortedOnes
		sortedTotal += c.sortedTotal
		randOnes += c.randOnes
		randTotal += c.randTotal
	}
	if sortedTotal == 0 || randTotal == 0 {
		return res, fmt.Errorf("experiments: no pairs enrolled")
	}
	res.SortedOnesFraction = float64(sortedOnes) / float64(sortedTotal)
	res.RandomizedOnesFraction = float64(randOnes) / float64(randTotal)
	return res, nil
}

// ------------------------------------------------------- ablation A2 --

// StrategyCost compares the oracle cost of the sequential and
// fixed-sample distinguishers on the same attack.
type StrategyCost struct {
	SequentialQueries  int
	FixedSampleQueries int
	BothRecovered      bool
}

// AblationStrategy runs the seqpair attack twice on identically
// manufactured devices, once per strategy.
func AblationStrategy(seed uint64) (StrategyCost, error) {
	run := func(dist attack.Distinguisher) (int, bool, error) {
		d, err := device.EnrollSeqPair(device.SeqPairParams{
			Rows: 8, Cols: 16,
			ThresholdMHz: 0.8,
			Policy:       pairing.RandomizedStorage,
			Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3, Expurgate: true}),
			EnrollReps:   20,
		}, rng.New(seed), rng.New(seed+1))
		if err != nil {
			return 0, false, err
		}
		truth := d.TrueKey()
		res, err := attack.Run(context.Background(), "seqpair", attack.NewSeqPairTarget(d),
			attack.Options{Dist: dist})
		if err != nil {
			return 0, false, err
		}
		return res.Queries, res.Key.Equal(truth), nil
	}
	seqQ, seqOK, err := run(attack.DefaultDistinguisher())
	if err != nil {
		return StrategyCost{}, err
	}
	fixQ, fixOK, err := run(attack.Distinguisher{Strategy: attack.FixedSample, Queries: 10})
	if err != nil {
		return StrategyCost{}, err
	}
	return StrategyCost{
		SequentialQueries:  seqQ,
		FixedSampleQueries: fixQ,
		BothRecovered:      seqOK && fixOK,
	}, nil
}

// ------------------------------------------------------- ablation A4 --

// OffsetSizeRow measures the failure-rate separation and attack query
// cost at one injected-offset size — the "common offset" knob of Fig. 5.
type OffsetSizeRow struct {
	InjectErrors int
	PNominal     float64 // failure rate under the correct hypothesis
	PElevated    float64 // failure rate one error beyond
	Queries      int     // full-attack oracle cost at this offset
	Recovered    bool
}

// AblationOffsetSize sweeps the common offset from 0 to the code radius
// on the sequential-pairing attack. Below t the swap's extra errors stay
// inside the correction radius and the rates collapse; at t the single
// extra error becomes fully visible.
func AblationOffsetSize(seed uint64) ([]OffsetSizeRow, error) {
	return AblationOffsetSizeWorkers(context.Background(), seed, 0)
}

// AblationOffsetSizeWorkers is AblationOffsetSize with an explicit
// worker bound and cancellation (workers = 1 inside an outer pool).
func AblationOffsetSizeWorkers(ctx context.Context, seed uint64, workers int) ([]OffsetSizeRow, error) {
	params := device.SeqPairParams{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.8,
		Policy:       pairing.RandomizedStorage,
		Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3, Expurgate: true}),
		EnrollReps:   20,
	}
	tcap := params.Code.T()
	// Each offset level enrolls its own device from the same seed, so the
	// levels are independent and fan out across the pool; the row order
	// is fixed by the level index.
	out := make([]OffsetSizeRow, tcap)
	err := campaign.ForEach(ctx, tcap, workers, func(_ context.Context, i int) error {
		inject := i + 1
		d, err := device.EnrollSeqPair(params, rng.New(seed), rng.New(seed+1))
		if err != nil {
			return err
		}
		truth := d.TrueKey()
		res, err := attack.Run(context.Background(), "seqpair", attack.NewSeqPairTarget(d),
			attack.Options{
				Dist:         attack.DefaultDistinguisher(),
				InjectErrors: inject,
			})
		if err != nil {
			return err
		}
		cal := res.Details.(attack.SeqPairDetails).Calibration
		out[i] = OffsetSizeRow{
			InjectErrors: inject,
			PNominal:     cal.PNominal,
			PElevated:    cal.PElevated,
			Queries:      res.Queries,
			Recovered:    res.Key.Equal(truth) || res.Key.Equal(truth.Not()),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ------------------------------------------------------- robustness --

// AttackSuccessRates runs every attack across a seed range and reports
// the per-attack exact-recovery fraction — the repository's top-level
// soundness figure.
type AttackSuccessRates struct {
	Seeds      int
	SeqPair    float64
	GroupBased float64
	Masking    float64
	Chain      float64
	TempCoRel  float64 // fraction of recovered relations that are correct
}

// seedAttackOutcome is one device population's worth of attack results —
// the unit of work MeasureAttackSuccess fans out over the campaign pool.
type seedAttackOutcome struct {
	seqPair, groupBased, masking, chain bool
	relFound, relRight                  int
}

// attackAllOnSeed runs every attack against devices manufactured from
// one seed under the given noise model. It is a pure function of
// (seed, noise) and therefore safe to evaluate from any worker in any
// order; the pool (nil OK) only recycles enrollment scratch and never
// changes the outcome. One seed touches five distinct enrollment
// fingerprints, so a shared worker pool holds five slots.
func attackAllOnSeed(ctx context.Context, s uint64, noise silicon.NoiseModelKind, pool *campaign.Pool) (seedAttackOutcome, error) {
	var o seedAttackOutcome
	run := func(name string) (transcript.Transcript, error) {
		tr, err := RunAttackPooled(ctx, transcript.Spec{
			Attack:    name,
			Seed:      s,
			Noise:     noise.String(),
			Expurgate: name == "seqpair",
		}, pool)
		if err != nil {
			return tr, fmt.Errorf("%s seed %d: %w", name, s, err)
		}
		return tr, nil
	}
	sp, err := run("seqpair")
	if err != nil {
		return o, err
	}
	o.seqPair = sp.Recovered
	gb, err := run("groupbased")
	if err != nil {
		return o, err
	}
	o.groupBased = gb.Recovered
	mk, err := run("masking")
	if err != nil {
		return o, err
	}
	o.masking = mk.Recovered
	ch, err := run("chain")
	if err != nil {
		return o, err
	}
	o.chain = ch.Recovered
	tc, err := run("tempco")
	if err != nil {
		return o, err
	}
	o.relFound = tc.RelationsFound
	o.relRight = tc.RelationsRight
	return o, nil
}

// MeasureAttackSuccess runs all attacks over `seeds` devices each, using
// every available core. The rates are aggregated in seed order from
// per-seed deterministic outcomes, so they are identical to a serial run.
func MeasureAttackSuccess(base uint64, seeds int) (AttackSuccessRates, error) {
	return MeasureAttackSuccessWorkers(context.Background(), base, seeds, 0)
}

// MeasureAttackSuccessWorkers is MeasureAttackSuccess with an explicit
// worker-pool bound (0 = GOMAXPROCS) and campaign cancellation, under
// the legacy stream noise model.
func MeasureAttackSuccessWorkers(ctx context.Context, base uint64, seeds, workers int) (AttackSuccessRates, error) {
	return MeasureAttackSuccessNoise(ctx, base, seeds, workers, silicon.NoiseStream)
}

// MeasureAttackSuccessNoise is MeasureAttackSuccessWorkers under an
// explicit silicon noise model.
func MeasureAttackSuccessNoise(ctx context.Context, base uint64, seeds, workers int, noise silicon.NoiseModelKind) (AttackSuccessRates, error) {
	var r AttackSuccessRates
	r.Seeds = seeds
	outcomes := make([]seedAttackOutcome, seeds)
	err := campaign.ForEach(ctx, seeds, workers, func(taskCtx context.Context, i int) error {
		o, err := attackAllOnSeed(taskCtx, base+uint64(i)*101, noise, nil)
		if err != nil {
			return err
		}
		outcomes[i] = o
		return nil
	})
	if err != nil {
		return r, err
	}
	var relFound, relRight int
	for _, o := range outcomes {
		if o.seqPair {
			r.SeqPair++
		}
		if o.groupBased {
			r.GroupBased++
		}
		if o.masking {
			r.Masking++
		}
		if o.chain {
			r.Chain++
		}
		relFound += o.relFound
		relRight += o.relRight
	}
	n := float64(seeds)
	r.SeqPair /= n
	r.GroupBased /= n
	r.Masking /= n
	r.Chain /= n
	if relFound > 0 {
		r.TempCoRel = float64(relRight) / float64(relFound)
	}
	return r, nil
}
