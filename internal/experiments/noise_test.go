package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/silicon"
)

// TestCampaignNoiseOptionThreads runs an attack-backed campaign task
// under the counter noise model and checks (a) the option actually
// changes the transcripts relative to the stream default, and (b) the
// counter-mode campaign stays bit-identical across worker counts — the
// "embarrassingly parallel per-query noise" property the counter
// contract promises.
func TestCampaignNoiseOptionThreads(t *testing.T) {
	run := func(noise string, workers int) *campaign.Result {
		res, err := campaign.Run(context.Background(), campaign.Spec{
			Task: "seqpair-attack", BaseSeed: 77, Seeds: 3, Workers: workers,
			Options: campaign.Options{Noise: noise},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	counterSerial := run("counter", 1)
	counterPool := run("counter", 4)
	if !reflect.DeepEqual(counterSerial.Outcomes, counterPool.Outcomes) {
		t.Fatal("counter-mode campaign diverges across worker counts")
	}
	stream := run("stream", 1)
	same := true
	for i := range stream.Outcomes {
		if stream.Outcomes[i].Metrics["oracle-queries"] != counterSerial.Outcomes[i].Metrics["oracle-queries"] {
			same = false
		}
	}
	if same {
		t.Fatal("counter option did not change any transcript; option likely not threaded")
	}
}

// TestCampaignNoiseOptionRejectsUnknown pins the error path for a typo'd
// model name.
func TestCampaignNoiseOptionRejectsUnknown(t *testing.T) {
	_, err := campaign.Run(context.Background(), campaign.Spec{
		Task: "seqpair-attack", BaseSeed: 1, Seeds: 1,
		Options: campaign.Options{Noise: "quantum"},
	})
	if err == nil || !strings.Contains(err.Error(), "unknown noise model") {
		t.Fatalf("err = %v, want unknown noise model", err)
	}
}

// TestRunAttacksCounterRecover is the end-to-end counter-mode soundness
// check across all five attacks on one device population.
func TestRunAttacksCounterRecover(t *testing.T) {
	o, err := attackAllOnSeed(context.Background(), 3, silicon.NoiseCounter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !o.seqPair || !o.groupBased || !o.masking || !o.chain {
		t.Fatalf("counter-mode recovery failed: %+v", o)
	}
	if o.relFound == 0 || o.relRight != o.relFound {
		t.Fatalf("counter-mode tempco relations: %d/%d", o.relRight, o.relFound)
	}
}
