package silicon

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/rng"
)

func noiseTestArray(rows, cols int, noise NoiseModelKind) *Array {
	cfg := DefaultConfig(rows, cols)
	cfg.Noise = noise
	return NewArray(cfg, rng.New(1))
}

// TestMeasureSparseStreamParity pins the stream model's draw-and-discard
// contract: MeasureSparse over an index list is bit-identical — values
// and stream state — to MeasureSubset over the equivalent mask, and to
// MeasureInto at the wanted indices.
func TestMeasureSparseStreamParity(t *testing.T) {
	a := noiseTestArray(8, 16, NoiseStream)
	env := Environment{TempC: 40, VoltageV: 1.15}
	want := make([]bool, a.N())
	var idxs []int
	for i := 0; i < a.N(); i += 3 {
		want[i] = true
		idxs = append(idxs, i)
	}
	srcA, srcB, srcC := rng.New(9), rng.New(9), rng.New(9)
	ref := make([]float64, a.N())
	sub := make([]float64, a.N())
	spr := make([]float64, a.N())
	for round := 0; round < 5; round++ {
		a.MeasureInto(ref, env, srcA)
		a.MeasureSubset(sub, want, env, srcB)
		a.MeasureSparse(spr, idxs, env, StreamNoise(srcC))
		for _, i := range idxs {
			if spr[i] != ref[i] || spr[i] != sub[i] {
				t.Fatalf("round %d osc %d: sparse %v subset %v full %v", round, i, spr[i], sub[i], ref[i])
			}
		}
	}
}

// TestMeasureSparseCounterMatchesFull pins the counter identity
// contract: a sparse sweep reproduces exactly the values a full sweep
// with the same (key, sweep counter) would produce at those indices —
// while drawing only the subset's noise.
func TestMeasureSparseCounterMatchesFull(t *testing.T) {
	a := noiseTestArray(8, 16, NoiseCounter)
	env := a.Config().NominalEnv()
	full := CounterNoise(77)
	sparse := CounterNoise(77)
	idxs := []int{0, 1, 5, 17, 18, 19, 42, 127}
	ref := make([]float64, a.N())
	got := make([]float64, a.N())
	for round := 0; round < 5; round++ {
		a.MeasureIntoWith(ref, env, full)
		a.MeasureSparse(got, idxs, env, sparse)
		for _, i := range idxs {
			if got[i] != ref[i] {
				t.Fatalf("round %d osc %d: sparse %v != full %v", round, i, got[i], ref[i])
			}
		}
	}
}

// TestCounterSweepAdvances checks that consecutive sweeps never share
// noise and that a dedicated model reproduces any sweep from scratch
// (per-(query, index) determinism).
func TestCounterSweepAdvances(t *testing.T) {
	a := noiseTestArray(4, 8, NoiseCounter)
	env := a.Config().NominalEnv()
	nm := CounterNoise(5)
	sweeps := make([][]float64, 4)
	for r := range sweeps {
		sweeps[r] = append([]float64(nil), a.MeasureIntoWith(make([]float64, a.N()), env, nm)...)
	}
	for r := 1; r < len(sweeps); r++ {
		same := 0
		for i := range sweeps[r] {
			if sweeps[r][i] == sweeps[r-1][i] {
				same++
			}
		}
		if same > 0 {
			t.Fatalf("sweeps %d and %d share %d values", r-1, r, same)
		}
	}
	// Replaying from a fresh model with the same key reproduces sweep 0
	// onward bit for bit.
	replay := CounterNoise(5)
	for r := range sweeps {
		got := a.MeasureIntoWith(make([]float64, a.N()), env, replay)
		for i := range got {
			if got[i] != sweeps[r][i] {
				t.Fatalf("replay sweep %d diverged at osc %d", r, i)
			}
		}
	}
}

// TestNoiseForkIndependence checks Fork determinism and independence
// for both models: same seed → identical variates, different seeds →
// distinct variates.
func TestNoiseForkIndependence(t *testing.T) {
	for _, kind := range []NoiseModelKind{NoiseStream, NoiseCounter} {
		parent := NewNoise(kind, rng.New(3))
		a, b, c := parent.Fork(10), parent.Fork(10), parent.Fork(11)
		bufA := make([]float64, 64)
		bufB := make([]float64, 64)
		bufC := make([]float64, 64)
		a.FillAll(bufA)
		b.FillAll(bufB)
		c.FillAll(bufC)
		same := 0
		for i := range bufA {
			if bufA[i] != bufB[i] {
				t.Fatalf("%v: forks with equal seeds diverge at %d", kind, i)
			}
			if bufA[i] == bufC[i] {
				same++
			}
		}
		if same > 0 {
			t.Fatalf("%v: forks with different seeds share %d values", kind, same)
		}
	}
}

// TestMeasureAveragedIntoMatchesScalar pins the bulk enrollment path to
// the scalar draw order it replaced: oscillator-major, repetition-minor
// sequential Measure calls.
func TestMeasureAveragedIntoMatchesScalar(t *testing.T) {
	a := noiseTestArray(8, 16, NoiseStream)
	env := Environment{TempC: 60, VoltageV: 1.22}
	for _, reps := range []int{1, 3, 64, 65, 130} {
		srcA, srcB := rng.New(uint64(reps)), rng.New(uint64(reps))
		ref := make([]float64, a.N())
		for i := range ref {
			var s float64
			for r := 0; r < reps; r++ {
				s += a.Measure(i, env, srcA)
			}
			ref[i] = s / float64(reps)
		}
		got := a.MeasureAveragedInto(make([]float64, a.N()), env, srcB, reps)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("reps %d osc %d: %v != scalar %v", reps, i, got[i], ref[i])
			}
		}
		if sA, sB := srcA.Uint64(), srcB.Uint64(); sA != sB {
			t.Fatalf("reps %d: stream positions diverge after averaging", reps)
		}
	}
}

// TestMeasureAveragedIntoAllocFree is the enrollment-path allocs fence.
func TestMeasureAveragedIntoAllocFree(t *testing.T) {
	a := noiseTestArray(8, 16, NoiseStream)
	env := a.Config().NominalEnv()
	src := rng.New(2)
	dst := make([]float64, a.N())
	if allocs := testing.AllocsPerRun(20, func() {
		a.MeasureAveragedInto(dst, env, src, 25)
	}); allocs != 0 {
		t.Fatalf("MeasureAveragedInto allocates %.1f/op, want 0", allocs)
	}
}

// TestMeasureAveragedWithCounterMoments sanity-checks the counter-mode
// enrollment averaging: the per-oscillator mean over many sweeps must
// converge to the true frequency.
func TestMeasureAveragedWithCounterMoments(t *testing.T) {
	a := noiseTestArray(4, 8, NoiseCounter)
	env := a.Config().NominalEnv()
	nm := CounterNoise(123)
	got := a.MeasureAveragedWith(env, nm, 400)
	sigma := a.Config().NoiseSigmaMHz
	for i := range got {
		if diff := math.Abs(got[i] - a.TrueFreq(i, env)); diff > 4*sigma/20 {
			t.Fatalf("osc %d: averaged %v vs true %v (diff %v)", i, got[i], a.TrueFreq(i, env), diff)
		}
	}
}

// BenchmarkMeasureSubsetModels is the sparse-vs-dense crossover: the
// stream model pays the full-array noise tax at every subset fraction,
// while the counter model's cost scales with k. The acceptance target
// is a ≥3x counter-over-stream speedup at fraction ≤ 1/8.
func BenchmarkMeasureSubsetModels(b *testing.B) {
	const rows, cols = 16, 32
	for _, frac := range []int{1, 4, 8, 32} {
		var idxs []int
		for i := 0; i < rows*cols; i += frac {
			idxs = append(idxs, i)
		}
		b.Run(fmt.Sprintf("stream/frac-1of%d", frac), func(b *testing.B) {
			a := noiseTestArray(rows, cols, NoiseStream)
			env := a.Config().NominalEnv()
			nm := StreamNoise(rng.New(1))
			dst := make([]float64, a.N())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.MeasureSparse(dst, idxs, env, nm)
			}
		})
		b.Run(fmt.Sprintf("counter/frac-1of%d", frac), func(b *testing.B) {
			a := noiseTestArray(rows, cols, NoiseCounter)
			env := a.Config().NominalEnv()
			nm := CounterNoise(1)
			dst := make([]float64, a.N())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.MeasureSparse(dst, idxs, env, nm)
			}
		})
	}
}
