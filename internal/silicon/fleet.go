// Fleet: structure-of-arrays batched measurement. A campaign over 10^6
// seeds simulates 10^6 devices; measuring them one Array at a time pays
// per-device slice allocations at manufacture and a scalar kernel
// dispatch per oscillator sweep. Fleet manufactures N devices into
// contiguous N×numOsc component matrices (row-major: device d's
// oscillators are row d) and measures the whole fleet per sweep with
// one rng.BlockSweep chain per device over bulk fills — the same
// variates, issued as long contiguous writes instead of per-oscillator
// scalar draws.
//
// Determinism contract: row d of every Fleet measurement is
// bit-identical to the single-device counter-mode path
//
//	src := rng.New(seeds[d])
//	arr := NewArray(cfg, src)
//	nm  := arr.NewNoise(src)
//	arr.MeasureIntoWith(row, env, nm)   // sweep 0, 1, 2, ... in order
//
// (and MeasureSparse for subset sweeps) — pinned by the equivalence
// tests in fleet_test.go. Fleet therefore requires cfg.Noise ==
// NoiseCounter: the stream model's draw-and-discard parity contract is
// inherently sequential per device and cannot be batched without
// changing its bytes.
package silicon

import (
	"fmt"

	"repro/internal/rng"
)

// Fleet is N manufactured instances of one Config with shared
// structure-of-arrays backing. Like NoiseModel state, a Fleet carries
// its own sweep counter and is not safe for concurrent use.
type Fleet struct {
	cfg     Config
	devices int
	numOsc  int

	// Component matrices, devices×numOsc row-major.
	base       []float64
	systematic []float64
	random     []float64
	tempCoef   []float64

	// keys[d] is device d's counter-noise key (the Uint64 NewNoise
	// would have drawn); sweep is the fleet-wide measurement counter —
	// every device measures every sweep, so the shared counter stays in
	// lockstep with N per-device counters.
	keys  []uint64
	sweep uint64

	// Cached noise-free frequency matrix for trueEnv (the fleet-wide
	// BaseCache): rebuilt in place when a measurement call moves the
	// operating point.
	trueRows  []float64
	trueEnv   Environment
	trueValid bool
}

// NewFleet manufactures one device per seed, drawing each device's
// variability and noise key from rng.New(seed) exactly as the
// single-device enrollment path does. It panics on an invalid config or
// a non-counter noise model.
func NewFleet(cfg Config, seeds []uint64) *Fleet {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Noise != NoiseCounter {
		panic(fmt.Sprintf("silicon: NewFleet requires the counter noise model, got %v", cfg.Noise))
	}
	n := cfg.Rows * cfg.Cols
	f := &Fleet{
		cfg:        cfg,
		devices:    len(seeds),
		numOsc:     n,
		base:       make([]float64, len(seeds)*n),
		systematic: make([]float64, len(seeds)*n),
		random:     make([]float64, len(seeds)*n),
		tempCoef:   make([]float64, len(seeds)*n),
		keys:       make([]uint64, len(seeds)),
		trueRows:   make([]float64, len(seeds)*n),
	}
	for d, seed := range seeds {
		src := rng.New(seed)
		lo, hi := d*n, (d+1)*n
		cfg.manufactureInto(src, f.base[lo:hi], f.systematic[lo:hi], f.random[lo:hi], f.tempCoef[lo:hi])
		f.keys[d] = src.Uint64()
	}
	return f
}

// Config returns the fleet's configuration.
func (f *Fleet) Config() Config { return f.cfg }

// Devices returns the number of manufactured devices (matrix rows).
func (f *Fleet) Devices() int { return f.devices }

// NumOsc returns the per-device oscillator count (matrix columns).
func (f *Fleet) NumOsc() int { return f.numOsc }

// Sweep returns the next sweep counter value (the number of measurement
// sweeps performed so far).
func (f *Fleet) Sweep() uint64 { return f.sweep }

// trueFor returns the noise-free frequency matrix for env, rebuilding
// the cache in place on an environment change. The per-element
// expression keeps the exact shape of Array.TrueFreq (the voltage term
// multiplied inside the sum, not hoisted) so any fused-multiply-add
// contraction the compiler applies is applied identically — hoisting
// vc*dV into a scalar would round differently on FMA targets and break
// the bit-identity contract.
func (f *Fleet) trueFor(env Environment) []float64 {
	if f.trueValid && f.trueEnv == env {
		return f.trueRows
	}
	dT := env.TempC - f.cfg.ReferenceTempC
	dV := env.VoltageV - f.cfg.NominalVoltageV
	vc := f.cfg.VoltCoefMHzPerV
	for i := range f.trueRows {
		f.trueRows[i] = f.base[i] + f.tempCoef[i]*dT + vc*dV
	}
	f.trueEnv = env
	f.trueValid = true
	return f.trueRows
}

// MeasureFleetInto performs one noisy measurement sweep of every
// oscillator of every device, writing the devices×numOsc frequency
// matrix row-major into dst. One counter chain per device (all sharing
// this sweep's counter value) bulk-fills the noise, then one pass
// applies the frequency model and counter quantization. Row d is
// bit-identical to MeasureIntoWith on the equivalent single device.
// Steady-state calls allocate nothing. It returns dst.
func (f *Fleet) MeasureFleetInto(dst []float64, env Environment) []float64 {
	if len(dst) != f.devices*f.numOsc {
		panic(fmt.Sprintf("silicon: MeasureFleetInto buffer length %d, want %d", len(dst), f.devices*f.numOsc))
	}
	tr := f.trueFor(env)
	rng.FillNormRows(dst, f.keys, f.sweep)
	f.sweep++
	sigma, window := f.cfg.NoiseSigmaMHz, f.cfg.CounterWindowUS
	if window > 0 {
		for i := range dst {
			dst[i] = quantizeWindow(tr[i]+sigma*dst[i], window)
		}
	} else {
		for i := range dst {
			dst[i] = tr[i] + sigma*dst[i]
		}
	}
	return dst
}

// MeasureFleetSubset performs one sparse measurement sweep: only the
// oscillators listed in idxs (ascending, no duplicates — a
// helper-referenced oscillator list) are measured, on every device.
// dst is the full devices×numOsc matrix; entries outside the subset
// are scratch garbage the caller must not read. Contiguous index runs
// become offset bulk fills (rng.FillNormAt); the counter-mode purity
// guarantee makes the values identical to per-oscillator scalar draws,
// so row d stays bit-identical to MeasureSparse on the equivalent
// single device. It returns dst.
func (f *Fleet) MeasureFleetSubset(dst []float64, idxs []int, env Environment) []float64 {
	if len(dst) != f.devices*f.numOsc {
		panic(fmt.Sprintf("silicon: MeasureFleetSubset buffer length %d, want %d", len(dst), f.devices*f.numOsc))
	}
	tr := f.trueFor(env)
	sweep := f.sweep
	f.sweep++
	sigma, window := f.cfg.NoiseSigmaMHz, f.cfg.CounterWindowUS
	for d := 0; d < f.devices; d++ {
		row := dst[d*f.numOsc : (d+1)*f.numOsc]
		sw := rng.NewBlockSweep(f.keys[d], sweep)
		if len(idxs) == len(row) {
			sw.FillNorm(row)
		} else {
			for j := 0; j < len(idxs); {
				// Extend the current run of consecutive indices and
				// fill it in one offset call.
				k := j + 1
				for k < len(idxs) && idxs[k] == idxs[k-1]+1 {
					k++
				}
				start := idxs[j]
				sw.FillNormAt(row[start:start+(k-j)], uint64(start))
				j = k
			}
		}
		trow := tr[d*f.numOsc : (d+1)*f.numOsc]
		for _, i := range idxs {
			row[i] = quantizeWindow(trow[i]+sigma*row[i], window)
		}
	}
	return dst
}
