// Package silicon simulates a ring-oscillator array with manufacturing
// variability, the hardware substrate every construction in this
// repository runs on. It substitutes the FPGA prototypes of the attacked
// proposals (Xilinx Spartan-3 / XC4010XL) with a Monte-Carlo model that
// captures exactly the properties the paper's analysis depends on:
//
//   - random (desired) per-RO process variation,
//   - systematic, spatially correlated variation modeled as a smooth
//     polynomial surface over the die (Fig. 2 of the paper, after
//     Sedcole & Cheung's FPGA measurements),
//   - measurement noise for every frequency read-out, plus counter
//     quantization,
//   - a linear temperature dependence with a per-RO slope spread, so
//     that pairwise frequency curves cross over temperature exactly as in
//     Fig. 3 of the paper (good / bad / cooperating pairs), and
//   - a common supply-voltage dependence.
//
// Frequencies are in MHz, temperatures in degrees Celsius, voltages in
// volts. All randomness flows through explicit rng.Source values so
// whole experiments replay from one seed.
package silicon

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Environment is the operating condition of one key reconstruction.
type Environment struct {
	TempC    float64
	VoltageV float64
}

// Config describes the statistical model of one manufactured RO array.
type Config struct {
	// Rows and Cols give the physical layout; N = Rows*Cols oscillators.
	Rows, Cols int

	// NominalMHz is the design frequency of every oscillator.
	NominalMHz float64

	// ProcessSigmaMHz is the standard deviation of the random (desired)
	// per-RO manufacturing variation.
	ProcessSigmaMHz float64

	// GradientXMHz and GradientYMHz describe the systematic linear trend
	// across the die: the frequency added at the far edge relative to
	// the origin, in each direction (the linear trend of Fig. 2).
	GradientXMHz, GradientYMHz float64

	// BowlMHz adds a quadratic systematic component: a paraboloid that
	// is zero at the die center and reaches BowlMHz at the corners,
	// modeling radial process gradients.
	BowlMHz float64

	// NoiseSigmaMHz is the standard deviation of the additive noise of a
	// single frequency measurement.
	NoiseSigmaMHz float64

	// TempCoefMeanMHzPerC is the mean frequency slope versus
	// temperature; physically negative (frequency drops when the die
	// heats up).
	TempCoefMeanMHzPerC float64

	// TempCoefSigmaMHzPerC is the per-RO spread of that slope. A nonzero
	// spread makes pairwise frequency differences temperature dependent
	// and produces the crossovers of Fig. 3.
	TempCoefSigmaMHzPerC float64

	// VoltCoefMHzPerV is the common frequency slope versus supply
	// voltage (positive: frequency rises with voltage).
	VoltCoefMHzPerV float64

	// ReferenceTempC and NominalVoltageV define the enrollment
	// environment in which base frequencies are stated.
	ReferenceTempC  float64
	NominalVoltageV float64

	// CounterWindowUS, when positive, enables counter quantization: a
	// measurement counts rising edges during this many microseconds and
	// the returned frequency is count / window (the paper's "counter
	// values are discrete" remark, the root of the ∆f = 0 bias).
	CounterWindowUS float64

	// Noise selects the measurement-noise determinism contract (see
	// noise.go). The zero value is the legacy sequential-stream model,
	// so existing configs and their seed goldens are untouched.
	Noise NoiseModelKind
}

// DefaultConfig returns a parameterization representative of the FPGA RO
// measurements in the cited literature: ~1% process sigma, a systematic
// trend of the same order as the random spread, and a temperature slope
// spread that yields a healthy population of cooperating pairs over the
// industrial range.
func DefaultConfig(rows, cols int) Config {
	return Config{
		Rows:                 rows,
		Cols:                 cols,
		NominalMHz:           200,
		ProcessSigmaMHz:      2.0,
		GradientXMHz:         3.0,
		GradientYMHz:         1.5,
		BowlMHz:              1.0,
		NoiseSigmaMHz:        0.05,
		TempCoefMeanMHzPerC:  -0.20,
		TempCoefSigmaMHzPerC: 0.02,
		VoltCoefMHzPerV:      40,
		ReferenceTempC:       25,
		NominalVoltageV:      1.2,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Rows < 1 || c.Cols < 1 {
		return fmt.Errorf("silicon: array %dx%d has no oscillators", c.Rows, c.Cols)
	}
	if c.NominalMHz <= 0 {
		return fmt.Errorf("silicon: nominal frequency %v <= 0", c.NominalMHz)
	}
	if c.ProcessSigmaMHz < 0 || c.NoiseSigmaMHz < 0 || c.TempCoefSigmaMHzPerC < 0 {
		return fmt.Errorf("silicon: negative sigma in config")
	}
	if c.Noise != NoiseStream && c.Noise != NoiseCounter {
		return fmt.Errorf("silicon: unknown noise model %d", int(c.Noise))
	}
	return nil
}

// quantizeWindow applies counter quantization for a positive window:
// count = floor(f_MHz * window_us) edges, scaled back — flooring toward
// zero, the usual ripple-counter behaviour. It is the single source of
// the quantization rule; the measurement loops hoist the window out of
// Config (a plain float argument inlines, a large-struct method
// receiver copies Config per call) and all feed through here.
func quantizeWindow(f, window float64) float64 {
	if window > 0 {
		return math.Floor(f*window) / window
	}
	return f
}

// NominalEnv returns the enrollment environment of the config.
func (c Config) NominalEnv() Environment {
	return Environment{TempC: c.ReferenceTempC, VoltageV: c.NominalVoltageV}
}

// Array is one manufactured instance of the configured RO array.
type Array struct {
	cfg        Config
	base       []float64 // per-RO frequency at reference environment
	systematic []float64 // systematic component of base (for analysis)
	random     []float64 // random component of base (for analysis)
	tempCoef   []float64 // per-RO dF/dT
}

// NewArray manufactures one array instance, drawing its variability from
// src. It panics on an invalid config (construction parameters are
// programmer-chosen, not runtime data).
func NewArray(cfg Config, src *rng.Source) *Array {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.Rows * cfg.Cols
	a := &Array{
		cfg:        cfg,
		base:       make([]float64, n),
		systematic: make([]float64, n),
		random:     make([]float64, n),
		tempCoef:   make([]float64, n),
	}
	cfg.manufactureInto(src, a.base, a.systematic, a.random, a.tempCoef)
	return a
}

// manufactureInto draws one array instance's variability into
// caller-owned component vectors (all of length Rows*Cols) — the single
// manufacture loop shared by NewArray, Array.Remanufactured, and
// fleet rows, so every construction path consumes src identically:
// per oscillator, the random process component then the temperature
// slope.
func (c Config) manufactureInto(src *rng.Source, base, systematic, random, tempCoef []float64) {
	for i := range base {
		x, y := i%c.Cols, i/c.Cols
		systematic[i] = c.systematicAt(x, y)
		random[i] = src.NormScaled(0, c.ProcessSigmaMHz)
		base[i] = c.NominalMHz + systematic[i] + random[i]
		tempCoef[i] = src.NormScaled(c.TempCoefMeanMHzPerC, c.TempCoefSigmaMHzPerC)
	}
}

// Remanufactured re-draws array a as a fresh instance of cfg from src,
// reusing a's component buffers when the oscillator count is unchanged:
// the device-pool path that turns per-seed manufacture from four slice
// allocations into zero. The result is bit-identical to NewArray(cfg,
// src) — same draw order, same arithmetic — and when the geometry
// matches, the returned array IS a (pointer identity preserved for
// scratch invalidation checks). A nil receiver or a size change falls
// back to NewArray.
func (a *Array) Remanufactured(cfg Config, src *rng.Source) *Array {
	if a == nil || len(a.base) != cfg.Rows*cfg.Cols {
		return NewArray(cfg, src)
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	a.cfg = cfg
	cfg.manufactureInto(src, a.base, a.systematic, a.random, a.tempCoef)
	return a
}

// systematicAt evaluates the configured systematic surface at grid
// coordinates (x, y). Coordinates are normalized to [0, 1] across the die
// so that gradient magnitudes are layout-size independent.
func (c Config) systematicAt(x, y int) float64 {
	nx, ny := 0.0, 0.0
	if c.Cols > 1 {
		nx = float64(x) / float64(c.Cols-1)
	}
	if c.Rows > 1 {
		ny = float64(y) / float64(c.Rows-1)
	}
	lin := c.GradientXMHz*nx + c.GradientYMHz*ny
	dx, dy := nx-0.5, ny-0.5
	bowl := c.BowlMHz * (dx*dx + dy*dy) / 0.5
	return lin + bowl
}

// Config returns the array's configuration.
func (a *Array) Config() Config { return a.cfg }

// N returns the oscillator count.
func (a *Array) N() int { return len(a.base) }

// Rows returns the layout row count.
func (a *Array) Rows() int { return a.cfg.Rows }

// Cols returns the layout column count.
func (a *Array) Cols() int { return a.cfg.Cols }

// Pos maps an oscillator index to its (x, y) = (column, row) grid
// position; indices scan row-major, matching the univariate labeling of
// the paper's Section II.
func (a *Array) Pos(i int) (x, y int) {
	return i % a.cfg.Cols, i / a.cfg.Cols
}

// Index maps a grid position back to the oscillator index.
func (a *Array) Index(x, y int) int {
	if x < 0 || x >= a.cfg.Cols || y < 0 || y >= a.cfg.Rows {
		panic(fmt.Sprintf("silicon: position (%d,%d) outside %dx%d", x, y, a.cfg.Cols, a.cfg.Rows))
	}
	return y*a.cfg.Cols + x
}

// TrueFreq returns the noise-free frequency of oscillator i in the given
// environment: base + tempCoef*(T - Tref) + voltCoef*(V - Vnom).
func (a *Array) TrueFreq(i int, env Environment) float64 {
	return a.base[i] +
		a.tempCoef[i]*(env.TempC-a.cfg.ReferenceTempC) +
		a.cfg.VoltCoefMHzPerV*(env.VoltageV-a.cfg.NominalVoltageV)
}

// Measure performs one noisy frequency measurement of oscillator i,
// applying counter quantization when configured.
func (a *Array) Measure(i int, env Environment, src *rng.Source) float64 {
	return quantizeWindow(a.TrueFreq(i, env)+src.NormScaled(0, a.cfg.NoiseSigmaMHz), a.cfg.CounterWindowUS)
}

// MeasureAll measures every oscillator once in the given environment.
func (a *Array) MeasureAll(env Environment, src *rng.Source) []float64 {
	return a.MeasureInto(make([]float64, a.N()), env, src)
}

// MeasureAllWith is MeasureAll under an explicit noise model.
func (a *Array) MeasureAllWith(env Environment, nm NoiseModel) []float64 {
	return a.MeasureIntoWith(make([]float64, a.N()), env, nm)
}

// MeasureInto is MeasureAll into a caller-owned buffer of length N: the
// hot-loop variant the devices' scratch state feeds with a reused slice.
// Noise is drawn in bulk (rng.NormFill), consuming the source exactly as
// N sequential Measure calls would, so MeasureAll and MeasureInto are
// interchangeable on the same stream. It returns dst.
func (a *Array) MeasureInto(dst []float64, env Environment, src *rng.Source) []float64 {
	return a.MeasureIntoWith(dst, env, StreamNoise(src))
}

// MeasureIntoWith is MeasureInto under an explicit noise model: one
// sweep of variates (nm.FillAll), then the per-oscillator frequency
// model and quantization. It returns dst.
func (a *Array) MeasureIntoWith(dst []float64, env Environment, nm NoiseModel) []float64 {
	if len(dst) != a.N() {
		panic(fmt.Sprintf("silicon: MeasureInto buffer length %d, want %d", len(dst), a.N()))
	}
	nm.FillAll(dst)
	sigma, window := a.cfg.NoiseSigmaMHz, a.cfg.CounterWindowUS
	for i := range dst {
		dst[i] = quantizeWindow(a.TrueFreq(i, env)+sigma*dst[i], window)
	}
	return dst
}

// MeasureSubset measures only the oscillators with want[i] set, writing
// their frequencies into dst; entries of dst outside the subset are
// scratch garbage the caller must not read. Pinned determinism contract
// of the stream model: the noise draw for every oscillator — wanted or
// not — is still consumed from src in index order (draw-and-discard), so
// a device that measures a helper-referenced subset produces
// bit-identical frequencies, and leaves the stream in a bit-identical
// state, to one that calls MeasureAll. The saved work is the
// per-oscillator frequency model and counter quantization, not the
// noise sampling; MeasureSparse under the counter model saves both.
func (a *Array) MeasureSubset(dst []float64, want []bool, env Environment, src *rng.Source) []float64 {
	if len(dst) != a.N() || len(want) != a.N() {
		panic(fmt.Sprintf("silicon: MeasureSubset buffers %d/%d, want %d", len(dst), len(want), a.N()))
	}
	src.NormFill(dst)
	sigma, window := a.cfg.NoiseSigmaMHz, a.cfg.CounterWindowUS
	for i := range dst {
		if !want[i] {
			continue
		}
		dst[i] = quantizeWindow(a.TrueFreq(i, env)+sigma*dst[i], window)
	}
	return dst
}

// MeasureSparse measures only the oscillators listed in idxs (ascending,
// no duplicates), writing their frequencies into dst (length N); entries
// outside the subset are scratch garbage the caller must not read. The
// per-variate cost contract is the noise model's: the stream model
// draws-and-discards every oscillator's noise to hold its parity
// contract (making MeasureSparse bit-identical to MeasureSubset with
// the equivalent mask), while the counter model draws exactly len(idxs)
// variates — the genuinely O(k) subset path sparse oracle queries ride.
func (a *Array) MeasureSparse(dst []float64, idxs []int, env Environment, nm NoiseModel) []float64 {
	if len(dst) != a.N() {
		panic(fmt.Sprintf("silicon: MeasureSparse buffer length %d, want %d", len(dst), a.N()))
	}
	nm.FillIndices(dst, idxs)
	sigma, window := a.cfg.NoiseSigmaMHz, a.cfg.CounterWindowUS
	for _, i := range idxs {
		dst[i] = quantizeWindow(a.TrueFreq(i, env)+sigma*dst[i], window)
	}
	return dst
}

// MeasureSparseBase is MeasureSparse over a precomputed noise-free
// frequency vector (BaseCache.For): the per-query hot path of devices
// whose operating environment is stable across queries, where
// re-evaluating the three-term frequency model per oscillator per
// query is pure waste. base[i] must equal TrueFreq(i, env) for the
// environment the noise belongs to; the result is then bit-identical
// to MeasureSparse.
func (a *Array) MeasureSparseBase(dst []float64, idxs []int, base []float64, nm NoiseModel) []float64 {
	if len(dst) != a.N() || len(base) != a.N() {
		panic(fmt.Sprintf("silicon: MeasureSparseBase buffers %d/%d, want %d", len(dst), len(base), a.N()))
	}
	nm.FillIndices(dst, idxs)
	sigma, window := a.cfg.NoiseSigmaMHz, a.cfg.CounterWindowUS
	for _, i := range idxs {
		dst[i] = quantizeWindow(base[i]+sigma*dst[i], window)
	}
	return dst
}

// TrueFreqInto fills dst (length N) with the noise-free frequency of
// every oscillator in env.
func (a *Array) TrueFreqInto(dst []float64, env Environment) []float64 {
	if len(dst) != a.N() {
		panic(fmt.Sprintf("silicon: TrueFreqInto buffer length %d, want %d", len(dst), a.N()))
	}
	for i := range dst {
		dst[i] = a.TrueFreq(i, env)
	}
	return dst
}

// BaseCache memoizes the noise-free frequency vector of one
// environment. Devices keep one in their per-oracle scratch: the
// vector is a pure function of (array, environment), so it stays valid
// across queries and helper writes, and is rebuilt only when the
// attacker actually moves the operating point (the tempco attack's
// temperature sweeps). The zero value is ready; not concurrency-safe.
type BaseCache struct {
	env   Environment
	valid bool
	base  []float64
}

// For returns the cached vector for env, rebuilding it on first use or
// an environment change.
func (bc *BaseCache) For(a *Array, env Environment) []float64 {
	if !bc.valid || bc.env != env || len(bc.base) != a.N() {
		if cap(bc.base) < a.N() {
			bc.base = make([]float64, a.N())
		}
		bc.base = bc.base[:a.N()]
		a.TrueFreqInto(bc.base, env)
		bc.env = env
		bc.valid = true
	}
	return bc.base
}

// Invalidate forces the next For to rebuild. Required when the array's
// CONTENTS changed under the same pointer (Array.Remanufactured on the
// device-pool path): For's env+length check cannot see a content
// change, so the owner of the scratch must invalidate explicitly.
func (bc *BaseCache) Invalidate() { bc.valid = false }

// MeasureAveraged measures every oscillator `reps` times and returns the
// per-oscillator means — the standard enrollment-time noise reduction.
func (a *Array) MeasureAveraged(env Environment, src *rng.Source, reps int) []float64 {
	return a.MeasureAveragedInto(make([]float64, a.N()), env, src, reps)
}

// MeasureAveragedInto is MeasureAveraged into a caller-owned buffer of
// length N, allocation-free. Noise is drawn in per-oscillator bulk
// chunks (rng.NormFill into a stack buffer), consuming the source
// exactly as the reps*N sequential scalar Measure calls it replaced —
// oscillator-major, repetition-minor — so enrolled keys and every draw
// after enrollment stay bit-identical. The per-oscillator true
// frequency is evaluated once instead of once per repetition.
func (a *Array) MeasureAveragedInto(dst []float64, env Environment, src *rng.Source, reps int) []float64 {
	if reps < 1 {
		panic("silicon: MeasureAveraged needs reps >= 1")
	}
	if len(dst) != a.N() {
		panic(fmt.Sprintf("silicon: MeasureAveragedInto buffer length %d, want %d", len(dst), a.N()))
	}
	var buf [64]float64
	sigma, window := a.cfg.NoiseSigmaMHz, a.cfg.CounterWindowUS
	for i := range dst {
		base := a.TrueFreq(i, env)
		var s float64
		for rem := reps; rem > 0; {
			n := min(rem, len(buf))
			src.NormFill(buf[:n])
			for _, z := range buf[:n] {
				s += quantizeWindow(base+sigma*z, window)
			}
			rem -= n
		}
		dst[i] = s / float64(reps)
	}
	return dst
}

// MeasureAveragedWith is the enrollment-time averaging under an explicit
// noise model. The stream model keeps the legacy oscillator-major draw
// order (bit-identical to MeasureAveraged on the same source); the
// counter model performs reps whole-array sweeps, each keyed by its own
// sweep counter — the natural counter-mode contract.
func (a *Array) MeasureAveragedWith(env Environment, nm NoiseModel, reps int) []float64 {
	if sn, ok := nm.(*streamNoise); ok {
		return a.MeasureAveraged(env, sn.src(), reps)
	}
	if reps < 1 {
		panic("silicon: MeasureAveraged needs reps >= 1")
	}
	out := make([]float64, a.N())
	row := make([]float64, a.N())
	base := make([]float64, a.N())
	for i := range base {
		base[i] = a.TrueFreq(i, env)
	}
	sigma, window := a.cfg.NoiseSigmaMHz, a.cfg.CounterWindowUS
	for r := 0; r < reps; r++ {
		nm.FillAll(row)
		for i := range out {
			out[i] += quantizeWindow(base[i]+sigma*row[i], window)
		}
	}
	inv := 1 / float64(reps)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// TempCoef returns the per-RO temperature slope (exposed for analysis and
// for the temperature-aware construction's enrollment, which the original
// proposal performs with measurements at two environmental extremes).
func (a *Array) TempCoef(i int) float64 { return a.tempCoef[i] }

// SystematicComponent returns the systematic part of oscillator i's base
// frequency; analysis-only (a real attacker cannot read this directly,
// but the entropy distiller estimates it).
func (a *Array) SystematicComponent(i int) float64 { return a.systematic[i] }

// RandomComponent returns the random part of oscillator i's base
// frequency; analysis-only.
func (a *Array) RandomComponent(i int) float64 { return a.random[i] }

// PairDeltaF returns the noise-free frequency difference f_i - f_j in the
// given environment.
func (a *Array) PairDeltaF(i, j int, env Environment) float64 {
	return a.TrueFreq(i, env) - a.TrueFreq(j, env)
}

// CrossoverTemp returns the temperature at which oscillators i and j swap
// order, and ok=false when their temperature slopes are (numerically)
// identical so no crossover exists.
func (a *Array) CrossoverTemp(i, j int) (float64, bool) {
	dSlope := a.tempCoef[i] - a.tempCoef[j]
	if math.Abs(dSlope) < 1e-12 {
		return 0, false
	}
	dBase := a.base[i] - a.base[j]
	return a.cfg.ReferenceTempC - dBase/dSlope, true
}
