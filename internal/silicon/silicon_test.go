package silicon

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func testArray(seed uint64) *Array {
	return NewArray(DefaultConfig(8, 16), rng.New(seed))
}

func TestLayoutIndexing(t *testing.T) {
	a := testArray(1)
	if a.N() != 128 || a.Rows() != 8 || a.Cols() != 16 {
		t.Fatalf("layout (%d,%d,%d)", a.N(), a.Rows(), a.Cols())
	}
	for i := 0; i < a.N(); i++ {
		x, y := a.Pos(i)
		if a.Index(x, y) != i {
			t.Fatalf("Pos/Index mismatch at %d", i)
		}
	}
	x, y := a.Pos(17)
	if x != 1 || y != 1 {
		t.Fatalf("Pos(17) = (%d,%d), want (1,1) for 16 columns", x, y)
	}
}

func TestIndexPanicsOutside(t *testing.T) {
	a := testArray(1)
	for _, pos := range [][2]int{{-1, 0}, {16, 0}, {0, 8}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("(%d,%d): expected panic", pos[0], pos[1])
				}
			}()
			a.Index(pos[0], pos[1])
		}()
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Rows: 0, Cols: 4, NominalMHz: 100},
		{Rows: 4, Cols: 4, NominalMHz: 0},
		{Rows: 4, Cols: 4, NominalMHz: 100, ProcessSigmaMHz: -1},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestManufacturingReproducible(t *testing.T) {
	a := testArray(42)
	b := testArray(42)
	env := a.Config().NominalEnv()
	for i := 0; i < a.N(); i++ {
		if a.TrueFreq(i, env) != b.TrueFreq(i, env) {
			t.Fatal("same seed produced different arrays")
		}
	}
	c := testArray(43)
	diff := 0
	for i := 0; i < a.N(); i++ {
		if a.TrueFreq(i, env) != c.TrueFreq(i, env) {
			diff++
		}
	}
	if diff < a.N()/2 {
		t.Fatal("different seeds produced nearly identical arrays")
	}
}

func TestFrequencyDecomposition(t *testing.T) {
	a := testArray(7)
	cfg := a.Config()
	env := cfg.NominalEnv()
	for i := 0; i < a.N(); i++ {
		want := cfg.NominalMHz + a.SystematicComponent(i) + a.RandomComponent(i)
		if got := a.TrueFreq(i, env); math.Abs(got-want) > 1e-9 {
			t.Fatalf("RO %d: freq %v, decomposition %v", i, got, want)
		}
	}
}

func TestSystematicGradientShape(t *testing.T) {
	// With only an x-gradient configured, systematic frequency must
	// increase monotonically along x and be constant along y.
	cfg := DefaultConfig(4, 10)
	cfg.GradientXMHz = 5
	cfg.GradientYMHz = 0
	cfg.BowlMHz = 0
	a := NewArray(cfg, rng.New(1))
	for y := 0; y < 4; y++ {
		for x := 1; x < 10; x++ {
			if a.SystematicComponent(a.Index(x, y)) <= a.SystematicComponent(a.Index(x-1, y)) {
				t.Fatalf("systematic not increasing at (%d,%d)", x, y)
			}
		}
	}
	for x := 0; x < 10; x++ {
		v0 := a.SystematicComponent(a.Index(x, 0))
		for y := 1; y < 4; y++ {
			if math.Abs(a.SystematicComponent(a.Index(x, y))-v0) > 1e-12 {
				t.Fatalf("systematic varies along y at x=%d", x)
			}
		}
	}
}

func TestBowlIsRadial(t *testing.T) {
	cfg := DefaultConfig(5, 5)
	cfg.GradientXMHz = 0
	cfg.GradientYMHz = 0
	cfg.BowlMHz = 2
	a := NewArray(cfg, rng.New(1))
	center := a.SystematicComponent(a.Index(2, 2))
	corner := a.SystematicComponent(a.Index(0, 0))
	if center >= corner {
		t.Fatalf("bowl: center %v >= corner %v", center, corner)
	}
	if math.Abs(corner-2) > 1e-9 {
		t.Fatalf("corner bowl value %v, want 2", corner)
	}
}

func TestRandomComponentMoments(t *testing.T) {
	cfg := DefaultConfig(32, 32)
	a := NewArray(cfg, rng.New(5))
	var sum, sumSq float64
	for i := 0; i < a.N(); i++ {
		v := a.RandomComponent(i)
		sum += v
		sumSq += v * v
	}
	n := float64(a.N())
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.3 {
		t.Errorf("random mean %v, want ~0", mean)
	}
	if math.Abs(sd-cfg.ProcessSigmaMHz) > 0.3 {
		t.Errorf("random sd %v, want ~%v", sd, cfg.ProcessSigmaMHz)
	}
}

func TestTemperatureDependence(t *testing.T) {
	a := testArray(11)
	cfg := a.Config()
	cold := Environment{TempC: -20, VoltageV: cfg.NominalVoltageV}
	hot := Environment{TempC: 80, VoltageV: cfg.NominalVoltageV}
	// Frequencies increase with decreasing temperature (paper, §III-A).
	for i := 0; i < a.N(); i++ {
		if a.TrueFreq(i, cold) <= a.TrueFreq(i, hot) {
			t.Fatalf("RO %d: cold %v <= hot %v", i, a.TrueFreq(i, cold), a.TrueFreq(i, hot))
		}
	}
}

func TestVoltageDependence(t *testing.T) {
	a := testArray(11)
	cfg := a.Config()
	low := Environment{TempC: cfg.ReferenceTempC, VoltageV: 1.0}
	high := Environment{TempC: cfg.ReferenceTempC, VoltageV: 1.4}
	// Frequencies increase with increasing supply voltage (paper, §III-A).
	for i := 0; i < a.N(); i++ {
		if a.TrueFreq(i, high) <= a.TrueFreq(i, low) {
			t.Fatal("voltage dependence inverted")
		}
	}
}

func TestLinearityInTemperature(t *testing.T) {
	// f(T) must be exactly linear: f(50) - f(25) == f(75) - f(50).
	a := testArray(13)
	v := a.Config().NominalVoltageV
	for i := 0; i < a.N(); i += 7 {
		d1 := a.TrueFreq(i, Environment{50, v}) - a.TrueFreq(i, Environment{25, v})
		d2 := a.TrueFreq(i, Environment{75, v}) - a.TrueFreq(i, Environment{50, v})
		if math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("RO %d: nonlinear in T", i)
		}
	}
}

func TestMeasurementNoise(t *testing.T) {
	a := testArray(17)
	env := a.Config().NominalEnv()
	src := rng.New(99)
	const reps = 20000
	var sum, sumSq float64
	truth := a.TrueFreq(0, env)
	for r := 0; r < reps; r++ {
		m := a.Measure(0, env, src)
		sum += m - truth
		sumSq += (m - truth) * (m - truth)
	}
	mean := sum / reps
	sd := math.Sqrt(sumSq/reps - mean*mean)
	if math.Abs(mean) > 0.005 {
		t.Errorf("noise mean %v, want ~0", mean)
	}
	if math.Abs(sd-a.Config().NoiseSigmaMHz) > 0.005 {
		t.Errorf("noise sd %v, want ~%v", sd, a.Config().NoiseSigmaMHz)
	}
}

func TestMeasureAveragedReducesNoise(t *testing.T) {
	a := testArray(19)
	env := a.Config().NominalEnv()
	src := rng.New(1)
	truth := a.TrueFreq(3, env)
	var errSingle, errAvg float64
	const trials = 500
	for i := 0; i < trials; i++ {
		errSingle += math.Abs(a.Measure(3, env, src) - truth)
		errAvg += math.Abs(a.MeasureAveraged(env, src, 16)[3] - truth)
	}
	if errAvg >= errSingle/2 {
		t.Fatalf("averaging did not reduce error: single %v avg %v", errSingle/trials, errAvg/trials)
	}
}

func TestCounterQuantization(t *testing.T) {
	cfg := DefaultConfig(2, 2)
	cfg.NoiseSigmaMHz = 0
	cfg.CounterWindowUS = 10 // resolution 0.1 MHz
	a := NewArray(cfg, rng.New(3))
	src := rng.New(4)
	env := cfg.NominalEnv()
	for i := 0; i < a.N(); i++ {
		m := a.Measure(i, env, src)
		scaled := m * cfg.CounterWindowUS
		if math.Abs(scaled-math.Round(scaled)) > 1e-9 {
			t.Fatalf("measurement %v not on the counter grid", m)
		}
		if m > a.TrueFreq(i, env) {
			t.Fatal("floor quantization must not exceed the true value (noiseless)")
		}
	}
}

func TestCrossoverTemp(t *testing.T) {
	a := testArray(23)
	found := false
	for i := 0; i < a.N() && !found; i++ {
		for j := i + 1; j < a.N(); j++ {
			tc, ok := a.CrossoverTemp(i, j)
			if !ok {
				continue
			}
			// At the crossover the delta must vanish.
			env := Environment{TempC: tc, VoltageV: a.Config().NominalVoltageV}
			if math.Abs(a.PairDeltaF(i, j, env)) > 1e-6 {
				t.Fatalf("pair (%d,%d): delta at crossover = %v", i, j, a.PairDeltaF(i, j, env))
			}
			// And the sign must differ on either side.
			before := a.PairDeltaF(i, j, Environment{tc - 10, a.Config().NominalVoltageV})
			after := a.PairDeltaF(i, j, Environment{tc + 10, a.Config().NominalVoltageV})
			if before*after >= 0 {
				t.Fatalf("pair (%d,%d): no sign change across crossover", i, j)
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no pair with a crossover found")
	}
}

func TestPairDeltaFAntisymmetry(t *testing.T) {
	a := testArray(29)
	env := Environment{TempC: 40, VoltageV: 1.25}
	f := func(iRaw, jRaw uint8) bool {
		i := int(iRaw) % a.N()
		j := int(jRaw) % a.N()
		return math.Abs(a.PairDeltaF(i, j, env)+a.PairDeltaF(j, i, env)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMeasureAll128(b *testing.B) {
	a := testArray(1)
	env := a.Config().NominalEnv()
	src := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.MeasureAll(env, src)
	}
}
