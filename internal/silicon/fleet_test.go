package silicon

import (
	"testing"

	"repro/internal/rng"
)

// fleetTestConfig is the equivalence-test parameterization: counter
// noise (the only model Fleet supports) over the standard 8x16 layout.
func fleetTestConfig(windowUS float64) Config {
	cfg := DefaultConfig(8, 16)
	cfg.Noise = NoiseCounter
	cfg.CounterWindowUS = windowUS
	return cfg
}

// singleDevice is the reference path every fleet row is pinned against:
// the exact enrollment sequence of the device layer.
type singleDevice struct {
	arr *Array
	nm  NoiseModel
}

func newSingleDevice(cfg Config, seed uint64) singleDevice {
	src := rng.New(seed)
	arr := NewArray(cfg, src)
	return singleDevice{arr: arr, nm: arr.NewNoise(src)}
}

// TestFleetMatchesSingleDevicePath pins the Fleet determinism contract:
// through an interleaved schedule of full sweeps, sparse sweeps, and
// environment changes — with and without counter quantization — every
// row of every fleet measurement is bit-identical to the single-device
// counter-mode path (MeasureIntoWith / MeasureSparse) at the same sweep
// counter.
func TestFleetMatchesSingleDevicePath(t *testing.T) {
	for _, windowUS := range []float64{0, 50} {
		cfg := fleetTestConfig(windowUS)
		n := cfg.Rows * cfg.Cols
		seeds := []uint64{1, 2, 42, 1 << 33}
		fleet := NewFleet(cfg, seeds)
		devs := make([]singleDevice, len(seeds))
		for d, seed := range seeds {
			devs[d] = newSingleDevice(cfg, seed)
		}

		envA := cfg.NominalEnv()
		envB := Environment{TempC: 80, VoltageV: 1.1}
		// Ascending subsets: a contiguous helper-style run, a strided
		// list, and a run starting at an odd index (block straddle).
		subsets := [][]int{
			{0, 1, 2, 3, 4, 5, 6, 7},
			{3, 4, 5, 6, 20, 40, 41, 127},
			{1, 2, 3, 9, 11, 64},
		}
		type step struct {
			env  Environment
			idxs []int // nil = full sweep
		}
		schedule := []step{
			{envA, nil}, {envA, nil}, {envA, subsets[0]}, {envA, nil},
			{envB, nil}, {envB, subsets[1]}, {envA, subsets[2]}, {envA, nil},
		}

		got := make([]float64, len(seeds)*n)
		want := make([]float64, n)
		for si, st := range schedule {
			if st.idxs == nil {
				fleet.MeasureFleetInto(got, st.env)
			} else {
				fleet.MeasureFleetSubset(got, st.idxs, st.env)
			}
			for d := range devs {
				row := got[d*n : (d+1)*n]
				if st.idxs == nil {
					devs[d].arr.MeasureIntoWith(want, st.env, devs[d].nm)
					for i := range want {
						if row[i] != want[i] {
							t.Fatalf("window=%v step %d device %d osc %d: fleet %v, single-device %v",
								windowUS, si, d, i, row[i], want[i])
						}
					}
				} else {
					devs[d].arr.MeasureSparse(want, st.idxs, st.env, devs[d].nm)
					for _, i := range st.idxs {
						if row[i] != want[i] {
							t.Fatalf("window=%v step %d device %d osc %d (sparse): fleet %v, single-device %v",
								windowUS, si, d, i, row[i], want[i])
						}
					}
				}
			}
		}
		if fleet.Sweep() != uint64(len(schedule)) {
			t.Fatalf("fleet sweep counter %d after %d sweeps", fleet.Sweep(), len(schedule))
		}
	}
}

// TestFleetManufactureMatchesNewArray pins fleet rows at manufacture
// time: component matrices row d must be the NewArray components for
// the same seed, and the noise key must be the Uint64 NewNoise would
// have drawn next.
func TestFleetManufactureMatchesNewArray(t *testing.T) {
	cfg := fleetTestConfig(0)
	n := cfg.Rows * cfg.Cols
	seeds := []uint64{7, 8, 9}
	fleet := NewFleet(cfg, seeds)
	for d, seed := range seeds {
		src := rng.New(seed)
		arr := NewArray(cfg, src)
		key := src.Uint64()
		for i := 0; i < n; i++ {
			if fleet.base[d*n+i] != arr.base[i] ||
				fleet.systematic[d*n+i] != arr.systematic[i] ||
				fleet.random[d*n+i] != arr.random[i] ||
				fleet.tempCoef[d*n+i] != arr.tempCoef[i] {
				t.Fatalf("device %d osc %d: fleet components diverge from NewArray", d, i)
			}
		}
		if fleet.keys[d] != key {
			t.Fatalf("device %d: fleet key %#x, NewNoise key %#x", d, fleet.keys[d], key)
		}
	}
}

// TestMeasureFleetIntoAllocFree is the steady-state fence: re-measuring
// an existing fleet allocates nothing, including across environment
// changes (the true-frequency cache rebuilds in place).
func TestMeasureFleetIntoAllocFree(t *testing.T) {
	cfg := fleetTestConfig(50)
	fleet := NewFleet(cfg, []uint64{1, 2, 3, 4})
	dst := make([]float64, fleet.Devices()*fleet.NumOsc())
	envA, envB := cfg.NominalEnv(), Environment{TempC: 80, VoltageV: 1.1}
	idxs := []int{1, 2, 3, 64}
	fleet.MeasureFleetInto(dst, envA) // warm the cache

	if allocs := testing.AllocsPerRun(100, func() {
		fleet.MeasureFleetInto(dst, envA)
	}); allocs != 0 {
		t.Fatalf("steady-state MeasureFleetInto allocates %v/run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		fleet.MeasureFleetSubset(dst, idxs, envA)
	}); allocs != 0 {
		t.Fatalf("steady-state MeasureFleetSubset allocates %v/run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		fleet.MeasureFleetInto(dst, envA)
		fleet.MeasureFleetInto(dst, envB) // forces a cache rebuild per run
	}); allocs != 0 {
		t.Fatalf("environment-change MeasureFleetInto allocates %v/run, want 0", allocs)
	}
}

// TestRemanufacturedMatchesNewArray pins the pool remanufacture path:
// re-drawing an existing array is bit-identical to NewArray — same
// components, same source consumption afterward — and preserves pointer
// identity when the size matches.
func TestRemanufacturedMatchesNewArray(t *testing.T) {
	cfg := fleetTestConfig(0)
	srcFresh, srcReuse := rng.New(5), rng.New(5)
	fresh := NewArray(cfg, srcFresh)
	prev := NewArray(cfg, rng.New(999))
	re := prev.Remanufactured(cfg, srcReuse)
	if re != prev {
		t.Fatalf("same-size Remanufactured did not reuse the receiver")
	}
	for i := 0; i < fresh.N(); i++ {
		if re.base[i] != fresh.base[i] || re.systematic[i] != fresh.systematic[i] ||
			re.random[i] != fresh.random[i] || re.tempCoef[i] != fresh.tempCoef[i] {
			t.Fatalf("osc %d: Remanufactured components diverge from NewArray", i)
		}
	}
	if a, b := srcFresh.Uint64(), srcReuse.Uint64(); a != b {
		t.Fatalf("source state diverges after remanufacture: %#x vs %#x", a, b)
	}

	// Size change and nil receiver both fall back to fresh manufacture.
	small := DefaultConfig(2, 2)
	small.Noise = NoiseCounter
	if got := re.Remanufactured(small, rng.New(5)); got == re || got.N() != 4 {
		t.Fatalf("size-changing Remanufactured did not fall back to NewArray")
	}
	var nilArr *Array
	if got := nilArr.Remanufactured(cfg, rng.New(5)); got == nil || got.N() != cfg.Rows*cfg.Cols {
		t.Fatalf("nil-receiver Remanufactured did not manufacture")
	}
}

// fleetBenchDevices matches the puf-bench fleet mode so the CI smoke
// and the committed artifact exercise the same shape.
const fleetBenchDevices = 256

// BenchmarkFleetSweep measures the steady-state batched path: one full
// fleet measurement sweep per op, 256 devices of 8x16 oscillators.
func BenchmarkFleetSweep(b *testing.B) {
	cfg := fleetTestConfig(50)
	seeds := make([]uint64, fleetBenchDevices)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	fleet := NewFleet(cfg, seeds)
	dst := make([]float64, fleet.Devices()*fleet.NumOsc())
	env := cfg.NominalEnv()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fleet.MeasureFleetInto(dst, env)
	}
	b.ReportMetric(float64(fleetBenchDevices)*float64(b.N)/b.Elapsed().Seconds(), "devices/s")
}

// BenchmarkPerDeviceSweep measures the loop Fleet replaces: per device,
// manufacture an Array and measure one sweep — exactly what a
// per-seed campaign task does today.
func BenchmarkPerDeviceSweep(b *testing.B) {
	cfg := fleetTestConfig(50)
	env := cfg.NominalEnv()
	dst := make([]float64, cfg.Rows*cfg.Cols)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := 0; d < fleetBenchDevices; d++ {
			src := rng.New(uint64(d + 1))
			arr := NewArray(cfg, src)
			nm := arr.NewNoise(src)
			arr.MeasureIntoWith(dst, env, nm)
		}
	}
	b.ReportMetric(float64(fleetBenchDevices)*float64(b.N)/b.Elapsed().Seconds(), "devices/s")
}
