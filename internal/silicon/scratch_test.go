package silicon

import (
	"testing"

	"repro/internal/rng"
)

// TestMeasureIntoMatchesMeasureAll pins the bulk path: same stream
// consumption, bit-identical frequencies.
func TestMeasureIntoMatchesMeasureAll(t *testing.T) {
	for _, window := range []float64{0, 2.5} {
		cfg := DefaultConfig(6, 7)
		cfg.CounterWindowUS = window
		a := NewArray(cfg, rng.New(1))
		env := Environment{TempC: 40, VoltageV: 1.15}

		srcA, srcB := rng.New(99), rng.New(99)
		ref := a.MeasureAll(env, srcA)
		dst := make([]float64, a.N())
		a.MeasureInto(dst, env, srcB)
		for i := range ref {
			if ref[i] != dst[i] {
				t.Fatalf("window=%v: oscillator %d: MeasureInto %v != MeasureAll %v", window, i, dst[i], ref[i])
			}
		}
		// The streams must end in the same state.
		if srcA.Uint64() != srcB.Uint64() {
			t.Fatalf("window=%v: stream state diverged after bulk measurement", window)
		}
	}
}

// TestMeasureSubsetDrawAndDiscard pins the sparse-measurement contract:
// noise draws are consumed for EVERY oscillator in index order even when
// only a subset is computed, so the wanted entries and the post-call
// stream state are bit-identical to a full MeasureAll.
func TestMeasureSubsetDrawAndDiscard(t *testing.T) {
	a := NewArray(DefaultConfig(5, 9), rng.New(2))
	env := a.Config().NominalEnv()
	want := make([]bool, a.N())
	for i := 0; i < a.N(); i += 3 {
		want[i] = true
	}

	srcA, srcB := rng.New(7), rng.New(7)
	ref := a.MeasureAll(env, srcA)
	dst := make([]float64, a.N())
	a.MeasureSubset(dst, want, env, srcB)
	for i := range ref {
		if want[i] && ref[i] != dst[i] {
			t.Fatalf("oscillator %d: subset %v != full %v", i, dst[i], ref[i])
		}
	}
	if srcA.Uint64() != srcB.Uint64() {
		t.Fatal("sparse measurement did not draw-and-discard: stream state diverged")
	}
}
