// Noise models. Every frequency measurement adds a standard Gaussian
// variate per oscillator scaled by Config.NoiseSigmaMHz; HOW those
// variates are produced is a determinism contract of its own, and this
// file pins the two contracts the repository supports behind the
// NoiseModel interface:
//
//   - NoiseStream (the legacy parity model): variates come from a
//     sequential rng.Source stream in oscillator-index order. Subset
//     measurement must draw-and-discard the noise of every skipped
//     oscillator to keep the stream position — and therefore every
//     later draw — bit-identical to a full measurement. All pre-existing
//     seed goldens are pinned against this model.
//
//   - NoiseCounter: each variate is keyed by the identity triple
//     (noise seed, measurement sweep counter, oscillator index) through
//     the counter-block generator of rng.BlockNorm. There is no stream
//     to keep aligned, so subset measurement draws exactly the k
//     variates it needs (genuinely O(k)), forked oracles are
//     independent by key instead of by stream replay, and per-sweep
//     noise is embarrassingly parallel. Counter-mode transcripts are
//     pinned by their own goldens.
//
// A NoiseModel instance carries the per-oracle noise state (the stream
// source or the sweep counter) and is NOT safe for concurrent use;
// forked devices construct their own via NewNoise.
package silicon

import (
	"fmt"

	"repro/internal/rng"
)

// NoiseModelKind selects a noise determinism contract.
type NoiseModelKind int

const (
	// NoiseStream is the sequential-stream parity model (the zero value,
	// so existing configs and goldens are untouched).
	NoiseStream NoiseModelKind = iota
	// NoiseCounter keys each variate by (seed, sweep, oscillator).
	NoiseCounter
)

// String implements fmt.Stringer.
func (k NoiseModelKind) String() string {
	switch k {
	case NoiseStream:
		return "stream"
	case NoiseCounter:
		return "counter"
	}
	return fmt.Sprintf("NoiseModelKind(%d)", int(k))
}

// ParseNoiseModel resolves a CLI/task-option model name.
func ParseNoiseModel(s string) (NoiseModelKind, error) {
	switch s {
	case "stream":
		return NoiseStream, nil
	case "counter":
		return NoiseCounter, nil
	}
	return 0, fmt.Errorf("silicon: unknown noise model %q (have stream, counter)", s)
}

// NoiseModel produces the standard Gaussian variates of frequency
// measurements. Each Fill* call is one measurement sweep: the stream
// model consumes its source, the counter model advances its sweep
// counter — either way two sweeps never share noise.
type NoiseModel interface {
	// Kind reports the determinism contract.
	Kind() NoiseModelKind
	// FillAll writes one variate per oscillator (len(dst) = N).
	FillAll(dst []float64)
	// FillIndices writes the variates of the listed oscillators into
	// dst (len(dst) = N; idxs ascending); entries outside idxs are
	// model-defined scratch. The stream model still draws every
	// oscillator's variate to hold its parity contract; the counter
	// model draws only len(idxs).
	FillIndices(dst []float64, idxs []int)
	// Fork returns an independent model of the same kind whose variates
	// derive deterministically from seed.
	Fork(seed uint64) NoiseModel
}

// NewNoise builds the per-oracle noise state for a model kind. The
// stream model wraps src itself (zero extra stream consumption, so
// legacy callers stay bit-identical); the counter model draws its key
// as src's next Uint64 and never touches src again. Devices should
// prefer Array.NewNoise, which keys the choice off the array's own
// config so model selection lives in one place.
func NewNoise(kind NoiseModelKind, src *rng.Source) NoiseModel {
	switch kind {
	case NoiseStream:
		return StreamNoise(src)
	case NoiseCounter:
		return CounterNoise(src.Uint64())
	}
	panic(fmt.Sprintf("silicon: NewNoise with unknown kind %d", int(kind)))
}

// ------------------------------------------------------------ stream --

// streamNoise adapts a sequential rng.Source to the NoiseModel
// interface. It is a type conversion of the source pointer, not a
// wrapper allocation, so per-call adaptation (MeasureInto and friends
// wrapping their src argument) stays allocation-free.
type streamNoise rng.Source

// StreamNoise returns the sequential-stream model over src. The model
// shares src's state: draws through the model and direct draws from src
// interleave exactly as they always have.
func StreamNoise(src *rng.Source) NoiseModel { return (*streamNoise)(src) }

func (sn *streamNoise) src() *rng.Source { return (*rng.Source)(sn) }

func (sn *streamNoise) Kind() NoiseModelKind { return NoiseStream }

func (sn *streamNoise) FillAll(dst []float64) { sn.src().NormFill(dst) }

// FillIndices draws every oscillator's variate regardless of idxs: the
// stream parity contract (draw-and-discard) documented on
// Array.MeasureSubset.
func (sn *streamNoise) FillIndices(dst []float64, _ []int) { sn.src().NormFill(dst) }

func (sn *streamNoise) Fork(seed uint64) NoiseModel { return StreamNoise(rng.New(seed)) }

// ----------------------------------------------------------- counter --

// counterNoise derives every variate from (key, sweep, index) via
// rng.BlockNorm; its only mutable state is the sweep counter.
type counterNoise struct {
	key   uint64
	sweep uint64
}

// CounterNoise returns the counter-mode model keyed by seed.
func CounterNoise(seed uint64) NoiseModel { return &counterNoise{key: seed} }

func (cn *counterNoise) Kind() NoiseModelKind { return NoiseCounter }

func (cn *counterNoise) FillAll(dst []float64) {
	sw := rng.NewBlockSweep(cn.key, cn.sweep)
	cn.sweep++
	sw.FillNorm(dst)
}

func (cn *counterNoise) FillIndices(dst []float64, idxs []int) {
	sw := rng.NewBlockSweep(cn.key, cn.sweep)
	cn.sweep++
	// A subset that is in fact the whole array (seqpair and tempco
	// helpers reference every oscillator) takes the branch-free bulk
	// fill; values are identical either way.
	if len(idxs) == len(dst) {
		sw.FillNorm(dst)
		return
	}
	for j := 0; j < len(idxs); j++ {
		i := idxs[j]
		// Neighbor oscillators dominate the helper-referenced subsets
		// (chain pairings), so an even/odd run shares one polar block
		// exactly as the dense fill does.
		if i&1 == 0 && j+1 < len(idxs) && idxs[j+1] == i+1 {
			dst[i], dst[i+1] = sw.NormPair(uint64(i) >> 1)
			j++
			continue
		}
		dst[i] = sw.Norm(uint64(i))
	}
}

func (cn *counterNoise) Fork(seed uint64) NoiseModel { return NewNoise(NoiseCounter, rng.New(seed)) }

// NewNoise builds the per-oracle noise state for the array's configured
// model (Config.Noise) — the one construction point devices use, so the
// declared model and the model actually measured under cannot drift
// apart.
func (a *Array) NewNoise(src *rng.Source) NoiseModel { return NewNoise(a.cfg.Noise, src) }
