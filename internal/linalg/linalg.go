// Package linalg provides the small amount of dense real linear algebra
// the entropy distiller needs: solving least-squares problems for the
// polynomial regression of the RO frequency map f(x, y).
//
// The problem sizes are tiny (a degree-p bivariate polynomial has
// (p+1)(p+2)/2 coefficients; the paper uses p in {2, 3}, i.e. 6 or 10
// unknowns), so the normal-equations approach with Gaussian elimination
// and partial pivoting is numerically adequate and keeps the code simple.
package linalg

import (
	"errors"
	"fmt"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("linalg: singular system")

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, element (i,j) at i*Cols+j
}

// NewMatrix returns a zero matrix of the given shape. It panics on
// non-positive dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m * x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %d vs %d", len(x), m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Transpose returns m^T.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %d vs %d", m.Cols, other.Rows))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < other.Cols; j++ {
				out.Data[i*out.Cols+j] += a * other.At(k, j)
			}
		}
	}
	return out
}

// SolveSquare solves A x = b for square A using Gaussian elimination with
// partial pivoting. A and b are not modified.
func SolveSquare(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: SolveSquare on %dx%d matrix", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), a.Rows)
	}
	n := a.Rows
	m := a.Clone()
	rhs := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in this column at or below
		// the diagonal.
		pivot := col
		best := abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := abs(m.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				m.Data[col*n+j], m.Data[pivot*n+j] = m.Data[pivot*n+j], m.Data[col*n+j]
			}
			rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			factor := m.At(r, col) * inv
			if factor == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Data[r*n+j] -= factor * m.At(col, j)
			}
			rhs[r] -= factor * rhs[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// LeastSquares solves min_x ||A x - b||_2 via the normal equations
// A^T A x = A^T b. A must have at least as many rows as columns.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("linalg: underdetermined least squares %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), a.Rows)
	}
	at := a.Transpose()
	ata := at.Mul(a)
	atb := at.MulVec(b)
	return SolveSquare(ata, atb)
}

// Residuals returns b - A x.
func Residuals(a *Matrix, x, b []float64) []float64 {
	ax := a.MulVec(x)
	out := make([]float64, len(b))
	for i := range b {
		out[i] = b[i] - ax[i]
	}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
