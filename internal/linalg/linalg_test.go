package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSolveSquareIdentity(t *testing.T) {
	n := 4
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	b := []float64{1, 2, 3, 4}
	x, err := SolveSquare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-12 {
			t.Fatalf("x = %v", x)
		}
	}
}

func TestSolveSquareKnown(t *testing.T) {
	// 2x + y = 5; x - y = 1 => x = 2, y = 1
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, -1)
	x, err := SolveSquare(a, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveSquareNeedsPivoting(t *testing.T) {
	// Zero on the first diagonal entry forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveSquare(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveSquareSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveSquare(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveSquareShapeErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := SolveSquare(a, []float64{1, 2}); err == nil {
		t.Fatal("expected error for non-square")
	}
	sq := NewMatrix(2, 2)
	if _, err := SolveSquare(sq, []float64{1}); err == nil {
		t.Fatal("expected error for rhs mismatch")
	}
}

func TestSolveSquareRandomProperty(t *testing.T) {
	// A x = b with known x: solving must recover x for random
	// well-conditioned A (diagonally dominated).
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.Norm())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // ensure dominance
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = r.Norm()
		}
		b := a.MulVec(want)
		x, err := SolveSquare(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLeastSquaresExactFit(t *testing.T) {
	// Fit y = 2 + 3x to points lying exactly on the line.
	xs := []float64{0, 1, 2, 3, 4}
	a := NewMatrix(len(xs), 2)
	b := make([]float64, len(xs))
	for i, x := range xs {
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 2 + 3*x
	}
	coef, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-2) > 1e-10 || math.Abs(coef[1]-3) > 1e-10 {
		t.Fatalf("coef = %v", coef)
	}
}

func TestLeastSquaresMinimizesResidual(t *testing.T) {
	// Noisy line: the LS solution's residual must be no larger than
	// nearby perturbed solutions'.
	r := rng.New(5)
	n := 50
	a := NewMatrix(n, 2)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i)
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 1 + 0.5*x + r.NormScaled(0, 0.3)
	}
	coef, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	norm := func(x []float64) float64 {
		res := Residuals(a, x, b)
		var s float64
		for _, v := range res {
			s += v * v
		}
		return s
	}
	base := norm(coef)
	for _, d := range [][2]float64{{0.01, 0}, {-0.01, 0}, {0, 0.01}, {0, -0.01}} {
		alt := []float64{coef[0] + d[0], coef[1] + d[1]}
		if norm(alt) < base-1e-12 {
			t.Fatalf("perturbed solution beats LS: %v", alt)
		}
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := LeastSquares(a, []float64{1, 2}); err == nil {
		t.Fatal("expected error")
	}
}

func TestMatrixOps(t *testing.T) {
	a := NewMatrix(2, 3)
	vals := []float64{1, 2, 3, 4, 5, 6}
	copy(a.Data, vals)
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %+v", at)
	}
	// (A^T A) is 3x3 symmetric.
	ata := at.Mul(a)
	if ata.Rows != 3 || ata.Cols != 3 {
		t.Fatal("Mul shape wrong")
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if ata.At(i, j) != ata.At(j, i) {
				t.Fatal("A^T A not symmetric")
			}
		}
	}
	v := a.MulVec([]float64{1, 1, 1})
	if v[0] != 6 || v[1] != 15 {
		t.Fatalf("MulVec = %v", v)
	}
}

func TestShapePanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewMatrix(0, 1) },
		func() { NewMatrix(1, -1) },
		func() { NewMatrix(2, 2).MulVec([]float64{1}) },
		func() { NewMatrix(2, 2).Mul(NewMatrix(3, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
