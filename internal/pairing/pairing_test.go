package pairing

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/silicon"
)

func freqs(seed uint64, n int) []float64 {
	r := rng.New(seed)
	f := make([]float64, n)
	for i := range f {
		f[i] = 200 + r.NormScaled(0, 2)
	}
	return f
}

func TestResponseBitConvention(t *testing.T) {
	f := []float64{10, 20}
	if ResponseBit(f, Pair{A: 0, B: 1}) {
		t.Fatal("f_A < f_B must give 0")
	}
	if !ResponseBit(f, Pair{A: 1, B: 0}) {
		t.Fatal("f_A > f_B must give 1")
	}
}

func TestSwappedInvertsBit(t *testing.T) {
	fn := func(seed uint64) bool {
		f := freqs(seed, 2)
		if f[0] == f[1] {
			return true
		}
		p := Pair{A: 0, B: 1}
		return ResponseBit(f, p) != ResponseBit(f, p.Swapped())
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestSnakePathAdjacency(t *testing.T) {
	rows, cols := 4, 10
	path := SnakePath(rows, cols)
	if len(path) != rows*cols {
		t.Fatalf("path length %d", len(path))
	}
	seen := make(map[int]bool)
	for _, v := range path {
		if seen[v] {
			t.Fatalf("path revisits %d", v)
		}
		seen[v] = true
	}
	// Consecutive entries are grid neighbors (Manhattan distance 1).
	for i := 1; i < len(path); i++ {
		x1, y1 := path[i-1]%cols, path[i-1]/cols
		x2, y2 := path[i]%cols, path[i]/cols
		if abs(x1-x2)+abs(y1-y2) != 1 {
			t.Fatalf("path step %d not adjacent: (%d,%d)->(%d,%d)", i, x1, y1, x2, y2)
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestChainPairsCounts(t *testing.T) {
	// Paper §IV-A: disjoint pairs give floor(N/2) bits, shared ROs give
	// up to N-1 bits.
	d := ChainPairs(4, 10, true)
	if len(d) != 20 {
		t.Fatalf("disjoint chain: %d pairs, want 20", len(d))
	}
	o := ChainPairs(4, 10, false)
	if len(o) != 39 {
		t.Fatalf("overlapping chain: %d pairs, want 39", len(o))
	}
	// Disjoint: no oscillator reused.
	used := make(map[int]bool)
	for _, p := range d {
		if used[p.A] || used[p.B] {
			t.Fatal("disjoint chain reuses an oscillator")
		}
		used[p.A], used[p.B] = true, true
	}
}

func TestEnrollMaskingPicksMaxDelta(t *testing.T) {
	f := []float64{10, 11, 10, 15, 10, 12} // pairs (0,1) d=1, (2,3) d=5, (4,5) d=2
	base := []Pair{{0, 1}, {2, 3}, {4, 5}}
	h, err := EnrollMasking(f, base, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Selected) != 1 || h.Selected[0] != 1 {
		t.Fatalf("selected %v, want [1]", h.Selected)
	}
	sel, err := h.SelectedPairs(base)
	if err != nil {
		t.Fatal(err)
	}
	if sel[0] != base[1] {
		t.Fatalf("selected pair %v", sel[0])
	}
}

func TestEnrollMaskingReliabilityGain(t *testing.T) {
	// The selected pairs must have a larger mean |∆f| than the base
	// pairs — the whole point of 1-out-of-k (paper §IV-B).
	a := silicon.NewArray(silicon.DefaultConfig(8, 16), rng.New(3))
	f := a.MeasureAll(a.Config().NominalEnv(), rng.New(4))
	base := ChainPairs(8, 16, true)
	h, err := EnrollMasking(f, base, 4)
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := h.SelectedPairs(base)
	meanAbs := func(ps []Pair) float64 {
		var s float64
		for _, p := range ps {
			s += math.Abs(f[p.A] - f[p.B])
		}
		return s / float64(len(ps))
	}
	if meanAbs(sel) <= meanAbs(base) {
		t.Fatalf("selection did not improve |∆f|: %v vs %v", meanAbs(sel), meanAbs(base))
	}
}

func TestEnrollMaskingErrors(t *testing.T) {
	f := []float64{1, 2}
	if _, err := EnrollMasking(f, []Pair{{0, 1}}, 0); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := EnrollMasking(f, []Pair{{0, 1}}, 2); err == nil {
		t.Fatal("too few pairs must fail")
	}
}

func TestMaskingHelperValidation(t *testing.T) {
	base := []Pair{{0, 1}, {2, 3}}
	bad := MaskingHelper{K: 2, Selected: []int{2}}
	if _, err := bad.SelectedPairs(base); err == nil {
		t.Fatal("selection >= k must fail")
	}
	tooMany := MaskingHelper{K: 2, Selected: []int{0, 0}}
	if _, err := tooMany.SelectedPairs(base); err == nil {
		t.Fatal("more groups than base pairs must fail")
	}
}

func TestMaskingMarshalRoundTrip(t *testing.T) {
	h := MaskingHelper{K: 5, Selected: []int{0, 4, 2, 3}}
	back, err := UnmarshalMasking(h.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.K != h.K || len(back.Selected) != len(h.Selected) {
		t.Fatalf("round trip %+v", back)
	}
	for i := range h.Selected {
		if back.Selected[i] != h.Selected[i] {
			t.Fatalf("round trip %+v", back)
		}
	}
	if _, err := UnmarshalMasking([]byte{1}); err == nil {
		t.Fatal("truncated data must fail")
	}
	if _, err := UnmarshalMasking(h.Marshal()[:5]); err == nil {
		t.Fatal("short data must fail")
	}
}

func TestSeqPairThresholdRespected(t *testing.T) {
	f := freqs(1, 64)
	const th = 1.5
	h := EnrollSeqPair(f, th, SortedStorage, nil)
	if len(h.Pairs) == 0 {
		t.Fatal("no pairs selected")
	}
	for _, p := range h.Pairs {
		if f[p.A]-f[p.B] <= th {
			t.Fatalf("pair (%d,%d): discrepancy %v <= threshold", p.A, p.B, f[p.A]-f[p.B])
		}
	}
}

func TestSeqPairDisjoint(t *testing.T) {
	f := freqs(2, 64)
	h := EnrollSeqPair(f, 0.5, SortedStorage, nil)
	if err := h.Validate(64); err != nil {
		t.Fatal(err)
	}
	if len(h.Pairs) > 32 {
		t.Fatalf("%d pairs exceed floor(N/2)", len(h.Pairs))
	}
}

func TestSeqPairSortedStorageLeaksKey(t *testing.T) {
	// With SortedStorage every enrolled response bit is 1 — the direct
	// leakage of paper §VII-C.
	f := freqs(3, 64)
	h := EnrollSeqPair(f, 1.0, SortedStorage, nil)
	resp := Responses(f, h.Pairs)
	if resp.Weight() != resp.Len() {
		t.Fatalf("sorted storage: %d of %d bits set, want all", resp.Weight(), resp.Len())
	}
}

func TestSeqPairRandomizedStorageBalances(t *testing.T) {
	// Randomized storage should give ~50% ones across enrollments.
	ones, total := 0, 0
	for seed := uint64(0); seed < 50; seed++ {
		f := freqs(seed, 64)
		h := EnrollSeqPair(f, 1.0, RandomizedStorage, rng.New(seed+1000))
		resp := Responses(f, h.Pairs)
		ones += resp.Weight()
		total += resp.Len()
	}
	frac := float64(ones) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("randomized storage bit balance %v", frac)
	}
}

func TestSeqPairZeroThresholdPairsHalf(t *testing.T) {
	// With threshold 0 and distinct frequencies the loop pairs every
	// bottom-half entry: floor(N/2) pairs.
	f := freqs(4, 32)
	h := EnrollSeqPair(f, 0, SortedStorage, nil)
	if len(h.Pairs) != 16 {
		t.Fatalf("%d pairs, want 16", len(h.Pairs))
	}
}

func TestSeqPairValidateCatchesManipulation(t *testing.T) {
	h := SeqPairHelper{Pairs: []Pair{{0, 1}, {1, 2}}}
	if err := h.Validate(8); err == nil {
		t.Fatal("reuse must be rejected")
	}
	h2 := SeqPairHelper{Pairs: []Pair{{0, 9}}}
	if err := h2.Validate(8); err == nil {
		t.Fatal("out-of-range index must be rejected")
	}
	// But the attack's manipulations pass validation:
	f := freqs(5, 32)
	orig := EnrollSeqPair(f, 0.5, RandomizedStorage, rng.New(6))
	if len(orig.Pairs) < 2 {
		t.Skip("not enough pairs")
	}
	swappedPositions := SeqPairHelper{Pairs: append([]Pair(nil), orig.Pairs...)}
	swappedPositions.Pairs[0], swappedPositions.Pairs[1] = swappedPositions.Pairs[1], swappedPositions.Pairs[0]
	if err := swappedPositions.Validate(32); err != nil {
		t.Fatalf("position swap should pass validation: %v", err)
	}
	swappedOrder := SeqPairHelper{Pairs: append([]Pair(nil), orig.Pairs...)}
	swappedOrder.Pairs[0] = swappedOrder.Pairs[0].Swapped()
	if err := swappedOrder.Validate(32); err != nil {
		t.Fatalf("within-pair swap should pass validation: %v", err)
	}
}

func TestSeqPairMarshalRoundTrip(t *testing.T) {
	h := SeqPairHelper{Pairs: []Pair{{3, 7}, {1, 30}, {12, 5}}}
	back, err := UnmarshalSeqPair(h.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Pairs) != 3 {
		t.Fatalf("round trip %+v", back)
	}
	for i := range h.Pairs {
		if back.Pairs[i] != h.Pairs[i] {
			t.Fatalf("round trip %+v", back)
		}
	}
	if _, err := UnmarshalSeqPair(nil); err == nil {
		t.Fatal("nil data must fail")
	}
	if _, err := UnmarshalSeqPair(h.Marshal()[:7]); err == nil {
		t.Fatal("short data must fail")
	}
}

func TestResponsesLengthAndOrder(t *testing.T) {
	f := []float64{5, 1, 4, 2}
	pairs := []Pair{{0, 1}, {1, 2}, {3, 1}}
	r := Responses(f, pairs)
	if r.Len() != 3 {
		t.Fatalf("length %d", r.Len())
	}
	want := "101"
	if r.String() != want {
		t.Fatalf("responses %s, want %s", r, want)
	}
}

func TestSnakePathPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SnakePath(0, 5)
}
