// Package pairing implements the RO pair-selection schemes of Section IV
// of the paper: chains of physical neighbors (overlapping or disjoint),
// the 1-out-of-k masking scheme of Suh & Devadas, and the sequential
// pairing algorithm (LISA) of Yin & Qu, including its helper-data storage
// formats.
//
// The response-bit convention is fixed across the repository: a pair
// (A, B) produces bit 1 exactly when f_A > f_B at measurement time. The
// order in which a pair's two indices are stored in helper NVM therefore
// matters — the paper's Section VII-C observes that storing them sorted
// by enrollment frequency leaks every response bit outright, which is why
// enrollment offers both storage policies.
package pairing

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

// Pair identifies two oscillators by array index; its response bit is
// [f_A > f_B].
type Pair struct {
	A, B int
}

// Swapped returns the pair with its stored order reversed, which inverts
// its response bit — the attacker's deterministic error injector.
func (p Pair) Swapped() Pair { return Pair{A: p.B, B: p.A} }

// ResponseBit evaluates one pair against a frequency snapshot.
func ResponseBit(f []float64, p Pair) bool { return f[p.A] > f[p.B] }

// Responses evaluates a pair list into a response bit vector.
func Responses(f []float64, pairs []Pair) bitvec.Vector {
	out := bitvec.New(len(pairs))
	for i, p := range pairs {
		if ResponseBit(f, p) {
			out.Set(i, true)
		}
	}
	return out
}

// SnakePath returns a boustrophedon walk over a rows x cols grid: row 0
// left to right, row 1 right to left, and so on. Consecutive path entries
// are physically adjacent oscillators, which is the property the
// chain-of-neighbors scheme wants (reduced impact of spatial
// correlation, paper §IV-A).
func SnakePath(rows, cols int) []int {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("pairing: invalid grid %dx%d", rows, cols))
	}
	path := make([]int, 0, rows*cols)
	for y := 0; y < rows; y++ {
		if y%2 == 0 {
			for x := 0; x < cols; x++ {
				path = append(path, y*cols+x)
			}
		} else {
			for x := cols - 1; x >= 0; x-- {
				path = append(path, y*cols+x)
			}
		}
	}
	return path
}

// ChainPairs pairs neighbors along the snake path. With disjoint=true it
// returns floor(N/2) non-overlapping pairs; otherwise N-1 overlapping
// pairs (each oscillator shared between two pairs), the two variants of
// paper §IV-A.
func ChainPairs(rows, cols int, disjoint bool) []Pair {
	path := SnakePath(rows, cols)
	var pairs []Pair
	if disjoint {
		for i := 0; i+1 < len(path); i += 2 {
			pairs = append(pairs, Pair{A: path[i], B: path[i+1]})
		}
	} else {
		for i := 0; i+1 < len(path); i++ {
			pairs = append(pairs, Pair{A: path[i], B: path[i+1]})
		}
	}
	return pairs
}

// StoragePolicy selects how a pair's two indices are written to helper
// NVM at enrollment.
type StoragePolicy int

const (
	// RandomizedStorage flips a fair coin per pair, so the stored order
	// carries no information about the response bit. This is the
	// "secure" variant the paper says proposals fail to specify.
	RandomizedStorage StoragePolicy = iota
	// SortedStorage stores the enrollment-faster oscillator first, so
	// every enrolled response bit is 1 and the helper data leaks the
	// key directly (paper §VII-C). Included for the leakage ablation.
	SortedStorage
)

// String implements fmt.Stringer.
func (s StoragePolicy) String() string {
	switch s {
	case RandomizedStorage:
		return "randomized"
	case SortedStorage:
		return "sorted"
	}
	return fmt.Sprintf("StoragePolicy(%d)", int(s))
}

// --- 1-out-of-k masking (paper §IV-B) ---

// MaskingHelper is the public helper data of the 1-out-of-k scheme: for
// each group of k candidate pairs, the index (0..k-1) of the selected
// pair.
type MaskingHelper struct {
	K        int
	Selected []int
}

// EnrollMasking partitions basePairs into consecutive groups of k and
// selects, per group, the pair maximizing |∆f| at enrollment. Trailing
// pairs that do not fill a complete group are discarded, following the
// original proposal.
func EnrollMasking(f []float64, basePairs []Pair, k int) (MaskingHelper, error) {
	if k < 1 {
		return MaskingHelper{}, fmt.Errorf("pairing: masking k=%d < 1", k)
	}
	groups := len(basePairs) / k
	if groups == 0 {
		return MaskingHelper{}, fmt.Errorf("pairing: %d pairs cannot fill a group of %d", len(basePairs), k)
	}
	h := MaskingHelper{K: k, Selected: make([]int, groups)}
	for g := 0; g < groups; g++ {
		best, bestAbs := 0, -1.0
		for i := 0; i < k; i++ {
			p := basePairs[g*k+i]
			d := f[p.A] - f[p.B]
			if d < 0 {
				d = -d
			}
			if d > bestAbs {
				best, bestAbs = i, d
			}
		}
		h.Selected[g] = best
	}
	return h, nil
}

// SelectedPairs resolves the helper against the fixed base pair list. It
// validates the helper as an honest device would: selections must index
// within each group. (The paper's attack on this scheme works through
// valid selections, so validation does not stop it.)
func (h MaskingHelper) SelectedPairs(basePairs []Pair) ([]Pair, error) {
	return h.SelectedPairsInto(nil, basePairs)
}

// Validate applies SelectedPairs' structural checks without materializing
// the pair list — the allocation-free write-time validation a device runs
// on every helper install.
func (h MaskingHelper) Validate(basePairs []Pair) error {
	if h.K < 1 || len(h.Selected)*h.K > len(basePairs) {
		return fmt.Errorf("pairing: masking helper shape (k=%d, groups=%d) exceeds %d base pairs",
			h.K, len(h.Selected), len(basePairs))
	}
	for _, s := range h.Selected {
		if s < 0 || s >= h.K {
			return fmt.Errorf("pairing: masking selection %d outside group of %d", s, h.K)
		}
	}
	return nil
}

// SelectedPairsInto is SelectedPairs into a caller-owned buffer, regrown
// only when its capacity is insufficient.
func (h MaskingHelper) SelectedPairsInto(dst []Pair, basePairs []Pair) ([]Pair, error) {
	if err := h.Validate(basePairs); err != nil {
		return nil, err
	}
	if cap(dst) < len(h.Selected) {
		dst = make([]Pair, len(h.Selected))
	}
	dst = dst[:len(h.Selected)]
	for g, s := range h.Selected {
		dst[g] = basePairs[g*h.K+s]
	}
	return dst, nil
}

// Marshal serializes the masking helper for NVM.
func (h MaskingHelper) Marshal() []byte {
	buf := make([]byte, 0, 4+2*len(h.Selected))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(h.K))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(h.Selected)))
	for _, s := range h.Selected {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(s))
	}
	return buf
}

// UnmarshalMasking parses NVM bytes into a masking helper.
func UnmarshalMasking(data []byte) (MaskingHelper, error) {
	if len(data) < 4 {
		return MaskingHelper{}, fmt.Errorf("pairing: masking helper truncated (%d bytes)", len(data))
	}
	h := MaskingHelper{K: int(binary.LittleEndian.Uint16(data))}
	n := int(binary.LittleEndian.Uint16(data[2:]))
	if len(data) != 4+2*n {
		return MaskingHelper{}, fmt.Errorf("pairing: masking helper length %d, want %d", len(data), 4+2*n)
	}
	h.Selected = make([]int, n)
	for i := 0; i < n; i++ {
		h.Selected[i] = int(binary.LittleEndian.Uint16(data[4+2*i:]))
	}
	return h, nil
}

// --- Sequential pairing algorithm (LISA, paper §IV-C, Algorithm 1) ---

// SeqPairHelper is the public helper data of the sequential pairing
// algorithm: the list of selected pairs in key order.
type SeqPairHelper struct {
	Pairs []Pair
}

// EnrollSeqPair runs Algorithm 1 of the paper on an enrollment frequency
// snapshot: sort indices by descending frequency; walk the bottom half,
// pairing entry j with the current top-half cursor i whenever their
// discrepancy exceeds the threshold. The stored within-pair order follows
// the policy; src is consulted only for RandomizedStorage.
func EnrollSeqPair(f []float64, thresholdMHz float64, policy StoragePolicy, src *rng.Source) SeqPairHelper {
	n := len(f)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return f[idx[a]] > f[idx[b]] })

	var pairs []Pair
	i := 0
	for j := (n+1)/2 + 1 - 1; j < n; j++ { // j from ceil(N/2)+1 .. N, zero-based
		if i >= len(idx) || j >= len(idx) {
			break
		}
		if f[idx[i]]-f[idx[j]] > thresholdMHz {
			p := Pair{A: idx[i], B: idx[j]} // A is the faster oscillator
			if policy == RandomizedStorage && src.Bool() {
				p = p.Swapped()
			}
			pairs = append(pairs, p)
			i++
		}
	}
	return SeqPairHelper{Pairs: pairs}
}

// Validate applies the sanity checks the paper recommends (and notes are
// usually missing): indices in range and no oscillator reused across
// pairs. An attacker-manipulated helper that swaps the POSITIONS of two
// pairs, or the ORDER within one pair, still passes — which is the point
// of the attack.
func (h SeqPairHelper) Validate(n int) error {
	used := make([]bool, n)
	for _, p := range h.Pairs {
		for _, v := range [2]int{p.A, p.B} { // array literal: no per-pair allocation
			if v < 0 || v >= n {
				return fmt.Errorf("pairing: index %d outside array of %d", v, n)
			}
			if used[v] {
				return fmt.Errorf("pairing: oscillator %d reused across pairs", v)
			}
			used[v] = true
		}
	}
	return nil
}

// Marshal serializes the pair list for NVM.
func (h SeqPairHelper) Marshal() []byte {
	buf := make([]byte, 0, 2+4*len(h.Pairs))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(h.Pairs)))
	for _, p := range h.Pairs {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(p.A))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(p.B))
	}
	return buf
}

// UnmarshalSeqPair parses NVM bytes into a sequential-pairing helper.
func UnmarshalSeqPair(data []byte) (SeqPairHelper, error) {
	if len(data) < 2 {
		return SeqPairHelper{}, fmt.Errorf("pairing: seqpair helper truncated")
	}
	n := int(binary.LittleEndian.Uint16(data))
	if len(data) != 2+4*n {
		return SeqPairHelper{}, fmt.Errorf("pairing: seqpair helper length %d, want %d", len(data), 2+4*n)
	}
	h := SeqPairHelper{Pairs: make([]Pair, n)}
	for i := range h.Pairs {
		h.Pairs[i].A = int(binary.LittleEndian.Uint16(data[2+4*i:]))
		h.Pairs[i].B = int(binary.LittleEndian.Uint16(data[4+4*i:]))
	}
	return h, nil
}
