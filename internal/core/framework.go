// Package core implements the paper's primary contribution: key-recovery
// attacks on RO PUF helper-data constructions via manipulation of their
// public helper data (Delvaux & Verbauwhede, DATE 2014, Section VI).
//
// All four attacks share one statistical framework (the paper's Fig. 5):
// response bits are considered one by one (or in small groups); each of a
// set of hypotheses about them maps to a specific helper-data
// manipulation; the attacker injects a common offset of deterministic
// errors to push the ECC to the edge of its correction radius, queries
// the device's observable key-reconstruction failure under each
// manipulated helper, and picks the hypothesis whose failure rate stays
// at the nominal level.
//
//   - AttackSeqPair     — §VI-A, sequential pairing (LISA)
//   - AttackTempCo      — §VI-B, temperature-aware cooperative RO PUF
//   - AttackGroupBased  — §VI-C, group-based RO PUF
//   - AttackDistillerMasking / AttackDistillerChain — §VI-D, entropy
//     distiller with 1-out-of-k masking / overlapping neighbor chains
package core

import (
	"errors"
	"fmt"

	"repro/internal/stats"
)

// ErrNoArms reports a hypothesis test over an empty arm set — a malformed
// attack configuration rather than a statistical outcome. Attacks return
// it (wrapped) instead of crashing a long-running campaign.
var ErrNoArms = errors.New("core: no hypothesis arms to distinguish")

// Arm is one hypothesis under test: a closure that installs the
// hypothesis's helper manipulation (done once by the caller), then
// performs one oracle query and reports FAILURE (true = the key-dependent
// application misbehaved).
type Arm func() bool

// Strategy selects how the distinguisher spends queries.
type Strategy int

const (
	// FixedSample queries every arm the same number of times and takes
	// the arm with the fewest failures.
	FixedSample Strategy = iota
	// Sequential runs Wald's SPRT per arm against calibrated nominal
	// and elevated failure rates, returning the first arm accepted at
	// the nominal rate. Falls back to FixedSample when no arm is
	// accepted. Substantially cheaper at equal error probability — one
	// of the repository's ablations.
	Sequential
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case FixedSample:
		return "fixed-sample"
	case Sequential:
		return "sequential"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Distinguisher decides which of several helper-data hypotheses is
// correct by comparing observable failure rates.
type Distinguisher struct {
	Strategy Strategy
	// Queries is the per-arm budget of the fixed-sample strategy (and
	// of the sequential fallback).
	Queries int
	// P0 and P1 are the calibrated failure rates under the correct
	// hypothesis (nominal + injected offset) and under a wrong
	// hypothesis (one extra error beyond the offset). Sequential only.
	P0, P1 float64
	// Alpha and Beta are the designed SPRT error probabilities.
	Alpha, Beta float64
	// MaxQueries caps a single SPRT run; 0 means 64 * Queries.
	MaxQueries int
}

// DefaultDistinguisher returns a sequential distinguisher with
// conservative defaults suitable for well-separated rates.
func DefaultDistinguisher() Distinguisher {
	return Distinguisher{
		Strategy: Sequential,
		Queries:  12,
		P0:       0.05, P1: 0.95,
		Alpha: 0.01, Beta: 0.01,
	}
}

// normalized returns the distinguisher with defaults filled in and rates
// clamped away from the degenerate endpoints.
func (d Distinguisher) normalized() Distinguisher {
	if d.Queries <= 0 {
		d.Queries = 12
	}
	if d.Alpha <= 0 || d.Alpha >= 1 {
		d.Alpha = 0.01
	}
	if d.Beta <= 0 || d.Beta >= 1 {
		d.Beta = 0.01
	}
	const eps = 0.02
	if d.P0 < eps {
		d.P0 = eps
	}
	if d.P1 > 1-eps {
		d.P1 = 1 - eps
	}
	if d.P0 >= d.P1 {
		// Degenerate calibration; fall back to something sane.
		d.P0, d.P1 = 0.05, 0.95
	}
	if d.MaxQueries <= 0 {
		d.MaxQueries = 64 * d.Queries
	}
	return d
}

// Best returns the index of the arm with the lowest failure rate and the
// total number of queries spent. An empty arm set returns (-1, 0);
// callers treat that as ErrNoArms.
func (d Distinguisher) Best(arms []Arm) (best, queries int) {
	if len(arms) == 0 {
		return -1, 0
	}
	d = d.normalized()
	if len(arms) == 1 {
		return 0, 0
	}
	if d.Strategy == Sequential {
		total := 0
		for i, arm := range arms {
			s := stats.NewSPRT(d.P0, d.P1, d.Alpha, d.Beta)
			decision := stats.SPRTContinue
			for decision == stats.SPRTContinue && s.N() < d.MaxQueries {
				decision = s.Observe(arm())
			}
			total += s.N()
			if decision == stats.SPRTAcceptH0 {
				return i, total
			}
		}
		// No arm accepted at the nominal rate: fall back.
		best, extra := d.fixedBest(arms)
		return best, total + extra
	}
	return d.fixedBest(arms)
}

func (d Distinguisher) fixedBest(arms []Arm) (int, int) {
	best, bestFails := 0, int(^uint(0)>>1)
	total := 0
	for i, arm := range arms {
		fails := 0
		for q := 0; q < d.Queries; q++ {
			if arm() {
				fails++
			}
		}
		total += d.Queries
		if fails < bestFails {
			best, bestFails = i, fails
		}
	}
	return best, total
}

// EstimateFailureRate queries an arm n times and returns the empirical
// failure rate.
func EstimateFailureRate(arm Arm, n int) float64 {
	if n <= 0 {
		return 0
	}
	fails := 0
	for i := 0; i < n; i++ {
		if arm() {
			fails++
		}
	}
	return float64(fails) / float64(n)
}

// Calibration holds the failure rates measured for reference injection
// levels; attacks use it to parameterize the sequential distinguisher.
type Calibration struct {
	// PNominal is the failure rate with the common offset only (the
	// correct-hypothesis rate, Fig. 5's H-correct PDF tail).
	PNominal float64
	// PElevated is the failure rate with one extra injected error (a
	// wrong hypothesis's rate).
	PElevated float64
	// Queries spent measuring.
	Queries int
}

// Calibrate measures the two reference rates. nominal and elevated are
// arms with the attack's common offset and offset+1 deterministic errors
// respectively, built with value-independent manipulations.
func Calibrate(nominal, elevated Arm, queriesEach int) Calibration {
	return Calibration{
		PNominal:  EstimateFailureRate(nominal, queriesEach),
		PElevated: EstimateFailureRate(elevated, queriesEach),
		Queries:   2 * queriesEach,
	}
}

// Apply transfers calibrated rates onto a distinguisher.
func (c Calibration) Apply(d Distinguisher) Distinguisher {
	d.P0 = c.PNominal
	d.P1 = c.PElevated
	return d.normalized()
}

// Separation returns the rate gap; attacks abort when it collapses.
func (c Calibration) Separation() float64 { return c.PElevated - c.PNominal }
