// Package core used to own both the statistical attack framework and
// the four key-recovery attacks (Delvaux & Verbauwhede, DATE 2014,
// Section VI). Both now live behind the oracle-agnostic surface of
// internal/attack:
//
//   - the Fig. 5 distinguisher framework (Arm, Strategy, Distinguisher,
//     Calibration) moved there verbatim and is re-exported here as type
//     aliases, so existing callers keep compiling;
//   - AttackSeqPair, AttackTempCo, AttackGroupBased and
//     AttackDistillerMasking/Chain remain as thin deprecated shims that
//     adapt the concrete *device.X argument into an attack.Target and
//     dispatch through the attack registry.
//
// New code should use internal/attack directly: it adds context
// cancellation, query budgets, progress callbacks, per-phase cost
// breakdowns, and the batched concurrent oracle backend.
package core

import (
	"repro/internal/attack"
)

// ErrNoArms reports a hypothesis test over an empty arm set.
//
// Deprecated: use attack.ErrNoArms (same value).
var ErrNoArms = attack.ErrNoArms

// Arm is one hypothesis under test.
//
// Deprecated: use attack.Arm.
type Arm = attack.Arm

// Strategy selects how the distinguisher spends queries.
//
// Deprecated: use attack.Strategy.
type Strategy = attack.Strategy

// Distinguisher strategies.
//
// Deprecated: use the attack package's constants.
const (
	FixedSample Strategy = attack.FixedSample
	Sequential  Strategy = attack.Sequential
)

// Distinguisher decides which of several helper-data hypotheses is
// correct by comparing observable failure rates.
//
// Deprecated: use attack.Distinguisher.
type Distinguisher = attack.Distinguisher

// DefaultDistinguisher returns a sequential distinguisher with
// conservative defaults.
//
// Deprecated: use attack.DefaultDistinguisher.
func DefaultDistinguisher() Distinguisher { return attack.DefaultDistinguisher() }

// EstimateFailureRate queries an arm n times and returns the empirical
// failure rate.
//
// Deprecated: use attack.EstimateFailureRate.
func EstimateFailureRate(arm Arm, n int) float64 { return attack.EstimateFailureRate(arm, n) }

// Calibration holds the failure rates measured for reference injection
// levels.
//
// Deprecated: use attack.Calibration.
type Calibration = attack.Calibration

// Calibrate measures the two reference rates.
//
// Deprecated: use attack.Calibrate.
func Calibrate(nominal, elevated Arm, queriesEach int) Calibration {
	return attack.Calibrate(nominal, elevated, queriesEach)
}
