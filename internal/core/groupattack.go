package core

import (
	"context"

	"repro/internal/attack"
	"repro/internal/bitvec"
	"repro/internal/device"
	"repro/internal/rng"
)

// GroupBasedConfig tunes the §VI-C attack.
//
// Deprecated: use attack.Options with the "groupbased" registry entry.
type GroupBasedConfig struct {
	Dist Distinguisher
	// PatternAmpMHz is the steepness of the injected pattern; it must
	// dwarf the random frequency variation (0 = 1000 MHz).
	PatternAmpMHz float64
	// InjectErrors is the common offset; 0 means the code's radius t.
	InjectErrors int
	// Src drives the attack's own randomness (codeword draws).
	Src *rng.Source
}

// GroupBasedResult is the attack outcome.
type GroupBasedResult struct {
	// Orders[g] is the recovered descending-residual order of original
	// group g in label space (nil when the pairwise relations came out
	// non-transitive, i.e. at least one decision was wrong).
	Orders [][]int
	// Key is the recovered key assembled from the orders; valid only
	// when every group resolved.
	Key bitvec.Vector
	// Resolved counts groups whose order was recovered.
	Resolved int
	// Queries is the total oracle cost.
	Queries int
}

// AttackGroupBased runs the paper's §VI-C full key recovery against a
// deployed group-based RO PUF.
//
// Deprecated: thin shim over the "groupbased" attack in internal/attack.
func AttackGroupBased(d *device.GroupBasedDevice, cfg GroupBasedConfig) (GroupBasedResult, error) {
	rep, err := attack.Run(context.Background(), "groupbased", attack.NewGroupBasedTarget(d), attack.Options{
		Dist:          cfg.Dist,
		PatternAmpMHz: cfg.PatternAmpMHz,
		InjectErrors:  cfg.InjectErrors,
		Src:           cfg.Src,
	})
	if err != nil {
		return GroupBasedResult{}, err
	}
	det := rep.Details.(attack.GroupBasedDetails)
	return GroupBasedResult{
		Orders:   det.Orders,
		Key:      rep.Key,
		Resolved: det.Resolved,
		Queries:  rep.Queries,
	}, nil
}
