package core

import (
	"context"

	"repro/internal/attack"
	"repro/internal/bitvec"
	"repro/internal/device"
)

// SeqPairConfig tunes the §VI-A attack.
//
// Deprecated: use attack.Options with the "seqpair" registry entry.
type SeqPairConfig struct {
	Dist Distinguisher
	// CalibrationQueries sizes the up-front rate calibration (0 = 24).
	CalibrationQueries int
	// InjectErrors is the common offset; 0 means the code's full radius
	// t, the most aggressive choice.
	InjectErrors int
}

// SeqPairResult is the attack outcome.
type SeqPairResult struct {
	// Relations[j] reports r_j != r_0 for pair j (index 0 is the
	// reference and always false).
	Relations []bool
	// Key is the recovered key; when Ambiguous is set its complement is
	// equally consistent with every observable.
	Key bitvec.Vector
	// Ambiguous marks the unresolved complement: it occurs exactly when
	// the all-ones pattern over the response positions is a codeword of
	// the deployed ECC (see DESIGN.md §7).
	Ambiguous bool
	// Queries is the total oracle cost, calibration included.
	Queries int
	// Calibration echoes the measured reference rates.
	Calibration Calibration
}

// AttackSeqPair runs the paper's §VI-A key recovery against a deployed
// sequential-pairing device.
//
// Deprecated: thin shim over the "seqpair" attack in internal/attack,
// which adds context, budgets, progress and batched oracle backends.
func AttackSeqPair(d *device.SeqPairDevice, cfg SeqPairConfig) (SeqPairResult, error) {
	rep, err := attack.Run(context.Background(), "seqpair", attack.NewSeqPairTarget(d), attack.Options{
		Dist:               cfg.Dist,
		CalibrationQueries: cfg.CalibrationQueries,
		InjectErrors:       cfg.InjectErrors,
	})
	if err != nil {
		return SeqPairResult{}, err
	}
	det := rep.Details.(attack.SeqPairDetails)
	return SeqPairResult{
		Relations:   det.Relations,
		Key:         rep.Key,
		Ambiguous:   rep.Ambiguous,
		Queries:     rep.Queries,
		Calibration: det.Calibration,
	}, nil
}
