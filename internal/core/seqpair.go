package core

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/device"
	"repro/internal/ecc"
	"repro/internal/pairing"
)

// SeqPairConfig tunes the §VI-A attack.
type SeqPairConfig struct {
	Dist Distinguisher
	// CalibrationQueries sizes the up-front rate calibration (0 = 24).
	CalibrationQueries int
	// InjectErrors is the common offset; 0 means the code's full radius
	// t, the most aggressive choice.
	InjectErrors int
}

// SeqPairResult is the attack outcome.
type SeqPairResult struct {
	// Relations[j] reports r_j != r_0 for pair j (index 0 is the
	// reference and always false).
	Relations []bool
	// Key is the recovered key; when Ambiguous is set its complement is
	// equally consistent with every observable.
	Key bitvec.Vector
	// Ambiguous marks the unresolved complement: it occurs exactly when
	// the all-ones pattern over the response positions is a codeword of
	// the deployed ECC (see DESIGN.md §7).
	Ambiguous bool
	// Queries is the total oracle cost, calibration included.
	Queries int
	// Calibration echoes the measured reference rates.
	Calibration Calibration
}

// AttackSeqPair runs the paper's §VI-A key recovery against a deployed
// sequential-pairing device.
//
// Hypotheses H0: r_0 = r_j, H1: r_0 != r_j are distinguished by swapping
// the POSITIONS of pairs 0 and j in the helper list, which injects two
// bit errors exactly when the bits differ. The common offset uses
// within-pair order swaps — each inverts one response bit
// deterministically and value-independently ("one can select these pairs
// which will introduce a pair of erroneous bits for sure" generalizes to
// this cheaper injector once the storage format compares stored order).
// The final complement decision compares the consistency of the two
// candidate keys with crafted sets of ECC helper data.
func AttackSeqPair(d *device.SeqPairDevice, cfg SeqPairConfig) (SeqPairResult, error) {
	original := d.ReadHelper()
	defer func() { _ = d.WriteHelper(original) }() // leave the device as found

	m := len(original.Pairs.Pairs)
	code := d.Code()
	t := code.T()
	if cfg.InjectErrors <= 0 || cfg.InjectErrors > t {
		cfg.InjectErrors = t
	}
	if cfg.CalibrationQueries <= 0 {
		cfg.CalibrationQueries = 24
	}
	blockLen := code.N()
	// Every test focuses on ECC block 0: the reference pair 0 lives
	// there, and injections must share its block to add up.
	inBlock0 := min(blockLen, m)
	if inBlock0 < cfg.InjectErrors+2 {
		return SeqPairResult{}, fmt.Errorf("core: block 0 holds %d pairs, need %d for injection",
			inBlock0, cfg.InjectErrors+2)
	}

	startQueries := d.Queries()

	// armWith writes a helper derived from the original by swapping the
	// within-pair order at positions `invert` and swapping the list
	// positions of pairs a and b (a == b means no position swap).
	install := func(invert []int, a, b int) error {
		h := device.SeqPairHelperNVM{
			Pairs:  pairing.SeqPairHelper{Pairs: append([]pairing.Pair(nil), original.Pairs.Pairs...)},
			Offset: original.Offset,
		}
		for _, idx := range invert {
			h.Pairs.Pairs[idx] = h.Pairs.Pairs[idx].Swapped()
		}
		if a != b {
			h.Pairs.Pairs[a], h.Pairs.Pairs[b] = h.Pairs.Pairs[b], h.Pairs.Pairs[a]
		}
		return d.WriteHelper(h)
	}

	// injectionSet returns cfg.InjectErrors positions inside block 0
	// avoiding the two pairs under test.
	injectionSet := func(avoid ...int) []int {
		skip := make(map[int]bool, len(avoid))
		for _, a := range avoid {
			skip[a] = true
		}
		var out []int
		for p := 0; p < inBlock0 && len(out) < cfg.InjectErrors; p++ {
			if !skip[p] {
				out = append(out, p)
			}
		}
		return out
	}

	// Calibration: rates at offset and offset+1 errors, all via
	// value-independent within-pair swaps.
	calNom := injectionSet()
	calElev := injectionSet()
	for p := 0; p < inBlock0; p++ {
		if !contains(calElev, p) {
			calElev = append(calElev, p)
			break
		}
	}
	if err := install(calNom, 0, 0); err != nil {
		return SeqPairResult{}, err
	}
	nominalArm := Arm(func() bool { return !d.App() })
	pNom := EstimateFailureRate(nominalArm, cfg.CalibrationQueries)
	if err := install(calElev, 0, 0); err != nil {
		return SeqPairResult{}, err
	}
	pElev := EstimateFailureRate(nominalArm, cfg.CalibrationQueries)
	cal := Calibration{PNominal: pNom, PElevated: pElev, Queries: 2 * cfg.CalibrationQueries}
	dist := cal.Apply(cfg.Dist)

	// Relation recovery: for each j, arm A = injections only (H0-like
	// reference), arm B = injections + position swap of pairs 0 and j.
	relations := make([]bool, m)
	for j := 1; j < m; j++ {
		inj := injectionSet(0, j)
		armRef := func() bool {
			if err := install(inj, 0, 0); err != nil {
				return true
			}
			return !d.App()
		}
		armSwap := func() bool {
			if err := install(inj, 0, j); err != nil {
				return true
			}
			return !d.App()
		}
		// Arms ordered so index 0 = "bits equal" (swap is a no-op on
		// the key, failure stays nominal) — for the swap arm. The
		// reference arm identifies the nominal level; Best picks the
		// arm behaving nominally. If the swap arm is nominal, bits are
		// equal.
		best, _ := dist.Best([]Arm{armSwap, armRef})
		if best < 0 {
			return SeqPairResult{}, fmt.Errorf("core: pair %d: %w", j, ErrNoArms)
		}
		relations[j] = best != 0 // swap arm elevated => bits differ
	}

	// Assemble the two key candidates.
	cand0 := bitvec.New(m)
	for j := 1; j < m; j++ {
		cand0.Set(j, relations[j]) // assumes r_0 = 0
	}
	cand1 := cand0.Not()

	// Complement decision. Offline first: check code-offset consistency
	// of both candidates against the original ECC helper.
	key, ambiguous := resolveComplement(d, original, cand0, cand1)

	return SeqPairResult{
		Relations:   relations,
		Key:         key,
		Ambiguous:   ambiguous,
		Queries:     d.Queries() - startQueries,
		Calibration: cal,
	}, nil
}

// resolveComplement implements the paper's final decision: "the
// performance of two corresponding sets of ECC helper data can be
// compared". The offline consistency check against the original offset
// decides whenever the deployed code excludes the relevant all-ones
// pattern; otherwise the two candidates are information-theoretically
// indistinguishable through this oracle and the result stays ambiguous.
func resolveComplement(d *device.SeqPairDevice, original device.SeqPairHelperNVM, cand0, cand1 bitvec.Vector) (bitvec.Vector, bool) {
	code := d.Code()
	blocks := original.Offset.Len() / code.N()
	block := ecc.NewBlock(code, blocks)
	pad := func(v bitvec.Vector) bitvec.Vector {
		return v.Concat(bitvec.New(original.Offset.Len() - v.Len()))
	}
	off := ecc.Offset{W: original.Offset}
	ok0 := ecc.ConsistentWith(block, off, pad(cand0))
	ok1 := ecc.ConsistentWith(block, off, pad(cand1))
	switch {
	case ok0 && !ok1:
		return cand0, false
	case ok1 && !ok0:
		return cand1, false
	default:
		// Both consistent (all-ones pattern is a codeword) or neither
		// (some relation decided wrongly): query-based comparison of
		// crafted helper sets cannot separate the former case either;
		// return the r_0=0 candidate and flag it.
		return cand0, true
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
