package core

import (
	"context"
	"testing"

	"repro/internal/attack"
	"repro/internal/device"
	"repro/internal/rng"
)

// Oracle parity: each legacy entry point and its attack.Attack registry
// port must recover identical keys with identical query counts when run
// against identically enrolled devices with the serial (workers = 1)
// in-process oracle. The legacy functions are shims over the registry,
// so these goldens pin the whole chain — config mapping, image codecs,
// adapter round trips, registry dispatch — to the bit.

func defaultOpts() attack.Options {
	return attack.Options{Dist: attack.DefaultDistinguisher()}
}

func TestParitySeqPair(t *testing.T) {
	legacyDev := seqDevice(t, 123, true)
	portDev := seqDevice(t, 123, true)

	legacy, err := AttackSeqPair(legacyDev, SeqPairConfig{Dist: DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := attack.Run(context.Background(), "seqpair", attack.NewSeqPairTarget(portDev), defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !legacy.Key.Equal(rep.Key) {
		t.Fatalf("key mismatch:\nlegacy %s\nport   %s", legacy.Key, rep.Key)
	}
	if legacy.Ambiguous != rep.Ambiguous {
		t.Fatalf("ambiguous mismatch: %v vs %v", legacy.Ambiguous, rep.Ambiguous)
	}
	if legacy.Queries != rep.Queries {
		t.Fatalf("query count mismatch: legacy %d, port %d", legacy.Queries, rep.Queries)
	}
	det := rep.Details.(attack.SeqPairDetails)
	for j := range legacy.Relations {
		if legacy.Relations[j] != det.Relations[j] {
			t.Fatalf("relation %d mismatch", j)
		}
	}
}

func TestParityTempCo(t *testing.T) {
	enroll := func() *device.TempCoDevice {
		d, err := device.EnrollTempCo(tempcoParams(), rng.New(55), rng.New(56))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	legacy, err := AttackTempCo(enroll(), TempCoConfig{Dist: DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := attack.Run(context.Background(), "tempco", attack.NewTempCoTarget(enroll()), defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	det := rep.Details.(attack.TempCoDetails)
	if legacy.Queries != rep.Queries {
		t.Fatalf("query count mismatch: legacy %d, port %d", legacy.Queries, rep.Queries)
	}
	if legacy.RefIdx != det.RefIdx {
		t.Fatalf("reference pair mismatch: %d vs %d", legacy.RefIdx, det.RefIdx)
	}
	if len(legacy.XorWithRef) != len(det.XorWithRef) {
		t.Fatalf("relation count mismatch: %d vs %d", len(legacy.XorWithRef), len(det.XorWithRef))
	}
	for k, v := range legacy.XorWithRef {
		if got, ok := det.XorWithRef[k]; !ok || got != v {
			t.Fatalf("relation %d mismatch: legacy %v, port %v (present %v)", k, v, got, ok)
		}
	}
	for k, v := range legacy.MaskBits {
		if got, ok := det.MaskBits[k]; !ok || got != v {
			t.Fatalf("mask bit %d mismatch", k)
		}
	}
}

func TestParityGroupBased(t *testing.T) {
	legacy, err := AttackGroupBased(groupDevice(t, 321), GroupBasedConfig{Dist: DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := attack.Run(context.Background(), "groupbased", attack.NewGroupBasedTarget(groupDevice(t, 321)), defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !legacy.Key.Equal(rep.Key) {
		t.Fatalf("key mismatch:\nlegacy %s\nport   %s", legacy.Key, rep.Key)
	}
	if legacy.Queries != rep.Queries {
		t.Fatalf("query count mismatch: legacy %d, port %d", legacy.Queries, rep.Queries)
	}
	if legacy.Resolved != rep.Details.(attack.GroupBasedDetails).Resolved {
		t.Fatal("resolved count mismatch")
	}
}

func TestParityMasking(t *testing.T) {
	legacy, err := AttackDistillerMasking(distillerDevice(t, 77, device.MaskedChain), DistillerConfig{Dist: DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := attack.Run(context.Background(), "masking",
		attack.NewDistillerTarget(distillerDevice(t, 77, device.MaskedChain)), defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !legacy.Key.Equal(rep.Key) {
		t.Fatalf("key mismatch:\nlegacy %s\nport   %s", legacy.Key, rep.Key)
	}
	if legacy.Queries != rep.Queries {
		t.Fatalf("query count mismatch: legacy %d, port %d", legacy.Queries, rep.Queries)
	}
}

func TestParityChain(t *testing.T) {
	legacy, err := AttackDistillerChain(distillerDevice(t, 88, device.OverlappingChain), DistillerConfig{Dist: DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := attack.Run(context.Background(), "chain",
		attack.NewDistillerTarget(distillerDevice(t, 88, device.OverlappingChain)), defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !legacy.Key.Equal(rep.Key) {
		t.Fatalf("key mismatch:\nlegacy %s\nport   %s", legacy.Key, rep.Key)
	}
	if legacy.Queries != rep.Queries {
		t.Fatalf("query count mismatch: legacy %d, port %d", legacy.Queries, rep.Queries)
	}
	if legacy.MaxHypotheses != rep.Details.(attack.ChainDetails).MaxHypotheses {
		t.Fatal("hypothesis count mismatch")
	}
}
