package core

import (
	"fmt"
	"math"

	"repro/internal/bitvec"
	"repro/internal/device"
	"repro/internal/distiller"
	"repro/internal/ecc"
	"repro/internal/pairing"
	"repro/internal/rng"
)

// DistillerConfig tunes the §VI-D attacks.
type DistillerConfig struct {
	Dist Distinguisher
	// PatternAmpMHz is the main pattern steepness (0 = 500 MHz).
	PatternAmpMHz float64
	// TiltMHz is the secondary gradient that pins the pairs orthogonal
	// to the target direction (0 = 80 MHz).
	TiltMHz float64
	// InjectErrors is the common offset; 0 means the code's radius t.
	InjectErrors int
	// Src drives the attack's codeword draws.
	Src *rng.Source
}

func (cfg DistillerConfig) normalized(t int) DistillerConfig {
	if cfg.PatternAmpMHz <= 0 {
		cfg.PatternAmpMHz = 500
	}
	if cfg.TiltMHz <= 0 {
		cfg.TiltMHz = 80
	}
	if cfg.InjectErrors <= 0 || cfg.InjectErrors > t {
		cfg.InjectErrors = t
	}
	if cfg.Src == nil {
		cfg.Src = rng.New(0xd15711)
	}
	return cfg
}

// MaskingAttackResult is the Fig. 6b outcome.
type MaskingAttackResult struct {
	// BaseBits[i] is the recovered residual-sign bit of base pair i
	// (true = pair.A's distilled residual exceeds pair.B's... i.e. the
	// response bit the pair would produce).
	BaseBits []bool
	// Key is the original key: the bits of the originally selected
	// pairs, read off BaseBits via the public masking helper.
	Key bitvec.Vector
	// Queries is the total oracle cost.
	Queries int
}

// AttackDistillerMasking runs the paper's Fig. 6b attack against an
// entropy distiller composed with 1-out-of-k masking over a disjoint
// neighbor chain. Every base pair is isolated in turn: a quadratic
// valley centered between the pair's two oscillators ties their pattern
// values while a small orthogonal tilt pins every other selected pair;
// the attacker rewrites the masking helper to select pattern-determined
// pairs elsewhere, recomputes the ECC offset for both hypotheses about
// the target bit, and compares failure rates. Recovering all base-pair
// bits reveals the original key through the public masking selections.
func AttackDistillerMasking(d *device.DistillerPairDevice, cfg DistillerConfig) (MaskingAttackResult, error) {
	p := d.Params()
	if p.Mode != device.MaskedChain {
		return MaskingAttackResult{}, fmt.Errorf("core: device mode %v, want masked chain", p.Mode)
	}
	original := d.ReadHelper()
	defer func() { _ = d.WriteHelper(original) }()
	cfg = cfg.normalized(p.Code.T())
	startQueries := d.Queries()

	base := d.BasePairs()
	groups := len(original.Masking.Selected)
	usable := groups * original.Masking.K
	bits := make([]bool, len(base))
	for target := 0; target < usable; target++ {
		bit, err := decideMaskedPairBit(d, cfg, original, base, original.Masking.K, target)
		if err != nil {
			return MaskingAttackResult{}, fmt.Errorf("core: base pair %d: %w", target, err)
		}
		bits[target] = bit
	}

	// The original key: bits of the originally selected pairs, polished
	// offline against the original ECC offset (which binds the enrolled
	// key) to repair noise-marginal decisions.
	key := bitvec.New(groups)
	for g, sel := range original.Masking.Selected {
		key.Set(g, bits[g*original.Masking.K+sel])
	}
	key = polishWithOriginalOffset(key, original.Offset, p.Code)
	return MaskingAttackResult{
		BaseBits: bits,
		Key:      key,
		Queries:  d.Queries() - startQueries,
	}, nil
}

// decideMaskedPairBit isolates one base pair and recovers its residual
// sign bit. The pattern superimposes onto the ORIGINAL enrollment
// polynomial (not whatever a previous arm left in NVM).
func decideMaskedPairBit(d *device.DistillerPairDevice, cfg DistillerConfig, original device.DistillerPairHelperNVM, base []pairing.Pair, k, target int) (bool, error) {
	p := d.Params()
	arr := d.Array()
	tp := base[target]
	pattern := valleyForPair(arr, tp, cfg)

	pval := func(ro int) float64 {
		x, y := arr.Pos(ro)
		return pattern.Eval(float64(x), float64(y))
	}

	// Rewrite the masking selections: the target's group selects the
	// target; every other group selects its pair with the largest
	// pattern separation (a fully determined bit).
	groups := len(base) / k
	targetGroup := target / k
	selected := make([]int, groups)
	predicted := make([]bool, groups)
	for g := 0; g < groups; g++ {
		if g == targetGroup {
			selected[g] = target % k
			continue
		}
		bestIdx, bestSep := -1, 0.0
		for i := 0; i < k; i++ {
			pr := base[g*k+i]
			if sep := math.Abs(pval(pr.A) - pval(pr.B)); sep > bestSep {
				bestIdx, bestSep = i, sep
			}
		}
		if bestIdx < 0 || bestSep < 1 {
			return false, fmt.Errorf("core: group %d has no pattern-determined pair", g)
		}
		selected[g] = bestIdx
		pr := base[g*k+bestIdx]
		// Response bit = [residual'(A) > residual'(B)] and residual' =
		// residual - P, so the pair with the smaller pattern value wins.
		predicted[g] = pval(pr.A) < pval(pr.B)
	}

	poly := clonePoly(original.Poly).Add(pattern)
	mask := pairing.MaskingHelper{K: k, Selected: selected}

	makeArm := func(hypBit bool) (Arm, error) {
		stream := bitvec.New(groups)
		for g := 0; g < groups; g++ {
			if g == targetGroup {
				stream.Set(g, hypBit)
			} else {
				stream.Set(g, predicted[g])
			}
		}
		offset, predKey, err := offsetWithInjection(stream, targetGroup, p.Code, cfg, nil)
		if err != nil {
			return nil, err
		}
		helper := device.DistillerPairHelperNVM{Poly: poly, Masking: mask, Offset: offset}
		return func() bool {
			if err := d.WriteHelper(helper); err != nil {
				return true
			}
			d.BindKey(predKey)
			return !d.App()
		}, nil
	}
	arm0, err := makeArm(false)
	if err != nil {
		return false, err
	}
	arm1, err := makeArm(true)
	if err != nil {
		return false, err
	}
	best, _ := cfg.Dist.Best([]Arm{arm0, arm1})
	if best < 0 {
		return false, ErrNoArms
	}
	return best == 1, nil
}

// ChainAttackResult is the Fig. 6c outcome.
type ChainAttackResult struct {
	// Key is the fully recovered response of the overlapping chain.
	Key bitvec.Vector
	// MaxHypotheses is the largest simultaneous hypothesis set used
	// (2^b for b bits undetermined by one pattern — the paper
	// illustrates b = 4).
	MaxHypotheses int
	// Queries is the total oracle cost.
	Queries int
}

// AttackDistillerChain runs the paper's Fig. 6c attack against an
// entropy distiller composed with an overlapping neighbor chain. A
// quadratic valley centered between two adjacent columns leaves exactly
// the chain pairs straddling that boundary undetermined (one per row —
// four on the paper's 4x10 array), so the attacker enumerates all 2^b
// hypotheses about those bits at once; sliding the valley across every
// column and row boundary recovers the whole key.
func AttackDistillerChain(d *device.DistillerPairDevice, cfg DistillerConfig) (ChainAttackResult, error) {
	p := d.Params()
	if p.Mode != device.OverlappingChain {
		return ChainAttackResult{}, fmt.Errorf("core: device mode %v, want overlapping chain", p.Mode)
	}
	original := d.ReadHelper()
	defer func() { _ = d.WriteHelper(original) }()
	cfg = cfg.normalized(p.Code.T())
	startQueries := d.Queries()

	arr := d.Array()
	base := d.BasePairs()
	known := make(map[int]bool, len(base)) // chain index -> bit
	maxHyp := 0

	// Column boundaries, then row boundaries.
	type boundary struct {
		vertical bool // vertical line between columns (valley in x)
		at       float64
	}
	var bounds []boundary
	for c := 0; c+1 < arr.Cols(); c++ {
		bounds = append(bounds, boundary{vertical: true, at: float64(c) + 0.5})
	}
	for r := 0; r+1 < arr.Rows(); r++ {
		bounds = append(bounds, boundary{vertical: false, at: float64(r) + 0.5})
	}

	for _, bd := range bounds {
		var pattern distiller.Poly2D
		if bd.vertical {
			pattern = distiller.QuadraticValleyX(bd.at, cfg.PatternAmpMHz).Add(distiller.Plane(0, 0, cfg.TiltMHz))
		} else {
			pattern = distiller.QuadraticValleyY(bd.at, cfg.PatternAmpMHz).Add(distiller.Plane(0, cfg.TiltMHz, 0))
		}
		pval := func(ro int) float64 {
			x, y := arr.Pos(ro)
			return pattern.Eval(float64(x), float64(y))
		}
		// Classify chain pairs: determined (predicted) vs undetermined.
		var unknownIdx []int
		predicted := make([]bool, len(base))
		determined := make([]bool, len(base))
		for i, pr := range base {
			sep := pval(pr.A) - pval(pr.B)
			if math.Abs(sep) > 1 {
				determined[i] = true
				predicted[i] = sep < 0 // smaller pattern value wins
			} else if _, ok := known[i]; !ok {
				unknownIdx = append(unknownIdx, i)
			}
		}
		if len(unknownIdx) == 0 {
			continue
		}
		if len(unknownIdx) > 12 {
			return ChainAttackResult{}, fmt.Errorf("core: %d undetermined bits under one pattern", len(unknownIdx))
		}
		if h := 1 << len(unknownIdx); h > maxHyp {
			maxHyp = h
		}

		poly := clonePoly(original.Poly).Add(pattern)
		arms := make([]Arm, 0, 1<<len(unknownIdx))
		for hyp := 0; hyp < 1<<len(unknownIdx); hyp++ {
			stream := bitvec.New(len(base))
			for i := range base {
				switch {
				case determined[i]:
					stream.Set(i, predicted[i])
				case contains(unknownIdx, i):
					pos := indexOf(unknownIdx, i)
					stream.Set(i, hyp>>uint(pos)&1 == 1)
				default:
					// Already recovered on an earlier boundary but tied
					// under this pattern: use the known bit.
					stream.Set(i, known[i])
				}
			}
			offset, predKey, err := offsetWithInjection(stream, unknownIdx[0], p.Code, cfg, unknownIdx)
			if err != nil {
				return ChainAttackResult{}, err
			}
			helper := device.DistillerPairHelperNVM{Poly: poly, Offset: offset}
			arms = append(arms, func() bool {
				if err := d.WriteHelper(helper); err != nil {
					return true
				}
				d.BindKey(predKey)
				return !d.App()
			})
		}
		best, _ := cfg.Dist.Best(arms)
		if best < 0 {
			return ChainAttackResult{}, ErrNoArms
		}
		for pos, idx := range unknownIdx {
			known[idx] = best>>uint(pos)&1 == 1
		}
	}

	key := bitvec.New(len(base))
	for i := range base {
		if b, ok := known[i]; ok {
			key.Set(i, b)
		} else {
			return ChainAttackResult{}, fmt.Errorf("core: chain bit %d never isolated", i)
		}
	}
	key = polishWithOriginalOffset(key, original.Offset, p.Code)
	return ChainAttackResult{
		Key:           key,
		MaxHypotheses: maxHyp,
		Queries:       d.Queries() - startQueries,
	}, nil
}

// polishWithOriginalOffset exploits the device's ORIGINAL code-offset
// helper as a free offline oracle: it binds the enrolled response, so
// decoding the recovered key against it corrects any residual
// majority-vs-enrollment discrepancies on noise-marginal bits (up to t
// per block) without a single extra device query.
func polishWithOriginalOffset(key, offset bitvec.Vector, code ecc.Code) bitvec.Vector {
	if offset.Len() == 0 || offset.Len()%code.N() != 0 || key.Len() > offset.Len() {
		return key
	}
	padded := key.Concat(bitvec.New(offset.Len() - key.Len()))
	block := ecc.NewBlock(code, offset.Len()/code.N())
	if corrected, _, ok := ecc.Reproduce(block, ecc.Offset{W: offset}, padded); ok {
		return corrected.Slice(0, key.Len())
	}
	return key
}

// offsetWithInjection builds the code-offset helper binding the predicted
// stream with the common error offset folded into every ECC block that
// contains a hypothesis bit (or block 0 when hypBits is nil, meaning the
// single hypothesis bit sits at position targetPos). It also returns the
// key the attacker predicts the device will regenerate.
func offsetWithInjection(stream bitvec.Vector, targetPos int, code ecc.Code, cfg DistillerConfig, hypBits []int) (bitvec.Vector, bitvec.Vector, error) {
	n := code.N()
	blocks := (stream.Len() + n - 1) / n
	if blocks == 0 {
		blocks = 1
	}
	padded := stream.Concat(bitvec.New(blocks*n - stream.Len()))

	// Blocks needing the offset.
	need := map[int]bool{targetPos / n: true}
	for _, hb := range hypBits {
		need[hb/n] = true
	}
	avoid := map[int]bool{targetPos: true}
	for _, hb := range hypBits {
		avoid[hb] = true
	}
	injected := padded.Clone()
	for blk := range need {
		count := 0
		for pos := blk * n; pos < (blk+1)*n && pos < stream.Len() && count < cfg.InjectErrors; pos++ {
			if avoid[pos] {
				continue
			}
			injected.Flip(pos)
			count++
		}
		if count < cfg.InjectErrors {
			return bitvec.Vector{}, bitvec.Vector{}, fmt.Errorf("core: block %d lacks injectable bits", blk)
		}
	}
	blockCode := ecc.NewBlock(code, blocks)
	msg := bitvec.New(blockCode.K())
	for i := 0; i < msg.Len(); i++ {
		msg.Set(i, cfg.Src.Bool())
	}
	offset := ecc.OffsetFor(blockCode, injected, msg)
	// The device's recovered response is the stream the offset binds —
	// the INJECTED one — so that is the key the attacker predicts.
	return offset.W, injected.Slice(0, stream.Len()), nil
}

// valleyForPair builds the Fig. 6b pattern for one target pair: a
// quadratic valley centered between the pair's oscillators along their
// separation axis plus an orthogonal tilt.
func valleyForPair(arr interface {
	Pos(int) (int, int)
}, tp pairing.Pair, cfg DistillerConfig) distiller.Poly2D {
	xa, ya := arr.Pos(tp.A)
	xb, yb := arr.Pos(tp.B)
	if ya == yb {
		// Horizontal pair: valley in x centered between them, tilt in y.
		return distiller.QuadraticValleyX((float64(xa)+float64(xb))/2, cfg.PatternAmpMHz).
			Add(distiller.Plane(0, 0, cfg.TiltMHz))
	}
	if xa == xb {
		return distiller.QuadraticValleyY((float64(ya)+float64(yb))/2, cfg.PatternAmpMHz).
			Add(distiller.Plane(0, cfg.TiltMHz, 0))
	}
	// Diagonal pairs do not occur on neighbor chains; fall back to the
	// perpendicular plane (levels tie along the perpendicular axis).
	return distiller.PerpendicularPlane(xa, ya, xb, yb, cfg.PatternAmpMHz)
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func clonePoly(p distiller.Poly2D) distiller.Poly2D {
	return distiller.Poly2D{P: p.P, Beta: append([]float64(nil), p.Beta...)}
}
