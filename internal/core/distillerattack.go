package core

import (
	"context"

	"repro/internal/attack"
	"repro/internal/bitvec"
	"repro/internal/device"
	"repro/internal/rng"
)

// DistillerConfig tunes the §VI-D attacks.
//
// Deprecated: use attack.Options with the "masking"/"chain" registry
// entries.
type DistillerConfig struct {
	Dist Distinguisher
	// PatternAmpMHz is the main pattern steepness (0 = 500 MHz).
	PatternAmpMHz float64
	// TiltMHz is the secondary gradient that pins the pairs orthogonal
	// to the target direction (0 = 80 MHz).
	TiltMHz float64
	// InjectErrors is the common offset; 0 means the code's radius t.
	InjectErrors int
	// Src drives the attack's codeword draws.
	Src *rng.Source
}

func (cfg DistillerConfig) options() attack.Options {
	return attack.Options{
		Dist:          cfg.Dist,
		PatternAmpMHz: cfg.PatternAmpMHz,
		TiltMHz:       cfg.TiltMHz,
		InjectErrors:  cfg.InjectErrors,
		Src:           cfg.Src,
	}
}

// MaskingAttackResult is the Fig. 6b outcome.
type MaskingAttackResult struct {
	// BaseBits[i] is the recovered residual-sign bit of base pair i
	// (true = pair.A's distilled residual exceeds pair.B's... i.e. the
	// response bit the pair would produce).
	BaseBits []bool
	// Key is the original key: the bits of the originally selected
	// pairs, read off BaseBits via the public masking helper.
	Key bitvec.Vector
	// Queries is the total oracle cost.
	Queries int
}

// AttackDistillerMasking runs the paper's Fig. 6b attack against an
// entropy distiller composed with 1-out-of-k masking over a disjoint
// neighbor chain.
//
// Deprecated: thin shim over the "masking" attack in internal/attack.
func AttackDistillerMasking(d *device.DistillerPairDevice, cfg DistillerConfig) (MaskingAttackResult, error) {
	rep, err := attack.Run(context.Background(), "masking", attack.NewDistillerTarget(d), cfg.options())
	if err != nil {
		return MaskingAttackResult{}, err
	}
	det := rep.Details.(attack.MaskingDetails)
	return MaskingAttackResult{
		BaseBits: det.BaseBits,
		Key:      rep.Key,
		Queries:  rep.Queries,
	}, nil
}

// ChainAttackResult is the Fig. 6c outcome.
type ChainAttackResult struct {
	// Key is the fully recovered response of the overlapping chain.
	Key bitvec.Vector
	// MaxHypotheses is the largest simultaneous hypothesis set used
	// (2^b for b bits undetermined by one pattern — the paper
	// illustrates b = 4).
	MaxHypotheses int
	// Queries is the total oracle cost.
	Queries int
}

// AttackDistillerChain runs the paper's Fig. 6c attack against an
// entropy distiller composed with an overlapping neighbor chain.
//
// Deprecated: thin shim over the "chain" attack in internal/attack.
func AttackDistillerChain(d *device.DistillerPairDevice, cfg DistillerConfig) (ChainAttackResult, error) {
	rep, err := attack.Run(context.Background(), "chain", attack.NewDistillerTarget(d), cfg.options())
	if err != nil {
		return ChainAttackResult{}, err
	}
	det := rep.Details.(attack.ChainDetails)
	return ChainAttackResult{
		Key:           rep.Key,
		MaxHypotheses: det.MaxHypotheses,
		Queries:       rep.Queries,
	}, nil
}
