package core

import (
	"repro/internal/ecc"
	"repro/internal/tempco"
)

// tempcoParams is the shared test configuration for tempco devices.
func tempcoParams() tempco.Params {
	return tempco.Params{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.6,
		TminC:        -20, TmaxC: 80,
		Policy:     tempco.RandomSelection,
		Code:       ecc.MustBCH(ecc.BCHConfig{M: 6, T: 3}),
		EnrollReps: 25,
	}
}
