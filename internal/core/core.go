package core
