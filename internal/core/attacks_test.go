package core

import (
	"testing"

	"repro/internal/device"
	"repro/internal/ecc"
	"repro/internal/groupbased"
	"repro/internal/pairing"
	"repro/internal/rng"
)

func seqDevice(t *testing.T, seed uint64, expurgated bool) *device.SeqPairDevice {
	t.Helper()
	code := ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3, Expurgate: expurgated})
	d, err := device.EnrollSeqPair(device.SeqPairParams{
		Rows: 8, Cols: 16,
		ThresholdMHz: 0.8,
		Policy:       pairing.RandomizedStorage,
		Code:         code,
		EnrollReps:   20,
	}, rng.New(seed), rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAttackSeqPairRecoversRelations(t *testing.T) {
	d := seqDevice(t, 10, false)
	truth := d.TrueKey()
	res, err := AttackSeqPair(d, SeqPairConfig{Dist: DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	// Relations must match ground truth exactly.
	for j := 1; j < truth.Len(); j++ {
		want := truth.Get(j) != truth.Get(0)
		if res.Relations[j] != want {
			t.Fatalf("relation %d: got %v want %v", j, res.Relations[j], want)
		}
	}
	// Plain narrow-sense BCH contains the all-ones word, but the
	// complement ambiguity only materializes when the response exactly
	// fills the ECC blocks: zero padding breaks the all-ones pattern in
	// the last block, so the offline consistency check resolves it
	// here (64 response bits over 31-bit blocks). Either way the
	// recovered key must be exact when resolved, and the truth or its
	// complement when not.
	if res.Ambiguous {
		if !res.Key.Equal(truth) && !res.Key.Equal(truth.Not()) {
			t.Fatal("ambiguous result is neither the truth nor its complement")
		}
	} else if !res.Key.Equal(truth) {
		t.Fatalf("resolved key differs from the truth:\n got %s\nwant %s", res.Key, truth)
	}
	if res.Queries <= 0 {
		t.Fatal("no queries recorded")
	}
	t.Logf("seqpair (plain BCH): %d pairs, %d queries, ambiguous=%v", truth.Len(), res.Queries, res.Ambiguous)
}

func TestAttackSeqPairExpurgatedResolvesFully(t *testing.T) {
	d := seqDevice(t, 20, true)
	truth := d.TrueKey()
	res, err := AttackSeqPair(d, SeqPairConfig{Dist: DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ambiguous {
		t.Fatal("expurgated BCH excludes all-ones; the complement must resolve")
	}
	if !res.Key.Equal(truth) {
		t.Fatalf("full key recovery failed:\n got %s\nwant %s", res.Key, truth)
	}
	t.Logf("seqpair (expurgated BCH): full key of %d bits in %d queries", truth.Len(), res.Queries)
}

func TestAttackSeqPairLeavesDeviceWorking(t *testing.T) {
	d := seqDevice(t, 30, true)
	if _, err := AttackSeqPair(d, SeqPairConfig{Dist: DefaultDistinguisher()}); err != nil {
		t.Fatal(err)
	}
	// The attack restores the original helper: the device must still
	// reconstruct its key.
	ok := 0
	for i := 0; i < 10; i++ {
		if d.App() {
			ok++
		}
	}
	if ok < 8 {
		t.Fatalf("device broken after attack: %d/10", ok)
	}
}

func TestAttackSeqPairFixedSampleStrategy(t *testing.T) {
	d := seqDevice(t, 40, true)
	truth := d.TrueKey()
	res, err := AttackSeqPair(d, SeqPairConfig{
		Dist: Distinguisher{Strategy: FixedSample, Queries: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Key.Equal(truth) {
		t.Fatal("fixed-sample attack failed")
	}
}

func tempcoDevice(t *testing.T, seed uint64) *device.TempCoDevice {
	t.Helper()
	d, err := device.EnrollTempCo(tempcoParams(), rng.New(seed), rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAttackTempCoRecoversRelations(t *testing.T) {
	d := tempcoDevice(t, 50)
	res, err := AttackTempCo(d, TempCoConfig{Dist: DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: reference bits from noise-free low-temperature
	// deltas.
	arr := d.Array()
	p := d.Params()
	h := d.ReadHelper()
	envMin := arr.Config().NominalEnv()
	envMin.TempC = p.TminC
	refBit := func(i int) bool {
		return arr.PairDeltaF(h.Pairs[i].Pair.A, h.Pairs[i].Pair.B, envMin) > 0
	}
	checked := 0
	for x, got := range res.XorWithRef {
		want := refBit(x) != refBit(res.RefIdx)
		if got != want {
			t.Fatalf("relation for pair %d: got %v want %v", x, got, want)
		}
		checked++
	}
	if checked < 3 {
		t.Fatalf("only %d relations recovered", checked)
	}
	// Mask bits are absolute recoveries: verify against ground truth.
	for g, got := range res.MaskBits {
		if want := refBit(g); got != want {
			t.Fatalf("mask bit %d: got %v want %v", g, got, want)
		}
	}
	if len(res.MaskBits) == 0 {
		t.Fatal("no mask bits recovered")
	}
	t.Logf("tempco: %d coop relations, %d absolute mask bits, %d skipped, %d queries",
		checked, len(res.MaskBits), len(res.Skipped), res.Queries)
}

func TestAttackTempCoRestoresHelper(t *testing.T) {
	d := tempcoDevice(t, 60)
	if _, err := AttackTempCo(d, TempCoConfig{Dist: DefaultDistinguisher()}); err != nil {
		t.Fatal(err)
	}
	ok := 0
	for i := 0; i < 10; i++ {
		if d.App() {
			ok++
		}
	}
	if ok < 8 {
		t.Fatalf("device broken after attack: %d/10", ok)
	}
}

func groupDevice(t *testing.T, seed uint64) *device.GroupBasedDevice {
	t.Helper()
	d, err := device.EnrollGroupBased(groupbased.Params{
		Rows: 4, Cols: 10, // the paper's Fig. 6a array
		Degree:       2,
		ThresholdMHz: 0.5,
		MaxGroupSize: 6,
		Code:         ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
		EnrollReps:   25,
	}, rng.New(seed), rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAttackGroupBasedRecoversFullKey(t *testing.T) {
	d := groupDevice(t, 70)
	truth := d.TrueKey()
	res, err := AttackGroupBased(d, GroupBasedConfig{Dist: DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Key.Len() == 0 {
		t.Fatalf("key not assembled; resolved %d groups", res.Resolved)
	}
	if !res.Key.Equal(truth) {
		t.Fatalf("full key recovery failed:\n got %s\nwant %s", res.Key, truth)
	}
	t.Logf("groupbased: %d-bit key, %d groups resolved, %d queries",
		truth.Len(), res.Resolved, res.Queries)
}

func distillerDevice(t *testing.T, seed uint64, mode device.PairingMode) *device.DistillerPairDevice {
	t.Helper()
	d, err := device.EnrollDistillerPair(device.DistillerPairParams{
		Rows: 4, Cols: 10,
		Degree:     2,
		Mode:       mode,
		K:          5,
		Code:       ecc.MustBCH(ecc.BCHConfig{M: 5, T: 3}),
		EnrollReps: 25,
	}, rng.New(seed), rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAttackDistillerMaskingRecoversKey(t *testing.T) {
	d := distillerDevice(t, 80, device.MaskedChain)
	truth := d.TrueKey()
	res, err := AttackDistillerMasking(d, DistillerConfig{Dist: DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Key.Equal(truth) {
		t.Fatalf("masking attack failed:\n got %s\nwant %s", res.Key, truth)
	}
	t.Logf("distiller+masking: %d-bit key, %d base bits, %d queries",
		truth.Len(), len(res.BaseBits), res.Queries)
}

func TestAttackDistillerMaskingRejectsWrongMode(t *testing.T) {
	d := distillerDevice(t, 90, device.OverlappingChain)
	if _, err := AttackDistillerMasking(d, DistillerConfig{}); err == nil {
		t.Fatal("expected mode error")
	}
}

func TestAttackDistillerChainRecoversKey(t *testing.T) {
	d := distillerDevice(t, 100, device.OverlappingChain)
	truth := d.TrueKey()
	res, err := AttackDistillerChain(d, DistillerConfig{Dist: DefaultDistinguisher()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Key.Equal(truth) {
		t.Fatalf("chain attack failed:\n got %s\nwant %s", res.Key, truth)
	}
	// Fig. 6c: the 4x10 array yields 2^4 hypotheses at column
	// boundaries.
	if res.MaxHypotheses != 16 {
		t.Fatalf("max hypotheses %d, want 16", res.MaxHypotheses)
	}
	t.Logf("distiller+chain: %d-bit key, max %d hypotheses, %d queries",
		truth.Len(), res.MaxHypotheses, res.Queries)
}

func TestAttackDistillerChainRejectsWrongMode(t *testing.T) {
	d := distillerDevice(t, 110, device.MaskedChain)
	if _, err := AttackDistillerChain(d, DistillerConfig{}); err == nil {
		t.Fatal("expected mode error")
	}
}
