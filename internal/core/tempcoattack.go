package core

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/tempco"
)

// TempCoConfig tunes the §VI-B attack.
type TempCoConfig struct {
	Dist Distinguisher
	// CalibrationQueries sizes the rate calibration (0 = 24).
	CalibrationQueries int
	// InjectErrors is the common offset; 0 means the code's radius t.
	InjectErrors int
}

// TempCoResult is the attack outcome: bit relations over the cooperating
// pairs (absolute XOR values) plus the absolutely recovered bits of every
// good pair used as a mask — the paper's partial key recovery.
type TempCoResult struct {
	// CoopIdx lists the cooperating pairs (indices into the helper's
	// pair list).
	CoopIdx []int
	// XorWithRef[i] = r_i XOR r_ref for cooperating pair i, where ref is
	// the reference cooperating pair RefIdx (the requester's original
	// helping pair).
	XorWithRef map[int]bool
	RefIdx     int
	// MaskBits holds absolutely recovered good-pair bits: for every
	// cooperating pair c with mask g and helper ci, r_g = r_c XOR r_ci
	// follows from the masking constraint once the cooperating-pair
	// relations are known.
	MaskBits map[int]bool
	// Skipped lists cooperating pairs that could not be tested (their
	// own crossover interval contains the operating temperature, so
	// their measured bit is unstable).
	Skipped []int
	// Queries is the total oracle cost.
	Queries     int
	Calibration Calibration
}

// AttackTempCo runs the paper's §VI-B relation recovery against a
// deployed temperature-aware cooperative RO PUF at its current ambient
// temperature.
//
// A "requesting" cooperating pair c is forced into cooperation by
// rewriting its crossover interval to contain the ambient temperature;
// its reconstructed bit then equals r_x XOR r_g for whatever helping
// pair x the attacker designates, and substituting x while watching the
// failure rate decides r_x versus r_ci (the originally designated
// helper). The common error offset uses the interval-boundary
// manipulation the paper suggests — shifting Tl/Th so the device applies
// crossover compensation wrongly — extended to GOOD pairs by relabeling
// their class tag (the tag is helper data too), which makes the
// injection pool essentially the whole block.
func AttackTempCo(d *device.TempCoDevice, cfg TempCoConfig) (TempCoResult, error) {
	original := d.ReadHelper()
	defer func() { _ = d.WriteHelper(original) }()

	p := d.Params()
	tcap := p.Code.T()
	if cfg.InjectErrors <= 0 || cfg.InjectErrors > tcap {
		cfg.InjectErrors = tcap
	}
	if cfg.CalibrationQueries <= 0 {
		cfg.CalibrationQueries = 24
	}
	ambient := d.Environment().TempC
	blockLen := p.Code.N()
	startQueries := d.Queries()

	// Census of the helper.
	var coop, good []int
	inInterval := make(map[int]bool) // cooperating pair unstable at ambient
	protected := make(map[int]bool)  // records other pairs rely on at ambient
	for i, info := range original.Pairs {
		switch info.Class {
		case tempco.Cooperating:
			coop = append(coop, i)
			if ambient >= info.Tl && ambient <= info.Th {
				inInterval[i] = true
				protected[info.HelpIdx] = true
				protected[info.MaskIdx] = true
			}
			// A good pair referenced as a mask must KEEP its Good class
			// tag or the device's structural validation rejects the
			// helper — it cannot be relabeled for injection.
			protected[info.MaskIdx] = true
		case tempco.Good:
			good = append(good, i)
		}
	}
	if len(coop) < 3 {
		return TempCoResult{}, fmt.Errorf("core: only %d cooperating pairs, need >= 3", len(coop))
	}
	if len(good) < 2 {
		return TempCoResult{}, fmt.Errorf("core: need at least 2 good pairs")
	}

	// Reserve one good pair per block as a mask anchor that is never
	// relabeled (relabeled pairs need a valid Good MaskIdx).
	maskAnchor := good[0]

	// Pick a requesting pair not relied on by others whose ORIGINAL
	// helping pair is stable at ambient — the device refuses to
	// cooperate through a helper inside its own declared interval, so
	// an unstable reference would break the baseline arm. The
	// requester's ECC block must also hold enough injectable pairs for
	// the common offset (a requester alone in the final short block is
	// useless), so viability is checked against the injection pool; the
	// pool itself is defined below and only depends on the census.
	usableRequester := func(c int) bool {
		if protected[c] {
			return false
		}
		hi := original.Pairs[c].HelpIdx
		return !inInterval[hi]
	}
	requester := -1
	var refHelper int

	// injectionPool lists value-independent deterministic error
	// injectors in the given ECC block: stable cooperating pairs get
	// their interval shifted to force a wrong compensation; good pairs
	// get relabeled as cooperating with a below-ambient interval.
	injectionPool := func(blk int, avoid map[int]bool) []int {
		var out []int
		for _, k := range coop {
			if k/blockLen != blk || avoid[k] || protected[k] || inInterval[k] {
				continue
			}
			out = append(out, k)
		}
		for _, k := range good {
			if k/blockLen != blk || avoid[k] || protected[k] || k == maskAnchor {
				continue
			}
			out = append(out, k)
		}
		return out
	}

	// applyInjection mutates one helper record so that pair k's
	// reconstructed bit inverts deterministically at ambient.
	applyInjection := func(h *tempco.Helper, k int) {
		info := &h.Pairs[k]
		switch original.Pairs[k].Class {
		case tempco.Cooperating:
			if ambient < original.Pairs[k].Tl {
				// Not crossed yet; a declared interval below ambient
				// makes the device invert wrongly.
				info.Tl, info.Th = ambient-10, ambient-5
			} else {
				// Already crossed; a declared interval above ambient
				// suppresses the needed inversion.
				info.Tl, info.Th = ambient+5, ambient+10
			}
		case tempco.Good:
			// Relabel as cooperating with a below-ambient interval: the
			// device inverts the (stable) measured bit.
			info.Class = tempco.Cooperating
			info.Tl, info.Th = ambient-10, ambient-5
			info.MaskIdx = maskAnchor
			info.HelpIdx = requester // any cooperating pair; never used
		}
	}

	// install writes a helper with the requester forced into
	// cooperation via helping pair x plus the listed injections.
	install := func(req, x int, inject []int) error {
		h := tempco.Helper{Pairs: append([]tempco.PairInfo(nil), original.Pairs...), Offset: original.Offset}
		h.Pairs[req].Tl = ambient - 1
		h.Pairs[req].Th = ambient + 1
		h.Pairs[req].HelpIdx = x
		for _, k := range inject {
			applyInjection(&h, k)
		}
		return d.WriteHelper(h)
	}

	// Requester selection, now that pool viability can be evaluated:
	// two passes, preferring requesters stable at ambient.
	for _, stableOnly := range []bool{true, false} {
		for _, c := range coop {
			if !usableRequester(c) || (stableOnly && inInterval[c]) {
				continue
			}
			hi := original.Pairs[c].HelpIdx
			pool := injectionPool(c/blockLen, map[int]bool{c: true, hi: true})
			if len(pool) >= cfg.InjectErrors+1 {
				requester, refHelper = c, hi
				break
			}
		}
		if requester != -1 {
			break
		}
	}
	if requester == -1 {
		return TempCoResult{}, fmt.Errorf("core: no requesting pair with a stable reference and a viable injection pool at %v C", ambient)
	}

	blk := requester / blockLen
	basePool := injectionPool(blk, map[int]bool{requester: true, refHelper: true})

	// Calibration: offset and offset+1 rates.
	if err := install(requester, refHelper, basePool[:cfg.InjectErrors]); err != nil {
		return TempCoResult{}, err
	}
	failArm := Arm(func() bool { return !d.App() })
	pNom := EstimateFailureRate(failArm, cfg.CalibrationQueries)
	if err := install(requester, refHelper, basePool[:cfg.InjectErrors+1]); err != nil {
		return TempCoResult{}, err
	}
	pElev := EstimateFailureRate(failArm, cfg.CalibrationQueries)
	cal := Calibration{PNominal: pNom, PElevated: pElev, Queries: 2 * cfg.CalibrationQueries}
	dist := cal.Apply(cfg.Dist)

	// Relation recovery: t(x) = [r_x != r_refHelper] for every other
	// cooperating pair x stable at ambient.
	xorWithRef := map[int]bool{refHelper: false}
	var skipped []int
	for _, x := range coop {
		if x == requester || x == refHelper {
			continue
		}
		if inInterval[x] {
			skipped = append(skipped, x)
			continue
		}
		pool := injectionPool(blk, map[int]bool{requester: true, refHelper: true, x: true})
		if len(pool) < cfg.InjectErrors {
			skipped = append(skipped, x)
			continue
		}
		inj := pool[:cfg.InjectErrors]
		armSub := func() bool {
			if err := install(requester, x, inj); err != nil {
				return true
			}
			return !d.App()
		}
		armRef := func() bool {
			if err := install(requester, refHelper, inj); err != nil {
				return true
			}
			return !d.App()
		}
		best, _ := dist.Best([]Arm{armSub, armRef})
		if best < 0 {
			return TempCoResult{}, fmt.Errorf("core: pair %d: %w", x, ErrNoArms)
		}
		xorWithRef[x] = best != 0
	}

	// The requester itself gets its relation through a second requester.
	if rel, ok := testThroughSecondRequester(d, original, dist, cfg, install, injectionPool, xorWithRef,
		coop, inInterval, protected, requester, refHelper, blockLen); ok {
		xorWithRef[requester] = rel
	}

	// Absolute mask-bit recovery: r_g = r_c XOR r_ci for every
	// cooperating pair whose two relations are known.
	maskBits := make(map[int]bool)
	for _, c := range coop {
		relC, okC := xorWithRef[c]
		info := original.Pairs[c]
		relCi, okCi := xorWithRef[info.HelpIdx]
		if okC && okCi && info.MaskIdx >= 0 {
			maskBits[info.MaskIdx] = relC != relCi
		}
	}

	return TempCoResult{
		CoopIdx:     coop,
		XorWithRef:  xorWithRef,
		RefIdx:      refHelper,
		MaskBits:    maskBits,
		Skipped:     skipped,
		Queries:     d.Queries() - startQueries,
		Calibration: cal,
	}, nil
}

// testThroughSecondRequester recovers the first requester's own relation
// by forcing a different cooperating pair into cooperation and
// designating the first requester as its helper.
func testThroughSecondRequester(
	d *device.TempCoDevice,
	original tempco.Helper,
	dist Distinguisher,
	cfg TempCoConfig,
	install func(req, x int, inject []int) error,
	injectionPool func(blk int, avoid map[int]bool) []int,
	xorWithRef map[int]bool,
	coop []int,
	inInterval, protected map[int]bool,
	requester, refHelper, blockLen int,
) (bool, bool) {
	for _, second := range coop {
		if second == requester || second == refHelper || inInterval[second] || protected[second] {
			continue
		}
		ref2 := original.Pairs[second].HelpIdx
		rel2, known := xorWithRef[ref2]
		if !known || ref2 == requester || inInterval[ref2] {
			continue
		}
		blk2 := second / blockLen
		pool := injectionPool(blk2, map[int]bool{second: true, ref2: true, requester: true, refHelper: true})
		if len(pool) < cfg.InjectErrors {
			continue
		}
		inj := pool[:cfg.InjectErrors]
		armSub := func() bool {
			if err := install(second, requester, inj); err != nil {
				return true
			}
			return !d.App()
		}
		armRef := func() bool {
			if err := install(second, ref2, inj); err != nil {
				return true
			}
			return !d.App()
		}
		best, _ := dist.Best([]Arm{armSub, armRef})
		if best < 0 {
			// Degenerate arm set: leave the requester's relation unknown.
			return false, false
		}
		// best!=0 => r_requester != r_ref2; translate into the
		// refHelper frame via rel2 = r_ref2 XOR r_refHelper.
		return (best != 0) != rel2, true
	}
	return false, false
}
