package core

import (
	"context"

	"repro/internal/attack"
	"repro/internal/device"
)

// TempCoConfig tunes the §VI-B attack.
//
// Deprecated: use attack.Options with the "tempco" registry entry.
type TempCoConfig struct {
	Dist Distinguisher
	// CalibrationQueries sizes the rate calibration (0 = 24).
	CalibrationQueries int
	// InjectErrors is the common offset; 0 means the code's radius t.
	InjectErrors int
}

// TempCoResult is the attack outcome: bit relations over the cooperating
// pairs (absolute XOR values) plus the absolutely recovered bits of every
// good pair used as a mask — the paper's partial key recovery.
type TempCoResult struct {
	// CoopIdx lists the cooperating pairs (indices into the helper's
	// pair list).
	CoopIdx []int
	// XorWithRef[i] = r_i XOR r_ref for cooperating pair i, where ref is
	// the reference cooperating pair RefIdx (the requester's original
	// helping pair).
	XorWithRef map[int]bool
	RefIdx     int
	// MaskBits holds absolutely recovered good-pair bits: for every
	// cooperating pair c with mask g and helper ci, r_g = r_c XOR r_ci
	// follows from the masking constraint once the cooperating-pair
	// relations are known.
	MaskBits map[int]bool
	// Skipped lists cooperating pairs that could not be tested (their
	// own crossover interval contains the operating temperature, so
	// their measured bit is unstable).
	Skipped []int
	// Queries is the total oracle cost.
	Queries     int
	Calibration Calibration
}

// AttackTempCo runs the paper's §VI-B relation recovery against a
// deployed temperature-aware cooperative RO PUF at its current ambient
// temperature.
//
// Deprecated: thin shim over the "tempco" attack in internal/attack.
func AttackTempCo(d *device.TempCoDevice, cfg TempCoConfig) (TempCoResult, error) {
	rep, err := attack.Run(context.Background(), "tempco", attack.NewTempCoTarget(d), attack.Options{
		Dist:               cfg.Dist,
		CalibrationQueries: cfg.CalibrationQueries,
		InjectErrors:       cfg.InjectErrors,
	})
	if err != nil {
		return TempCoResult{}, err
	}
	det := rep.Details.(attack.TempCoDetails)
	return TempCoResult{
		CoopIdx:     det.CoopIdx,
		XorWithRef:  det.XorWithRef,
		RefIdx:      det.RefIdx,
		MaskBits:    det.MaskBits,
		Skipped:     det.Skipped,
		Queries:     rep.Queries,
		Calibration: det.Calibration,
	}, nil
}
