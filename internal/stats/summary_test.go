package stats

import (
	"math"
	"testing"
)

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); math.Abs(m-5) > 1e-12 {
		t.Fatalf("mean = %v", m)
	}
	// Sample stddev of the classic example: variance 32/7.
	want := math.Sqrt(32.0 / 7.0)
	if s := Stddev(xs); math.Abs(s-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s, want)
	}
	if Mean(nil) != 0 || Stddev(nil) != 0 || Stddev([]float64{3}) != 0 {
		t.Fatal("degenerate inputs must return 0")
	}
}

func TestWilsonInterval(t *testing.T) {
	// Reference value: 8/10 successes at 95% gives roughly (0.49, 0.94).
	lo, hi := WilsonInterval(8, 10, 0.95)
	if math.Abs(lo-0.4901) > 5e-3 || math.Abs(hi-0.9433) > 5e-3 {
		t.Fatalf("wilson(8/10) = (%v, %v)", lo, hi)
	}
	// Boundary rates stay inside [0, 1] and are non-degenerate.
	lo, hi = WilsonInterval(0, 20, 0.95)
	if lo != 0 || hi <= 0 || hi >= 0.5 {
		t.Fatalf("wilson(0/20) = (%v, %v)", lo, hi)
	}
	lo, hi = WilsonInterval(20, 20, 0.95)
	if hi != 1 || lo >= 1 || lo <= 0.5 {
		t.Fatalf("wilson(20/20) = (%v, %v)", lo, hi)
	}
	if lo, hi = WilsonInterval(0, 0, 0.95); lo != 0 || hi != 1 {
		t.Fatalf("wilson(0/0) = (%v, %v)", lo, hi)
	}
	// The interval must contain the point estimate.
	lo, hi = WilsonInterval(3, 7, 0.99)
	if p := 3.0 / 7.0; p < lo || p > hi {
		t.Fatalf("wilson(3/7) = (%v, %v) excludes %v", lo, hi, p)
	}
}
