package stats

import "math"

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (Bessel-corrected;
// 0 for fewer than two observations).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, v := range xs {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// WilsonInterval returns the Wilson score confidence interval for a
// binomial proportion with `successes` out of `n` trials at the given
// confidence level (e.g. 0.95). Unlike the Wald interval it behaves
// sensibly at the boundary rates the attack campaigns produce (success
// fractions of exactly 0 or 1 over few seeds). n <= 0 returns (0, 1).
func WilsonInterval(successes, n int, confidence float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	z := NormalQuantile(1 - (1-confidence)/2)
	nf := float64(n)
	p := float64(successes) / nf
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo, hi = center-half, center+half
	// Exact boundary proportions have exact one-sided bounds; also guards
	// the subtraction above from leaving ±1e-17 residue.
	if successes == 0 || lo < 0 {
		lo = 0
	}
	if successes == n || hi > 1 {
		hi = 1
	}
	return lo, hi
}
