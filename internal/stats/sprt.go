package stats

import (
	"fmt"
	"math"
)

// SPRT implements Wald's sequential probability ratio test for Bernoulli
// observations, deciding between failure rates p0 (H0) and p1 (H1) with
// designed error probabilities alpha (accepting H1 when H0 is true) and
// beta (accepting H0 when H1 is true).
//
// The paper's attacks repeatedly query a failure oracle and compare
// failure rates between two helper-data manipulations; the SPRT is the
// query-optimal way to run that comparison and is used by the attack
// framework's adaptive distinguisher. Its expected sample size is
// substantially below the fixed-sample bound of
// RequiredSamplesTwoProportions — one of the ablations in bench_test.go.
type SPRT struct {
	llr0, llr1 float64 // per-observation log-likelihood increments
	upper      float64 // accept H1 when the LLR exceeds this
	lower      float64 // accept H0 when the LLR falls below this
	llr        float64
	n          int
}

// SPRTDecision is the outcome of a sequential test step.
type SPRTDecision int

// SPRT outcomes.
const (
	SPRTContinue SPRTDecision = iota
	SPRTAcceptH0
	SPRTAcceptH1
)

// String implements fmt.Stringer for diagnostics.
func (d SPRTDecision) String() string {
	switch d {
	case SPRTContinue:
		return "continue"
	case SPRTAcceptH0:
		return "accept-H0"
	case SPRTAcceptH1:
		return "accept-H1"
	}
	return fmt.Sprintf("SPRTDecision(%d)", int(d))
}

// NewSPRT constructs a test of H0: p = p0 against H1: p = p1 with
// 0 <= p0 < p1 <= 1 and error probabilities alpha, beta in (0, 1).
// Degenerate rates (p0 = 0 or p1 = 1) are clamped slightly inward so the
// log-likelihood ratios stay finite.
func NewSPRT(p0, p1, alpha, beta float64) *SPRT {
	s := MakeSPRT(p0, p1, alpha, beta)
	return &s
}

// MakeSPRT is NewSPRT returning the test by value, for callers that run
// one test per hypothesis arm on a hot loop and want the state on their
// own stack instead of a fresh heap allocation per arm.
func MakeSPRT(p0, p1, alpha, beta float64) SPRT {
	if !(p0 < p1) || p0 < 0 || p1 > 1 {
		panic(fmt.Sprintf("stats: invalid SPRT rates p0=%v p1=%v", p0, p1))
	}
	if alpha <= 0 || alpha >= 1 || beta <= 0 || beta >= 1 {
		panic(fmt.Sprintf("stats: invalid SPRT errors alpha=%v beta=%v", alpha, beta))
	}
	const eps = 1e-9
	p0 = math.Max(p0, eps)
	p1 = math.Min(p1, 1-eps)
	return SPRT{
		llr1:  math.Log(p1 / p0),             // increment for a failure
		llr0:  math.Log((1 - p1) / (1 - p0)), // increment for a success
		upper: math.Log((1 - beta) / alpha),
		lower: math.Log(beta / (1 - alpha)),
	}
}

// Observe folds one Bernoulli observation (failure=true) into the test
// and returns the current decision.
func (s *SPRT) Observe(failure bool) SPRTDecision {
	if failure {
		s.llr += s.llr1
	} else {
		s.llr += s.llr0
	}
	s.n++
	return s.Decision()
}

// Decision returns the current state without consuming an observation.
func (s *SPRT) Decision() SPRTDecision {
	switch {
	case s.llr >= s.upper:
		return SPRTAcceptH1
	case s.llr <= s.lower:
		return SPRTAcceptH0
	default:
		return SPRTContinue
	}
}

// N returns the number of observations consumed so far.
func (s *SPRT) N() int { return s.n }

// Reset clears the test state for reuse.
func (s *SPRT) Reset() {
	s.llr = 0
	s.n = 0
}

// ExpectedSamples returns Wald's approximation of the expected sample
// size when the true failure rate is p.
func (s *SPRT) ExpectedSamples(p float64) float64 {
	mean := p*s.llr1 + (1-p)*s.llr0
	if math.Abs(mean) < 1e-15 {
		return math.Inf(1)
	}
	// Probability of accepting H1 under p via Wald's identity with the
	// two-point boundary approximation.
	var acceptH1 float64
	switch {
	case mean > 0:
		acceptH1 = 1
	default:
		acceptH1 = 0
	}
	return (acceptH1*s.upper + (1-acceptH1)*s.lower) / mean
}
