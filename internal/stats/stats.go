// Package stats implements the statistical machinery behind the paper's
// attack framework (Section VI, Figure 5): binomial error models for the
// error count at the ECC input, failure-rate estimation, fixed-sample and
// sequential hypothesis tests, and histogram utilities for reproducing
// the PDFs of Figure 5.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p). Computation is in
// log space to stay stable for large n.
func BinomialPMF(n int, p float64, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	logPMF := logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(logPMF)
}

// BinomialCDF returns P(X <= k).
func BinomialCDF(n int, p float64, k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	var sum float64
	for i := 0; i <= k; i++ {
		sum += BinomialPMF(n, p, i)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// BinomialTail returns P(X > k) = 1 - CDF(k).
func BinomialTail(n int, p float64, k int) float64 {
	return 1 - BinomialCDF(n, p, k)
}

// logChoose returns log C(n, k) via log-gamma.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return logGamma(float64(n)+1) - logGamma(float64(k)+1) - logGamma(float64(n-k)+1)
}

// logGamma is the Lanczos approximation of the log-gamma function,
// accurate to ~1e-13 for positive arguments, which is ample for binomial
// coefficients.
func logGamma(x float64) float64 {
	// Lanczos coefficients, g = 7, n = 9.
	coeffs := [...]float64{
		0.99999999999980993,
		676.5203681218851,
		-1259.1392167224028,
		771.32342877765313,
		-176.61502916214059,
		12.507343278686905,
		-0.13857109526572012,
		9.9843695780195716e-6,
		1.5056327351493116e-7,
	}
	if x < 0.5 {
		// Reflection formula.
		return math.Log(math.Pi/math.Sin(math.Pi*x)) - logGamma(1-x)
	}
	x--
	a := coeffs[0]
	t := x + 7.5
	for i := 1; i < len(coeffs); i++ {
		a += coeffs[i] / (x + float64(i))
	}
	return 0.5*math.Log(2*math.Pi) + (x+0.5)*math.Log(t) - t + math.Log(a)
}

// NormalCDF returns the standard normal CDF at z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns the z such that NormalCDF(z) = p, using the
// Acklam rational approximation refined by one Halley step. Valid for
// p in (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: quantile of p=%v outside (0,1)", p))
	}
	// Acklam's coefficients.
	a := [...]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [...]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [...]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [...]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// RequiredSamplesTwoProportions returns the per-hypothesis sample size
// needed to distinguish failure rates p0 < p1 with type-I and type-II
// error at most alpha and beta, using the classical normal-approximation
// two-proportion formula. This quantifies the paper's "exploit
// differences in key regeneration failure rate": the closer the two
// rates, the more oracle queries the attack needs.
func RequiredSamplesTwoProportions(p0, p1, alpha, beta float64) int {
	if p0 < 0 || p1 > 1 || p0 >= p1 {
		panic(fmt.Sprintf("stats: invalid proportions p0=%v p1=%v", p0, p1))
	}
	za := NormalQuantile(1 - alpha)
	zb := NormalQuantile(1 - beta)
	pbar := (p0 + p1) / 2
	num := za*math.Sqrt(2*pbar*(1-pbar)) + zb*math.Sqrt(p0*(1-p0)+p1*(1-p1))
	den := p1 - p0
	n := num * num / (den * den)
	return int(math.Ceil(n))
}

// Histogram is an integer-valued empirical distribution, used for the
// error-count PDFs of Figure 5.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add records one observation of value v.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// P returns the empirical probability of value v.
func (h *Histogram) P(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// TailP returns the empirical probability of a value strictly greater
// than v — for error counts, the failure rate of a t-error-correcting
// code with t = v.
func (h *Histogram) TailP(v int) float64 {
	if h.total == 0 {
		return 0
	}
	n := 0
	for val, c := range h.counts {
		if val > v {
			n += c
		}
	}
	return float64(n) / float64(h.total)
}

// Mean returns the empirical mean.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var s float64
	for v, c := range h.counts {
		s += float64(v) * float64(c)
	}
	return s / float64(h.total)
}

// Support returns the observed values in increasing order.
func (h *Histogram) Support() []int {
	out := make([]int, 0, len(h.counts))
	for v := range h.counts {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// TotalVariationDistance returns the TV distance between two empirical
// distributions — the distinguishability measure for the H0/H1 PDFs of
// Figure 5 (advantage of a single-query distinguisher).
func TotalVariationDistance(a, b *Histogram) float64 {
	seen := make(map[int]bool)
	for v := range a.counts {
		seen[v] = true
	}
	for v := range b.counts {
		seen[v] = true
	}
	var d float64
	for v := range seen {
		d += math.Abs(a.P(v) - b.P(v))
	}
	return d / 2
}
