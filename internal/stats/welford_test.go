package stats

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/rng"
)

func welfordValues(n int, seed uint64) []float64 {
	src := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		// Mix magnitudes so cancellation errors would show up.
		xs[i] = src.Norm()*1e3 + 7.25
	}
	return xs
}

// Sequential Adds must reproduce the batch Mean bit for bit (both are
// sum/n over the same addition order) and the batch Stddev to within
// floating-point noise.
func TestWelfordMatchesBatchAggregate(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 17, 1000} {
		xs := welfordValues(n, 42)
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		if w.N() != n {
			t.Fatalf("n=%d: N() = %d", n, w.N())
		}
		if got, want := w.Mean(), Mean(xs); got != want {
			t.Fatalf("n=%d: Mean() = %v, batch Mean = %v (must be bit-identical)", n, got, want)
		}
		got, want := w.Stddev(), Stddev(xs)
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("n=%d: Stddev() = %v, batch Stddev = %v", n, got, want)
		}
	}
}

// Merging a partition of the data must agree with one sequential pass:
// count and raw sum exactly (addition of per-shard sums), mean and
// stddev to within floating-point noise.
func TestWelfordMergePartition(t *testing.T) {
	xs := welfordValues(1003, 7)
	var whole Welford
	for _, x := range xs {
		whole.Add(x)
	}
	for _, shard := range []int{1, 2, 7, 64, 500, 1003} {
		var merged Welford
		for lo := 0; lo < len(xs); lo += shard {
			hi := min(lo+shard, len(xs))
			var part Welford
			for _, x := range xs[lo:hi] {
				part.Add(x)
			}
			merged.Merge(part)
		}
		if merged.N() != whole.N() {
			t.Fatalf("shard=%d: N = %d, want %d", shard, merged.N(), whole.N())
		}
		if math.Abs(merged.Mean()-whole.Mean()) > 1e-9*math.Abs(whole.Mean()) {
			t.Fatalf("shard=%d: Mean = %v, want %v", shard, merged.Mean(), whole.Mean())
		}
		if math.Abs(merged.Stddev()-whole.Stddev()) > 1e-9*whole.Stddev() {
			t.Fatalf("shard=%d: Stddev = %v, want %v", shard, merged.Stddev(), whole.Stddev())
		}
	}
}

// Merge must treat empty accumulators as identities on both sides.
func TestWelfordMergeEmpty(t *testing.T) {
	var a, empty Welford
	a.Add(3)
	a.Add(5)
	before := a
	a.Merge(empty)
	if a != before {
		t.Fatalf("merge with empty changed state: %+v -> %+v", before, a)
	}
	var b Welford
	b.Merge(before)
	if b != before {
		t.Fatalf("merge into empty did not copy state: %+v", b)
	}
}

// A checkpointed accumulator must resume with bit-identical state.
func TestWelfordJSONRoundTrip(t *testing.T) {
	var w Welford
	for _, x := range welfordValues(37, 3) {
		w.Add(x)
	}
	blob, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back Welford
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back != w {
		t.Fatalf("round trip changed state: %+v -> %+v (json %s)", w, back, blob)
	}
	// Future Adds behave identically after the round trip.
	w.Add(1.5)
	back.Add(1.5)
	if back != w {
		t.Fatalf("post-round-trip Add diverged: %+v vs %+v", w, back)
	}
}
