package stats

import (
	"encoding/json"
	"math"
)

// Welford is a mergeable streaming accumulator for count, mean, and
// sample standard deviation. It exists for the campaign layer's
// streaming aggregation: shards of a sharded campaign each fold their
// outcomes into a Welford, and partial aggregates are combined with
// Merge as shards complete — in any order — without retaining the raw
// per-seed values.
//
// Internally it keeps the running raw sum (not the running mean), so a
// sequence of Add calls yields a Mean that is bit-identical to the
// batch Mean over the same values in the same order: sum/n is computed
// the same way in both places. The second central moment is maintained
// with Welford's update (and Chan et al.'s pairwise form under Merge),
// which keeps Stddev numerically stable for the long one-pass sweeps
// the daemon runs.
//
// The zero value is an empty accumulator, ready for Add.
type Welford struct {
	n   int64
	sum float64
	m2  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	oldMean := w.Mean()
	w.n++
	w.sum += x
	w.m2 += (x - oldMean) * (x - w.Mean())
}

// Merge folds another accumulator into w, as if every observation added
// to o had been added to w. Merging partials of a partition of the data
// in any order yields the same count and raw sum; the second moment is
// combined with the pairwise (Chan et al.) update.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	delta := o.Mean() - w.Mean()
	nw, no := float64(w.n), float64(o.n)
	w.m2 += o.m2 + delta*delta*nw*no/(nw+no)
	w.n += o.n
	w.sum += o.sum
}

// N returns the number of observations.
func (w *Welford) N() int { return int(w.n) }

// Sum returns the raw sum of observations.
func (w *Welford) Sum() float64 { return w.sum }

// Mean returns the arithmetic mean (0 for an empty accumulator),
// computed as sum/n — the same expression as the batch Mean, so
// sequential Adds reproduce it bit for bit.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.sum / float64(w.n)
}

// Stddev returns the Bessel-corrected sample standard deviation (0 for
// fewer than two observations), matching the batch Stddev convention.
func (w *Welford) Stddev() float64 {
	if w.n < 2 {
		return 0
	}
	// Guard tiny negative residue from cancellation in Merge.
	if w.m2 < 0 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// welfordJSON is the wire form of a Welford accumulator: the exact
// internal state, so a checkpointed accumulator resumes with the same
// future behavior it would have had uninterrupted.
type welfordJSON struct {
	N   int64   `json:"n"`
	Sum float64 `json:"sum"`
	M2  float64 `json:"m2"`
}

// MarshalJSON encodes the accumulator state.
func (w Welford) MarshalJSON() ([]byte, error) {
	return json.Marshal(welfordJSON{N: w.n, Sum: w.sum, M2: w.m2})
}

// UnmarshalJSON restores accumulator state written by MarshalJSON.
func (w *Welford) UnmarshalJSON(b []byte) error {
	var j welfordJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	w.n, w.sum, w.m2 = j.N, j.Sum, j.M2
	return nil
}
