package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBinomialPMFSmall(t *testing.T) {
	// Binomial(4, 0.5): probabilities 1/16, 4/16, 6/16, 4/16, 1/16.
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for k, w := range want {
		if got := BinomialPMF(4, 0.5, k); !almostEqual(got, w, 1e-12) {
			t.Errorf("PMF(4,0.5,%d) = %v, want %v", k, got, w)
		}
	}
}

func TestBinomialPMFEdges(t *testing.T) {
	if BinomialPMF(5, 0.3, -1) != 0 || BinomialPMF(5, 0.3, 6) != 0 {
		t.Error("out-of-range k must be 0")
	}
	if BinomialPMF(5, 0, 0) != 1 || BinomialPMF(5, 0, 1) != 0 {
		t.Error("p=0 edge wrong")
	}
	if BinomialPMF(5, 1, 5) != 1 || BinomialPMF(5, 1, 4) != 0 {
		t.Error("p=1 edge wrong")
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 10, 100, 500} {
		for _, p := range []float64{0.01, 0.3, 0.5, 0.9} {
			var sum float64
			for k := 0; k <= n; k++ {
				sum += BinomialPMF(n, p, k)
			}
			if !almostEqual(sum, 1, 1e-9) {
				t.Errorf("n=%d p=%v: PMF sums to %v", n, p, sum)
			}
		}
	}
}

func TestBinomialCDFTailComplement(t *testing.T) {
	f := func(nRaw uint8, pRaw, kRaw uint8) bool {
		n := int(nRaw)%50 + 1
		p := float64(pRaw) / 256
		k := int(kRaw) % (n + 1)
		return almostEqual(BinomialCDF(n, p, k)+BinomialTail(n, p, k), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialCDFMonotone(t *testing.T) {
	n, p := 30, 0.2
	prev := 0.0
	for k := 0; k <= n; k++ {
		c := BinomialCDF(n, p, k)
		if c < prev-1e-12 {
			t.Fatalf("CDF decreasing at k=%d", k)
		}
		prev = c
	}
	if !almostEqual(prev, 1, 1e-9) {
		t.Fatalf("CDF(n) = %v", prev)
	}
}

func TestLogGammaFactorials(t *testing.T) {
	fact := 1.0
	for n := 1; n <= 15; n++ {
		fact *= float64(n)
		if got := math.Exp(logGamma(float64(n) + 1)); !almostEqual(got/fact, 1, 1e-10) {
			t.Errorf("Gamma(%d+1) = %v, want %v", n, got, fact)
		}
	}
}

func TestNormalCDFKnown(t *testing.T) {
	cases := map[float64]float64{
		0:     0.5,
		1.96:  0.9750021048517795,
		-1.96: 0.0249978951482205,
		3:     0.9986501019683699,
	}
	for z, want := range cases {
		if got := NormalCDF(z); !almostEqual(got, want, 1e-9) {
			t.Errorf("NormalCDF(%v) = %v, want %v", z, got, want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.025, 0.2, 0.5, 0.8, 0.975, 0.99, 0.999} {
		z := NormalQuantile(p)
		if !almostEqual(NormalCDF(z), p, 1e-9) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, NormalCDF(z))
		}
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%v: expected panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestRequiredSamplesSanity(t *testing.T) {
	// Wider gap -> fewer samples.
	narrow := RequiredSamplesTwoProportions(0.10, 0.12, 0.05, 0.05)
	wide := RequiredSamplesTwoProportions(0.10, 0.50, 0.05, 0.05)
	if wide >= narrow {
		t.Fatalf("wide gap needs %d >= narrow %d", wide, narrow)
	}
	// Stricter error -> more samples.
	strict := RequiredSamplesTwoProportions(0.1, 0.3, 0.001, 0.001)
	loose := RequiredSamplesTwoProportions(0.1, 0.3, 0.1, 0.1)
	if strict <= loose {
		t.Fatalf("strict %d <= loose %d", strict, loose)
	}
}

func TestRequiredSamplesEmpirically(t *testing.T) {
	// A fixed-sample test sized by the formula must achieve roughly the
	// designed error rates. Monte-Carlo check at alpha=beta=0.05.
	p0, p1 := 0.2, 0.4
	n := RequiredSamplesTwoProportions(p0, p1, 0.05, 0.05)
	r := rng.New(99)
	threshold := (p0 + p1) / 2
	trials := 2000
	wrong := 0
	for trial := 0; trial < trials; trial++ {
		// Simulate under H1; test decides H1 when the empirical rate
		// exceeds the midpoint.
		fails := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p1 {
				fails++
			}
		}
		if float64(fails)/float64(n) <= threshold {
			wrong++
		}
	}
	if rate := float64(wrong) / float64(trials); rate > 0.08 {
		t.Fatalf("empirical beta = %v, want <= ~0.05", rate)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{1, 2, 2, 3, 3, 3} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
	if !almostEqual(h.P(3), 0.5, 1e-12) || !almostEqual(h.P(1), 1.0/6, 1e-12) {
		t.Fatal("P wrong")
	}
	if !almostEqual(h.TailP(2), 0.5, 1e-12) {
		t.Fatalf("TailP(2) = %v", h.TailP(2))
	}
	if !almostEqual(h.Mean(), 14.0/6, 1e-12) {
		t.Fatalf("mean = %v", h.Mean())
	}
	sup := h.Support()
	if len(sup) != 3 || sup[0] != 1 || sup[2] != 3 {
		t.Fatalf("support = %v", sup)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.P(0) != 0 || h.TailP(0) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must return zeros")
	}
}

func TestTotalVariationDistance(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Add(0)
	b.Add(1)
	if d := TotalVariationDistance(a, b); !almostEqual(d, 1, 1e-12) {
		t.Fatalf("disjoint TV = %v", d)
	}
	c := NewHistogram()
	c.Add(0)
	if d := TotalVariationDistance(a, c); d != 0 {
		t.Fatalf("identical TV = %v", d)
	}
}

func TestSPRTDecidesCorrectly(t *testing.T) {
	r := rng.New(42)
	p0, p1 := 0.05, 0.25
	for _, truth := range []float64{p0, p1} {
		correct := 0
		const trials = 400
		for trial := 0; trial < trials; trial++ {
			s := NewSPRT(p0, p1, 0.01, 0.01)
			var d SPRTDecision
			for d = SPRTContinue; d == SPRTContinue; {
				d = s.Observe(r.Float64() < truth)
				if s.N() > 100000 {
					t.Fatal("SPRT did not terminate")
				}
			}
			if (truth == p0 && d == SPRTAcceptH0) || (truth == p1 && d == SPRTAcceptH1) {
				correct++
			}
		}
		if rate := float64(correct) / trials; rate < 0.97 {
			t.Fatalf("truth=%v: correct rate %v", truth, rate)
		}
	}
}

func TestSPRTCheaperThanFixedSample(t *testing.T) {
	r := rng.New(7)
	p0, p1, alpha, beta := 0.05, 0.25, 0.01, 0.01
	fixed := RequiredSamplesTwoProportions(p0, p1, alpha, beta)
	var totalN int
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		s := NewSPRT(p0, p1, alpha, beta)
		for s.Observe(r.Float64() < p1) == SPRTContinue {
		}
		totalN += s.N()
	}
	avg := float64(totalN) / trials
	if avg >= float64(fixed) {
		t.Fatalf("SPRT average %v >= fixed-sample %d", avg, fixed)
	}
}

func TestSPRTReset(t *testing.T) {
	s := NewSPRT(0.1, 0.5, 0.05, 0.05)
	s.Observe(true)
	s.Observe(true)
	s.Reset()
	if s.N() != 0 || s.Decision() != SPRTContinue {
		t.Fatal("reset failed")
	}
}

func TestSPRTInvalidParams(t *testing.T) {
	cases := []func(){
		func() { NewSPRT(0.5, 0.2, 0.05, 0.05) },
		func() { NewSPRT(0.1, 0.2, 0, 0.05) },
		func() { NewSPRT(0.1, 0.2, 0.05, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSPRTDecisionString(t *testing.T) {
	if SPRTContinue.String() != "continue" || SPRTAcceptH0.String() != "accept-H0" || SPRTAcceptH1.String() != "accept-H1" {
		t.Fatal("String values wrong")
	}
}
