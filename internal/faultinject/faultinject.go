// Package faultinject is a deterministic, seed-keyed fault-injection
// layer for chaos testing the campaign stack. Production code threads
// named injection points through its failure-prone operations —
// Fire("checkpoint.fsync") before an fsync, Fire("shard.run") at the
// top of a shard attempt — and the points cost one atomic load when no
// plan is armed, so they stay in release builds.
//
// Determinism is the point of the package: a Plan carries a fault seed,
// and whether the nth invocation of a given point faults (and which
// kind — error, panic, or delay) is a pure function of (seed, point
// name, n). Re-arming the same plan replays the same per-point fault
// schedule, so a chaos failure reproduces from its seed alone. The
// interleaving of *different* points still follows goroutine
// scheduling; what is pinned is each point's own fault sequence.
//
// The campaign stack's conventional points:
//
//	checkpoint.append   before writing a checkpoint record
//	checkpoint.fsync    before syncing a checkpoint record to disk
//	shard.run           at the top of each shard execution attempt
//	http.accept         before dispatching an HTTP request
//
// The registry is open — any name is a valid point; unplanned points
// never fault.
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// Kind is the flavor of an injected fault.
type Kind uint8

const (
	// KindNone means the invocation proceeds unharmed.
	KindNone Kind = iota
	// KindError makes Fire return an *Error wrapping ErrInjected.
	KindError
	// KindPanic makes Fire panic (the caller's recover discipline is
	// exactly what is under test).
	KindPanic
	// KindDelay makes Fire sleep before returning nil.
	KindDelay
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ErrInjected is the sentinel all injected errors wrap; callers decide
// with errors.Is whether a failure came from the harness.
var ErrInjected = errors.New("faultinject: injected fault")

// Error is one injected error fault.
type Error struct {
	// Point is the injection point that fired.
	Point string
	// N is the point's zero-based invocation index.
	N uint64
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: %s invocation %d", e.Point, e.N)
}

// Unwrap ties every injected error to the ErrInjected sentinel.
func (e *Error) Unwrap() error { return ErrInjected }

// Rule shapes the fault schedule of one injection point. Probabilities
// are evaluated in order (error, panic, delay) against a single uniform
// draw per invocation, so PErr+PPanic+PDelay must be <= 1.
type Rule struct {
	// Point names the injection point this rule governs.
	Point string
	// PErr, PPanic, PDelay are per-invocation fault probabilities.
	PErr, PPanic, PDelay float64
	// Delay is the sleep for KindDelay faults; the actual sleep is a
	// deterministic fraction of it in (0, Delay].
	Delay time.Duration
	// After skips the point's first After invocations (lets a job get
	// provably mid-flight before the chaos starts).
	After uint64
	// Limit caps the number of faults the rule fires (0 = unbounded).
	Limit uint64
}

// Plan is one armed chaos schedule: a fault seed plus per-point rules.
type Plan struct {
	// Seed keys every fault decision. The same (Seed, Rules) plan
	// replays the same per-point schedule.
	Seed uint64
	// Rules govern the named points; points without a rule never fault.
	Rules []Rule
}

// PointStats is the observed activity of one injection point.
type PointStats struct {
	Invocations uint64
	Errors      uint64
	Panics      uint64
	Delays      uint64
}

// pointState is the armed runtime of one rule.
type pointState struct {
	rule  Rule
	seed  uint64 // per-point stream base: mix(plan seed, point name)
	n     atomic.Uint64
	fired atomic.Uint64
	stats struct {
		errors, panics, delays atomic.Uint64
	}
}

// injector is one armed plan.
type injector struct {
	points map[string]*pointState
}

// armed holds the active injector; nil means disabled. Fire's fast path
// is this one atomic load.
var armed atomic.Pointer[injector]

var armMu sync.Mutex

// Enable arms a plan, replacing any previous one and resetting all
// invocation counters. It returns an error when a rule is malformed
// (probabilities outside [0,1] or summing past 1, duplicate points).
func Enable(p Plan) error {
	inj := &injector{points: make(map[string]*pointState, len(p.Rules))}
	for _, r := range p.Rules {
		if r.Point == "" {
			return fmt.Errorf("faultinject: rule with empty point")
		}
		if _, dup := inj.points[r.Point]; dup {
			return fmt.Errorf("faultinject: duplicate rule for point %q", r.Point)
		}
		if r.PErr < 0 || r.PPanic < 0 || r.PDelay < 0 || r.PErr+r.PPanic+r.PDelay > 1 {
			return fmt.Errorf("faultinject: point %q probabilities out of range", r.Point)
		}
		if r.PDelay > 0 && r.Delay <= 0 {
			return fmt.Errorf("faultinject: point %q has PDelay without a Delay", r.Point)
		}
		inj.points[r.Point] = &pointState{rule: r, seed: mix(p.Seed, r.Point)}
	}
	armMu.Lock()
	armed.Store(inj)
	armMu.Unlock()
	return nil
}

// Disable disarms fault injection; every point returns to the no-op
// fast path.
func Disable() {
	armMu.Lock()
	armed.Store(nil)
	armMu.Unlock()
}

// Enabled reports whether a plan is armed.
func Enabled() bool { return armed.Load() != nil }

// Fire evaluates the named injection point once. Disabled, or for a
// point with no rule, it is a single atomic load returning nil. Armed,
// it draws the point's next scheduled fault: returning an *Error,
// panicking with a *Error value, or sleeping then returning nil.
func Fire(point string) error {
	inj := armed.Load()
	if inj == nil {
		return nil
	}
	ps, ok := inj.points[point]
	if !ok {
		return nil
	}
	n := ps.n.Add(1) - 1
	if n < ps.rule.After {
		return nil
	}
	kind, frac := decide(ps.seed, n, ps.rule)
	if kind == KindNone {
		return nil
	}
	if ps.rule.Limit > 0 && ps.fired.Add(1) > ps.rule.Limit {
		return nil
	}
	switch kind {
	case KindError:
		ps.stats.errors.Add(1)
		return &Error{Point: point, N: n}
	case KindPanic:
		ps.stats.panics.Add(1)
		panic(&Error{Point: point, N: n})
	case KindDelay:
		ps.stats.delays.Add(1)
		d := time.Duration(float64(ps.rule.Delay) * frac)
		if d <= 0 {
			d = 1
		}
		time.Sleep(d)
	}
	return nil
}

// decide is the pure fault function: (point stream seed, invocation
// index, rule) → (kind, uniform fraction for delay scaling). One
// StreamSeed derivation yields both draws, so the schedule is exactly
// replayable.
func decide(seed, n uint64, r Rule) (Kind, float64) {
	h := rng.StreamSeed(seed, n)
	u := float64(h>>11) / (1 << 53)
	frac := float64(mixU64(h)>>11) / (1 << 53)
	switch {
	case u < r.PErr:
		return KindError, frac
	case u < r.PErr+r.PPanic:
		return KindPanic, frac
	case u < r.PErr+r.PPanic+r.PDelay:
		return KindDelay, frac
	default:
		return KindNone, frac
	}
}

// Stats snapshots every armed point's activity (nil when disabled).
// Points are keyed by name; the map is a copy.
func Stats() map[string]PointStats {
	inj := armed.Load()
	if inj == nil {
		return nil
	}
	out := make(map[string]PointStats, len(inj.points))
	for name, ps := range inj.points {
		out[name] = PointStats{
			Invocations: ps.n.Load(),
			Errors:      ps.stats.errors.Load(),
			Panics:      ps.stats.panics.Load(),
			Delays:      ps.stats.delays.Load(),
		}
	}
	return out
}

// Points lists the armed injection points, sorted (nil when disabled).
func Points() []string {
	inj := armed.Load()
	if inj == nil {
		return nil
	}
	out := make([]string, 0, len(inj.points))
	for name := range inj.points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// mix folds a point name into the plan seed (FNV-1a over the name,
// xored into the seed) so distinct points get independent streams.
func mix(seed uint64, point string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(point); i++ {
		h ^= uint64(point[i])
		h *= prime64
	}
	return seed ^ h
}

// mixU64 is one SplitMix64 finalization round, used to derive the
// secondary (delay-scaling) draw from the primary hash.
func mixU64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
