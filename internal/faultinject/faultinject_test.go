package faultinject

import (
	"errors"
	"testing"
	"time"
)

// disarm guarantees a test leaves the global injector clean.
func disarm(t *testing.T) {
	t.Helper()
	t.Cleanup(Disable)
}

func TestDisabledFireIsNil(t *testing.T) {
	disarm(t)
	Disable()
	if Enabled() {
		t.Fatal("Enabled after Disable")
	}
	for i := 0; i < 100; i++ {
		if err := Fire("checkpoint.append"); err != nil {
			t.Fatalf("disabled Fire returned %v", err)
		}
	}
	if Stats() != nil || Points() != nil {
		t.Fatal("disabled injector reported state")
	}
}

func TestUnplannedPointNeverFaults(t *testing.T) {
	disarm(t)
	if err := Enable(Plan{Seed: 1, Rules: []Rule{{Point: "shard.run", PErr: 1}}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := Fire("http.accept"); err != nil {
			t.Fatalf("unplanned point fired: %v", err)
		}
	}
	if err := Fire("shard.run"); err == nil {
		t.Fatal("planned PErr=1 point did not fire")
	}
}

// The contract of the package: the fault schedule of a point is a pure
// function of (seed, point, invocation index).
func TestScheduleIsDeterministicPerSeed(t *testing.T) {
	disarm(t)
	plan := Plan{Seed: 42, Rules: []Rule{{Point: "shard.run", PErr: 0.3, PDelay: 0.2, Delay: time.Microsecond}}}
	run := func() []bool {
		if err := Enable(plan); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			out[i] = Fire("shard.run") != nil
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("invocation %d: schedules differ across re-arms of the same plan", i)
		}
	}
	// A different seed must yield a different schedule (overwhelmingly).
	plan.Seed = 43
	c := run()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 200-invocation schedules")
	}
}

func TestErrorFaultWrapsSentinel(t *testing.T) {
	disarm(t)
	if err := Enable(Plan{Seed: 7, Rules: []Rule{{Point: "p", PErr: 1}}}); err != nil {
		t.Fatal(err)
	}
	err := Fire("p")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error %v does not wrap ErrInjected", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Point != "p" || fe.N != 0 {
		t.Fatalf("unexpected fault payload: %+v", fe)
	}
}

func TestPanicFaultPanicsWithError(t *testing.T) {
	disarm(t)
	if err := Enable(Plan{Seed: 9, Rules: []Rule{{Point: "p", PPanic: 1}}}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("PPanic=1 did not panic")
		}
		if fe, ok := r.(*Error); !ok || fe.Point != "p" {
			t.Fatalf("panic value %v (%T)", r, r)
		}
	}()
	Fire("p")
}

func TestAfterAndLimitWindows(t *testing.T) {
	disarm(t)
	if err := Enable(Plan{Seed: 3, Rules: []Rule{{Point: "p", PErr: 1, After: 5, Limit: 2}}}); err != nil {
		t.Fatal(err)
	}
	var fired int
	for i := 0; i < 20; i++ {
		if err := Fire("p"); err != nil {
			if i < 5 {
				t.Fatalf("fired inside the After window at invocation %d", i)
			}
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("Limit=2 fired %d times", fired)
	}
	st := Stats()["p"]
	if st.Invocations != 20 || st.Errors != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEnableRejectsMalformedRules(t *testing.T) {
	disarm(t)
	bad := []Plan{
		{Rules: []Rule{{Point: ""}}},
		{Rules: []Rule{{Point: "p", PErr: -0.1}}},
		{Rules: []Rule{{Point: "p", PErr: 0.6, PPanic: 0.6}}},
		{Rules: []Rule{{Point: "p", PDelay: 0.5}}}, // no Delay
		{Rules: []Rule{{Point: "p", PErr: 0.1}, {Point: "p", PErr: 0.2}}},
	}
	for i, p := range bad {
		if err := Enable(p); err == nil {
			t.Fatalf("plan %d was accepted", i)
		}
	}
	if Enabled() {
		t.Fatal("rejected plan left injector armed")
	}
}

func TestDelayFaultSleeps(t *testing.T) {
	disarm(t)
	if err := Enable(Plan{Seed: 5, Rules: []Rule{{Point: "p", PDelay: 1, Delay: 2 * time.Millisecond}}}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 5; i++ {
		if err := Fire("p"); err != nil {
			t.Fatal(err)
		}
	}
	if time.Since(start) == 0 {
		t.Fatal("PDelay=1 slept for no measurable time")
	}
	if st := Stats()["p"]; st.Delays != 5 {
		t.Fatalf("delays = %d", st.Delays)
	}
	if pts := Points(); len(pts) != 1 || pts[0] != "p" {
		t.Fatalf("points = %v", pts)
	}
}
