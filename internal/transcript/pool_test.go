package transcript

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/campaign"
)

// TestRunWithPoolMatchesFresh pins the device-pool determinism
// contract at the transcript level: running a sequence of different
// seeds per attack × noise cell through one shared Cache — so every
// enrollment after the first adopts the previous seed's device carcass
// with warm scratch — produces transcripts identical to fresh Run
// calls, field for field.
func TestRunWithPoolMatchesFresh(t *testing.T) {
	ctx := context.Background()
	pool := campaign.NewPool()
	for _, attackName := range Attacks() {
		for _, noise := range NoiseModels {
			for _, seed := range goldenSeeds[attackName][:2] {
				spec := Spec{
					Attack:    attackName,
					Seed:      seed,
					Noise:     noise,
					Expurgate: attackName == "seqpair",
				}
				fresh, err := Run(ctx, spec)
				if err != nil {
					t.Fatalf("%s/%s seed %d fresh: %v", attackName, noise, seed, err)
				}
				pooled, err := RunWith(ctx, spec, pool)
				if err != nil {
					t.Fatalf("%s/%s seed %d pooled: %v", attackName, noise, seed, err)
				}
				if !reflect.DeepEqual(fresh, pooled) {
					t.Fatalf("%s/%s seed %d: pooled transcript diverges from fresh:\nfresh:  %+v\npooled: %+v",
						attackName, noise, seed, fresh, pooled)
				}
			}
		}
	}
	// One slot per (attack, noise) cell: the fingerprints partition.
	if want := len(Attacks()) * len(NoiseModels); pool.Len() != want {
		t.Fatalf("pool holds %d slots, want %d", pool.Len(), want)
	}
}

// TestRunWithPoolReusesDevice is the steady-state fence at this layer:
// consecutive task executions under one Cache adopt the SAME device
// object (pointer identity) and the same ECC code tables — no new
// device per seed.
func TestRunWithPoolReusesDevice(t *testing.T) {
	ctx := context.Background()
	pool := campaign.NewPool()
	spec := Spec{Attack: "seqpair", Seed: 5, Noise: "counter", Expurgate: true}
	if _, err := RunWith(ctx, spec, pool); err != nil {
		t.Fatal(err)
	}
	ep := pool.Get("transcript:seqpair:counter:exp", func() any { t.Fatal("slot missing"); return nil }).(*enrollPool)
	dev0, code0 := ep.dev, ep.code
	if dev0 == nil || code0 == nil {
		t.Fatal("pooled slot not populated")
	}
	spec.Seed = 8
	if _, err := RunWith(ctx, spec, pool); err != nil {
		t.Fatal(err)
	}
	if ep.dev != dev0 {
		t.Fatal("second seed enrolled a new device instead of adopting the pooled one")
	}
	if ep.code != code0 {
		t.Fatal("second seed rebuilt the ECC code tables")
	}
}
