package transcript

import (
	"context"
	"strings"
	"testing"
)

// The bit-exact values a Run produces are pinned by the golden matrix in
// testdata/transcripts/ at the repository root (TestGoldenTranscripts);
// these tests cover the harness surface itself — error paths, the
// serialization round trip, and the shape of the golden matrix.

func TestRunRejectsUnknownAttack(t *testing.T) {
	_, err := Run(context.Background(), Spec{Attack: "nonexistent", Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "nonexistent") {
		t.Fatalf("err = %v, want unknown-attack error naming the attack", err)
	}
}

func TestRunRejectsUnknownNoiseModel(t *testing.T) {
	_, err := Run(context.Background(), Spec{Attack: "seqpair", Seed: 1, Noise: "thermal"})
	if err == nil || !strings.Contains(err.Error(), "unknown noise model") {
		t.Fatalf("err = %v, want unknown-noise-model error", err)
	}
}

func TestMarshalRoundTrips(t *testing.T) {
	tr, err := Run(context.Background(), Spec{Attack: "groupbased", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal([]Transcript{tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Fatal("marshaled transcripts must end in a newline")
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("round trip returned %d transcripts", len(back))
	}
	data2, err := Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("marshal/unmarshal/marshal is not a fixed point")
	}
}

func TestGoldenFilesCoverTheFullMatrix(t *testing.T) {
	files := GoldenFiles()
	attacks := Attacks()
	if len(files) != len(attacks)*len(NoiseModels) {
		t.Fatalf("%d golden files, want %d (attacks %v x noise %v)",
			len(files), len(attacks)*len(NoiseModels), attacks, NoiseModels)
	}
	for _, a := range attacks {
		for _, n := range NoiseModels {
			specs, ok := files[a+"_"+n+".json"]
			if !ok {
				t.Fatalf("matrix cell %s x %s missing", a, n)
			}
			if len(specs) == 0 {
				t.Fatalf("cell %s x %s has no seeds", a, n)
			}
			for _, s := range specs {
				if s.Attack != a || s.Noise != n {
					t.Fatalf("spec %+v filed under %s x %s", s, a, n)
				}
				if s.Attack == "seqpair" && !s.Expurgate {
					t.Fatal("seqpair golden cells must use the expurgated code")
				}
			}
		}
	}
}
