package ecc

import (
	"repro/internal/bitvec"
	"repro/internal/galois"
)

// Workspace is caller-owned scratch state for the allocation-free decode
// path. A zero Workspace is ready to use; buffers grow on first use and
// are reused afterwards, so a steady-state Reproduce/Decode cycle over a
// fixed code performs no heap allocations. A Workspace serves one decode
// call at a time: it is not safe for concurrent use, and a Block must
// not nest another Block as its inner code (the per-block buffers would
// be reentered). Devices keep one Workspace per oracle and clone none of
// it on Fork — every field is rebuilt from scratch deterministically.
type Workspace struct {
	// code-offset buffer: offset XOR response, full composite length.
	xorBuf bitvec.Vector
	// per-block buffers of a Block decode.
	blockRecv, blockOut bitvec.Vector
	// per-block message buffer of a Block encode.
	blockMsg bitvec.Vector
	// BCH encoder state: the shifted-message polynomial reduced in place.
	encBuf []galois.Elem
	// BCH decoder state: syndromes, the three rotating Berlekamp-Massey
	// polynomial buffers, the Chien-search per-coefficient running terms,
	// and the root list.
	synd      []galois.Elem
	bmC       galois.Poly
	bmPrev    galois.Poly
	bmSpare   galois.Poly
	chien     []galois.Elem
	positions []int
}

// vec returns *v resized to n bits, reallocating only on length change.
// Contents are unspecified; callers overwrite the buffer fully.
func (ws *Workspace) vec(v *bitvec.Vector, n int) bitvec.Vector {
	if v.Len() != n {
		*v = bitvec.New(n)
	}
	return *v
}

// elems returns buf resized to n elements, zeroed.
func elems(buf []galois.Elem, n int) []galois.Elem {
	if cap(buf) < n {
		return make([]galois.Elem, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// IntoDecoder is the optional fast path of a Code: decode an N-bit word
// into a caller-owned destination using workspace scratch. The contract
// mirrors Decode exactly — bit-identical corrected output and identical
// (corrected, ok) — with dst holding the corrected codeword on ok and
// the received word on !ok (what Decode returns as its first value
// either way). All codes in this package implement it; Block uses it
// per inner block when available and falls back to Decode otherwise.
type IntoDecoder interface {
	Code
	DecodeInto(ws *Workspace, received, dst bitvec.Vector) (corrected int, ok bool)
}

// IntoEncoder is the optional encoding fast path of a Code: encode a
// K-bit message into a caller-owned N-bit destination using workspace
// scratch, bit-identical to Encode with no steady-state allocations. All
// codes in this package implement it; Block uses it per inner block when
// available and falls back to Encode otherwise.
type IntoEncoder interface {
	Code
	EncodeInto(ws *Workspace, msg, dst bitvec.Vector)
}

// EncodeTo encodes msg into dst (length c.N()) through the code's
// EncodeInto fast path when it has one, copying an Encode result
// otherwise. The workspace-reusing primitive behind OffsetForInto.
func EncodeTo(c Code, ws *Workspace, msg, dst bitvec.Vector) {
	checkLen("encode buffer", dst.Len(), c.N())
	if ie, fast := c.(IntoEncoder); fast {
		ie.EncodeInto(ws, msg, dst)
		return
	}
	c.Encode(msg).CopyInto(dst)
}

// ReproduceInto is Reproduce with caller-owned scratch: dst (length
// c.N()) receives the recovered response on ok=true and holds
// unspecified scratch on ok=false. Output is bit-identical to Reproduce
// on the same inputs.
func ReproduceInto(c Code, o Offset, response bitvec.Vector, ws *Workspace, dst bitvec.Vector) (corrected int, ok bool) {
	checkLen("response", response.Len(), c.N())
	checkLen("offset", o.W.Len(), c.N())
	checkLen("reproduce buffer", dst.Len(), c.N())
	buf := ws.vec(&ws.xorBuf, c.N())
	o.W.XorInto(response, buf)
	if id, fast := c.(IntoDecoder); fast {
		corrected, ok = id.DecodeInto(ws, buf, dst)
	} else {
		var cw bitvec.Vector
		cw, corrected, ok = c.Decode(buf)
		if ok {
			cw.CopyInto(dst)
		}
	}
	if !ok {
		return corrected, false
	}
	o.W.XorInto(dst, dst)
	return corrected, true
}
