package ecc

import (
	"fmt"

	"repro/internal/bitvec"
)

// Block composes an inner code over several independent blocks, matching
// the paper's remark that "incoming bits are clustered in blocks, which
// are all error-corrected independently" and that "extension to multiple
// blocks is fairly straightforward". Encode/Decode operate on the
// concatenation; the composite fails as soon as any single block fails.
type Block struct {
	inner  Code
	blocks int
	// innerInto is the inner code's allocation-free decoder, cached at
	// construction; nil when the inner code only implements Decode.
	innerInto IntoDecoder
	// innerEnc is the inner code's allocation-free encoder, cached at
	// construction; nil when the inner code only implements Encode.
	innerEnc IntoEncoder
}

// NewBlock wraps inner over the given number of blocks. It panics if
// blocks < 1, a construction-time programming error, and rejects a Block
// inner code (nesting would re-enter the per-block workspace buffers).
func NewBlock(inner Code, blocks int) *Block {
	if blocks < 1 {
		panic("ecc: block count must be at least 1")
	}
	if _, nested := inner.(*Block); nested {
		panic("ecc: Block cannot nest another Block")
	}
	b := &Block{inner: inner, blocks: blocks}
	b.innerInto, _ = inner.(IntoDecoder)
	b.innerEnc, _ = inner.(IntoEncoder)
	return b
}

// Inner returns the per-block code.
func (b *Block) Inner() Code { return b.inner }

// Blocks returns the block count.
func (b *Block) Blocks() int { return b.blocks }

// N returns blocks * inner.N().
func (b *Block) N() int { return b.blocks * b.inner.N() }

// K returns blocks * inner.K().
func (b *Block) K() int { return b.blocks * b.inner.K() }

// T returns the per-block correction radius. Note this is NOT a global
// radius: t+1 errors concentrated in one block fail while blocks*t errors
// spread evenly succeed. The attacks exploit exactly this distinction, so
// the semantics are per-block by design.
func (b *Block) T() int { return b.inner.T() }

// Encode encodes each K-bit slice independently and concatenates.
func (b *Block) Encode(msg bitvec.Vector) bitvec.Vector {
	checkLen("message", msg.Len(), b.K())
	out := bitvec.New(0)
	ik := b.inner.K()
	for i := 0; i < b.blocks; i++ {
		out = out.Concat(b.inner.Encode(msg.Slice(i*ik, (i+1)*ik)))
	}
	return out
}

// EncodeInto implements IntoEncoder block by block: each K-bit message
// slice is extracted into a workspace buffer, encoded (through the inner
// code's own EncodeInto when it has one), and written back into dst
// word-level.
func (b *Block) EncodeInto(ws *Workspace, msg, dst bitvec.Vector) {
	checkLen("message", msg.Len(), b.K())
	checkLen("encode buffer", dst.Len(), b.N())
	ik, in := b.inner.K(), b.inner.N()
	m := ws.vec(&ws.blockMsg, ik)
	out := ws.vec(&ws.blockOut, in)
	for i := 0; i < b.blocks; i++ {
		msg.SliceInto(i*ik, (i+1)*ik, m)
		if b.innerEnc != nil {
			b.innerEnc.EncodeInto(ws, m, out)
			dst.PutAt(i*in, out)
		} else {
			dst.PutAt(i*in, b.inner.Encode(m))
		}
	}
}

// Decode decodes each block independently. corrected sums over blocks; ok
// is the conjunction of per-block outcomes (decoding continues past a
// failed block so the total correction count stays meaningful).
func (b *Block) Decode(received bitvec.Vector) (bitvec.Vector, int, bool) {
	var ws Workspace
	out := bitvec.New(b.N())
	total, allOK := b.DecodeInto(&ws, received, out)
	return out, total, allOK
}

// DecodeInto implements IntoDecoder block by block: each inner block is
// sliced into a workspace buffer, decoded (through the inner code's own
// DecodeInto when it has one), and written back into dst word-level. As
// in Decode, a failed block contributes its received bits to dst and
// decoding continues.
func (b *Block) DecodeInto(ws *Workspace, received, dst bitvec.Vector) (int, bool) {
	checkLen("received word", received.Len(), b.N())
	checkLen("decode buffer", dst.Len(), b.N())
	in := b.inner.N()
	recv := ws.vec(&ws.blockRecv, in)
	out := ws.vec(&ws.blockOut, in)
	total := 0
	allOK := true
	for i := 0; i < b.blocks; i++ {
		received.SliceInto(i*in, (i+1)*in, recv)
		var corrected int
		var ok bool
		if b.innerInto != nil {
			corrected, ok = b.innerInto.DecodeInto(ws, recv, out)
			dst.PutAt(i*in, out)
		} else {
			var cw bitvec.Vector
			cw, corrected, ok = b.inner.Decode(recv)
			dst.PutAt(i*in, cw)
		}
		total += corrected
		allOK = allOK && ok
	}
	return total, allOK
}

// Message extracts and concatenates the message bits of every block.
func (b *Block) Message(codeword bitvec.Vector) bitvec.Vector {
	checkLen("codeword", codeword.Len(), b.N())
	in := b.inner.N()
	out := bitvec.New(0)
	for i := 0; i < b.blocks; i++ {
		out = out.Concat(b.inner.Message(codeword.Slice(i*in, (i+1)*in)))
	}
	return out
}

// ContainsAllOnes holds iff the inner code contains all-ones (the
// composite all-ones word is all blocks at all-ones).
func (b *Block) ContainsAllOnes() bool { return b.inner.ContainsAllOnes() }

// String implements fmt.Stringer.
func (b *Block) String() string {
	return fmt.Sprintf("%d x %s", b.blocks, b.inner)
}
