package ecc

import (
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

// TestGolayBMatrixProperties pins the defining algebra of the extended
// Golay generator: B is symmetric and self-inverse over GF(2).
func TestGolayBMatrixProperties(t *testing.T) {
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			if golayB[i]>>uint(j)&1 != golayB[j]>>uint(i)&1 {
				t.Fatalf("B not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// B*B = I: row i of B times B equals the unit vector u_i.
	for i := 0; i < 12; i++ {
		if mulB(golayB[i]) != 1<<uint(i) {
			t.Fatalf("B*B != I at row %d: %012b", i, mulB(golayB[i]))
		}
	}
}

// TestGolayWeightDistribution checks minimum distance 7 on the
// punctured code by exhaustive enumeration of all 4096 codewords.
func TestGolayWeightDistribution(t *testing.T) {
	g := NewGolay()
	minW := 24
	counts := map[int]int{}
	for m := 0; m < 1<<12; m++ {
		msg := bitvec.New(12)
		for i := 0; i < 12; i++ {
			if m>>uint(i)&1 == 1 {
				msg.Set(i, true)
			}
		}
		w := g.Encode(msg).Weight()
		counts[w]++
		if w != 0 && w < minW {
			minW = w
		}
	}
	if minW != 7 {
		t.Fatalf("minimum nonzero weight %d, want 7", minW)
	}
	// The (23,12,7) weight distribution: A7 = 253, A8 = 506.
	if counts[7] != 253 || counts[8] != 506 {
		t.Fatalf("A7=%d A8=%d, want 253/506", counts[7], counts[8])
	}
}

func TestGolayCorrectsAllThreeErrorPatterns(t *testing.T) {
	// Exhaustive over all C(23,1)+C(23,2)+C(23,3) = 2047 patterns on a
	// sample of messages — the perfect code must correct every one.
	g := NewGolay()
	r := rng.New(1)
	for trial := 0; trial < 5; trial++ {
		msg := randMsg(r, 12)
		cw := g.Encode(msg)
		check := func(positions ...int) {
			recv := cw.Clone()
			for _, p := range positions {
				recv.Flip(p)
			}
			dec, corrected, ok := g.Decode(recv)
			if !ok || !dec.Equal(cw) || corrected != len(positions) {
				t.Fatalf("pattern %v: ok=%v corrected=%d equal=%v",
					positions, ok, corrected, dec.Equal(cw))
			}
		}
		check() // zero errors
		for a := 0; a < 23; a++ {
			check(a)
			for b := a + 1; b < 23; b++ {
				check(a, b)
				for c := b + 1; c < 23; c++ {
					check(a, b, c)
				}
			}
		}
	}
}

func TestGolayPerfectCodeMiscorrects(t *testing.T) {
	// Beyond t=3 a perfect code never signals failure; it miscorrects
	// to a DIFFERENT codeword (weight-4 patterns sit at distance 3 from
	// some other codeword).
	g := NewGolay()
	r := rng.New(2)
	for trial := 0; trial < 50; trial++ {
		cw := g.Encode(randMsg(r, 12))
		recv := cw.Clone()
		flipRandom(r, recv, 4)
		dec, _, ok := g.Decode(recv)
		if !ok {
			t.Fatal("perfect code reported failure")
		}
		if dec.Equal(cw) {
			t.Fatal("4 errors decoded back to the original codeword")
		}
		if !IsCodeword(g, dec) {
			t.Fatal("decode output is not a codeword")
		}
	}
}

func TestGolayMessageRoundTrip(t *testing.T) {
	g := NewGolay()
	f := func(seed uint64) bool {
		r := rng.New(seed)
		msg := randMsg(r, 12)
		return g.Message(g.Encode(msg)).Equal(msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGolayContainsAllOnes(t *testing.T) {
	if !NewGolay().ContainsAllOnes() {
		t.Fatal("the perfect Golay code is complement-closed; all-ones must be a codeword")
	}
}

func TestGolayLinearity(t *testing.T) {
	g := NewGolay()
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m1, m2 := randMsg(r, 12), randMsg(r, 12)
		return g.Encode(m1).Xor(g.Encode(m2)).Equal(g.Encode(m1.Xor(m2)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGolayInCodeOffset(t *testing.T) {
	// The Golay code drops into the code-offset construction like any
	// other Code.
	r := rng.New(3)
	g := NewGolay()
	resp := randMsg(r, 23)
	off := EnrollOffset(g, resp, r)
	noisy := resp.Clone()
	flipRandom(r, noisy, 3)
	got, corrected, ok := Reproduce(g, off, noisy)
	if !ok || corrected != 3 || !got.Equal(resp) {
		t.Fatalf("code-offset reproduce failed: ok=%v corrected=%d", ok, corrected)
	}
}

func BenchmarkGolayDecode(b *testing.B) {
	g := NewGolay()
	r := rng.New(1)
	cw := g.Encode(randMsg(r, 12))
	recv := cw.Clone()
	flipRandom(r, recv, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = g.Decode(recv)
	}
}
