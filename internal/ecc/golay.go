package ecc

import (
	"repro/internal/bitvec"
)

// Golay is the perfect binary Golay code (23, 12, 7), the other classic
// choice (next to BCH) in the fuzzy-extractor literature the paper
// references. Encoding and decoding go through the extended (24, 12, 8)
// code with the standard arithmetic decoding algorithm based on the
// 12x12 matrix B with B = Bᵀ and B·B = I (Lin & Costello's error
// trapping for the extended Golay): a received 23-bit word is extended
// with a parity bit chosen to make its total weight odd, which
// guarantees the 24-bit word is within distance 3 of a codeword whenever
// at most 3 channel errors occurred.
//
// Being perfect, the (23, 12) code decodes EVERY 23-bit word to some
// codeword — there are no decoding failures, only miscorrections beyond
// t = 3. That behavioural difference from bounded-distance BCH matters
// to the failure-rate oracle and is pinned by tests.
type Golay struct{}

// NewGolay returns the (23, 12, 7) Golay code.
func NewGolay() *Golay { return &Golay{} }

// golayB is the standard 12x12 matrix of the [I | B] generator of the
// extended Golay code, rows packed LSB-first in uint16.
var golayB = [12]uint16{
	// column index:   0..11, bit j of row i = B[i][j]
	0b111111111110, // 0 1 1 1 1 1 1 1 1 1 1 1
	0b010001110111, // 1 1 1 0 1 1 1 0 0 0 1 0
	0b101000111011, // 1 1 0 1 1 1 0 0 0 1 0 1
	0b110100011101, // 1 0 1 1 1 0 0 0 1 0 1 1
	0b011010001111, // 1 1 1 1 0 0 0 1 0 1 1 0
	0b101101000111, // 1 1 1 0 0 0 1 0 1 1 0 1
	0b110110100011, // 1 1 0 0 0 1 0 1 1 0 1 1
	0b111011010001, // 1 0 0 0 1 0 1 1 0 1 1 1
	0b011101101001, // 1 0 0 1 0 1 1 0 1 1 1 0
	0b001110110101, // 1 0 1 0 1 1 0 1 1 1 0 0
	0b000111011011, // 1 1 0 1 1 0 1 1 1 0 0 0
	0b100011101101, // 1 0 1 1 0 1 1 1 0 0 0 1
}

// bRow returns row i of B as a 12-bit mask.
func bRow(i int) uint16 { return golayB[i] }

// mulB returns v * B for a 12-bit row vector v.
func mulB(v uint16) uint16 {
	var out uint16
	for i := 0; i < 12; i++ {
		if v>>uint(i)&1 == 1 {
			out ^= golayB[i]
		}
	}
	return out
}

func weight12(v uint16) int {
	count := 0
	for v != 0 {
		v &= v - 1
		count++
	}
	return count
}

// N returns 23.
func (g *Golay) N() int { return 23 }

// K returns 12.
func (g *Golay) K() int { return 12 }

// T returns 3.
func (g *Golay) T() int { return 3 }

// encode24 maps a 12-bit message to the extended 24-bit codeword
// [msg | msg*B], both halves packed LSB-first.
func encode24(msg uint16) (left, right uint16) {
	return msg, mulB(msg)
}

// Encode produces the 23-bit codeword: the extended codeword with its
// LAST parity coordinate punctured.
func (g *Golay) Encode(msg bitvec.Vector) bitvec.Vector {
	checkLen("message", msg.Len(), 12)
	var m uint16
	for i := 0; i < 12; i++ {
		if msg.Get(i) {
			m |= 1 << uint(i)
		}
	}
	left, right := encode24(m)
	out := bitvec.New(23)
	for i := 0; i < 12; i++ {
		if left>>uint(i)&1 == 1 {
			out.Set(i, true)
		}
	}
	for i := 0; i < 11; i++ { // right bit 11 is punctured
		if right>>uint(i)&1 == 1 {
			out.Set(12+i, true)
		}
	}
	return out
}

// EncodeInto implements IntoEncoder; the arithmetic runs in packed
// uint16 halves, so ws may be nil.
func (g *Golay) EncodeInto(_ *Workspace, msg, dst bitvec.Vector) {
	checkLen("message", msg.Len(), 12)
	checkLen("encode buffer", dst.Len(), 23)
	var m uint16
	for i := 0; i < 12; i++ {
		if msg.Get(i) {
			m |= 1 << uint(i)
		}
	}
	left, right := encode24(m)
	dst.Zero()
	for i := 0; i < 12; i++ {
		if left>>uint(i)&1 == 1 {
			dst.Set(i, true)
		}
	}
	for i := 0; i < 11; i++ { // right bit 11 is punctured
		if right>>uint(i)&1 == 1 {
			dst.Set(12+i, true)
		}
	}
}

// decode24 finds the error pattern of an extended received word
// (left, right) with at most 3 errors. ok=false when no weight-<=3
// pattern exists (4 detected errors).
func decode24(left, right uint16) (eLeft, eRight uint16, ok bool) {
	// Syndrome s = left + right*B ... with G = [I | B] and H = [B | I]
	// (B symmetric, B*B = I): s = left*B + right? Use the standard
	// formulation: s = r_left * B^T + r_right = mulB(left) ^ right.
	s := mulB(left) ^ right
	if weight12(s) <= 3 {
		// Errors confined to the right half... wait: s = e_left*B +
		// e_right; if e_left = 0 then s = e_right.
		return 0, s, true
	}
	for i := 0; i < 12; i++ {
		if weight12(s^bRow(i)) <= 2 {
			// e_left = u_i, e_right = s + b_i.
			return 1 << uint(i), s ^ bRow(i), true
		}
	}
	sb := mulB(s)
	if weight12(sb) <= 3 {
		// e_left = s*B, e_right = 0.
		return sb, 0, true
	}
	for i := 0; i < 12; i++ {
		if weight12(sb^bRow(i)) <= 2 {
			return sb ^ bRow(i), 1 << uint(i), true
		}
	}
	return 0, 0, false
}

// Decode corrects up to 3 errors in a 23-bit word. As a perfect code it
// always returns a codeword; ok is always true. corrected counts the
// bit flips applied.
func (g *Golay) Decode(received bitvec.Vector) (bitvec.Vector, int, bool) {
	out := bitvec.New(23)
	corrected, ok := g.DecodeInto(nil, received, out)
	if !ok {
		return received, corrected, false
	}
	return out, corrected, true
}

// DecodeInto implements IntoDecoder; the arithmetic decoder works in
// packed uint16 halves, so ws may be nil.
func (g *Golay) DecodeInto(_ *Workspace, received, dst bitvec.Vector) (int, bool) {
	checkLen("received word", received.Len(), 23)
	checkLen("decode buffer", dst.Len(), 23)
	var left, right uint16
	for i := 0; i < 12; i++ {
		if received.Get(i) {
			left |= 1 << uint(i)
		}
	}
	for i := 0; i < 11; i++ {
		if received.Get(12 + i) {
			right |= 1 << uint(i)
		}
	}
	// Try both values of the punctured coordinate; the parity trick
	// (choose the bit making total weight odd) finds the answer with
	// <= 3 channel errors, but trying both and keeping the lower
	// correction count also handles the boundary cleanly.
	best := -1
	var bestLeft, bestRight uint16
	for p := uint16(0); p <= 1; p++ {
		r := right | p<<11
		eL, eR, ok := decode24(left, r)
		if !ok {
			continue
		}
		// Count corrections on the 23 transmitted coordinates only.
		count := weight12(eL) + weight12(eR&0x7ff)
		if best == -1 || count < best {
			best = count
			bestLeft, bestRight = left^eL, r^eR
		}
	}
	if best == -1 || best > 3 {
		// Cannot happen for a perfect code, but keep the contract
		// honest.
		received.CopyInto(dst)
		return 0, false
	}
	dst.Zero()
	for i := 0; i < 12; i++ {
		if bestLeft>>uint(i)&1 == 1 {
			dst.Set(i, true)
		}
	}
	for i := 0; i < 11; i++ {
		if bestRight>>uint(i)&1 == 1 {
			dst.Set(12+i, true)
		}
	}
	return best, true
}

// Message extracts the systematic 12 message bits.
func (g *Golay) Message(codeword bitvec.Vector) bitvec.Vector {
	checkLen("codeword", codeword.Len(), 23)
	return codeword.Slice(0, 12)
}

// ContainsAllOnes reports true: the all-ones 23-tuple is a codeword of
// the perfect Golay code (its complement-closedness), so the §VI-A
// complement ambiguity applies to block-aligned Golay deployments.
func (g *Golay) ContainsAllOnes() bool {
	return IsCodeword(g, bitvec.Ones(23))
}

// String implements fmt.Stringer.
func (g *Golay) String() string { return "Golay(23,12,3)" }
