package ecc

import (
	"repro/internal/bitvec"
	"repro/internal/rng"
)

// The code-offset construction (Dodis et al., the paper's reference [2])
// is the canonical secure sketch: at enrollment the device draws a random
// codeword c and publishes w = response XOR c as helper data; at
// reconstruction it computes w XOR response', decodes the result back to
// c, and recovers the enrolled response as w XOR c. The helper word w is
// exactly the "ECC redundancy" block of the paper's figures 4 and 7 — and
// the object the attacks overwrite.

// Offset is the public helper data of a code-offset sketch together with
// the code it was generated for.
type Offset struct {
	// W is the published offset, length code.N().
	W bitvec.Vector
}

// EnrollOffset draws a uniformly random codeword using src and returns the
// helper offset for the given enrollment response. The response length
// must equal c.N().
func EnrollOffset(c Code, response bitvec.Vector, src *rng.Source) Offset {
	checkLen("response", response.Len(), c.N())
	msg := bitvec.New(c.K())
	for i := 0; i < c.K(); i++ {
		msg.Set(i, src.Bool())
	}
	return Offset{W: response.Xor(c.Encode(msg))}
}

// OffsetFor returns the helper offset that binds the given target response
// to the specific codeword encode(msg). Attacks use this to craft helper
// data for a hypothesized response.
func OffsetFor(c Code, response, msg bitvec.Vector) Offset {
	checkLen("response", response.Len(), c.N())
	return Offset{W: response.Xor(c.Encode(msg))}
}

// OffsetForInto is OffsetFor with caller-owned scratch: dst (length
// c.N()) receives the offset binding response to encode(msg). The attack
// layer calls this once per hypothesis arm, so the encode path must not
// allocate; output is bit-identical to OffsetFor.
func OffsetForInto(c Code, response, msg bitvec.Vector, ws *Workspace, dst bitvec.Vector) {
	checkLen("response", response.Len(), c.N())
	EncodeTo(c, ws, msg, dst)
	response.XorInto(dst, dst)
}

// Reproduce attempts to recover the enrolled response from a fresh noisy
// response reading. It returns the recovered response and ok=false when
// decoding fails (error count beyond the radius). corrected is the number
// of bit errors the decoder repaired.
func Reproduce(c Code, o Offset, response bitvec.Vector) (recovered bitvec.Vector, corrected int, ok bool) {
	var ws Workspace
	dst := bitvec.New(c.N())
	corrected, ok = ReproduceInto(c, o, response, &ws, dst)
	if !ok {
		return bitvec.Vector{}, corrected, false
	}
	return dst, corrected, true
}

// ConsistentWith reports whether candidate could be the enrolled response
// for offset o: w XOR candidate must be a codeword. This is the offline
// check an attacker runs on the two remaining key candidates of the
// sequential-pairing attack; it succeeds for both candidates exactly when
// the code contains the all-ones word.
func ConsistentWith(c Code, o Offset, candidate bitvec.Vector) bool {
	if candidate.Len() != c.N() || o.W.Len() != c.N() {
		return false
	}
	return IsCodeword(c, o.W.Xor(candidate))
}
