// Package ecc implements the error-correcting codes and the code-offset
// helper-data construction used by every PUF key generator in this
// repository.
//
// The paper under reproduction (Delvaux & Verbauwhede, DATE 2014) assumes
// each construction ends in "an ECC able to correct t errors per block"
// whose redundancy is public helper data. The attacks observe whether the
// error count at the ECC input exceeds t, so the code's exact behaviour at
// and beyond its correction radius matters. Three code families are
// provided:
//
//   - Repetition codes (the degenerate but instructive case),
//   - binary BCH codes (the standard choice in the PUF literature),
//     including shortened and expurgated variants, and
//   - Block composition, splitting long responses over several blocks.
//
// The expurgated variant exists for a reason specific to the paper: the
// final step of the sequential-pairing attack must distinguish a key K
// from its complement ¬K by "comparing the performance of two sets of ECC
// helper data". That only works when the all-ones word is NOT a codeword;
// narrow-sense BCH codes always contain it, expurgated ones never do.
package ecc

import (
	"fmt"

	"repro/internal/bitvec"
)

// Code is a binary block code with bounded-distance decoding.
type Code interface {
	// N returns the codeword length in bits.
	N() int
	// K returns the message length in bits.
	K() int
	// T returns the guaranteed error-correction radius.
	T() int
	// Encode maps a K-bit message to an N-bit codeword.
	// It panics if msg.Len() != K.
	Encode(msg bitvec.Vector) bitvec.Vector
	// Decode corrects up to T errors in an N-bit received word. It
	// returns the corrected codeword, the number of bit errors it
	// corrected, and ok=false when the error pattern is detected to be
	// uncorrectable. A decoder may also miscorrect silently when the
	// pattern exceeds T; both outcomes count as key-reconstruction
	// failure at the system level.
	Decode(received bitvec.Vector) (codeword bitvec.Vector, corrected int, ok bool)
	// Message extracts the K message bits from a codeword.
	Message(codeword bitvec.Vector) bitvec.Vector
	// ContainsAllOnes reports whether the all-ones word is a codeword.
	// See the package comment for why attacks care.
	ContainsAllOnes() bool
	// String returns a short human-readable descriptor, e.g. "BCH(127,64,10)".
	String() string
}

// IsCodeword reports whether w decodes to itself with zero corrections.
func IsCodeword(c Code, w bitvec.Vector) bool {
	if w.Len() != c.N() {
		return false
	}
	cw, corrected, ok := c.Decode(w)
	return ok && corrected == 0 && cw.Equal(w)
}

// checkLen panics with a descriptive message on length mismatch; encoding
// and decoding length errors are programming errors, not runtime inputs.
func checkLen(what string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("ecc: %s length %d, want %d", what, got, want))
	}
}
