package ecc

import (
	"fmt"

	"repro/internal/bitvec"
)

// Repetition is the (n, 1) repetition code with n = 2t+1. Decoding is a
// majority vote. It is the simplest code satisfying the paper's "corrects
// t errors per block" abstraction and serves as a reference point in the
// ablation benches: its all-ones word IS a codeword, so the complement
// ambiguity of the sequential-pairing attack is unresolvable with it.
type Repetition struct {
	t int
}

// NewRepetition returns the (2t+1, 1) repetition code. It panics if t < 0.
func NewRepetition(t int) *Repetition {
	if t < 0 {
		panic("ecc: negative correction radius")
	}
	return &Repetition{t: t}
}

// N returns 2t+1.
func (r *Repetition) N() int { return 2*r.t + 1 }

// K returns 1.
func (r *Repetition) K() int { return 1 }

// T returns the correction radius t.
func (r *Repetition) T() int { return r.t }

// Encode repeats the single message bit n times.
func (r *Repetition) Encode(msg bitvec.Vector) bitvec.Vector {
	checkLen("message", msg.Len(), 1)
	out := bitvec.New(r.N())
	if msg.Get(0) {
		out = bitvec.Ones(r.N())
	}
	return out
}

// EncodeInto implements IntoEncoder; the repeated bit is written with
// word-level fills, so ws may be nil.
func (r *Repetition) EncodeInto(_ *Workspace, msg, dst bitvec.Vector) {
	checkLen("message", msg.Len(), 1)
	checkLen("encode buffer", dst.Len(), r.N())
	if msg.Get(0) {
		dst.SetAll()
	} else {
		dst.Zero()
	}
}

// Decode takes a majority vote. With n odd the vote never ties, so ok is
// always true; patterns beyond t miscorrect silently. The vote itself is
// word-parallel: Weight counts set bits a 64-bit word at a time through
// the hardware popcount, and the winning codeword is written with
// word-level fills (see DecodeInto).
func (r *Repetition) Decode(received bitvec.Vector) (bitvec.Vector, int, bool) {
	cw := bitvec.New(r.N())
	corrected, ok := r.DecodeInto(nil, received, cw)
	return cw, corrected, ok
}

// DecodeInto implements IntoDecoder; the majority vote needs no
// workspace scratch, so ws may be nil.
func (r *Repetition) DecodeInto(_ *Workspace, received, dst bitvec.Vector) (int, bool) {
	checkLen("received word", received.Len(), r.N())
	checkLen("decode buffer", dst.Len(), r.N())
	w := received.Weight()
	if w > r.t {
		dst.SetAll()
		return r.N() - w, true
	}
	dst.Zero()
	return w, true
}

// Message returns the first bit of the codeword.
func (r *Repetition) Message(codeword bitvec.Vector) bitvec.Vector {
	checkLen("codeword", codeword.Len(), r.N())
	out := bitvec.New(1)
	out.Set(0, codeword.Get(0))
	return out
}

// ContainsAllOnes always reports true: the all-ones word encodes bit 1.
func (r *Repetition) ContainsAllOnes() bool { return true }

// String implements fmt.Stringer.
func (r *Repetition) String() string {
	return fmt.Sprintf("Rep(%d,1,%d)", r.N(), r.t)
}
