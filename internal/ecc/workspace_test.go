package ecc

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

// randomWord returns an n-bit vector with each bit set with probability
// roughly errRate-ish noise applied to a random codeword of c.
func noisyCodeword(t *testing.T, c Code, src *rng.Source, flips int) bitvec.Vector {
	t.Helper()
	msg := bitvec.New(c.K())
	for i := 0; i < msg.Len(); i++ {
		msg.Set(i, src.Bool())
	}
	w := c.Encode(msg)
	for f := 0; f < flips; f++ {
		w.Flip(src.Intn(w.Len()))
	}
	return w
}

// TestDecodeIntoMatchesDecode sweeps every code family across error
// weights from zero to beyond the radius and checks that the workspace
// decoder reproduces Decode bit-for-bit: same corrected count, same ok,
// same output word (received echoed on failure), with a SHARED workspace
// across calls so buffer-reuse bugs cannot hide.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	codes := []Code{
		NewRepetition(3),
		NewGolay(),
		MustBCH(BCHConfig{M: 5, T: 3}),
		MustBCH(BCHConfig{M: 5, T: 3, Expurgate: true}),
		MustBCH(BCHConfig{M: 6, T: 4, Shorten: 5}),
		NewBlock(MustBCH(BCHConfig{M: 5, T: 3}), 3),
		NewBlock(NewGolay(), 2),
	}
	src := rng.New(2024)
	for _, c := range codes {
		id, ok := c.(IntoDecoder)
		if !ok {
			t.Fatalf("%s does not implement IntoDecoder", c)
		}
		var ws Workspace
		dst := bitvec.New(c.N())
		for flips := 0; flips <= c.T()+2; flips++ {
			for trial := 0; trial < 25; trial++ {
				w := noisyCodeword(t, c, src, flips)
				wantCW, wantCorr, wantOK := c.Decode(w)
				gotCorr, gotOK := id.DecodeInto(&ws, w, dst)
				if gotCorr != wantCorr || gotOK != wantOK {
					t.Fatalf("%s flips=%d: DecodeInto (%d,%v) != Decode (%d,%v)",
						c, flips, gotCorr, gotOK, wantCorr, wantOK)
				}
				// Decode's first return is the corrected word on ok and
				// the received word (per failed block, for Block) on
				// failure; DecodeInto must reproduce it either way.
				if !dst.Equal(wantCW) {
					t.Fatalf("%s flips=%d ok=%v: output words differ", c, flips, wantOK)
				}
			}
		}
	}
}

// TestReproduceIntoMatchesReproduce pins the code-offset scratch path.
func TestReproduceIntoMatchesReproduce(t *testing.T) {
	src := rng.New(77)
	c := NewBlock(MustBCH(BCHConfig{M: 5, T: 3}), 2)
	resp := bitvec.New(c.N())
	for i := 0; i < resp.Len(); i++ {
		resp.Set(i, src.Bool())
	}
	o := EnrollOffset(c, resp, src)
	var ws Workspace
	dst := bitvec.New(c.N())
	for flips := 0; flips <= c.T()+2; flips++ {
		noisy := resp.Clone()
		for f := 0; f < flips; f++ {
			noisy.Flip(src.Intn(noisy.Len()))
		}
		wantRec, wantCorr, wantOK := Reproduce(c, o, noisy)
		gotCorr, gotOK := ReproduceInto(c, o, noisy, &ws, dst)
		if gotCorr != wantCorr || gotOK != wantOK {
			t.Fatalf("flips=%d: ReproduceInto (%d,%v) != Reproduce (%d,%v)",
				flips, gotCorr, gotOK, wantCorr, wantOK)
		}
		if wantOK && !dst.Equal(wantRec) {
			t.Fatalf("flips=%d: recovered responses differ", flips)
		}
	}
}

// TestEncodeIntoMatchesEncode sweeps every code family over random
// messages and checks the workspace encoder against Encode bit-for-bit,
// with a SHARED workspace across calls so buffer-reuse bugs cannot hide.
func TestEncodeIntoMatchesEncode(t *testing.T) {
	codes := []Code{
		NewRepetition(3),
		NewGolay(),
		MustBCH(BCHConfig{M: 5, T: 3}),
		MustBCH(BCHConfig{M: 5, T: 3, Expurgate: true}),
		MustBCH(BCHConfig{M: 6, T: 4, Shorten: 5}),
		NewBlock(MustBCH(BCHConfig{M: 5, T: 3}), 3),
		NewBlock(NewGolay(), 2),
	}
	src := rng.New(4096)
	for _, c := range codes {
		ie, ok := c.(IntoEncoder)
		if !ok {
			t.Fatalf("%s does not implement IntoEncoder", c)
		}
		var ws Workspace
		dst := bitvec.New(c.N())
		for trial := 0; trial < 50; trial++ {
			msg := bitvec.New(c.K())
			for i := 0; i < msg.Len(); i++ {
				msg.Set(i, src.Bool())
			}
			want := c.Encode(msg)
			ie.EncodeInto(&ws, msg, dst)
			if !dst.Equal(want) {
				t.Fatalf("%s trial %d: EncodeInto differs from Encode", c, trial)
			}
		}
	}
}

// TestOffsetForIntoMatchesOffsetFor pins the attack layer's crafted
// offset fast path against the allocating original.
func TestOffsetForIntoMatchesOffsetFor(t *testing.T) {
	src := rng.New(88)
	c := NewBlock(MustBCH(BCHConfig{M: 5, T: 3}), 2)
	var ws Workspace
	dst := bitvec.New(c.N())
	for trial := 0; trial < 25; trial++ {
		resp := bitvec.New(c.N())
		for i := 0; i < resp.Len(); i++ {
			resp.Set(i, src.Bool())
		}
		msg := bitvec.New(c.K())
		for i := 0; i < msg.Len(); i++ {
			msg.Set(i, src.Bool())
		}
		want := OffsetFor(c, resp, msg)
		OffsetForInto(c, resp, msg, &ws, dst)
		if !dst.Equal(want.W) {
			t.Fatalf("trial %d: OffsetForInto differs from OffsetFor", trial)
		}
	}
}

// TestEncodeIntoSteadyStateAllocs pins the encode fast path's
// allocation-free steady state (the attack layer calls it once per
// hypothesis arm).
func TestEncodeIntoSteadyStateAllocs(t *testing.T) {
	c := NewBlock(MustBCH(BCHConfig{M: 5, T: 3, Expurgate: true}), 2)
	src := rng.New(99)
	msg := bitvec.New(c.K())
	for i := 0; i < msg.Len(); i++ {
		msg.Set(i, src.Bool())
	}
	var ws Workspace
	dst := bitvec.New(c.N())
	c.EncodeInto(&ws, msg, dst) // grow the workspace
	if got := testing.AllocsPerRun(50, func() { c.EncodeInto(&ws, msg, dst) }); got > 0 {
		t.Fatalf("EncodeInto allocates %.1f/op in steady state", got)
	}
}
