package ecc

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/galois"
)

// BCH is a binary primitive BCH code of full length 2^m - 1, optionally
// expurgated (even-weight subcode) and/or shortened by s positions.
//
// Construction follows the textbook recipe: the generator polynomial is
// the least common multiple of the minimal polynomials of alpha^1 ..
// alpha^(2t) over GF(2); expurgation additionally multiplies in the
// minimal polynomial of alpha^0 = 1, i.e. (x + 1), unless it is already a
// factor. Decoding computes 2t syndromes, runs Berlekamp-Massey to find
// the error-locator polynomial and locates errors with a Chien search.
type BCH struct {
	field      *galois.Field
	fullN      int // 2^m - 1
	n, k, t    int // transmitted parameters (after shortening)
	shorten    int
	expurgated bool
	gen        galois.Poly   // generator over GF(2), coefficients 0/1
	genSupport []int         // indices of the generator's nonzero coefficients
	chienStep  []galois.Elem // chienStep[j] = alpha^(-j), j in [0, t]
	// syndTable[j-1][i] = alpha^(i*j): the per-bit syndrome
	// contributions, precomputed so the decoder's inner loop is a table
	// XOR instead of exponent arithmetic. Nil when the table would be
	// unreasonably large (huge fields), falling back to Exp.
	syndTable [][]galois.Elem
	numSynd   int // syndromes evaluated during decoding
}

// BCHConfig selects a BCH code.
type BCHConfig struct {
	// M is the extension degree; the full code length is 2^M - 1.
	M int
	// T is the number of errors the code must correct.
	T int
	// Shorten removes this many leading message positions (default 0).
	Shorten int
	// Expurgate selects the even-weight subcode, which excludes the
	// all-ones word and loses one message bit.
	Expurgate bool
}

// NewBCH constructs the BCH code described by cfg. It returns an error if
// the parameters are inconsistent (t too large for the length, shortening
// beyond the message length, and so on).
func NewBCH(cfg BCHConfig) (*BCH, error) {
	if cfg.M < 3 || cfg.M > 16 {
		return nil, fmt.Errorf("ecc: BCH extension degree %d outside [3,16]", cfg.M)
	}
	if cfg.T < 1 {
		return nil, fmt.Errorf("ecc: BCH correction radius %d < 1", cfg.T)
	}
	f := galois.NewField(cfg.M)
	fullN := f.Order()
	if 2*cfg.T >= fullN {
		return nil, fmt.Errorf("ecc: BCH t=%d too large for length %d", cfg.T, fullN)
	}

	// Generator = lcm of minimal polynomials of alpha^1 .. alpha^(2t).
	// Conjugates share a minimal polynomial, so gather distinct cosets.
	gen := galois.Poly{1}
	seen := make(map[int]bool)
	include := func(i int) {
		coset := f.CyclotomicCoset(i)
		leader := coset[0]
		for _, c := range coset {
			if c < leader {
				leader = c
			}
		}
		if seen[leader] {
			return
		}
		seen[leader] = true
		gen = f.PolyMul(gen, bitsToPoly(f.MinimalPolynomial(i)))
	}
	for i := 1; i <= 2*cfg.T; i++ {
		include(i)
	}
	if cfg.Expurgate {
		include(0) // multiplies in (x + 1) unless already present
	}

	k := fullN - gen.Degree()
	if k <= 0 {
		return nil, fmt.Errorf("ecc: BCH m=%d t=%d has no message bits (deg g = %d)", cfg.M, cfg.T, gen.Degree())
	}
	if cfg.Shorten < 0 || cfg.Shorten >= k {
		return nil, fmt.Errorf("ecc: shortening %d outside [0,%d)", cfg.Shorten, k)
	}
	numSynd := 2 * cfg.T
	if cfg.Expurgate {
		// Designed distance grows by one; the extra syndrome S_0 is the
		// overall parity, checked separately in Decode.
		numSynd = 2 * cfg.T
	}
	// Precompute the generator's support (EncodeInto reduces modulo g
	// with XORs over it) and the Chien-search step table alpha^(-j) for
	// every locator coefficient (the locator degree never exceeds t).
	support := make([]int, 0, len(gen))
	for i, c := range gen {
		if c != 0 {
			support = append(support, i)
		}
	}
	steps := make([]galois.Elem, cfg.T+1)
	for j := range steps {
		steps[j] = f.Exp(-j)
	}
	var syndTable [][]galois.Elem
	if fullN*numSynd <= 1<<20 {
		syndTable = make([][]galois.Elem, numSynd)
		for j := 1; j <= numSynd; j++ {
			row := make([]galois.Elem, fullN)
			step := f.Exp(j)
			row[0] = 1
			for i := 1; i < fullN; i++ {
				row[i] = f.Mul(row[i-1], step)
			}
			syndTable[j-1] = row
		}
	}
	return &BCH{
		field:      f,
		fullN:      fullN,
		n:          fullN - cfg.Shorten,
		k:          k - cfg.Shorten,
		t:          cfg.T,
		shorten:    cfg.Shorten,
		expurgated: cfg.Expurgate,
		gen:        gen,
		genSupport: support,
		chienStep:  steps,
		syndTable:  syndTable,
		numSynd:    numSynd,
	}, nil
}

// MustBCH is NewBCH for statically known-good parameters; it panics on error.
func MustBCH(cfg BCHConfig) *BCH {
	b, err := NewBCH(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// bitsToPoly converts a GF(2) polynomial packed in a uint64 into a Poly
// with 0/1 coefficients.
func bitsToPoly(bits uint64) galois.Poly {
	var p galois.Poly
	for i := 0; i < 64; i++ {
		if bits>>uint(i)&1 == 1 {
			for len(p) <= i {
				p = append(p, 0)
			}
			p[i] = 1
		}
	}
	return p
}

// N returns the transmitted codeword length (full length minus shortening).
func (b *BCH) N() int { return b.n }

// K returns the message length after shortening.
func (b *BCH) K() int { return b.k }

// T returns the design correction radius.
func (b *BCH) T() int { return b.t }

// Generator returns a copy of the generator polynomial (GF(2) coefficients).
func (b *BCH) Generator() galois.Poly { return b.gen.Clone() }

// Encode performs systematic encoding: the message occupies coefficient
// positions n-k..n-1 of the transmitted word and the parity, the remainder
// of x^(fullN-fullK) * u(x) modulo g(x), occupies positions 0..n-k-1.
func (b *BCH) Encode(msg bitvec.Vector) bitvec.Vector {
	checkLen("message", msg.Len(), b.k)
	parityLen := b.fullN - (b.k + b.shorten) // = deg g
	// Build x^(deg g) * u(x) over the full length; shortened positions
	// (the top b.shorten message slots) are implicitly zero.
	shifted := make(galois.Poly, b.fullN)
	for i := 0; i < b.k; i++ {
		if msg.Get(i) {
			shifted[parityLen+i] = 1
		}
	}
	_, rem := b.field.PolyDivMod(shifted, b.gen)
	out := bitvec.New(b.n)
	for i := 0; i < parityLen && i < len(rem); i++ {
		if rem[i] != 0 {
			out.Set(i, true)
		}
	}
	for i := 0; i < b.k; i++ {
		if msg.Get(i) {
			out.Set(parityLen+i, true)
		}
	}
	return out
}

// EncodeInto implements IntoEncoder: systematic encoding into a
// caller-owned dst of length N with no steady-state allocations. The
// parity computation reduces x^(deg g) * u(x) modulo g in the workspace's
// polynomial buffer — GF(2) coefficients, so cancellation is an XOR over
// the generator's support. Output is bit-identical to Encode.
func (b *BCH) EncodeInto(ws *Workspace, msg, dst bitvec.Vector) {
	checkLen("message", msg.Len(), b.k)
	checkLen("encode buffer", dst.Len(), b.n)
	parityLen := b.fullN - (b.k + b.shorten) // = deg g
	buf := elems(ws.encBuf, b.fullN)
	ws.encBuf = buf
	for i := 0; i < b.k; i++ {
		if msg.Get(i) {
			buf[parityLen+i] = 1
		}
	}
	for d := b.fullN - 1; d >= parityLen; d-- {
		if buf[d] == 0 {
			continue
		}
		for _, j := range b.genSupport {
			buf[d-parityLen+j] ^= 1
		}
	}
	dst.Zero()
	for i := 0; i < parityLen; i++ {
		if buf[i] != 0 {
			dst.Set(i, true)
		}
	}
	for i := 0; i < b.k; i++ {
		if msg.Get(i) {
			dst.Set(parityLen+i, true)
		}
	}
}

// Message extracts the systematic message bits from a codeword.
func (b *BCH) Message(codeword bitvec.Vector) bitvec.Vector {
	checkLen("codeword", codeword.Len(), b.n)
	parityLen := b.fullN - (b.k + b.shorten)
	return codeword.Slice(parityLen, b.n)
}

// syndromesInto computes S_1..S_numSynd where S_j = r(alpha^j) into the
// caller's buffer, growing it only when too small. With the precomputed
// power table the per-set-bit work is numSynd table XORs; the Exp
// fallback covers fields too large to table.
func (b *BCH) syndromesInto(buf []galois.Elem, received bitvec.Vector) []galois.Elem {
	synd := elems(buf, b.numSynd)
	if b.syndTable != nil {
		for i := received.NextSet(0); i >= 0; i = received.NextSet(i + 1) {
			for j := range synd {
				synd[j] ^= b.syndTable[j][i]
			}
		}
		return synd
	}
	f := b.field
	for i := received.NextSet(0); i >= 0; i = received.NextSet(i + 1) {
		for j := 1; j <= b.numSynd; j++ {
			synd[j-1] = f.Add(synd[j-1], f.Exp(i*j))
		}
	}
	return synd
}

// Decode corrects up to t errors. Failure (ok=false) is returned when the
// Berlekamp-Massey locator is inconsistent with the Chien-search root
// count, when an error lands in a shortened position, or when the
// corrected word still has nonzero syndromes. Expurgated codes also check
// overall parity, which detects one extra error.
func (b *BCH) Decode(received bitvec.Vector) (bitvec.Vector, int, bool) {
	var ws Workspace
	dst := bitvec.New(b.n)
	corrected, ok := b.DecodeInto(&ws, received, dst)
	if !ok {
		return received, corrected, false
	}
	return dst, corrected, true
}

// DecodeInto implements IntoDecoder: Decode into a caller-owned dst of
// length N using workspace scratch, with no steady-state allocations.
func (b *BCH) DecodeInto(ws *Workspace, received, dst bitvec.Vector) (int, bool) {
	checkLen("received word", received.Len(), b.n)
	checkLen("decode buffer", dst.Len(), b.n)
	received.CopyInto(dst)
	synd := b.syndromesInto(ws.synd, received)
	ws.synd = synd
	allZero := true
	for _, s := range synd {
		if s != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		if b.expurgated && received.Weight()%2 != 0 {
			// Zero syndromes but odd parity: detected, uncorrectable
			// within the bounded-distance radius.
			return 0, false
		}
		return 0, true
	}

	lambda := b.berlekampMassey(ws, synd)
	degree := lambda.Degree()
	if degree < 1 || degree > b.t {
		return 0, false
	}

	// Chien search over the transmitted positions only: an error located
	// in a shortened (always-zero) position proves the pattern exceeded
	// the radius. More roots than the locator degree is failure either
	// way, so the search stops at degree+1 roots. The evaluation is
	// incremental: term j holds lambda_j * alpha^(-i*j), so stepping from
	// position i to i+1 is one multiply by the precomputed alpha^(-j) per
	// coefficient instead of a full Horner pass with Pow-style exponent
	// arithmetic.
	f := b.field
	terms := elems(ws.chien, len(lambda))
	ws.chien = terms
	copy(terms, lambda)
	positions := ws.positions[:0]
	for i := 0; i < b.fullN && len(positions) <= degree; i++ {
		var sum galois.Elem
		for _, tm := range terms {
			sum ^= tm
		}
		if sum == 0 {
			positions = append(positions, i)
		}
		for j := 1; j < len(terms); j++ {
			terms[j] = f.Mul(terms[j], b.chienStep[j])
		}
	}
	ws.positions = positions
	if len(positions) != degree {
		return 0, false
	}
	for _, p := range positions {
		if p >= b.n {
			received.CopyInto(dst)
			return 0, false
		}
		dst.Flip(p)
	}
	// Re-verify: all syndromes of the corrected word must vanish. The
	// locator is consumed, so the syndrome buffer is safe to reuse.
	resynd := b.syndromesInto(ws.synd, dst)
	ws.synd = resynd
	for _, s := range resynd {
		if s != 0 {
			received.CopyInto(dst)
			return 0, false
		}
	}
	if b.expurgated && dst.Weight()%2 != 0 {
		received.CopyInto(dst)
		return 0, false
	}
	return degree, true
}

// berlekampMassey computes the error-locator polynomial from syndromes,
// rotating the workspace's three polynomial buffers instead of
// allocating per step. The returned locator aliases workspace memory and
// is only valid until the next decode.
func (b *BCH) berlekampMassey(ws *Workspace, synd []galois.Elem) galois.Poly {
	f := b.field
	c := onePoly(ws.bmC)
	prev := onePoly(ws.bmPrev)
	spare := ws.bmSpare
	var l int
	shift := 1
	prevDisc := galois.Elem(1)
	for i := 0; i < len(synd); i++ {
		// Discrepancy d = S_i + sum_{j=1..l} c_j * S_{i-j}.
		d := synd[i]
		for j := 1; j <= l && j < len(c); j++ {
			if i-j >= 0 {
				d = f.Add(d, f.Mul(c[j], synd[i-j]))
			}
		}
		if d == 0 {
			shift++
			continue
		}
		next := f.SubScaledShiftInto(spare, c, prev, f.Div(d, prevDisc), shift)
		if 2*l <= i {
			l = i + 1 - l
			spare, prev, c = prev, c, next
			prevDisc = d
			shift = 1
		} else {
			spare, c = c, next
			shift++
		}
	}
	ws.bmC, ws.bmPrev, ws.bmSpare = c, prev, spare
	return c
}

// ContainsAllOnes reports whether the all-ones transmitted word is a
// codeword. For the full-length narrow-sense code this is always true;
// expurgation removes it; shortening generally removes it as well. The
// check is performed directly on the transmitted-length word.
func (b *BCH) ContainsAllOnes() bool {
	return IsCodeword(b, bitvec.Ones(b.n))
}

// String implements fmt.Stringer.
func (b *BCH) String() string {
	tag := "BCH"
	if b.expurgated {
		tag = "eBCH"
	}
	if b.shorten > 0 {
		return fmt.Sprintf("%s(%d,%d,%d;s=%d)", tag, b.n, b.k, b.t, b.shorten)
	}
	return fmt.Sprintf("%s(%d,%d,%d)", tag, b.n, b.k, b.t)
}

// onePoly resets buf to the constant polynomial 1, reusing its backing
// array when possible.
func onePoly(buf galois.Poly) galois.Poly {
	if cap(buf) < 1 {
		buf = make(galois.Poly, 1)
	}
	buf = buf[:1]
	buf[0] = 1
	return buf
}
