package ecc

import (
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

func randMsg(r *rng.Source, k int) bitvec.Vector {
	m := bitvec.New(k)
	for i := 0; i < k; i++ {
		m.Set(i, r.Bool())
	}
	return m
}

// flipRandom flips exactly count distinct random positions of v in place.
func flipRandom(r *rng.Source, v bitvec.Vector, count int) {
	perm := r.Perm(v.Len())
	for i := 0; i < count; i++ {
		v.Flip(perm[i])
	}
}

func TestBCHParameters(t *testing.T) {
	cases := []struct {
		cfg  BCHConfig
		n, k int
	}{
		{BCHConfig{M: 4, T: 1}, 15, 11},
		{BCHConfig{M: 4, T: 2}, 15, 7},
		{BCHConfig{M: 4, T: 3}, 15, 5},
		{BCHConfig{M: 5, T: 3}, 31, 16},
		{BCHConfig{M: 6, T: 2}, 63, 51},
		{BCHConfig{M: 7, T: 4}, 127, 99},
		{BCHConfig{M: 7, T: 10}, 127, 64},
		{BCHConfig{M: 8, T: 2}, 255, 239},
	}
	for _, c := range cases {
		b, err := NewBCH(c.cfg)
		if err != nil {
			t.Fatalf("%+v: %v", c.cfg, err)
		}
		if b.N() != c.n || b.K() != c.k {
			t.Errorf("%+v: got (%d,%d), want (%d,%d)", c.cfg, b.N(), b.K(), c.n, c.k)
		}
	}
}

func TestBCHInvalidConfigs(t *testing.T) {
	bad := []BCHConfig{
		{M: 2, T: 1},
		{M: 17, T: 1},
		{M: 4, T: 0},
		{M: 4, T: 8},              // 2t >= n
		{M: 4, T: 1, Shorten: 11}, // shorten >= k
		{M: 4, T: 1, Shorten: -1},
	}
	for _, cfg := range bad {
		if _, err := NewBCH(cfg); err == nil {
			t.Errorf("%+v: expected error", cfg)
		}
	}
}

func TestBCHEncodeProducesCodeword(t *testing.T) {
	r := rng.New(1)
	for _, cfg := range []BCHConfig{{M: 4, T: 2}, {M: 5, T: 3}, {M: 6, T: 4}, {M: 7, T: 5}} {
		b := MustBCH(cfg)
		for trial := 0; trial < 20; trial++ {
			msg := randMsg(r, b.K())
			cw := b.Encode(msg)
			if cw.Len() != b.N() {
				t.Fatalf("%s: codeword length %d", b, cw.Len())
			}
			if !IsCodeword(b, cw) {
				t.Fatalf("%s: Encode output not a codeword", b)
			}
			if !b.Message(cw).Equal(msg) {
				t.Fatalf("%s: systematic extraction failed", b)
			}
		}
	}
}

func TestBCHCorrectsUpToT(t *testing.T) {
	r := rng.New(2)
	for _, cfg := range []BCHConfig{{M: 4, T: 2}, {M: 5, T: 3}, {M: 6, T: 6}, {M: 7, T: 9}} {
		b := MustBCH(cfg)
		for e := 0; e <= b.T(); e++ {
			for trial := 0; trial < 10; trial++ {
				msg := randMsg(r, b.K())
				cw := b.Encode(msg)
				recv := cw.Clone()
				flipRandom(r, recv, e)
				dec, corrected, ok := b.Decode(recv)
				if !ok {
					t.Fatalf("%s: decode failed at %d <= t errors", b, e)
				}
				if corrected != e {
					t.Fatalf("%s: corrected %d, want %d", b, corrected, e)
				}
				if !dec.Equal(cw) {
					t.Fatalf("%s: wrong codeword at %d errors", b, e)
				}
			}
		}
	}
}

func TestBCHBeyondTFailsOrMiscorrects(t *testing.T) {
	// Beyond the radius the decoder must not return the original
	// codeword while claiming success with <= t corrections of the
	// actual error positions; it either flags failure or miscorrects to
	// a DIFFERENT codeword. Either way the recovered word differs from
	// the transmitted one — which is the system-level failure the
	// attacks observe.
	r := rng.New(3)
	b := MustBCH(BCHConfig{M: 5, T: 2})
	misses := 0
	for trial := 0; trial < 200; trial++ {
		msg := randMsg(r, b.K())
		cw := b.Encode(msg)
		recv := cw.Clone()
		flipRandom(r, recv, b.T()+1)
		dec, _, ok := b.Decode(recv)
		if ok && dec.Equal(cw) {
			misses++
		}
	}
	// t+1 errors can occasionally land back inside the radius of the
	// original word only if they don't (they can't: t+1 distinct flips
	// give distance t+1 > t). So a correct recovery is impossible.
	if misses != 0 {
		t.Fatalf("decoder recovered the original codeword from t+1 errors %d times", misses)
	}
}

func TestBCHShortened(t *testing.T) {
	r := rng.New(4)
	b := MustBCH(BCHConfig{M: 6, T: 3, Shorten: 20})
	if b.N() != 43 || b.K() != 63-18-20 {
		t.Fatalf("shortened params (%d,%d)", b.N(), b.K())
	}
	for e := 0; e <= b.T(); e++ {
		msg := randMsg(r, b.K())
		cw := b.Encode(msg)
		recv := cw.Clone()
		flipRandom(r, recv, e)
		dec, corrected, ok := b.Decode(recv)
		if !ok || corrected != e || !dec.Equal(cw) {
			t.Fatalf("shortened decode failed at %d errors", e)
		}
		if !b.Message(dec).Equal(msg) {
			t.Fatal("shortened message extraction failed")
		}
	}
}

func TestBCHAllOnesMembership(t *testing.T) {
	// Narrow-sense full-length BCH contains the all-ones word.
	plain := MustBCH(BCHConfig{M: 5, T: 2})
	if !plain.ContainsAllOnes() {
		t.Error("narrow-sense BCH should contain all-ones")
	}
	// The expurgated (even-weight) subcode cannot: n = 31 is odd.
	exp := MustBCH(BCHConfig{M: 5, T: 2, Expurgate: true})
	if exp.ContainsAllOnes() {
		t.Error("expurgated BCH must not contain all-ones")
	}
	if exp.K() != plain.K()-1 {
		t.Errorf("expurgation should cost one message bit: %d vs %d", exp.K(), plain.K())
	}
}

func TestBCHExpurgatedParityDetection(t *testing.T) {
	// All codewords of the expurgated code have even weight.
	r := rng.New(5)
	b := MustBCH(BCHConfig{M: 5, T: 2, Expurgate: true})
	for trial := 0; trial < 50; trial++ {
		cw := b.Encode(randMsg(r, b.K()))
		if cw.Weight()%2 != 0 {
			t.Fatalf("expurgated codeword has odd weight %d", cw.Weight())
		}
	}
	// Still corrects t errors.
	for e := 0; e <= b.T(); e++ {
		cw := b.Encode(randMsg(r, b.K()))
		recv := cw.Clone()
		flipRandom(r, recv, e)
		dec, _, ok := b.Decode(recv)
		if !ok || !dec.Equal(cw) {
			t.Fatalf("expurgated decode failed at %d errors", e)
		}
	}
}

func TestBCHZeroWordIsCodeword(t *testing.T) {
	for _, cfg := range []BCHConfig{{M: 4, T: 2}, {M: 5, T: 2, Expurgate: true}, {M: 6, T: 3, Shorten: 10}} {
		b := MustBCH(cfg)
		if !IsCodeword(b, bitvec.New(b.N())) {
			t.Errorf("%s: zero word not a codeword", b)
		}
	}
}

func TestBCHLinearityProperty(t *testing.T) {
	b := MustBCH(BCHConfig{M: 5, T: 3})
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m1, m2 := randMsg(r, b.K()), randMsg(r, b.K())
		return b.Encode(m1).Xor(b.Encode(m2)).Equal(b.Encode(m1.Xor(m2)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBCHDecodeRoundTripProperty(t *testing.T) {
	b := MustBCH(BCHConfig{M: 6, T: 4})
	f := func(seed uint64, eRaw uint8) bool {
		r := rng.New(seed)
		e := int(eRaw) % (b.T() + 1)
		cw := b.Encode(randMsg(r, b.K()))
		recv := cw.Clone()
		flipRandom(r, recv, e)
		dec, corrected, ok := b.Decode(recv)
		return ok && corrected == e && dec.Equal(cw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBCHMinimumDistance(t *testing.T) {
	// Exhaustively verify d >= 2t+1 for the small BCH(15,5,3) code by
	// enumerating all 32 codewords.
	b := MustBCH(BCHConfig{M: 4, T: 3})
	var words []bitvec.Vector
	for m := 0; m < 1<<b.K(); m++ {
		msg := bitvec.New(b.K())
		for i := 0; i < b.K(); i++ {
			if m>>uint(i)&1 == 1 {
				msg.Set(i, true)
			}
		}
		words = append(words, b.Encode(msg))
	}
	minD := b.N() + 1
	for i := range words {
		for j := i + 1; j < len(words); j++ {
			if d := words[i].HammingDistance(words[j]); d < minD {
				minD = d
			}
		}
	}
	if minD < 2*b.T()+1 {
		t.Fatalf("minimum distance %d < %d", minD, 2*b.T()+1)
	}
}

func BenchmarkBCHEncode127(b *testing.B) {
	code := MustBCH(BCHConfig{M: 7, T: 10})
	msg := randMsg(rng.New(1), code.K())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = code.Encode(msg)
	}
}

func BenchmarkBCHDecode127(b *testing.B) {
	code := MustBCH(BCHConfig{M: 7, T: 10})
	r := rng.New(1)
	cw := code.Encode(randMsg(r, code.K()))
	recv := cw.Clone()
	flipRandom(r, recv, code.T())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = code.Decode(recv)
	}
}
