package ecc

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

func TestRepetitionBasics(t *testing.T) {
	r := NewRepetition(3)
	if r.N() != 7 || r.K() != 1 || r.T() != 3 {
		t.Fatalf("params (%d,%d,%d)", r.N(), r.K(), r.T())
	}
	one := bitvec.MustFromString("1")
	zero := bitvec.MustFromString("0")
	if !r.Encode(one).Equal(bitvec.Ones(7)) {
		t.Fatal("Encode(1) != ones")
	}
	if !r.Encode(zero).IsZero() {
		t.Fatal("Encode(0) != zeros")
	}
	if !r.ContainsAllOnes() {
		t.Fatal("repetition code must contain all-ones")
	}
}

func TestRepetitionMajorityVote(t *testing.T) {
	r := NewRepetition(2) // n = 5
	cases := []struct {
		in        string
		wantBit   bool
		corrected int
	}{
		{"00000", false, 0},
		{"10000", false, 1},
		{"11000", false, 2},
		{"11100", true, 2},
		{"11110", true, 1},
		{"11111", true, 0},
	}
	for _, c := range cases {
		cw, corrected, ok := r.Decode(bitvec.MustFromString(c.in))
		if !ok {
			t.Fatalf("%s: majority vote cannot fail", c.in)
		}
		if got := r.Message(cw).Get(0); got != c.wantBit {
			t.Errorf("%s: bit %v, want %v", c.in, got, c.wantBit)
		}
		if corrected != c.corrected {
			t.Errorf("%s: corrected %d, want %d", c.in, corrected, c.corrected)
		}
	}
}

func TestRepetitionZeroT(t *testing.T) {
	r := NewRepetition(0) // (1,1) identity code
	cw := r.Encode(bitvec.MustFromString("1"))
	if cw.Len() != 1 || !cw.Get(0) {
		t.Fatal("identity code broken")
	}
}

func TestBlockComposition(t *testing.T) {
	inner := MustBCH(BCHConfig{M: 4, T: 2})
	blk := NewBlock(inner, 3)
	if blk.N() != 45 || blk.K() != 21 || blk.T() != 2 {
		t.Fatalf("params (%d,%d,%d)", blk.N(), blk.K(), blk.T())
	}
	r := rng.New(7)
	msg := randMsg(r, blk.K())
	cw := blk.Encode(msg)
	if !blk.Message(cw).Equal(msg) {
		t.Fatal("block message extraction failed")
	}

	// t errors in each block: all correct.
	recv := cw.Clone()
	for b := 0; b < 3; b++ {
		recv.Flip(b*15 + 1)
		recv.Flip(b*15 + 7)
	}
	dec, corrected, ok := blk.Decode(recv)
	if !ok || corrected != 6 || !dec.Equal(cw) {
		t.Fatalf("spread errors: ok=%v corrected=%d", ok, corrected)
	}

	// t+1 errors concentrated in one block: that block fails even though
	// the total (3) is below blocks*t (6).
	recv2 := cw.Clone()
	recv2.Flip(0)
	recv2.Flip(1)
	recv2.Flip(2)
	if _, _, ok := blk.Decode(recv2); ok {
		// A miscorrection to a different codeword is possible; the
		// result must then differ from cw.
		dec2, _, _ := blk.Decode(recv2)
		if dec2.Equal(cw) {
			t.Fatal("concentrated t+1 errors decoded to original codeword")
		}
	}
}

func TestBlockPanicsOnZeroBlocks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBlock(NewRepetition(1), 0)
}

func TestOffsetRoundTrip(t *testing.T) {
	r := rng.New(11)
	for _, code := range []Code{
		NewRepetition(3),
		MustBCH(BCHConfig{M: 5, T: 3}),
		NewBlock(MustBCH(BCHConfig{M: 4, T: 2}), 2),
	} {
		resp := randMsg(r, code.N())
		off := EnrollOffset(code, resp, r)
		// Noiseless reproduction.
		got, corrected, ok := Reproduce(code, off, resp)
		if !ok || corrected != 0 || !got.Equal(resp) {
			t.Fatalf("%s: noiseless reproduce failed", code)
		}
		// Up-to-t noise per block still reproduces.
		noisy := resp.Clone()
		noisy.Flip(0)
		got, corrected, ok = Reproduce(code, off, noisy)
		if !ok || corrected != 1 || !got.Equal(resp) {
			t.Fatalf("%s: 1-error reproduce failed (ok=%v c=%d)", code, ok, corrected)
		}
	}
}

func TestOffsetFailsBeyondRadius(t *testing.T) {
	r := rng.New(13)
	code := MustBCH(BCHConfig{M: 5, T: 2})
	resp := randMsg(r, code.N())
	off := EnrollOffset(code, resp, r)
	noisy := resp.Clone()
	flipRandom(r, noisy, code.T()+1)
	got, _, ok := Reproduce(code, off, noisy)
	if ok && got.Equal(resp) {
		t.Fatal("reproduced original response from beyond-radius noise")
	}
}

func TestOffsetConsistency(t *testing.T) {
	r := rng.New(17)
	code := MustBCH(BCHConfig{M: 5, T: 2})
	resp := randMsg(r, code.N())
	off := EnrollOffset(code, resp, r)
	if !ConsistentWith(code, off, resp) {
		t.Fatal("true response must be consistent with its offset")
	}
	// The complement is consistent iff all-ones is a codeword: plain BCH
	// contains all-ones, so the complement IS consistent — this is the
	// documented complement ambiguity.
	if !ConsistentWith(code, off, resp.Not()) {
		t.Fatal("plain BCH: complement should be consistent (all-ones codeword)")
	}
	// With the expurgated code the ambiguity disappears.
	ecode := MustBCH(BCHConfig{M: 5, T: 2, Expurgate: true})
	eresp := randMsg(r, ecode.N())
	eoff := EnrollOffset(ecode, eresp, r)
	if !ConsistentWith(ecode, eoff, eresp) {
		t.Fatal("expurgated: true response must be consistent")
	}
	if ConsistentWith(ecode, eoff, eresp.Not()) {
		t.Fatal("expurgated: complement must NOT be consistent")
	}
}

func TestOffsetForBindsChosenResponse(t *testing.T) {
	r := rng.New(19)
	code := MustBCH(BCHConfig{M: 4, T: 2})
	target := randMsg(r, code.N())
	msg := randMsg(r, code.K())
	off := OffsetFor(code, target, msg)
	got, corrected, ok := Reproduce(code, off, target)
	if !ok || corrected != 0 || !got.Equal(target) {
		t.Fatal("crafted offset does not bind target response")
	}
}

func TestConsistentWithLengthMismatch(t *testing.T) {
	code := NewRepetition(1)
	if ConsistentWith(code, Offset{W: bitvec.New(3)}, bitvec.New(5)) {
		t.Fatal("length mismatch must be inconsistent")
	}
}

func TestBlockString(t *testing.T) {
	blk := NewBlock(NewRepetition(2), 4)
	if blk.String() != "4 x Rep(5,1,2)" {
		t.Fatalf("String = %q", blk.String())
	}
}
