// Package metrics computes the standard PUF quality figures the paper's
// Sections II-III discuss: reliability (intra-device distance),
// uniqueness (inter-device distance), bias, and the entropy accounting
// log2(N!) for frequency-sorting PUFs.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/bitvec"
	"repro/internal/perm"
)

// TotalOrderEntropyBits returns log2(N!), the total entropy of an N-RO
// array under the ideal all-orders-equally-likely assumption (paper §II).
func TotalOrderEntropyBits(n int) float64 { return perm.Log2Factorial(n) }

// Bias returns the fraction of ones across a set of responses; 0.5 is
// ideal (paper §III-B).
func Bias(responses []bitvec.Vector) float64 {
	ones, total := 0, 0
	for _, r := range responses {
		ones += r.Weight()
		total += r.Len()
	}
	if total == 0 {
		return 0
	}
	return float64(ones) / float64(total)
}

// IntraDistance returns the mean fractional Hamming distance between a
// reference response and repeated regenerations of the same device — the
// reliability figure (0 is perfectly reliable).
func IntraDistance(reference bitvec.Vector, regenerations []bitvec.Vector) (float64, error) {
	if len(regenerations) == 0 {
		return 0, fmt.Errorf("metrics: no regenerations")
	}
	var s float64
	for _, r := range regenerations {
		if r.Len() != reference.Len() {
			return 0, fmt.Errorf("metrics: regeneration length %d, reference %d", r.Len(), reference.Len())
		}
		s += float64(reference.HammingDistance(r)) / float64(reference.Len())
	}
	return s / float64(len(regenerations)), nil
}

// InterDistance returns the mean pairwise fractional Hamming distance
// across responses of DIFFERENT devices — the uniqueness figure (0.5 is
// ideal).
func InterDistance(responses []bitvec.Vector) (float64, error) {
	if len(responses) < 2 {
		return 0, fmt.Errorf("metrics: need at least two devices")
	}
	var s float64
	pairs := 0
	for i := range responses {
		for j := i + 1; j < len(responses); j++ {
			if responses[i].Len() != responses[j].Len() {
				return 0, fmt.Errorf("metrics: response lengths differ (%d vs %d)", responses[i].Len(), responses[j].Len())
			}
			s += float64(responses[i].HammingDistance(responses[j])) / float64(responses[i].Len())
			pairs++
		}
	}
	return s / float64(pairs), nil
}

// BitErrorRate returns the per-bit flip probability estimated from
// repeated regenerations against a reference.
func BitErrorRate(reference bitvec.Vector, regenerations []bitvec.Vector) (float64, error) {
	return IntraDistance(reference, regenerations)
}

// ShannonEntropyPerBit estimates the per-bit Shannon entropy from the
// observed bias: H(p) = -p log2 p - (1-p) log2 (1-p).
func ShannonEntropyPerBit(bias float64) float64 {
	if bias <= 0 || bias >= 1 {
		return 0
	}
	return -bias*math.Log2(bias) - (1-bias)*math.Log2(1-bias)
}

// MinEntropyPerBit returns -log2(max(p, 1-p)), the conservative
// key-material figure.
func MinEntropyPerBit(bias float64) float64 {
	p := bias
	if 1-p > p {
		p = 1 - p
	}
	if p >= 1 {
		return 0
	}
	return -math.Log2(p)
}
