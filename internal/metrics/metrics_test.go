package metrics

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

func TestTotalOrderEntropy(t *testing.T) {
	// log2(3!) = log2 6 ~ 2.585
	if v := TotalOrderEntropyBits(3); math.Abs(v-math.Log2(6)) > 1e-12 {
		t.Fatalf("entropy %v", v)
	}
	if TotalOrderEntropyBits(1) != 0 {
		t.Fatal("single RO has entropy")
	}
}

func TestBias(t *testing.T) {
	rs := []bitvec.Vector{
		bitvec.MustFromString("1111"),
		bitvec.MustFromString("0000"),
	}
	if b := Bias(rs); b != 0.5 {
		t.Fatalf("bias %v", b)
	}
	if Bias(nil) != 0 {
		t.Fatal("empty bias")
	}
}

func TestIntraDistance(t *testing.T) {
	ref := bitvec.MustFromString("0000")
	regs := []bitvec.Vector{
		bitvec.MustFromString("0001"), // 0.25
		bitvec.MustFromString("0011"), // 0.5
	}
	d, err := IntraDistance(ref, regs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.375) > 1e-12 {
		t.Fatalf("intra %v", d)
	}
	if _, err := IntraDistance(ref, nil); err == nil {
		t.Fatal("empty regenerations must fail")
	}
	if _, err := IntraDistance(ref, []bitvec.Vector{bitvec.New(5)}); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestInterDistance(t *testing.T) {
	rs := []bitvec.Vector{
		bitvec.MustFromString("0000"),
		bitvec.MustFromString("1111"),
		bitvec.MustFromString("0011"),
	}
	// pairwise: 1.0, 0.5, 0.5 -> mean 2/3
	d, err := InterDistance(rs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-2.0/3) > 1e-12 {
		t.Fatalf("inter %v", d)
	}
	if _, err := InterDistance(rs[:1]); err == nil {
		t.Fatal("single device must fail")
	}
}

func TestInterDistanceRandomResponsesNearHalf(t *testing.T) {
	r := rng.New(1)
	var rs []bitvec.Vector
	for d := 0; d < 20; d++ {
		v := bitvec.New(256)
		for i := 0; i < 256; i++ {
			v.Set(i, r.Bool())
		}
		rs = append(rs, v)
	}
	d, err := InterDistance(rs)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.45 || d > 0.55 {
		t.Fatalf("inter-distance of random responses %v", d)
	}
}

func TestEntropyPerBit(t *testing.T) {
	if math.Abs(ShannonEntropyPerBit(0.5)-1) > 1e-12 {
		t.Fatal("H(0.5) != 1")
	}
	if ShannonEntropyPerBit(0) != 0 || ShannonEntropyPerBit(1) != 0 {
		t.Fatal("H at extremes != 0")
	}
	if ShannonEntropyPerBit(0.1) >= ShannonEntropyPerBit(0.3) {
		t.Fatal("H not increasing toward 0.5")
	}
	if math.Abs(MinEntropyPerBit(0.5)-1) > 1e-12 {
		t.Fatal("minH(0.5) != 1")
	}
	if MinEntropyPerBit(1) != 0 {
		t.Fatal("minH(1) != 0")
	}
	if MinEntropyPerBit(0.3) >= ShannonEntropyPerBit(0.3) {
		// min-entropy lower-bounds Shannon entropy... strictly it is
		// always <= Shannon entropy.
		t.Log("ok") // both near; the inequality check:
	}
	if MinEntropyPerBit(0.3) > ShannonEntropyPerBit(0.3) {
		t.Fatal("min-entropy exceeds Shannon entropy")
	}
}
