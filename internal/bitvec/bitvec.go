// Package bitvec implements fixed-length bit vectors over GF(2).
//
// Bit vectors are the lingua franca of this repository: PUF responses,
// ECC codewords, code-offset helper data and attack error masks are all
// Vector values. The representation is a little-endian slice of 64-bit
// words; bit i of the vector lives at word i/64, position i%64.
package bitvec

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"strings"
)

// Vector is a fixed-length bit vector. The zero value is an empty vector.
type Vector struct {
	n     int
	words []uint64
}

// New returns an all-zero vector of length n. It panics if n is negative.
func New(n int) Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return Vector{n: n, words: make([]uint64, (n+63)/64)}
}

// FromBits builds a vector from a slice of bits given as 0/1 bytes.
func FromBits(bits []byte) Vector {
	v := New(len(bits))
	for i, b := range bits {
		if b > 1 {
			panic(fmt.Sprintf("bitvec: bit value %d out of range", b))
		}
		if b == 1 {
			v.Set(i, true)
		}
	}
	return v
}

// FromString parses a string of '0' and '1' runes, most significant first
// in reading order: position 0 of the vector is the first rune.
func FromString(s string) (Vector, error) {
	v := New(len(s))
	for i, r := range s {
		switch r {
		case '0':
		case '1':
			v.Set(i, true)
		default:
			return Vector{}, fmt.Errorf("bitvec: invalid character %q at %d", r, i)
		}
	}
	return v, nil
}

// MustFromString is FromString that panics on error; intended for tests
// and package-level constants.
func MustFromString(s string) Vector {
	v, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Len returns the number of bits.
func (v Vector) Len() int { return v.n }

// Get returns bit i.
func (v Vector) Get(i int) bool {
	v.check(i)
	return v.words[i>>6]>>(uint(i)&63)&1 == 1
}

// Bit returns bit i as 0 or 1.
func (v Vector) Bit(i int) byte {
	if v.Get(i) {
		return 1
	}
	return 0
}

// Set assigns bit i.
func (v Vector) Set(i int, b bool) {
	v.check(i)
	if b {
		v.words[i>>6] |= 1 << (uint(i) & 63)
	} else {
		v.words[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// Flip inverts bit i.
func (v Vector) Flip(i int) {
	v.check(i)
	v.words[i>>6] ^= 1 << (uint(i) & 63)
}

func (v Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Clone returns an independent copy.
func (v Vector) Clone() Vector {
	w := Vector{n: v.n, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// Zero clears every bit in place.
func (v Vector) Zero() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// SetAll sets every bit in place; the in-buffer counterpart of Ones.
func (v Vector) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.maskTail()
}

// CopyInto copies v into dst, which must have the same length. The
// allocation-free counterpart of Clone for reused scratch buffers.
func (v Vector) CopyInto(dst Vector) {
	v.sameLen(dst)
	copy(dst.words, v.words)
}

// XorInto writes v XOR u into dst word-by-word. All three lengths must
// match; dst may alias v or u.
func (v Vector) XorInto(u, dst Vector) {
	v.sameLen(u)
	v.sameLen(dst)
	for i := range dst.words {
		dst.words[i] = v.words[i] ^ u.words[i]
	}
}

// Xor returns v XOR u. The lengths must match.
func (v Vector) Xor(u Vector) Vector {
	v.sameLen(u)
	w := v.Clone()
	for i := range w.words {
		w.words[i] ^= u.words[i]
	}
	return w
}

// XorInPlace sets v to v XOR u.
func (v Vector) XorInPlace(u Vector) {
	v.sameLen(u)
	for i := range v.words {
		v.words[i] ^= u.words[i]
	}
}

// And returns v AND u.
func (v Vector) And(u Vector) Vector {
	v.sameLen(u)
	w := v.Clone()
	for i := range w.words {
		w.words[i] &= u.words[i]
	}
	return w
}

// Not returns the bitwise complement of v.
func (v Vector) Not() Vector {
	w := v.Clone()
	for i := range w.words {
		w.words[i] = ^w.words[i]
	}
	w.maskTail()
	return w
}

func (v Vector) sameLen(u Vector) {
	if v.n != u.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, u.n))
	}
}

// maskTail clears the unused high bits of the last word so that Weight and
// Equal can operate word-wise.
func (v Vector) maskTail() {
	if v.n%64 != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << (uint(v.n) & 63)) - 1
	}
}

// Weight returns the Hamming weight (number of set bits).
func (v Vector) Weight() int {
	w := 0
	for _, word := range v.words {
		w += bits.OnesCount64(word)
	}
	return w
}

// HammingDistance returns the number of positions where v and u differ.
func (v Vector) HammingDistance(u Vector) int {
	v.sameLen(u)
	d := 0
	for i := range v.words {
		d += bits.OnesCount64(v.words[i] ^ u.words[i])
	}
	return d
}

// Equal reports whether v and u have identical length and bits.
func (v Vector) Equal(u Vector) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every bit is zero.
func (v Vector) IsZero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Slice returns a copy of bits [from, to).
func (v Vector) Slice(from, to int) Vector {
	if from < 0 || to > v.n || from > to {
		panic(fmt.Sprintf("bitvec: invalid slice [%d,%d) of length %d", from, to, v.n))
	}
	w := New(to - from)
	v.SliceInto(from, to, w)
	return w
}

// SliceInto extracts bits [from, to) of v into dst, whose length must be
// to-from. The extraction shifts whole words, not individual bits; it is
// the scratch-buffer primitive behind Slice and the block codec's
// per-block reads.
func (v Vector) SliceInto(from, to int, dst Vector) {
	if from < 0 || to > v.n || from > to {
		panic(fmt.Sprintf("bitvec: invalid slice [%d,%d) of length %d", from, to, v.n))
	}
	if dst.n != to-from {
		panic(fmt.Sprintf("bitvec: slice buffer length %d, want %d", dst.n, to-from))
	}
	w, s := from>>6, uint(from)&63
	for j := range dst.words {
		word := v.words[w+j] >> s
		if s != 0 && w+j+1 < len(v.words) {
			word |= v.words[w+j+1] << (64 - s)
		}
		dst.words[j] = word
	}
	dst.maskTail()
}

// PutAt overwrites bits [at, at+u.n) of v with u, blending whole words
// of u into v with two shifts per word. The word-level inverse of
// SliceInto; Concat and the block codec's per-block writes build on it.
func (v Vector) PutAt(at int, u Vector) {
	if at < 0 || at+u.n > v.n {
		panic(fmt.Sprintf("bitvec: put [%d,%d) outside length %d", at, at+u.n, v.n))
	}
	w, s := at>>6, uint(at)&63
	remaining := u.n
	for j := 0; j < len(u.words); j++ {
		word := u.words[j]
		width := remaining
		if width > 64 {
			width = 64
		}
		mask := ^uint64(0)
		if width < 64 {
			mask = 1<<uint(width) - 1
		}
		v.words[w+j] = v.words[w+j]&^(mask<<s) | word<<s
		if s != 0 && uint(width)+s > 64 {
			v.words[w+j+1] = v.words[w+j+1]&^(mask>>(64-s)) | word>>(64-s)
		}
		remaining -= width
	}
}

// Concat returns the concatenation of v followed by u.
func (v Vector) Concat(u Vector) Vector {
	w := New(v.n + u.n)
	copy(w.words, v.words)
	w.PutAt(v.n, u)
	return w
}

// Bits returns the vector as a slice of 0/1 bytes.
func (v Vector) Bits() []byte {
	out := make([]byte, v.n)
	for i := range out {
		out[i] = v.Bit(i)
	}
	return out
}

// Bytes packs the vector into bytes, bit i at byte i/8, LSB-first within
// each byte. The final partial byte, if any, is zero-padded. Full words
// are emitted eight bytes at a time.
func (v Vector) Bytes() []byte {
	out := make([]byte, (v.n+7)/8)
	at := 0
	for _, word := range v.words {
		if len(out)-at >= 8 {
			binary.LittleEndian.PutUint64(out[at:], word)
			at += 8
			continue
		}
		for ; at < len(out); at++ {
			out[at] = byte(word)
			word >>= 8
		}
	}
	return out
}

// FromBytes is the inverse of Bytes for a vector of length n. Bytes are
// packed into words eight at a time; stray bits beyond n in the final
// byte are ignored, as are bytes beyond the (n+7)/8 needed.
func FromBytes(data []byte, n int) (Vector, error) {
	need := (n + 7) / 8
	if len(data) < need {
		return Vector{}, fmt.Errorf("bitvec: need %d bytes for %d bits, have %d", need, n, len(data))
	}
	v := New(n)
	for i := 0; i < need; i++ {
		v.words[i>>3] |= uint64(data[i]) << ((uint(i) & 7) * 8)
	}
	v.maskTail()
	return v, nil
}

// Ones returns an all-ones vector of length n.
func Ones(n int) Vector {
	v := New(n)
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.maskTail()
	return v
}

// String renders the vector as a string of '0' and '1', bit 0 first.
func (v Vector) String() string {
	var b strings.Builder
	b.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// MarshalBinary serializes the vector as a little-endian uint32 bit
// length followed by the Bytes packing, so the exact length survives a
// round trip through byte-oriented storage (helper NVM sections).
func (v Vector) MarshalBinary() ([]byte, error) {
	return v.AppendBinary(make([]byte, 0, 4+(v.n+7)/8))
}

// AppendBinary appends the MarshalBinary wire format to b and returns the
// extended slice, packing words directly without an intermediate Bytes
// allocation — the scratch-buffer serialization primitive of the attack
// loops' helper-image builders.
func (v Vector) AppendBinary(b []byte) ([]byte, error) {
	b = binary.LittleEndian.AppendUint32(b, uint32(v.n))
	remaining := (v.n + 7) / 8
	for _, word := range v.words {
		if remaining >= 8 {
			b = binary.LittleEndian.AppendUint64(b, word)
			remaining -= 8
			continue
		}
		for ; remaining > 0; remaining-- {
			b = append(b, byte(word))
			word >>= 8
		}
	}
	return b, nil
}

// UnmarshalVector is the inverse of MarshalBinary. Trailing bytes beyond
// the declared length are rejected: helper images must be unambiguous.
func UnmarshalVector(data []byte) (Vector, error) {
	if len(data) < 4 {
		return Vector{}, fmt.Errorf("bitvec: %d-byte header truncated", len(data))
	}
	n := int(binary.LittleEndian.Uint32(data))
	if rest := len(data) - 4; rest != (n+7)/8 {
		return Vector{}, fmt.Errorf("bitvec: %d data bytes for %d bits", rest, n)
	}
	return FromBytes(data[4:], n)
}

// SupportIndices returns the positions of all set bits in increasing order.
func (v Vector) SupportIndices() []int {
	idx := make([]int, 0, v.Weight())
	for i := v.NextSet(0); i >= 0; i = v.NextSet(i + 1) {
		idx = append(idx, i)
	}
	return idx
}

// NextSet returns the index of the first set bit at or after from, or -1
// when no set bit remains. The allocation-free iteration primitive
// (`for i := v.NextSet(0); i >= 0; i = v.NextSet(i+1)`) behind
// SupportIndices and the ECC syndrome loops.
func (v Vector) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= v.n {
		return -1
	}
	j := from >> 6
	word := v.words[j] >> (uint(from) & 63) << (uint(from) & 63)
	for {
		if word != 0 {
			return j<<6 + bits.TrailingZeros64(word)
		}
		j++
		if j >= len(v.words) {
			return -1
		}
		word = v.words[j]
	}
}

// HasPrefix reports whether the first p.Len() bits of v equal p. It is
// the allocation-free equivalent of v.Slice(0, p.Len()).Equal(p).
func (v Vector) HasPrefix(p Vector) bool {
	if p.n > v.n {
		return false
	}
	full := p.n >> 6
	for i := 0; i < full; i++ {
		if v.words[i] != p.words[i] {
			return false
		}
	}
	if rem := uint(p.n) & 63; rem != 0 {
		mask := uint64(1)<<rem - 1
		if (v.words[full]^p.words[full])&mask != 0 {
			return false
		}
	}
	return true
}
