// Package bitvec implements fixed-length bit vectors over GF(2).
//
// Bit vectors are the lingua franca of this repository: PUF responses,
// ECC codewords, code-offset helper data and attack error masks are all
// Vector values. The representation is a little-endian slice of 64-bit
// words; bit i of the vector lives at word i/64, position i%64.
package bitvec

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Vector is a fixed-length bit vector. The zero value is an empty vector.
type Vector struct {
	n     int
	words []uint64
}

// New returns an all-zero vector of length n. It panics if n is negative.
func New(n int) Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return Vector{n: n, words: make([]uint64, (n+63)/64)}
}

// FromBits builds a vector from a slice of bits given as 0/1 bytes.
func FromBits(bits []byte) Vector {
	v := New(len(bits))
	for i, b := range bits {
		if b > 1 {
			panic(fmt.Sprintf("bitvec: bit value %d out of range", b))
		}
		if b == 1 {
			v.Set(i, true)
		}
	}
	return v
}

// FromString parses a string of '0' and '1' runes, most significant first
// in reading order: position 0 of the vector is the first rune.
func FromString(s string) (Vector, error) {
	v := New(len(s))
	for i, r := range s {
		switch r {
		case '0':
		case '1':
			v.Set(i, true)
		default:
			return Vector{}, fmt.Errorf("bitvec: invalid character %q at %d", r, i)
		}
	}
	return v, nil
}

// MustFromString is FromString that panics on error; intended for tests
// and package-level constants.
func MustFromString(s string) Vector {
	v, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Len returns the number of bits.
func (v Vector) Len() int { return v.n }

// Get returns bit i.
func (v Vector) Get(i int) bool {
	v.check(i)
	return v.words[i>>6]>>(uint(i)&63)&1 == 1
}

// Bit returns bit i as 0 or 1.
func (v Vector) Bit(i int) byte {
	if v.Get(i) {
		return 1
	}
	return 0
}

// Set assigns bit i.
func (v Vector) Set(i int, b bool) {
	v.check(i)
	if b {
		v.words[i>>6] |= 1 << (uint(i) & 63)
	} else {
		v.words[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// Flip inverts bit i.
func (v Vector) Flip(i int) {
	v.check(i)
	v.words[i>>6] ^= 1 << (uint(i) & 63)
}

func (v Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Clone returns an independent copy.
func (v Vector) Clone() Vector {
	w := Vector{n: v.n, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// Xor returns v XOR u. The lengths must match.
func (v Vector) Xor(u Vector) Vector {
	v.sameLen(u)
	w := v.Clone()
	for i := range w.words {
		w.words[i] ^= u.words[i]
	}
	return w
}

// XorInPlace sets v to v XOR u.
func (v Vector) XorInPlace(u Vector) {
	v.sameLen(u)
	for i := range v.words {
		v.words[i] ^= u.words[i]
	}
}

// And returns v AND u.
func (v Vector) And(u Vector) Vector {
	v.sameLen(u)
	w := v.Clone()
	for i := range w.words {
		w.words[i] &= u.words[i]
	}
	return w
}

// Not returns the bitwise complement of v.
func (v Vector) Not() Vector {
	w := v.Clone()
	for i := range w.words {
		w.words[i] = ^w.words[i]
	}
	w.maskTail()
	return w
}

func (v Vector) sameLen(u Vector) {
	if v.n != u.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, u.n))
	}
}

// maskTail clears the unused high bits of the last word so that Weight and
// Equal can operate word-wise.
func (v Vector) maskTail() {
	if v.n%64 != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << (uint(v.n) & 63)) - 1
	}
}

// Weight returns the Hamming weight (number of set bits).
func (v Vector) Weight() int {
	w := 0
	for _, word := range v.words {
		w += popcount(word)
	}
	return w
}

func popcount(x uint64) int {
	// Hacker's Delight population count; avoids importing math/bits to
	// keep this file self-describing, and the compiler recognizes the
	// pattern anyway.
	x -= (x >> 1) & 0x5555555555555555
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int(x * 0x0101010101010101 >> 56)
}

// HammingDistance returns the number of positions where v and u differ.
func (v Vector) HammingDistance(u Vector) int {
	v.sameLen(u)
	d := 0
	for i := range v.words {
		d += popcount(v.words[i] ^ u.words[i])
	}
	return d
}

// Equal reports whether v and u have identical length and bits.
func (v Vector) Equal(u Vector) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every bit is zero.
func (v Vector) IsZero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Slice returns a copy of bits [from, to).
func (v Vector) Slice(from, to int) Vector {
	if from < 0 || to > v.n || from > to {
		panic(fmt.Sprintf("bitvec: invalid slice [%d,%d) of length %d", from, to, v.n))
	}
	w := New(to - from)
	for i := from; i < to; i++ {
		if v.Get(i) {
			w.Set(i-from, true)
		}
	}
	return w
}

// Concat returns the concatenation of v followed by u.
func (v Vector) Concat(u Vector) Vector {
	w := New(v.n + u.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			w.Set(i, true)
		}
	}
	for i := 0; i < u.n; i++ {
		if u.Get(i) {
			w.Set(v.n+i, true)
		}
	}
	return w
}

// Bits returns the vector as a slice of 0/1 bytes.
func (v Vector) Bits() []byte {
	out := make([]byte, v.n)
	for i := range out {
		out[i] = v.Bit(i)
	}
	return out
}

// Bytes packs the vector into bytes, bit i at byte i/8, LSB-first within
// each byte. The final partial byte, if any, is zero-padded.
func (v Vector) Bytes() []byte {
	out := make([]byte, (v.n+7)/8)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			out[i/8] |= 1 << (uint(i) & 7)
		}
	}
	return out
}

// FromBytes is the inverse of Bytes for a vector of length n.
func FromBytes(data []byte, n int) (Vector, error) {
	if need := (n + 7) / 8; len(data) < need {
		return Vector{}, fmt.Errorf("bitvec: need %d bytes for %d bits, have %d", need, n, len(data))
	}
	v := New(n)
	for i := 0; i < n; i++ {
		if data[i/8]>>(uint(i)&7)&1 == 1 {
			v.Set(i, true)
		}
	}
	return v, nil
}

// Ones returns an all-ones vector of length n.
func Ones(n int) Vector {
	v := New(n)
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.maskTail()
	return v
}

// String renders the vector as a string of '0' and '1', bit 0 first.
func (v Vector) String() string {
	var b strings.Builder
	b.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// MarshalBinary serializes the vector as a little-endian uint32 bit
// length followed by the Bytes packing, so the exact length survives a
// round trip through byte-oriented storage (helper NVM sections).
func (v Vector) MarshalBinary() ([]byte, error) {
	out := binary.LittleEndian.AppendUint32(make([]byte, 0, 4+(v.n+7)/8), uint32(v.n))
	return append(out, v.Bytes()...), nil
}

// UnmarshalVector is the inverse of MarshalBinary. Trailing bytes beyond
// the declared length are rejected: helper images must be unambiguous.
func UnmarshalVector(data []byte) (Vector, error) {
	if len(data) < 4 {
		return Vector{}, fmt.Errorf("bitvec: %d-byte header truncated", len(data))
	}
	n := int(binary.LittleEndian.Uint32(data))
	if rest := len(data) - 4; rest != (n+7)/8 {
		return Vector{}, fmt.Errorf("bitvec: %d data bytes for %d bits", rest, n)
	}
	return FromBytes(data[4:], n)
}

// SupportIndices returns the positions of all set bits in increasing order.
func (v Vector) SupportIndices() []int {
	idx := make([]int, 0, v.Weight())
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			idx = append(idx, i)
		}
	}
	return idx
}
