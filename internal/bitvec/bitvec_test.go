package bitvec

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewIsZero(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 1000} {
		v := New(n)
		if v.Len() != n {
			t.Fatalf("Len = %d, want %d", v.Len(), n)
		}
		if !v.IsZero() || v.Weight() != 0 {
			t.Fatalf("New(%d) not zero", n)
		}
	}
}

func TestSetGetFlip(t *testing.T) {
	v := New(130)
	v.Set(0, true)
	v.Set(64, true)
	v.Set(129, true)
	for i := 0; i < 130; i++ {
		want := i == 0 || i == 64 || i == 129
		if v.Get(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, v.Get(i), want)
		}
	}
	v.Flip(0)
	v.Flip(1)
	if v.Get(0) || !v.Get(1) {
		t.Fatal("flip failed")
	}
	if v.Weight() != 3 {
		t.Fatalf("weight = %d, want 3", v.Weight())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(){
		func() { New(10).Get(10) },
		func() { New(10).Get(-1) },
		func() { New(10).Set(10, true) },
		func() { New(0).Flip(0) },
		func() { New(-1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestXor(t *testing.T) {
	a := MustFromString("1100")
	b := MustFromString("1010")
	want := MustFromString("0110")
	if got := a.Xor(b); !got.Equal(want) {
		t.Fatalf("Xor = %s, want %s", got, want)
	}
	// a and b unchanged
	if !a.Equal(MustFromString("1100")) || !b.Equal(MustFromString("1010")) {
		t.Fatal("Xor mutated operand")
	}
	a.XorInPlace(b)
	if !a.Equal(want) {
		t.Fatalf("XorInPlace = %s, want %s", a, want)
	}
}

func TestNotMasksTail(t *testing.T) {
	v := New(65) // forces a partial tail word
	w := v.Not()
	if w.Weight() != 65 {
		t.Fatalf("Not of zero vector has weight %d, want 65", w.Weight())
	}
	if !w.Equal(Ones(65)) {
		t.Fatal("Not(0) != Ones")
	}
	if !w.Not().IsZero() {
		t.Fatal("double Not != identity")
	}
}

func TestHammingDistance(t *testing.T) {
	a := MustFromString("10110")
	b := MustFromString("00111")
	if d := a.HammingDistance(b); d != 2 {
		t.Fatalf("distance = %d, want 2", d)
	}
	if d := a.HammingDistance(a); d != 0 {
		t.Fatalf("self distance = %d, want 0", d)
	}
}

func TestSliceConcat(t *testing.T) {
	v := MustFromString("110101")
	left := v.Slice(0, 3)
	right := v.Slice(3, 6)
	if left.String() != "110" || right.String() != "101" {
		t.Fatalf("slices = %s, %s", left, right)
	}
	if got := left.Concat(right); !got.Equal(v) {
		t.Fatalf("concat = %s, want %s", got, v)
	}
	empty := v.Slice(2, 2)
	if empty.Len() != 0 {
		t.Fatal("empty slice has nonzero length")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 200} {
		v := New(n)
		for i := 0; i < n; i++ {
			v.Set(i, r.Bool())
		}
		back, err := FromBytes(v.Bytes(), n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !back.Equal(v) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestFromBytesShortInput(t *testing.T) {
	if _, err := FromBytes([]byte{0xff}, 9); err == nil {
		t.Fatal("expected error for short input")
	}
}

func TestFromStringErrors(t *testing.T) {
	if _, err := FromString("01x"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestBitsRoundTrip(t *testing.T) {
	v := MustFromString("0110010")
	if got := FromBits(v.Bits()); !got.Equal(v) {
		t.Fatalf("Bits round trip: %s != %s", got, v)
	}
}

func TestSupportIndices(t *testing.T) {
	v := MustFromString("0100101")
	got := v.SupportIndices()
	want := []int{1, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("support = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("support = %v, want %v", got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustFromString("1010")
	b := a.Clone()
	b.Flip(0)
	if !a.Get(0) || b.Get(0) {
		t.Fatal("clone is not independent")
	}
}

// Property: XOR is an involution and distance is XOR weight.
func TestXorProperties(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := int(size)%200 + 1
		r := rng.New(seed)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			a.Set(i, r.Bool())
			b.Set(i, r.Bool())
		}
		x := a.Xor(b)
		return x.Xor(b).Equal(a) &&
			x.Weight() == a.HammingDistance(b) &&
			a.Xor(a).IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: weight of v plus weight of Not(v) equals length.
func TestNotWeightProperty(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := int(size)%200 + 1
		r := rng.New(seed)
		v := New(n)
		for i := 0; i < n; i++ {
			v.Set(i, r.Bool())
		}
		return v.Weight()+v.Not().Weight() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAnd(t *testing.T) {
	a := MustFromString("1100")
	b := MustFromString("1010")
	if got := a.And(b); got.String() != "1000" {
		t.Fatalf("And = %s, want 1000", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	New(3).Xor(New(4))
}

func BenchmarkXor1024(b *testing.B) {
	v := Ones(1024)
	u := New(1024)
	for i := 0; i < b.N; i++ {
		u.XorInPlace(v)
	}
}

func BenchmarkWeight1024(b *testing.B) {
	v := Ones(1024)
	for i := 0; i < b.N; i++ {
		_ = v.Weight()
	}
}
