package bitvec

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewIsZero(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 1000} {
		v := New(n)
		if v.Len() != n {
			t.Fatalf("Len = %d, want %d", v.Len(), n)
		}
		if !v.IsZero() || v.Weight() != 0 {
			t.Fatalf("New(%d) not zero", n)
		}
	}
}

func TestSetGetFlip(t *testing.T) {
	v := New(130)
	v.Set(0, true)
	v.Set(64, true)
	v.Set(129, true)
	for i := 0; i < 130; i++ {
		want := i == 0 || i == 64 || i == 129
		if v.Get(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, v.Get(i), want)
		}
	}
	v.Flip(0)
	v.Flip(1)
	if v.Get(0) || !v.Get(1) {
		t.Fatal("flip failed")
	}
	if v.Weight() != 3 {
		t.Fatalf("weight = %d, want 3", v.Weight())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(){
		func() { New(10).Get(10) },
		func() { New(10).Get(-1) },
		func() { New(10).Set(10, true) },
		func() { New(0).Flip(0) },
		func() { New(-1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestXor(t *testing.T) {
	a := MustFromString("1100")
	b := MustFromString("1010")
	want := MustFromString("0110")
	if got := a.Xor(b); !got.Equal(want) {
		t.Fatalf("Xor = %s, want %s", got, want)
	}
	// a and b unchanged
	if !a.Equal(MustFromString("1100")) || !b.Equal(MustFromString("1010")) {
		t.Fatal("Xor mutated operand")
	}
	a.XorInPlace(b)
	if !a.Equal(want) {
		t.Fatalf("XorInPlace = %s, want %s", a, want)
	}
}

func TestNotMasksTail(t *testing.T) {
	v := New(65) // forces a partial tail word
	w := v.Not()
	if w.Weight() != 65 {
		t.Fatalf("Not of zero vector has weight %d, want 65", w.Weight())
	}
	if !w.Equal(Ones(65)) {
		t.Fatal("Not(0) != Ones")
	}
	if !w.Not().IsZero() {
		t.Fatal("double Not != identity")
	}
}

func TestHammingDistance(t *testing.T) {
	a := MustFromString("10110")
	b := MustFromString("00111")
	if d := a.HammingDistance(b); d != 2 {
		t.Fatalf("distance = %d, want 2", d)
	}
	if d := a.HammingDistance(a); d != 0 {
		t.Fatalf("self distance = %d, want 0", d)
	}
}

func TestSliceConcat(t *testing.T) {
	v := MustFromString("110101")
	left := v.Slice(0, 3)
	right := v.Slice(3, 6)
	if left.String() != "110" || right.String() != "101" {
		t.Fatalf("slices = %s, %s", left, right)
	}
	if got := left.Concat(right); !got.Equal(v) {
		t.Fatalf("concat = %s, want %s", got, v)
	}
	empty := v.Slice(2, 2)
	if empty.Len() != 0 {
		t.Fatal("empty slice has nonzero length")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 200} {
		v := New(n)
		for i := 0; i < n; i++ {
			v.Set(i, r.Bool())
		}
		back, err := FromBytes(v.Bytes(), n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !back.Equal(v) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestFromBytesShortInput(t *testing.T) {
	if _, err := FromBytes([]byte{0xff}, 9); err == nil {
		t.Fatal("expected error for short input")
	}
}

func TestFromStringErrors(t *testing.T) {
	if _, err := FromString("01x"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestBitsRoundTrip(t *testing.T) {
	v := MustFromString("0110010")
	if got := FromBits(v.Bits()); !got.Equal(v) {
		t.Fatalf("Bits round trip: %s != %s", got, v)
	}
}

func TestSupportIndices(t *testing.T) {
	v := MustFromString("0100101")
	got := v.SupportIndices()
	want := []int{1, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("support = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("support = %v, want %v", got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustFromString("1010")
	b := a.Clone()
	b.Flip(0)
	if !a.Get(0) || b.Get(0) {
		t.Fatal("clone is not independent")
	}
}

// Property: XOR is an involution and distance is XOR weight.
func TestXorProperties(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := int(size)%200 + 1
		r := rng.New(seed)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			a.Set(i, r.Bool())
			b.Set(i, r.Bool())
		}
		x := a.Xor(b)
		return x.Xor(b).Equal(a) &&
			x.Weight() == a.HammingDistance(b) &&
			a.Xor(a).IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: weight of v plus weight of Not(v) equals length.
func TestNotWeightProperty(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := int(size)%200 + 1
		r := rng.New(seed)
		v := New(n)
		for i := 0; i < n; i++ {
			v.Set(i, r.Bool())
		}
		return v.Weight()+v.Not().Weight() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAnd(t *testing.T) {
	a := MustFromString("1100")
	b := MustFromString("1010")
	if got := a.And(b); got.String() != "1000" {
		t.Fatalf("And = %s, want 1000", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	New(3).Xor(New(4))
}

func BenchmarkXor1024(b *testing.B) {
	v := Ones(1024)
	u := New(1024)
	for i := 0; i < b.N; i++ {
		u.XorInPlace(v)
	}
}

func BenchmarkWeight1024(b *testing.B) {
	v := Ones(1024)
	for i := 0; i < b.N; i++ {
		_ = v.Weight()
	}
}

// TestWordLevelOpsMatchBitLevel cross-checks the word-level kernels
// (SliceInto, PutAt, Concat, Bytes/FromBytes, XorInto, CopyInto,
// NextSet, HasPrefix) against naive per-bit references across lengths
// straddling word boundaries.
func TestWordLevelOpsMatchBitLevel(t *testing.T) {
	lengths := []int{0, 1, 7, 63, 64, 65, 127, 128, 130, 200}
	rnd := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 { rnd ^= rnd << 13; rnd ^= rnd >> 7; rnd ^= rnd << 17; return rnd }
	randomVec := func(n int) Vector {
		v := New(n)
		for i := 0; i < n; i++ {
			if next()&1 == 1 {
				v.Set(i, true)
			}
		}
		return v
	}
	for _, n := range lengths {
		v := randomVec(n)

		// Bytes/FromBytes round trip.
		back, err := FromBytes(v.Bytes(), n)
		if err != nil || !back.Equal(v) {
			t.Fatalf("n=%d: Bytes/FromBytes round trip failed (%v)", n, err)
		}

		// Slice against per-bit reference, and SliceInto equality.
		for _, span := range [][2]int{{0, n}, {n / 3, 2 * n / 3}, {1, n}, {0, n / 2}} {
			from, to := span[0], span[1]
			if from > to || to > n {
				continue
			}
			got := v.Slice(from, to)
			ref := New(to - from)
			for i := from; i < to; i++ {
				ref.Set(i-from, v.Get(i))
			}
			if !got.Equal(ref) {
				t.Fatalf("n=%d: Slice[%d,%d) mismatch", n, from, to)
			}
		}

		// Concat against per-bit reference.
		for _, m := range []int{0, 1, 33, 64, 70} {
			u := randomVec(m)
			got := v.Concat(u)
			ref := New(n + m)
			for i := 0; i < n; i++ {
				ref.Set(i, v.Get(i))
			}
			for i := 0; i < m; i++ {
				ref.Set(n+i, u.Get(i))
			}
			if !got.Equal(ref) {
				t.Fatalf("n=%d m=%d: Concat mismatch", n, m)
			}
			// PutAt must overwrite dirty buffers completely.
			dirty := Ones(n + m)
			if n > 0 {
				dirty.PutAt(0, v)
				dirty.PutAt(n, u)
				want := v.Concat(u)
				for i := 0; i < n+m; i++ {
					if dirty.Get(i) != want.Get(i) {
						t.Fatalf("n=%d m=%d: PutAt left bit %d stale", n, m, i)
					}
				}
			}
		}

		// XorInto/CopyInto with aliasing.
		u := randomVec(n)
		want := v.Xor(u)
		dst := New(n)
		v.XorInto(u, dst)
		if !dst.Equal(want) {
			t.Fatalf("n=%d: XorInto mismatch", n)
		}
		alias := v.Clone()
		alias.XorInto(u, alias)
		if !alias.Equal(want) {
			t.Fatalf("n=%d: aliased XorInto mismatch", n)
		}
		cp := New(n)
		v.CopyInto(cp)
		if !cp.Equal(v) {
			t.Fatalf("n=%d: CopyInto mismatch", n)
		}

		// NextSet enumerates exactly SupportIndices.
		var idx []int
		for i := v.NextSet(0); i >= 0; i = v.NextSet(i + 1) {
			idx = append(idx, i)
		}
		support := v.SupportIndices()
		if len(idx) != len(support) {
			t.Fatalf("n=%d: NextSet found %d bits, support %d", n, len(idx), len(support))
		}
		for i := range idx {
			if idx[i] != support[i] {
				t.Fatalf("n=%d: NextSet order mismatch at %d", n, i)
			}
		}

		// HasPrefix against Slice+Equal.
		for _, plen := range []int{0, 1, n / 2, n} {
			if plen > n {
				continue
			}
			p := v.Slice(0, plen)
			if !v.HasPrefix(p) {
				t.Fatalf("n=%d: HasPrefix rejected its own prefix of %d", n, plen)
			}
			if plen > 0 {
				q := p.Clone()
				q.Flip(plen - 1)
				if v.HasPrefix(q) {
					t.Fatalf("n=%d: HasPrefix accepted corrupted prefix", n)
				}
			}
		}
	}
}
