package rng

import (
	"math"
	"testing"
)

// TestBlockNormPure pins the counter contract: every variate is a pure
// function of (key, ctr, idx) — recomputable in any order, from any
// starting point, with no stream state.
func TestBlockNormPure(t *testing.T) {
	ref := make(map[[3]uint64]float64)
	for ctr := uint64(0); ctr < 8; ctr++ {
		for idx := uint64(0); idx < 64; idx++ {
			ref[[3]uint64{7, ctr, idx}] = BlockNorm(7, ctr, idx)
		}
	}
	// Re-evaluate in reverse order and through the sweep handle.
	for ctr := uint64(7); ctr < 8; ctr-- {
		sw := NewBlockSweep(7, ctr)
		for idx := uint64(63); idx < 64; idx-- {
			if got := BlockNorm(7, ctr, idx); got != ref[[3]uint64{7, ctr, idx}] {
				t.Fatalf("BlockNorm(7,%d,%d) not reproducible", ctr, idx)
			}
			if got := sw.Norm(idx); got != ref[[3]uint64{7, ctr, idx}] {
				t.Fatalf("sweep Norm(%d,%d) diverges from BlockNorm", ctr, idx)
			}
		}
	}
}

// TestBlockNormPairHalves ties BlockNorm to the pairwise transform: the
// even and odd indices of one block are exactly the two polar outputs.
func TestBlockNormPairHalves(t *testing.T) {
	for blk := uint64(0); blk < 128; blk++ {
		z0, z1 := BlockNormPair(3, 5, blk)
		if got := BlockNorm(3, 5, 2*blk); got != z0 {
			t.Fatalf("block %d even half mismatch", blk)
		}
		if got := BlockNorm(3, 5, 2*blk+1); got != z1 {
			t.Fatalf("block %d odd half mismatch", blk)
		}
	}
}

// TestBlockSweepFillNormMatchesScalar pins the bulk fill to the scalar
// definition.
func TestBlockSweepFillNormMatchesScalar(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 129} {
		sw := NewBlockSweep(11, 4)
		dst := make([]float64, n)
		sw.FillNorm(dst)
		for i, got := range dst {
			if want := sw.Norm(uint64(i)); got != want {
				t.Fatalf("n=%d: FillNorm[%d] = %v, Norm = %v", n, i, got, want)
			}
		}
	}
}

// TestBlockNormKeySeparation checks that distinct keys and counters give
// distinct variates (fork independence at the primitive level).
func TestBlockNormKeySeparation(t *testing.T) {
	same := 0
	for idx := uint64(0); idx < 256; idx++ {
		if BlockNorm(1, 0, idx) == BlockNorm(2, 0, idx) {
			same++
		}
		if BlockNorm(1, 0, idx) == BlockNorm(1, 1, idx) {
			same++
		}
		// The diagonal hazard of an additive key/counter fold: nearby
		// keys must NOT reproduce each other's sweeps shifted by one.
		if BlockNorm(1, 1, idx) == BlockNorm(2, 0, idx) {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d collisions between distinct (key, ctr) streams", same)
	}
}

// TestBlockNormMoments sanity-checks the marginal distribution against
// the sequential polar stream: both must look standard normal, and the
// counter generator's moments must sit within Monte-Carlo range of the
// stream generator's on equal sample counts.
func TestBlockNormMoments(t *testing.T) {
	const n = 200000
	moments := func(next func() float64) (mean, variance, tail float64) {
		var s, s2 float64
		tails := 0
		for i := 0; i < n; i++ {
			z := next()
			s += z
			s2 += z * z
			if math.Abs(z) > 2 {
				tails++
			}
		}
		mean = s / n
		variance = s2/n - mean*mean
		return mean, variance, float64(tails) / n
	}
	idx := uint64(0)
	cMean, cVar, cTail := moments(func() float64 {
		idx++
		return BlockNorm(99, idx>>8, idx&0xff)
	})
	src := New(99)
	sMean, sVar, sTail := moments(src.Norm)

	if math.Abs(cMean) > 0.01 || math.Abs(cVar-1) > 0.02 {
		t.Fatalf("counter moments off: mean %v var %v", cMean, cVar)
	}
	// |z| > 2 has probability ~0.0455 for a standard normal.
	if math.Abs(cTail-0.0455) > 0.005 {
		t.Fatalf("counter tail fraction %v, want ~0.0455", cTail)
	}
	if math.Abs(cMean-sMean) > 0.02 || math.Abs(cVar-sVar) > 0.03 || math.Abs(cTail-sTail) > 0.006 {
		t.Fatalf("counter vs stream moments diverge: (%v,%v,%v) vs (%v,%v,%v)",
			cMean, cVar, cTail, sMean, sVar, sTail)
	}
}

func BenchmarkBlockSweepFillNorm(b *testing.B) {
	dst := make([]float64, 128)
	for i := 0; i < b.N; i++ {
		NewBlockSweep(1, uint64(i)).FillNorm(dst)
	}
}
