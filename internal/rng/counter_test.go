package rng

import (
	"math"
	"testing"
)

// TestBlockNormPure pins the counter contract: every variate is a pure
// function of (key, ctr, idx) — recomputable in any order, from any
// starting point, with no stream state.
func TestBlockNormPure(t *testing.T) {
	ref := make(map[[3]uint64]float64)
	for ctr := uint64(0); ctr < 8; ctr++ {
		for idx := uint64(0); idx < 64; idx++ {
			ref[[3]uint64{7, ctr, idx}] = BlockNorm(7, ctr, idx)
		}
	}
	// Re-evaluate in reverse order and through the sweep handle.
	for ctr := uint64(7); ctr < 8; ctr-- {
		sw := NewBlockSweep(7, ctr)
		for idx := uint64(63); idx < 64; idx-- {
			if got := BlockNorm(7, ctr, idx); got != ref[[3]uint64{7, ctr, idx}] {
				t.Fatalf("BlockNorm(7,%d,%d) not reproducible", ctr, idx)
			}
			if got := sw.Norm(idx); got != ref[[3]uint64{7, ctr, idx}] {
				t.Fatalf("sweep Norm(%d,%d) diverges from BlockNorm", ctr, idx)
			}
		}
	}
}

// TestBlockNormPairHalves ties BlockNorm to the pairwise transform: the
// even and odd indices of one block are exactly the two polar outputs.
func TestBlockNormPairHalves(t *testing.T) {
	for blk := uint64(0); blk < 128; blk++ {
		z0, z1 := BlockNormPair(3, 5, blk)
		if got := BlockNorm(3, 5, 2*blk); got != z0 {
			t.Fatalf("block %d even half mismatch", blk)
		}
		if got := BlockNorm(3, 5, 2*blk+1); got != z1 {
			t.Fatalf("block %d odd half mismatch", blk)
		}
	}
}

// TestBlockSweepFillNormMatchesScalar pins every bulk fill path — dense
// FillNorm, offset FillNormAt, and multi-chain FillNormRows — to the
// scalar Norm definition, as a property test over lengths, start
// offsets (even and odd, including ones that straddle the polar-block
// pairing at every alignment), and splits of one logical fill into
// adjacent offset fills.
func TestBlockSweepFillNormMatchesScalar(t *testing.T) {
	lengths := []int{0, 1, 2, 3, 7, 64, 129}
	starts := []uint64{0, 1, 2, 3, 5, 8, 63, 64, 65, 1 << 20, 1<<20 + 1}
	for _, key := range []uint64{11, 0xdeadbeef} {
		for _, ctr := range []uint64{0, 4} {
			sw := NewBlockSweep(key, ctr)
			for _, n := range lengths {
				dst := make([]float64, n)
				sw.FillNorm(dst)
				for i, got := range dst {
					if want := sw.Norm(uint64(i)); got != want {
						t.Fatalf("key=%d ctr=%d n=%d: FillNorm[%d] = %v, Norm = %v", key, ctr, n, i, got, want)
					}
				}
				for _, start := range starts {
					at := make([]float64, n)
					sw.FillNormAt(at, start)
					for i, got := range at {
						if want := sw.Norm(start + uint64(i)); got != want {
							t.Fatalf("key=%d ctr=%d n=%d start=%d: FillNormAt[%d] = %v, Norm = %v",
								key, ctr, n, start, i, got, want)
						}
					}
				}
			}
		}
	}

	// FillNormAt(dst, 0) must be byte-for-byte FillNorm(dst).
	sw := NewBlockSweep(7, 9)
	a, b := make([]float64, 129), make([]float64, 129)
	sw.FillNorm(a)
	sw.FillNormAt(b, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("FillNormAt(dst, 0)[%d] diverges from FillNorm", i)
		}
	}

	// Splitting one logical fill at an arbitrary boundary — including
	// odd splits that land mid-block — must reproduce the contiguous
	// fill exactly: the pairing is anchored to absolute indices.
	whole := make([]float64, 96)
	sw.FillNormAt(whole, 17)
	for _, cut := range []int{0, 1, 2, 31, 32, 33, 95, 96} {
		split := make([]float64, 96)
		sw.FillNormAt(split[:cut], 17)
		sw.FillNormAt(split[cut:], 17+uint64(cut))
		for i := range whole {
			if split[i] != whole[i] {
				t.Fatalf("cut=%d: split fill[%d] diverges from contiguous fill", cut, i)
			}
		}
	}
}

// TestFillNormRowsMatchesScalar pins the multi-chain matrix fill to
// per-row sweeps: row r of the matrix is exactly the dense fill of an
// independent sweep keyed by keys[r] at the shared counter.
func TestFillNormRowsMatchesScalar(t *testing.T) {
	keys := []uint64{3, 0, 1 << 40, 3} // duplicate key: identical rows
	const rowLen = 37
	dst := make([]float64, len(keys)*rowLen)
	FillNormRows(dst, keys, 12)
	for r, key := range keys {
		sw := NewBlockSweep(key, 12)
		for j := 0; j < rowLen; j++ {
			if got, want := dst[r*rowLen+j], sw.Norm(uint64(j)); got != want {
				t.Fatalf("row %d col %d: FillNormRows = %v, Norm = %v", r, j, got, want)
			}
		}
	}
	if dst[0*rowLen] != dst[3*rowLen] {
		t.Fatalf("duplicate keys produced distinct rows")
	}
	FillNormRows(nil, nil, 0) // no keys, no dst: a no-op, not a panic
	defer func() {
		if recover() == nil {
			t.Fatalf("FillNormRows accepted a dst not divisible by key count")
		}
	}()
	FillNormRows(make([]float64, 5), []uint64{1, 2}, 0)
}

// TestBlockNormKeySeparation checks that distinct keys and counters give
// distinct variates (fork independence at the primitive level).
func TestBlockNormKeySeparation(t *testing.T) {
	same := 0
	for idx := uint64(0); idx < 256; idx++ {
		if BlockNorm(1, 0, idx) == BlockNorm(2, 0, idx) {
			same++
		}
		if BlockNorm(1, 0, idx) == BlockNorm(1, 1, idx) {
			same++
		}
		// The diagonal hazard of an additive key/counter fold: nearby
		// keys must NOT reproduce each other's sweeps shifted by one.
		if BlockNorm(1, 1, idx) == BlockNorm(2, 0, idx) {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d collisions between distinct (key, ctr) streams", same)
	}
}

// TestBlockNormMoments sanity-checks the marginal distribution against
// the sequential polar stream: both must look standard normal, and the
// counter generator's moments must sit within Monte-Carlo range of the
// stream generator's on equal sample counts.
func TestBlockNormMoments(t *testing.T) {
	const n = 200000
	moments := func(next func() float64) (mean, variance, tail float64) {
		var s, s2 float64
		tails := 0
		for i := 0; i < n; i++ {
			z := next()
			s += z
			s2 += z * z
			if math.Abs(z) > 2 {
				tails++
			}
		}
		mean = s / n
		variance = s2/n - mean*mean
		return mean, variance, float64(tails) / n
	}
	idx := uint64(0)
	cMean, cVar, cTail := moments(func() float64 {
		idx++
		return BlockNorm(99, idx>>8, idx&0xff)
	})
	src := New(99)
	sMean, sVar, sTail := moments(src.Norm)

	if math.Abs(cMean) > 0.01 || math.Abs(cVar-1) > 0.02 {
		t.Fatalf("counter moments off: mean %v var %v", cMean, cVar)
	}
	// |z| > 2 has probability ~0.0455 for a standard normal.
	if math.Abs(cTail-0.0455) > 0.005 {
		t.Fatalf("counter tail fraction %v, want ~0.0455", cTail)
	}
	if math.Abs(cMean-sMean) > 0.02 || math.Abs(cVar-sVar) > 0.03 || math.Abs(cTail-sTail) > 0.006 {
		t.Fatalf("counter vs stream moments diverge: (%v,%v,%v) vs (%v,%v,%v)",
			cMean, cVar, cTail, sMean, sVar, sTail)
	}
}

func BenchmarkBlockSweepFillNorm(b *testing.B) {
	dst := make([]float64, 128)
	for i := 0; i < b.N; i++ {
		NewBlockSweep(1, uint64(i)).FillNorm(dst)
	}
}
