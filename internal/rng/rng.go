// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the repository.
//
// Reproducibility is a first-class requirement for this code base: every
// Monte-Carlo experiment (device populations, measurement noise, attack
// transcripts) must be replayable from a single 64-bit seed so that the
// tables and figures of EXPERIMENTS.md can be regenerated bit-for-bit.
// The standard library's math/rand is seedable too, but its generator and
// stream-splitting behaviour are not guaranteed stable across Go releases;
// this package pins the algorithm.
//
// The core generator is xoshiro256**, seeded through SplitMix64, following
// the reference constructions by Blackman and Vigna. Gaussian variates use
// the Marsaglia polar method.
package rng

import "math"

// Source is a deterministic 64-bit pseudo-random source.
//
// It is intentionally NOT safe for concurrent use; callers that need
// parallel streams should derive independent child sources with Split,
// which consumes state from the parent in a deterministic way.
type Source struct {
	s [4]uint64
	// cached spare Gaussian variate from the polar method
	spare    float64
	hasSpare bool
}

// splitMix64 advances the given state and returns the next SplitMix64
// output. It is used only for seeding.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	var r Source
	r.Reseed(seed)
	return &r
}

// Reseed resets the source to the state derived from seed, discarding any
// cached Gaussian spare.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro256** requires a nonzero state; SplitMix64 outputs are zero
	// with negligible probability, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.hasSpare = false
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new Source whose stream is statistically independent of
// the parent's subsequent output. The parent is advanced.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// StreamSeed derives the seed of logical stream `stream` under a campaign
// base seed. Unlike Split it carries no hidden state: stream i's seed
// depends only on (base, i), so a pool of workers can evaluate streams in
// any order — or any degree of parallelism — and still reproduce the
// exact per-stream random sequences of a serial run. The derivation is
// one SplitMix64 step over a golden-ratio spaced state, the same
// construction New uses for state expansion.
func StreamSeed(base, stream uint64) uint64 {
	state := base + (stream+1)*0x9e3779b97f4a7c15
	return splitMix64(&state)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling with rejection to
	// remove modulo bias.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *Source) Bool() bool {
	return r.Uint64()&1 == 1
}

// Norm returns a standard Gaussian variate (mean 0, standard deviation 1)
// via the Marsaglia polar method, caching the spare.
func (r *Source) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// NormScaled returns a Gaussian variate with the given mean and standard
// deviation.
func (r *Source) NormScaled(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// NormFill fills buf with standard Gaussian variates. The stream is
// consumed exactly as len(buf) sequential Norm calls would consume it —
// including the polar method's spare caching across the call boundary —
// so batched and one-at-a-time sampling are interchangeable without
// perturbing replayability. Bulk callers (silicon measurement sweeps)
// use it to amortize the per-call accept/reject loop.
func (r *Source) NormFill(buf []float64) {
	i := 0
	if r.hasSpare && i < len(buf) {
		buf[i] = r.spare
		r.hasSpare = false
		i++
	}
	for i < len(buf) {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		buf[i] = u * f
		i++
		if i < len(buf) {
			buf[i] = v * f
			i++
		} else {
			r.spare = v * f
			r.hasSpare = true
		}
	}
}

// Perm returns a uniformly random permutation of [0, n) as a slice,
// generated with the Fisher-Yates shuffle.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
