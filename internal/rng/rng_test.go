package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestReseedRestartsStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("step %d: got %d want %d after reseed", i, got, first[i])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs of 64", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n = 10
	const trials = 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from %v", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestNormScaled(t *testing.T) {
	r := New(13)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormScaled(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Errorf("mean = %v, want ~10", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for n := 0; n <= 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(23)
	const n = 5
	const trials = 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("first element %d appeared %d times, want ~%v", i, c, want)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(31)
	child := parent.Split()
	// The child stream must not simply mirror the parent stream.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("parent and child agree on %d of 64 outputs", same)
	}
}

func TestShuffleProperty(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := int(size%32) + 1
		r := New(seed)
		xs := make([]int, n)
		for i := range xs {
			xs[i] = i
		}
		r.Shuffle(n, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		seen := make([]bool, n)
		for _, v := range xs {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(41)
	trues := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	if math.Abs(float64(trues)-n/2) > 5*math.Sqrt(n/4) {
		t.Errorf("Bool returned true %d of %d times", trues, n)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}

func TestStreamSeedDeterministicAndDistinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for base := uint64(0); base < 4; base++ {
		for stream := uint64(0); stream < 256; stream++ {
			s := StreamSeed(base, stream)
			if s != StreamSeed(base, stream) {
				t.Fatal("StreamSeed is not a pure function")
			}
			if seen[s] {
				t.Fatalf("collision at base=%d stream=%d", base, stream)
			}
			seen[s] = true
		}
	}
}

func TestStreamSeedIndependentOfOrder(t *testing.T) {
	// Evaluating streams in reverse must give the same seeds — the
	// property the campaign pool relies on for worker-count invariance.
	fwd := make([]uint64, 32)
	for i := range fwd {
		fwd[i] = StreamSeed(99, uint64(i))
	}
	for i := len(fwd) - 1; i >= 0; i-- {
		if StreamSeed(99, uint64(i)) != fwd[i] {
			t.Fatalf("stream %d depends on evaluation order", i)
		}
	}
}

// TestNormFillMatchesSequentialNorm pins the batched Gaussian path: for
// any buffer length — odd or even, so the polar method's spare caching
// crosses the call boundary both ways — NormFill must produce the exact
// variates and leave the stream in the exact state of sequential Norm
// calls.
func TestNormFillMatchesSequentialNorm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 129} {
		a, b := New(123), New(123)
		// Desynchronize the spare cache on purpose: one leading Norm.
		_ = a.Norm()
		_ = b.Norm()
		ref := make([]float64, n)
		for i := range ref {
			ref[i] = a.Norm()
		}
		got := make([]float64, n)
		b.NormFill(got)
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("n=%d: variate %d: NormFill %v != Norm %v", n, i, got[i], ref[i])
			}
		}
		if a.Norm() != b.Norm() {
			t.Fatalf("n=%d: stream state diverged after fill", n)
		}
	}
}
