package rng

import "math"

// Counter-mode ("block") generation. Every output is a pure function of
// a key and a pair of counters — no sequential stream state at all — so
// consumers can evaluate any subset of a logical random field, in any
// order, from any goroutine, and still reproduce exactly the values a
// full in-order evaluation would have produced. The silicon noise model
// uses it to key one Gaussian variate per (noise seed, measurement
// sweep, oscillator index) triple: subset measurement then draws only
// the variates it needs instead of replaying a stream position by
// position.
//
// The construction is two chained SplitMix64 steps (golden-ratio offset
// plus the Stafford/SplitMix64 finalizer) — the same primitive New uses
// for state expansion, here applied as a tiny counter block cipher.
// Each step is a bijection of the 64-bit state for any fixed input, so
// distinct (ctr, idx) pairs under one key never collide trivially, and
// SplitMix64's avalanche quality carries over.

// blockGolden is the golden-ratio increment of SplitMix64.
const blockGolden = 0x9e3779b97f4a7c15

// blockMix is the SplitMix64 output finalizer (Stafford mix13): a
// bijective avalanche over 64 bits.
func blockMix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// BlockSweep is the precomputed key half of one (key, ctr) sweep: the
// first chaining step of the counter block is loop-invariant across a
// whole measurement sweep, so bulk fills hoist it once instead of
// re-mixing key and counter for every oscillator.
type BlockSweep uint64

// NewBlockSweep folds (key, ctr) into the per-sweep chaining state.
// The key is mixed on its own before the counter is folded in: a single
// additive fold would alias (key, ctr) with (key+d, ctr-d), making
// oracles keyed by sequential seeds emit each other's sweeps shifted by
// one — exactly the correlated-noise hazard counter mode exists to rule
// out. The extra mix runs once per sweep, not per variate.
func NewBlockSweep(key, ctr uint64) BlockSweep {
	return BlockSweep(blockMix(blockMix(key+blockGolden) + blockGolden + ctr))
}

// BlockNormPair returns the two standard Gaussian variates of counter
// block (key, ctr, blk) via the Marsaglia polar method — the same
// transform (and the same per-variate cost) as the sequential stream's
// Source.Norm, but drawing its uniforms from a splitmix chain seeded
// by the block address instead of a shared stream. The rejection
// retries stay inside the block's own chain, so the result is a pure
// function of (key, ctr, blk) no matter how many attempts it takes.
func BlockNormPair(key, ctr, blk uint64) (z0, z1 float64) {
	return NewBlockSweep(key, ctr).NormPair(blk)
}

// NormPair is BlockNormPair against the sweep's precomputed state.
func (s BlockSweep) NormPair(blk uint64) (z0, z1 float64) {
	w := blockMix(uint64(s) + blockGolden + blk)
	for {
		u := float64(w>>11)*(2.0/(1<<53)) - 1
		w = blockMix(w + blockGolden)
		v := float64(w>>11)*(2.0/(1<<53)) - 1
		w = blockMix(w + blockGolden)
		r2 := u*u + v*v
		if r2 >= 1 || r2 == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(r2) / r2)
		return u * f, v * f
	}
}

// FillNorm writes the sweep's variates for indices [0, len(dst)) into
// dst — the whole-array measurement fast path. It is exactly equivalent
// to calling Norm(i) for every i, with the polar transform inlined and
// one block shared per even/odd index pair, so a dense counter-mode
// sweep costs the same per variate as the sequential polar stream.
func (s BlockSweep) FillNorm(dst []float64) {
	i := 0
	for ; i+1 < len(dst); i += 2 {
		w := blockMix(uint64(s) + blockGolden + uint64(i)>>1)
		for {
			u := float64(w>>11)*(2.0/(1<<53)) - 1
			w = blockMix(w + blockGolden)
			v := float64(w>>11)*(2.0/(1<<53)) - 1
			w = blockMix(w + blockGolden)
			r2 := u*u + v*v
			if r2 >= 1 || r2 == 0 {
				continue
			}
			f := math.Sqrt(-2 * math.Log(r2) / r2)
			dst[i], dst[i+1] = u*f, v*f
			break
		}
	}
	if i < len(dst) {
		dst[i] = s.Norm(uint64(i))
	}
}

// FillNormAt writes the sweep's variates for indices [start,
// start+len(dst)) into dst: dst[j] is bit-identical to Norm(start+j)
// for every j. The pairing is anchored to the absolute index — block
// a>>1 always serves indices (2k, 2k+1) of the sweep, never of the
// slice — so a fill split at any boundary produces exactly the bytes of
// one contiguous fill. Batched fleet kernels use it to fill one
// device's slice of a shared row without re-deriving per-oscillator
// scalar draws.
func (s BlockSweep) FillNormAt(dst []float64, start uint64) {
	if len(dst) == 0 {
		return
	}
	i := 0
	if start&1 == 1 {
		// Odd start: the first index is the second half of a block
		// shared with index start-1, which is outside the fill.
		dst[0] = s.Norm(start)
		i = 1
	}
	for ; i+1 < len(dst); i += 2 {
		w := blockMix(uint64(s) + blockGolden + (start+uint64(i))>>1)
		for {
			u := float64(w>>11)*(2.0/(1<<53)) - 1
			w = blockMix(w + blockGolden)
			v := float64(w>>11)*(2.0/(1<<53)) - 1
			w = blockMix(w + blockGolden)
			r2 := u*u + v*v
			if r2 >= 1 || r2 == 0 {
				continue
			}
			f := math.Sqrt(-2 * math.Log(r2) / r2)
			dst[i], dst[i+1] = u*f, v*f
			break
		}
	}
	if i < len(dst) {
		dst[i] = s.Norm(start + uint64(i))
	}
}

// FillNormRows fills a row-major matrix of Gaussian variates with one
// counter chain per row: row r (of length len(dst)/len(keys)) receives
// NewBlockSweep(keys[r], ctr).FillNorm — the multi-device form of a
// measurement sweep, where each device owns a key and all devices share
// the sweep counter. len(dst) must be an exact multiple of len(keys).
func FillNormRows(dst []float64, keys []uint64, ctr uint64) {
	if len(keys) == 0 {
		if len(dst) != 0 {
			panic("rng: FillNormRows with no keys and non-empty dst")
		}
		return
	}
	if len(dst)%len(keys) != 0 {
		panic("rng: FillNormRows dst length not a multiple of key count")
	}
	rowLen := len(dst) / len(keys)
	for r, key := range keys {
		NewBlockSweep(key, ctr).FillNorm(dst[r*rowLen : (r+1)*rowLen])
	}
}

// BlockNorm returns the standard Gaussian variate keyed by (key, ctr,
// idx): element idx of the infinite Gaussian field addressed by (ctr,
// idx). Adjacent even/odd indices share a polar block; callers filling
// runs of indices should use BlockNormPair directly to get both halves
// for one transform.
func BlockNorm(key, ctr, idx uint64) float64 {
	return NewBlockSweep(key, ctr).Norm(idx)
}

// Norm is BlockNorm against the sweep's precomputed state.
func (s BlockSweep) Norm(idx uint64) float64 {
	z0, z1 := s.NormPair(idx >> 1)
	if idx&1 == 0 {
		return z0
	}
	return z1
}
