package repro

// The repository's single determinism contract. Every golden value that
// used to live in hardcoded Go tables (golden_seed_test.go,
// golden_counter_test.go) now lives as JSON under testdata/transcripts/,
// one file per (attack × noise model) cell group, produced by the
// transcript harness. This test walks every cell and byte-compares the
// regenerated transcript files against the committed ones, so keys,
// recovery outcomes and the SPRT-driven oracle-query counts (sensitive
// to every single App() outcome) are pinned bit-for-bit under both the
// stream and counter silicon noise models.
//
// Regenerate after an intentional behavior change with
//
//	go test -run TestGoldenTranscripts -update
//
// (CI regenerates via `puf-bench -golden testdata/transcripts` and fails
// on `git diff` — goldens can never silently drift from the harness.)

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/transcript"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata/transcripts/ golden files")

func TestGoldenTranscripts(t *testing.T) {
	dir := filepath.Join("testdata", "transcripts")
	files := transcript.GoldenFiles()
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			trs, err := transcript.RunAll(context.Background(), files[name])
			if err != nil {
				t.Fatal(err)
			}
			got, err := transcript.Marshal(trs)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, name)
			if *updateGolden {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden %s (regenerate with -update): %v", path, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("transcript drift in %s: regenerated output differs from committed golden.\n"+
					"If the behavior change is intentional, run `go test -run TestGoldenTranscripts -update`.", path)
			}
		})
	}

	// Staleness sweep: a committed golden file that the matrix no longer
	// produces would silently stop being checked — fail instead.
	if !*updateGolden {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		for _, e := range entries {
			if _, ok := files[e.Name()]; !ok {
				t.Errorf("stale golden file %s: not produced by transcript.GoldenFiles()", e.Name())
			}
		}
	}
}

// TestTranscriptWorkerInvariance pins the batched-oracle contract that
// the ad-hoc BatchTarget invariance tests used to cover: under both
// noise models, a BatchTarget run is a pure function of the Spec — the
// worker count only changes scheduling, never the transcript. Workers=1
// and workers=4 must agree byte-for-byte on every attack.
func TestTranscriptWorkerInvariance(t *testing.T) {
	seeds := map[string]uint64{
		"seqpair": 5, "tempco": 7, "groupbased": 9, "masking": 11, "chain": 13,
	}
	for _, name := range transcript.Attacks() {
		for _, noise := range transcript.NoiseModels {
			name, noise := name, noise
			t.Run(name+"_"+noise, func(t *testing.T) {
				t.Parallel()
				spec := transcript.Spec{
					Attack:    name,
					Seed:      seeds[name],
					Noise:     noise,
					Expurgate: name == "seqpair",
					Workers:   1,
				}
				serial, err := transcript.Run(context.Background(), spec)
				if err != nil {
					t.Fatal(err)
				}
				spec.Workers = 4
				batched, err := transcript.Run(context.Background(), spec)
				if err != nil {
					t.Fatal(err)
				}
				// The Workers axis is part of the Spec; blank it so the
				// byte comparison covers only observable behavior.
				serial.Spec.Workers, batched.Spec.Workers = 0, 0
				a, err := transcript.Marshal([]transcript.Transcript{serial})
				if err != nil {
					t.Fatal(err)
				}
				b, err := transcript.Marshal([]transcript.Transcript{batched})
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(a, b) {
					t.Errorf("worker-count variance under %s noise:\nworkers=1: %s\nworkers=4: %s", noise, a, b)
				}
			})
		}
	}
}
